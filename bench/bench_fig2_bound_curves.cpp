// Figure 2 — the paper's only quantitative figure.
//
// Regenerates both curves for |S| = 10^4 (the paper's choice):
//   upper:  √|S|^{(2x−x²)/2}          (Theorem 18 upper bound factor)
//   lower:  min{√|S|^{(2−x)/2}, √|S|^{x/2}}   (Theorem 18 lower bound)
// Expected anchors (stated in the paper's Figure 2 caption): the curves
// agree at x ∈ {0, 1, 2} and both peak at ⁴√|S| = 10 for x = 1.
//
// The second table grounds the analytic anchors in measurement: the
// registered "theorem18" scenario at the three anchor exponents, run
// through the roster (PD and RAND) at a bench-scale |S|. The measured
// ratios must reproduce the curves' shape — Θ(1) at the endpoints, the
// peak at x = 1 — even though the absolute values differ (the curves are
// worst-case factors, the measurement one distribution).
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Figure 2 — Theorem 18 bound curves",
      "Figure 2 (|S| = 10^4), Theorem 18",
      "curves equal at x in {0,1,2}; both peak at |S|^(1/4) = 10 at x = 1; "
      "measured anchor ratios peak at x = 1");

  const double s = 10000.0;
  const double step = bench_pick(0.1, 0.05);
  TableWriter table({"x", "upper sqrt(S)^((2x-x^2)/2)",
                     "lower min{sqrt(S)^((2-x)/2), sqrt(S)^(x/2)}",
                     "upper/lower"});
  for (const Fig2Row& row : figure2_series(s, step)) {
    table.begin_row()
        .add(row.x)
        .add(row.upper)
        .add(row.lower)
        .add(row.lower > 0 ? row.upper / row.lower : 0.0);
  }
  table.write_markdown(std::cout);

  std::cout << "\nAnchors: upper(0)=" << theorem18_upper_factor(0.0, s)
            << " upper(1)=" << theorem18_upper_factor(1.0, s)
            << " upper(2)=" << theorem18_upper_factor(2.0, s)
            << " | lower(1)=" << theorem18_lower_factor(1.0, s)
            << " (paper: 1, 10, 1, 10)\n";

  // ---- measured anchors on the theorem18 scenario -------------------------
  const CommodityId measured_s = bench_pick<CommodityId>(256, 1024);
  const std::size_t trials = bench_pick<std::size_t>(6, 20);
  std::cout << "\nMeasured anchors (theorem18 scenario, |S| = " << measured_s
            << ", " << trials << " trials):\n\n";
  TableWriter anchors({"x", "PD ratio (mean±ci)", "RAND ratio (mean±ci)",
                       "analytic upper", "analytic lower"});
  for (const double x : {0.0, 1.0, 2.0}) {
    const std::map<std::string, double> params = {
        {"commodities", static_cast<double>(measured_s)},
        {"cost_exponent", x}};
    const std::uint64_t seed_base =
        static_cast<std::uint64_t>(x * 100) * 7919 + 1;
    const Summary pd =
        ratio_for_scenario("pd", "theorem18", trials, params, seed_base);
    const Summary rand =
        ratio_for_scenario("rand", "theorem18", trials, params, seed_base);
    anchors.begin_row()
        .add(x)
        .add(mean_ci(pd))
        .add(mean_ci(rand))
        .add(theorem18_upper_factor(x, static_cast<double>(measured_s)))
        .add(theorem18_lower_factor(x, static_cast<double>(measured_s)));
  }
  anchors.write_markdown(std::cout);
  return 0;
}
