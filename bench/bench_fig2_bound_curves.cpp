// Figure 2 — the paper's only quantitative figure.
//
// Regenerates both curves for |S| = 10^4 (the paper's choice):
//   upper:  √|S|^{(2x−x²)/2}          (Theorem 18 upper bound factor)
//   lower:  min{√|S|^{(2−x)/2}, √|S|^{x/2}}   (Theorem 18 lower bound)
// Expected anchors (stated in the paper's Figure 2 caption): the curves
// agree at x ∈ {0, 1, 2} and both peak at ⁴√|S| = 10 for x = 1.
#include <iostream>

#include "analysis/bounds.hpp"
#include "analysis/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  print_bench_header(
      "Figure 2 — Theorem 18 bound curves",
      "Figure 2 (|S| = 10^4), Theorem 18",
      "curves equal at x in {0,1,2}; both peak at |S|^(1/4) = 10 at x = 1");

  const double s = 10000.0;
  const double step = bench_pick(0.1, 0.05);
  TableWriter table({"x", "upper sqrt(S)^((2x-x^2)/2)",
                     "lower min{sqrt(S)^((2-x)/2), sqrt(S)^(x/2)}",
                     "upper/lower"});
  for (const Fig2Row& row : figure2_series(s, step)) {
    table.begin_row()
        .add(row.x)
        .add(row.upper)
        .add(row.lower)
        .add(row.lower > 0 ? row.upper / row.lower : 0.0);
  }
  table.write_markdown(std::cout);

  std::cout << "\nAnchors: upper(0)=" << theorem18_upper_factor(0.0, s)
            << " upper(1)=" << theorem18_upper_factor(1.0, s)
            << " upper(2)=" << theorem18_upper_factor(2.0, s)
            << " | lower(1)=" << theorem18_lower_factor(1.0, s)
            << " (paper: 1, 10, 1, 10)\n";
  return 0;
}
