// Theorem 4, |S|-dependence — the √|S| factor, and the Θ(|S|) baseline.
//
// Workload: shared-demand instances (requests demand large overlapping
// bundles at one point, sqrt opening costs) where bundling matters most:
// OPT opens one large facility. The exact single-point solver provides
// OPT.
//
// Expected shape (the paper's core separation, §1.3 + Theorem 2):
//   * PD and RAND ratios stay bounded — they predict and bundle;
//   * PD[no-prediction] and PerCommodity[Fotakis] grow like √|S| and
//     worse — the "ratio/sqrt(S)" columns make the trend visible.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Theorem 4 / §1.3 — ratio vs number of commodities |S|",
      "Theorem 4 upper bound; Theorem 2 + §1.3 trivial baseline",
      "PD/RAND flat; per-commodity and no-prediction grow ~ sqrt(S)");

  const std::size_t trials = bench_pick<std::size_t>(6, 20);
  std::vector<CommodityId> sizes = {4, 16, 64, 256};
  if (bench_full_scale()) sizes.push_back(1024);

  TableWriter table({"|S|", "PD", "RAND (mean±ci)", "PD[no-prediction]",
                     "PerCommodity[Fotakis]", "noPred/sqrt(S)",
                     "perComm/sqrt(S)"});
  for (const CommodityId s : sizes) {
    // The "shared-demand" scenario (single point, overlapping bundles of
    // at least |S|/2 commodities, class-C sqrt cost) from the registry;
    // trial t runs with seed s*31337 + t.
    const std::map<std::string, double> params = {
        {"commodities", static_cast<double>(s)}, {"requests", 32.0}};
    const std::uint64_t seed_base = static_cast<std::uint64_t>(s) * 31337;
    const Summary pd =
        ratio_for_scenario("pd", "shared-demand", trials, params, seed_base);
    const Summary rand = ratio_for_scenario("rand", "shared-demand", trials,
                                            params, seed_base);
    const Summary no_pred = ratio_for_scenario("pd-nopred", "shared-demand",
                                               trials, params, seed_base);
    const Summary per_comm = ratio_for_scenario("fotakis", "shared-demand",
                                                trials, params, seed_base);

    const double sqrt_s = std::sqrt(static_cast<double>(s));
    table.begin_row()
        .add(static_cast<long long>(s))
        .add(pd.mean())
        .add(mean_ci(rand))
        .add(no_pred.mean())
        .add(per_comm.mean())
        .add(no_pred.mean() / sqrt_s)
        .add(per_comm.mean() / sqrt_s);
  }
  table.write_markdown(std::cout);
  std::cout << "\nOPT is exact (single-point set-cover DP). The last two "
               "columns should be ~constant: those algorithms pay the "
               "sqrt(S) factor the paper proves unavoidable without "
               "prediction.\n";
  return 0;
}
