// Ablation — what prediction (opening not-yet-requested commodities) buys,
// and what the seen-union prediction variant changes.
//
// Section 2's discussion: any algorithm that never predicts can be forced
// to pay Ω(|S|) against an OPT that bundles; PD's large facilities are
// precisely its prediction mechanism. We compare
//   * PD (paper: large = full S),
//   * PD[no-prediction] (constraints (2)/(4) disabled),
//   * PD[seen-union] (large facilities carry the union of commodities
//     seen so far — the closing remarks' "exclude what you have not
//     seen" direction),
// on (a) shared-demand workloads where prediction is everything, and
// (b) the Theorem 2 game, where prediction hedges: the no-prediction
// variant is slightly *better* there (√S vs 2√S−1) because the adversary
// never re-requests — an honest trade-off worth displaying.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "metric/line_metric.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Ablation — prediction and the large-facility configuration",
      "Section 2 (necessity of prediction), Section 5 (closing remarks)",
      "no-prediction pays ~sqrt(S)·OPT on shared demands; full-S and "
      "seen-union predictions stay O(1) there; on Theorem 2 the ordering "
      "flips mildly (hedging cost)");

  const std::size_t trials = bench_pick<std::size_t>(8, 25);
  std::vector<CommodityId> sizes = {16, 64, 256};
  if (bench_full_scale()) sizes.push_back(1024);

  auto pd_factory = [](PdOptions options) {
    return [options](std::uint64_t) {
      return std::make_unique<PdOmflp>(options);
    };
  };
  const PdOptions paper{};
  const PdOptions no_pred{.prediction = PdOptions::Prediction::kOff};
  const PdOptions seen_union{.large_config =
                                 PdOptions::LargeConfig::kSeenUnion};

  std::cout << "### Shared-demand workload (requests demand >= |S|/2 "
               "commodities at one point)\n\n";
  TableWriter shared({"|S|", "PD (full-S)", "PD[seen-union]",
                      "PD[no-prediction]", "noPred/sqrt(S)"});
  for (const CommodityId s : sizes) {
    auto make_instance = [s](std::uint64_t seed) {
      Rng rng(seed * 7151 + s);
      SinglePointMixedConfig cfg;
      cfg.num_requests = 32;
      cfg.num_commodities = s;
      cfg.min_demand = std::max<CommodityId>(1, s / 2);
      cfg.max_demand = s;
      return make_single_point_mixed(
          cfg, std::make_shared<PolynomialCostModel>(s, 1.0), rng);
    };
    const Summary full = ratio_over_trials(trials, make_instance,
                                           pd_factory(paper));
    const Summary seen = ratio_over_trials(trials, make_instance,
                                           pd_factory(seen_union));
    const Summary off = ratio_over_trials(trials, make_instance,
                                          pd_factory(no_pred));
    shared.begin_row()
        .add(static_cast<long long>(s))
        .add(full.mean())
        .add(seen.mean())
        .add(off.mean())
        .add(off.mean() / std::sqrt(static_cast<double>(s)));
  }
  shared.write_markdown(std::cout);

  std::cout << "\n### Theorem 2 game (singletons, never re-requested)\n\n";
  TableWriter adversarial({"|S|", "PD (full-S)", "PD[seen-union]",
                           "PD[no-prediction]", "sqrt(S)"});
  for (const CommodityId s : sizes) {
    auto make_instance = [s](std::uint64_t seed) {
      Rng rng(seed * 3251 + s);
      Theorem2Config cfg;
      cfg.num_commodities = s;
      return make_theorem2_instance(cfg, rng);
    };
    const Summary full = ratio_over_trials(trials, make_instance,
                                           pd_factory(paper));
    const Summary seen = ratio_over_trials(trials, make_instance,
                                           pd_factory(seen_union));
    const Summary off = ratio_over_trials(trials, make_instance,
                                          pd_factory(no_pred));
    adversarial.begin_row()
        .add(static_cast<long long>(s))
        .add(full.mean())
        .add(seen.mean())
        .add(off.mean())
        .add(std::sqrt(static_cast<double>(s)));
  }
  adversarial.write_markdown(std::cout);

  std::cout << "\n### Zipf service network (mixed regime, local-search "
               "OPT)\n\n";
  TableWriter network({"config", "PD (full-S)", "PD[seen-union]",
                       "PD[no-prediction]"});
  {
    const std::size_t net_trials = bench_pick<std::size_t>(4, 12);
    auto make_instance = [](std::uint64_t seed) {
      Rng rng(seed * 911 + 5);
      ServiceNetworkConfig cfg;
      cfg.num_nodes = 24;
      cfg.num_requests = 96;
      cfg.num_commodities = 12;
      cfg.max_demand = 6;
      return make_service_network(
          cfg, std::make_shared<PolynomialCostModel>(12, 1.0, 3.0), rng);
    };
    const Summary full =
        ratio_over_trials(net_trials, make_instance, pd_factory(paper));
    const Summary seen =
        ratio_over_trials(net_trials, make_instance, pd_factory(seen_union));
    const Summary off =
        ratio_over_trials(net_trials, make_instance, pd_factory(no_pred));
    network.begin_row()
        .add("24 nodes, n=96, |S|=12")
        .add(full.mean())
        .add(seen.mean())
        .add(off.mean());
  }
  network.write_markdown(std::cout);
  return 0;
}
