// Ablation — what prediction (opening not-yet-requested commodities) buys,
// and what the seen-union prediction variant changes.
//
// Section 2's discussion: any algorithm that never predicts can be forced
// to pay Ω(|S|) against an OPT that bundles; PD's large facilities are
// precisely its prediction mechanism. We compare the roster variants
//   * pd            (paper: large = full S),
//   * pd-nopred     (constraints (2)/(4) disabled),
//   * pd-seenunion  (large facilities carry the union of commodities
//     seen so far — the closing remarks' "exclude what you have not
//     seen" direction),
// on (a) the shared-demand scenario where prediction is everything,
// (b) the Theorem 2 game, where prediction hedges: the no-prediction
// variant is slightly *better* there (√S vs 2√S−1) because the adversary
// never re-requests — an honest trade-off worth displaying, and (c) the
// Zipf service network (mixed regime). All three workloads come from the
// scenario registry; all algorithms from the roster.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Ablation — prediction and the large-facility configuration",
      "Section 2 (necessity of prediction), Section 5 (closing remarks)",
      "no-prediction pays ~sqrt(S)·OPT on shared demands; full-S and "
      "seen-union predictions stay O(1) there; on Theorem 2 the ordering "
      "flips mildly (hedging cost)");

  const std::size_t trials = bench_pick<std::size_t>(8, 25);
  std::vector<CommodityId> sizes = {16, 64, 256};
  if (bench_full_scale()) sizes.push_back(1024);

  std::cout << "### Shared-demand scenario (requests demand >= |S|/2 "
               "commodities at one point)\n\n";
  TableWriter shared({"|S|", "PD (full-S)", "PD[seen-union]",
                      "PD[no-prediction]", "noPred/sqrt(S)"});
  for (const CommodityId s : sizes) {
    const std::map<std::string, double> params = {
        {"commodities", static_cast<double>(s)}};
    const std::uint64_t seed_base = static_cast<std::uint64_t>(s) * 7151;
    const Summary full = ratio_for_scenario("pd", "shared-demand", trials,
                                            params, seed_base);
    const Summary seen = ratio_for_scenario("pd-seenunion", "shared-demand",
                                            trials, params, seed_base);
    const Summary off = ratio_for_scenario("pd-nopred", "shared-demand",
                                           trials, params, seed_base);
    shared.begin_row()
        .add(static_cast<long long>(s))
        .add(full.mean())
        .add(seen.mean())
        .add(off.mean())
        .add(off.mean() / std::sqrt(static_cast<double>(s)));
  }
  shared.write_markdown(std::cout);

  std::cout << "\n### Theorem 2 game (singletons, never re-requested)\n\n";
  TableWriter adversarial({"|S|", "PD (full-S)", "PD[seen-union]",
                           "PD[no-prediction]", "sqrt(S)"});
  for (const CommodityId s : sizes) {
    const std::map<std::string, double> params = {
        {"commodities", static_cast<double>(s)}};
    const std::uint64_t seed_base = static_cast<std::uint64_t>(s) * 3251;
    const Summary full =
        ratio_for_scenario("pd", "theorem2", trials, params, seed_base);
    const Summary seen = ratio_for_scenario("pd-seenunion", "theorem2",
                                            trials, params, seed_base);
    const Summary off = ratio_for_scenario("pd-nopred", "theorem2", trials,
                                           params, seed_base);
    adversarial.begin_row()
        .add(static_cast<long long>(s))
        .add(full.mean())
        .add(seen.mean())
        .add(off.mean())
        .add(std::sqrt(static_cast<double>(s)));
  }
  adversarial.write_markdown(std::cout);

  std::cout << "\n### Zipf service network (mixed regime, local-search "
               "OPT)\n\n";
  TableWriter network({"config", "PD (full-S)", "PD[seen-union]",
                       "PD[no-prediction]"});
  {
    const std::size_t net_trials = bench_pick<std::size_t>(4, 12);
    const std::map<std::string, double> params = {
        {"nodes", 24}, {"max_demand", 6}, {"cost_scale", 3.0}};
    const std::uint64_t seed_base = 911;
    const Summary full = ratio_for_scenario("pd", "service-network",
                                            net_trials, params, seed_base);
    const Summary seen = ratio_for_scenario(
        "pd-seenunion", "service-network", net_trials, params, seed_base);
    const Summary off = ratio_for_scenario("pd-nopred", "service-network",
                                           net_trials, params, seed_base);
    network.begin_row()
        .add("24 nodes, n=96, |S|=12")
        .add(full.mean())
        .add(seen.mean())
        .add(off.mean());
  }
  network.write_markdown(std::cout);
  return 0;
}
