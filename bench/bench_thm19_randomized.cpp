// Theorem 19 — RAND-OMFLP vs PD-OMFLP across workload families.
//
// The paper's claim: the randomized algorithm achieves
// O(√|S|·log n/log log n) in expectation — asymptotically better than the
// deterministic O(√|S|·log n) — and is "much more efficient to implement"
// (§4 intro). This bench compares the two (plus the per-commodity
// Meyerson baseline) on every workload family, reporting mean ratios and
// the RAND/PD cost quotient.
//
// Expected shape: RAND/PD ≈ 1 or below on average (the log log n gap is
// invisible at these n, but RAND must never be systematically worse),
// and the per-commodity baseline loses on bundle-heavy workloads.
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Theorem 19 — randomized vs deterministic",
      "Theorem 19 (O(sqrt(S)·log n/log log n) expected)",
      "RAND mean ratio within ~1x of PD everywhere; baseline worse on "
      "bundle-heavy workloads");

  const std::size_t trials = bench_pick<std::size_t>(8, 30);

  // Workload families come from the scenario registry; each entry is a
  // scenario name plus parameter overrides and a distinct seed stream.
  struct Family {
    std::string label;
    std::string scenario;
    std::map<std::string, double> params;
    std::uint64_t seed_base;
  };
  const std::vector<Family> families = {
      {"clustered-line (n=256, |S|=16)",
       "clustered",
       {{"clusters", 8},
        {"requests_per_cluster", 32},
        {"separation", 1000},
        {"commodities", 16},
        {"commodities_per_cluster", 4},
        {"cost_scale", 4.0}},
       1},
      {"theorem2 (|S|=256)", "theorem2", {{"commodities", 256}}, 1000},
      {"zooming-line (n=128, |S|=8)",
       "zooming",
       {{"requests", 128},
        {"commodities", 8},
        {"demand_size", 4},
        {"cost_scale", 8.0}},
       2000},
      {"single-point-mixed (|S|=32)",
       "single-point-mixed",
       {{"requests", 48},
        {"commodities", 32},
        {"min_demand", 8},
        {"max_demand", 32}},
       3000}};

  OptEstimateOptions opt;
  opt.allow_local_search = false;  // certificates / exact solvers suffice

  TableWriter table({"workload", "PD ratio (mean±ci)",
                     "RAND ratio (mean±ci)", "RAND/PD",
                     "PerCommodity[Meyerson]"});
  for (const Family& family : families) {
    const Summary pd = ratio_for_scenario("pd", family.scenario, trials,
                                          family.params, family.seed_base,
                                          opt);
    const Summary rand = ratio_for_scenario("rand", family.scenario, trials,
                                            family.params, family.seed_base,
                                            opt);
    const Summary meyerson = ratio_for_scenario(
        "meyerson", family.scenario, trials, family.params,
        family.seed_base, opt);
    table.begin_row()
        .add(family.label)
        .add(mean_ci(pd))
        .add(mean_ci(rand))
        .add(rand.mean() / pd.mean())
        .add(mean_ci(meyerson));
  }
  table.write_markdown(std::cout);
  return 0;
}
