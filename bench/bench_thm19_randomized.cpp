// Theorem 19 — RAND-OMFLP vs PD-OMFLP across workload families.
//
// The paper's claim: the randomized algorithm achieves
// O(√|S|·log n/log log n) in expectation — asymptotically better than the
// deterministic O(√|S|·log n) — and is "much more efficient to implement"
// (§4 intro). This bench compares the two (plus the per-commodity
// Meyerson baseline) on every workload family, reporting mean ratios and
// the RAND/PD cost quotient.
//
// Expected shape: RAND/PD ≈ 1 or below on average (the log log n gap is
// invisible at these n, but RAND must never be systematically worse),
// and the per-commodity baseline loses on bundle-heavy workloads.
#include <iostream>

#include "bench_common.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Theorem 19 — randomized vs deterministic",
      "Theorem 19 (O(sqrt(S)·log n/log log n) expected)",
      "RAND mean ratio within ~1x of PD everywhere; baseline worse on "
      "bundle-heavy workloads");

  const std::size_t trials = bench_pick<std::size_t>(8, 30);

  struct Family {
    std::string name;
    std::function<Instance(std::uint64_t)> make;
  };
  std::vector<Family> families;
  families.push_back(
      {"clustered-line (n=256, |S|=16)", [](std::uint64_t seed) {
         Rng rng(seed * 7 + 1);
         ClusteredConfig cfg;
         cfg.num_clusters = 8;
         cfg.requests_per_cluster = 32;
         cfg.num_commodities = 16;
         cfg.commodities_per_cluster = 4;
         return make_clustered_line(
             cfg, std::make_shared<PolynomialCostModel>(16, 1.0, 4.0), rng);
       }});
  families.push_back({"theorem2 (|S|=256)", [](std::uint64_t seed) {
                        Rng rng(seed * 11 + 2);
                        Theorem2Config cfg;
                        cfg.num_commodities = 256;
                        return make_theorem2_instance(cfg, rng);
                      }});
  families.push_back(
      {"zooming-line (n=128, |S|=8)", [](std::uint64_t seed) {
         Rng rng(seed * 13 + 3);
         ZoomingConfig cfg;
         cfg.num_requests = 128;
         cfg.num_commodities = 8;
         cfg.demand_size = 4;
         return make_zooming_line(
             cfg, std::make_shared<PolynomialCostModel>(8, 1.0, 8.0), rng);
       }});
  families.push_back(
      {"single-point-mixed (|S|=32)", [](std::uint64_t seed) {
         Rng rng(seed * 17 + 4);
         SinglePointMixedConfig cfg;
         cfg.num_requests = 48;
         cfg.num_commodities = 32;
         cfg.min_demand = 8;
         cfg.max_demand = 32;
         return make_single_point_mixed(
             cfg, std::make_shared<PolynomialCostModel>(32, 1.0), rng);
       }});

  OptEstimateOptions opt;
  opt.allow_local_search = false;  // certificates / exact solvers suffice

  TableWriter table({"workload", "PD ratio (mean±ci)",
                     "RAND ratio (mean±ci)", "RAND/PD",
                     "PerCommodity[Meyerson]"});
  for (const Family& family : families) {
    const Summary pd = ratio_over_trials(
        trials, family.make,
        [](std::uint64_t) { return std::make_unique<PdOmflp>(); }, opt);
    const Summary rand = ratio_over_trials(
        trials, family.make,
        [](std::uint64_t seed) {
          return std::make_unique<RandOmflp>(RandOptions{.seed = seed + 1});
        },
        opt);
    const Summary meyerson = ratio_over_trials(
        trials, family.make,
        [](std::uint64_t seed) {
          return std::unique_ptr<OnlineAlgorithm>(
              PerCommodityAdapter::meyerson(seed + 1));
        },
        opt);
    table.begin_row()
        .add(family.name)
        .add(mean_ci(pd))
        .add(mean_ci(rand))
        .add(rand.mean() / pd.mean())
        .add(mean_ci(meyerson));
  }
  table.write_markdown(std::cout);
  return 0;
}
