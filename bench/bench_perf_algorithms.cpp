// Engineering benchmark (google-benchmark): end-to-end serve throughput
// of every algorithm, the reference-vs-incremental PD bid accumulators,
// and the offline solvers.
//
// Not a paper figure — this backs the §4 remark that the randomized
// algorithm "is much more efficient to implement" with numbers, and
// quantifies what the incremental bid maintenance buys PD.
#include <benchmark/benchmark.h>

#include "baseline/greedy.hpp"
#include "baseline/per_commodity.hpp"
#include "core/pd_omflp.hpp"
#include "core/rand_omflp.hpp"
#include "cost/cost_models.hpp"
#include "instance/generators.hpp"
#include "offline/local_search.hpp"
#include "offline/single_point.hpp"

namespace {

using namespace omflp;

Instance bench_instance(std::size_t n, std::size_t points, CommodityId s) {
  Rng rng(n * 131 + points * 17 + s);
  UniformLineConfig cfg;
  cfg.num_points = points;
  cfg.num_requests = n;
  cfg.num_commodities = s;
  cfg.max_demand = std::min<CommodityId>(5, s);
  return make_uniform_line(
      cfg, std::make_shared<PolynomialCostModel>(s, 1.0, 2.0), rng);
}

void run_algorithm(benchmark::State& state, OnlineAlgorithm& algorithm,
                   const Instance& instance) {
  for (auto _ : state) {
    const SolutionLedger ledger = run_online(algorithm, instance);
    benchmark::DoNotOptimize(ledger.total_cost());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              instance.num_requests()));
}

void BM_PdIncremental(benchmark::State& state) {
  const Instance inst = bench_instance(state.range(0), state.range(1), 16);
  PdOmflp pd{PdOptions{.bid_mode = PdOptions::BidMode::kIncremental}};
  run_algorithm(state, pd, inst);
}
BENCHMARK(BM_PdIncremental)
    ->Args({128, 32})
    ->Args({256, 32})
    ->Args({256, 128})
    ->Unit(benchmark::kMillisecond);

void BM_PdReference(benchmark::State& state) {
  const Instance inst = bench_instance(state.range(0), state.range(1), 16);
  PdOmflp pd{PdOptions{.bid_mode = PdOptions::BidMode::kReference}};
  run_algorithm(state, pd, inst);
}
BENCHMARK(BM_PdReference)
    ->Args({128, 32})
    ->Args({256, 32})
    ->Args({256, 128})
    ->Unit(benchmark::kMillisecond);

void BM_Rand(benchmark::State& state) {
  const Instance inst = bench_instance(state.range(0), state.range(1), 16);
  RandOmflp rand{RandOptions{.seed = 1}};
  run_algorithm(state, rand, inst);
}
BENCHMARK(BM_Rand)
    ->Args({128, 32})
    ->Args({256, 32})
    ->Args({256, 128})
    ->Unit(benchmark::kMillisecond);

void BM_PerCommodityFotakis(benchmark::State& state) {
  const Instance inst = bench_instance(state.range(0), state.range(1), 16);
  auto adapter = PerCommodityAdapter::fotakis();
  run_algorithm(state, *adapter, inst);
}
BENCHMARK(BM_PerCommodityFotakis)
    ->Args({256, 32})
    ->Unit(benchmark::kMillisecond);

void BM_GreedyNearestOrOpen(benchmark::State& state) {
  const Instance inst = bench_instance(state.range(0), state.range(1), 16);
  NearestOrOpen greedy;
  run_algorithm(state, greedy, inst);
}
BENCHMARK(BM_GreedyNearestOrOpen)
    ->Args({256, 32})
    ->Unit(benchmark::kMillisecond);

void BM_PdScalingInS(benchmark::State& state) {
  const Instance inst =
      bench_instance(256, 32, static_cast<CommodityId>(state.range(0)));
  PdOmflp pd;
  run_algorithm(state, pd, inst);
}
BENCHMARK(BM_PdScalingInS)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_RandScalingInS(benchmark::State& state) {
  const Instance inst =
      bench_instance(256, 32, static_cast<CommodityId>(state.range(0)));
  RandOmflp rand{RandOptions{.seed = 1}};
  run_algorithm(state, rand, inst);
}
BENCHMARK(BM_RandScalingInS)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_LocalSearchSolver(benchmark::State& state) {
  const Instance inst = bench_instance(state.range(0), 16, 8);
  for (auto _ : state) {
    const OfflineSolution sol = solve_local_search(inst);
    benchmark::DoNotOptimize(sol.cost);
  }
}
BENCHMARK(BM_LocalSearchSolver)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_SinglePointExactDp(benchmark::State& state) {
  const CommodityId s = static_cast<CommodityId>(state.range(0));
  PolynomialCostModel cost(s, 1.0);
  const CommoditySet target = CommoditySet::full_set(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(single_point_cover_cost(cost, 0, target));
  }
}
BENCHMARK(BM_SinglePointExactDp)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
