// Theorem 18 — the cost-class sweep: measured ratios vs the Figure 2
// curves.
//
// Workload: the §3.3.2 adaptive lower-bound distribution (the Theorem 2
// sequence under the class-C cost g_x(|σ|) = |σ|^{x/2}); OPT is exact by
// construction. x sweeps [0, 2].
//
// Expected shape: the measured PD/RAND ratio is unimodal in x with its
// peak at x = 1 and Θ(1) endpoints — the same shape as Figure 2's curves
// (absolute values differ: the analytic curves are worst-case factors,
// the measurement is one distribution).
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Theorem 18 — competitive ratio across the cost class C",
      "Theorem 18, Figure 2, §3.3.2",
      "measured ratios unimodal with peak at x = 1, Θ(1) at x ∈ {0,2}; "
      "analytic upper curve dominates the lower curve");

  const CommodityId s = bench_pick<CommodityId>(256, 1024);
  const std::size_t trials = bench_pick<std::size_t>(8, 30);

  TableWriter table({"x", "PD ratio (mean±ci)", "RAND ratio (mean±ci)",
                     "fig2 upper factor", "fig2 lower factor"});
  for (const double x : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}) {
    // The workload is the registered "theorem18" scenario; distinct
    // seed bases keep the x-points on independent request streams.
    const std::map<std::string, double> params = {
        {"commodities", static_cast<double>(s)}, {"cost_exponent", x}};
    const std::uint64_t seed_base =
        static_cast<std::uint64_t>(x * 100) * 2654435761ULL + 1;
    const Summary pd =
        ratio_for_scenario("pd", "theorem18", trials, params, seed_base);
    const Summary rand =
        ratio_for_scenario("rand", "theorem18", trials, params, seed_base);
    table.begin_row()
        .add(x)
        .add(mean_ci(pd))
        .add(mean_ci(rand))
        .add(theorem18_upper_factor(x, static_cast<double>(s)))
        .add(theorem18_lower_factor(x, static_cast<double>(s)));
  }
  table.write_markdown(std::cout);
  std::cout << "\n|S| = " << s
            << ". OPT is exact (one facility with the drawn commodity "
               "set).\n";
  return 0;
}
