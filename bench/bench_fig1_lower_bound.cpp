// Figure 1 + Theorem 2 — the adversarial single-point game.
//
// Runs the Theorem 2 distribution (request ⌊√|S|⌋ uniformly random
// commodities one at a time on one point, cost g(|σ|) = ⌈|σ|/√|S|⌉,
// OPT = 1 exactly) against the algorithm roster and reports mean
// competitive ratios against the proof's √|S|/16 lower bound and the
// 15·√|S|·H_n Theorem 4 budget.
//
// Expected shape: every algorithm's ratio grows as Θ(√|S|) — the lower
// bound says nobody can do better here. PD tracks its predicted value
// 2√|S| − 1 exactly (√|S| − 1 singleton facilities, then one large
// facility); the no-prediction ablation pays √|S| (all singletons).
//
// The second table reproduces Figure 1's *rounds* view for one PD run:
// per round (request), the facility built and how many commodities are
// covered so far — showing the switch from small facilities to the one
// large (all-commodity) facility at round √|S|.
#include <cmath>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "instance/adversarial.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Figure 1 / Theorem 2 — adversarial single-point game",
      "Theorem 2, Corollary 3, Figure 1",
      "all ratios grow ~ sqrt(S); PD == 2*sqrt(S)-1; bounds sandwich holds");

  const std::size_t trials = bench_pick<std::size_t>(15, 50);
  std::vector<CommodityId> sizes = {16, 64, 256, 1024};
  if (bench_full_scale()) sizes.push_back(4096);

  TableWriter table({"|S|", "sqrt(S)/16 (thm2 LB)", "PD-OMFLP",
                     "PD[no-prediction]", "RAND-OMFLP (mean±ci)",
                     "PerCommodity[Fotakis]", "PD predicted 2*sqrt(S)-1",
                     "thm4 budget"});
  for (const CommodityId s : sizes) {
    // The Theorem 2 game comes from the scenario registry; trial t plays
    // the "theorem2" scenario with seed s*7919 + t (distinct per size).
    const std::map<std::string, double> params = {
        {"commodities", static_cast<double>(s)}};
    const std::uint64_t seed_base = static_cast<std::uint64_t>(s) * 7919;
    const Summary pd =
        ratio_for_scenario("pd", "theorem2", trials, params, seed_base);
    const Summary no_pred = ratio_for_scenario("pd-nopred", "theorem2",
                                               trials, params, seed_base);
    const Summary rand =
        ratio_for_scenario("rand", "theorem2", trials, params, seed_base);
    const Summary per_comm = ratio_for_scenario("fotakis", "theorem2",
                                                trials, params, seed_base);
    const double sqrt_s = std::sqrt(static_cast<double>(s));
    table.begin_row()
        .add(static_cast<long long>(s))
        .add(theorem2_bound(s))
        .add(pd.mean())
        .add(no_pred.mean())
        .add(mean_ci(rand))
        .add(per_comm.mean())
        .add(2.0 * sqrt_s - 1.0)
        .add(theorem4_bound(s, theorem2_sequence_length(s)));
  }
  table.write_markdown(std::cout);

  // ---- Figure 1 rounds view for one PD run ------------------------------
  std::cout << "\nFigure 1 rounds view (PD-OMFLP, |S| = 64, one run):\n\n";
  const Instance inst = default_scenario_registry().make(
      "theorem2", /*seed=*/1, {{"commodities", 64.0}});
  PdOmflp pd{PdOptions{.record_trace = true}};
  const SolutionLedger ledger = run_online(pd, inst);
  TableWriter rounds({"round", "event", "facility config size",
                      "commodities covered by ALG", "cumulative cost"});
  CommoditySet covered(64);
  double cost = 0.0;
  std::size_t fac = 0;
  for (RequestId r = 0; r < inst.num_requests(); ++r) {
    std::string event = "connect";
    std::size_t config_size = 0;
    while (fac < ledger.num_facilities() &&
           ledger.facility(fac).opened_during == r) {
      covered |= ledger.facility(fac).config;
      cost += ledger.facility(fac).open_cost;
      config_size = ledger.facility(fac).config.count();
      event = config_size == 1 ? "open small" : "open LARGE";
      ++fac;
    }
    rounds.begin_row()
        .add(static_cast<long long>(r + 1))
        .add(event)
        .add(static_cast<long long>(config_size))
        .add(static_cast<long long>(covered.count()))
        .add(cost);
  }
  rounds.write_markdown(std::cout);
  std::cout << "\nPD total = " << ledger.total_cost()
            << " vs OPT = 1 (exact); the switch small→large happens at "
            << "round sqrt(S) = 8, as the proof sketch predicts.\n";
  return 0;
}
