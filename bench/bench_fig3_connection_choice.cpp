// Figure 3 — the connection choice between small facilities and a single
// large facility.
//
// The paper's figure shows a request with three commodities choosing the
// cheaper of (a) three separate paths to three small facilities and (b)
// one shared path to a large facility. We realize the figure as a live
// scenario: a priming sequence forces the algorithms to open three small
// facilities at distance d_small from the probe location and one large
// facility at distance d_large, then a probe request demands all three
// commodities and we watch what it connects to.
//
// The scenario's cost model (registered as "figure3" in the scenario
// registry) is engineered to pin facilities exactly where the figure
// wants them (singletons near-free at the small sites, the full bundle
// near-free only at the large site, everything else prohibitive). That
// deliberately violates subadditivity/Condition 1 — the paper's WLOG
// merging argument is exactly what we must suppress to hold the figure's
// configuration in place; the probe's *choice* mechanics (PD's
// constraints (1) vs (2), RAND's X(r) vs Z(r)) do not depend on those
// assumptions.
//
// Expected shape: the shared path wins exactly while
// d_large < 3·d_small = the sum of the separate paths; the crossover sits
// at d_large/d_small = 3 for both algorithms.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "solution/verifier.hpp"
#include "support/table.hpp"

namespace {

using namespace omflp;

std::string choice_name(std::size_t connected) {
  return connected == 1 ? "one large (shared path)" : "separate smalls";
}

}  // namespace

int main() {
  using namespace omflp::bench;
  print_bench_header(
      "Figure 3 — shared path vs separate paths",
      "Figure 3, Section 4.1; PD constraints (1)/(2), RAND's X vs Z",
      "both algorithms switch from the large facility to the three small "
      "ones when d_large exceeds 3*d_small");

  const ScenarioRegistry& scenarios = default_scenario_registry();
  const AlgorithmRegistry& algorithms = default_algorithm_registry();
  const double d_small = 1.0;
  TableWriter table({"d_large", "3*d_small", "PD probe connects to",
                     "PD probe conn cost", "RAND majority choice",
                     "RAND large fraction"});
  for (const double d_large :
       {0.5, 1.0, 2.0, 2.9, 2.999, 3.001, 3.5, 5.0, 10.0}) {
    const Instance inst = scenarios.make(
        "figure3", /*seed=*/1,
        {{"d_small", d_small}, {"d_large", d_large}});

    auto pd = algorithms.make("pd");
    const SolutionLedger pd_ledger = run_online(*pd, inst);
    if (const auto v = verify_solution(inst, pd_ledger)) {
      std::cerr << "PD produced invalid solution: " << v->what << "\n";
      return 1;
    }
    const RequestRecord& pd_probe = pd_ledger.request_records().back();

    int rand_large = 0;
    const int seeds = 20;
    for (int seed = 0; seed < seeds; ++seed) {
      auto rand =
          algorithms.make("rand", static_cast<std::uint64_t>(seed + 1));
      const SolutionLedger rl = run_online(*rand, inst);
      if (rl.request_records().back().connected.size() == 1) ++rand_large;
    }

    table.begin_row()
        .add(d_large)
        .add(3.0 * d_small)
        .add(choice_name(pd_probe.connected.size()))
        .add(pd_probe.connection_cost)
        .add(rand_large > seeds / 2 ? "one large (shared path)"
                                    : "separate smalls")
        .add(static_cast<double>(rand_large) / seeds);
  }
  table.write_markdown(std::cout);
  std::cout << "\nCrossover at d_large = 3*d_small = 3: one shared path of "
               "length 3 costs the same as three separate unit paths.\n";
  return 0;
}
