// Shared helpers for the experiment binaries: standard algorithm rosters
// and ratio measurement over seeded trials.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/competitive.hpp"
#include "analysis/experiment.hpp"
#include "baseline/per_commodity.hpp"
#include "core/pd_omflp.hpp"
#include "core/rand_omflp.hpp"
#include "cost/cost_models.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/registry_util.hpp"
#include "scenario/scenario_registry.hpp"

namespace omflp::bench {

/// Mean competitive ratio of `make_algorithm(seed)` on `make_instance(seed)`
/// over `trials` seeds, trials running in parallel.
inline Summary ratio_over_trials(
    std::size_t trials,
    const std::function<Instance(std::uint64_t)>& make_instance,
    const std::function<std::unique_ptr<OnlineAlgorithm>(std::uint64_t)>&
        make_algorithm,
    const OptEstimateOptions& opt_options = {}) {
  return run_trials(trials, [&](std::size_t trial) {
    const Instance instance = make_instance(trial);
    auto algorithm = make_algorithm(trial);
    return measure_ratio(*algorithm, instance, opt_options).ratio;
  });
}

/// Roster entry point: mean ratio of the registry algorithm `name` (see
/// scenario/algorithm_registry.hpp for the roster) on `make_instance(seed)`
/// over `trials` seeds. Replaces the per-bench algorithm-construction
/// lambdas; randomized algorithms derive their coins from the trial index
/// through derive_algorithm_seed, decorrelated from the instance stream.
inline Summary ratio_for(
    const std::string& algorithm_name, std::size_t trials,
    const std::function<Instance(std::uint64_t)>& make_instance,
    const OptEstimateOptions& opt_options = {}) {
  const AlgorithmRegistry& registry = default_algorithm_registry();
  return ratio_over_trials(
      trials, make_instance,
      [&registry, &algorithm_name](std::uint64_t seed) {
        return registry.make(algorithm_name, derive_algorithm_seed(seed));
      },
      opt_options);
}

/// Roster entry point over a registered scenario: the instance for trial t
/// is `scenario` instantiated with seed seed_base + t and `overrides`.
inline Summary ratio_for_scenario(
    const std::string& algorithm_name, const std::string& scenario,
    std::size_t trials, const std::map<std::string, double>& overrides = {},
    std::uint64_t seed_base = 1,
    const OptEstimateOptions& opt_options = {}) {
  const ScenarioRegistry& scenarios = default_scenario_registry();
  return ratio_for(
      algorithm_name, trials,
      [&scenarios, &scenario, &overrides, seed_base](std::uint64_t seed) {
        return scenarios.make(scenario, seed_base + seed, overrides);
      },
      opt_options);
}

/// "mean ± half-width" cell for result tables.
inline std::string mean_ci(const Summary& summary) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f ± %.3f", summary.mean(),
                summary.ci95_halfwidth());
  return buffer;
}

}  // namespace omflp::bench
