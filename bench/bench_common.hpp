// Shared helpers for the experiment binaries: standard algorithm rosters
// and ratio measurement over seeded trials.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/competitive.hpp"
#include "analysis/experiment.hpp"
#include "baseline/per_commodity.hpp"
#include "core/pd_omflp.hpp"
#include "core/rand_omflp.hpp"
#include "cost/cost_models.hpp"

namespace omflp::bench {

/// Mean competitive ratio of `make_algorithm(seed)` on `make_instance(seed)`
/// over `trials` seeds, trials running in parallel.
inline Summary ratio_over_trials(
    std::size_t trials,
    const std::function<Instance(std::uint64_t)>& make_instance,
    const std::function<std::unique_ptr<OnlineAlgorithm>(std::uint64_t)>&
        make_algorithm,
    const OptEstimateOptions& opt_options = {}) {
  return run_trials(trials, [&](std::size_t trial) {
    const Instance instance = make_instance(trial);
    auto algorithm = make_algorithm(trial);
    return measure_ratio(*algorithm, instance, opt_options).ratio;
  });
}

/// "mean ± half-width" cell for result tables.
inline std::string mean_ci(const Summary& summary) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f ± %.3f", summary.mean(),
                summary.ci95_halfwidth());
  return buffer;
}

}  // namespace omflp::bench
