// Engineering benchmark — quality and runtime of the offline solvers.
//
// Competitive ratios are only as trustworthy as the OPT bound in the
// denominator; this bench quantifies the gap between the exact solver
// (ground truth on tiny instances), local search and the Ravi–Sinha-style
// greedy star, and times the two heuristics at benchmark scale.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "instance/generators.hpp"
#include "metric/line_metric.hpp"
#include "offline/exact_small.hpp"
#include "offline/greedy_star.hpp"
#include "offline/local_search.hpp"
#include "support/table.hpp"

namespace {

using namespace omflp;

Instance tiny_instance(std::uint64_t seed) {
  Rng rng(seed * 29 + 3);
  auto metric = std::make_shared<LineMetric>(std::vector<double>{
      rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
      rng.uniform(0.0, 10.0)});
  auto cost = std::make_shared<PolynomialCostModel>(4, 1.0, 1.5);
  std::vector<Request> reqs;
  for (int i = 0; i < 10; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(3));
    r.commodities = sample_demand_set(
        4, static_cast<CommodityId>(1 + rng.uniform_index(3)), 0.0, rng);
    reqs.push_back(std::move(r));
  }
  return Instance(metric, cost, std::move(reqs), "tiny");
}

template <typename Fn>
std::pair<double, double> timed(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  const double cost = fn();
  const auto stop = std::chrono::steady_clock::now();
  return {cost,
          std::chrono::duration<double, std::milli>(stop - start).count()};
}

}  // namespace

int main() {
  using namespace omflp::bench;
  print_bench_header(
      "Offline solvers — quality vs the exact optimum, and runtime",
      "substrate for every measured competitive ratio; Ravi–Sinha 2004 "
      "greedy (restricted candidate pool)",
      "local search within a few percent of exact; greedy within its "
      "logarithmic envelope; both fast at benchmark scale");

  // ---- quality on exhaustively solvable instances -------------------------
  const std::size_t trials = bench_pick<std::size_t>(20, 100);
  Summary ls_gap, greedy_gap;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const Instance inst = tiny_instance(seed);
    const double exact = solve_exact_small(inst).cost;
    ls_gap.add(solve_local_search(inst).cost / exact);
    greedy_gap.add(solve_greedy_star(inst).cost / exact);
  }
  TableWriter quality({"solver", "cost / exact-OPT (mean)", "p95", "max"});
  quality.begin_row()
      .add("local-search")
      .add(ls_gap.mean())
      .add(ls_gap.quantile(0.95))
      .add(ls_gap.max());
  quality.begin_row()
      .add("greedy-star")
      .add(greedy_gap.mean())
      .add(greedy_gap.quantile(0.95))
      .add(greedy_gap.max());
  quality.write_markdown(std::cout);

  // ---- runtime at benchmark scale -----------------------------------------
  std::cout << "\n### Runtime (uniform-line workloads)\n\n";
  TableWriter timing({"n", "|M|", "|S|", "local-search cost",
                      "local-search ms", "greedy-star cost",
                      "greedy-star ms"});
  for (const auto& [n, points, s] :
       {std::tuple<std::size_t, std::size_t, CommodityId>{64, 16, 8},
        {128, 24, 8},
        {256, 32, 12}}) {
    Rng rng(n + points);
    UniformLineConfig cfg;
    cfg.num_points = points;
    cfg.num_requests = n;
    cfg.num_commodities = s;
    cfg.max_demand = std::min<CommodityId>(5, s);
    const Instance inst = make_uniform_line(
        cfg, std::make_shared<PolynomialCostModel>(s, 1.0, 2.0), rng);
    const auto [ls_cost, ls_ms] =
        timed([&] { return solve_local_search(inst).cost; });
    const auto [greedy_cost, greedy_ms] =
        timed([&] { return solve_greedy_star(inst).cost; });
    timing.begin_row()
        .add(static_cast<long long>(n))
        .add(static_cast<long long>(points))
        .add(static_cast<long long>(s))
        .add(ls_cost)
        .add(ls_ms)
        .add(greedy_cost)
        .add(greedy_ms);
  }
  timing.write_markdown(std::cout);
  return 0;
}
