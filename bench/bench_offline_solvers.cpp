// Engineering benchmark — quality and runtime of the offline solvers.
//
// Competitive ratios are only as trustworthy as the OPT bound in the
// denominator; this bench quantifies the gap between the exact solver
// (ground truth on tiny instances), local search and the Ravi–Sinha-style
// greedy star, and times the two heuristics at benchmark scale.
#include <iostream>

#include "bench_common.hpp"
#include "offline/exact_small.hpp"
#include "offline/greedy_star.hpp"
#include "offline/local_search.hpp"
#include "perf/bench_suite.hpp"
#include "support/table.hpp"

namespace {

using namespace omflp;

/// Exhaustively solvable uniform-line workload (3 points, |S| = 4, ten
/// requests), straight from the scenario registry.
Instance tiny_instance(std::uint64_t seed) {
  return default_scenario_registry().make(
      "uniform-line", seed * 29 + 3,
      {{"points", 3},
       {"length", 10},
       {"requests", 10},
       {"commodities", 4},
       {"max_demand", 3},
       {"popularity_exponent", 0.0},
       {"cost_scale", 1.5}});
}

template <typename Fn>
std::pair<double, double> timed(Fn&& fn) {
  BenchTimer timer;
  const double cost = fn();
  return {cost, timer.elapsed_ns() / 1e6};
}

}  // namespace

int main() {
  using namespace omflp::bench;
  print_bench_header(
      "Offline solvers — quality vs the exact optimum, and runtime",
      "substrate for every measured competitive ratio; Ravi–Sinha 2004 "
      "greedy (restricted candidate pool)",
      "local search within a few percent of exact; greedy within its "
      "logarithmic envelope; both fast at benchmark scale");

  // ---- quality on exhaustively solvable instances -------------------------
  const std::size_t trials = bench_pick<std::size_t>(20, 100);
  Summary ls_gap, greedy_gap;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const Instance inst = tiny_instance(seed);
    const double exact = solve_exact_small(inst).cost;
    ls_gap.add(solve_local_search(inst).cost / exact);
    greedy_gap.add(solve_greedy_star(inst).cost / exact);
  }
  TableWriter quality({"solver", "cost / exact-OPT (mean)", "p95", "max"});
  quality.begin_row()
      .add("local-search")
      .add(ls_gap.mean())
      .add(ls_gap.quantile(0.95))
      .add(ls_gap.max());
  quality.begin_row()
      .add("greedy-star")
      .add(greedy_gap.mean())
      .add(greedy_gap.quantile(0.95))
      .add(greedy_gap.max());
  quality.write_markdown(std::cout);

  // ---- runtime at benchmark scale -----------------------------------------
  std::cout << "\n### Runtime (uniform-line workloads)\n\n";
  TableWriter timing({"n", "|M|", "|S|", "local-search cost",
                      "local-search ms", "greedy-star cost",
                      "greedy-star ms"});
  for (const auto& [n, points, s] :
       {std::tuple<std::size_t, std::size_t, CommodityId>{64, 16, 8},
        {128, 24, 8},
        {256, 32, 12}}) {
    const Instance inst = default_scenario_registry().make(
        "uniform-line", n + points,
        {{"points", static_cast<double>(points)},
         {"requests", static_cast<double>(n)},
         {"commodities", static_cast<double>(s)},
         {"max_demand",
          static_cast<double>(std::min<CommodityId>(5, s))}});
    const auto [ls_cost, ls_ms] =
        timed([&] { return solve_local_search(inst).cost; });
    const auto [greedy_cost, greedy_ms] =
        timed([&] { return solve_greedy_star(inst).cost; });
    timing.begin_row()
        .add(static_cast<long long>(n))
        .add(static_cast<long long>(points))
        .add(static_cast<long long>(s))
        .add(ls_cost)
        .add(ls_ms)
        .add(greedy_cost)
        .add(greedy_ms);
  }
  timing.write_markdown(std::cout);
  return 0;
}
