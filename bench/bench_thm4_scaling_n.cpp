// Theorem 4, n-dependence — PD-OMFLP's ratio grows at most like log n.
//
// Workload: clustered line instances (well-separated clusters with a home
// commodity bundle each), whose generator certificate is a near-exact OPT
// upper bound. n doubles across rows at fixed |S| and cluster structure.
//
// Expected shape: the measured ratio grows slowly (≾ H_n) — the
// "ratio/H_n" column should be flat or shrinking — and stays far below
// the explicit 15·√|S|·H_n budget. The per-commodity baseline column
// shows the constant-factor penalty for ignoring bundling even on mild
// workloads.
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "instance/generators.hpp"
#include "support/harmonic.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Theorem 4 — ratio vs sequence length n",
      "Theorem 4: Cost(PD) <= 15*sqrt(|S|)*H_n*OPT",
      "PD ratio grows at most logarithmically in n (ratio/H_n flat)");

  const CommodityId s = 16;
  const std::size_t trials = bench_pick<std::size_t>(6, 20);
  std::vector<std::size_t> lengths = {64, 128, 256, 512};
  if (bench_full_scale()) {
    lengths.push_back(1024);
    lengths.push_back(2048);
  }

  TableWriter table({"n", "PD ratio (mean±ci)", "PD/H_n",
                     "RAND ratio (mean±ci)", "PerCommodity[Fotakis]",
                     "thm4 budget 15*sqrt(S)*H_n"});
  for (const std::size_t n : lengths) {
    auto make_instance = [&, n](std::uint64_t seed) {
      Rng rng(seed * 104729 + n);
      ClusteredConfig cfg;
      cfg.num_clusters = 8;
      cfg.requests_per_cluster = n / cfg.num_clusters;
      cfg.num_commodities = s;
      cfg.commodities_per_cluster = 4;
      auto cost = std::make_shared<PolynomialCostModel>(s, 1.0, 4.0);
      return make_clustered_line(cfg, cost, rng);
    };
    // The certificate is the OPT bound here (local search would dominate
    // the runtime at these sizes without changing the shape).
    OptEstimateOptions opt;
    opt.allow_local_search = false;

    const Summary pd = ratio_over_trials(
        trials, make_instance,
        [](std::uint64_t) { return std::make_unique<PdOmflp>(); }, opt);
    const Summary rand = ratio_over_trials(
        trials, make_instance,
        [](std::uint64_t seed) {
          return std::make_unique<RandOmflp>(RandOptions{.seed = seed + 1});
        },
        opt);
    const Summary per_comm = ratio_over_trials(
        trials, make_instance,
        [](std::uint64_t) {
          return std::unique_ptr<OnlineAlgorithm>(
              PerCommodityAdapter::fotakis());
        },
        opt);

    table.begin_row()
        .add(static_cast<long long>(n))
        .add(mean_ci(pd))
        .add(pd.mean() / harmonic(n))
        .add(mean_ci(rand))
        .add(per_comm.mean())
        .add(theorem4_bound(s, n));
  }
  table.write_markdown(std::cout);
  std::cout << "\nNote: OPT here is the generator's certificate (a feasible "
               "offline solution), so ratios are conservative "
               "under-estimates of the true competitive ratio.\n";
  return 0;
}
