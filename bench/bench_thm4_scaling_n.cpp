// Theorem 4, n-dependence — PD-OMFLP's ratio grows at most like log n.
//
// Workload: clustered line instances (well-separated clusters with a home
// commodity bundle each), whose generator certificate is a near-exact OPT
// upper bound. n doubles across rows at fixed |S| and cluster structure.
//
// Expected shape: the measured ratio grows slowly (≾ H_n) — the
// "ratio/H_n" column should be flat or shrinking — and stays far below
// the explicit 15·√|S|·H_n budget. The per-commodity baseline column
// shows the constant-factor penalty for ignoring bundling even on mild
// workloads.
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "support/harmonic.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Theorem 4 — ratio vs sequence length n",
      "Theorem 4: Cost(PD) <= 15*sqrt(|S|)*H_n*OPT",
      "PD ratio grows at most logarithmically in n (ratio/H_n flat)");

  const CommodityId s = 16;
  const std::size_t trials = bench_pick<std::size_t>(6, 20);
  std::vector<std::size_t> lengths = {64, 128, 256, 512};
  if (bench_full_scale()) {
    lengths.push_back(1024);
    lengths.push_back(2048);
  }

  TableWriter table({"n", "PD ratio (mean±ci)", "PD/H_n",
                     "RAND ratio (mean±ci)", "PerCommodity[Fotakis]",
                     "thm4 budget 15*sqrt(S)*H_n"});
  for (const std::size_t n : lengths) {
    // The registry's "clustered" scenario, scaled to n requests.
    const std::map<std::string, double> params = {
        {"clusters", 8.0},
        {"requests_per_cluster", static_cast<double>(n / 8)},
        {"separation", 1000.0},
        {"commodities", static_cast<double>(s)},
        {"commodities_per_cluster", 4.0},
        {"cost_scale", 4.0}};
    const std::uint64_t seed_base = static_cast<std::uint64_t>(n) * 104729;
    // The certificate is the OPT bound here (local search would dominate
    // the runtime at these sizes without changing the shape).
    OptEstimateOptions opt;
    opt.allow_local_search = false;

    const Summary pd = ratio_for_scenario("pd", "clustered", trials, params,
                                          seed_base, opt);
    const Summary rand = ratio_for_scenario("rand", "clustered", trials,
                                            params, seed_base, opt);
    const Summary per_comm = ratio_for_scenario("fotakis", "clustered",
                                                trials, params, seed_base,
                                                opt);

    table.begin_row()
        .add(static_cast<long long>(n))
        .add(mean_ci(pd))
        .add(pd.mean() / harmonic(n))
        .add(mean_ci(rand))
        .add(per_comm.mean())
        .add(theorem4_bound(s, n));
  }
  table.write_markdown(std::cout);
  std::cout << "\nNote: OPT here is the generator's certificate (a feasible "
               "offline solution), so ratios are conservative "
               "under-estimates of the true competitive ratio.\n";
  return 0;
}
