// Ablation — heavy commodities and prediction scope (§5 closing remarks).
//
// The paper: Condition 1 rules out commodities whose singleton cost dwarfs
// the per-commodity cost of the full configuration; with such *heavy*
// commodities present, it suggests excluding them from prediction ("a
// large facility becomes one including all non-heavy commodities").
//
// Workload: one point; requests demand the bundle of all non-heavy
// commodities; the cost carries one heavy commodity of weight w on top of
// a 2·sqrt base. OPT opens one non-heavy bundle facility.
//
// Expected shape: plain PD degrades as w grows (the poisoned full-S
// facility becomes useless, PD falls back to singletons → ratio ~√|S'|),
// while PD with the detected heavy set excluded stays at ratio 1
// regardless of w. RAND shows the same qualitative gap (its Z-side prices
// the poisoned full configuration).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cost/checks.hpp"
#include "cost/heavy.hpp"
#include "metric/line_metric.hpp"
#include "support/table.hpp"

namespace {

using namespace omflp;

Instance heavy_instance(CommodityId non_heavy, double weight,
                        std::size_t requests) {
  const CommodityId s = non_heavy + 1;
  std::vector<double> weights(s, 0.0);
  weights[non_heavy] = weight;  // the last commodity is heavy
  auto cost = std::make_shared<HeavyTailCostModel>(
      s,
      [](CommodityId k) { return 2.0 * std::sqrt(static_cast<double>(k)); },
      CommoditySet::singleton(s, non_heavy), std::move(weights));
  CommoditySet bundle(s);
  for (CommodityId e = 0; e < non_heavy; ++e) bundle.add(e);
  std::vector<Request> reqs(requests, Request{0, bundle});
  Instance inst(std::make_shared<SinglePointMetric>(), cost,
                std::move(reqs), "heavy-shared");
  // OPT: one facility with the non-heavy bundle (subadditive sqrt base).
  inst.set_opt_certificate(OptCertificate{
      2.0 * std::sqrt(static_cast<double>(non_heavy)), /*exact=*/true,
      "one non-heavy bundle facility"});
  return inst;
}

}  // namespace

int main() {
  using namespace omflp::bench;
  print_bench_header(
      "Ablation — heavy commodities excluded from prediction",
      "Section 5 closing remarks (Condition 1 and heavy commodities)",
      "plain PD degrades to ~sqrt(|S'|) as the heavy weight grows; the "
      "exclusion variant stays at ratio 1");

  const CommodityId non_heavy = 16;
  const std::size_t n = 8;
  TableWriter table({"heavy weight w", "cond1 holds", "PD (full-S)",
                     "PD[exclude heavy]", "RAND mean", "sqrt(|S'|)"});
  for (const double w : {0.0, 2.0, 8.0, 32.0, 128.0, 1024.0}) {
    const Instance inst = heavy_instance(non_heavy, w, n);
    Rng check_rng(1);
    const bool cond1 =
        !check_condition1_sampled(inst.cost(), 1, 400, check_rng)
             .has_value();

    PdOmflp plain;
    const double plain_ratio = measure_ratio(plain, inst).ratio;

    const CommoditySet heavy =
        detect_heavy_commodities(inst.cost(), 1, 3.0);
    PdOmflp excluded{PdOptions{.excluded_from_prediction = heavy}};
    const double excl_ratio = measure_ratio(excluded, inst).ratio;

    Summary rand_ratios;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      RandOmflp rand{RandOptions{.seed = seed}};
      rand_ratios.add(measure_ratio(rand, inst).ratio);
    }

    table.begin_row()
        .add(w)
        .add(cond1 ? "yes" : "NO")
        .add(plain_ratio)
        .add(excl_ratio)
        .add(rand_ratios.mean())
        .add(std::sqrt(static_cast<double>(non_heavy)));
  }
  table.write_markdown(std::cout);
  std::cout << "\n|S| = " << (non_heavy + 1)
            << " (16 light + 1 heavy); OPT = 2*sqrt(16) = 8 exactly; "
               "detection factor 3.0.\n";
  return 0;
}
