// Ablation — heavy commodities and prediction scope (§5 closing remarks).
//
// The paper: Condition 1 rules out commodities whose singleton cost dwarfs
// the per-commodity cost of the full configuration; with such *heavy*
// commodities present, it suggests excluding them from prediction ("a
// large facility becomes one including all non-heavy commodities").
//
// Workload: one point; requests demand the bundle of all non-heavy
// commodities; the cost carries one heavy commodity of weight w on top of
// a 2·sqrt base. OPT opens one non-heavy bundle facility.
//
// Expected shape: plain PD degrades as w grows (the poisoned full-S
// facility becomes useless, PD falls back to singletons → ratio ~√|S'|),
// while PD with the detected heavy set excluded stays at ratio 1
// regardless of w. RAND shows the same qualitative gap (its Z-side prices
// the poisoned full configuration).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cost/checks.hpp"
#include "cost/heavy.hpp"
#include "support/table.hpp"

int main() {
  using namespace omflp;
  using namespace omflp::bench;
  print_bench_header(
      "Ablation — heavy commodities excluded from prediction",
      "Section 5 closing remarks (Condition 1 and heavy commodities)",
      "plain PD degrades to ~sqrt(|S'|) as the heavy weight grows; the "
      "exclusion variant stays at ratio 1");

  // The workload is the registered "heavy-tail" scenario (deterministic:
  // the seed changes nothing), swept along its heavy_weight axis.
  const CommodityId non_heavy = 16;
  const std::size_t n = 8;
  TableWriter table({"heavy weight w", "cond1 holds", "PD (full-S)",
                     "PD[exclude heavy]", "RAND mean", "sqrt(|S'|)"});
  for (const double w : {0.0, 2.0, 8.0, 32.0, 128.0, 1024.0}) {
    const std::map<std::string, double> params = {
        {"non_heavy", static_cast<double>(non_heavy)},
        {"heavy_weight", w},
        {"requests", static_cast<double>(n)}};
    const Instance inst =
        default_scenario_registry().make("heavy-tail", /*seed=*/1, params);
    Rng check_rng(1);
    const bool cond1 =
        !check_condition1_sampled(inst.cost(), 1, 400, check_rng)
             .has_value();

    PdOmflp plain;
    const double plain_ratio = measure_ratio(plain, inst).ratio;

    // Not a roster algorithm: the excluded set is detected per instance
    // (cost/heavy.hpp), then handed to PD's §5 option.
    const CommoditySet heavy =
        detect_heavy_commodities(inst.cost(), 1, 3.0);
    PdOmflp excluded{PdOptions{.excluded_from_prediction = heavy}};
    const double excl_ratio = measure_ratio(excluded, inst).ratio;

    const Summary rand_ratios =
        ratio_for_scenario("rand", "heavy-tail", 10, params);

    table.begin_row()
        .add(w)
        .add(cond1 ? "yes" : "NO")
        .add(plain_ratio)
        .add(excl_ratio)
        .add(rand_ratios.mean())
        .add(std::sqrt(static_cast<double>(non_heavy)));
  }
  table.write_markdown(std::cout);
  std::cout << "\n|S| = " << (non_heavy + 1)
            << " (16 light + 1 heavy); OPT = 2*sqrt(16) = 8 exactly; "
               "detection factor 3.0.\n";
  return 0;
}
