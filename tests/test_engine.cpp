// Sharded serving engine tests: the workload-mix registry, engine
// construction errors, verifier-clean multi-tenant runs, and — the core
// guarantee — differential bitwise identity: the engine's per-tenant
// ledgers must equal K sequential run_stream runs of the same tenants,
// across shard counts 1/2/K and OMFLP_THREADS 1 vs 4.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/stream_runner.hpp"
#include "engine/sharded_engine.hpp"
#include "perf/perf_counters.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/registry_util.hpp"
#include "scenario/stream_registry.hpp"

namespace omflp {
namespace {

/// The reference: one tenant, served by a plain sequential run_stream
/// with the same derived seeds and options the engine uses.
StreamRunResult sequential_reference(const TenantSpec& spec,
                                     const EngineOptions& options) {
  const EventStream stream = default_stream_scenario_registry().make(
      spec.scenario, spec.seed, spec.overrides);
  auto algorithm = default_algorithm_registry().make(
      spec.algorithm, derive_algorithm_seed(spec.seed));
  StreamRunOptions run_options;
  run_options.policy = options.policy;
  run_options.batch_size = options.batch_size;
  run_options.compact = options.compact;
  run_options.verify = options.verify;
  return run_stream(*algorithm, stream, run_options);
}

/// Bitwise comparison of everything observable about two runs of the
/// same tenant: costs, counts, facility records and resident request
/// records. EXPECT_EQ on doubles is exact equality — the contract is
/// bitwise, not approximate.
void expect_bitwise_identical(const StreamRunResult& actual,
                              const StreamRunResult& expected,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(actual.events, expected.events);
  EXPECT_EQ(actual.arrivals, expected.arrivals);
  EXPECT_EQ(actual.departures, expected.departures);
  EXPECT_EQ(actual.lease_expiries, expected.lease_expiries);
  EXPECT_EQ(actual.peak_active, expected.peak_active);
  EXPECT_EQ(actual.peak_resident_records, expected.peak_resident_records);

  const SolutionLedger& a = actual.ledger;
  const SolutionLedger& b = expected.ledger;
  EXPECT_EQ(a.total_cost(), b.total_cost());
  EXPECT_EQ(a.opening_cost(), b.opening_cost());
  EXPECT_EQ(a.connection_cost(), b.connection_cost());
  EXPECT_EQ(a.active_cost(), b.active_cost());
  EXPECT_EQ(a.num_requests(), b.num_requests());
  EXPECT_EQ(a.num_active_requests(), b.num_active_requests());
  EXPECT_EQ(a.first_record_id(), b.first_record_id());

  ASSERT_EQ(a.num_facilities(), b.num_facilities());
  for (std::size_t f = 0; f < a.num_facilities(); ++f) {
    const OpenFacilityRecord& fa = a.facilities()[f];
    const OpenFacilityRecord& fb = b.facilities()[f];
    EXPECT_EQ(fa.location, fb.location);
    EXPECT_EQ(fa.open_cost, fb.open_cost);
    EXPECT_EQ(fa.opened_during, fb.opened_during);
    EXPECT_TRUE(fa.config == fb.config);
  }

  ASSERT_EQ(a.request_records().size(), b.request_records().size());
  for (std::size_t r = 0; r < a.request_records().size(); ++r) {
    const RequestRecord& ra = a.request_records()[r];
    const RequestRecord& rb = b.request_records()[r];
    EXPECT_EQ(ra.connection_cost, rb.connection_cost);
    EXPECT_EQ(ra.retired_at, rb.retired_at);
  }
}

std::vector<TenantSpec> small_mixed_tenants(std::size_t count,
                                            const std::string& algorithm) {
  std::vector<TenantSpec> specs = default_workload_mix_registry().tenants(
      "mixed", count, /*seed=*/7, /*size_scale=*/0.25);
  for (TenantSpec& spec : specs) spec.algorithm = algorithm;
  return specs;
}

// ------------------------------------------------------------------ mixes ---

TEST(WorkloadMix, RegistryListsBuiltInsAndRejectsUnknowns) {
  const WorkloadMixRegistry& mixes = default_workload_mix_registry();
  EXPECT_GE(mixes.size(), 3u);
  EXPECT_TRUE(mixes.contains("mixed"));
  EXPECT_TRUE(mixes.contains("churn-heavy"));
  EXPECT_TRUE(mixes.contains("lease-heavy"));
  EXPECT_THROW((void)mixes.spec("no-such-mix"), std::invalid_argument);
  EXPECT_THROW((void)mixes.tenants("no-such-mix", 4, 1),
               std::invalid_argument);
  EXPECT_THROW((void)mixes.tenants("mixed", 0, 1), std::invalid_argument);
  EXPECT_THROW((void)mixes.tenants("mixed", 4, 1, /*size_scale=*/0.0),
               std::invalid_argument);
}

TEST(WorkloadMix, TenantExpansionIsDeterministicAndZipfSkewed) {
  const WorkloadMixRegistry& mixes = default_workload_mix_registry();
  const std::vector<TenantSpec> a = mixes.tenants("mixed", 12, 5);
  const std::vector<TenantSpec> b = mixes.tenants("mixed", 12, 5);
  ASSERT_EQ(a.size(), 12u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].scenario, b[i].scenario);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].overrides, b[i].overrides);
  }
  const std::vector<TenantSpec> c = mixes.tenants("mixed", 12, 6);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].seed != c[i].seed) any_difference = true;
  EXPECT_TRUE(any_difference);

  // Zipf hotness: within one scenario family (same size_param base),
  // an earlier tenant is never smaller than a later one.
  std::map<std::string, std::pair<std::size_t, double>> last_by_scenario;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto size_it = a[i].overrides.find(
        a[i].scenario == "adversarial-churn" ? "phases" : "events");
    ASSERT_NE(size_it, a[i].overrides.end()) << a[i].name;
    const auto previous = last_by_scenario.find(a[i].scenario);
    if (previous != last_by_scenario.end())
      EXPECT_GE(previous->second.second, size_it->second) << a[i].name;
    last_by_scenario[a[i].scenario] = {i, size_it->second};
  }
}

TEST(WorkloadMix, SizeScaleShrinksWorkloads) {
  const WorkloadMixRegistry& mixes = default_workload_mix_registry();
  const std::vector<TenantSpec> full = mixes.tenants("churn-heavy", 4, 3);
  const std::vector<TenantSpec> tiny =
      mixes.tenants("churn-heavy", 4, 3, /*size_scale=*/0.125);
  ASSERT_EQ(full.size(), tiny.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].scenario, tiny[i].scenario);
    EXPECT_LE(tiny[i].overrides.at("events"),
              full[i].overrides.at("events"));
  }
}

// ----------------------------------------------------------- construction ---

TEST(ShardedEngine, ConstructionRejectsBadSpecs) {
  EXPECT_THROW(ShardedEngine({}, {}), std::invalid_argument);

  TenantSpec unknown_scenario;
  unknown_scenario.name = "t0";
  unknown_scenario.scenario = "no-such-stream";
  EXPECT_THROW(ShardedEngine({unknown_scenario}, {}),
               std::invalid_argument);

  TenantSpec unknown_algorithm;
  unknown_algorithm.name = "t0";
  unknown_algorithm.scenario = "churn-uniform";
  unknown_algorithm.algorithm = "no-such-algorithm";
  EXPECT_THROW(ShardedEngine({unknown_algorithm}, {}),
               std::invalid_argument);

  TenantSpec ok;
  ok.name = "t0";
  ok.scenario = "churn-uniform";
  ok.overrides = {{"events", 64}};
  EngineOptions zero_batch;
  zero_batch.batch_size = 0;
  EXPECT_THROW(ShardedEngine({ok}, zero_batch), std::invalid_argument);
}

// ----------------------------------------------------------- differential ---

TEST(ShardedEngine, MatchesSequentialRunsBitwiseAcrossShardCounts) {
  const std::size_t kTenants = 6;
  EngineOptions base;
  base.batch_size = 256;  // several rounds per tenant
  base.verify = true;

  const std::vector<TenantSpec> specs =
      small_mixed_tenants(kTenants, "pd");
  std::vector<StreamRunResult> reference;
  reference.reserve(kTenants);
  for (const TenantSpec& spec : specs)
    reference.push_back(sequential_reference(spec, base));

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   kTenants}) {
    EngineOptions options = base;
    options.shards = shards;
    const ShardedEngine engine(specs, options);
    const EngineResult result = engine.run();
    EXPECT_EQ(result.shards, shards);
    EXPECT_EQ(result.first_violation(), nullptr);
    ASSERT_EQ(result.tenants.size(), kTenants);
    for (std::size_t i = 0; i < kTenants; ++i)
      expect_bitwise_identical(
          result.tenants[i].run, reference[i],
          "shards=" + std::to_string(shards) + " tenant " + specs[i].name);
  }
}

TEST(ShardedEngine, MatchesSequentialRunsBitwiseAcrossThreadCounts) {
  const std::size_t kTenants = 5;
  EngineOptions base;
  base.batch_size = 512;
  base.verify = true;
  base.shards = 2;

  const std::vector<TenantSpec> specs =
      small_mixed_tenants(kTenants, "pd");
  std::vector<StreamRunResult> reference;
  for (const TenantSpec& spec : specs)
    reference.push_back(sequential_reference(spec, base));

  for (const char* threads : {"1", "4"}) {
    ::setenv("OMFLP_THREADS", threads, 1);
    const ShardedEngine engine(specs, base);
    const EngineResult result = engine.run();
    ::unsetenv("OMFLP_THREADS");
    EXPECT_EQ(result.first_violation(), nullptr);
    ASSERT_EQ(result.tenants.size(), kTenants);
    for (std::size_t i = 0; i < kTenants; ++i)
      expect_bitwise_identical(result.tenants[i].run, reference[i],
                               std::string("threads=") + threads +
                                   " tenant " + specs[i].name);
  }
}

TEST(ShardedEngine, VerifierOffDoesNotChangeResults) {
  const std::vector<TenantSpec> specs = small_mixed_tenants(3, "greedy");
  EngineOptions verified;
  verified.batch_size = 256;
  verified.verify = true;
  EngineOptions unverified = verified;
  unverified.verify = false;

  const EngineResult a = ShardedEngine(specs, verified).run();
  const EngineResult b = ShardedEngine(specs, unverified).run();
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].run.ledger.total_cost(),
              b.tenants[i].run.ledger.total_cost());
    EXPECT_EQ(a.tenants[i].run.ledger.active_cost(),
              b.tenants[i].run.ledger.active_cost());
  }
  EXPECT_EQ(a.aggregate_gross_cost, b.aggregate_gross_cost);
  EXPECT_EQ(a.aggregate_active_cost, b.aggregate_active_cost);
}

// Admission control under a uniform per-tenant capacity: the per-tenant
// shed/spill tables and the aggregates must be bitwise identical across
// shard counts and OMFLP_THREADS — shedding is part of the determinism
// contract, not a best-effort statistic.
TEST(ShardedEngine, CapacityShedTablesAreBitwiseAcrossShardsAndThreads) {
  const std::size_t kTenants = 4;
  EngineOptions base;
  base.batch_size = 256;
  base.verify = true;
  base.capacity = 1;  // one distinct active request per facility
  base.overflow = OverflowPolicy::kReject;
  base.shards = 1;

  const std::vector<TenantSpec> specs =
      small_mixed_tenants(kTenants, "pd");
  const EngineResult reference = ShardedEngine(specs, base).run();
  EXPECT_EQ(reference.first_violation(), nullptr);
  // Capacity 1 under reject has to actually shed, or this test is
  // vacuous.
  EXPECT_GT(reference.aggregate_shed_requests, 0u);
  std::uint64_t shed_sum = 0;
  std::uint64_t spill_sum = 0;
  for (const TenantResult& tenant : reference.tenants) {
    shed_sum += tenant.run.ledger.num_shed_requests();
    spill_sum += tenant.run.ledger.num_spilled_assignments();
  }
  EXPECT_EQ(reference.aggregate_shed_requests, shed_sum);
  EXPECT_EQ(reference.aggregate_spilled_assignments, spill_sum);

  for (const std::size_t shards : {std::size_t{2}, kTenants}) {
    for (const char* threads : {"1", "4"}) {
      EngineOptions options = base;
      options.shards = shards;
      ::setenv("OMFLP_THREADS", threads, 1);
      const EngineResult result = ShardedEngine(specs, options).run();
      ::unsetenv("OMFLP_THREADS");
      EXPECT_EQ(result.first_violation(), nullptr);
      ASSERT_EQ(result.tenants.size(), kTenants);
      EXPECT_EQ(result.aggregate_shed_requests,
                reference.aggregate_shed_requests);
      EXPECT_EQ(result.aggregate_spilled_assignments,
                reference.aggregate_spilled_assignments);
      for (std::size_t i = 0; i < kTenants; ++i) {
        const std::string label = "shards=" + std::to_string(shards) +
                                  " threads=" + threads + " tenant " +
                                  specs[i].name;
        SCOPED_TRACE(label);
        const SolutionLedger& got = result.tenants[i].run.ledger;
        const SolutionLedger& want = reference.tenants[i].run.ledger;
        EXPECT_EQ(got.num_shed_requests(), want.num_shed_requests());
        EXPECT_EQ(got.num_spilled_assignments(),
                  want.num_spilled_assignments());
        EXPECT_EQ(got.num_rejected_commodities(),
                  want.num_rejected_commodities());
        expect_bitwise_identical(result.tenants[i].run,
                                 reference.tenants[i].run, label);
      }
    }
  }
}

// -------------------------------------------------------------- aggregates ---

TEST(ShardedEngine, AggregatesAndStatsAreConsistent) {
  const std::vector<TenantSpec> specs = small_mixed_tenants(4, "greedy");
  EngineOptions options;
  options.batch_size = 128;
  const ShardedEngine engine(specs, options);
  EXPECT_EQ(engine.tenants().size(), 4u);
  EXPECT_GT(engine.total_events(), 0u);

  // Counters are collected only when the caller is already counting
  // (the bench suite's instrumented pass); plain runs stay hook-free.
  PerfCounters outer;
  std::optional<EngineResult> counted;
  {
    PerfScope scope(outer);
    counted.emplace(engine.run());
  }
  const EngineResult& result = *counted;
  EXPECT_EQ(result.total_events, engine.total_events());
  EXPECT_GT(result.rounds, 1u);
  EXPECT_GT(result.wall_ns, 0.0);
  EXPECT_GT(result.events_per_sec(), 0.0);
  // All real batches are timed (zero-event exhaustion probes are not);
  // the longest tenant alone contributes rounds - 1 of them.
  EXPECT_GE(result.batch_latency.count, result.rounds - 1);
  EXPECT_GT(result.batch_latency.p50_ns, 0.0);
  EXPECT_LE(result.batch_latency.p50_ns, result.batch_latency.p95_ns);
  EXPECT_LE(result.batch_latency.p95_ns, result.batch_latency.p99_ns);
  // The engine's merged work counters match the sequential sum.
  EXPECT_EQ(result.counters.requests_served,
            [&] {
              std::uint64_t arrivals = 0;
              for (const TenantResult& tenant : result.tenants)
                arrivals += tenant.run.arrivals;
              return arrivals;
            }());
  // Without an outer sink the engine must not count at all.
  const EngineResult uncounted = engine.run();
  EXPECT_TRUE(uncounted.counters.all_zero());

  double gross = 0.0;
  double active = 0.0;
  for (const TenantResult& tenant : result.tenants) {
    gross += tenant.run.ledger.total_cost();
    active += tenant.run.ledger.active_cost();
  }
  EXPECT_EQ(result.aggregate_gross_cost, gross);
  EXPECT_EQ(result.aggregate_active_cost, active);
}

TEST(ShardedEngine, SixteenMixedTenantsVerifierClean) {
  // The acceptance shape: >= 16 heterogeneous tenants, verifier on,
  // every ledger clean. Scaled down for test time; `omflp serve` and CI
  // run the full size.
  std::vector<TenantSpec> specs = default_workload_mix_registry().tenants(
      "mixed", 16, /*seed=*/1, /*size_scale=*/0.125);
  for (TenantSpec& spec : specs) spec.algorithm = "greedy";
  EngineOptions options;
  options.batch_size = 256;
  const EngineResult result = ShardedEngine(std::move(specs), options).run();
  EXPECT_EQ(result.tenants.size(), 16u);
  EXPECT_EQ(result.first_violation(), nullptr);
  std::size_t scenarios_seen = 0;
  std::map<std::string, std::size_t> by_scenario;
  for (const TenantResult& tenant : result.tenants)
    ++by_scenario[tenant.scenario];
  scenarios_seen = by_scenario.size();
  EXPECT_GE(scenarios_seen, 3u);  // genuinely heterogeneous
}

}  // namespace
}  // namespace omflp
