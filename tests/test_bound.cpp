// Bound-layer tests: the dual-ascent bounder against hand-computed LP
// values and the exact solver (weak duality: LB ≤ OPT on every exactly
// solvable instance, across all four metric families and both cost
// families), the independent certificate checker as a tamper detector,
// certificate serialization round-trips, the window decomposer and the
// chunked composition, bitwise determinism across thread counts, the
// bound registry roster, and the certified sweep columns.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bound/certificate.hpp"
#include "bound/dual_ascent.hpp"
#include "bound/registry.hpp"
#include "bound/window.hpp"
#include "cost/cost_models.hpp"
#include "cost/heavy.hpp"
#include "instance/event_stream.hpp"
#include "metric/line_metric.hpp"
#include "metamorphic_common.hpp"
#include "offline/opt_estimate.hpp"
#include "scenario/sweep.hpp"

namespace omflp {
namespace {

Request make_request(PointId location, CommodityId universe,
                     std::initializer_list<CommodityId> demanded) {
  Request r;
  r.location = location;
  r.commodities = CommoditySet(universe);
  for (const CommodityId e : demanded) r.commodities.add(e);
  return r;
}

// ------------------------------------------------------------ hand-checks ---

// Two requests at opposite ends of a length-L line, one commodity of
// weight w < L: each request's dual rises until its own location's
// facility budget w is exhausted, so LB = 2w — which IS the optimum
// (opening at both ends costs 2w; sharing one facility costs w + L > 2w).
TEST(DualAscent, TwoSeparatedRequestsReachTheExactOptimum) {
  const double w = 3.0, L = 10.0;
  const MetricPtr metric = LineMetric::uniform_grid(2, L);
  const CostModelPtr cost = std::make_shared<LinearCostModel>(1, w);
  Instance instance(metric, cost,
                    {make_request(0, 1, {0}), make_request(1, 1, {0})},
                    "two-ends");

  const DualAscentResult res = dual_ascent_lower_bound(instance);
  EXPECT_NEAR(res.lower_bound, 2.0 * w, 1e-12);
  EXPECT_EQ(verify_certificate(instance, res.certificate), std::nullopt);

  const OptEstimate opt = estimate_opt(instance);
  ASSERT_TRUE(opt.exact);
  EXPECT_NEAR(opt.cost, 2.0 * w, 1e-12);
}

// Two colocated requests sharing one commodity of weight w: their duals
// rise together and the facility is paid off at t = w/2 each, LB = w.
TEST(DualAscent, ColocatedRequestsSplitTheOpeningCost) {
  const double w = 4.0;
  const MetricPtr metric = LineMetric::uniform_grid(3, 10.0);
  const CostModelPtr cost = std::make_shared<LinearCostModel>(1, w);
  Instance instance(metric, cost,
                    {make_request(1, 1, {0}), make_request(1, 1, {0})},
                    "colocated");

  const DualAscentResult res = dual_ascent_lower_bound(instance);
  EXPECT_NEAR(res.lower_bound, w, 1e-12);
  EXPECT_EQ(res.certificate.duals.size(), 2u);
  EXPECT_NEAR(res.certificate.duals[0][0], w / 2.0, 1e-12);
  EXPECT_NEAR(res.certificate.duals[1][0], w / 2.0, 1e-12);
  EXPECT_EQ(verify_certificate(instance, res.certificate), std::nullopt);
}

// ------------------------------------------------- weak duality, randomized ---

// Every exactly solvable instance must satisfy LB ≤ OPT (weak duality)
// with a certificate the independent checker accepts — swept over all
// four metric families × both cost families. Sizes are chosen to fit
// ExactSolverLimits so the comparison is against the true optimum.
TEST(DualAscent, LowerBoundNeverExceedsExactOptAcrossFamilies) {
  using metamorphic::CostFamily;
  using metamorphic::MetricFamily;
  const MetricFamily metrics[] = {MetricFamily::kLine,
                                  MetricFamily::kEuclidean,
                                  MetricFamily::kGraph,
                                  MetricFamily::kMatrix};
  const CostFamily costs[] = {CostFamily::kLinear, CostFamily::kPolynomial};

  metamorphic::GeneratorOptions gen;
  gen.min_points = 3;
  gen.max_points = 4;
  gen.min_commodities = 3;
  gen.max_commodities = 4;
  gen.min_requests = 6;
  gen.max_requests = 12;

  std::uint64_t seed = 1;
  for (const MetricFamily metric_family : metrics) {
    for (const CostFamily cost_family : costs) {
      gen.metric_family = metric_family;
      gen.cost_family = cost_family;
      for (int trial = 0; trial < 8; ++trial) {
        const Instance instance =
            metamorphic::random_instance(seed++, gen).instance;
        const DualAscentResult res = dual_ascent_lower_bound(instance);
        const auto violation = verify_certificate(instance, res.certificate);
        ASSERT_EQ(violation, std::nullopt)
            << "seed " << seed - 1 << ": " << *violation;

        const OptEstimate opt = estimate_opt(instance);
        ASSERT_TRUE(opt.exact) << "generator produced a non-exact size";
        const double tol = 1e-9 * std::max(1.0, std::abs(opt.cost));
        EXPECT_LE(res.lower_bound, opt.cost + tol)
            << "weak duality violated at seed " << seed - 1;
      }
    }
  }
}

// estimate_opt's own cross-check path: on exact instances the certified
// lower equals the exact value and the internal dual-certificate
// comparison passes without throwing.
TEST(OptEstimate, ExactInstancesCarryCertifiedLowerEqualToOpt) {
  metamorphic::GeneratorOptions gen;
  gen.min_points = 3;
  gen.max_points = 4;
  gen.min_commodities = 3;
  gen.max_commodities = 4;
  gen.min_requests = 6;
  gen.max_requests = 10;
  OptEstimateOptions options;
  options.compute_lower = true;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const Instance instance =
        metamorphic::random_instance(seed, gen).instance;
    const OptEstimate est = estimate_opt(instance, options);
    ASSERT_TRUE(est.exact);
    EXPECT_TRUE(est.lower_certified);
    EXPECT_EQ(est.lower, est.cost);
    EXPECT_EQ(est.lower_method, est.method);
  }
}

// On instances beyond the exact limits the lower field is a genuine dual
// bound below the heuristic upper estimate.
TEST(OptEstimate, HeuristicEstimatesGetADualLowerBound) {
  metamorphic::GeneratorOptions gen;  // defaults exceed ExactSolverLimits
  OptEstimateOptions options;
  options.compute_lower = true;
  const Instance instance =
      metamorphic::random_instance(42, gen).instance;
  const OptEstimate est = estimate_opt(instance, options);
  ASSERT_FALSE(est.exact);
  ASSERT_TRUE(est.lower_certified);
  EXPECT_GT(est.lower, 0.0);
  EXPECT_LE(est.lower, est.cost);
}

// ------------------------------------------------------- tamper rejection ---

class CertificateTamper : public ::testing::Test {
 protected:
  void SetUp() override {
    metamorphic::GeneratorOptions gen;
    gen.min_points = 3;
    gen.max_points = 4;
    gen.min_commodities = 3;
    gen.max_commodities = 4;
    gen.min_requests = 8;
    gen.max_requests = 12;
    instance_ = std::make_unique<Instance>(
        metamorphic::random_instance(7, gen).instance);
    result_ = dual_ascent_lower_bound(*instance_);
    ASSERT_EQ(verify_certificate(*instance_, result_.certificate),
              std::nullopt);
  }

  std::unique_ptr<Instance> instance_;
  DualAscentResult result_;
};

TEST_F(CertificateTamper, PerturbedDualIsRejected) {
  DualCertificate cert = result_.certificate;
  ASSERT_FALSE(cert.duals.empty());
  ASSERT_FALSE(cert.duals[0].empty());
  // Raise one dual (and keep the objective consistent so the objective
  // recomputation cannot be what catches it): feasibility or the slack
  // audit must reject the inflated bound.
  cert.duals[0][0] += 10.0;
  cert.objective += 10.0;
  EXPECT_NE(verify_certificate(*instance_, cert), std::nullopt);
}

TEST_F(CertificateTamper, InflatedObjectiveIsRejected) {
  DualCertificate cert = result_.certificate;
  cert.objective += 1.0;
  EXPECT_NE(verify_certificate(*instance_, cert), std::nullopt);
}

TEST_F(CertificateTamper, WrongFacilitySlackIsRejected) {
  DualCertificate cert = result_.certificate;
  ASSERT_FALSE(cert.facility_slack.empty());
  cert.facility_slack[0] += 1.0;
  EXPECT_NE(verify_certificate(*instance_, cert), std::nullopt);
}

TEST_F(CertificateTamper, NegativeDualIsRejected) {
  DualCertificate cert = result_.certificate;
  cert.duals[0][0] = -1.0;
  EXPECT_NE(verify_certificate(*instance_, cert), std::nullopt);
}

// ----------------------------------------------------------- serialization ---

TEST(Certificate, RoundTripPreservesEveryField) {
  metamorphic::GeneratorOptions gen;
  gen.min_points = 3;
  gen.max_points = 4;
  gen.min_requests = 6;
  gen.max_requests = 10;
  const Instance instance = metamorphic::random_instance(11, gen).instance;
  const DualAscentResult res = dual_ascent_lower_bound(instance);

  const std::string text = certificate_to_string(res.certificate);
  const DualCertificate parsed = certificate_from_string(text);
  EXPECT_EQ(parsed.num_requests, res.certificate.num_requests);
  EXPECT_EQ(parsed.num_commodities, res.certificate.num_commodities);
  EXPECT_EQ(parsed.num_points, res.certificate.num_points);
  EXPECT_EQ(parsed.method, res.certificate.method);
  EXPECT_EQ(parsed.objective, res.certificate.objective);  // bitwise
  EXPECT_EQ(parsed.duals, res.certificate.duals);
  EXPECT_EQ(parsed.facility_slack, res.certificate.facility_slack);
  // The parsed certificate is still verifiable against the instance.
  EXPECT_EQ(verify_certificate(instance, parsed), std::nullopt);
  // And re-serialization is a fixed point (precision 17 round-trips).
  EXPECT_EQ(certificate_to_string(parsed), text);
}

TEST(Certificate, ParserRejectsTrailingGarbage) {
  const MetricPtr metric = LineMetric::uniform_grid(2, 1.0);
  const CostModelPtr cost = std::make_shared<LinearCostModel>(1, 1.0);
  Instance instance(metric, cost, {make_request(0, 1, {0})}, "tiny");
  const DualAscentResult res = dual_ascent_lower_bound(instance);
  const std::string text = certificate_to_string(res.certificate);
  EXPECT_THROW((void)certificate_from_string(text + "extra junk\n"),
               std::invalid_argument);
}

// ----------------------------------------------------- windows and chunks ---

TEST(WindowBound, DrainingStreamsSplitIntoBusyWindows) {
  const MetricPtr metric = LineMetric::uniform_grid(4, 9.0);
  const CostModelPtr cost = std::make_shared<LinearCostModel>(2, 1.0);
  // Timeline: A (lease 1) expires before event 1 → window {A}; B
  // (lease 1) expires before event 2 → window {B}; C is pinned and
  // survives → final window {C}.
  std::vector<StreamEvent> events;
  events.push_back(StreamEvent::arrival(make_request(0, 2, {0}), 1));
  events.push_back(StreamEvent::arrival(make_request(1, 2, {1}), 1));
  events.push_back(StreamEvent::arrival(make_request(3, 2, {0}), 0));
  const EventStream stream(metric, cost, std::move(events), "drain");
  stream.validate();

  MaterializedEventSource source(stream);
  const StreamBoundResult res = bound_stream_windows(source);
  EXPECT_EQ(res.windows, 3u);
  EXPECT_EQ(res.forced_splits, 0u);
  EXPECT_EQ(res.arrivals, 3u);
  ASSERT_EQ(res.per_window.size(), 3u);
  double sum = 0.0;
  for (const WindowBoundRow& row : res.per_window) {
    EXPECT_EQ(row.arrivals, 1u);
    // A lone one-commodity request at its own point: LB = the weight 1.
    EXPECT_NEAR(row.lower, 1.0, 1e-12);
    sum += row.lower;
  }
  EXPECT_EQ(res.windowed_lower, sum);
}

TEST(WindowBound, ArrivalCapForcesASplit) {
  const MetricPtr metric = LineMetric::uniform_grid(4, 9.0);
  const CostModelPtr cost = std::make_shared<LinearCostModel>(2, 1.0);
  std::vector<StreamEvent> events;
  for (int i = 0; i < 3; ++i)
    events.push_back(StreamEvent::arrival(make_request(0, 2, {0}), 0));
  const EventStream stream(metric, cost, std::move(events), "pinned");

  MaterializedEventSource source(stream);
  WindowBoundOptions options;
  options.max_window_arrivals = 2;
  const StreamBoundResult res = bound_stream_windows(source, options);
  EXPECT_EQ(res.windows, 2u);
  EXPECT_EQ(res.forced_splits, 1u);
  EXPECT_EQ(res.max_window_arrivals, 2u);
}

TEST(ChunkedBound, SingleChunkEqualsThePlainBoundAndStaysBelowOpt) {
  metamorphic::GeneratorOptions gen;
  gen.min_points = 3;
  gen.max_points = 4;
  gen.min_requests = 8;
  gen.max_requests = 12;
  const Instance instance = metamorphic::random_instance(19, gen).instance;

  const DualAscentResult plain = dual_ascent_lower_bound(instance);
  const ChunkedBound whole = bound_instance_chunked(instance);
  EXPECT_EQ(whole.chunks, 1u);
  EXPECT_EQ(whole.lower, plain.lower_bound);  // bitwise: same computation

  WindowBoundOptions options;
  options.max_window_arrivals = 3;
  const ChunkedBound split = bound_instance_chunked(instance, options);
  EXPECT_GT(split.chunks, 1u);
  const OptEstimate opt = estimate_opt(instance);
  ASSERT_TRUE(opt.exact);
  const double tol = 1e-9 * std::max(1.0, std::abs(opt.cost));
  // Max over request subsets — a valid OPT bound even after splitting.
  EXPECT_LE(split.lower, opt.cost + tol);
}

// ------------------------------------------------------------ determinism ---

TEST(DualAscent, BitwiseIdenticalAcrossThreadCounts) {
  metamorphic::GeneratorOptions gen;  // default (larger) sizes
  gen.min_commodities = 5;
  gen.max_commodities = 6;
  for (std::uint64_t seed = 60; seed < 63; ++seed) {
    const Instance instance =
        metamorphic::random_instance(seed, gen).instance;
    DualAscentOptions one;
    one.threads = 1;
    DualAscentOptions four;
    four.threads = 4;
    const DualAscentResult a = dual_ascent_lower_bound(instance, one);
    const DualAscentResult b = dual_ascent_lower_bound(instance, four);
    EXPECT_EQ(certificate_to_string(a.certificate),
              certificate_to_string(b.certificate))
        << "thread-count nondeterminism at seed " << seed;
  }
}

// ---------------------------------------------------------------- registry ---

TEST(BoundRegistry, RosterAndErrors) {
  const BoundRegistry& registry = default_bound_registry();
  for (const char* name :
       {"auto", "certificate", "chunked", "dual-ascent", "exact-small"})
    EXPECT_TRUE(registry.contains(name)) << name;
  EXPECT_THROW((void)registry.spec("nope"), std::invalid_argument);

  const MetricPtr metric = LineMetric::uniform_grid(2, 5.0);
  const CostModelPtr cost = std::make_shared<LinearCostModel>(1, 1.0);
  Instance instance(metric, cost,
                    {make_request(0, 1, {0}), make_request(1, 1, {0})},
                    "registry");
  // No generator certificate on a hand-built instance.
  EXPECT_THROW((void)registry.make("certificate", instance),
               BoundUnsupportedError);
  const BoundOutcome exact = registry.make("exact-small", instance);
  EXPECT_TRUE(exact.exact);
  const BoundOutcome ascent = registry.make("dual-ascent", instance);
  EXPECT_TRUE(ascent.certificate.has_value());
  EXPECT_LE(ascent.lower, exact.lower + 1e-12);
  // auto prefers the exact value here.
  const BoundOutcome picked = registry.make("auto", instance);
  EXPECT_TRUE(picked.exact);
  EXPECT_EQ(picked.lower, exact.lower);
}

TEST(BoundRegistry, UnsupportedCostStructureThrows) {
  // Heavy-tail costs expose neither additive weights nor a size-only
  // form; with the exhaustive budget fallback disabled the bounder must
  // refuse rather than emit an unsound bound.
  const CommodityId s = 4;
  CommoditySet heavy(s);
  heavy.add(0);
  const CostModelPtr cost = std::make_shared<HeavyTailCostModel>(
      s, [](CommodityId k) { return std::sqrt(static_cast<double>(k)); },
      heavy, std::vector<double>{5.0, 0.0, 0.0, 0.0});
  const MetricPtr metric = LineMetric::uniform_grid(2, 5.0);
  Instance instance(metric, cost, {make_request(0, s, {0, 1})}, "heavy");

  DualAscentOptions options;
  options.max_exhaustive_commodities = 2;  // below |S| = 4
  EXPECT_THROW((void)dual_ascent_lower_bound(instance, options),
               BoundUnsupportedError);
  // With the default budget the exhaustive fallback handles it exactly.
  const DualAscentResult res = dual_ascent_lower_bound(instance);
  EXPECT_EQ(verify_certificate(instance, res.certificate), std::nullopt);
}

// ------------------------------------------------------------ sweep columns ---

TEST(Sweep, CertifiedColumnsAppearWhenRequested) {
  SweepOptions options;
  options.scenarios = {"theorem2"};
  options.algorithms = {"pd"};
  options.seeds = 2;
  options.opt.compute_lower = true;
  const SweepResult result = run_sweep(options);
  const SweepCell& cell = result.cell("theorem2", "pd");
  EXPECT_EQ(cell.lower_certified, 2u);
  ASSERT_EQ(cell.certified_ratio.count(), 2u);
  // theorem2 carries an exact certificate: zero gap, certified == plain.
  EXPECT_EQ(cell.gap.mean(), 0.0);
  EXPECT_EQ(cell.certified_ratio.mean(), cell.ratio.mean());

  std::ostringstream csv;
  result.write_csv(csv);
  EXPECT_NE(csv.str().find("certified_ratio_mean"), std::string::npos);
  EXPECT_NE(csv.str().find("gap_mean"), std::string::npos);
  std::ostringstream json;
  result.write_json(json);
  EXPECT_NE(json.str().find("\"lower_certified\": 2"), std::string::npos);
}

// Without the opt-in the certified columns stay empty — and cost nothing.
TEST(Sweep, CertifiedColumnsStayEmptyByDefault) {
  SweepOptions options;
  options.scenarios = {"theorem2"};
  options.algorithms = {"pd"};
  options.seeds = 1;
  const SweepResult result = run_sweep(options);
  const SweepCell& cell = result.cell("theorem2", "pd");
  // theorem2 is exact, so the lower bound rides along for free even
  // without compute_lower (the exact value certifies itself).
  EXPECT_EQ(cell.lower_certified, 1u);
  EXPECT_EQ(cell.gap.mean(), 0.0);
}

}  // namespace
}  // namespace omflp
