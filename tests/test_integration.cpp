// End-to-end integration: every algorithm against every workload family
// must produce verifier-clean solutions; serialization round-trips must
// replay identically; the alternative connection-charge policy must be
// consistently more expensive.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "baseline/greedy.hpp"
#include "baseline/per_commodity.hpp"
#include "cost/checks.hpp"
#include "core/pd_omflp.hpp"
#include "core/rand_omflp.hpp"
#include "metric/line_metric.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "instance/io.hpp"
#include "solution/verifier.hpp"

namespace omflp {
namespace {

using AlgorithmFactory = std::function<std::unique_ptr<OnlineAlgorithm>()>;

std::vector<std::pair<std::string, AlgorithmFactory>> all_algorithms() {
  return {
      {"pd", [] { return std::make_unique<PdOmflp>(); }},
      {"pd-reference",
       [] {
         return std::make_unique<PdOmflp>(
             PdOptions{.bid_mode = PdOptions::BidMode::kReference});
       }},
      {"pd-no-prediction",
       [] {
         return std::make_unique<PdOmflp>(
             PdOptions{.prediction = PdOptions::Prediction::kOff});
       }},
      {"pd-seen-union",
       [] {
         return std::make_unique<PdOmflp>(
             PdOptions{.large_config = PdOptions::LargeConfig::kSeenUnion});
       }},
      {"rand",
       [] { return std::make_unique<RandOmflp>(RandOptions{.seed = 7}); }},
      {"per-commodity-fotakis",
       [] {
         return std::unique_ptr<OnlineAlgorithm>(
             PerCommodityAdapter::fotakis());
       }},
      {"per-commodity-meyerson",
       [] {
         return std::unique_ptr<OnlineAlgorithm>(
             PerCommodityAdapter::meyerson(11));
       }},
      {"always-open", [] { return std::make_unique<AlwaysOpen>(); }},
      {"nearest-or-open", [] { return std::make_unique<NearestOrOpen>(); }},
      {"rent-or-buy", [] { return std::make_unique<RentOrBuy>(); }},
  };
}

std::vector<Instance> all_workloads() {
  std::vector<Instance> workloads;
  {
    Rng rng(101);
    UniformLineConfig cfg;
    cfg.num_points = 10;
    cfg.num_requests = 40;
    cfg.num_commodities = 6;
    cfg.max_demand = 4;
    workloads.push_back(make_uniform_line(
        cfg, std::make_shared<PolynomialCostModel>(6, 1.0), rng));
  }
  {
    Rng rng(102);
    ClusteredConfig cfg;
    cfg.num_clusters = 3;
    cfg.requests_per_cluster = 10;
    cfg.num_commodities = 8;
    cfg.commodities_per_cluster = 3;
    workloads.push_back(make_clustered_line(
        cfg, std::make_shared<PolynomialCostModel>(8, 1.0), rng));
  }
  {
    Rng rng(103);
    ZoomingConfig cfg;
    cfg.num_requests = 30;
    cfg.num_commodities = 4;
    cfg.demand_size = 2;
    workloads.push_back(make_zooming_line(
        cfg, std::make_shared<PolynomialCostModel>(4, 1.0), rng));
  }
  {
    Rng rng(104);
    ServiceNetworkConfig cfg;
    cfg.num_nodes = 16;
    cfg.num_requests = 40;
    cfg.num_commodities = 6;
    cfg.max_demand = 3;
    workloads.push_back(make_service_network(
        cfg, std::make_shared<PolynomialCostModel>(6, 1.0), rng));
  }
  {
    Rng rng(105);
    SinglePointMixedConfig cfg;
    cfg.num_requests = 25;
    cfg.num_commodities = 8;
    cfg.max_demand = 5;
    workloads.push_back(make_single_point_mixed(
        cfg, std::make_shared<CeilRatioCostModel>(8), rng));
  }
  {
    Rng rng(106);
    Theorem2Config cfg;
    cfg.num_commodities = 49;
    workloads.push_back(make_theorem2_instance(cfg, rng));
  }
  {
    // Non-uniform (point-scaled) costs exercise RAND's multi-class path.
    Rng rng(107);
    UniformLineConfig cfg;
    cfg.num_points = 8;
    cfg.num_requests = 30;
    cfg.num_commodities = 5;
    cfg.max_demand = 3;
    auto base = std::make_shared<PolynomialCostModel>(5, 1.0);
    std::vector<double> multipliers;
    for (std::size_t i = 0; i < cfg.num_points; ++i)
      multipliers.push_back(rng.uniform(0.5, 8.0));
    workloads.push_back(make_uniform_line(
        cfg,
        std::make_shared<PointScaledCostModel>(base, multipliers), rng));
  }
  return workloads;
}

TEST(Integration, EveryAlgorithmValidOnEveryWorkload) {
  const auto workloads = all_workloads();
  for (const auto& [name, factory] : all_algorithms()) {
    for (const Instance& inst : workloads) {
      auto algorithm = factory();
      const SolutionLedger ledger = run_online(*algorithm, inst);
      const auto violation = verify_solution(inst, ledger);
      EXPECT_FALSE(violation.has_value())
          << name << " on " << inst.name() << ": "
          << (violation ? violation->what : "");
      EXPECT_GT(ledger.total_cost(), 0.0) << name << " on " << inst.name();
    }
  }
}

TEST(Integration, PerCommodityPolicyCostsAtLeastPerFacility) {
  // Charging the path once per commodity can only increase cost relative
  // to the shared-path model, for the same decision sequence.
  const auto workloads = all_workloads();
  for (const Instance& inst : workloads) {
    PdOmflp pd_shared;
    PdOmflp pd_split;
    const double shared =
        run_online(pd_shared, inst, ConnectionChargePolicy::kPerFacility)
            .total_cost();
    const double split =
        run_online(pd_split, inst, ConnectionChargePolicy::kPerCommodity)
            .total_cost();
    EXPECT_GE(split + 1e-9, shared) << inst.name();
  }
}

TEST(Integration, SerializedInstanceReplaysIdentically) {
  Rng rng(201);
  UniformLineConfig cfg;
  cfg.num_points = 8;
  cfg.num_requests = 30;
  cfg.num_commodities = 5;
  cfg.max_demand = 3;
  const Instance original = make_uniform_line(
      cfg, std::make_shared<PolynomialCostModel>(5, 1.0), rng);
  const Instance loaded = instance_from_string(instance_to_string(original));

  PdOmflp pd_a, pd_b;
  const SolutionLedger la = run_online(pd_a, original);
  const SolutionLedger lb = run_online(pd_b, loaded);
  EXPECT_NEAR(la.total_cost(), lb.total_cost(), 1e-9);
  EXPECT_EQ(la.num_facilities(), lb.num_facilities());

  RandOmflp rand_a{RandOptions{.seed = 3}}, rand_b{RandOptions{.seed = 3}};
  EXPECT_NEAR(run_online(rand_a, original).total_cost(),
              run_online(rand_b, loaded).total_cost(), 1e-9);
}

TEST(Integration, Figure3CrossoverAtThreeTimesSmallDistance) {
  // Miniature of bench_fig3_connection_choice: a probe demanding three
  // commodities picks the single large facility while its distance is
  // below the sum of the three small-facility paths, and the smalls
  // beyond it. Scenario costs are engineered (see the bench for details).
  struct Fig3Cost final : FacilityCostModel {
    CommodityId num_commodities() const noexcept override { return 3; }
    double open_cost(PointId m, const CommoditySet& config) const override {
      const CommodityId size = check_config(config);
      if (size == 0) return 0.0;
      if (m >= 1 && m <= 4 && size == 1) return 1e-4;
      if (m == 4) return 1e-4 * size;
      return 1e6 * size;
    }
    std::string description() const override { return "fig3"; }
  };
  auto run_probe = [&](double d_large) {
    auto metric = std::make_shared<LineMetric>(
        std::vector<double>{0.0, 1.0, -1.0, 1.0, d_large});
    std::vector<Request> requests;
    for (CommodityId e = 0; e < 3; ++e)
      requests.push_back(Request{static_cast<PointId>(1 + e),
                                 CommoditySet::singleton(3, e)});
    requests.push_back(Request{4, CommoditySet::full_set(3)});
    requests.push_back(Request{0, CommoditySet::full_set(3)});
    Instance inst(metric, std::make_shared<Fig3Cost>(), requests, "fig3");
    PdOmflp pd;
    const SolutionLedger ledger = run_online(pd, inst);
    EXPECT_FALSE(verify_solution(inst, ledger).has_value());
    return ledger.request_records().back().connected.size();
  };
  EXPECT_EQ(run_probe(2.9), 1u);   // shared path wins below 3*1
  EXPECT_EQ(run_probe(3.1), 3u);   // separate paths win above it
}

TEST(Integration, CostModelAssumptionsHoldOnAllWorkloads) {
  // Every shipped workload must satisfy the paper's Condition 1 and
  // subadditivity — otherwise the theorems don't apply to our benches.
  Rng rng(301);
  for (const Instance& inst : all_workloads()) {
    const std::size_t points = inst.metric().num_points();
    EXPECT_FALSE(check_condition1_sampled(inst.cost(), points, 200, rng)
                     .has_value())
        << inst.name();
    EXPECT_FALSE(check_subadditivity_sampled(inst.cost(), points, 200, rng)
                     .has_value())
        << inst.name();
  }
}

}  // namespace
}  // namespace omflp
