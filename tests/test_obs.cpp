// Observability subsystem tests: the TraceSink install/suppress contract,
// the OMFLP-TRACELOG v1 round trip (byte identity) and tamper rejection,
// thread-count trace determinism for both the single-stream path and the
// ShardedEngine, the trace_events_emitted counter, the MetricsSampler
// CSV/JSONL schema, and `explain` output on a hand-computed Theorem-2
// style instance where the opening chain is known.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/online_algorithm.hpp"
#include "core/pd_omflp.hpp"
#include "core/stream_runner.hpp"
#include "cost/cost_models.hpp"
#include "engine/sharded_engine.hpp"
#include "instance/tracelog_io.hpp"
#include "metric/line_metric.hpp"
#include "obs/explain.hpp"
#include "obs/metrics_sampler.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "scenario/stream_registry.hpp"

namespace omflp {
namespace {

/// A churn stream traced through PD: covers every event kind the stream
/// path can produce (opens, assigns, dual raises, departs, rollbacks).
std::vector<TraceEvent> traced_churn_events(std::uint64_t seed = 1) {
  const EventStream stream = default_stream_scenario_registry().make(
      "churn-uniform", seed, {{"events", 512}});
  PdOmflp pd;
  TraceBuffer buffer;
  {
    TraceScope scope(buffer);
    StreamRunOptions options;
    options.batch_size = 128;
    (void)run_stream(pd, stream, options);
  }
  return buffer.events();
}

std::size_t count_kind(const std::vector<TraceEvent>& events,
                       TraceEventKind kind) {
  std::size_t n = 0;
  for (const TraceEvent& ev : events)
    if (ev.kind == kind) ++n;
  return n;
}

// ------------------------------------------------------- sink contract ---

TEST(TraceSink, OffByDefaultAndScopeRestores) {
  ASSERT_FALSE(obs::tracing());
  TraceBuffer outer;
  {
    TraceScope scope(outer);
    EXPECT_TRUE(obs::tracing());
    TraceBuffer inner;
    {
      TraceScope nested(inner);
      TraceEvent ev;
      ev.kind = TraceEventKind::kDepart;
      obs::emit(ev);
    }
    EXPECT_EQ(obs::trace_sink(), &outer);  // nesting restored
    EXPECT_EQ(inner.events().size(), 1u);
    EXPECT_TRUE(outer.events().empty());
  }
  EXPECT_FALSE(obs::tracing());
}

TEST(TraceSink, SuppressScopeMutesAndRestores) {
  TraceBuffer buffer;
  TraceScope scope(buffer);
  {
    TraceSuppressScope mute;
    EXPECT_FALSE(obs::tracing());
    TraceEvent ev;
    obs::emit(ev);  // dropped
  }
  EXPECT_TRUE(obs::tracing());
  EXPECT_TRUE(buffer.events().empty());
}

TEST(TraceSink, ContributorsCanonicalizedAndCapped) {
  TraceEvent ev;
  std::vector<TraceContributor> all;
  for (RequestId r = 0; r < 20; ++r)
    all.push_back({r, static_cast<double>(1 + r % 5)});
  set_trace_contributors(ev, all);
  ASSERT_EQ(ev.contributors.size(), kMaxTraceContributors);
  for (std::size_t i = 1; i < ev.contributors.size(); ++i) {
    const TraceContributor& a = ev.contributors[i - 1];
    const TraceContributor& b = ev.contributors[i];
    EXPECT_TRUE(a.amount > b.amount ||
                (a.amount == b.amount && a.request < b.request));
  }
  double total = ev.residual;
  for (const TraceContributor& c : ev.contributors) total += c.amount;
  double expected = 0.0;
  for (const TraceContributor& c : all) expected += c.amount;
  EXPECT_DOUBLE_EQ(total, expected);  // the tail folds into residual
  EXPECT_GT(ev.residual, 0.0);
}

TEST(TraceCounter, EmittedOnlyWhenSinkInstalled) {
  const std::vector<TraceEvent> events = traced_churn_events();
  ASSERT_FALSE(events.empty());

  // Counted pass with a trace sink: the counter equals the buffer size.
  PerfCounters traced;
  {
    PerfScope count(traced);
    (void)traced_churn_events();
  }
  EXPECT_EQ(traced.trace_events_emitted, events.size());

  // Counted pass without one: nothing emitted.
  PerfCounters untraced;
  {
    PerfScope count(untraced);
    const EventStream stream = default_stream_scenario_registry().make(
        "churn-uniform", 1, {{"events", 512}});
    PdOmflp pd;
    (void)run_stream(pd, stream, {});
  }
  EXPECT_EQ(untraced.trace_events_emitted, 0u);
}

// ------------------------------------------------------------ tracelog ---

TEST(TraceLog, RoundTripIsByteIdentical) {
  const std::vector<TraceEvent> events = traced_churn_events();
  ASSERT_FALSE(events.empty());
  EXPECT_GT(count_kind(events, TraceEventKind::kFacilityOpen), 0u);
  EXPECT_GT(count_kind(events, TraceEventKind::kBidRollback), 0u);

  const std::string text = tracelog_to_string(events);
  const std::vector<TraceEvent> reread = tracelog_from_string(text);
  ASSERT_EQ(reread.size(), events.size());
  // read -> rewrite reproduces the input byte for byte: the property that
  // makes tracelogs usable as golden-trace differential artifacts.
  EXPECT_EQ(tracelog_to_string(reread), text);
}

TEST(TraceLog, EmptyTraceRoundTrips) {
  const std::string text = tracelog_to_string({});
  EXPECT_TRUE(tracelog_from_string(text).empty());
}

TEST(TraceLog, WriterCountsAndRefusesEventsAfterFinish) {
  std::ostringstream os;
  TraceLogWriter writer(os);
  TraceEvent ev;
  writer.on_event(ev);
  writer.finish();
  writer.finish();  // idempotent
  EXPECT_EQ(writer.events_written(), 1u);
  EXPECT_THROW(writer.on_event(ev), std::logic_error);
}

TEST(TraceLog, TamperedLogsAreRejected) {
  const std::vector<TraceEvent> events = traced_churn_events();
  const std::string text = tracelog_to_string(events);

  // Baseline sanity: the untampered text parses.
  ASSERT_EQ(tracelog_from_string(text).size(), events.size());

  std::vector<std::string> lines;
  {
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 4u);
  const auto joined = [](const std::vector<std::string>& ls) {
    std::string out;
    for (const std::string& l : ls) out += l + "\n";
    return out;
  };

  // Missing header.
  {
    std::vector<std::string> t(lines.begin() + 1, lines.end());
    EXPECT_THROW(tracelog_from_string(joined(t)), std::invalid_argument);
  }
  // Wrong version.
  {
    std::vector<std::string> t = lines;
    t[0] = "{\"format\":\"OMFLP-TRACELOG\",\"version\":2}";
    EXPECT_THROW(tracelog_from_string(joined(t)), std::invalid_argument);
  }
  // Deleted event line -> seq gap against the line index.
  {
    std::vector<std::string> t = lines;
    t.erase(t.begin() + 2);
    EXPECT_THROW(tracelog_from_string(joined(t)), std::invalid_argument);
  }
  // Duplicated event line -> repeated seq.
  {
    std::vector<std::string> t = lines;
    t.insert(t.begin() + 2, t[1]);
    EXPECT_THROW(tracelog_from_string(joined(t)), std::invalid_argument);
  }
  // Truncation: the end line is gone.
  {
    std::vector<std::string> t(lines.begin(), lines.end() - 1);
    EXPECT_THROW(tracelog_from_string(joined(t)), std::invalid_argument);
  }
  // Understated event count in the end line.
  {
    std::vector<std::string> t = lines;
    t.back() = "{\"end\":true,\"events\":1}";
    EXPECT_THROW(tracelog_from_string(joined(t)), std::invalid_argument);
  }
  // Trailing content after the end line.
  {
    std::vector<std::string> t = lines;
    t.push_back(lines[1]);
    EXPECT_THROW(tracelog_from_string(joined(t)), std::invalid_argument);
  }
  // Non-canonical spelling: the scanner accepts exactly the writer's
  // byte layout, so an inserted space is a malformation, not style.
  {
    std::vector<std::string> t = lines;
    const std::size_t colon = t[1].find(':');
    ASSERT_NE(colon, std::string::npos);
    t[1].insert(colon + 1, " ");
    EXPECT_THROW(tracelog_from_string(joined(t)), std::invalid_argument);
  }
}

TEST(TraceLog, RecoverPrefixSalvagesTornAndCorruptLogs) {
  const std::vector<TraceEvent> events = traced_churn_events();
  ASSERT_GE(events.size(), 8u);
  const std::string text = tracelog_to_string(events);

  std::vector<std::string> lines;
  {
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);) lines.push_back(line);
  }
  const auto joined = [](const std::vector<std::string>& ls) {
    std::string out;
    for (const std::string& l : ls) out += l + "\n";
    return out;
  };
  const auto recover = [](const std::string& t) {
    std::istringstream is(t);
    TraceLogReader reader(is, TraceLogReadMode::kRecoverPrefix);
    std::vector<TraceEvent> out;
    TraceEvent ev;
    while (reader.next(ev)) out.push_back(ev);
    return std::pair<std::vector<TraceEvent>, bool>{std::move(out),
                                                    reader.truncated()};
  };

  // An intact log reads fully with truncated() == false.
  {
    const auto [prefix, truncated] = recover(text);
    EXPECT_EQ(prefix.size(), events.size());
    EXPECT_FALSE(truncated);
  }
  // Torn tail (crash mid-write): the end line and the last events are
  // gone. Strict throws; recover yields exactly the surviving prefix.
  {
    std::vector<std::string> t(lines.begin(), lines.end() - 4);
    EXPECT_THROW(tracelog_from_string(joined(t)), std::invalid_argument);
    const auto [prefix, truncated] = recover(joined(t));
    EXPECT_EQ(prefix.size(), events.size() - 3);
    EXPECT_TRUE(truncated);
    // The salvaged prefix re-serializes byte-identically to the
    // corresponding prefix of the clean log.
    EXPECT_EQ(tracelog_to_string(prefix),
              tracelog_to_string(std::vector<TraceEvent>(
                  events.begin(), events.end() - 3)));
  }
  // Half an event line at the tail — the classic torn write.
  {
    std::string t = joined({lines.begin(), lines.end() - 1});
    t += lines.back().substr(0, lines.back().size() / 2);
    const auto [prefix, truncated] = recover(t);
    EXPECT_EQ(prefix.size(), events.size());
    EXPECT_TRUE(truncated);  // end line never validated
  }
  // Corruption in the middle: recover stops just before the damage.
  {
    std::vector<std::string> t = lines;
    t[5] = t[5].substr(0, t[5].size() / 2);
    const auto [prefix, truncated] = recover(joined(t));
    EXPECT_EQ(prefix.size(), 4u);
    EXPECT_TRUE(truncated);
  }
  // A seq gap is damage too, even with a well-formed end line.
  {
    std::vector<std::string> t = lines;
    t.erase(t.begin() + 4);
    const auto [prefix, truncated] = recover(joined(t));
    EXPECT_EQ(prefix.size(), 3u);
    EXPECT_TRUE(truncated);
  }
  // The header stays strict: a file that is not a tracelog at all has no
  // prefix to recover.
  {
    std::istringstream is("not a tracelog\n");
    EXPECT_THROW(TraceLogReader(is, TraceLogReadMode::kRecoverPrefix),
                 std::invalid_argument);
  }
}

// ---------------------------------------------------------- determinism ---

TEST(TraceDeterminism, StreamTraceIndependentOfThreadCount) {
  std::string traces[2];
  int slot = 0;
  for (const char* threads : {"1", "4"}) {
    ::setenv("OMFLP_THREADS", threads, 1);
    traces[slot++] = tracelog_to_string(traced_churn_events(/*seed=*/7));
  }
  ::unsetenv("OMFLP_THREADS");
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(TraceDeterminism, EngineTraceIndependentOfShardsAndThreads) {
  std::vector<TenantSpec> specs = default_workload_mix_registry().tenants(
      "mixed", /*count=*/4, /*seed=*/11);
  for (TenantSpec& spec : specs) spec.overrides["events"] = 384;

  const auto run_traced = [&](std::size_t shards, const char* threads) {
    ::setenv("OMFLP_THREADS", threads, 1);
    TraceBuffer buffer;
    EngineOptions options;
    options.batch_size = 128;
    options.shards = shards;
    options.trace_sink = &buffer;
    ShardedEngine engine(specs, options);
    (void)engine.run();
    return tracelog_to_string(buffer.events());
  };
  const std::string reference = run_traced(1, "1");
  EXPECT_EQ(run_traced(4, "1"), reference);
  EXPECT_EQ(run_traced(2, "4"), reference);
  EXPECT_EQ(run_traced(4, "4"), reference);
  ::unsetenv("OMFLP_THREADS");
  EXPECT_FALSE(tracelog_from_string(reference).empty());
}

// -------------------------------------------------------------- sampler ---

TEST(MetricsSampler, ZeroCadenceThrows) {
  std::ostringstream os;
  EXPECT_THROW(MetricsSampler(os, MetricsSampler::Format::kCsv, 0),
               std::invalid_argument);
}

TEST(MetricsSampler, EngineEmitsCsvRowsPerShardPerRound) {
  std::vector<TenantSpec> specs = default_workload_mix_registry().tenants(
      "mixed", /*count=*/4, /*seed=*/3);
  for (TenantSpec& spec : specs) spec.overrides["events"] = 384;

  std::ostringstream os;
  MetricsSampler sampler(os, MetricsSampler::Format::kCsv);
  EngineOptions options;
  options.batch_size = 128;
  options.shards = 2;
  options.sampler = &sampler;
  ShardedEngine engine(specs, options);
  const EngineResult result = engine.run();

  std::istringstream is(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_EQ(header.substr(0, 12), "round,shard,");
  // Sampler rows are interval deltas, but the histogram's max is
  // cumulative — the column says so.
  EXPECT_NE(header.find(",max_ns_cum,"), std::string::npos) << header;
  std::size_t rows = 0;
  for (std::string line; std::getline(is, line);) ++rows;
  EXPECT_EQ(rows, result.rounds * result.shards);
  // The sampler forces counter collection even without an outer sink.
  EXPECT_FALSE(result.counters.all_zero());
}

TEST(MetricsSampler, JsonlRowsCarryLatencyObjects) {
  std::vector<TenantSpec> specs = default_workload_mix_registry().tenants(
      "churn-heavy", /*count=*/2, /*seed=*/5);
  for (TenantSpec& spec : specs) spec.overrides["events"] = 256;

  std::ostringstream os;
  MetricsSampler sampler(os, MetricsSampler::Format::kJsonl);
  EngineOptions options;
  options.batch_size = 128;
  options.sampler = &sampler;
  ShardedEngine engine(specs, options);
  (void)engine.run();

  std::istringstream is(os.str());
  std::size_t rows = 0;
  for (std::string line; std::getline(is, line);) {
    ++rows;
    EXPECT_EQ(line.substr(0, 9), "{\"round\":") << line;
    EXPECT_NE(line.find("\"latency\":{\"count\":"), std::string::npos)
        << line;
    // Delta snapshots must label the cumulative max honestly: the field
    // is "max_ns_cum", never a plain "max_ns" masquerading as a delta.
    EXPECT_NE(line.find("\"max_ns_cum\":"), std::string::npos) << line;
    EXPECT_EQ(line.find("\"max_ns\":"), std::string::npos) << line;
  }
  EXPECT_GT(rows, 0u);
}

// -------------------------------------------------------------- explain ---

/// The hand-computed instance: two co-located requests demanding the same
/// single commodity on a 2-point line, f(k) = 4k. PD must open exactly
/// one size-1 facility at the shared point — the first request raises its
/// dual until the joint-small constraint (3) for {e} goes tight at the
/// opening cost 4 and pays the entire bid itself; the second request
/// connects at distance 0 without opening anything.
Instance theorem2_hand_instance() {
  auto metric = std::make_shared<LineMetric>(std::vector<double>{0.0, 5.0});
  auto cost = std::make_shared<PolynomialCostModel>(
      /*num_commodities=*/2, /*exponent_x=*/2.0, /*scale=*/4.0);
  std::vector<Request> requests(2);
  requests[0].location = 0;
  requests[0].commodities = CommoditySet::singleton(2, 0);
  requests[1].location = 0;
  requests[1].commodities = CommoditySet::singleton(2, 0);
  return Instance(std::move(metric), std::move(cost), std::move(requests),
                  "theorem2-hand");
}

TEST(Explain, HandComputedOpeningChain) {
  PdOmflp pd;
  TraceBuffer buffer;
  {
    TraceScope scope(buffer);
    (void)run_online(pd, theorem2_hand_instance());
  }
  const std::vector<TraceEvent>& events = buffer.events();

  ASSERT_EQ(count_kind(events, TraceEventKind::kFacilityOpen), 1u);
  ASSERT_EQ(count_kind(events, TraceEventKind::kRequestAssign), 2u);
  EXPECT_GT(count_kind(events, TraceEventKind::kDualRaise), 0u);

  const TraceEvent* open = nullptr;
  for (const TraceEvent& ev : events)
    if (ev.kind == TraceEventKind::kFacilityOpen) open = &ev;
  ASSERT_NE(open, nullptr);
  EXPECT_EQ(open->request, 0u);
  EXPECT_EQ(open->facility, 0u);
  EXPECT_EQ(open->point, 0u);
  EXPECT_EQ(open->config_size, 1u);
  EXPECT_EQ(open->constraint, 3);  // joint investment, small facility
  EXPECT_DOUBLE_EQ(open->cost, 4.0);  // f({e}) = 4·1
  ASSERT_EQ(open->contributors.size(), 1u);
  EXPECT_EQ(open->contributors[0].request, 0u);
  EXPECT_DOUBLE_EQ(open->contributors[0].amount, 4.0);

  // The rendered causal chain names the decision's ingredients.
  const std::string chain =
      explain_trace(events, {.facility = FacilityId{0}});
  EXPECT_NE(chain.find("facility 0 opened at point 0"), std::string::npos)
      << chain;
  EXPECT_NE(chain.find("(3) joint investment in a small facility"),
            std::string::npos)
      << chain;
  EXPECT_NE(chain.find("request 0 contributed 4"), std::string::npos)
      << chain;
  EXPECT_NE(chain.find("served 2 connections"), std::string::npos) << chain;
  EXPECT_NE(chain.find("rollback: none"), std::string::npos) << chain;

  const std::string summary = explain_trace(events, {});
  EXPECT_NE(summary.find("facility_open: 1"), std::string::npos) << summary;
  EXPECT_NE(summary.find("request_assign: 2"), std::string::npos) << summary;
}

TEST(Explain, UnknownFacilityThrowsAndRollbacksAreReported) {
  const std::vector<TraceEvent> events = traced_churn_events();
  EXPECT_THROW(
      (void)explain_trace(events, {.facility = FacilityId{999999}}),
      std::invalid_argument);

  // Some churn opening eventually loses a contributor; the per-request
  // view renders without throwing for every request seen in the trace.
  const std::string summary = explain_trace(events, {});
  EXPECT_NE(summary.find("bid_rollback"), std::string::npos) << summary;
}

}  // namespace
}  // namespace omflp
