// omflp-lint fixture tests: per rule, a violating snippet is flagged, a
// suppressed one is reported-but-suppressed, and a clean/conforming one
// passes. Plus the machinery itself: comment/string stripping, the
// next-line suppression form, path scoping, and the JSON round trip.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace omflp::lint {
namespace {

std::vector<Diagnostic> lint(const std::string& path,
                             const std::string& content) {
  static const Linter linter;
  return linter.lint_source(path, content);
}

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       const std::string& rule, bool suppressed = false) {
  return static_cast<std::size_t>(std::count_if(
      diags.begin(), diags.end(), [&](const Diagnostic& d) {
        return d.rule == rule && d.suppressed == suppressed;
      }));
}

TEST(LintRegistry, ShipsAtLeastSixRules) {
  Linter linter;
  EXPECT_GE(linter.rules().size(), 6u);
  std::vector<std::string> names;
  for (const auto& rule : linter.rules()) names.push_back(rule.name);
  for (const char* required :
       {"raw-reserve", "nondet-iteration", "raw-parse",
        "raw-artifact-write", "kernel-purity", "seed-hygiene"})
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
}

// ------------------------------------------------------------ raw-reserve ---

TEST(RawReserve, FlagsUncappedReserveOnParsePath) {
  const auto diags = lint("src/instance/stream_io.cpp",
                          "void read() {\n"
                          "  events.reserve(header.num_events);\n"
                          "}\n");
  ASSERT_EQ(count_rule(diags, "raw-reserve"), 1u);
  EXPECT_EQ(diags[0].line, 2u);
}

TEST(RawReserve, FlagsResizeToo) {
  const auto diags = lint("src/instance/io.cpp",
                          "void read() { rows.resize(declared); }\n");
  EXPECT_EQ(count_rule(diags, "raw-reserve"), 1u);
}

TEST(RawReserve, CappedReserveIsClean) {
  const auto diags =
      lint("src/instance/stream_io.cpp",
           "void read() {\n"
           "  events.reserve(capped_reserve(header.num_events));\n"
           "  rows.reserve(capped_reserve(n, std::size_t{1} << 20));\n"
           "}\n");
  EXPECT_EQ(count_rule(diags, "raw-reserve"), 0u);
}

TEST(RawReserve, MultiLineArgumentsAreGathered) {
  const auto diags = lint("src/instance/io_detail.cpp",
                          "void read() {\n"
                          "  table.reserve(\n"
                          "      capped_reserve(universe + 1,\n"
                          "                     kReserveCap));\n"
                          "}\n");
  EXPECT_EQ(count_rule(diags, "raw-reserve"), 0u);
}

TEST(RawReserve, OnlyAppliesToParsePaths) {
  // generators.cpp builds instances from trusted config, not from input.
  const auto diags = lint("src/instance/generators.cpp",
                          "void gen() { requests.reserve(n); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(RawReserve, ParsePathClassifier) {
  EXPECT_TRUE(is_parse_path("src/instance/io.cpp"));
  EXPECT_TRUE(is_parse_path("src/instance/io_detail.cpp"));
  EXPECT_TRUE(is_parse_path("src/instance/stream_io.cpp"));
  EXPECT_TRUE(is_parse_path("src/instance/tracelog_io.cpp"));
  EXPECT_TRUE(is_parse_path("src/instance/checkpoint_io.cpp"));
  EXPECT_TRUE(is_parse_path("src/recover/checkpoint_store.cpp"));
  EXPECT_TRUE(is_parse_path("src/support/parse.cpp"));
  // "io" must match as a whole token, not as a substring.
  EXPECT_FALSE(is_parse_path("src/solution/solution.cpp"));
  EXPECT_FALSE(is_parse_path("src/instance/generators.cpp"));
  EXPECT_FALSE(is_parse_path("src/instance/transforms.cpp"));
}

TEST(RawReserve, SuppressionOnSameLine) {
  const auto diags = lint(
      "src/instance/checkpoint_io.cpp",
      "void f() {\n"
      "  out.reserve(token.size() / 2);"
      "  // omflp-lint: allow(raw-reserve) sized by actual bytes\n"
      "}\n");
  EXPECT_EQ(count_rule(diags, "raw-reserve", /*suppressed=*/true), 1u);
  EXPECT_EQ(count_rule(diags, "raw-reserve", /*suppressed=*/false), 0u);
}

// ------------------------------------------------------- nondet-iteration ---

TEST(NondetIteration, FlagsRangeForOverUnorderedMap) {
  const auto diags =
      lint("src/obs/emit.cpp",
           "void emit() {\n"
           "  std::unordered_map<int, double> totals;\n"
           "  for (const auto& [id, total] : totals) os << id << total;\n"
           "}\n");
  ASSERT_EQ(count_rule(diags, "nondet-iteration"), 1u);
  EXPECT_EQ(diags[0].line, 3u);
}

TEST(NondetIteration, FlagsMemberAndUnorderedSet) {
  const auto diags = lint("src/solution/verifier.cpp",
                          "class V {\n"
                          "  std::unordered_set<int> seen_;\n"
                          "  void dump() {\n"
                          "    for (int id : seen_) write(id);\n"
                          "    for (int id : this->seen_) write(id);\n"
                          "  }\n"
                          "};\n");
  EXPECT_EQ(count_rule(diags, "nondet-iteration"), 2u);
}

TEST(NondetIteration, SortedCopyAndOrderedMapAreClean) {
  const auto diags =
      lint("src/obs/emit.cpp",
           "void emit() {\n"
           "  std::unordered_map<int, double> totals;\n"
           "  std::vector<std::pair<int, double>> sorted(totals.begin(),\n"
           "                                             totals.end());\n"
           "  std::sort(sorted.begin(), sorted.end());\n"
           "  for (const auto& [id, total] : sorted) os << id;\n"
           "  std::map<int, double> by_id;\n"
           "  for (const auto& [id, total] : by_id) os << id;\n"
           "}\n");
  EXPECT_EQ(count_rule(diags, "nondet-iteration"), 0u);
}

TEST(NondetIteration, SuppressedWithJustification) {
  const auto diags = lint(
      "src/core/scratch.cpp",
      "void f() {\n"
      "  std::unordered_set<int> pool;\n"
      "  // omflp-lint: allow(nondet-iteration) accumulated then sorted\n"
      "  for (int id : pool) sum += id;\n"
      "}\n");
  EXPECT_EQ(count_rule(diags, "nondet-iteration", /*suppressed=*/true), 1u);
  EXPECT_EQ(count_rule(diags, "nondet-iteration", /*suppressed=*/false), 0u);
}

// -------------------------------------------------------------- raw-parse ---

TEST(RawParse, FlagsEachRawParser) {
  for (const char* snippet :
       {"long v = strtol(s, &end, 10);", "int v = atoi(s);",
        "int v = std::stoi(text);", "auto v = std::stoull(text);",
        "double v = std::strtod(s, &end);"}) {
    const auto diags = lint("src/core/parse_args.cpp",
                            std::string("void f() { ") + snippet + " }\n");
    EXPECT_EQ(count_rule(diags, "raw-parse"), 1u) << snippet;
  }
}

TEST(RawParse, StrictParsersAndProseAreClean) {
  const auto diags = lint(
      "src/core/parse_args.cpp",
      "// strtod accepts trailing garbage; parse_double_strict does not.\n"
      "void f() {\n"
      "  auto v = parse_u64_strict(text);\n"
      "  auto d = parse_double_strict(text);\n"
      "  log(\"strtod(\");  // the mention in a string is not a call\n"
      "}\n");
  EXPECT_EQ(count_rule(diags, "raw-parse"), 0u);
}

TEST(RawParse, IdentifiersContainingNamesAreClean) {
  // my_atoi / stoi_count are different identifiers; only calls of the
  // raw functions themselves count.
  const auto diags = lint("src/core/parse_args.cpp",
                          "void f() {\n"
                          "  int v = my_atoi(s);\n"
                          "  ++stoi_count;\n"
                          "}\n");
  EXPECT_EQ(count_rule(diags, "raw-parse"), 0u);
}

// ----------------------------------------------------- raw-artifact-write ---

TEST(RawArtifactWrite, FlagsOfstream) {
  const auto diags = lint("tools/report.cpp",
                          "void save() {\n"
                          "  std::ofstream out(path);\n"
                          "  out << body;\n"
                          "}\n");
  ASSERT_EQ(count_rule(diags, "raw-artifact-write"), 1u);
  EXPECT_EQ(diags[0].line, 2u);
}

TEST(RawArtifactWrite, AtomicWriterIsClean) {
  const auto diags = lint("tools/report.cpp",
                          "void save() {\n"
                          "  write_file_atomic(path, body);\n"
                          "  AtomicFileWriter writer(other);\n"
                          "}\n");
  EXPECT_EQ(count_rule(diags, "raw-artifact-write"), 0u);
}

TEST(RawArtifactWrite, ImplementationFileIsExempt) {
  const auto diags = lint("src/support/atomic_file.cpp",
                          "void impl() { std::ofstream out(tmp); }\n");
  EXPECT_EQ(count_rule(diags, "raw-artifact-write"), 0u);
}

// ---------------------------------------------------------- kernel-purity ---

TEST(KernelPurity, FlagsCounterTicksAndAllocation) {
  const auto diags = lint("src/kernel/kernels.cpp",
                          "void sweep() {\n"
                          "  OMFLP_PERF_TICK(bids_evaluated);\n"
                          "  scratch.push_back(x);\n"
                          "  buffer.resize(n);\n"
                          "  std::vector<double> tmp(n);\n"
                          "}\n");
  EXPECT_EQ(count_rule(diags, "kernel-purity"), 4u);
}

TEST(KernelPurity, PureKernelAndOtherDirsAreClean) {
  const std::string pure =
      "void accumulate(double* row, const double* dist, double v,\n"
      "                std::size_t n) {\n"
      "  for (std::size_t m = 0; m < n; ++m)\n"
      "    row[m] += positive_part(v - dist[m]);\n"
      "}\n";
  EXPECT_TRUE(lint("src/kernel/kernels.cpp", pure).empty());
  // The same allocation outside src/kernel/ is not this rule's business.
  EXPECT_TRUE(lint("src/core/pd_omflp.cpp",
                   "void f() { scratch.push_back(x); }\n")
                  .empty());
}

TEST(KernelPurity, SuppressedScratchIsReportedNotFailing) {
  const auto diags = lint(
      "src/kernel/kernels.cpp",
      "void split() {\n"
      "  // omflp-lint: allow(kernel-purity) per-chunk partials, amortized\n"
      "  std::vector<SpanMin> partial(chunks);\n"
      "}\n");
  EXPECT_EQ(count_rule(diags, "kernel-purity", /*suppressed=*/true), 1u);
  EXPECT_EQ(count_rule(diags, "kernel-purity", /*suppressed=*/false), 0u);
}

// ----------------------------------------------------------- seed-hygiene ---

TEST(SeedHygiene, FlagsRawWorkloadSeed) {
  const auto diags = lint(
      "src/engine/engine.cpp",
      "void build() {\n"
      "  auto algo = default_algorithm_registry().make(name, spec.seed);\n"
      "}\n");
  ASSERT_EQ(count_rule(diags, "seed-hygiene"), 1u);
  EXPECT_EQ(diags[0].line, 2u);
}

TEST(SeedHygiene, DerivedSeedIsClean) {
  const auto diags = lint(
      "src/engine/engine.cpp",
      "void build() {\n"
      "  auto a = default_algorithm_registry().make(\n"
      "      name, derive_algorithm_seed(spec.seed));\n"
      "  auto b = algorithms.make(algo,\n"
      "                           derive_algorithm_seed(seed));\n"
      "}\n");
  EXPECT_EQ(count_rule(diags, "seed-hygiene"), 0u);
}

TEST(SeedHygiene, ScenarioRegistriesTakeRawSeeds) {
  // Workload generation is *supposed* to consume the raw seed.
  const auto diags = lint(
      "src/engine/engine.cpp",
      "void build() {\n"
      "  auto scen = default_scenario_registry().make(name, spec.seed);\n"
      "  auto stream = scenarios.make(family, seed, overrides);\n"
      "}\n");
  EXPECT_EQ(count_rule(diags, "seed-hygiene"), 0u);
}

TEST(SeedHygiene, LiteralSeedsAreClean) {
  const auto diags = lint(
      "src/perf/bench_suite.cpp",
      "void bench() { auto a = default_algorithm_registry().make(name, 7); }\n");
  EXPECT_EQ(count_rule(diags, "seed-hygiene"), 0u);
}

// ---------------------------------------------------------------- scoping ---

TEST(Scoping, TestsDirectoryIsExemptFromCodeRules) {
  const auto diags = lint("tests/test_fuzz_parsers.cpp",
                          "void fixture() {\n"
                          "  corpus.reserve(cases);\n"
                          "  std::ofstream out(tmp);\n"
                          "  int v = atoi(s);\n"
                          "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(Scoping, PathInDirMatchesWholeComponents) {
  EXPECT_TRUE(path_in_dir("tests/test_lint.cpp", "tests"));
  EXPECT_TRUE(path_in_dir("src/kernel/kernels.cpp", "kernel"));
  EXPECT_FALSE(path_in_dir("src/kernel_utils/misc.cpp", "kernel"));
  EXPECT_FALSE(path_in_dir("contests/foo.cpp", "tests"));
  // The basename itself is not a directory component.
  EXPECT_FALSE(path_in_dir("src/kernel", "kernel"));
}

// ------------------------------------------------------------ suppression ---

TEST(Suppression, StandaloneLineCoversNextCodeLine) {
  const auto diags = lint(
      "src/core/f.cpp",
      "void f() {\n"
      "  // omflp-lint: allow(raw-parse) vendor text, validated upstream\n"
      "  int v = atoi(s);\n"
      "  int w = atoi(t);\n"  // NOT covered: suppression is one line
      "}\n");
  EXPECT_EQ(count_rule(diags, "raw-parse", /*suppressed=*/true), 1u);
  EXPECT_EQ(count_rule(diags, "raw-parse", /*suppressed=*/false), 1u);
}

TEST(Suppression, AllCoversEveryRule) {
  const auto diags = lint("src/core/f.cpp",
                          "void f() {\n"
                          "  int v = atoi(s);  // omflp-lint: allow(all)\n"
                          "}\n");
  EXPECT_EQ(count_rule(diags, "raw-parse", /*suppressed=*/true), 1u);
}

TEST(Suppression, WrongRuleNameDoesNotSuppress) {
  const auto diags = lint(
      "src/core/f.cpp",
      "void f() {\n"
      "  int v = atoi(s);  // omflp-lint: allow(raw-reserve) wrong rule\n"
      "}\n");
  EXPECT_EQ(count_rule(diags, "raw-parse", /*suppressed=*/false), 1u);
}

// -------------------------------------------------------------- stripping ---

TEST(Stripping, CommentsAndStringsNeverMatch) {
  const auto diags = lint(
      "src/core/f.cpp",
      "// atoi(x) in a comment\n"
      "/* strtod(y) in a block comment\n"
      "   spanning lines: atoi(z) */\n"
      "const char* kMsg = \"use atoi(n) they said\";\n"
      "const char* kRaw = R\"(strtod(raw) text)\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(Stripping, CodeAfterBlockCommentStillMatches) {
  const auto diags =
      lint("src/core/f.cpp", "int v = /* checked */ atoi(s);\n");
  EXPECT_EQ(count_rule(diags, "raw-parse"), 1u);
}

// ------------------------------------------------------------------- json ---

TEST(Json, RoundTripsFindings) {
  const auto diags = lint(
      "src/instance/stream_io.cpp",
      "void read() {\n"
      "  events.reserve(n);\n"
      "  // omflp-lint: allow(raw-parse) quoted \"text\" with\ttabs\n"
      "  double v = atof(s);\n"
      "}\n");
  ASSERT_EQ(diags.size(), 2u);
  const std::string json = to_json(diags);
  const auto parsed = from_json(json);
  EXPECT_EQ(parsed, diags);
  // Canonical: re-emission is byte-identical.
  EXPECT_EQ(to_json(parsed), json);
}

TEST(Json, EmptyReportRoundTrips) {
  const std::vector<Diagnostic> none;
  EXPECT_EQ(from_json(to_json(none)), none);
}

TEST(Json, EscapesSpecialCharacters) {
  std::vector<Diagnostic> diags;
  diags.push_back(Diagnostic{"rule-x", "src/a\\b.cpp", 3,
                             "quote \" backslash \\ newline \n tab \t",
                             true});
  const auto parsed = from_json(to_json(diags));
  EXPECT_EQ(parsed, diags);
}

TEST(Json, RejectsTamperedDocuments) {
  const auto diags =
      lint("src/core/f.cpp", "void f() { int v = atoi(s); }\n");
  const std::string json = to_json(diags);
  EXPECT_THROW(from_json(json + "x"), std::invalid_argument);
  EXPECT_THROW(from_json(json.substr(0, json.size() / 2)),
               std::invalid_argument);
  // Summary counts must agree with the findings array.
  std::string tampered = json;
  const auto at = tampered.find("\"failing\":1");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 11, "\"failing\":0");
  EXPECT_THROW(from_json(tampered), std::invalid_argument);
}

// ------------------------------------------------------------ text report ---

TEST(Text, ReportsPathLineRuleAndSummary) {
  const auto diags =
      lint("src/core/f.cpp", "void f() { int v = atoi(s); }\n");
  const std::string text = to_text(diags);
  EXPECT_NE(text.find("src/core/f.cpp:1: [raw-parse]"), std::string::npos);
  EXPECT_NE(text.find("1 finding (0 suppressed, 1 failing)"),
            std::string::npos);
  EXPECT_TRUE(has_unsuppressed(diags));
}

}  // namespace
}  // namespace omflp::lint
