// Kernel-layer tests: the scalar kernels against naive reference loops,
// BidPlane storage semantics (alignment, lazy activation, growth), the
// DistanceOracle row accessor on both paths, kernelized PD against naive
// pre-refactor-style recomputation on all four metric families, audit
// cleanliness on long adversarial runs in both bid modes, and bit-exact
// determinism of the parallel split across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/pd_omflp.hpp"
#include "core/rand_omflp.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "kernel/bid_plane.hpp"
#include "kernel/kernels.hpp"
#include "metric/distance_oracle.hpp"
#include "metric/euclidean_metric.hpp"
#include "metric/graph_metric.hpp"
#include "metric/line_metric.hpp"
#include "metric/matrix_metric.hpp"
#include "solution/verifier.hpp"
#include "support/rng.hpp"

namespace omflp {
namespace {

double positive_part(double x) { return x > 0.0 ? x : 0.0; }

std::vector<double> random_row(Rng& rng, std::size_t n, double lo,
                               double hi) {
  std::vector<double> row(n);
  for (double& x : row) x = rng.uniform(lo, hi);
  return row;
}

/// Restores the parallel threshold on scope exit so a failing test does
/// not poison later ones.
class ThresholdGuard {
 public:
  explicit ThresholdGuard(std::size_t threshold)
      : saved_(kernel::parallel_threshold()) {
    kernel::set_parallel_threshold(threshold);
  }
  ~ThresholdGuard() { kernel::set_parallel_threshold(saved_); }

 private:
  std::size_t saved_;
};

// --------------------------------------------------------- scalar kernels ---

TEST(Kernels, AccumulateClippedBidMatchesNaiveLoop) {
  Rng rng(7);
  const std::size_t n = 1000;
  const std::vector<double> dist = random_row(rng, n, 0.0, 10.0);
  std::vector<double> row = random_row(rng, n, 0.0, 5.0);
  std::vector<double> expected = row;
  const double v = 6.5;
  for (std::size_t m = 0; m < n; ++m)
    expected[m] += positive_part(v - dist[m]);
  kernel::accumulate_clipped_bid(row.data(), dist.data(), v, n);
  for (std::size_t m = 0; m < n; ++m) EXPECT_EQ(row[m], expected[m]);
}

TEST(Kernels, ShiftClippedBidMatchesNaiveLoop) {
  Rng rng(8);
  const std::size_t n = 1000;
  const std::vector<double> dist = random_row(rng, n, 0.0, 10.0);
  std::vector<double> row = random_row(rng, n, 0.0, 5.0);
  std::vector<double> expected = row;
  const double v_old = 7.0, v_new = 3.25;
  for (std::size_t m = 0; m < n; ++m)
    expected[m] -=
        positive_part(v_old - dist[m]) - positive_part(v_new - dist[m]);
  kernel::shift_clipped_bid(row.data(), dist.data(), v_old, v_new, n);
  for (std::size_t m = 0; m < n; ++m) EXPECT_EQ(row[m], expected[m]);
}

TEST(Kernels, ShiftUndoesAccumulate) {
  Rng rng(9);
  const std::size_t n = 257;
  const std::vector<double> dist = random_row(rng, n, 0.0, 4.0);
  std::vector<double> row(n, 0.0);
  kernel::accumulate_clipped_bid(row.data(), dist.data(), 2.5, n);
  kernel::shift_clipped_bid(row.data(), dist.data(), 2.5, 0.0, n);
  for (std::size_t m = 0; m < n; ++m) EXPECT_EQ(row[m], 0.0);
}

TEST(Kernels, ArgminFirstIndexTieBreak) {
  const std::vector<double> row = {3.0, 1.0, 4.0, 1.0, 5.0};
  EXPECT_EQ(kernel::argmin_over_row(row.data(), row.size()), 1u);
  const std::vector<double> flat(17, 2.0);
  EXPECT_EQ(kernel::argmin_over_row(flat.data(), flat.size()), 0u);
}

TEST(Kernels, ArgminWhereRespectsMaskAndTies) {
  const std::vector<double> row = {0.5, 1.0, 0.25, 1.0, 0.25};
  const std::vector<std::uint32_t> keys = {3, 1, 2, 0, 2};
  // limit 0: only index 3 eligible.
  EXPECT_EQ(kernel::argmin_over_row_where(row.data(), keys.data(), 0,
                                          row.size()),
            3u);
  // limit 2: {1,2,3,4} eligible; min 0.25 first at index 2.
  EXPECT_EQ(kernel::argmin_over_row_where(row.data(), keys.data(), 2,
                                          row.size()),
            2u);
  // limit below every key: none eligible.
  const std::vector<std::uint32_t> high(row.size(), 9);
  EXPECT_EQ(kernel::argmin_over_row_where(row.data(), high.data(), 3,
                                          row.size()),
            row.size());
}

TEST(Kernels, MinTightnessMatchesNaiveScanWithDivisor) {
  Rng rng(11);
  const std::size_t n = 777;
  const std::vector<double> dist = random_row(rng, n, 0.0, 10.0);
  const std::vector<double> cost = random_row(rng, n, 0.0, 8.0);
  const std::vector<double> bids = random_row(rng, n, 0.0, 6.0);
  for (const double divisor : {1.0, 3.0}) {
    for (const double raised : {0.0, 2.0, 100.0}) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_m = static_cast<std::size_t>(-1);
      for (std::size_t m = 0; m < n; ++m) {
        const double delta =
            positive_part(dist[m] + positive_part(cost[m] - bids[m]) -
                          raised) /
            divisor;
        if (delta < best) {
          best = delta;
          best_m = m;
        }
      }
      const kernel::RowEvent event = kernel::min_tightness_over_row(
          dist.data(), cost.data(), bids.data(), raised, divisor, n);
      EXPECT_EQ(event.delta, best);
      EXPECT_EQ(event.index, best_m);
    }
  }
}

TEST(Kernels, MinTightnessEarlyExitReturnsFirstTightIndex) {
  // Two tight points (delta 0); the scan must return the first.
  std::vector<double> dist(2000, 5.0);
  std::vector<double> cost(2000, 1.0);
  std::vector<double> bids(2000, 0.0);
  bids[700] = 1.0;
  bids[1500] = 1.0;
  const kernel::RowEvent event = kernel::min_tightness_over_row(
      dist.data(), cost.data(), bids.data(), /*raised=*/5.0, 1.0,
      dist.size());
  EXPECT_EQ(event.delta, 0.0);
  EXPECT_EQ(event.index, 700u);
}

TEST(Kernels, FirstIndexWhereTightAgreesWithZeroDelta) {
  Rng rng(13);
  const std::size_t n = 400;
  const std::vector<double> dist = random_row(rng, n, 0.0, 10.0);
  const std::vector<double> cost = random_row(rng, n, 0.0, 4.0);
  const std::vector<double> bids = random_row(rng, n, 0.0, 4.0);
  for (const double raised : {0.0, 1.0, 5.0, 20.0}) {
    std::size_t expected = n;
    for (std::size_t m = 0; m < n; ++m) {
      const double delta = positive_part(
          dist[m] + positive_part(cost[m] - bids[m]) - raised);
      if (delta == 0.0) {
        expected = m;
        break;
      }
    }
    EXPECT_EQ(kernel::first_index_where_tight(dist.data(), cost.data(),
                                              bids.data(), raised, n),
              expected)
        << "raised=" << raised;
  }
}

// ------------------------------------------------- parallel determinism ---

TEST(Kernels, ParallelSplitIsBitIdenticalAcrossThreadCounts) {
  Rng rng(17);
  const std::size_t n = 100003;  // several chunks, ragged tail
  const std::vector<double> dist = random_row(rng, n, 0.0, 100.0);
  const std::vector<double> cost = random_row(rng, n, 0.0, 50.0);
  std::vector<double> serial = random_row(rng, n, 0.0, 10.0);
  std::vector<double> parallel = serial;

  kernel::RowEvent serial_event, parallel_event;
  std::size_t serial_argmin = 0, parallel_argmin = 0;
  {
    ThresholdGuard serial_only(static_cast<std::size_t>(-1));
    kernel::accumulate_clipped_bid(serial.data(), dist.data(), 60.0, n);
    kernel::shift_clipped_bid(serial.data(), dist.data(), 60.0, 10.0, n);
    serial_event = kernel::min_tightness_over_row(
        dist.data(), cost.data(), serial.data(), 20.0, 3.0, n);
    serial_argmin = kernel::argmin_over_row(dist.data(), n);
  }
  {
    ThresholdGuard force_parallel(0);
    ::setenv("OMFLP_THREADS", "5", 1);
    kernel::accumulate_clipped_bid(parallel.data(), dist.data(), 60.0, n);
    kernel::shift_clipped_bid(parallel.data(), dist.data(), 60.0, 10.0, n);
    parallel_event = kernel::min_tightness_over_row(
        dist.data(), cost.data(), parallel.data(), 20.0, 3.0, n);
    parallel_argmin = kernel::argmin_over_row(dist.data(), n);
    ::unsetenv("OMFLP_THREADS");
  }
  for (std::size_t m = 0; m < n; ++m)
    ASSERT_EQ(serial[m], parallel[m]) << "at " << m;
  EXPECT_EQ(serial_event.delta, parallel_event.delta);
  EXPECT_EQ(serial_event.index, parallel_event.index);
  EXPECT_EQ(serial_argmin, parallel_argmin);
}

TEST(Kernels, PdRunIsBitIdenticalWithForcedParallelSplit) {
  Rng rng(23);
  std::vector<double> positions;
  for (std::size_t i = 0; i < 24; ++i)
    positions.push_back(rng.uniform(0.0, 50.0));
  auto metric = std::make_shared<LineMetric>(std::move(positions));
  auto cost = std::make_shared<PolynomialCostModel>(6, 1.2);
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 60; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(24));
    r.commodities = sample_demand_set(6, 1 + rng.uniform_index(3), 0.0, rng);
    requests.push_back(std::move(r));
  }
  const Instance inst(metric, cost, std::move(requests));

  auto run = [&](std::size_t threshold, const char* threads) {
    ThresholdGuard guard(threshold);
    ::setenv("OMFLP_THREADS", threads, 1);
    PdOmflp pd;
    const SolutionLedger ledger = run_online(pd, inst);
    ::unsetenv("OMFLP_THREADS");
    return std::pair<double, std::vector<PdDualRecord>>{
        ledger.total_cost(), pd.dual_records()};
  };
  const auto [cost_serial, duals_serial] =
      run(static_cast<std::size_t>(-1), "1");
  const auto [cost_parallel, duals_parallel] = run(0, "4");

  EXPECT_EQ(cost_serial, cost_parallel);  // bitwise, not NEAR
  ASSERT_EQ(duals_serial.size(), duals_parallel.size());
  for (std::size_t i = 0; i < duals_serial.size(); ++i)
    for (std::size_t j = 0; j < duals_serial[i].duals.size(); ++j)
      ASSERT_EQ(duals_serial[i].duals[j], duals_parallel[i].duals[j]);
}

// ---------------------------------------------------------------- BidPlane ---

TEST(BidPlane, LazyActivationZeroFillAndStats) {
  kernel::BidPlane plane;
  plane.reset(10, 33);
  EXPECT_EQ(plane.num_rows(), 10u);
  EXPECT_EQ(plane.row_length(), 33u);
  EXPECT_EQ(plane.stride(), 40u);  // 33 rounded up to a multiple of 8
  EXPECT_EQ(plane.activated_rows(), 0u);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_FALSE(plane.active(r));

  double* row7 = plane.activate(7);
  EXPECT_TRUE(plane.active(7));
  EXPECT_EQ(plane.activated_rows(), 1u);
  for (std::size_t m = 0; m < 33; ++m) EXPECT_EQ(row7[m], 0.0);
  row7[0] = 1.5;
  // Re-activation is idempotent: contents survive.
  EXPECT_EQ(plane.activate(7)[0], 1.5);
  EXPECT_EQ(plane.activated_rows(), 1u);
}

TEST(BidPlane, RowsAre64ByteAlignedAndGrowthPreservesContents) {
  kernel::BidPlane plane;
  plane.reset(64, 19);
  for (std::size_t r = 0; r < 64; ++r) {
    double* row = plane.activate(r);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(row) % 64, 0u)
        << "row " << r;
    for (std::size_t m = 0; m < 19; ++m)
      row[m] = static_cast<double>(r * 100 + m);
  }
  EXPECT_EQ(plane.activated_rows(), 64u);
  for (std::size_t r = 0; r < 64; ++r) {
    const double* row = plane.row(r);
    for (std::size_t m = 0; m < 19; ++m)
      ASSERT_EQ(row[m], static_cast<double>(r * 100 + m));
  }
}

TEST(BidPlane, ResetDeactivatesEverything) {
  kernel::BidPlane plane;
  plane.reset(4, 8);
  plane.activate(2)[3] = 9.0;
  plane.reset(4, 8);
  EXPECT_EQ(plane.activated_rows(), 0u);
  EXPECT_FALSE(plane.active(2));
  EXPECT_EQ(plane.activate(2)[3], 0.0);
}

TEST(BidPlane, SparseWorkloadOnlyActivatesTouchedRows) {
  // A PD run whose requests only ever demand 2 of 40 commodities must not
  // allocate bid rows for the other 38 (satellite: no O(|E|·|M|) memory
  // for sparse-commodity scenarios). Row |S| (the large side) is always
  // active in incremental mode.
  Rng rng(31);
  std::vector<double> positions;
  for (std::size_t i = 0; i < 16; ++i)
    positions.push_back(rng.uniform(0.0, 20.0));
  auto metric = std::make_shared<LineMetric>(std::move(positions));
  auto cost = std::make_shared<PolynomialCostModel>(40, 1.0);
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 30; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(16));
    CommoditySet demand(40);
    demand.add(static_cast<CommodityId>(rng.uniform_index(2)));  // e ∈ {0,1}
    r.commodities = demand;
    requests.push_back(std::move(r));
  }
  const Instance inst(metric, cost, std::move(requests));
  PdOmflp pd;
  (void)run_online(pd, inst);
  EXPECT_LE(pd.bid_plane().activated_rows(), 3u);  // ≤ {0, 1} + large row
  EXPECT_GE(pd.bid_plane().activated_rows(), 1u);
}

// ------------------------------------------------------ DistanceOracle row ---

TEST(DistanceOracleRow, CachedAndFallbackRowsMatchOperatorOnAllFamilies) {
  Rng rng(41);
  std::vector<double> line_positions, coords;
  for (std::size_t i = 0; i < 12; ++i) {
    line_positions.push_back(rng.uniform(0.0, 9.0));
    coords.push_back(rng.uniform(-3.0, 3.0));
    coords.push_back(rng.uniform(-3.0, 3.0));
  }
  std::vector<GraphEdge> edges;
  for (PointId i = 0; i + 1 < 12; ++i)
    edges.push_back({i, static_cast<PointId>(i + 1),
                     rng.uniform(0.5, 2.0)});
  edges.push_back({0, 11, 1.0});
  const LineMetric ruler(line_positions);
  std::vector<std::vector<double>> matrix(12, std::vector<double>(12));
  for (PointId a = 0; a < 12; ++a)
    for (PointId b = 0; b < 12; ++b) matrix[a][b] = ruler.distance(a, b);

  const std::vector<MetricPtr> families = {
      std::make_shared<LineMetric>(line_positions),
      std::make_shared<EuclideanMetric>(2, coords),
      std::make_shared<GraphMetric>(12, edges),
      std::make_shared<MatrixMetric>(matrix),
  };
  for (const MetricPtr& metric : families) {
    const DistanceOracle cached(metric);
    const DistanceOracle fallback(metric, /*cache_limit=*/0);
    ASSERT_TRUE(cached.cached());
    ASSERT_FALSE(fallback.cached());
    for (PointId p = 0; p < 12; ++p) {
      const double* cached_row = cached.row(p);
      for (PointId b = 0; b < 12; ++b)
        ASSERT_EQ(cached_row[b], cached(p, b))
            << metric->description() << " p=" << p << " b=" << b;
      // Fetch the fallback row after the cached loop: on this path the
      // pointer is only valid until the next row() call.
      const double* fallback_row = fallback.row(p);
      for (PointId b = 0; b < 12; ++b)
        ASSERT_EQ(fallback_row[b], cached_row[b])
            << metric->description() << " p=" << p << " b=" << b;
    }
  }
}

// ----------------------------------- kernelized PD vs naive recompute ------

/// A naive, pre-refactor-style reference recompute of the constraint-(3)
/// bid row from the exported dual records — scalar loops, virtual metric
/// calls, no kernels or oracle rows — for cross-checking the kernelized
/// pipeline on every metric family. It recomputes d(F(e), j) against the
/// final facility set, so it is compared against a *reference-mode* PD
/// whose rows are recomputed the same way at the final state.
std::vector<double> naive_final_bid_row(const Instance& inst,
                                        const SolutionLedger& ledger,
                                        const std::vector<PdDualRecord>& recs,
                                        CommodityId e) {
  const MetricSpace& metric = *inst.metric_ptr();
  const std::size_t n = metric.num_points();
  std::vector<double> out(n, 0.0);
  for (const PdDualRecord& rec : recs) {
    for (std::size_t slot = 0; slot < rec.commodities.size(); ++slot) {
      if (rec.commodities[slot] != e) continue;
      double dist_e = kInfiniteDistance;
      for (FacilityId f = 0; f < ledger.num_facilities(); ++f)
        if (ledger.facility(f).config.contains(e))
          dist_e = std::min(
              dist_e, metric.distance(rec.location,
                                      ledger.facility(f).location));
      const double v = std::min(rec.duals[slot], dist_e);
      if (v <= 0.0) continue;
      for (PointId m = 0; m < n; ++m)
        out[m] += positive_part(v - metric.distance(m, rec.location));
    }
  }
  return out;
}

class KernelizedPdFamilies : public ::testing::TestWithParam<int> {};

TEST_P(KernelizedPdFamilies, MatchesNaiveRecomputeAndStaysAuditClean) {
  Rng rng(100 + GetParam());
  const std::size_t n = 14;
  MetricPtr metric;
  switch (GetParam()) {
    case 0: {
      std::vector<double> pos;
      for (std::size_t i = 0; i < n; ++i)
        pos.push_back(rng.uniform(0.0, 30.0));
      metric = std::make_shared<LineMetric>(std::move(pos));
      break;
    }
    case 1: {
      std::vector<double> coords;
      for (std::size_t i = 0; i < 2 * n; ++i)
        coords.push_back(rng.uniform(-5.0, 5.0));
      metric = std::make_shared<EuclideanMetric>(2, std::move(coords));
      break;
    }
    case 2: {
      std::vector<GraphEdge> edges;
      for (PointId i = 0; i + 1 < n; ++i)
        edges.push_back({i, static_cast<PointId>(i + 1),
                         rng.uniform(0.5, 3.0)});
      for (int extra = 0; extra < 6; ++extra) {
        const auto u = static_cast<PointId>(rng.uniform_index(n));
        const auto v = static_cast<PointId>(rng.uniform_index(n));
        if (u != v) edges.push_back({u, v, rng.uniform(0.5, 4.0)});
      }
      metric = std::make_shared<GraphMetric>(n, edges);
      break;
    }
    default: {
      std::vector<double> pos;
      for (std::size_t i = 0; i < n; ++i)
        pos.push_back(rng.uniform(0.0, 30.0));
      const LineMetric ruler(pos);
      std::vector<std::vector<double>> matrix(n, std::vector<double>(n));
      for (PointId a = 0; a < n; ++a)
        for (PointId b = 0; b < n; ++b) matrix[a][b] = ruler.distance(a, b);
      metric = std::make_shared<MatrixMetric>(std::move(matrix));
      break;
    }
  }
  auto cost = std::make_shared<PolynomialCostModel>(5, 1.3);
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 40; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(n));
    r.commodities = sample_demand_set(5, 1 + rng.uniform_index(3), 0.0, rng);
    requests.push_back(std::move(r));
  }
  const Instance inst(metric, cost, std::move(requests));

  // Reference and incremental runs must agree and audit clean.
  PdOmflp reference{PdOptions{.bid_mode = PdOptions::BidMode::kReference}};
  PdOmflp incremental;
  const SolutionLedger lr = run_online(reference, inst);
  const SolutionLedger li = run_online(incremental, inst);
  EXPECT_FALSE(verify_solution(inst, lr).has_value());
  EXPECT_FALSE(verify_solution(inst, li).has_value());
  EXPECT_NEAR(lr.total_cost(), li.total_cost(), 1e-7);
  ASSERT_FALSE(reference.audit_state().has_value());
  ASSERT_FALSE(incremental.audit_state().has_value());

  // The kernelized incremental rows match a fully naive recompute (virtual
  // metric calls, scalar loops) of the final-state bid rows.
  for (CommodityId e = 0; e < 5; ++e) {
    if (!incremental.bid_plane().active(e)) continue;
    const std::vector<double> naive =
        naive_final_bid_row(inst, li, incremental.dual_records(), e);
    const double* kernelized = incremental.bid_plane().row(e);
    for (PointId m = 0; m < n; ++m)
      ASSERT_NEAR(kernelized[m], naive[m], 1e-7 * (1.0 + naive[m]))
          << "family " << GetParam() << " e=" << e << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, KernelizedPdFamilies,
                         ::testing::Values(0, 1, 2, 3));

// ----------------------------------------- uncached-oracle (fallback) ------

TEST(FallbackOracle, AlgorithmsRunCleanBeyondTheMatrixCacheLimit) {
  // 4100 points > DistanceOracle's 4096-point cache limit, so every
  // algorithm-level fallback branch runs for real (and under the ASan CI
  // job): PdOmflp::serve's dist_loc_scratch_ copy, the lazy dist_j fetch
  // in recompute_small_bid_row, prefix_nearest's single-slot row reuse,
  // and the row-gather facility scans.
  const std::size_t n = 4100;
  Rng rng(71);
  std::vector<double> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pos.push_back(rng.uniform(0.0, 500.0));
  auto metric = std::make_shared<LineMetric>(std::move(pos));
  {
    const DistanceOracle probe(metric);
    ASSERT_FALSE(probe.cached()) << "test premise: fallback path";
  }
  auto cost = std::make_shared<PolynomialCostModel>(3, 1.2);
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 8; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(n));
    r.commodities = sample_demand_set(3, 1 + rng.uniform_index(2), 0.0, rng);
    requests.push_back(std::move(r));
  }
  const Instance inst(metric, cost, std::move(requests));

  for (const PdOptions::BidMode mode :
       {PdOptions::BidMode::kIncremental, PdOptions::BidMode::kReference}) {
    PdOmflp pd{PdOptions{.bid_mode = mode}};
    const SolutionLedger ledger = run_online(pd, inst);
    EXPECT_FALSE(verify_solution(inst, ledger).has_value());
    const auto issue = pd.audit_state();
    EXPECT_FALSE(issue.has_value()) << pd.name() << ": " << *issue;
  }
  RandOmflp rand_algorithm;
  EXPECT_FALSE(
      verify_solution(inst, run_online(rand_algorithm, inst)).has_value());
}

// ----------------------------------------------- long adversarial audits ---

class PdLongAdversarial : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PdLongAdversarial, AuditCleanInBothBidModesMidSequence) {
  Rng rng(GetParam());
  Theorem2Config cfg;
  cfg.num_commodities = 49;
  const Instance theorem2 = make_theorem2_instance(cfg, rng);

  std::vector<double> pos;
  for (std::size_t i = 0; i < 20; ++i) pos.push_back(rng.uniform(0.0, 60.0));
  auto metric = std::make_shared<LineMetric>(std::move(pos));
  auto cost = std::make_shared<PolynomialCostModel>(8, 1.1);
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 250; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(20));
    r.commodities = sample_demand_set(8, 1 + rng.uniform_index(4), 0.0, rng);
    requests.push_back(std::move(r));
  }
  const Instance longrun(metric, cost, std::move(requests));

  for (const Instance* inst : {&theorem2, &longrun}) {
    for (const PdOptions::BidMode mode :
         {PdOptions::BidMode::kIncremental, PdOptions::BidMode::kReference}) {
      PdOmflp pd{PdOptions{.bid_mode = mode}};
      SolutionLedger ledger(inst->metric_ptr(), inst->cost_ptr());
      pd.reset(ProblemContext{inst->metric_ptr(), inst->cost_ptr()});
      std::size_t served = 0;
      for (const Request& r : inst->requests()) {
        ledger.begin_request(r);
        pd.serve(r, ledger);
        ledger.finish_request();
        if (++served % 50 == 0 || served == inst->num_requests()) {
          const auto issue = pd.audit_state();
          ASSERT_FALSE(issue.has_value())
              << pd.name() << " after " << served << ": " << *issue;
        }
      }
      EXPECT_FALSE(verify_solution(*inst, ledger).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdLongAdversarial,
                         ::testing::Values(1, 4));

// --------------------------------------------- NaN / divisor edge cases ---

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(KernelEdgeCases, ArgminNeverPicksNaN) {
  // Regression: the running best used to be seeded with row[0], so a NaN
  // in the first slot made every later "x < best" comparison false and
  // the NaN index won the argmin silently.
  const std::vector<double> row = {kNaN, 3.0, 1.0, 2.0};
  EXPECT_EQ(kernel::argmin_over_row(row.data(), row.size()), 2u);

  const std::vector<double> mid = {5.0, kNaN, 4.0, kNaN, 6.0};
  EXPECT_EQ(kernel::argmin_over_row(mid.data(), mid.size()), 2u);
}

TEST(KernelEdgeCases, ArgminAllNaNOrInfReturnsFirstIndex) {
  const std::vector<double> nans = {kNaN, kNaN, kNaN};
  EXPECT_EQ(kernel::argmin_over_row(nans.data(), nans.size()), 0u);
  const std::vector<double> mixed = {kInf, kNaN, kInf};
  EXPECT_EQ(kernel::argmin_over_row(mixed.data(), mixed.size()), 0u);
}

TEST(KernelEdgeCases, ArgminParallelMergeIsNaNRobust) {
  // Regression: the chunk merge re-read row[partial[c]], so a NaN chunk
  // winner shadowed every later finite chunk ("finite < NaN" is false).
  ThresholdGuard force_parallel(0);
  std::vector<double> row(3 * 8192 + 7, 50.0);
  for (std::size_t i = 0; i < 8192; ++i) row[i] = kNaN;  // chunk 0: all NaN
  row[2 * 8192 + 11] = 0.25;  // the true minimum, in chunk 2
  EXPECT_EQ(kernel::argmin_over_row(row.data(), row.size()),
            2u * 8192 + 11);
  ::setenv("OMFLP_THREADS", "4", 1);
  EXPECT_EQ(kernel::argmin_over_row(row.data(), row.size()),
            2u * 8192 + 11);
  ::unsetenv("OMFLP_THREADS");
}

TEST(KernelEdgeCases, ArgminMaskedIgnoresNaNAndReportsNoneEligible) {
  const std::vector<double> row = {kNaN, 2.0, 1.0, kNaN};
  const std::vector<std::uint32_t> keys = {0, 1, 5, 0};
  // NaN at an eligible slot never beats a finite eligible value.
  EXPECT_EQ(kernel::argmin_over_row_where(row.data(), keys.data(),
                                          /*limit=*/1, row.size()),
            1u);
  // Every eligible slot NaN -> "none eligible" (n), not a NaN index.
  EXPECT_EQ(kernel::argmin_over_row_where(row.data(), keys.data(),
                                          /*limit=*/0, row.size()),
            row.size());
}

TEST(KernelEdgeCases, MinTightnessSkipsNaNElements) {
  // Point 0 has a NaN bid; point 1 is genuinely tight. The NaN must
  // neither win the event scan nor poison the running minimum.
  const std::vector<double> dist = {0.0, 1.0, 3.0};
  const std::vector<double> cost = {5.0, 2.0, 4.0};
  const std::vector<double> bids = {kNaN, 2.0, 0.0};
  const kernel::RowEvent event = kernel::min_tightness_over_row(
      dist.data(), cost.data(), bids.data(), /*raised=*/1.0,
      /*divisor=*/1.0, dist.size());
  EXPECT_EQ(event.index, 1u);
  EXPECT_EQ(event.delta, 0.0);

  const std::vector<double> all_nan = {kNaN, kNaN, kNaN};
  const kernel::RowEvent none = kernel::min_tightness_over_row(
      all_nan.data(), cost.data(), bids.data(), /*raised=*/0.0,
      /*divisor=*/1.0, all_nan.size());
  EXPECT_FALSE(std::isfinite(none.delta));  // no event reported
}

TEST(KernelEdgeCases, MinTightnessNonPositiveDivisorReportsNoEvent) {
  const std::vector<double> dist = {0.0, 1.0};
  const std::vector<double> cost = {0.0, 2.0};
  const std::vector<double> bids = {0.0, 0.0};
  // Point 0 is tight (delta 0): with divisor 0 the old code computed
  // 0/0 = NaN, and with a negative divisor positive deltas became
  // negative winning "event times". Both must report no event instead.
  for (const double divisor : {0.0, -1.0, kNaN}) {
    const kernel::RowEvent event = kernel::min_tightness_over_row(
        dist.data(), cost.data(), bids.data(), /*raised=*/0.0, divisor,
        dist.size());
    EXPECT_EQ(event.delta, kInf) << "divisor " << divisor;
    EXPECT_EQ(event.index, static_cast<std::size_t>(-1))
        << "divisor " << divisor;
  }
}

TEST(KernelEdgeCases, FirstIndexWhereTightIgnoresNaN) {
  const std::vector<double> dist = {kNaN, 0.0, 0.0};
  const std::vector<double> cost = {0.0, kNaN, 1.0};
  const std::vector<double> bids = {5.0, 5.0, 1.0};
  // Points 0 and 1 have NaN inputs; point 2 is the first real tight one.
  EXPECT_EQ(kernel::first_index_where_tight(dist.data(), cost.data(),
                                            bids.data(), /*raised=*/2.0,
                                            dist.size()),
            2u);
  const std::vector<double> nan_bids = {kNaN, kNaN, kNaN};
  EXPECT_EQ(kernel::first_index_where_tight(dist.data(), cost.data(),
                                            nan_bids.data(),
                                            /*raised=*/2.0, dist.size()),
            dist.size());
}

}  // namespace
}  // namespace omflp
