// Baseline algorithm tests: single-commodity Fotakis/Meyerson behaviour,
// the per-commodity product adapter (facility mirroring, restricted cost
// model), and the greedy strawmen.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/fotakis_ofl.hpp"
#include "baseline/greedy.hpp"
#include "baseline/meyerson_ofl.hpp"
#include "baseline/per_commodity.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "metric/line_metric.hpp"
#include "solution/verifier.hpp"
#include "support/stats.hpp"

namespace omflp {
namespace {

Instance single_commodity_line(std::vector<double> positions,
                               std::vector<PointId> request_points,
                               double facility_cost) {
  auto metric = std::make_shared<LineMetric>(std::move(positions));
  auto cost = std::make_shared<SizeOnlyCostModel>(
      1, [facility_cost](CommodityId k) { return k ? facility_cost : 0.0; });
  std::vector<Request> reqs;
  for (PointId p : request_points)
    reqs.push_back(Request{p, CommoditySet::full_set(1)});
  return Instance(std::move(metric), std::move(cost), std::move(reqs));
}

TEST(FotakisOfl, OpensThenReuses) {
  // Facility cost 1; request at 0 opens, request at 0.25 connects.
  const Instance inst =
      single_commodity_line({0.0, 0.25}, {0, 1}, 1.0);
  FotakisOfl alg;
  const SolutionLedger ledger = run_online(alg, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  EXPECT_EQ(ledger.num_facilities(), 1u);
  EXPECT_NEAR(ledger.total_cost(), 1.25, 1e-9);
  ASSERT_EQ(alg.duals().size(), 2u);
  EXPECT_NEAR(alg.duals()[0], 1.0, 1e-9);
  EXPECT_NEAR(alg.duals()[1], 0.25, 1e-9);
}

TEST(FotakisOfl, RepeatedRequestsAmortizeIntoNearbyFacility) {
  // Two clusters far apart: requests alternate; each cluster eventually
  // gets its own facility and the total stays near 2 openings + local
  // distances.
  const Instance inst = single_commodity_line(
      {0.0, 100.0}, {0, 1, 0, 1, 0, 1, 0, 1}, 5.0);
  FotakisOfl alg;
  const SolutionLedger ledger = run_online(alg, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  EXPECT_EQ(ledger.num_facilities(), 2u);
  EXPECT_NEAR(ledger.total_cost(), 10.0, 1e-9);
}

TEST(FotakisOfl, RejectsMultiCommodityContext) {
  auto metric = std::make_shared<SinglePointMetric>();
  auto cost = std::make_shared<PolynomialCostModel>(2, 1.0);
  FotakisOfl alg;
  EXPECT_THROW(alg.reset(ProblemContext{metric, cost}),
               std::invalid_argument);
}

TEST(MeyersonOfl, ValidAndBoundedOnZooming) {
  Rng rng(1);
  ZoomingConfig cfg;
  cfg.num_requests = 64;
  cfg.num_commodities = 1;
  cfg.demand_size = 1;
  auto cost = std::make_shared<SizeOnlyCostModel>(
      1, [](CommodityId k) { return k ? 4.0 : 0.0; });
  const Instance inst = make_zooming_line(cfg, cost, rng);
  RunningStats stats;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    MeyersonOfl alg(seed);
    const SolutionLedger ledger = run_online(alg, inst);
    EXPECT_FALSE(verify_solution(inst, ledger).has_value());
    stats.add(ledger.total_cost());
  }
  ASSERT_TRUE(inst.opt_certificate().has_value());
  const double opt_ub = inst.opt_certificate()->upper_bound;
  // Expected O(log n / log log n) ratio; generous sanity ceiling.
  EXPECT_LE(stats.mean(), 20.0 * opt_ub);
}

TEST(PerCommodityAdapter, MirrorsFacilitiesAsSingletons) {
  Rng rng(2);
  UniformLineConfig cfg;
  cfg.num_points = 8;
  cfg.num_requests = 30;
  cfg.num_commodities = 5;
  cfg.max_demand = 3;
  auto cost = std::make_shared<PolynomialCostModel>(5, 1.0);
  const Instance inst = make_uniform_line(cfg, cost, rng);

  auto adapter = PerCommodityAdapter::fotakis();
  const SolutionLedger ledger = run_online(*adapter, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  for (const auto& f : ledger.facilities())
    EXPECT_EQ(f.config.count(), 1u)
        << "per-commodity baseline must open singletons only";
}

TEST(PerCommodityAdapter, PaysPerCommodityOnTheorem2) {
  // The adapter cannot bundle: on the Theorem 2 game it opens one
  // singleton per distinct commodity, total √|S| · OPT.
  Rng rng(3);
  Theorem2Config cfg;
  cfg.num_commodities = 144;  // 12 requests
  const Instance inst = make_theorem2_instance(cfg, rng);
  auto adapter = PerCommodityAdapter::fotakis();
  const SolutionLedger ledger = run_online(*adapter, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  EXPECT_EQ(ledger.num_facilities(), 12u);
  EXPECT_NEAR(ledger.total_cost(), 12.0, 1e-9);
}

TEST(PerCommodityAdapter, MeyersonVariantValid) {
  Rng rng(4);
  UniformLineConfig cfg;
  cfg.num_points = 8;
  cfg.num_requests = 25;
  cfg.num_commodities = 4;
  cfg.max_demand = 3;
  auto cost = std::make_shared<PolynomialCostModel>(4, 1.0);
  const Instance inst = make_uniform_line(cfg, cost, rng);
  auto adapter = PerCommodityAdapter::meyerson(99);
  const SolutionLedger ledger = run_online(*adapter, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
}

TEST(RestrictedCostModel, ProjectsSingletonCosts) {
  auto base = std::make_shared<LinearCostModel>(
      std::vector<double>{1.0, 2.0, 4.0});
  RestrictedCostModel restricted(base, 2);
  EXPECT_EQ(restricted.num_commodities(), 1u);
  EXPECT_DOUBLE_EQ(restricted.open_cost(0, CommoditySet::full_set(1)), 4.0);
  EXPECT_THROW(RestrictedCostModel(base, 3), std::invalid_argument);
}

// --------------------------------------------------------------- greedy --

TEST(AlwaysOpen, OpensEveryTime) {
  Rng rng(5);
  SinglePointMixedConfig cfg;
  cfg.num_requests = 10;
  cfg.num_commodities = 6;
  auto cost = std::make_shared<PolynomialCostModel>(6, 1.0);
  const Instance inst = make_single_point_mixed(cfg, cost, rng);
  AlwaysOpen alg;
  const SolutionLedger ledger = run_online(alg, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  EXPECT_EQ(ledger.num_facilities(), 10u);
  EXPECT_DOUBLE_EQ(ledger.connection_cost(), 0.0);
}

TEST(NearestOrOpen, ConnectsWhenCheaper) {
  const Instance inst = single_commodity_line({0.0, 0.5}, {0, 1}, 2.0);
  NearestOrOpen alg;
  const SolutionLedger ledger = run_online(alg, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  EXPECT_EQ(ledger.num_facilities(), 1u);
  EXPECT_NEAR(ledger.total_cost(), 2.5, 1e-9);
}

Instance commuter_instance() {
  // One facility-seeding request at 0, then 20 requests at distance 4
  // from it with opening cost 5: "connect if closer than opening" rents
  // forever (pays 4 per request); amortizing algorithms buy a second
  // facility after about one rent cycle.
  std::vector<PointId> points(21, 1);
  points[0] = 0;
  return Instance(
      std::make_shared<LineMetric>(std::vector<double>{0.0, 4.0}),
      std::make_shared<SizeOnlyCostModel>(
          1, [](CommodityId k) { return k ? 5.0 : 0.0; }),
      [&] {
        std::vector<Request> reqs;
        for (PointId p : points)
          reqs.push_back(Request{p, CommoditySet::full_set(1)});
        return reqs;
      }(),
      "commuter");
}

TEST(NearestOrOpen, RentsForeverOnCommuterWorkload) {
  // The classic failure mode of non-amortizing greedy: it keeps paying
  // the distance 4 "rent" for every request (total ≈ 85) while the
  // primal-dual algorithm buys a local facility after the bids at the
  // commuter point reach the opening cost (total ≈ 14).
  const Instance inst = commuter_instance();
  NearestOrOpen greedy;
  FotakisOfl fotakis;
  const double greedy_cost = run_online(greedy, inst).total_cost();
  const double fotakis_cost = run_online(fotakis, inst).total_cost();
  EXPECT_NEAR(greedy_cost, 5.0 + 20.0 * 4.0, 1e-9);
  EXPECT_NEAR(fotakis_cost, 5.0 + 4.0 + 5.0, 1e-9);
  EXPECT_GT(greedy_cost, 2.0 * fotakis_cost);
}

TEST(RentOrBuy, ValidOnMixedWorkload) {
  Rng rng(7);
  UniformLineConfig cfg;
  cfg.num_points = 12;
  cfg.num_requests = 40;
  cfg.num_commodities = 6;
  cfg.max_demand = 3;
  auto cost = std::make_shared<PolynomialCostModel>(6, 1.0);
  const Instance inst = make_uniform_line(cfg, cost, rng);
  RentOrBuy alg;
  const SolutionLedger ledger = run_online(alg, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
}

TEST(RentOrBuy, AmortizesOnCommuterWorkload) {
  // Rent 4, rent would reach 8 > 5 → buy locally, then ride free:
  // 5 (seed) + 4 (one rent) + 5 (buy) = 14 ≪ 85 for NearestOrOpen.
  const Instance inst = commuter_instance();
  RentOrBuy rent;
  NearestOrOpen naive;
  const double rent_cost = run_online(rent, inst).total_cost();
  EXPECT_NEAR(rent_cost, 14.0, 1e-9);
  EXPECT_LT(rent_cost, run_online(naive, inst).total_cost() / 2.0);
}

}  // namespace
}  // namespace omflp
