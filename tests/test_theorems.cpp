// Theorem-level integration tests: these check the paper's actual claims
// against the implementation — the Theorem 4 explicit bound against exact
// optima, Corollary 17's dual feasibility, the Theorem 2 sandwich on the
// adversarial distribution, and the √|S| separation from the trivial
// per-commodity baseline that motivates the whole paper.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/competitive.hpp"
#include "analysis/dual_feasibility.hpp"
#include "baseline/per_commodity.hpp"
#include "core/pd_omflp.hpp"
#include "core/rand_omflp.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "metric/line_metric.hpp"
#include "offline/exact_small.hpp"
#include "support/harmonic.hpp"
#include "support/stats.hpp"

namespace omflp {
namespace {

Instance tiny_random_instance(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> positions;
  for (int i = 0; i < 3; ++i) positions.push_back(rng.uniform(0.0, 20.0));
  auto metric = std::make_shared<LineMetric>(std::move(positions));
  auto cost = std::make_shared<PolynomialCostModel>(4, 1.0, 2.3);
  std::vector<Request> reqs;
  const std::size_t n = 4 + rng.uniform_index(8);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(3));
    r.commodities = sample_demand_set(
        4, static_cast<CommodityId>(1 + rng.uniform_index(3)), 0.0, rng);
    reqs.push_back(std::move(r));
  }
  return Instance(std::move(metric), std::move(cost), std::move(reqs),
                  "tiny-random");
}

// ------------------------------------------------------------ Theorem 4 --

class Theorem4 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem4, PdCostWithinExplicitBoundOfExactOpt) {
  const Instance inst = tiny_random_instance(GetParam());
  const OfflineSolution opt = solve_exact_small(inst);
  ASSERT_TRUE(opt.exact);
  ASSERT_GT(opt.cost, 0.0);

  PdOmflp pd;
  const SolutionLedger ledger = run_online(pd, inst);
  const double bound =
      theorem4_bound(inst.num_commodities(), inst.num_requests());
  EXPECT_LE(ledger.total_cost(), bound * opt.cost + 1e-7)
      << "PD cost " << ledger.total_cost() << " vs 15·√S·H_n·OPT = "
      << bound * opt.cost;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem4,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15, 16));

// -------------------------------------------------------- Corollary 17 ---

class DualFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualFeasibility, ScaledDualsAreFeasibleExhaustively) {
  // |S| = 4, exhaustive over all 15 configurations and every point.
  const Instance inst = tiny_random_instance(GetParam() * 31 + 7);
  PdOmflp pd;
  (void)run_online(pd, inst);
  const double gamma =
      pd_scaling_factor(inst.num_commodities(), inst.num_requests());
  const auto violation = check_dual_feasibility_exhaustive(
      inst, pd.dual_records(), gamma);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->what : "");
}

TEST_P(DualFeasibility, ScaledDualsFeasibleOnLargerInstancesSampled) {
  Rng rng(GetParam() * 17 + 3);
  UniformLineConfig cfg;
  cfg.num_points = 14;
  cfg.num_requests = 60;
  cfg.num_commodities = 10;
  cfg.max_demand = 5;
  auto cost = std::make_shared<PolynomialCostModel>(10, 1.0);
  const Instance inst = make_uniform_line(cfg, cost, rng);
  PdOmflp pd;
  (void)run_online(pd, inst);
  const double gamma = pd_scaling_factor(10, cfg.num_requests);
  Rng check_rng(GetParam());
  const auto violation = check_dual_feasibility_sampled(
      inst, pd.dual_records(), gamma, 300, check_rng);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->what : "");
}

TEST_P(DualFeasibility, UnscaledDualsViolateSomewhere) {
  // Sanity check that the checker has teeth: with γ = 1 (no scaling) the
  // duals of a non-trivial run should violate some constraint — if they
  // never did, PD would be 3-competitive and the paper unnecessary.
  const Instance inst = tiny_random_instance(GetParam() * 13 + 5);
  PdOmflp pd;
  const SolutionLedger ledger = run_online(pd, inst);
  const OfflineSolution opt = solve_exact_small(inst);
  // Only expect a violation when the run actually paid more than OPT
  // (otherwise the duals can genuinely be feasible unscaled).
  if (ledger.total_cost() > 3.0 * opt.cost) {
    EXPECT_TRUE(check_dual_feasibility_exhaustive(inst, pd.dual_records(),
                                                  1.0)
                    .has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualFeasibility,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------------------------ Theorem 2 --

TEST(Theorem2, PdRatioSandwichedBetweenBounds) {
  for (CommodityId s : {16u, 64u, 256u, 1024u}) {
    Rng rng(s);
    Theorem2Config cfg;
    cfg.num_commodities = s;
    const Instance inst = make_theorem2_instance(cfg, rng);
    PdOmflp pd;
    RatioResult r = measure_ratio(pd, inst);
    ASSERT_TRUE(r.opt_exact);
    // Lower bound (no algorithm can beat √S/16 in expectation over the
    // distribution; PD is deterministic and the instance symmetric, so
    // its ratio must respect it up to the proof's constants)...
    EXPECT_GE(r.ratio, theorem2_bound(s)) << "S=" << s;
    // ...and the Theorem 4 upper bound.
    EXPECT_LE(r.ratio, theorem4_bound(s, inst.num_requests()) + 1e-9)
        << "S=" << s;
    // The proof-sketch behaviour: PD pays Θ(√S) here (2√S − 1 exactly).
    const double sqrt_s = std::sqrt(static_cast<double>(s));
    EXPECT_NEAR(r.ratio, 2.0 * sqrt_s - 1.0, 1e-6) << "S=" << s;
  }
}

TEST(Theorem2, NoPredictionPaysSqrtSAndFullPredictionWinsAsSGrows) {
  // §2's discussion: an algorithm that never predicts builds √S singleton
  // facilities (ratio √S); prediction caps the damage at ~2√S here but
  // pays off hugely on workloads with repeated demand (see the baseline
  // separation test below).
  for (CommodityId s : {64u, 256u}) {
    Rng rng(s + 1);
    Theorem2Config cfg;
    cfg.num_commodities = s;
    const Instance inst = make_theorem2_instance(cfg, rng);
    PdOmflp no_pred{PdOptions{.prediction = PdOptions::Prediction::kOff}};
    const RatioResult r = measure_ratio(no_pred, inst);
    EXPECT_NEAR(r.ratio, std::sqrt(static_cast<double>(s)), 1e-6);
  }
}

// ------------------------------------------- §1.3 baseline separation ----

TEST(BaselineSeparation, PerCommodityPaysSqrtSMoreOnSharedDemands) {
  // n requests all demanding the full S at one point, g = sqrt:
  //   OPT = √S (one large facility);
  //   PD opens exactly that large facility on the first request (ratio 1);
  //   the per-commodity baseline opens |S| singletons (ratio √S).
  for (CommodityId s : {16u, 64u, 144u}) {
    auto metric = std::make_shared<SinglePointMetric>();
    auto cost = std::make_shared<PolynomialCostModel>(s, 1.0);
    std::vector<Request> reqs(6, Request{0, CommoditySet::full_set(s)});
    Instance inst(metric, cost, std::move(reqs), "shared-demand");

    const double sqrt_s = std::sqrt(static_cast<double>(s));
    PdOmflp pd;
    const RatioResult pd_result = measure_ratio(pd, inst);
    EXPECT_TRUE(pd_result.opt_exact);
    EXPECT_NEAR(pd_result.opt_cost, sqrt_s, 1e-9);
    EXPECT_NEAR(pd_result.ratio, 1.0, 1e-9) << "S=" << s;

    auto baseline = PerCommodityAdapter::fotakis();
    const RatioResult base_result = measure_ratio(*baseline, inst);
    EXPECT_NEAR(base_result.ratio, sqrt_s, 1e-9) << "S=" << s;
  }
}

// ----------------------------------------------------------- Theorem 19 --

TEST(Theorem19, RandStaysWithinDeterministicBudgetOnAverage) {
  // RAND's guarantee is asymptotically better than PD's; on moderate
  // workloads its mean cost should not exceed a small multiple of PD's.
  Rng rng(5);
  ClusteredConfig cfg;
  cfg.num_clusters = 4;
  cfg.requests_per_cluster = 16;
  cfg.num_commodities = 12;
  cfg.commodities_per_cluster = 4;
  auto cost = std::make_shared<PolynomialCostModel>(12, 1.0);
  const Instance inst = make_clustered_line(cfg, cost, rng);

  PdOmflp pd;
  const double pd_cost = run_online(pd, inst).total_cost();
  RunningStats rand_costs;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    RandOmflp rand{RandOptions{.seed = seed}};
    rand_costs.add(run_online(rand, inst).total_cost());
  }
  EXPECT_LE(rand_costs.mean(), 3.0 * pd_cost);
  // And both respect the certificate-based Theorem 4 budget.
  ASSERT_TRUE(inst.opt_certificate().has_value());
  const double budget =
      theorem4_bound(12, inst.num_requests()) *
      inst.opt_certificate()->upper_bound;
  EXPECT_LE(pd_cost, budget);
  EXPECT_LE(rand_costs.mean(), budget);
}

// ----------------------------------------------------------- Theorem 18 --

TEST(Theorem18, MeasuredRatioPeaksInTheMiddleOfClassC) {
  // On the adversarial distribution with cost g_x, the PD ratio should
  // peak around x = 1 and drop to Θ(1)-ish at the endpoints — Figure 2's
  // shape, measured.
  const CommodityId s = 256;
  auto ratio_at = [&](double x) {
    RunningStats stats;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed);
      Theorem18Config cfg;
      cfg.num_commodities = s;
      cfg.exponent_x = x;
      const Instance inst = make_theorem18_instance(cfg, rng);
      PdOmflp pd;
      stats.add(measure_ratio(pd, inst).ratio);
    }
    return stats.mean();
  };
  const double at_zero = ratio_at(0.0);
  const double at_one = ratio_at(1.0);
  const double at_two = ratio_at(2.0);
  EXPECT_GT(at_one, at_zero);
  EXPECT_GT(at_one, at_two);
  // Endpoints: prediction-free regimes; the ratio should stay O(1)-ish.
  EXPECT_LE(at_zero, 4.0);
  EXPECT_LE(at_two, 4.0);
}

}  // namespace
}  // namespace omflp
