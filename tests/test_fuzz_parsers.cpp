// Fuzz-ish parser robustness: a deterministic corpus of mutated
// OMFLP-STREAM, OMFLP-INSTANCE, OMFLP-CERT and OMFLP-TRACELOG bytes —
// truncations,
// flipped signs, duplicated/deleted lines, absurd declared counts,
// random byte corruption — fed through every reader. The contract: a mutant either
// parses (some mutations are harmless) or is rejected with an ordinary
// exception; nothing may crash, read out of bounds, or allocate
// proportionally to a *declared* (rather than actually present) count.
// CI runs this suite under ASan/UBSan (the sanitize job), which is where
// the "no crashes" half of the contract gets teeth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bound/certificate.hpp"
#include "bound/dual_ascent.hpp"
#include "core/pd_omflp.hpp"
#include "core/stream_runner.hpp"
#include "instance/checkpoint_io.hpp"
#include "instance/event_stream.hpp"
#include "instance/io.hpp"
#include "instance/stream_io.hpp"
#include "instance/tracelog_io.hpp"
#include "obs/trace_sink.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/stream_registry.hpp"
#include "support/rng.hpp"

namespace omflp {
namespace {

enum class ParseOutcome { kAccepted, kRejected };

/// Every stream reader over one input: the materializing parser (plus
/// semantic validation) and the bounded-memory batch reader, drained.
/// Returns whether the text was accepted; throws only on non-exception
/// failures (which the test harness / sanitizers turn into failures).
ParseOutcome feed_stream_readers(const std::string& text) {
  ParseOutcome outcome = ParseOutcome::kAccepted;
  try {
    const EventStream stream = event_stream_from_string(text);
    stream.validate();
  } catch (const std::exception&) {
    outcome = ParseOutcome::kRejected;
  }
  try {
    std::istringstream is(text);
    StreamTraceReader reader(is);
    std::vector<StreamEvent> batch;
    while (reader.next_batch(batch, 256) > 0) batch.clear();
  } catch (const std::exception&) {
    outcome = ParseOutcome::kRejected;
  }
  return outcome;
}

ParseOutcome feed_instance_reader(const std::string& text) {
  try {
    std::istringstream is(text);
    const Instance instance = read_instance(is);
    instance.validate();
    return ParseOutcome::kAccepted;
  } catch (const std::exception&) {
    return ParseOutcome::kRejected;
  }
}

std::string valid_stream_trace() {
  const EventStream stream = default_stream_scenario_registry().make(
      "churn-uniform", /*seed=*/3,
      {{"events", 96}, {"points", 12}, {"commodities", 4}});
  return event_stream_to_string(stream);
}

std::string valid_instance_trace() {
  std::ostringstream os;
  write_instance(os, default_scenario_registry().make(
                         "uniform-line", /*seed=*/2, {{"requests", 48}}));
  return os.str();
}

ParseOutcome feed_certificate_reader(const std::string& text) {
  try {
    (void)certificate_from_string(text);
    return ParseOutcome::kAccepted;
  } catch (const std::exception&) {
    return ParseOutcome::kRejected;
  }
}

std::string valid_certificate() {
  const Instance instance = default_scenario_registry().make(
      "uniform-line", /*seed=*/4, {{"requests", 32}});
  return certificate_to_string(
      dual_ascent_lower_bound(instance).certificate);
}

ParseOutcome feed_tracelog_reader(const std::string& text) {
  try {
    (void)tracelog_from_string(text);
    return ParseOutcome::kAccepted;
  } catch (const std::exception&) {
    return ParseOutcome::kRejected;
  }
}

/// A real decision trace: PD over a small churn stream, so the corpus
/// covers every event kind (opens with contributor lists, assigns, dual
/// raises, departs, rollbacks).
std::string valid_tracelog() {
  const EventStream stream = default_stream_scenario_registry().make(
      "churn-uniform", /*seed=*/5, {{"events", 160}});
  PdOmflp pd;
  TraceBuffer buffer;
  {
    TraceScope scope(buffer);
    (void)run_stream(pd, stream, {});
  }
  return tracelog_to_string(buffer.events());
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// Replace the first numeric token on every line starting with `prefix`.
std::string with_count(const std::string& text, const std::string& prefix,
                       const std::string& replacement) {
  std::vector<std::string> lines = split_lines(text);
  for (std::string& line : lines) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t digit = line.find_first_of("0123456789", prefix.size());
    if (digit == std::string::npos) continue;
    std::size_t end = digit;
    while (end < line.size() && std::isdigit(static_cast<unsigned char>(
                                    line[end])))
      ++end;
    line = line.substr(0, digit) + replacement + line.substr(end);
    break;
  }
  return join_lines(lines);
}

template <typename Feed>
void run_corpus(const std::string& base, Feed feed) {
  ASSERT_EQ(feed(base), ParseOutcome::kAccepted)
      << "the unmutated trace must parse";

  std::size_t rejected = 0;
  std::size_t trials = 0;
  const auto check = [&](const std::string& mutant) {
    ++trials;
    if (feed(mutant) == ParseOutcome::kRejected) ++rejected;
  };

  // Truncations at ~64 byte positions, including mid-line cuts.
  for (std::size_t cut = 0; cut < base.size();
       cut += std::max<std::size_t>(1, base.size() / 64))
    check(base.substr(0, cut));

  // Duplicated and deleted lines (headers and early sections).
  const std::vector<std::string> lines = split_lines(base);
  for (std::size_t i = 0; i < std::min<std::size_t>(lines.size(), 24);
       ++i) {
    std::vector<std::string> duplicated = lines;
    duplicated.insert(duplicated.begin() + static_cast<long>(i), lines[i]);
    check(join_lines(duplicated));
    std::vector<std::string> deleted = lines;
    deleted.erase(deleted.begin() + static_cast<long>(i));
    check(join_lines(deleted));
  }

  // Random byte corruption: overwrite one byte with a hostile pick.
  Rng rng(0xf422ed);
  const std::string pool = "-+0123456789aLd. \t\n\"#";
  for (std::size_t trial = 0; trial < 256; ++trial) {
    std::string mutant = base;
    mutant[rng.uniform_index(mutant.size())] =
        pool[rng.uniform_index(pool.size())];
    check(mutant);
  }

  // Sign flips in front of random digits.
  for (std::size_t trial = 0; trial < 64; ++trial) {
    std::string mutant = base;
    const std::size_t pos = rng.uniform_index(mutant.size());
    if (std::isdigit(static_cast<unsigned char>(mutant[pos])))
      mutant.insert(pos, 1, '-');
    check(mutant);
  }

  // The corpus must actually exercise the error paths.
  EXPECT_GT(rejected, trials / 4) << "suspiciously tolerant parser";
}

TEST(FuzzParsers, StreamTraceMutationsNeverCrash) {
  run_corpus(valid_stream_trace(), feed_stream_readers);
}

TEST(FuzzParsers, InstanceTraceMutationsNeverCrash) {
  run_corpus(valid_instance_trace(), feed_instance_reader);
}

std::string valid_capacitated_instance() {
  Instance instance = default_scenario_registry().make(
      "uniform-line", /*seed=*/2, {{"requests", 16}});
  auto caps = std::make_shared<std::vector<std::uint64_t>>(
      instance.metric().num_points(), kUncapacitated);
  (*caps)[0] = 3;
  (*caps)[2] = 1;
  instance.set_capacities(std::move(caps));
  std::ostringstream os;
  write_instance(os, instance);
  return os.str();
}

TEST(FuzzParsers, CapacitatedInstanceMutationsNeverCrash) {
  run_corpus(valid_capacitated_instance(), feed_instance_reader);
}

// Targeted mutations of the capacities section itself: every malformed
// variant must be rejected with an ordinary exception, never accepted
// with a silently-wrong capacity map.
TEST(FuzzParsers, InstanceCapacityLineTamperingIsRejected) {
  const std::string base = valid_capacitated_instance();
  ASSERT_EQ(feed_instance_reader(base), ParseOutcome::kAccepted);
  const std::string section = "capacities 2\n0 3\n2 1\n";
  const std::size_t at = base.find(section);
  ASSERT_NE(at, std::string::npos) << base;
  const auto with_section = [&](const std::string& replacement) {
    return base.substr(0, at) + replacement +
           base.substr(at + section.size());
  };

  const char* const kBadSections[] = {
      "capacities 3\n0 3\n2 1\n",   // count overruns the rows present
      "capacities 99\n0 3\n2 1\n",  // count exceeds the point count
      "capacities 2\n2 1\n0 3\n",   // rows not strictly ascending
      "capacities 2\n0 3\n0 1\n",   // duplicate point
      // a stored cap equal to the in-memory infinity sentinel
      "capacities 2\n0 3\n2 18446744073709551615\n",
      "capacities 2\n0 3\n2 1 junk\n",  // trailing garbage on a row
      "capacities 2\n0 3\n999 1\n",     // point outside the metric
      "capacities 2\n0 3\n2 -1\n",      // negative capacity
      "capacities two\n0 3\n2 1\n",     // non-numeric count
      "capacities 2 extra\n0 3\n2 1\n",  // trailing garbage on header
  };
  for (const char* bad : kBadSections)
    EXPECT_EQ(feed_instance_reader(with_section(bad)),
              ParseOutcome::kRejected)
        << bad;

  // Truncation mid-section: header plus one of two declared rows.
  EXPECT_EQ(feed_instance_reader(base.substr(0, at + section.find("\n2"))),
            ParseOutcome::kRejected);
  // Dropping the whole section is fine — capacities are optional.
  EXPECT_EQ(feed_instance_reader(with_section("")),
            ParseOutcome::kAccepted);
}

TEST(FuzzParsers, CertificateMutationsNeverCrash) {
  run_corpus(valid_certificate(), feed_certificate_reader);
}

TEST(FuzzParsers, TracelogMutationsNeverCrash) {
  run_corpus(valid_tracelog(), feed_tracelog_reader);
}

TEST(FuzzParsers, TracelogCountTamperingIsRejected) {
  const std::string trace = valid_tracelog();

  // Overstated/absurd totals on the end line: the reader must fail on
  // the count mismatch, never trust it for allocation.
  for (const char* huge :
       {"18446744073709551615", "1099511627776",
        "99999999999999999999999", "0", "-5"}) {
    EXPECT_EQ(
        feed_tracelog_reader(with_count(trace, "{\"end\"", huge)),
        ParseOutcome::kRejected)
        << huge;
  }

  // Re-sequencing: bump the first event's seq so it no longer equals its
  // line index.
  {
    std::vector<std::string> lines = split_lines(trace);
    ASSERT_GE(lines.size(), 3u);
    ASSERT_EQ(lines[1].rfind("{\"seq\":0,", 0), 0u);
    std::string resequenced = lines[1];
    resequenced.replace(8, 1, "7");
    lines[1] = resequenced;
    EXPECT_EQ(feed_tracelog_reader(join_lines(lines)),
              ParseOutcome::kRejected);
  }
}

TEST(FuzzParsers, HugeDeclaredCountsAreRejectedNotAllocated) {
  const std::string stream = valid_stream_trace();
  const std::string instance = valid_instance_trace();
  const std::string certificate = valid_certificate();

  // Declared counts far beyond the bytes actually present must fail at
  // "unexpected end of input" (or a parse error), never by attempting
  // the corresponding allocation.
  for (const char* huge :
       {"18446744073709551615", "4294967295", "1099511627776",
        "99999999999999999999999"}) {
    EXPECT_EQ(feed_stream_readers(with_count(stream, "events", huge)),
              ParseOutcome::kRejected)
        << huge;
    EXPECT_EQ(feed_stream_readers(with_count(stream, "metric matrix",
                                             huge)),
              ParseOutcome::kRejected)
        << huge;
    EXPECT_EQ(feed_stream_readers(with_count(stream, "commodities", huge)),
              ParseOutcome::kRejected)
        << huge;
    EXPECT_EQ(feed_instance_reader(with_count(instance, "requests", huge)),
              ParseOutcome::kRejected)
        << huge;
    EXPECT_EQ(feed_instance_reader(with_count(instance, "metric matrix",
                                              huge)),
              ParseOutcome::kRejected)
        << huge;
    EXPECT_EQ(
        feed_certificate_reader(with_count(certificate, "requests", huge)),
        ParseOutcome::kRejected)
        << huge;
    EXPECT_EQ(
        feed_certificate_reader(with_count(certificate, "points", huge)),
        ParseOutcome::kRejected)
        << huge;
  }

  // Negative counts must be rejected, not wrapped.
  EXPECT_EQ(feed_stream_readers(with_count(stream, "events", "-5")),
            ParseOutcome::kRejected);
  EXPECT_EQ(feed_instance_reader(with_count(instance, "requests", "-5")),
            ParseOutcome::kRejected);
}

// --------------------------------------------------------- OMFLP-CKPT ---

/// The stream behind the checkpoint corpus; the restore path needs a
/// fresh source of the same stream.
const EventStream& checkpoint_stream() {
  static const EventStream stream = default_stream_scenario_registry().make(
      "churn-uniform", /*seed=*/6,
      {{"events", 192}, {"points", 16}, {"commodities", 4}});
  return stream;
}

StreamRunOptions checkpoint_options() {
  StreamRunOptions options;
  options.batch_size = 64;
  return options;
}

/// A real OMFLP-CKPT payload: a PD session snapshotted mid-stream,
/// exactly as the serving engine checkpoints tenants.
std::string valid_checkpoint() {
  PdOmflp pd;
  MaterializedEventSource source(checkpoint_stream());
  StreamSession session(pd, source, checkpoint_options());
  (void)session.step_batch();
  (void)session.step_batch();
  std::ostringstream os;
  CkptWriter writer(os);
  session.checkpoint(writer);
  writer.finish();
  return os.str();
}

/// Both consumers of a checkpoint payload: the non-throwing structural
/// validator recovery trusts, and the full CkptReader restore path (a
/// fresh PD session rebuilt from the bytes). A mutant is accepted only
/// if both accept it; neither may crash or allocate from hostile counts
/// (the sanitizer job turns either into a failure).
ParseOutcome feed_checkpoint_readers(const std::string& text) {
  ParseOutcome outcome = ParseOutcome::kAccepted;
  {
    std::istringstream is(text);
    if (!checkpoint_payload_valid(is)) outcome = ParseOutcome::kRejected;
  }
  try {
    PdOmflp pd;
    MaterializedEventSource source(checkpoint_stream());
    std::istringstream is(text);
    CkptReader reader(is);
    StreamSession session(pd, source, checkpoint_options(), reader);
    reader.finish();
  } catch (const std::exception&) {
    outcome = ParseOutcome::kRejected;
  }
  return outcome;
}

/// FNV-1a 64, matching the writer's checksum; lets mutations re-seal a
/// tampered payload so they reach the parse paths *behind* the checksum.
std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Replace the trailing checksum line with a freshly computed one.
std::string resealed(const std::string& text) {
  std::vector<std::string> lines = split_lines(text);
  if (lines.empty()) return text;
  lines.pop_back();  // the checksum line
  std::string body = join_lines(lines);
  std::ostringstream os;
  os << body << "checksum " << std::hex;
  os.fill('0');
  os.width(16);
  os << fnv1a64(body) << "\n";
  return os.str();
}

TEST(FuzzParsers, CheckpointMutationsNeverCrash) {
  run_corpus(valid_checkpoint(), feed_checkpoint_readers);
}

TEST(FuzzParsers, CheckpointChecksumAndVersionTamperingIsRejected) {
  const std::string base = valid_checkpoint();
  ASSERT_EQ(feed_checkpoint_readers(base), ParseOutcome::kAccepted);
  // Sanity for resealed(): recomputing the checksum of an untampered
  // body reproduces an accepted payload (pins the test's own FNV).
  ASSERT_EQ(resealed(base), base);

  std::vector<std::string> lines = split_lines(base);
  ASSERT_GE(lines.size(), 3u);

  // Version bump: an OMFLP-CKPT 2 file is from the future, not ours.
  {
    std::vector<std::string> t = lines;
    t[0] = "OMFLP-CKPT 2";
    EXPECT_EQ(feed_checkpoint_readers(resealed(join_lines(t))),
              ParseOutcome::kRejected);
  }
  // Flipped checksum digit: the classic bit-rot signature.
  {
    std::vector<std::string> t = lines;
    std::string& check = t.back();
    check.back() = check.back() == '0' ? '1' : '0';
    EXPECT_EQ(feed_checkpoint_readers(join_lines(t)),
              ParseOutcome::kRejected);
  }
  // Missing checksum line entirely: a torn write.
  {
    std::vector<std::string> t(lines.begin(), lines.end() - 1);
    EXPECT_EQ(feed_checkpoint_readers(join_lines(t)),
              ParseOutcome::kRejected);
  }
  // Content tampering behind a *valid* checksum: swap two interior
  // lines and re-seal — structural validation passes, the typed reader
  // must still reject on the key sequence.
  {
    std::vector<std::string> t = lines;
    std::swap(t[1], t[2]);
    const std::string mutant = resealed(join_lines(t));
    std::istringstream is(mutant);
    EXPECT_TRUE(checkpoint_payload_valid(is));
    EXPECT_EQ(feed_checkpoint_readers(mutant), ParseOutcome::kRejected);
  }
}

TEST(FuzzParsers, CheckpointHugeCountsAreRejectedNotAllocated) {
  const std::string base = valid_checkpoint();
  const std::vector<std::string> lines = split_lines(base);

  // The count-bearing header lines of a PD session snapshot: each
  // declares how many record lines follow. (Per-record lines carry
  // unconstrained ids and values; a huge *id* is legal, a huge *count*
  // must fail against the lines actually present.)
  const std::set<std::string> count_keys = {
      "active", "larges",       "expiries",      "dual-records",
      "past",   "bid-rows",     "offering-index", "ledger",
      "seen",   "verifier-active"};

  // Re-seal each tampered payload so the hostile count is reached with
  // a passing checksum: the declared count must then fail at parse
  // ("unexpected end of input" / key mismatch), never be trusted for
  // allocation (capped_reserve bounds the first reservation; growth is
  // paid per input line).
  std::size_t tampered = 0;
  for (const char* huge :
       {"18446744073709551615", "1099511627776",
        "99999999999999999999999"}) {
    for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
      const std::size_t space = lines[i].find(' ');
      if (space == std::string::npos) continue;
      if (count_keys.count(lines[i].substr(0, space)) == 0) continue;
      const std::size_t digit =
          lines[i].find_first_of("0123456789", space);
      if (digit == std::string::npos) continue;
      std::size_t end = digit;
      while (end < lines[i].size() &&
             std::isdigit(static_cast<unsigned char>(lines[i][end])))
        ++end;
      std::vector<std::string> t = lines;
      t[i] = lines[i].substr(0, digit) + huge + lines[i].substr(end);
      EXPECT_EQ(feed_checkpoint_readers(resealed(join_lines(t))),
                ParseOutcome::kRejected)
          << "line " << i << " [" << lines[i] << "] count -> " << huge;
      ++tampered;
    }
  }
  EXPECT_GT(tampered, 10u) << "corpus barely exercised the count paths";
}

}  // namespace
}  // namespace omflp
