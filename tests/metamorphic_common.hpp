// Random-instance generator for the metamorphic test harness
// (tests/test_metamorphic.cpp).
//
// Metamorphic testing checks *relations between runs* instead of oracle
// outputs: generate a random instance, apply a transformation with a
// known effect (scale the geometry, permute the commodity labels, drop a
// request that should not have mattered), and assert the algorithms'
// costs move exactly as the theory says. By default the generator draws
// small instances across two metric families (line, 2-D Euclidean) and
// two cost families (polynomial class-C, per-commodity linear); tests can
// force any of four metric families (line, Euclidean, graph
// shortest-path, explicit matrix) and either cost family so the
// invariants are exercised over genuinely different shapes — everything
// is a deterministic function of the seed.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cost/cost_models.hpp"
#include "instance/instance.hpp"
#include "metric/euclidean_metric.hpp"
#include "metric/graph_metric.hpp"
#include "metric/line_metric.hpp"
#include "metric/matrix_metric.hpp"
#include "support/rng.hpp"

namespace omflp::metamorphic {

/// kAny keeps the historical 50/50 line/Euclidean draw (and its exact RNG
/// consumption — forcing a family must not shift seeds of existing
/// tests); the named families are opt-in for tests that sweep shapes.
enum class MetricFamily { kAny, kLine, kEuclidean, kGraph, kMatrix };
enum class CostFamily { kAny, kLinear, kPolynomial };

struct GeneratorOptions {
  std::size_t min_points = 12;
  std::size_t max_points = 24;
  CommodityId min_commodities = 3;
  CommodityId max_commodities = 6;
  std::size_t min_requests = 24;
  std::size_t max_requests = 48;
  /// Force the per-commodity LinearCostModel (the permutation invariant
  /// needs a cost that actually depends on commodity identity).
  /// Equivalent to cost_family = kLinear; kept for existing callers.
  bool linear_cost_only = false;
  MetricFamily metric_family = MetricFamily::kAny;
  CostFamily cost_family = CostFamily::kAny;
};

struct GeneratedInstance {
  Instance instance;
  /// Per-commodity weights when the linear cost model was drawn; empty
  /// for the (label-blind) polynomial model.
  std::vector<double> linear_weights;
};

inline GeneratedInstance random_instance(std::uint64_t seed,
                                         const GeneratorOptions& options =
                                             {}) {
  Rng rng(seed);
  const std::size_t points = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(options.min_points),
      static_cast<std::int64_t>(options.max_points)));
  const CommodityId commodities = static_cast<CommodityId>(rng.uniform_int(
      options.min_commodities, options.max_commodities));

  MetricPtr metric;
  switch (options.metric_family) {
    case MetricFamily::kAny:
      // Historical draw — one bernoulli then the family's own draws, so
      // kAny instances are bit-identical to what older seeds produced.
      if (rng.bernoulli(0.5)) {
        metric = LineMetric::uniform_grid(points, rng.uniform(10.0, 200.0));
      } else {
        std::vector<double> coords;
        coords.reserve(points * 2);
        for (std::size_t p = 0; p < points * 2; ++p)
          coords.push_back(rng.uniform(0.0, 100.0));
        metric = std::make_shared<EuclideanMetric>(2, std::move(coords));
      }
      break;
    case MetricFamily::kLine:
      metric = LineMetric::uniform_grid(points, rng.uniform(10.0, 200.0));
      break;
    case MetricFamily::kEuclidean: {
      std::vector<double> coords;
      coords.reserve(points * 2);
      for (std::size_t p = 0; p < points * 2; ++p)
        coords.push_back(rng.uniform(0.0, 100.0));
      metric = std::make_shared<EuclideanMetric>(2, std::move(coords));
      break;
    }
    case MetricFamily::kGraph: {
      // Random spanning tree (connectivity) plus extra chords: node p
      // attaches to a uniformly earlier node, then ~points/2 random
      // shortcut edges densify the shortest-path structure.
      std::vector<GraphEdge> edges;
      edges.reserve(points + points / 2);
      for (std::size_t p = 1; p < points; ++p)
        edges.push_back({static_cast<PointId>(rng.uniform_index(p)),
                         static_cast<PointId>(p),
                         rng.uniform(1.0, 20.0)});
      for (std::size_t c = 0; c < points / 2; ++c) {
        const auto u = static_cast<PointId>(rng.uniform_index(points));
        const auto v = static_cast<PointId>(rng.uniform_index(points));
        if (u != v) edges.push_back({u, v, rng.uniform(1.0, 40.0)});
      }
      metric = std::make_shared<GraphMetric>(points, edges);
      break;
    }
    case MetricFamily::kMatrix: {
      // A materialized Euclidean point set: explicit matrix storage,
      // guaranteed to satisfy the triangle inequality.
      std::vector<double> coords;
      coords.reserve(points * 2);
      for (std::size_t p = 0; p < points * 2; ++p)
        coords.push_back(rng.uniform(0.0, 100.0));
      const EuclideanMetric plane(2, std::move(coords));
      std::vector<std::vector<double>> matrix(
          points, std::vector<double>(points, 0.0));
      for (std::size_t a = 0; a < points; ++a)
        for (std::size_t b = 0; b < points; ++b)
          matrix[a][b] = plane.distance(static_cast<PointId>(a),
                                        static_cast<PointId>(b));
      metric = std::make_shared<MatrixMetric>(std::move(matrix));
      break;
    }
  }

  CostModelPtr cost;
  std::vector<double> weights;
  const bool force_linear = options.linear_cost_only ||
                            options.cost_family == CostFamily::kLinear;
  const bool draw_linear =
      options.cost_family == CostFamily::kPolynomial
          ? false
          : (force_linear || rng.bernoulli(0.5));
  if (draw_linear) {
    weights.reserve(commodities);
    for (CommodityId e = 0; e < commodities; ++e)
      weights.push_back(rng.uniform(0.5, 3.0));
    cost = std::make_shared<LinearCostModel>(weights);
  } else {
    cost = std::make_shared<PolynomialCostModel>(
        commodities, rng.uniform(0.0, 2.0), rng.uniform(0.5, 4.0));
  }

  const std::size_t num_requests = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(options.min_requests),
      static_cast<std::int64_t>(options.max_requests)));
  std::vector<Request> requests;
  requests.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(points));
    const CommodityId size = static_cast<CommodityId>(rng.uniform_int(
        1, std::min<CommodityId>(3, commodities)));
    r.commodities = CommoditySet(commodities);
    for (const std::size_t e :
         rng.sample_without_replacement(commodities, size))
      r.commodities.add(static_cast<CommodityId>(e));
    requests.push_back(std::move(r));
  }

  GeneratedInstance out{Instance(std::move(metric), std::move(cost),
                                 std::move(requests), "metamorphic"),
                        std::move(weights)};
  out.instance.validate();
  return out;
}

/// Relabel commodity e as perm[e] everywhere: requests carry remapped
/// demand sets, and the linear weights move with their commodities
/// (new_weights[perm[e]] = weights[e]). The instances are isomorphic, so
/// any algorithm treating commodities symmetrically must pay the same.
inline Instance permute_commodities(const Instance& instance,
                                    const std::vector<double>& weights,
                                    const std::vector<CommodityId>& perm) {
  const CommodityId s = instance.num_commodities();
  std::vector<double> permuted_weights(s, 0.0);
  for (CommodityId e = 0; e < s; ++e)
    permuted_weights[perm[e]] = weights[e];
  std::vector<Request> requests;
  requests.reserve(instance.num_requests());
  for (const Request& r : instance.requests()) {
    Request mapped;
    mapped.location = r.location;
    mapped.commodities = CommoditySet(s);
    r.commodities.for_each(
        [&](CommodityId e) { mapped.commodities.add(perm[e]); });
    requests.push_back(std::move(mapped));
  }
  return Instance(instance.metric_ptr(),
                  std::make_shared<LinearCostModel>(
                      std::move(permuted_weights)),
                  std::move(requests), instance.name() + "-permuted");
}

}  // namespace omflp::metamorphic
