// Random-instance generator for the metamorphic test harness
// (tests/test_metamorphic.cpp).
//
// Metamorphic testing checks *relations between runs* instead of oracle
// outputs: generate a random instance, apply a transformation with a
// known effect (scale the geometry, permute the commodity labels, drop a
// request that should not have mattered), and assert the algorithms'
// costs move exactly as the theory says. The generator draws small
// instances across two metric families (line, 2-D Euclidean) and two
// cost families (polynomial class-C, per-commodity linear), so the
// invariants are exercised over genuinely different shapes — everything
// is a deterministic function of the seed.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cost/cost_models.hpp"
#include "instance/instance.hpp"
#include "metric/euclidean_metric.hpp"
#include "metric/line_metric.hpp"
#include "support/rng.hpp"

namespace omflp::metamorphic {

struct GeneratorOptions {
  std::size_t min_points = 12;
  std::size_t max_points = 24;
  CommodityId min_commodities = 3;
  CommodityId max_commodities = 6;
  std::size_t min_requests = 24;
  std::size_t max_requests = 48;
  /// Force the per-commodity LinearCostModel (the permutation invariant
  /// needs a cost that actually depends on commodity identity).
  bool linear_cost_only = false;
};

struct GeneratedInstance {
  Instance instance;
  /// Per-commodity weights when the linear cost model was drawn; empty
  /// for the (label-blind) polynomial model.
  std::vector<double> linear_weights;
};

inline GeneratedInstance random_instance(std::uint64_t seed,
                                         const GeneratorOptions& options =
                                             {}) {
  Rng rng(seed);
  const std::size_t points = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(options.min_points),
      static_cast<std::int64_t>(options.max_points)));
  const CommodityId commodities = static_cast<CommodityId>(rng.uniform_int(
      options.min_commodities, options.max_commodities));

  MetricPtr metric;
  if (rng.bernoulli(0.5)) {
    metric = LineMetric::uniform_grid(points, rng.uniform(10.0, 200.0));
  } else {
    std::vector<double> coords;
    coords.reserve(points * 2);
    for (std::size_t p = 0; p < points * 2; ++p)
      coords.push_back(rng.uniform(0.0, 100.0));
    metric = std::make_shared<EuclideanMetric>(2, std::move(coords));
  }

  CostModelPtr cost;
  std::vector<double> weights;
  if (options.linear_cost_only || rng.bernoulli(0.5)) {
    weights.reserve(commodities);
    for (CommodityId e = 0; e < commodities; ++e)
      weights.push_back(rng.uniform(0.5, 3.0));
    cost = std::make_shared<LinearCostModel>(weights);
  } else {
    cost = std::make_shared<PolynomialCostModel>(
        commodities, rng.uniform(0.0, 2.0), rng.uniform(0.5, 4.0));
  }

  const std::size_t num_requests = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(options.min_requests),
      static_cast<std::int64_t>(options.max_requests)));
  std::vector<Request> requests;
  requests.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(points));
    const CommodityId size = static_cast<CommodityId>(rng.uniform_int(
        1, std::min<CommodityId>(3, commodities)));
    r.commodities = CommoditySet(commodities);
    for (const std::size_t e :
         rng.sample_without_replacement(commodities, size))
      r.commodities.add(static_cast<CommodityId>(e));
    requests.push_back(std::move(r));
  }

  GeneratedInstance out{Instance(std::move(metric), std::move(cost),
                                 std::move(requests), "metamorphic"),
                        std::move(weights)};
  out.instance.validate();
  return out;
}

/// Relabel commodity e as perm[e] everywhere: requests carry remapped
/// demand sets, and the linear weights move with their commodities
/// (new_weights[perm[e]] = weights[e]). The instances are isomorphic, so
/// any algorithm treating commodities symmetrically must pay the same.
inline Instance permute_commodities(const Instance& instance,
                                    const std::vector<double>& weights,
                                    const std::vector<CommodityId>& perm) {
  const CommodityId s = instance.num_commodities();
  std::vector<double> permuted_weights(s, 0.0);
  for (CommodityId e = 0; e < s; ++e)
    permuted_weights[perm[e]] = weights[e];
  std::vector<Request> requests;
  requests.reserve(instance.num_requests());
  for (const Request& r : instance.requests()) {
    Request mapped;
    mapped.location = r.location;
    mapped.commodities = CommoditySet(s);
    r.commodities.for_each(
        [&](CommodityId e) { mapped.commodities.add(perm[e]); });
    requests.push_back(std::move(mapped));
  }
  return Instance(instance.metric_ptr(),
                  std::make_shared<LinearCostModel>(
                      std::move(permuted_weights)),
                  std::move(requests), instance.name() + "-permuted");
}

}  // namespace omflp::metamorphic
