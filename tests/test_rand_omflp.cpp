// RAND-OMFLP (Algorithm 2) tests: solution validity on every workload,
// seed determinism, the Lemma 20 cost balance (expected construction ≤
// budget on both the small and large side), completion behaviour, and
// degeneration to Meyerson's algorithm at |S| = 1.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/meyerson_ofl.hpp"
#include "core/rand_omflp.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "metric/line_metric.hpp"
#include "solution/verifier.hpp"
#include "support/stats.hpp"

namespace omflp {
namespace {

Instance uniform_instance(std::uint64_t seed, CommodityId s = 8) {
  Rng rng(seed);
  UniformLineConfig cfg;
  cfg.num_points = 16;
  cfg.num_requests = 60;
  cfg.num_commodities = s;
  cfg.max_demand = std::min<CommodityId>(4, s);
  auto cost = std::make_shared<PolynomialCostModel>(s, 1.0, 2.0);
  return make_uniform_line(cfg, cost, rng);
}

class RandValidity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandValidity, ProducesVerifiedSolutions) {
  const Instance inst = uniform_instance(GetParam());
  RandOmflp rand{RandOptions{.seed = GetParam() ^ 0x5555}};
  const SolutionLedger ledger = run_online(rand, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  EXPECT_GT(ledger.total_cost(), 0.0);
}

TEST_P(RandValidity, DeterministicGivenSeed) {
  const Instance inst = uniform_instance(GetParam());
  RandOmflp a{RandOptions{.seed = 77}};
  RandOmflp b{RandOptions{.seed = 77}};
  const SolutionLedger la = run_online(a, inst);
  const SolutionLedger lb = run_online(b, inst);
  EXPECT_DOUBLE_EQ(la.total_cost(), lb.total_cost());
  EXPECT_EQ(la.num_facilities(), lb.num_facilities());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandValidity,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(RandOmflp, DifferentSeedsGenerallyDiffer) {
  const Instance inst = uniform_instance(3);
  RandOmflp a{RandOptions{.seed = 1}};
  RandOmflp b{RandOptions{.seed = 2}};
  const double ca = run_online(a, inst).total_cost();
  const double cb = run_online(b, inst).total_cost();
  // Not a hard guarantee, but with 60 requests the runs should diverge.
  EXPECT_NE(ca, cb);
}

TEST(RandOmflp, Lemma20BalanceExpectedBuildAtMostBudget) {
  // Per request, the expected construction cost charged by the coins is
  // ≤ budget on each side (small and large) — the capped-telescoping
  // property the analysis needs. This is exact accounting, not sampling.
  const Instance inst = uniform_instance(11, /*s=*/6);
  RandOmflp rand{RandOptions{.seed = 5, .record_accounting = true}};
  (void)run_online(rand, inst);
  ASSERT_EQ(rand.accounting().size(), inst.num_requests());
  for (const RandAccounting& a : rand.accounting()) {
    EXPECT_LE(a.expected_small, a.budget + 1e-9);
    EXPECT_LE(a.expected_large, a.budget + 1e-9);
    EXPECT_LE(a.budget, a.x_total + 1e-9);
    EXPECT_LE(a.budget, a.z_total + 1e-9);
  }
}

TEST(RandOmflp, FirstRequestAlwaysCoveredViaCompletionOrCoins) {
  // Even if every coin loses, the completion rule must cover the first
  // request. Run many seeds; every run must be feasible.
  const Instance inst = uniform_instance(123);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    RandOmflp rand{RandOptions{.seed = seed}};
    const SolutionLedger ledger = run_online(rand, inst);
    EXPECT_FALSE(verify_solution(inst, ledger).has_value()) << seed;
  }
}

TEST(RandOmflp, UsesLargeFacilitiesWhenBundlingWins) {
  // Theorem-2-style workload with many shared commodities: over seeds,
  // RAND should open at least one large facility in a decent fraction of
  // runs (the z-side coins fire once singleton investments accumulate).
  Rng rng(9);
  SinglePointMixedConfig cfg;
  cfg.num_requests = 40;
  cfg.num_commodities = 16;
  cfg.min_demand = 8;
  cfg.max_demand = 16;
  auto cost = std::make_shared<PolynomialCostModel>(16, 1.0);
  const Instance inst = make_single_point_mixed(cfg, cost, rng);
  int runs_with_large = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RandOmflp rand{RandOptions{.seed = seed}};
    const SolutionLedger ledger = run_online(rand, inst);
    if (ledger.num_large_facilities() > 0) ++runs_with_large;
  }
  EXPECT_GT(runs_with_large, 10);
}

TEST(RandOmflp, SingleCommodityBehavesLikeMeyerson) {
  // At |S| = 1 the large side is disabled and the algorithm is Meyerson's.
  // The two independent implementations won't make identical draws, but
  // their mean costs over seeds must be statistically indistinguishable.
  const Instance inst = uniform_instance(31, /*s=*/1);
  RunningStats rand_costs, meyerson_costs;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    RandOmflp rand{RandOptions{.seed = seed}};
    MeyersonOfl meyerson(seed);
    rand_costs.add(run_online(rand, inst).total_cost());
    meyerson_costs.add(run_online(meyerson, inst).total_cost());
  }
  const double pooled_sem =
      std::sqrt(rand_costs.sem() * rand_costs.sem() +
                meyerson_costs.sem() * meyerson_costs.sem());
  EXPECT_NEAR(rand_costs.mean(), meyerson_costs.mean(),
              5.0 * pooled_sem + 1e-9);
}

TEST(RandOmflp, WorksOnTheorem2Instance) {
  Rng rng(17);
  Theorem2Config cfg;
  cfg.num_commodities = 256;
  const Instance inst = make_theorem2_instance(cfg, rng);
  RunningStats cost_stats;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RandOmflp rand{RandOptions{.seed = seed}};
    const SolutionLedger ledger = run_online(rand, inst);
    EXPECT_FALSE(verify_solution(inst, ledger).has_value());
    cost_stats.add(ledger.total_cost());
  }
  // OPT = 1; no algorithm can beat Ω(√|S|) = 1 here (√256/16 = 1), and
  // RAND should stay well below the trivial |S'| = 16 singleton cost...
  // in fact its budget-driven coins pay ≈ O(√|S|) like PD.
  EXPECT_GE(cost_stats.mean(), 1.0);
  EXPECT_LE(cost_stats.mean(), 3.0 * 16.0);
}

TEST(RandOmflp, AccountingRealizedCostsMatchLedger) {
  const Instance inst = uniform_instance(41, 6);
  RandOmflp rand{RandOptions{.seed = 3, .record_accounting = true}};
  const SolutionLedger ledger = run_online(rand, inst);
  double open_sum = 0.0;
  for (const RandAccounting& a : rand.accounting())
    open_sum += a.realized_open;
  EXPECT_NEAR(open_sum, ledger.opening_cost(), 1e-7);
}

}  // namespace
}  // namespace omflp
