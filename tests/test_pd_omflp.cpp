// PD-OMFLP (Algorithm 1) tests: hand-derived event traces on small
// scenarios, the Theorem-2 game behaviour, equivalence of the reference
// and incremental bid accumulators, equivalence with Fotakis' OFL at
// |S| = 1, Corollary 8's primal-dual accounting, and the prediction
// ablation.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/fotakis_ofl.hpp"
#include "core/pd_omflp.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "metric/line_metric.hpp"
#include "solution/verifier.hpp"

namespace omflp {
namespace {

Instance random_line_instance(std::uint64_t seed, std::size_t points,
                              std::size_t requests, CommodityId s,
                              CommodityId max_demand) {
  Rng rng(seed);
  std::vector<double> positions;
  positions.reserve(points);
  for (std::size_t i = 0; i < points; ++i)
    positions.push_back(rng.uniform(0.0, 37.3));
  auto metric = std::make_shared<LineMetric>(std::move(positions));
  auto cost = std::make_shared<PolynomialCostModel>(s, 1.0, 1.37);
  std::vector<Request> reqs;
  reqs.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(points));
    const CommodityId size =
        static_cast<CommodityId>(1 + rng.uniform_index(max_demand));
    r.commodities = sample_demand_set(s, size, 0.0, rng);
    reqs.push_back(std::move(r));
  }
  return Instance(std::move(metric), std::move(cost), std::move(reqs),
                  "random-line");
}

// ------------------------------------------------- hand-derived traces ---

TEST(PdOmflp, SingleRequestPrefersLargeWhenBundlingIsCheap) {
  // One request demanding both commodities of S = {0,1} at a single point
  // with g(k) = sqrt(k). Raising both duals at rate 1, constraint (4)
  // becomes tight at Δ = sqrt(2)/2 < 1 = the constraint-(3) time, so the
  // algorithm opens one large facility for sqrt(2) instead of two
  // singletons for 2.
  auto metric = std::make_shared<SinglePointMetric>();
  auto cost = std::make_shared<PolynomialCostModel>(2, 1.0);
  Instance inst(metric, cost, {Request{0, CommoditySet::full_set(2)}});

  PdOmflp pd;
  const SolutionLedger ledger = run_online(pd, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  EXPECT_EQ(ledger.num_facilities(), 1u);
  EXPECT_EQ(ledger.num_large_facilities(), 1u);
  EXPECT_NEAR(ledger.total_cost(), std::sqrt(2.0), 1e-9);
  // Both duals froze at the event time sqrt(2)/2.
  ASSERT_EQ(pd.dual_records().size(), 1u);
  EXPECT_NEAR(pd.dual_records()[0].duals[0], std::sqrt(2.0) / 2.0, 1e-9);
  EXPECT_NEAR(pd.dual_records()[0].duals[1], std::sqrt(2.0) / 2.0, 1e-9);
}

TEST(PdOmflp, SingleRequestPrefersSingletonsWhenLinear) {
  // Linear costs (x = 2): bundling gives no discount, constraint (3)
  // fires first for each commodity (Δ = 1 each vs Δ4 = 2/2 = 1 — the tie
  // goes to (4) by the pseudocode's line order... with g(k) = k the large
  // facility costs exactly the two singletons, so either outcome costs 2.
  auto metric = std::make_shared<SinglePointMetric>();
  auto cost = std::make_shared<PolynomialCostModel>(2, 2.0);
  Instance inst(metric, cost, {Request{0, CommoditySet::full_set(2)}});
  PdOmflp pd;
  const SolutionLedger ledger = run_online(pd, inst);
  EXPECT_NEAR(ledger.total_cost(), 2.0, 1e-9);
}

TEST(PdOmflp, ConnectsToExistingFacilityWhenCloser) {
  // Points at 0 and 0.5; request 1 at 0 opens a singleton there (cost 1);
  // request 2 at 0.5 connects to it (Δ1 = 0.5 < 1 = opening anew).
  auto metric = std::make_shared<LineMetric>(std::vector<double>{0.0, 0.5});
  auto cost = std::make_shared<PolynomialCostModel>(1, 2.0);
  Instance inst(metric, cost,
                {Request{0, CommoditySet::full_set(1)},
                 Request{1, CommoditySet::full_set(1)}});
  PdOmflp pd{PdOptions{.record_trace = true}};
  const SolutionLedger ledger = run_online(pd, inst);
  EXPECT_EQ(ledger.num_facilities(), 1u);
  EXPECT_NEAR(ledger.total_cost(), 1.5, 1e-9);
  // Trace: request 0 fires (3)-or-(4) at the point, request 1 connects.
  ASSERT_EQ(pd.trace().size(), 2u);
  EXPECT_EQ(pd.trace()[1].request, 1u);
  const int c = pd.trace()[1].constraint;
  EXPECT_TRUE(c == 1 || c == 2) << "got constraint " << c;
}

TEST(PdOmflp, Theorem2GameSmallsThenOneLarge) {
  // |S| = 64, cost ⌈k/8⌉: the proof sketch in §2 predicts exactly this
  // run: 7 singleton facilities (cost 1 each), then at the 8th distinct
  // commodity the accumulated large-side bids make constraint (4) tie
  // with (3) and the algorithm switches to one large facility (cost 8).
  Rng rng(4);
  Theorem2Config cfg;
  cfg.num_commodities = 64;
  const Instance inst = make_theorem2_instance(cfg, rng);
  PdOmflp pd;
  const SolutionLedger ledger = run_online(pd, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  EXPECT_EQ(ledger.num_small_facilities(), 7u);
  EXPECT_EQ(ledger.num_large_facilities(), 1u);
  EXPECT_NEAR(ledger.total_cost(), 7.0 + 8.0, 1e-9);
  // Ratio 15 ≈ 2·√|S|: consistent with both Theorem 2 (≥ √|S|/16) and
  // Theorem 4 (≤ 15·√|S|·H_n).
}

TEST(PdOmflp, PredictionOffNeverOpensLarge) {
  Rng rng(4);
  Theorem2Config cfg;
  cfg.num_commodities = 64;
  const Instance inst = make_theorem2_instance(cfg, rng);
  PdOmflp pd{PdOptions{.prediction = PdOptions::Prediction::kOff}};
  const SolutionLedger ledger = run_online(pd, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  EXPECT_EQ(ledger.num_small_facilities(), 8u);
  EXPECT_EQ(ledger.num_large_facilities(), 0u);
  EXPECT_NEAR(ledger.total_cost(), 8.0, 1e-9);
}

TEST(PdOmflp, FreeRideOnExistingLargeFacility) {
  // After a large facility exists at the request's own point, constraint
  // (2) fires at Δ = 0 and later requests are served free of charge.
  auto metric = std::make_shared<SinglePointMetric>();
  auto cost = std::make_shared<PolynomialCostModel>(4, 0.0);  // constant 1
  std::vector<Request> reqs(5, Request{0, CommoditySet::full_set(4)});
  Instance inst(metric, cost, std::move(reqs));
  PdOmflp pd;
  const SolutionLedger ledger = run_online(pd, inst);
  // x = 0 makes the large facility cost 1 = singleton cost; the first
  // request opens it (constraint 4 at Δ = 1/4), everyone else rides.
  EXPECT_EQ(ledger.num_facilities(), 1u);
  EXPECT_NEAR(ledger.total_cost(), 1.0, 1e-9);
}

// ------------------------------------------------------- equivalences ----

class PdEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PdEquivalence, ReferenceAndIncrementalBidsAgree) {
  const Instance inst =
      random_line_instance(GetParam(), 12, 40, 6, 4);

  PdOmflp reference{PdOptions{.bid_mode = PdOptions::BidMode::kReference}};
  PdOmflp incremental{
      PdOptions{.bid_mode = PdOptions::BidMode::kIncremental}};
  const SolutionLedger lr = run_online(reference, inst);
  const SolutionLedger li = run_online(incremental, inst);

  EXPECT_FALSE(verify_solution(inst, lr).has_value());
  EXPECT_FALSE(verify_solution(inst, li).has_value());
  ASSERT_EQ(lr.num_facilities(), li.num_facilities());
  for (FacilityId f = 0; f < lr.num_facilities(); ++f) {
    EXPECT_EQ(lr.facility(f).location, li.facility(f).location);
    EXPECT_TRUE(lr.facility(f).config == li.facility(f).config);
  }
  EXPECT_NEAR(lr.total_cost(), li.total_cost(), 1e-7);
  ASSERT_EQ(reference.dual_records().size(),
            incremental.dual_records().size());
  for (std::size_t i = 0; i < reference.dual_records().size(); ++i) {
    const auto& a = reference.dual_records()[i].duals;
    const auto& b = incremental.dual_records()[i].duals;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j)
      EXPECT_NEAR(a[j], b[j], 1e-7);
  }
}

TEST_P(PdEquivalence, SingleCommodityMatchesFotakisOfl) {
  const Instance inst = random_line_instance(GetParam() ^ 0xabcdef, 10, 50,
                                             /*s=*/1, /*max_demand=*/1);
  PdOmflp pd;
  FotakisOfl fotakis;
  const SolutionLedger lp = run_online(pd, inst);
  const SolutionLedger lf = run_online(fotakis, inst);
  EXPECT_FALSE(verify_solution(inst, lp).has_value());
  EXPECT_FALSE(verify_solution(inst, lf).has_value());
  ASSERT_EQ(lp.num_facilities(), lf.num_facilities());
  for (FacilityId f = 0; f < lp.num_facilities(); ++f)
    EXPECT_EQ(lp.facility(f).location, lf.facility(f).location);
  EXPECT_NEAR(lp.total_cost(), lf.total_cost(), 1e-7);
  EXPECT_NEAR(pd.total_dual(), fotakis.total_dual(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------- dual-side invariants --

class PdInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PdInvariants, Corollary8CostBoundedByThreeTimesDuals) {
  const Instance inst = random_line_instance(GetParam() * 7 + 1, 10, 50, 5, 3);
  PdOmflp pd;
  const SolutionLedger ledger = run_online(pd, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  EXPECT_LE(ledger.total_cost(), 3.0 * pd.total_dual() + 1e-7);
  EXPECT_GT(pd.total_dual(), 0.0);
}

TEST_P(PdInvariants, DualsAreNonNegativeAndPerRequest) {
  const Instance inst = random_line_instance(GetParam() * 13 + 2, 8, 30, 4, 4);
  PdOmflp pd;
  (void)run_online(pd, inst);
  ASSERT_EQ(pd.dual_records().size(), inst.num_requests());
  for (std::size_t i = 0; i < pd.dual_records().size(); ++i) {
    const auto& rec = pd.dual_records()[i];
    EXPECT_EQ(rec.commodities.size(),
              inst.request(i).commodities.count());
    for (double a : rec.duals) EXPECT_GE(a, 0.0);
  }
}

TEST_P(PdInvariants, SeenUnionVariantProducesValidSolutions) {
  const Instance inst = random_line_instance(GetParam() * 17 + 3, 10, 40, 6, 3);
  PdOmflp pd{
      PdOptions{.large_config = PdOptions::LargeConfig::kSeenUnion}};
  const SolutionLedger ledger = run_online(pd, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  // Seen-union large facilities are never larger than S and never smaller
  // than a request's demand at open time.
  for (const auto& f : ledger.facilities())
    EXPECT_LE(f.config.count(), inst.num_commodities());
}

TEST_P(PdInvariants, SeenUnionNeverCostsMoreOpeningThanFullS) {
  // Not a theorem — but per-instance the seen-union variant's large
  // facilities are subsets of S, so each individual large opening is at
  // most as expensive (monotone costs). Check the bookkeeping holds.
  const Instance inst = random_line_instance(GetParam() * 29 + 5, 8, 30, 5, 3);
  PdOmflp seen{
      PdOptions{.large_config = PdOptions::LargeConfig::kSeenUnion}};
  const SolutionLedger ledger = run_online(seen, inst);
  for (const auto& f : ledger.facilities()) {
    if (f.config.count() > 1) {
      EXPECT_LE(f.open_cost, inst.cost().full_cost(f.location) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------------------------ auditing ---

class PdAudit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PdAudit, InternalStateConsistentAfterEveryRun) {
  // audit_state() recomputes the maintained nearest-facility distances
  // and the incremental bid sums from first principles, and checks the
  // constraint (3)/(4) invariants Σ bids ≤ f at every point — across all
  // option combinations.
  const Instance inst = random_line_instance(GetParam() * 53 + 9, 10, 40,
                                             5, 3);
  const PdOptions configs[] = {
      PdOptions{},
      PdOptions{.bid_mode = PdOptions::BidMode::kReference},
      PdOptions{.prediction = PdOptions::Prediction::kOff},
      PdOptions{.large_config = PdOptions::LargeConfig::kSeenUnion},
  };
  for (const PdOptions& options : configs) {
    PdOmflp pd{options};
    (void)run_online(pd, inst);
    const auto issue = pd.audit_state();
    EXPECT_FALSE(issue.has_value())
        << pd.name() << ": " << (issue ? *issue : "");
  }
}

TEST_P(PdAudit, AuditAlsoCleanMidSequence) {
  const Instance inst = random_line_instance(GetParam() * 71 + 4, 8, 24,
                                             4, 3);
  PdOmflp pd;
  SolutionLedger ledger(inst.metric_ptr(), inst.cost_ptr());
  pd.reset(ProblemContext{inst.metric_ptr(), inst.cost_ptr()});
  for (const Request& r : inst.requests()) {
    ledger.begin_request(r);
    pd.serve(r, ledger);
    ledger.finish_request();
    const auto issue = pd.audit_state();
    ASSERT_FALSE(issue.has_value()) << (issue ? *issue : "");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdAudit, ::testing::Values(1, 2, 3, 4));

// --------------------------------------------------------- regression ----

TEST(PdOmflp, ServeBeforeResetThrows) {
  PdOmflp pd;
  auto metric = std::make_shared<SinglePointMetric>();
  auto cost = std::make_shared<PolynomialCostModel>(2, 1.0);
  SolutionLedger ledger(metric, cost);
  ledger.begin_request(Request{0, CommoditySet::full_set(2)});
  EXPECT_THROW(pd.serve(Request{0, CommoditySet::full_set(2)}, ledger),
               std::logic_error);
}

TEST(PdOmflp, NameReflectsOptions) {
  EXPECT_EQ(PdOmflp{}.name(), "PD-OMFLP");
  EXPECT_NE(PdOmflp{PdOptions{.bid_mode = PdOptions::BidMode::kReference}}
                .name()
                .find("reference"),
            std::string::npos);
  EXPECT_NE(PdOmflp{PdOptions{.prediction = PdOptions::Prediction::kOff}}
                .name()
                .find("no-prediction"),
            std::string::npos);
}

TEST(PdOmflp, ResetClearsState) {
  const Instance a = random_line_instance(1, 8, 20, 4, 3);
  const Instance b = random_line_instance(1, 8, 20, 4, 3);
  PdOmflp pd;
  const SolutionLedger first = run_online(pd, a);
  const SolutionLedger second = run_online(pd, b);  // run_online resets
  EXPECT_NEAR(first.total_cost(), second.total_cost(), 1e-9);
}

}  // namespace
}  // namespace omflp
