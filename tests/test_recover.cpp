// Fault-tolerance tests: the OMFLP-CKPT v1 container, per-algorithm
// session checkpoint/restore (crash → restore → drain must be bitwise
// identical to an uninterrupted run, for every roster algorithm), the
// checkpoint store's generation fallback, deterministic fault injection,
// and engine-level crash recovery including tenant migration.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/stream_runner.hpp"
#include "engine/sharded_engine.hpp"
#include "instance/checkpoint_io.hpp"
#include "recover/checkpoint_store.hpp"
#include "recover/fault_plan.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/registry_util.hpp"
#include "scenario/stream_registry.hpp"
#include "support/atomic_file.hpp"

namespace omflp {
namespace {

// The full roster: every algorithm the registry serves, each of which
// must survive checkpoint/restore bitwise.
const char* const kRoster[] = {"pd",       "pd-nopred", "pd-seenunion",
                               "rand",     "fotakis",   "meyerson",
                               "greedy",   "rentbuy",   "alwaysopen"};

// A stream with churn, leases and enough events to cross several
// batches: the checkpoint lands mid-run with active requests, pending
// expiries and compacted prefixes all in play.
EventStream test_stream(std::uint64_t seed) {
  return default_stream_scenario_registry().make(
      "churn-uniform", seed,
      {{"events", 600}, {"points", 40}, {"commodities", 4}});
}

StreamRunOptions test_options() {
  StreamRunOptions options;
  options.batch_size = 64;
  options.compact = true;
  options.verify = true;
  return options;
}

void expect_results_identical(const StreamRunResult& a,
                              const StreamRunResult& b,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.lease_expiries, b.lease_expiries);
  EXPECT_EQ(a.peak_active, b.peak_active);
  EXPECT_EQ(a.peak_resident_records, b.peak_resident_records);
  EXPECT_FALSE(a.violation.has_value())
      << (a.violation ? a.violation->what : "");
  EXPECT_FALSE(b.violation.has_value());

  EXPECT_EQ(a.ledger.total_cost(), b.ledger.total_cost());
  EXPECT_EQ(a.ledger.opening_cost(), b.ledger.opening_cost());
  EXPECT_EQ(a.ledger.connection_cost(), b.ledger.connection_cost());
  EXPECT_EQ(a.ledger.active_cost(), b.ledger.active_cost());
  EXPECT_EQ(a.ledger.num_requests(), b.ledger.num_requests());
  EXPECT_EQ(a.ledger.num_active_requests(), b.ledger.num_active_requests());
  EXPECT_EQ(a.ledger.first_record_id(), b.ledger.first_record_id());
  ASSERT_EQ(a.ledger.num_facilities(), b.ledger.num_facilities());
  for (std::size_t f = 0; f < a.ledger.num_facilities(); ++f) {
    const OpenFacilityRecord& fa = a.ledger.facilities()[f];
    const OpenFacilityRecord& fb = b.ledger.facilities()[f];
    EXPECT_EQ(fa.location, fb.location);
    EXPECT_EQ(fa.open_cost, fb.open_cost);
    EXPECT_EQ(fa.opened_during, fb.opened_during);
    EXPECT_TRUE(fa.config == fb.config);
  }
  ASSERT_EQ(a.ledger.request_records().size(),
            b.ledger.request_records().size());
  for (std::size_t r = 0; r < a.ledger.request_records().size(); ++r) {
    const RequestRecord& ra = a.ledger.request_records()[r];
    const RequestRecord& rb = b.ledger.request_records()[r];
    EXPECT_EQ(ra.connection_cost, rb.connection_cost);
    EXPECT_EQ(ra.retired_at, rb.retired_at);
    EXPECT_EQ(ra.connected, rb.connected);
  }
}

// ------------------------------------------------------- format basics ---

TEST(CheckpointIo, RoundTripsEveryTokenType) {
  std::ostringstream os;
  {
    CkptWriter w(os);
    w.line("mix")
        .u(0)
        .u(~std::uint64_t{0})
        .d(0.0)
        .d(-0.0)
        .d(1.0 / 3.0)
        .d(std::numeric_limits<double>::infinity())
        .b(true)
        .tok("a-token");
    w.line("raw").bytes(std::string("\x00\xff hi\n", 6));
    CommoditySet s(70);
    s.add(0);
    s.add(69);
    w.line("set").set(s);
    w.finish();
  }
  std::istringstream is(os.str());
  CkptReader r(is);
  r.expect("mix");
  EXPECT_EQ(r.u(), 0u);
  EXPECT_EQ(r.u(), ~std::uint64_t{0});
  EXPECT_EQ(r.d(), 0.0);
  const double neg_zero = r.d();
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.d(), 1.0 / 3.0);
  EXPECT_EQ(r.d(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.tok(), "a-token");
  r.expect("raw");
  EXPECT_EQ(r.bytes(), std::string("\x00\xff hi\n", 6));
  r.expect("set");
  const CommoditySet back = r.set();
  EXPECT_EQ(back.universe_size(), 70u);
  EXPECT_TRUE(back.contains(0));
  EXPECT_TRUE(back.contains(69));
  EXPECT_EQ(back.count(), 2u);
  r.finish();
}

TEST(CheckpointIo, RejectsTamperingTruncationAndBadHeader) {
  std::ostringstream os;
  {
    CkptWriter w(os);
    w.line("payload").u(42).d(3.25);
    w.finish();
  }
  const std::string good = os.str();
  {  // pristine file validates
    std::istringstream is(good);
    EXPECT_TRUE(checkpoint_payload_valid(is));
  }
  {  // bit flip in the payload
    std::string bad = good;
    bad[bad.find("42")] = '9';
    std::istringstream is(bad);
    EXPECT_FALSE(checkpoint_payload_valid(is));
    std::istringstream is2(bad);
    CkptReader r(is2);
    r.expect("payload");
    (void)r.u();
    (void)r.d();
    EXPECT_THROW(r.finish(), std::invalid_argument);
  }
  {  // truncation: drop the checksum line (a torn write)
    const std::string torn = good.substr(0, good.find("checksum"));
    std::istringstream is(torn);
    EXPECT_FALSE(checkpoint_payload_valid(is));
  }
  {  // trailing content after the checksum
    std::istringstream is(good + "extra\n");
    EXPECT_FALSE(checkpoint_payload_valid(is));
  }
  {  // wrong version header
    std::string bad = good;
    bad.replace(0, 12, "OMFLP-CKPT 2");
    std::istringstream is(bad);
    EXPECT_FALSE(checkpoint_payload_valid(is));
    std::istringstream is2(bad);
    EXPECT_THROW(CkptReader r(is2), std::invalid_argument);
  }
}

TEST(CheckpointIo, StrictReaderErrors) {
  std::ostringstream os;
  {
    CkptWriter w(os);
    w.line("key").u(7);
    w.finish();
  }
  {  // wrong key
    std::istringstream is(os.str());
    CkptReader r(is);
    EXPECT_THROW(r.expect("other"), std::invalid_argument);
  }
  {  // trailing token on the line
    std::istringstream is(os.str());
    CkptReader r(is);
    r.expect("key");
    EXPECT_THROW(r.finish(), std::invalid_argument);
  }
  {  // token type mismatch
    std::istringstream is(os.str());
    CkptReader r(is);
    r.expect("key");
    EXPECT_THROW((void)r.d(), std::invalid_argument);
  }
}

// ------------------------------------------------- session round trips ---

// Crash → restore → drain equals an uninterrupted run, bitwise, for
// every roster algorithm. The "crash" is simulated by checkpointing
// mid-run, destroying the session, and restoring into fresh objects.
TEST(SessionRecovery, CrashRestoreDrainIsBitwiseIdenticalForRoster) {
  const AlgorithmRegistry& algorithms = default_algorithm_registry();
  const std::uint64_t seed = 20260808;
  for (const char* algo : kRoster) {
    SCOPED_TRACE(algo);
    const EventStream stream = test_stream(seed);
    const StreamRunOptions options = test_options();

    // Uninterrupted reference.
    auto ref_algorithm =
        algorithms.make(algo, derive_algorithm_seed(seed));
    MaterializedEventSource ref_source(stream);
    StreamSession ref_session(*ref_algorithm, ref_source, options);
    while (ref_session.step_batch() != 0) {
    }
    StreamRunResult reference = ref_session.finish();

    // Interrupted run: advance a few batches, snapshot, drop everything.
    std::string snapshot;
    {
      auto algorithm = algorithms.make(algo, derive_algorithm_seed(seed));
      MaterializedEventSource source(stream);
      StreamSession session(*algorithm, source, options);
      for (int i = 0; i < 3; ++i) (void)session.step_batch();
      std::ostringstream os;
      CkptWriter writer(os);
      session.checkpoint(writer);
      writer.finish();
      snapshot = os.str();
    }

    // Restore into fresh objects and drain.
    auto algorithm = algorithms.make(algo, derive_algorithm_seed(seed));
    MaterializedEventSource source(stream);
    std::istringstream is(snapshot);
    CkptReader reader(is);
    StreamSession session(*algorithm, source, options, reader);
    reader.finish();
    while (session.step_batch() != 0) {
    }
    StreamRunResult restored = session.finish();

    expect_results_identical(restored, reference, "restored vs reference");
  }
}

// serialize → restore → serialize is byte-identical (the canonical-form
// contract the checkpoint store's bitwise cross-checks build on).
TEST(SessionRecovery, CheckpointOfRestoredSessionIsByteIdentical) {
  const AlgorithmRegistry& algorithms = default_algorithm_registry();
  const std::uint64_t seed = 99;
  for (const char* algo : kRoster) {
    SCOPED_TRACE(algo);
    const EventStream stream = test_stream(seed);
    const StreamRunOptions options = test_options();

    auto algorithm = algorithms.make(algo, derive_algorithm_seed(seed));
    MaterializedEventSource source(stream);
    StreamSession session(*algorithm, source, options);
    for (int i = 0; i < 4; ++i) (void)session.step_batch();
    std::ostringstream os;
    CkptWriter writer(os);
    session.checkpoint(writer);
    writer.finish();
    const std::string first = os.str();

    auto algorithm2 = algorithms.make(algo, derive_algorithm_seed(seed));
    MaterializedEventSource source2(stream);
    std::istringstream is(first);
    CkptReader reader(is);
    StreamSession restored(*algorithm2, source2, options, reader);
    reader.finish();
    std::ostringstream os2;
    CkptWriter writer2(os2);
    restored.checkpoint(writer2);
    writer2.finish();
    // run_ns is wall time; it is serialized verbatim, so the bytes still
    // match — the restored session has not stepped since restore.
    EXPECT_EQ(os2.str(), first);
  }
}

// A snapshot taken at one clock restores correctly even under the
// non-default charge policy and with verification off.
TEST(SessionRecovery, PolicyAndVerifyGuardsAreEnforced) {
  const std::uint64_t seed = 3;
  const EventStream stream = test_stream(seed);
  StreamRunOptions options = test_options();
  const AlgorithmRegistry& algorithms = default_algorithm_registry();

  auto algorithm = algorithms.make("greedy", derive_algorithm_seed(seed));
  MaterializedEventSource source(stream);
  StreamSession session(*algorithm, source, options);
  (void)session.step_batch();
  std::ostringstream os;
  CkptWriter writer(os);
  session.checkpoint(writer);
  writer.finish();

  {  // verify flag mismatch
    StreamRunOptions other = options;
    other.verify = false;
    auto a = algorithms.make("greedy", derive_algorithm_seed(seed));
    MaterializedEventSource s(stream);
    std::istringstream is(os.str());
    CkptReader reader(is);
    EXPECT_THROW(StreamSession(*a, s, other, reader),
                 std::invalid_argument);
  }
  {  // different algorithm
    auto a = algorithms.make("rentbuy", derive_algorithm_seed(seed));
    MaterializedEventSource s(stream);
    std::istringstream is(os.str());
    CkptReader reader(is);
    EXPECT_THROW(StreamSession(*a, s, options, reader),
                 std::invalid_argument);
  }
}

// A capacitated session (facility occupancy, shed/spill counters,
// rejected lanes) restores bitwise: occupancy is derived state, rebuilt
// from the resident active records, so the drained run must match an
// uninterrupted one exactly — and the overflow policy is guarded like
// the charge policy and verify flag.
TEST(SessionRecovery, CapacitatedRestoreIsBitwiseAndOverflowIsGuarded) {
  const std::uint64_t seed = 12;
  const EventStream stream = default_stream_scenario_registry().make(
      "hotspot-grid-capped", seed, {{"events", 256}, {"capacity", 2}});
  ASSERT_NE(stream.capacities(), nullptr);
  const AlgorithmRegistry& algorithms = default_algorithm_registry();

  for (const OverflowPolicy overflow :
       {OverflowPolicy::kReassign, OverflowPolicy::kReject}) {
    SCOPED_TRACE(overflow_policy_tag(overflow));
    StreamRunOptions options = test_options();
    options.overflow = overflow;

    auto ref_algorithm = algorithms.make("pd", derive_algorithm_seed(seed));
    MaterializedEventSource ref_source(stream);
    StreamSession ref_session(*ref_algorithm, ref_source, options);
    while (ref_session.step_batch() != 0) {
    }
    StreamRunResult reference = ref_session.finish();

    std::string snapshot;
    {
      auto algorithm = algorithms.make("pd", derive_algorithm_seed(seed));
      MaterializedEventSource source(stream);
      StreamSession session(*algorithm, source, options);
      for (int i = 0; i < 2; ++i) (void)session.step_batch();
      std::ostringstream os;
      CkptWriter writer(os);
      session.checkpoint(writer);
      writer.finish();
      snapshot = os.str();
    }

    auto algorithm = algorithms.make("pd", derive_algorithm_seed(seed));
    MaterializedEventSource source(stream);
    std::istringstream is(snapshot);
    CkptReader reader(is);
    StreamSession session(*algorithm, source, options, reader);
    reader.finish();
    while (session.step_batch() != 0) {
    }
    StreamRunResult restored = session.finish();

    expect_results_identical(restored, reference, "capacitated restore");
    EXPECT_EQ(restored.ledger.num_shed_requests(),
              reference.ledger.num_shed_requests());
    EXPECT_EQ(restored.ledger.num_spilled_assignments(),
              reference.ledger.num_spilled_assignments());
    EXPECT_EQ(restored.ledger.num_rejected_commodities(),
              reference.ledger.num_rejected_commodities());

    {  // overflow policy mismatch is refused, like the other guards
      StreamRunOptions other = options;
      other.overflow = overflow == OverflowPolicy::kReassign
                           ? OverflowPolicy::kReject
                           : OverflowPolicy::kReassign;
      auto a = algorithms.make("pd", derive_algorithm_seed(seed));
      MaterializedEventSource s(stream);
      std::istringstream guard_is(snapshot);
      CkptReader guard_reader(guard_is);
      EXPECT_THROW(StreamSession(*a, s, other, guard_reader),
                   std::invalid_argument);
    }
  }
}

// ------------------------------------------------- checkpoint store ---

/// Fresh scratch directory under the system temp dir, removed on
/// destruction.
struct ScratchDir {
  std::filesystem::path path;
  explicit ScratchDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("omflp-recover-" + tag + "-" +
              std::to_string(::getpid()))) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
};

std::string tiny_payload(std::uint64_t value) {
  std::ostringstream os;
  CkptWriter writer(os);
  writer.line("value").u(value);
  writer.finish();
  return os.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spill(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST(CheckpointStore, FallsBackPastCorruptTornAndUncommittedGenerations) {
  ScratchDir dir("store");
  CheckpointStore store(dir.str());
  EXPECT_FALSE(store.latest_valid().has_value());

  CheckpointManifest g1;
  g1.generation = 1;
  g1.round = 1;
  g1.trace_seq = 10;
  g1.tenants = {"a", "b"};
  store.publish(g1, {tiny_payload(1), tiny_payload(2)});
  CheckpointManifest g2 = g1;
  g2.generation = 2;
  g2.round = 2;
  g2.trace_seq = 20;
  store.publish(g2, {tiny_payload(3), tiny_payload(4)});

  auto latest = store.latest_valid();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->generation, 2u);
  EXPECT_EQ(latest->round, 2u);
  EXPECT_EQ(latest->trace_seq, 20u);
  EXPECT_EQ(latest->tenants, (std::vector<std::string>{"a", "b"}));

  // Tenant files without a manifest are not a generation: the manifest
  // is the commit point.
  spill(store.tenant_path(0, 3), tiny_payload(5));
  spill(store.tenant_path(1, 3), tiny_payload(6));
  latest = store.latest_valid();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->generation, 2u);

  // A flipped byte in one tenant file invalidates the whole generation.
  std::string corrupt = slurp(store.tenant_path(1, 2));
  corrupt[corrupt.size() / 2] ^= 0x01;
  spill(store.tenant_path(1, 2), corrupt);
  latest = store.latest_valid();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->generation, 1u) << "must fall back past the corrupt set";

  // A torn (truncated) file in the older generation too: nothing valid.
  const std::string torn = slurp(store.tenant_path(0, 1));
  spill(store.tenant_path(0, 1), torn.substr(0, torn.size() / 2));
  EXPECT_FALSE(store.latest_valid().has_value());
}

TEST(CheckpointStore, PrunesToTwoGenerations) {
  ScratchDir dir("prune");
  CheckpointStore store(dir.str());
  for (std::uint64_t g = 1; g <= 5; ++g) {
    CheckpointManifest manifest;
    manifest.generation = g;
    manifest.round = g;
    manifest.tenants = {"only"};
    store.publish(manifest, {tiny_payload(g)});
  }
  EXPECT_EQ(store.list_generations(),
            (std::vector<std::uint64_t>{4, 5}));
  EXPECT_FALSE(std::filesystem::exists(store.tenant_path(0, 3)));
  auto latest = store.latest_valid();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->generation, 5u);
}

// ----------------------------------------------------- fault plan ---

TEST(FaultPlanTest, ScheduleIsDeterministicAndSpecIsValidated) {
  const FaultPlan a = FaultPlan::parse("crashes=3,seed=9,gap=8,torn=1");
  const FaultPlan b = FaultPlan::parse("crashes=3,seed=9,gap=8,torn=1");
  EXPECT_EQ(a.crash_rounds(), b.crash_rounds());
  EXPECT_EQ(a.crash_rounds().size(), 3u);
  EXPECT_TRUE(a.torn());
  EXPECT_FALSE(a.bitflip());
  // Gaps are draws from [1, gap]: strictly increasing rounds.
  for (std::size_t i = 1; i < a.crash_rounds().size(); ++i) {
    EXPECT_GT(a.crash_rounds()[i], a.crash_rounds()[i - 1]);
    EXPECT_LE(a.crash_rounds()[i] - a.crash_rounds()[i - 1], 8u);
  }
  const FaultPlan other = FaultPlan::parse("crashes=3,seed=10,gap=8");
  EXPECT_NE(a.crash_rounds(), other.crash_rounds());

  FaultPlan consume = FaultPlan::parse("crashes=1,seed=2,gap=4");
  const std::uint64_t when = consume.crash_rounds()[0];
  EXPECT_FALSE(consume.should_crash(when - 1));
  EXPECT_TRUE(consume.should_crash(when));
  EXPECT_FALSE(consume.should_crash(when)) << "each crash fires once";
  EXPECT_EQ(consume.crashes_remaining(), 0u);

  EXPECT_THROW(FaultPlan::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crashes"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("gap=0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crashes=x"), std::invalid_argument);
}

// ------------------------------------------------- engine recovery ---

std::vector<TenantSpec> engine_tenants(const std::string& algorithm) {
  std::vector<TenantSpec> specs = default_workload_mix_registry().tenants(
      "mixed", 4, 7, 0.25);
  for (TenantSpec& spec : specs) spec.algorithm = algorithm;
  return specs;
}

void expect_engine_results_identical(const EngineResult& a,
                                     const EngineResult& b,
                                     const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].name, b.tenants[i].name);
    expect_results_identical(a.tenants[i].run, b.tenants[i].run,
                             label + "/" + a.tenants[i].name);
  }
  EXPECT_EQ(a.aggregate_gross_cost, b.aggregate_gross_cost);
  EXPECT_EQ(a.aggregate_active_cost, b.aggregate_active_cost);
  EXPECT_EQ(a.total_events, b.total_events);
}

/// Drive an engine through every injected crash to completion, exactly
/// like the CLI restart loop: tear down, rebuild, restore.
EngineResult run_with_restarts(const std::vector<TenantSpec>& specs,
                               const EngineOptions& options,
                               std::uint64_t* restarts_out = nullptr) {
  std::uint64_t restarts = 0;
  for (;;) {
    try {
      const ShardedEngine engine(specs, options);
      EngineResult result = engine.run();
      if (restarts_out != nullptr) *restarts_out = restarts;
      return result;
    } catch (const EngineCrash&) {
      ++restarts;
    }
  }
}

TEST(EngineRecovery, CrashCorruptRestoreIsBitwiseIdenticalAcrossShards) {
  const std::vector<TenantSpec> specs = engine_tenants("pd");

  EngineOptions plain;
  plain.batch_size = 256;
  plain.shards = 1;
  plain.threads = 1;
  const EngineResult reference = ShardedEngine(specs, plain).run();

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    ScratchDir dir("engine-s" + std::to_string(shards));
    EngineOptions faulty = plain;
    faulty.shards = shards;
    faulty.threads = shards;
    faulty.checkpoint_dir = dir.str();
    faulty.checkpoint_every = 2;
    // Torn + bit-flip corruption on every crash: recovery must reject
    // the newest generation and replay from the previous one.
    FaultPlan plan = FaultPlan::parse("crashes=2,seed=5,gap=4,torn=1,bitflip=1");
    faulty.fault_plan = &plan;

    std::uint64_t restarts = 0;
    const EngineResult recovered =
        run_with_restarts(specs, faulty, &restarts);
    EXPECT_EQ(restarts, 2u);
    EXPECT_EQ(recovered.shards, shards);
    expect_engine_results_identical(
        recovered, reference, "shards=" + std::to_string(shards));
    EXPECT_FALSE(recovered.first_violation() != nullptr);
  }
}

TEST(EngineRecovery, MigrationRestoreUnderNewPlacementIsBitwiseIdentical) {
  const std::vector<TenantSpec> specs = engine_tenants("rand");

  EngineOptions plain;
  plain.batch_size = 256;
  plain.shards = 2;
  plain.threads = 2;
  const EngineResult reference = ShardedEngine(specs, plain).run();

  // Phase 1: serve on 2 shards with periodic checkpoints, crash mid-run.
  ScratchDir dir("migrate");
  EngineOptions before = plain;
  before.checkpoint_dir = dir.str();
  before.checkpoint_every = 2;
  FaultPlan plan = FaultPlan::parse("crashes=1,seed=3,gap=3");
  before.fault_plan = &plan;
  EXPECT_THROW(ShardedEngine(specs, before).run(), EngineCrash);

  // Phase 2: "migrate" every tenant — restore the same checkpoint set on
  // 4 shards under a reversed placement and drain. Per-tenant results
  // must be bitwise identical to the never-crashed, never-migrated run.
  EngineOptions after = plain;
  after.checkpoint_dir = dir.str();
  after.checkpoint_every = 2;
  after.shards = 4;
  after.threads = 4;
  after.placement = {3, 2, 1, 0};
  const EngineResult migrated = ShardedEngine(specs, after).run();
  EXPECT_GT(migrated.restored_from_round, 0u);
  ASSERT_EQ(migrated.tenants.size(), 4u);
  EXPECT_EQ(migrated.tenants[0].shard, 3u);
  EXPECT_EQ(migrated.tenants[3].shard, 0u);
  expect_engine_results_identical(migrated, reference, "migrated");
}

TEST(EngineRecovery, RestoreGuardsRosterAndPlacement) {
  const std::vector<TenantSpec> specs = engine_tenants("greedy");
  ScratchDir dir("guards");

  EngineOptions options;
  options.batch_size = 256;
  options.shards = 1;
  options.threads = 1;
  options.checkpoint_dir = dir.str();
  options.checkpoint_every = 2;
  FaultPlan plan = FaultPlan::parse("crashes=1,seed=4,gap=3");
  options.fault_plan = &plan;
  EXPECT_THROW(ShardedEngine(specs, options).run(), EngineCrash);

  // A different tenant roster must not restore from this checkpoint set.
  std::vector<TenantSpec> renamed = specs;
  renamed[1].name = "impostor";
  EngineOptions restore = options;
  restore.fault_plan = nullptr;
  EXPECT_THROW(ShardedEngine(renamed, restore).run(),
               std::invalid_argument);

  // Placement validation is independent of recovery.
  EngineOptions bad_placement = restore;
  bad_placement.placement = {0, 0, 0};  // wrong size
  EXPECT_THROW(ShardedEngine(specs, bad_placement).run(),
               std::invalid_argument);
  bad_placement.placement = {0, 0, 0, 9};  // shard out of range
  EXPECT_THROW(ShardedEngine(specs, bad_placement).run(),
               std::invalid_argument);
}

}  // namespace
}  // namespace omflp
