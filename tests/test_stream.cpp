// Dynamic-stream subsystem tests: event-stream validation, the stream
// scenario families, ledger active-interval accounting, deletion
// policies (PD/Fotakis bid rollback vs frozen), offline and incremental
// verifier agreement, trace round-trips through stream IO, bounded-memory
// compaction, and bitwise determinism across thread counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "baseline/greedy.hpp"
#include "baseline/per_commodity.hpp"
#include "core/pd_omflp.hpp"
#include "core/rand_omflp.hpp"
#include "core/stream_runner.hpp"
#include "cost/cost_models.hpp"
#include "instance/event_stream.hpp"
#include "instance/stream_io.hpp"
#include "kernel/kernels.hpp"
#include "metric/line_metric.hpp"
#include "scenario/stream_registry.hpp"
#include "solution/verifier.hpp"

namespace omflp {
namespace {

/// Restores the kernel parallel threshold on scope exit.
class ThresholdGuard {
 public:
  explicit ThresholdGuard(std::size_t threshold)
      : saved_(kernel::parallel_threshold()) {
    kernel::set_parallel_threshold(threshold);
  }
  ~ThresholdGuard() { kernel::set_parallel_threshold(saved_); }

 private:
  std::size_t saved_;
};

Request make_request(CommodityId universe, PointId location,
                     std::initializer_list<CommodityId> demand) {
  Request r;
  r.location = location;
  r.commodities = CommoditySet(universe, demand);
  return r;
}

/// A small two-commodity line world shared by the handcrafted tests.
struct SmallWorld {
  MetricPtr metric = LineMetric::uniform_grid(8, 7.0);  // points 0..7
  CostModelPtr cost = std::make_shared<PolynomialCostModel>(2, 1.0, 3.0);
};

// ------------------------------------------------------------ validation ---

TEST(EventStream, ValidateAcceptsWellFormedTimelines) {
  SmallWorld w;
  std::vector<StreamEvent> events;
  events.push_back(StreamEvent::arrival(make_request(2, 1, {0}), 3));
  events.push_back(StreamEvent::arrival(make_request(2, 5, {0, 1})));
  events.push_back(StreamEvent::departure(1));
  events.push_back(StreamEvent::arrival(make_request(2, 2, {1})));
  const EventStream stream(w.metric, w.cost, events, "ok");
  EXPECT_NO_THROW(stream.validate());
  EXPECT_EQ(stream.num_events(), 4u);
  EXPECT_EQ(stream.num_arrivals(), 3u);
}

TEST(EventStream, ValidateRejectsMalformedEvents) {
  SmallWorld w;
  {
    // Departure of an arrival that never happened.
    const EventStream stream(
        w.metric, w.cost,
        {StreamEvent::arrival(make_request(2, 0, {0})),
         StreamEvent::departure(1)},
        "bad");
    EXPECT_THROW(stream.validate(), std::invalid_argument);
  }
  {
    // Double departure.
    const EventStream stream(w.metric, w.cost,
                             {StreamEvent::arrival(make_request(2, 0, {0})),
                              StreamEvent::departure(0),
                              StreamEvent::departure(0)},
                             "bad");
    EXPECT_THROW(stream.validate(), std::invalid_argument);
  }
  {
    // Departure after the lease already expired (lease 1 fires before
    // event 2).
    const EventStream stream(
        w.metric, w.cost,
        {StreamEvent::arrival(make_request(2, 0, {0}), /*lease=*/1),
         StreamEvent::arrival(make_request(2, 1, {1})),
         StreamEvent::departure(0)},
        "bad");
    EXPECT_THROW(stream.validate(), std::invalid_argument);
  }
  {
    // Location outside the metric.
    const EventStream stream(
        w.metric, w.cost, {StreamEvent::arrival(make_request(2, 99, {0}))},
        "bad");
    EXPECT_THROW(stream.validate(), std::invalid_argument);
  }
}

TEST(EventStream, HugeLeasesSaturateInsteadOfWrapping) {
  // Regression: the deadline t + lease wrapped around uint64, so a lease
  // of 2^64−1 granted at event 1 "expired" at deadline 0 — before its
  // own arrival — in all three timeline implementations at once (which
  // is why the verifier could not catch it).
  SmallWorld w;
  const std::uint64_t huge = ~std::uint64_t{0};
  const EventStream stream(
      w.metric, w.cost,
      {StreamEvent::arrival(make_request(2, 0, {0})),
       StreamEvent::arrival(make_request(2, 1, {1}), huge),
       StreamEvent::arrival(make_request(2, 2, {0}))},
      "huge-lease");
  EXPECT_NO_THROW(stream.validate());
  EXPECT_EQ(stream.surviving_arrivals(),
            (std::vector<RequestId>{0, 1, 2}));

  AlwaysOpen algorithm;
  StreamRunOptions options;
  options.verify = true;
  const StreamRunResult result = run_stream(algorithm, stream, options);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_EQ(result.lease_expiries, 0u);
  EXPECT_EQ(result.ledger.num_active_requests(), 3u);
  EXPECT_FALSE(verify_stream(stream, result.ledger).has_value());
}

TEST(EventStream, SurvivingSetRespectsLeasesAndDepartures) {
  SmallWorld w;
  std::vector<StreamEvent> events;
  events.push_back(StreamEvent::arrival(make_request(2, 0, {0}), 2));  // 0
  events.push_back(StreamEvent::arrival(make_request(2, 1, {1})));     // 1
  events.push_back(StreamEvent::arrival(make_request(2, 2, {0})));     // 2
  events.push_back(StreamEvent::departure(2));
  events.push_back(StreamEvent::arrival(make_request(2, 3, {1}), 50));  // 3
  const EventStream stream(w.metric, w.cost, events, "surv");
  stream.validate();
  // Arrival 0's lease expires before event 2; arrival 2 departs
  // explicitly; arrival 3's lease outlives the stream.
  EXPECT_EQ(stream.surviving_arrivals(),
            (std::vector<RequestId>{1, 3}));
  const Instance surviving = stream.surviving_instance();
  ASSERT_EQ(surviving.num_requests(), 2u);
  EXPECT_EQ(surviving.request(0).location, 1u);
  EXPECT_EQ(surviving.request(1).location, 3u);
}

// ------------------------------------------------------------ accounting ---

TEST(StreamRunner, ActiveIntervalAccountingByHand) {
  SmallWorld w;
  std::vector<StreamEvent> events;
  events.push_back(StreamEvent::arrival(make_request(2, 0, {0})));  // id 0
  events.push_back(StreamEvent::arrival(make_request(2, 7, {0})));  // id 1
  events.push_back(StreamEvent::departure(0));
  const EventStream stream(w.metric, w.cost, events, "hand");
  stream.validate();

  // AlwaysOpen opens at the request location: zero connection cost,
  // opening 3.0 per singleton facility (scale 3, |σ|=1, exponent 1).
  AlwaysOpen algorithm;
  StreamRunOptions options;
  options.verify = true;
  options.compact = false;  // the test inspects retired records below
  const StreamRunResult result = run_stream(algorithm, stream, options);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_EQ(result.arrivals, 2u);
  EXPECT_EQ(result.departures, 1u);
  const SolutionLedger& ledger = result.ledger;
  EXPECT_DOUBLE_EQ(ledger.opening_cost(), 6.0);
  EXPECT_DOUBLE_EQ(ledger.connection_cost(), 0.0);
  // Openings are sunk: the departed request removes no opening cost.
  EXPECT_DOUBLE_EQ(ledger.active_cost(), 6.0);
  EXPECT_EQ(ledger.num_active_requests(), 1u);
  EXPECT_EQ(ledger.num_retired_requests(), 1u);
  EXPECT_EQ(ledger.request_record(0).retired_at, 2u);
  EXPECT_TRUE(ledger.request_record(1).active());

  EXPECT_FALSE(verify_stream(stream, ledger).has_value());
}

TEST(StreamRunner, ConnectionCostLeavesActiveTallyOnDeparture) {
  SmallWorld w;
  // NearestOrOpen: first request opens {0} at point 0; the second (same
  // commodity, distance 1 away, opening cost 3 > 1) connects instead.
  std::vector<StreamEvent> events;
  events.push_back(StreamEvent::arrival(make_request(2, 0, {0})));  // id 0
  events.push_back(StreamEvent::arrival(make_request(2, 1, {0})));  // id 1
  events.push_back(StreamEvent::departure(1));
  const EventStream stream(w.metric, w.cost, events, "conn");
  stream.validate();

  NearestOrOpen algorithm;
  StreamRunOptions options;
  options.verify = true;
  const StreamRunResult result = run_stream(algorithm, stream, options);
  EXPECT_FALSE(result.violation.has_value());
  const SolutionLedger& ledger = result.ledger;
  EXPECT_DOUBLE_EQ(ledger.opening_cost(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.connection_cost(), 1.0);   // gross keeps it
  EXPECT_DOUBLE_EQ(ledger.active_connection_cost(), 0.0);  // retired
  EXPECT_DOUBLE_EQ(ledger.active_cost(), 3.0);
  EXPECT_FALSE(verify_stream(stream, ledger).has_value());
}

TEST(StreamVerifier, CatchesActiveIntervalTampering) {
  SmallWorld w;
  std::vector<StreamEvent> events;
  events.push_back(StreamEvent::arrival(make_request(2, 0, {0})));
  events.push_back(StreamEvent::arrival(make_request(2, 1, {0})));
  events.push_back(StreamEvent::departure(0));
  const EventStream stream(w.metric, w.cost, events, "tamper");
  stream.validate();

  // Drive a ledger by hand but retire the *wrong* request: the offline
  // stream verifier must flag the active-interval mismatch.
  SolutionLedger ledger(w.metric, w.cost);
  AlwaysOpen algorithm;
  algorithm.reset(ProblemContext{w.metric, w.cost});
  for (int i = 0; i < 2; ++i) {
    const Request& r = events[static_cast<std::size_t>(i)].request;
    ledger.begin_request(r);
    algorithm.serve(r, ledger);
    ledger.finish_request();
  }
  ledger.retire_request(1, 2);  // the stream departs id 0, not id 1
  const auto violation = verify_stream(stream, ledger);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->what.find("active interval"), std::string::npos);
}

TEST(StreamVerifier, RejectsHandTamperedOverCapacityLedger) {
  SmallWorld w;
  std::vector<StreamEvent> events;
  events.push_back(StreamEvent::arrival(make_request(2, 0, {0})));
  events.push_back(StreamEvent::arrival(make_request(2, 0, {0})));
  EventStream stream(w.metric, w.cost, events, "over-cap");
  stream.set_capacities(
      std::make_shared<const std::vector<std::uint64_t>>(8, 1));
  stream.validate();

  // An uncapacitated ledger happily stacks both active requests onto the
  // same facility; the capacitated stream says one slot per facility at
  // point 0 — the offline verifier must flag the over-subscription.
  SolutionLedger ledger(w.metric, w.cost);
  NearestOrOpen algorithm;
  algorithm.reset(ProblemContext{w.metric, w.cost});
  for (const StreamEvent& event : events) {
    ledger.begin_request(event.request);
    algorithm.serve(event.request, ledger);
    ledger.finish_request();
  }
  ASSERT_EQ(ledger.num_facilities(), 1u);  // second arrival reused it
  const auto violation = verify_stream(stream, ledger);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->what.find("capacity"), std::string::npos)
      << violation->what;
}

// ------------------------------------------------------ deletion policies ---

TEST(PdDeletion, RollbackKeepsBidModesIdenticalAndAuditClean) {
  const EventStream stream = default_stream_scenario_registry().make(
      "churn-uniform", /*seed=*/5,
      {{"events", 512}, {"points", 24}, {"commodities", 6}});

  auto run = [&](PdOptions::BidMode mode) {
    PdOmflp pd(PdOptions{.bid_mode = mode});
    StreamRunOptions options;
    options.verify = true;
    options.compact = false;
    StreamRunResult result = run_stream(pd, stream, options);
    EXPECT_FALSE(result.violation.has_value()) << result.violation->what;
    const auto issue = pd.audit_state();
    EXPECT_FALSE(issue.has_value()) << *issue;
    EXPECT_FALSE(verify_stream(stream, result.ledger).has_value());
    return std::tuple<double, double, std::size_t>{
        result.ledger.total_cost(), result.ledger.active_cost(),
        result.ledger.num_facilities()};
  };
  const auto incremental = run(PdOptions::BidMode::kIncremental);
  const auto reference = run(PdOptions::BidMode::kReference);
  EXPECT_EQ(std::get<0>(incremental), std::get<0>(reference));  // bitwise
  EXPECT_EQ(std::get<1>(incremental), std::get<1>(reference));
  EXPECT_EQ(std::get<2>(incremental), std::get<2>(reference));
}

TEST(PdDeletion, RollbackAndFrozenDiverge) {
  // The two policies must be distinguishable: rollback withdraws the
  // deleted requests' investment, frozen keeps bidding on top of it.
  // (Equality would mean depart() is not actually rolling anything
  // back.) A multi-point workload is needed — on a single point every
  // bid clips to zero once a facility opens, leaving nothing to roll
  // back.
  const EventStream stream = default_stream_scenario_registry().make(
      "churn-uniform", /*seed=*/3,
      {{"events", 512}, {"points", 32}, {"commodities", 6},
       {"churn", 0.5}});
  auto run = [&](PdOptions::DeletionPolicy policy) {
    PdOmflp pd(PdOptions{.deletion_policy = policy});
    StreamRunOptions options;
    options.verify = true;
    StreamRunResult result = run_stream(pd, stream, options);
    EXPECT_FALSE(result.violation.has_value());
    return result.ledger.total_cost();
  };
  const double rollback = run(PdOptions::DeletionPolicy::kRollback);
  const double frozen = run(PdOptions::DeletionPolicy::kFrozen);
  EXPECT_NE(rollback, frozen);
}

TEST(PdDeletion, RollbackWithdrawsTotalDual) {
  SmallWorld w;
  std::vector<StreamEvent> events;
  events.push_back(StreamEvent::arrival(make_request(2, 0, {0, 1})));
  events.push_back(StreamEvent::arrival(make_request(2, 6, {0})));
  events.push_back(StreamEvent::departure(0));
  events.push_back(StreamEvent::departure(1));
  const EventStream stream(w.metric, w.cost, events, "duals");
  stream.validate();
  PdOmflp pd;
  const StreamRunResult result = run_stream(pd, stream, {});
  // Every archived request departed and was rolled back.
  EXPECT_DOUBLE_EQ(pd.total_dual(), 0.0);
  const auto issue = pd.audit_state();
  EXPECT_FALSE(issue.has_value()) << *issue;
  EXPECT_EQ(result.ledger.num_active_requests(), 0u);
}

TEST(BaselineDeletion, AllRosterAlgorithmsSurviveChurnVerified) {
  const EventStream stream = default_stream_scenario_registry().make(
      "churn-uniform", /*seed=*/7,
      {{"events", 384}, {"points", 16}, {"commodities", 5}});
  StreamRunOptions options;
  options.verify = true;

  {
    auto fotakis = PerCommodityAdapter::fotakis();  // rollback per commodity
    const StreamRunResult result = run_stream(*fotakis, stream, options);
    EXPECT_FALSE(result.violation.has_value()) << result.violation->what;
  }
  {
    auto meyerson = PerCommodityAdapter::meyerson(11);  // frozen subs
    const StreamRunResult result = run_stream(*meyerson, stream, options);
    EXPECT_FALSE(result.violation.has_value()) << result.violation->what;
  }
  {
    RandOmflp rand(RandOptions{.seed = 13});
    const StreamRunResult result = run_stream(rand, stream, options);
    EXPECT_FALSE(result.violation.has_value()) << result.violation->what;
  }
  {
    RentOrBuy rentbuy;
    const StreamRunResult result = run_stream(rentbuy, stream, options);
    EXPECT_FALSE(result.violation.has_value()) << result.violation->what;
  }
}

// ---------------------------------------------------------------- trace IO ---

TEST(StreamIo, RoundTripIsByteIdentical) {
  for (const char* scenario :
       {"churn-uniform", "adversarial-churn", "lease-poisson"}) {
    const EventStream stream = default_stream_scenario_registry().make(
        scenario, /*seed=*/9, {});
    const std::string text = event_stream_to_string(stream);
    const EventStream reloaded = event_stream_from_string(text);
    EXPECT_EQ(event_stream_to_string(reloaded), text) << scenario;
    EXPECT_EQ(reloaded.num_events(), stream.num_events());
    EXPECT_EQ(reloaded.num_arrivals(), stream.num_arrivals());
    EXPECT_NO_THROW(reloaded.validate());
  }
}

TEST(StreamIo, CapacityMapRoundTripsAndStaysOptional) {
  const EventStream capped = default_stream_scenario_registry().make(
      "hotspot-grid-capped", /*seed=*/9, {{"events", 64}});
  ASSERT_NE(capped.capacities(), nullptr);
  const std::string text = event_stream_to_string(capped);
  EXPECT_NE(text.find("\ncapacities "), std::string::npos);
  const EventStream reloaded = event_stream_from_string(text);
  ASSERT_NE(reloaded.capacities(), nullptr);
  EXPECT_TRUE(*reloaded.capacities() == *capped.capacities());
  EXPECT_EQ(event_stream_to_string(reloaded), text);

  // The uncapped sibling (same generator, no cap) writes no capacities
  // section at all — existing uncapacitated files stay byte-stable.
  const EventStream uncapped = default_stream_scenario_registry().make(
      "hotspot-grid", /*seed=*/9, {{"events", 64}});
  EXPECT_EQ(uncapped.capacities(), nullptr);
  EXPECT_EQ(event_stream_to_string(uncapped).find("capacities"),
            std::string::npos);
}

TEST(StreamIo, ReplayThroughTraceReproducesCostsExactly) {
  const EventStream stream = default_stream_scenario_registry().make(
      "churn-uniform", /*seed=*/4, {{"events", 512}});
  PdOmflp direct;
  const StreamRunResult expected = run_stream(direct, stream, {});

  std::istringstream is(event_stream_to_string(stream));
  StreamTraceReader reader(is);
  EXPECT_EQ(reader.num_events(), stream.num_events());
  EXPECT_EQ(reader.num_arrivals(), stream.num_arrivals());
  PdOmflp replayed;
  StreamRunOptions options;
  options.batch_size = 61;  // odd batches: exercise the batched parser
  options.verify = true;
  const StreamRunResult result = run_stream(replayed, reader, options);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_EQ(result.ledger.total_cost(), expected.ledger.total_cost());
  EXPECT_EQ(result.ledger.active_cost(), expected.ledger.active_cost());
  EXPECT_EQ(result.events, expected.events);
  EXPECT_EQ(result.lease_expiries, expected.lease_expiries);
}

TEST(StreamIo, RejectsMalformedTraces) {
  EXPECT_THROW(event_stream_from_string("OMFLP-STREAM v2\n"),
               std::invalid_argument);
  const EventStream stream = default_stream_scenario_registry().make(
      "churn-uniform", /*seed=*/2, {{"events", 32}});
  std::string text = event_stream_to_string(stream);
  EXPECT_THROW(
      event_stream_from_string(text.substr(0, text.size() / 2)),
      std::invalid_argument);
}

TEST(StreamIo, EventLinesAreParsedStrictly) {
  // Regression: the first event parser truncated "d 3.5" to a departure
  // of 3, accepted trailing garbage, and silently collapsed duplicate
  // commodity ids — a corrupted trace was misread instead of rejected.
  SmallWorld w;
  const EventStream stream(
      w.metric, w.cost,
      {StreamEvent::arrival(make_request(2, 0, {0}), 4),
       StreamEvent::arrival(make_request(2, 1, {0, 1})),
       StreamEvent::departure(0)},
      "strict");
  const std::string text = event_stream_to_string(stream);
  auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string mutated = text;
    const auto at = mutated.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    mutated.replace(at, from.size(), to);
    EXPECT_THROW(event_stream_from_string(mutated), std::invalid_argument)
        << "accepted: " << to;
  };
  corrupt("d 0", "d 0.5");          // fractional departure target
  corrupt("d 0", "d 0 junk");       // trailing garbage on a departure
  corrupt("a 1 2 0 1", "a 1 2 0 0");     // duplicate commodity id
  corrupt("a 1 2 0 1", "a 1 2 0 1 junk");  // trailing garbage
  corrupt("L 4", "L 4 junk");       // trailing garbage after a lease
  corrupt("L 4", "L -4");           // negative lease
  // Header counts parse strictly too: "events -5" used to wrap through
  // istream's unsigned extraction and die in vector::reserve.
  corrupt("events 3 arrivals 2", "events -5 arrivals 2");
  corrupt("events 3 arrivals 2", "events 3 arrivals -1");
  corrupt("events 3 arrivals 2", "events 3 arrivals 9");  // k > n
  corrupt("commodities 2", "commodities -2");
  // Events beyond the declared count (e.g. a truncated 'events' header)
  // must be rejected, not silently replayed as a prefix workload — in
  // both the materializing and the batched reader.
  EXPECT_THROW(event_stream_from_string(text + "a 0 1 0\n"),
               std::invalid_argument);
  {
    std::istringstream is(text + "a 0 1 0\n");
    StreamTraceReader reader(is);
    std::vector<StreamEvent> out;
    EXPECT_THROW(reader.next_batch(out, 1024), std::invalid_argument);
  }
}

TEST(StreamRunner, RejectsMalformedArrivals) {
  // run_stream's contract: the same conditions validate() rejects throw
  // from the runner too (a programmatically-built source can skip
  // validate(), and nothing malformed may reach the kernels).
  SmallWorld w;
  AlwaysOpen algorithm;
  {
    const EventStream stream(
        w.metric, w.cost, {StreamEvent::arrival(make_request(2, 99, {0}))},
        "bad-location");
    EXPECT_THROW(run_stream(algorithm, stream, {}), std::invalid_argument);
  }
  {
    const EventStream stream(
        w.metric, w.cost, {StreamEvent::arrival(make_request(5, 0, {0}))},
        "bad-universe");
    EXPECT_THROW(run_stream(algorithm, stream, {}), std::invalid_argument);
  }
}

// -------------------------------------------------------------- compaction ---

TEST(StreamRunner, CompactionBoundsResidentRecordsWithoutChangingCosts) {
  const EventStream stream = default_stream_scenario_registry().make(
      "lease-poisson", /*seed=*/6, {{"events", 2048}, {"mean_lease", 24}});

  NearestOrOpen uncompacted_algorithm;
  StreamRunOptions uncompacted_options;
  uncompacted_options.compact = false;
  uncompacted_options.verify = true;
  const StreamRunResult uncompacted =
      run_stream(uncompacted_algorithm, stream, uncompacted_options);
  EXPECT_FALSE(uncompacted.violation.has_value());
  EXPECT_EQ(uncompacted.ledger.first_record_id(), 0u);
  EXPECT_FALSE(verify_stream(stream, uncompacted.ledger).has_value());

  NearestOrOpen compacted_algorithm;
  StreamRunOptions compacted_options;
  compacted_options.compact = true;
  compacted_options.batch_size = 128;
  compacted_options.verify = true;
  const StreamRunResult compacted =
      run_stream(compacted_algorithm, stream, compacted_options);
  EXPECT_FALSE(compacted.violation.has_value());
  // Compaction really dropped retired prefixes...
  EXPECT_GT(compacted.ledger.first_record_id(), 0u);
  EXPECT_LT(compacted.peak_resident_records, stream.num_arrivals());
  // ...without touching any accounting (bitwise).
  EXPECT_EQ(compacted.ledger.total_cost(), uncompacted.ledger.total_cost());
  EXPECT_EQ(compacted.ledger.active_cost(),
            uncompacted.ledger.active_cost());
  EXPECT_EQ(compacted.ledger.num_requests(),
            uncompacted.ledger.num_requests());
  EXPECT_EQ(compacted.ledger.num_active_requests(),
            uncompacted.ledger.num_active_requests());
}

// ------------------------------------------------------------- determinism ---

TEST(StreamRunner, ChurnRunIsBitIdenticalAcrossThreadCounts) {
  const EventStream stream = default_stream_scenario_registry().make(
      "churn-uniform", /*seed=*/8,
      {{"events", 512}, {"points", 32}, {"commodities", 6}});

  auto run = [&](std::size_t threshold, const char* threads) {
    ThresholdGuard guard(threshold);
    ::setenv("OMFLP_THREADS", threads, 1);
    PdOmflp pd;
    const StreamRunResult result = run_stream(pd, stream, {});
    ::unsetenv("OMFLP_THREADS");
    return std::pair<double, double>{result.ledger.total_cost(),
                                     result.ledger.active_cost()};
  };
  const auto serial = run(static_cast<std::size_t>(-1), "1");
  const auto parallel = run(0, "4");  // forced parallel split
  EXPECT_EQ(serial.first, parallel.first);    // bitwise, not NEAR
  EXPECT_EQ(serial.second, parallel.second);
}

TEST(StreamRunner, CapacitatedRunIsBitIdenticalAcrossThreadCounts) {
  const EventStream stream = default_stream_scenario_registry().make(
      "hotspot-grid-capped", /*seed=*/6,
      {{"events", 256}, {"capacity", 2}});
  ASSERT_NE(stream.capacities(), nullptr);

  auto run = [&](std::size_t threshold, const char* threads) {
    ThresholdGuard guard(threshold);
    ::setenv("OMFLP_THREADS", threads, 1);
    PdOmflp pd;
    StreamRunOptions options;
    options.verify = true;  // shadow StreamVerifier sees the same caps
    const StreamRunResult result = run_stream(pd, stream, options);
    EXPECT_FALSE(result.violation.has_value()) << result.violation->what;
    ::unsetenv("OMFLP_THREADS");
    return std::tuple<double, double, std::size_t, std::size_t>{
        result.ledger.total_cost(), result.ledger.active_cost(),
        result.ledger.num_shed_requests(),
        result.ledger.num_spilled_assignments()};
  };
  const auto serial = run(static_cast<std::size_t>(-1), "1");
  const auto parallel = run(0, "4");  // forced parallel split
  EXPECT_EQ(serial, parallel);  // costs AND admission counters, bitwise
  // The cap must actually bind, or this run never exercises admission.
  EXPECT_GT(std::get<2>(serial) + std::get<3>(serial), 0u);
}

TEST(StreamScenarios, GenerationIsDeterministicInSeed) {
  for (const char* scenario :
       {"churn-uniform", "adversarial-churn", "lease-poisson"}) {
    const EventStream a =
        default_stream_scenario_registry().make(scenario, 42, {});
    const EventStream b =
        default_stream_scenario_registry().make(scenario, 42, {});
    EXPECT_EQ(event_stream_to_string(a), event_stream_to_string(b))
        << scenario;
    const EventStream c =
        default_stream_scenario_registry().make(scenario, 43, {});
    EXPECT_NE(event_stream_to_string(a), event_stream_to_string(c))
        << scenario;
  }
}

// -------------------------------------------------------------- edge cases ---

TEST(StreamRunner, RejectsInvalidDepartures) {
  SmallWorld w;
  const EventStream stream(w.metric, w.cost,
                           {StreamEvent::arrival(make_request(2, 0, {0})),
                            StreamEvent::departure(5)},
                           "bad");
  AlwaysOpen algorithm;
  EXPECT_THROW(run_stream(algorithm, stream, {}), std::invalid_argument);
}

TEST(StreamRunner, LedgerRefusesDoubleRetirement) {
  SmallWorld w;
  SolutionLedger ledger(w.metric, w.cost);
  AlwaysOpen algorithm;
  algorithm.reset(ProblemContext{w.metric, w.cost});
  const Request r = make_request(2, 0, {0});
  ledger.begin_request(r);
  algorithm.serve(r, ledger);
  ledger.finish_request();
  ledger.retire_request(0, 1);
  EXPECT_THROW(ledger.retire_request(0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace omflp
