// Tests for the scenario subsystem: registry lookup and unknown-name
// errors, scenario determinism, sweep determinism across thread counts,
// and instance trace write -> replay round-trips.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "analysis/competitive.hpp"
#include "core/online_algorithm.hpp"
#include "instance/io.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/registry_util.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/sweep.hpp"

namespace omflp {
namespace {

// ------------------------------------------------------------ registries ---

TEST(ScenarioRegistry, DefaultContainsBuiltins) {
  const ScenarioRegistry& registry = default_scenario_registry();
  for (const char* name :
       {"uniform-line", "clustered", "zooming", "service-network",
        "single-point-mixed", "shared-demand", "heavy-tail", "theorem2",
        "theorem18", "figure3"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.spec(name).name, name);
  }
  EXPECT_GE(registry.size(), 10u);
}

TEST(ScenarioRegistry, UnknownNameThrowsListingKnown) {
  const ScenarioRegistry& registry = default_scenario_registry();
  EXPECT_FALSE(registry.contains("no-such-scenario"));
  try {
    registry.spec("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    EXPECT_NE(what.find("uniform-line"), std::string::npos)
        << "error should list the known names: " << what;
  }
  EXPECT_THROW(registry.make("no-such-scenario", 1), std::invalid_argument);
}

TEST(ScenarioRegistry, UndeclaredOverrideStrictVsLenient) {
  const ScenarioRegistry& registry = default_scenario_registry();
  EXPECT_THROW(registry.make("zooming", 1, {{"no_such_param", 3.0}}),
               std::invalid_argument);
  // make_lenient skips undeclared keys but applies declared ones.
  const Instance instance = registry.make_lenient(
      "zooming", 1, {{"no_such_param", 3.0}, {"requests", 17.0}});
  EXPECT_EQ(instance.num_requests(), 17u);
}

TEST(ScenarioRegistry, OverridesReachTheFactory) {
  const Instance instance = default_scenario_registry().make(
      "uniform-line", 3, {{"requests", 10.0}, {"commodities", 5.0}});
  EXPECT_EQ(instance.num_requests(), 10u);
  EXPECT_EQ(instance.num_commodities(), 5u);
  EXPECT_NO_THROW(instance.validate());
}

TEST(ScenarioRegistry, AddRejectsDuplicatesAndMissingFactory) {
  ScenarioRegistry registry;
  registry.add({.name = "w",
                .description = "d",
                .params = {},
                .make = [](const ScenarioParams&, std::uint64_t) {
                  return default_scenario_registry().make("figure3", 1);
                }});
  EXPECT_THROW(
      registry.add({.name = "w",
                    .description = "again",
                    .params = {},
                    .make = [](const ScenarioParams&, std::uint64_t) {
                      return default_scenario_registry().make("figure3", 1);
                    }}),
      std::invalid_argument);
  EXPECT_THROW(registry.add({.name = "x", .description = "no factory"}),
               std::invalid_argument);
}

TEST(ScenarioParams, IntegralValidation) {
  const ScenarioParams params(
      {{"n", 4.5}, {"k", -1.0}, {"m", 8.0}, {"huge", 1e30}, {"wide", 5e9}});
  EXPECT_EQ(params.size_t_at("m"), 8u);
  EXPECT_THROW(params.size_t_at("n"), std::invalid_argument);
  EXPECT_THROW(params.size_t_at("k"), std::invalid_argument);
  // Beyond 2^53 the double->size_t cast would be lossy or UB; reachable
  // from the CLI via --set requests=1e30.
  EXPECT_THROW(params.size_t_at("huge"), std::invalid_argument);
  EXPECT_EQ(params.commodity_at("m"), 8u);
  // Fits size_t but not CommodityId — must not silently truncate.
  EXPECT_THROW(params.commodity_at("wide"), std::invalid_argument);
  EXPECT_THROW(params.at("absent"), std::invalid_argument);
}

TEST(AlgorithmRegistry, DerivedSeedDecorrelatesCoinStream) {
  // Sweeps hand the workload seed to the scenario factory and the derived
  // seed to the algorithm; the two must never coincide, or a randomized
  // algorithm would replay the generator's exact draw sequence.
  for (const std::uint64_t seed : {0ull, 1ull, 2ull, 42ull, 1048576ull}) {
    EXPECT_NE(derive_algorithm_seed(seed), seed);
    EXPECT_EQ(derive_algorithm_seed(seed), derive_algorithm_seed(seed));
  }
}

TEST(AlgorithmRegistry, RosterAndUnknownName) {
  const AlgorithmRegistry& registry = default_algorithm_registry();
  for (const char* name : {"pd", "pd-nopred", "pd-seenunion", "rand",
                           "fotakis", "meyerson", "greedy", "rentbuy",
                           "alwaysopen"}) {
    ASSERT_TRUE(registry.contains(name)) << name;
    auto algorithm = registry.make(name, 7);
    ASSERT_NE(algorithm, nullptr) << name;
    EXPECT_FALSE(algorithm->name().empty());
  }
  EXPECT_THROW(registry.make("no-such-algorithm", 1),
               std::invalid_argument);
}

// ----------------------------------------------------------- determinism ---

TEST(ScenarioRegistry, SameSeedSameInstance) {
  const ScenarioRegistry& registry = default_scenario_registry();
  for (const char* name : {"uniform-line", "zooming", "theorem2"}) {
    const Instance a = registry.make(name, 42);
    const Instance b = registry.make(name, 42);
    EXPECT_EQ(instance_to_string(a), instance_to_string(b)) << name;
  }
  // Randomized scenarios actually consume the seed ("zooming" is a fixed
  // geometric construction and legitimately does not).
  for (const char* name : {"uniform-line", "theorem2", "service-network"}) {
    const Instance a = registry.make(name, 42);
    const Instance c = registry.make(name, 43);
    EXPECT_NE(instance_to_string(a), instance_to_string(c))
        << name << ": different seeds should differ";
  }
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  SweepOptions options;
  options.scenarios = {"single-point-mixed", "theorem2"};
  options.algorithms = {"pd", "rand"};
  options.seeds = 3;
  options.overrides = {{"commodities", 9.0}};

  options.threads = 1;
  const SweepResult serial = run_sweep(options);
  options.threads = 4;
  const SweepResult parallel = run_sweep(options);

  // The CSV carries wall-clock timing columns (wall_ms_mean,
  // requests_per_sec_mean) that legitimately differ run to run; strip
  // them (located by header name, robust to column reordering) and
  // compare everything else byte for byte.
  const auto strip_timing_columns = [](const std::string& csv) {
    std::istringstream lines(csv);
    std::ostringstream out;
    std::string line;
    std::set<std::size_t> timing_columns;
    bool header = true;
    while (std::getline(lines, line)) {
      std::istringstream fields(line);
      std::string field;
      std::size_t column = 0;
      while (std::getline(fields, field, ',')) {
        if (header &&
            (field == "wall_ms_mean" || field == "requests_per_sec_mean"))
          timing_columns.insert(column);
        if (!timing_columns.count(column)) out << field << ",";
        ++column;
      }
      if (header) EXPECT_EQ(timing_columns.size(), 2u);
      header = false;
      out << "\n";
    }
    return out.str();
  };
  std::ostringstream a, b;
  serial.write_csv(a);
  parallel.write_csv(b);
  EXPECT_EQ(strip_timing_columns(a.str()), strip_timing_columns(b.str()));

  // Re-running with the same options bit-reproduces every sample.
  const SweepResult again = run_sweep(options);
  for (std::size_t i = 0; i < again.cells().size(); ++i) {
    const auto lhs = parallel.cells()[i].ratio.samples();
    const auto rhs = again.cells()[i].ratio.samples();
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t k = 0; k < lhs.size(); ++k)
      EXPECT_EQ(lhs[k], rhs[k]) << "cell " << i << " sample " << k;
  }
}

TEST(Sweep, CellGridAndErrors) {
  SweepOptions options;
  options.scenarios = {"figure3", "heavy-tail"};
  options.algorithms = {"pd", "greedy", "rand"};
  options.seeds = 2;
  const SweepResult result = run_sweep(options);
  EXPECT_EQ(result.cells().size(), 6u);  // one row per (scenario, algorithm)
  for (const SweepCell& cell : result.cells()) {
    EXPECT_EQ(cell.ratio.count(), 2u);
    EXPECT_GE(cell.ratio.min(), 1.0 - 1e-9)
        << cell.scenario << "/" << cell.algorithm
        << ": no algorithm can beat (an upper bound on) OPT by more than "
           "floating-point noise";
  }
  EXPECT_EQ(result.cell("figure3", "rand").algorithm, "rand");
  EXPECT_THROW(result.cell("figure3", "absent"), std::invalid_argument);

  options.algorithms = {"no-such-algorithm"};
  EXPECT_THROW(run_sweep(options), std::invalid_argument);
  options.algorithms = {"pd"};
  options.seeds = 0;
  EXPECT_THROW(run_sweep(options), std::invalid_argument);

  // An override no selected scenario declares is a typo, not leniency.
  options.seeds = 1;
  options.overrides = {{"comodities", 64.0}};
  EXPECT_THROW(run_sweep(options), std::invalid_argument);
}

// ------------------------------------------------------- trace round-trip ---

TEST(ScenarioTrace, WriteReplayRoundTripIsByteIdentical) {
  const ScenarioRegistry& registry = default_scenario_registry();
  // Every scenario priced by a serializable (size-only) cost model.
  for (const char* name : {"uniform-line", "clustered", "zooming",
                           "service-network", "single-point-mixed",
                           "shared-demand", "theorem2", "theorem18"}) {
    const Instance original = registry.make(name, 11);
    const std::string text = instance_to_string(original);
    const Instance reloaded = instance_from_string(text);
    EXPECT_EQ(instance_to_string(reloaded), text) << name;
  }
}

TEST(ScenarioTrace, ReplayReproducesTotalCostExactly) {
  const ScenarioRegistry& registry = default_scenario_registry();
  const AlgorithmRegistry& algorithms = default_algorithm_registry();
  for (const char* algorithm_name : {"pd", "rand"}) {
    const Instance original = registry.make("uniform-line", 5);
    auto first = algorithms.make(algorithm_name, 5);
    const double original_cost =
        run_online(*first, original).total_cost();

    const Instance reloaded =
        instance_from_string(instance_to_string(original));
    auto second = algorithms.make(algorithm_name, 5);
    const double replayed_cost =
        run_online(*second, reloaded).total_cost();
    EXPECT_EQ(original_cost, replayed_cost) << algorithm_name;
  }
}

}  // namespace
}  // namespace omflp
