// Tests for the cost substrate: the concrete models, the paper's
// Condition 1 / subadditivity checkers (positively and negatively), the
// power-of-two rounding, and the cost-class index used by RAND-OMFLP.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "cost/checks.hpp"
#include "cost/cost_classes.hpp"
#include "cost/cost_models.hpp"
#include "metric/line_metric.hpp"
#include "support/rng.hpp"

namespace omflp {
namespace {

TEST(SizeOnlyCostModel, TableAndSetAgree) {
  SizeOnlyCostModel m(8, [](CommodityId k) { return 2.0 * k; });
  EXPECT_DOUBLE_EQ(m.cost_of_size(3), 6.0);
  EXPECT_DOUBLE_EQ(m.open_cost(0, CommoditySet(8, {1, 4, 6})), 6.0);
  EXPECT_DOUBLE_EQ(m.open_cost(5, CommoditySet(8, {1})), 2.0);
  EXPECT_TRUE(m.location_invariant());
  ASSERT_TRUE(m.cost_by_size(0, 2).has_value());
  EXPECT_DOUBLE_EQ(*m.cost_by_size(0, 2), 4.0);
}

TEST(SizeOnlyCostModel, RejectsBadFunctions) {
  EXPECT_THROW(
      SizeOnlyCostModel(4, [](CommodityId k) { return k == 0 ? 1.0 : 1.0; }),
      std::invalid_argument);  // g(0) != 0
  EXPECT_THROW(SizeOnlyCostModel(4, [](CommodityId) { return -1.0; }),
               std::invalid_argument);
  EXPECT_THROW(SizeOnlyCostModel(4, nullptr), std::invalid_argument);
}

TEST(PolynomialCostModel, ClassCEndpoints) {
  // x = 0: constant 1 for any non-empty config.
  PolynomialCostModel constant(16, 0.0);
  EXPECT_DOUBLE_EQ(constant.cost_of_size(1), 1.0);
  EXPECT_DOUBLE_EQ(constant.cost_of_size(16), 1.0);
  // x = 1: sqrt.
  PolynomialCostModel root(16, 1.0);
  EXPECT_DOUBLE_EQ(root.cost_of_size(4), 2.0);
  EXPECT_DOUBLE_EQ(root.cost_of_size(16), 4.0);
  // x = 2: linear.
  PolynomialCostModel linear(16, 2.0);
  EXPECT_DOUBLE_EQ(linear.cost_of_size(5), 5.0);
  EXPECT_DOUBLE_EQ(linear.cost_of_size(0), 0.0);
}

TEST(PolynomialCostModel, RejectsOutOfClassExponent) {
  EXPECT_THROW(PolynomialCostModel(4, -0.1), std::invalid_argument);
  EXPECT_THROW(PolynomialCostModel(4, 2.1), std::invalid_argument);
}

TEST(CeilRatioCostModel, Theorem2Cost) {
  // |S| = 64: g(k) = ceil(k/8).
  CeilRatioCostModel m(64);
  EXPECT_DOUBLE_EQ(m.cost_of_size(1), 1.0);
  EXPECT_DOUBLE_EQ(m.cost_of_size(8), 1.0);
  EXPECT_DOUBLE_EQ(m.cost_of_size(9), 2.0);
  EXPECT_DOUBLE_EQ(m.cost_of_size(64), 8.0);
}

TEST(LinearCostModel, PerCommodityWeights) {
  LinearCostModel m({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(m.open_cost(0, CommoditySet(3, {0, 2})), 5.0);
  EXPECT_DOUBLE_EQ(m.open_cost(0, CommoditySet::full_set(3)), 7.0);
  LinearCostModel uniform(4, 3.0);
  EXPECT_DOUBLE_EQ(uniform.open_cost(0, CommoditySet::full_set(4)), 12.0);
}

TEST(PointScaledCostModel, ScalesPerPoint) {
  auto base = std::make_shared<PolynomialCostModel>(8, 1.0);
  PointScaledCostModel scaled(base, {1.0, 2.0, 0.5});
  const CommoditySet sigma(8, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(scaled.open_cost(0, sigma), 2.0);
  EXPECT_DOUBLE_EQ(scaled.open_cost(1, sigma), 4.0);
  EXPECT_DOUBLE_EQ(scaled.open_cost(2, sigma), 1.0);
  EXPECT_FALSE(scaled.location_invariant());
  EXPECT_THROW((void)scaled.open_cost(3, sigma), std::invalid_argument);
  ASSERT_TRUE(scaled.cost_by_size(1, 4).has_value());
  EXPECT_DOUBLE_EQ(*scaled.cost_by_size(1, 4), 4.0);

  PointScaledCostModel uniform(base, {2.0, 2.0});
  EXPECT_TRUE(uniform.location_invariant());
}

// ---------------------------------------------------- paper conditions ---

class ClassCCondition1 : public ::testing::TestWithParam<double> {};

TEST_P(ClassCCondition1, HoldsForAllExponents) {
  const double x = GetParam();
  PolynomialCostModel m(10, x);
  EXPECT_FALSE(check_condition1_exhaustive(m, 1).has_value()) << "x=" << x;
  EXPECT_FALSE(check_subadditivity_exhaustive(m, 1).has_value())
      << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(CostClassSweep, ClassCCondition1,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0, 1.25,
                                           1.5, 1.75, 2.0));

TEST(CostChecks, Theorem2CostSatisfiesCondition1) {
  CeilRatioCostModel small(9);  // g(k) = ceil(k/3)
  EXPECT_FALSE(check_condition1_exhaustive(small, 1).has_value());
  EXPECT_FALSE(check_subadditivity_exhaustive(small, 1).has_value());
  CeilRatioCostModel big(16);  // subadditivity checker capped at |S| <= 12
  EXPECT_FALSE(check_condition1_exhaustive(big, 1).has_value());
  Rng rng(7);
  EXPECT_FALSE(check_subadditivity_sampled(big, 1, 500, rng).has_value());
}

TEST(CostChecks, UniformLinearSatisfiesBothButSkewedLinearViolatesCond1) {
  // With equal weights Condition 1 holds with equality everywhere.
  LinearCostModel uniform(4, 2.0);
  EXPECT_FALSE(check_condition1_exhaustive(uniform, 1).has_value());
  EXPECT_FALSE(check_subadditivity_exhaustive(uniform, 1).has_value());
  // Heterogeneous weights break Condition 1: the cheap commodity's
  // per-commodity cost (0.5) undercuts the full-set average (6.5/4).
  // Subadditivity (which holds with equality for linear costs) survives.
  LinearCostModel skewed({1.0, 2.0, 3.0, 0.5});
  EXPECT_TRUE(check_condition1_exhaustive(skewed, 1).has_value());
  EXPECT_FALSE(check_subadditivity_exhaustive(skewed, 1).has_value());
}

TEST(CostChecks, DetectsCondition1Violation) {
  // g(1) = 0.1 but g(2)/2 = 0.5: singletons are cheaper per commodity
  // than the full set — Condition 1 fails.
  SizeOnlyCostModel m(2, [](CommodityId k) {
    return k == 0 ? 0.0 : (k == 1 ? 0.1 : 1.0);
  });
  EXPECT_TRUE(check_condition1_exhaustive(m, 1).has_value());
  Rng rng(1);
  EXPECT_TRUE(check_condition1_sampled(m, 1, 500, rng).has_value());
}

TEST(CostChecks, DetectsSubadditivityViolation) {
  // g(2) = 5 > g(1) + g(1) = 2.
  SizeOnlyCostModel m(2, [](CommodityId k) {
    return k == 0 ? 0.0 : (k == 1 ? 1.0 : 5.0);
  });
  EXPECT_TRUE(check_subadditivity_exhaustive(m, 1).has_value());
  Rng rng(1);
  EXPECT_TRUE(check_subadditivity_sampled(m, 1, 2000, rng).has_value());
}

TEST(CostChecks, SampledPassesOnValidModels) {
  PolynomialCostModel m(64, 1.0);
  Rng rng(2);
  EXPECT_FALSE(check_condition1_sampled(m, 4, 300, rng).has_value());
  EXPECT_FALSE(check_subadditivity_sampled(m, 4, 300, rng).has_value());
}

// ----------------------------------------------------------- rounding ----

TEST(RoundDownPow2, ExactAndInexact) {
  EXPECT_DOUBLE_EQ(round_down_pow2(0.0), 0.0);
  EXPECT_DOUBLE_EQ(round_down_pow2(1.0), 1.0);
  EXPECT_DOUBLE_EQ(round_down_pow2(2.0), 2.0);
  EXPECT_DOUBLE_EQ(round_down_pow2(3.0), 2.0);
  EXPECT_DOUBLE_EQ(round_down_pow2(4.0), 4.0);
  EXPECT_DOUBLE_EQ(round_down_pow2(7.9), 4.0);
  EXPECT_DOUBLE_EQ(round_down_pow2(0.75), 0.5);
  EXPECT_DOUBLE_EQ(round_down_pow2(0.5), 0.5);
  EXPECT_THROW(round_down_pow2(-1.0), std::invalid_argument);
}

TEST(RoundDownPow2, WithinFactorTwoProperty) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = std::exp(rng.uniform(-10.0, 10.0));
    const double r = round_down_pow2(x);
    EXPECT_LE(r, x);
    EXPECT_GT(2.0 * r, x);
  }
}

// ------------------------------------------------------- cost classes ----

TEST(CostClassIndex, UniformCostSingleClass) {
  auto metric = LineMetric::uniform_grid(8, 10.0);
  auto cost = std::make_shared<PolynomialCostModel>(4, 1.0);
  CostClassIndex idx(metric, cost, CommoditySet::full_set(4));
  EXPECT_EQ(idx.num_classes(), 1u);
  EXPECT_DOUBLE_EQ(idx.class_cost(0), 2.0);  // sqrt(4) = 2 is a power of 2
  const auto [d, p] = idx.prefix_nearest(0, 3);
  EXPECT_DOUBLE_EQ(d, 0.0);
  EXPECT_EQ(p, 3u);
}

TEST(CostClassIndex, NonUniformClassesAndPrefixMonotonicity) {
  auto metric = LineMetric::uniform_grid(4, 30.0);  // points at 0,10,20,30
  auto base = std::make_shared<PolynomialCostModel>(2, 2.0);
  // Multipliers chosen so rounded costs are 2,2,8,16 for |σ|=2.
  auto cost = std::make_shared<PointScaledCostModel>(
      base, std::vector<double>{1.0, 1.2, 4.0, 8.0});
  CostClassIndex idx(metric, cost, CommoditySet::full_set(2));
  ASSERT_EQ(idx.num_classes(), 3u);
  EXPECT_DOUBLE_EQ(idx.class_cost(0), 2.0);
  EXPECT_DOUBLE_EQ(idx.class_cost(1), 8.0);
  EXPECT_DOUBLE_EQ(idx.class_cost(2), 16.0);
  EXPECT_EQ(idx.class_of_point(0), 0u);
  EXPECT_EQ(idx.class_of_point(1), 0u);
  EXPECT_EQ(idx.class_of_point(2), 1u);
  EXPECT_EQ(idx.class_of_point(3), 2u);
  EXPECT_DOUBLE_EQ(idx.true_cost(3), 16.0);

  // From point 3 the prefix distances must be non-increasing in i.
  double prev = kInfiniteDistance;
  for (std::size_t i = 0; i < idx.num_classes(); ++i) {
    const auto [d, p] = idx.prefix_nearest(i, 3);
    EXPECT_LE(d, prev);
    prev = d;
  }
  // Prefix 0 from point 3: nearest cheap point is 1 (distance 20).
  const auto [d0, p0] = idx.prefix_nearest(0, 3);
  EXPECT_DOUBLE_EQ(d0, 20.0);
  EXPECT_EQ(p0, 1u);
}

TEST(CostClassIndex, BestOpenOptionTradesCostAgainstDistance) {
  auto metric = LineMetric::uniform_grid(2, 100.0);  // points at 0 and 100
  auto base = std::make_shared<PolynomialCostModel>(1, 2.0);
  // Point 0 expensive (64), point 1 cheap (1).
  auto cost = std::make_shared<PointScaledCostModel>(
      base, std::vector<double>{64.0, 1.0});
  CostClassIndex idx(metric, cost, CommoditySet::full_set(1));
  // From point 0: open locally for 64, or remotely for 1 + 100.
  const auto best0 = idx.best_open_option(0);
  EXPECT_DOUBLE_EQ(best0.cost, 64.0);
  EXPECT_EQ(best0.point, 0u);
  // From point 1: local cheap facility wins outright.
  const auto best1 = idx.best_open_option(1);
  EXPECT_DOUBLE_EQ(best1.cost, 1.0);
  EXPECT_EQ(best1.point, 1u);
}

TEST(CostClassIndex, RejectsEmptyConfig) {
  auto metric = LineMetric::uniform_grid(2, 1.0);
  auto cost = std::make_shared<PolynomialCostModel>(2, 1.0);
  EXPECT_THROW(CostClassIndex(metric, cost, CommoditySet(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace omflp
