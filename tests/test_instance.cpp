// Tests for instances, workload generators (determinism, validity,
// certificates) and the text serialization round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "instance/io.hpp"
#include "metric/line_metric.hpp"
#include "metric/validation.hpp"
#include "offline/single_point.hpp"

namespace omflp {
namespace {

std::shared_ptr<PolynomialCostModel> sqrt_cost(CommodityId s) {
  return std::make_shared<PolynomialCostModel>(s, 1.0);
}

TEST(Instance, ValidatesRequests) {
  auto metric = LineMetric::uniform_grid(4, 10.0);
  auto cost = sqrt_cost(4);
  // Location out of range.
  EXPECT_THROW(Instance(metric, cost, {Request{9, CommoditySet(4, {0})}}),
               std::invalid_argument);
  // Universe mismatch.
  EXPECT_THROW(Instance(metric, cost, {Request{0, CommoditySet(5, {0})}}),
               std::invalid_argument);
  // Empty demand.
  EXPECT_THROW(Instance(metric, cost, {Request{0, CommoditySet(4)}}),
               std::invalid_argument);
}

TEST(Instance, DemandedUnion) {
  auto metric = LineMetric::uniform_grid(4, 10.0);
  Instance inst(metric, sqrt_cost(4),
                {Request{0, CommoditySet(4, {0, 1})},
                 Request{1, CommoditySet(4, {1, 3})}});
  EXPECT_EQ(inst.demanded_union(), CommoditySet(4, {0, 1, 3}));
}

TEST(SampleDemandSet, SizeAndRange) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const CommoditySet s = sample_demand_set(12, 5, 0.8, rng);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_EQ(s.universe_size(), 12u);
  }
}

TEST(SampleDemandSet, RejectsBadSize) {
  Rng rng(1);
  EXPECT_THROW(sample_demand_set(4, 0, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(sample_demand_set(4, 5, 0.0, rng), std::invalid_argument);
}

class GeneratorDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorDeterminism, SameSeedSameInstance) {
  const int which = GetParam();
  auto make = [&](std::uint64_t seed) {
    Rng rng(seed);
    switch (which) {
      case 0:
        return make_uniform_line(UniformLineConfig{}, sqrt_cost(16), rng);
      case 1:
        return make_clustered_line(ClusteredConfig{}, sqrt_cost(16), rng);
      case 2: {
        ZoomingConfig cfg;
        return make_zooming_line(cfg, sqrt_cost(8), rng);
      }
      case 3:
        return make_service_network(ServiceNetworkConfig{}, sqrt_cost(16),
                                    rng);
      default: {
        SinglePointMixedConfig cfg;
        return make_single_point_mixed(cfg, sqrt_cost(12), rng);
      }
    }
  };
  const Instance a = make(1234);
  const Instance b = make(1234);
  const Instance c = make(999);
  ASSERT_EQ(a.num_requests(), b.num_requests());
  bool identical = true;
  for (std::size_t i = 0; i < a.num_requests(); ++i) {
    identical = identical &&
                a.request(i).location == b.request(i).location &&
                a.request(i).commodities == b.request(i).commodities;
  }
  EXPECT_TRUE(identical);
  // Different seeds should (generically) differ somewhere.
  bool differs = a.num_requests() != c.num_requests();
  for (std::size_t i = 0; !differs && i < a.num_requests(); ++i)
    differs = !(a.request(i).commodities == c.request(i).commodities) ||
              a.request(i).location != c.request(i).location;
  if (which != 2) {  // the zooming generator is deliberately deterministic
    EXPECT_TRUE(differs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorDeterminism,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(ClusteredGenerator, CertificateIsFeasibleUpperBound) {
  Rng rng(7);
  ClusteredConfig cfg;
  cfg.num_clusters = 4;
  cfg.requests_per_cluster = 8;
  const Instance inst = make_clustered_line(cfg, sqrt_cost(16), rng);
  ASSERT_TRUE(inst.opt_certificate().has_value());
  EXPECT_GT(inst.opt_certificate()->upper_bound, 0.0);
  EXPECT_FALSE(inst.opt_certificate()->exact);
  EXPECT_EQ(inst.num_requests(), 32u);
  // The metric the generator builds must actually be a metric.
  Rng vrng(1);
  EXPECT_FALSE(
      validate_metric_sampled(inst.metric(), 2000, vrng).has_value());
}

TEST(ClusteredGenerator, InterleavingChangesOrderNotMultiset) {
  ClusteredConfig cfg;
  cfg.num_clusters = 3;
  cfg.requests_per_cluster = 5;
  cfg.interleave = true;
  Rng rng1(42);
  const Instance inter = make_clustered_line(cfg, sqrt_cost(16), rng1);
  cfg.interleave = false;
  Rng rng2(42);
  const Instance seq = make_clustered_line(cfg, sqrt_cost(16), rng2);
  ASSERT_EQ(inter.num_requests(), seq.num_requests());
  // Same requests as multisets of (location, demand).
  auto key = [](const Request& r) {
    return std::make_pair(r.location, r.commodities.to_vector());
  };
  std::vector<std::pair<PointId, std::vector<CommodityId>>> a, b;
  for (const Request& r : inter.requests()) a.push_back(key(r));
  for (const Request& r : seq.requests()) b.push_back(key(r));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ZoomingGenerator, GeometricDistancesAndCertificate) {
  ZoomingConfig cfg;
  cfg.num_requests = 10;
  cfg.initial_distance = 32.0;
  cfg.decay = 0.5;
  Rng rng(1);
  const Instance inst = make_zooming_line(cfg, sqrt_cost(8), rng);
  const auto& line = dynamic_cast<const LineMetric&>(inst.metric());
  EXPECT_DOUBLE_EQ(std::abs(line.position(1)), 32.0);
  EXPECT_DOUBLE_EQ(std::abs(line.position(2)), 16.0);
  ASSERT_TRUE(inst.opt_certificate().has_value());
  // Certificate: one facility (cost 2 = sqrt(4)) + sum of distances.
  const double distances = 32.0 * (2.0 - std::pow(0.5, 9));
  EXPECT_NEAR(inst.opt_certificate()->upper_bound, 2.0 + distances, 1e-9);
}

TEST(ServiceNetworkGenerator, ConnectedAndValid) {
  Rng rng(11);
  ServiceNetworkConfig cfg;
  cfg.num_nodes = 24;
  cfg.num_requests = 64;
  const Instance inst = make_service_network(cfg, sqrt_cost(16), rng);
  EXPECT_EQ(inst.num_requests(), 64u);
  EXPECT_EQ(inst.metric().num_points(), 24u);
  Rng vrng(2);
  EXPECT_FALSE(
      validate_metric_sampled(inst.metric(), 2000, vrng).has_value());
}

// ------------------------------------------------------- adversarial -----

TEST(Theorem2Instance, StructureMatchesTheProof) {
  Rng rng(5);
  Theorem2Config cfg;
  cfg.num_commodities = 64;
  const Instance inst = make_theorem2_instance(cfg, rng);
  // ⌊√64⌋ = 8 singleton requests at the single point, all distinct.
  EXPECT_EQ(inst.num_requests(), 8u);
  EXPECT_EQ(inst.metric().num_points(), 1u);
  CommoditySet seen(64);
  for (const Request& r : inst.requests()) {
    EXPECT_EQ(r.commodities.count(), 1u);
    EXPECT_FALSE(seen.intersects(r.commodities));
    seen |= r.commodities;
  }
  // OPT certificate = 1 (one facility with S', cost ceil(8/8) = 1), and it
  // matches the exact single-point solver.
  ASSERT_TRUE(inst.opt_certificate().has_value());
  EXPECT_TRUE(inst.opt_certificate()->exact);
  EXPECT_DOUBLE_EQ(inst.opt_certificate()->upper_bound, 1.0);
  EXPECT_DOUBLE_EQ(solve_single_point_instance(inst), 1.0);
}

TEST(Theorem2Instance, SequenceLength) {
  EXPECT_EQ(theorem2_sequence_length(1), 1u);
  EXPECT_EQ(theorem2_sequence_length(64), 8u);
  EXPECT_EQ(theorem2_sequence_length(100), 10u);
  EXPECT_EQ(theorem2_sequence_length(120), 10u);
}

TEST(Theorem18Instance, CertificateMatchesExactSolver) {
  for (double x : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    Rng rng(3);
    Theorem18Config cfg;
    cfg.num_commodities = 49;
    cfg.exponent_x = x;
    const Instance inst = make_theorem18_instance(cfg, rng);
    ASSERT_TRUE(inst.opt_certificate().has_value()) << "x=" << x;
    EXPECT_NEAR(inst.opt_certificate()->upper_bound,
                solve_single_point_instance(inst), 1e-9)
        << "x=" << x;
  }
}

// ---------------------------------------------------------------- io -----

TEST(InstanceIo, RoundTripPreservesEverything) {
  Rng rng(21);
  UniformLineConfig cfg;
  cfg.num_points = 6;
  cfg.num_requests = 10;
  cfg.num_commodities = 5;
  const Instance original =
      make_uniform_line(cfg, sqrt_cost(5), rng);

  const std::string text = instance_to_string(original);
  const Instance loaded = instance_from_string(text);

  ASSERT_EQ(loaded.num_requests(), original.num_requests());
  EXPECT_EQ(loaded.num_commodities(), original.num_commodities());
  EXPECT_EQ(loaded.name(), original.name());
  for (std::size_t i = 0; i < original.num_requests(); ++i) {
    EXPECT_EQ(loaded.request(i).location, original.request(i).location);
    EXPECT_TRUE(loaded.request(i).commodities ==
                original.request(i).commodities);
  }
  for (PointId a = 0; a < original.metric().num_points(); ++a)
    for (PointId b = 0; b < original.metric().num_points(); ++b)
      EXPECT_DOUBLE_EQ(loaded.metric().distance(a, b),
                       original.metric().distance(a, b));
  const CommoditySet probe(5, {0, 2, 4});
  EXPECT_DOUBLE_EQ(loaded.cost().open_cost(0, probe),
                   original.cost().open_cost(0, probe));
}

TEST(InstanceIo, RoundTripKeepsCertificate) {
  Rng rng(22);
  Theorem2Config cfg;
  cfg.num_commodities = 16;
  const Instance original = make_theorem2_instance(cfg, rng);
  const Instance loaded = instance_from_string(instance_to_string(original));
  ASSERT_TRUE(loaded.opt_certificate().has_value());
  EXPECT_TRUE(loaded.opt_certificate()->exact);
  EXPECT_DOUBLE_EQ(loaded.opt_certificate()->upper_bound, 1.0);
}

TEST(InstanceIo, LinearCostRoundTrip) {
  auto metric = LineMetric::uniform_grid(3, 4.0);
  auto cost = std::make_shared<LinearCostModel>(
      std::vector<double>{1.0, 2.5, 0.25});
  Instance original(metric, cost,
                    {Request{0, CommoditySet(3, {0, 2})},
                     Request{2, CommoditySet(3, {1})}},
                    "linear-io");
  const Instance loaded = instance_from_string(instance_to_string(original));
  const CommoditySet probe(3, {1, 2});
  EXPECT_DOUBLE_EQ(loaded.cost().open_cost(1, probe), 2.75);
}

TEST(InstanceIo, CapacityMapRoundTripsAndStaysOptional) {
  auto metric = LineMetric::uniform_grid(4, 6.0);
  Instance original(metric, sqrt_cost(3),
                    {Request{0, CommoditySet(3, {0, 2})},
                     Request{3, CommoditySet(3, {1})}},
                    "capacity-io");
  // Sparse map: finite caps at two points, the rest uncapacitated —
  // only the finite rows are written.
  auto caps =
      std::make_shared<std::vector<std::uint64_t>>(4, kUncapacitated);
  (*caps)[1] = 2;
  (*caps)[3] = 7;
  original.set_capacities(caps);

  const std::string text = instance_to_string(original);
  EXPECT_NE(text.find("capacities 2\n1 2\n3 7\n"), std::string::npos)
      << text;
  const Instance loaded = instance_from_string(text);
  ASSERT_NE(loaded.capacities(), nullptr);
  EXPECT_TRUE(*loaded.capacities() == *original.capacities());
  EXPECT_EQ(instance_to_string(loaded), text);

  // Uncapacitated instances write no capacities section: existing
  // files and their byte-identical round-trips are untouched.
  Instance plain(metric, sqrt_cost(3),
                 {Request{0, CommoditySet(3, {0})}}, "plain-io");
  const std::string plain_text = instance_to_string(plain);
  EXPECT_EQ(plain_text.find("capacities"), std::string::npos);
  EXPECT_EQ(instance_from_string(plain_text).capacities(), nullptr);

  // An all-infinite map is semantically uncapacitated and serializes
  // to nothing, so it too round-trips to a null map.
  Instance infinite(metric, sqrt_cost(3),
                    {Request{0, CommoditySet(3, {0})}}, "inf-io");
  infinite.set_capacities(std::make_shared<std::vector<std::uint64_t>>(
      4, kUncapacitated));
  const std::string infinite_text = instance_to_string(infinite);
  EXPECT_EQ(infinite_text.find("capacities"), std::string::npos);
  EXPECT_EQ(instance_from_string(infinite_text).capacities(), nullptr);
}

TEST(InstanceIo, MalformedInputsThrowWithContext) {
  EXPECT_THROW(instance_from_string("garbage"), std::invalid_argument);
  EXPECT_THROW(instance_from_string("OMFLP-INSTANCE v1\nname x\n"),
               std::invalid_argument);
  const std::string bad_commodity =
      "OMFLP-INSTANCE v1\nname t\ncommodities 2\nmetric matrix 1\n0\n"
      "cost sizeonly 0 1 2\nrequests 1\n0 1 7\n";
  EXPECT_THROW(instance_from_string(bad_commodity), std::invalid_argument);
}

TEST(InstanceIo, RefusesNonSerializableCostModels) {
  // The general f^σ_m has 2^|S| values per point; write_instance must
  // refuse rather than silently project.
  struct Opaque final : FacilityCostModel {
    CommodityId num_commodities() const noexcept override { return 3; }
    double open_cost(PointId m, const CommoditySet& config) const override {
      check_config(config);
      return 1.0 + m + (config.contains(0) ? 0.5 : 0.0);
    }
    std::string description() const override { return "opaque"; }
  };
  auto metric = std::make_shared<SinglePointMetric>();
  Instance inst(metric, std::make_shared<Opaque>(),
                {Request{0, CommoditySet(3, {0})}});
  EXPECT_THROW((void)instance_to_string(inst), std::invalid_argument);
}

TEST(InstanceIo, PointScaledModelsAreNotSerializable) {
  auto metric = LineMetric::uniform_grid(2, 1.0);
  auto base = std::make_shared<PolynomialCostModel>(2, 1.0);
  auto cost = std::make_shared<PointScaledCostModel>(
      base, std::vector<double>{1.0, 2.0});
  Instance inst(metric, cost, {Request{0, CommoditySet(2, {0})}});
  EXPECT_THROW((void)instance_to_string(inst), std::invalid_argument);
}

TEST(InstanceIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\nOMFLP-INSTANCE v1\n\nname commented\n"
      "commodities 2\n# metric next\nmetric matrix 1\n0\n"
      "cost sizeonly 0 1 1.5\nrequests 1\n0 2 0 1\n";
  const Instance inst = instance_from_string(text);
  EXPECT_EQ(inst.name(), "commented");
  EXPECT_EQ(inst.num_requests(), 1u);
  EXPECT_EQ(inst.request(0).commodities.count(), 2u);
}

}  // namespace
}  // namespace omflp
