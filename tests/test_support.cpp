// Unit tests for the support substrate: CommoditySet algebra, the RNG and
// its distributions, streaming statistics, harmonic numbers, the table
// writer and the parallel_for runner.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/atomic_file.hpp"
#include "support/commodity_set.hpp"
#include "support/harmonic.hpp"
#include "support/parallel.hpp"
#include "support/parse.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace omflp {
namespace {

// ---------------------------------------------------------------- sets ---

TEST(CommoditySet, BasicMembership) {
  CommoditySet s(10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  s.add(3);
  s.add(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.count(), 2u);
  s.remove(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.count(), 1u);
}

TEST(CommoditySet, OutOfRangeThrows) {
  CommoditySet s(4);
  EXPECT_THROW(s.add(4), std::invalid_argument);
  EXPECT_THROW(s.contains(4), std::invalid_argument);
  EXPECT_THROW(s.remove(9), std::invalid_argument);
}

TEST(CommoditySet, FullSetAndTrimAcrossWordBoundary) {
  for (CommodityId universe : {1u, 63u, 64u, 65u, 128u, 130u}) {
    const CommoditySet full = CommoditySet::full_set(universe);
    EXPECT_EQ(full.count(), universe) << "universe " << universe;
    EXPECT_TRUE(full.is_full());
    EXPECT_TRUE(full.contains(universe - 1));
  }
}

TEST(CommoditySet, SetAlgebra) {
  const CommoditySet a(8, {0, 1, 2, 5});
  const CommoditySet b(8, {2, 3, 5, 7});
  EXPECT_EQ((a | b), CommoditySet(8, {0, 1, 2, 3, 5, 7}));
  EXPECT_EQ((a & b), CommoditySet(8, {2, 5}));
  EXPECT_EQ((a - b), CommoditySet(8, {0, 1}));
  EXPECT_TRUE((a & b).is_subset_of(a));
  EXPECT_TRUE((a & b).is_subset_of(b));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE((a - b).intersects(b));
}

TEST(CommoditySet, UniverseMismatchThrows) {
  CommoditySet a(8);
  const CommoditySet b(9);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW((void)a.is_subset_of(b), std::invalid_argument);
}

TEST(CommoditySet, IterationIsSortedAndComplete) {
  const CommoditySet s(130, {0, 63, 64, 65, 129});
  const std::vector<CommodityId> got = s.to_vector();
  EXPECT_EQ(got, (std::vector<CommodityId>{0, 63, 64, 65, 129}));
  EXPECT_EQ(s.first(), 0u);
}

TEST(CommoditySet, FirstOnEmptyThrows) {
  const CommoditySet s(4);
  EXPECT_THROW((void)s.first(), std::invalid_argument);
}

TEST(CommoditySet, HashDistinguishesAndAgrees) {
  const CommoditySet a(16, {1, 5});
  const CommoditySet b(16, {1, 5});
  const CommoditySet c(16, {1, 6});
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(CommoditySet, ToString) {
  EXPECT_EQ(CommoditySet(8, {0, 3, 7}).to_string(), "{0,3,7}/8");
}

// ---------------------------------------------------------------- rng ----

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true;
  bool any_differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    all_equal = all_equal && (va == b.next_u64());
    any_differs_from_c = any_differs_from_c || (va != c.next_u64());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs_from_c);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIndexIsUnbiasedish) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto sample = rng.sample_without_replacement(50, 20);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::size_t v : sample) EXPECT_LT(v, 50u);
  }
}

TEST(Rng, SubstreamsDiffer) {
  const Rng base(99);
  Rng s0 = base.substream(0);
  Rng s1 = base.substream(1);
  bool differ = false;
  for (int i = 0; i < 10; ++i)
    differ = differ || (s0.next_u64() != s1.next_u64());
  EXPECT_TRUE(differ);
}

TEST(ZipfSampler, UniformWhenExponentZero) {
  Rng rng(3);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(ZipfSampler, SkewFavorsLowRanks) {
  Rng rng(3);
  ZipfSampler zipf(16, 1.2);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[8]);
  EXPECT_GT(counts[0], 3 * counts[15]);
}

// -------------------------------------------------------------- stats ----

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(Summary, QuantilesAndCI) {
  Summary s;
  for (int i = 1; i <= 101; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.median(), 51.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 101.0);
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
  const auto [lo, hi] = s.bootstrap_ci95(500, 7);
  EXPECT_LT(lo, s.mean());
  EXPECT_GT(hi, s.mean());
}

TEST(Summary, QuantileValidation) {
  Summary s;
  EXPECT_THROW((void)s.quantile(0.5), std::invalid_argument);
  s.add(1.0);
  EXPECT_THROW((void)s.quantile(1.5), std::invalid_argument);
}

TEST(LinearFitTest, RecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

// ----------------------------------------------------------- harmonic ----

TEST(Harmonic, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(4), 25.0 / 12.0, 1e-12);
}

TEST(Harmonic, AsymptoticMatchesExactSummation) {
  // Straddle the exact/asymptotic switchover at n = 1024.
  for (std::size_t n : {1024u, 1025u, 5000u}) {
    double exact = 0.0;
    for (std::size_t k = 1; k <= n; ++k) exact += 1.0 / static_cast<double>(k);
    EXPECT_NEAR(harmonic(n), exact, 1e-10) << "n=" << n;
  }
}

TEST(Harmonic, PdScalingFactor) {
  // γ = 1/(5·√S·H_n)
  EXPECT_NEAR(pd_scaling_factor(16, 2), 1.0 / (5.0 * 4.0 * 1.5), 1e-12);
}

// -------------------------------------------------------------- table ----

TEST(TableWriter, MarkdownShape) {
  TableWriter t({"a", "bb"});
  t.begin_row().add(1).add("x");
  t.begin_row().add(2.5).add("yy");
  const std::string md = t.to_markdown();
  // Columns are padded to the widest cell ("2.5" is 3 chars wide).
  EXPECT_NE(md.find("| a   | bb |"), std::string::npos) << md;
  EXPECT_NE(md.find("| 2.5 | yy |"), std::string::npos) << md;
  EXPECT_NE(md.find("|-----|----|"), std::string::npos) << md;
}

TEST(TableWriter, CsvEscaping) {
  TableWriter t({"name", "v"});
  t.begin_row().add("with,comma").add(1);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
}

TEST(TableWriter, RowDisciplineEnforced) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add(1), std::invalid_argument);  // no begin_row
  t.begin_row().add(1).add(2);
  EXPECT_THROW(t.add(3), std::invalid_argument);  // row full
}

// ----------------------------------------------------------- parallel ----

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(
                   100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
}

TEST(ParallelFor, InlineWhenSingleThread) {
  int sum = 0;  // no atomics needed: must run on the calling thread
  parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(0, [&](std::size_t) { FAIL(); }, 4);
}

// -------------------------------------------------------- strict parsing ---

TEST(Parse, U64StrictAcceptsPlainDecimals) {
  EXPECT_EQ(parse_u64_strict("0"), 0u);
  EXPECT_EQ(parse_u64_strict("42"), 42u);
  EXPECT_EQ(parse_u64_strict("+7"), 7u);
  // Exactly UINT64_MAX still fits.
  EXPECT_EQ(parse_u64_strict("18446744073709551615"),
            18446744073709551615ull);
}

TEST(Parse, U64StrictRejectsNegativeInput) {
  // Regression: std::strtoull silently wraps negative text, so
  // "--trials -5" used to become 2^64−5.
  EXPECT_FALSE(parse_u64_strict("-5").has_value());
  EXPECT_FALSE(parse_u64_strict("-0").has_value());
}

TEST(Parse, U64StrictRejectsOverflow) {
  // Regression: neither CLI parser checked errno == ERANGE.
  EXPECT_FALSE(parse_u64_strict("18446744073709551616").has_value());
  EXPECT_FALSE(parse_u64_strict("99999999999999999999999").has_value());
}

TEST(Parse, U64StrictRejectsTrailingGarbageAndWhitespace) {
  // Regression: the OMFLP_KERNEL_THRESHOLD / OMFLP_THREADS readers
  // accepted "123abc" as 123 and "8abc" as 8.
  EXPECT_FALSE(parse_u64_strict("123abc").has_value());
  EXPECT_FALSE(parse_u64_strict("8abc").has_value());
  EXPECT_FALSE(parse_u64_strict(" 8").has_value());
  EXPECT_FALSE(parse_u64_strict("8 ").has_value());
  EXPECT_FALSE(parse_u64_strict("").has_value());
  EXPECT_FALSE(parse_u64_strict("+").has_value());
  EXPECT_FALSE(parse_u64_strict("0x10").has_value());
}

TEST(Parse, DoubleStrictAcceptsUsualForms) {
  EXPECT_DOUBLE_EQ(*parse_double_strict("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double_strict("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*parse_double_strict("0"), 0.0);
}

TEST(Parse, DoubleStrictRejectsGarbageOverflowAndNonFinite) {
  EXPECT_FALSE(parse_double_strict("1.5x").has_value());
  EXPECT_FALSE(parse_double_strict("").has_value());
  EXPECT_FALSE(parse_double_strict(" 1").has_value());
  // Every whitespace form strtod would skip, not just ' ' and '\t'.
  EXPECT_FALSE(parse_double_strict("\n1.5").has_value());
  EXPECT_FALSE(parse_double_strict("\r0.4").has_value());
  EXPECT_FALSE(parse_double_strict("\t2").has_value());
  // Hex-float literals are strtod-parseable but not plain decimals.
  EXPECT_FALSE(parse_double_strict("0x10").has_value());
  EXPECT_FALSE(parse_double_strict("0X1p3").has_value());
  // Regression: strtod reports "1e999" as ERANGE + HUGE_VAL; the old CLI
  // parser accepted the resulting inf.
  EXPECT_FALSE(parse_double_strict("1e999").has_value());
  EXPECT_FALSE(parse_double_strict("nan").has_value());
  EXPECT_FALSE(parse_double_strict("inf").has_value());
}

TEST(Parse, ArgWrappersThrowWithFlagName) {
  EXPECT_EQ(parse_u64_arg("12", "--seed"), 12u);
  EXPECT_THROW(parse_u64_arg("-5", "--trials"), std::invalid_argument);
  EXPECT_THROW(parse_u64_arg("18446744073709551616", "--trials"),
               std::invalid_argument);
  EXPECT_THROW(parse_double_arg("1e999", "--threshold"),
               std::invalid_argument);
  try {
    parse_u64_arg("junk", "--seeds");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--seeds"), std::string::npos);
  }
}

TEST(Parse, EnvU64ReadsStrictlyAndFallsBack) {
  ::setenv("OMFLP_TEST_PARSE_ENV", "77", 1);
  EXPECT_EQ(env_u64("OMFLP_TEST_PARSE_ENV"), 77u);
  ::setenv("OMFLP_TEST_PARSE_ENV", "77abc", 1);
  EXPECT_FALSE(env_u64("OMFLP_TEST_PARSE_ENV").has_value());
  ::setenv("OMFLP_TEST_PARSE_ENV", "-3", 1);
  EXPECT_FALSE(env_u64("OMFLP_TEST_PARSE_ENV").has_value());
  ::unsetenv("OMFLP_TEST_PARSE_ENV");
  EXPECT_FALSE(env_u64("OMFLP_TEST_PARSE_ENV").has_value());
}

// ------------------------------------------------- rng state round-trip ---

TEST(RngState, SplitMix64MidSequenceRoundTrip) {
  SplitMix64 original(0xdecafbadULL);
  for (int i = 0; i < 37; ++i) (void)original.next();
  SplitMix64 restored(0);  // deliberately wrong seed
  restored.set_state(original.state());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(restored.next(), original.next()) << "draw " << i;
  }
}

TEST(RngState, Xoshiro256MidSequenceRoundTrip) {
  Xoshiro256 original(12345);
  for (int i = 0; i < 53; ++i) (void)original();
  Xoshiro256 restored(0);
  restored.set_state(original.state());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(restored(), original()) << "draw " << i;
  }
}

TEST(RngState, RoundTripPreservesEveryDistributionBitwise) {
  Rng original(987654321);
  // Warm up across every distribution so the capture point is deep in a
  // mixed call sequence, not a fresh generator.
  for (int i = 0; i < 25; ++i) {
    (void)original.uniform();
    (void)original.uniform_int(-10, 10);
    (void)original.exponential(0.5);
    (void)original.normal();
    (void)original.zipf(100, 1.1);
  }
  Rng restored(1);
  restored.set_state(original.state());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(restored.next_u64(), original.next_u64()) << "u64 draw " << i;
    EXPECT_EQ(restored.uniform(), original.uniform()) << "uniform draw " << i;
    EXPECT_EQ(restored.normal(), original.normal()) << "normal draw " << i;
  }
}

TEST(RngState, RoundTripCarriesTheCachedNormalHalf) {
  // Marsaglia polar generates pairs; after an odd number of normal()
  // calls one half sits in the cache. A restore that dropped it would
  // shift every subsequent normal draw by one.
  Rng original(42);
  (void)original.normal();  // consumes one half, caches the other
  const Rng::State state = original.state();
  EXPECT_TRUE(state.has_cached_normal);
  Rng restored(7);
  restored.set_state(state);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(restored.normal(), original.normal()) << "normal draw " << i;
  }
}

// ------------------------------------------------------ atomic file io ---

namespace fs = std::filesystem;

// Fresh scratch directory per test, removed on destruction.
struct AtomicFileScratch {
  fs::path dir;
  explicit AtomicFileScratch(const std::string& tag)
      : dir(fs::temp_directory_path() /
            ("omflp-atomic-" + tag + "-" + std::to_string(::getpid()))) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~AtomicFileScratch() { fs::remove_all(dir); }
  std::string path(const std::string& name) const {
    return (dir / name).string();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AtomicFile, WriteFileAtomicCreatesAndReplaces) {
  AtomicFileScratch scratch("write");
  const std::string path = scratch.path("artifact.txt");
  write_file_atomic(path, "first version\n");
  EXPECT_EQ(slurp(path), "first version\n");
  write_file_atomic(path, "second version\n");
  EXPECT_EQ(slurp(path), "second version\n");
  EXPECT_FALSE(fs::exists(atomic_temp_path(path)));
}

TEST(AtomicFile, AbandonedWriterLeavesOldFileIntactAndNoTemp) {
  AtomicFileScratch scratch("abandon");
  const std::string path = scratch.path("artifact.txt");
  write_file_atomic(path, "precious original\n");
  {
    // Simulates a crash / exception mid-write: the writer is destroyed
    // with partial content staged but commit() never called.
    AtomicFileWriter writer(path);
    writer.stream() << "half-written garb";
    EXPECT_TRUE(fs::exists(atomic_temp_path(path)));
  }
  EXPECT_EQ(slurp(path), "precious original\n");
  EXPECT_FALSE(fs::exists(atomic_temp_path(path)));
}

TEST(AtomicFile, CommitPublishesFullContentExactlyOnce) {
  AtomicFileScratch scratch("commit");
  const std::string path = scratch.path("artifact.txt");
  write_file_atomic(path, "old\n");
  AtomicFileWriter writer(path);
  writer.stream() << "line 1\n";
  // Nothing published until commit: readers still see the old content.
  EXPECT_EQ(slurp(path), "old\n");
  writer.stream() << "line 2\n";
  writer.commit();
  EXPECT_TRUE(writer.committed());
  EXPECT_EQ(slurp(path), "line 1\nline 2\n");
  EXPECT_FALSE(fs::exists(atomic_temp_path(path)));
  writer.commit();  // idempotent
  EXPECT_EQ(slurp(path), "line 1\nline 2\n");
}

TEST(AtomicFile, WriterFailureThrowsAndLeavesDestinationUntouched) {
  AtomicFileScratch scratch("fail");
  const std::string missing =
      scratch.path("no-such-subdir") + "/artifact.txt";
  EXPECT_THROW(write_file_atomic(missing, "content"), std::runtime_error);
  EXPECT_FALSE(fs::exists(missing));
}

}  // namespace
}  // namespace omflp
