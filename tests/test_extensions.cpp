// Tests for the paper's §5 / §1.1 extension features:
//   * heavy commodities (HeavyTailCostModel, detect_heavy_commodities,
//     PdOptions::excluded_from_prediction);
//   * instance transforms (per-commodity split, shuffling, scaling) and
//     the 1-homogeneity of the algorithms under scaling;
//   * the exact decomposition PD[no-prediction] ≡ per-commodity Fotakis.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/greedy.hpp"
#include "baseline/per_commodity.hpp"
#include "core/pd_omflp.hpp"
#include "core/rand_omflp.hpp"
#include "cost/checks.hpp"
#include "cost/cost_models.hpp"
#include "cost/heavy.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "instance/transforms.hpp"
#include "metric/line_metric.hpp"
#include "offline/opt_estimate.hpp"
#include "solution/verifier.hpp"

namespace omflp {
namespace {

// --------------------------------------------------- heavy commodities ---

std::shared_ptr<HeavyTailCostModel> heavy_model(CommodityId s,
                                                CommodityId heavy_commodity,
                                                double weight,
                                                double base_scale = 2.0) {
  std::vector<double> weights(s, 0.0);
  weights[heavy_commodity] = weight;
  return std::make_shared<HeavyTailCostModel>(
      s,
      [base_scale](CommodityId k) {
        return base_scale * std::sqrt(static_cast<double>(k));
      },
      CommoditySet::singleton(s, heavy_commodity), std::move(weights));
}

TEST(HeavyTailCostModel, PricesBasePlusHeavyAdditively) {
  auto model = heavy_model(9, 8, 1000.0);
  // Non-heavy part only: 2*sqrt(k).
  EXPECT_NEAR(model->open_cost(0, CommoditySet(9, {0, 1, 2, 3})), 4.0,
              1e-12);
  // Heavy singleton: just the weight.
  EXPECT_NEAR(model->open_cost(0, CommoditySet(9, {8})), 1000.0, 1e-12);
  // Mixed: base of the non-heavy part + weight.
  EXPECT_NEAR(model->open_cost(0, CommoditySet(9, {0, 8})), 2.0 + 1000.0,
              1e-12);
  EXPECT_NEAR(model->full_cost(0), 2.0 * std::sqrt(8.0) + 1000.0, 1e-12);
}

TEST(HeavyTailCostModel, SubadditiveButViolatesCondition1) {
  auto model = heavy_model(6, 5, 50.0);
  // Subadditivity survives (base subadditive + additive heavy part)...
  EXPECT_FALSE(check_subadditivity_exhaustive(*model, 1).has_value());
  // ...but Condition 1 fails: a non-heavy singleton's per-commodity cost
  // (2) is far below the full-set average ((2*sqrt(5)+50)/6 ≈ 9).
  EXPECT_TRUE(check_condition1_exhaustive(*model, 1).has_value());
}

TEST(DetectHeavy, FlagsExactlyTheHeavySet) {
  auto model = heavy_model(9, 8, 1000.0);
  const CommoditySet heavy = detect_heavy_commodities(*model, 4, 3.0);
  EXPECT_TRUE(heavy == CommoditySet::singleton(9, 8));

  // A clean class-C model has no heavy commodities at factor >= ~|S|/...
  PolynomialCostModel clean(9, 1.0);
  EXPECT_TRUE(detect_heavy_commodities(clean, 4, 3.5).empty());
  EXPECT_THROW(detect_heavy_commodities(clean, 4, 0.5),
               std::invalid_argument);
}

TEST(HeavyExclusion, ExcludedVariantBundlesCheaplyWherePlainCannot) {
  // S = 9 with heavy commodity 8 (weight 1000). Five requests demand the
  // eight non-heavy commodities at one point. Plain PD can only predict
  // the full S — the poisoned large facility costs ~1005, so it falls
  // back to 8 singletons (cost 16). The §5 variant predicts S \ {8} and
  // opens one 2·sqrt(8) ≈ 5.66 facility — the exact offline optimum.
  auto metric = std::make_shared<SinglePointMetric>();
  auto cost = heavy_model(9, 8, 1000.0);
  CommoditySet bundle(9);
  for (CommodityId e = 0; e < 8; ++e) bundle.add(e);
  std::vector<Request> requests(5, Request{0, bundle});
  Instance inst(metric, cost, std::move(requests), "heavy-shared");

  PdOmflp plain;
  const SolutionLedger plain_ledger = run_online(plain, inst);
  EXPECT_FALSE(verify_solution(inst, plain_ledger).has_value());
  EXPECT_NEAR(plain_ledger.total_cost(), 16.0, 1e-9);
  EXPECT_EQ(plain_ledger.num_large_facilities(), 0u);

  PdOmflp excluded{PdOptions{
      .excluded_from_prediction = detect_heavy_commodities(*cost, 1, 3.0)}};
  const SolutionLedger excl_ledger = run_online(excluded, inst);
  EXPECT_FALSE(verify_solution(inst, excl_ledger).has_value());
  EXPECT_NEAR(excl_ledger.total_cost(), 2.0 * std::sqrt(8.0), 1e-9);
  // The opened facility is "large minus heavy": 8 commodities, not 9.
  ASSERT_EQ(excl_ledger.num_facilities(), 1u);
  EXPECT_EQ(excl_ledger.facility(0).config.count(), 8u);
  EXPECT_FALSE(excl_ledger.facility(0).config.contains(8));
}

TEST(HeavyExclusion, HeavyCommodityStillServedThroughSmallFacilities) {
  auto metric = std::make_shared<SinglePointMetric>();
  auto cost = heavy_model(9, 8, 100.0);
  CommoditySet bundle(9);
  for (CommodityId e = 0; e < 8; ++e) bundle.add(e);
  std::vector<Request> requests(3, Request{0, bundle});
  // One request needs the heavy commodity together with a light one.
  requests.push_back(Request{0, CommoditySet(9, {0, 8})});
  Instance inst(metric, cost, std::move(requests), "heavy-mixed");

  PdOmflp excluded{PdOptions{
      .excluded_from_prediction = CommoditySet::singleton(9, 8)}};
  const SolutionLedger ledger = run_online(excluded, inst);
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
  // The heavy commodity got its own dedicated facility at weight 100.
  bool heavy_facility = false;
  for (const auto& f : ledger.facilities())
    if (f.config.contains(8)) {
      heavy_facility = true;
      EXPECT_EQ(f.config.count(), 1u);
      EXPECT_NEAR(f.open_cost, 100.0, 1e-9);
    }
  EXPECT_TRUE(heavy_facility);
}

class HeavyValidity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeavyValidity, RandomWorkloadsStayValidWithExclusions) {
  Rng rng(GetParam());
  UniformLineConfig cfg;
  cfg.num_points = 10;
  cfg.num_requests = 40;
  cfg.num_commodities = 8;
  cfg.max_demand = 5;
  auto cost = heavy_model(8, 7, 40.0);
  const Instance inst = make_uniform_line(cfg, cost, rng);
  PdOmflp excluded{PdOptions{
      .excluded_from_prediction = CommoditySet::singleton(8, 7)}};
  const SolutionLedger ledger = run_online(excluded, inst);
  const auto violation = verify_solution(inst, ledger);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->what : "");
  // No opened facility mixes the heavy commodity into a bundle.
  for (const auto& f : ledger.facilities())
    if (f.config.contains(7)) {
      EXPECT_EQ(f.config.count(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeavyValidity,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(HeavyExclusion, UniverseMismatchRejected) {
  auto metric = std::make_shared<SinglePointMetric>();
  auto cost = std::make_shared<PolynomialCostModel>(4, 1.0);
  PdOmflp bad{PdOptions{
      .excluded_from_prediction = CommoditySet::singleton(9, 8)}};
  EXPECT_THROW(bad.reset(ProblemContext{metric, cost}),
               std::invalid_argument);
}

// --------------------------------------------------------- transforms ----

TEST(SplitPerCommodity, StructureAndValidity) {
  Rng rng(3);
  UniformLineConfig cfg;
  cfg.num_points = 8;
  cfg.num_requests = 20;
  cfg.num_commodities = 5;
  cfg.max_demand = 4;
  auto cost = std::make_shared<PolynomialCostModel>(5, 1.0);
  const Instance original = make_uniform_line(cfg, cost, rng);
  const Instance split = split_per_commodity(original);

  std::size_t expected = 0;
  for (const Request& r : original.requests())
    expected += r.commodities.count();
  EXPECT_EQ(split.num_requests(), expected);
  for (const Request& r : split.requests())
    EXPECT_EQ(r.commodities.count(), 1u);
  EXPECT_TRUE(split.demanded_union() == original.demanded_union());

  PdOmflp pd;
  const SolutionLedger ledger = run_online(pd, split);
  EXPECT_FALSE(verify_solution(split, ledger).has_value());
}

TEST(SplitPerCommodity, SimulatesThePerCommodityChargeModel) {
  // §1.1: the alternative model (charge a path per commodity) is simulated
  // by splitting requests. Concretely: for any fixed facility placement,
  // serving the split sequence under per-facility charging costs exactly
  // what serving the original costs under per-commodity charging. We
  // check with AlwaysOpen, whose decisions depend only on the current
  // request: on the split instance it opens singletons with zero
  // connection cost; total opening equals Σ_r Σ_{e∈s_r} f^{{e}}.
  auto metric = std::make_shared<LineMetric>(std::vector<double>{0.0, 5.0});
  auto cost = std::make_shared<PolynomialCostModel>(3, 2.0);  // linear
  Instance original(metric, cost,
                    {Request{0, CommoditySet(3, {0, 1})},
                     Request{1, CommoditySet(3, {1, 2})}},
                    "split-demo");
  const Instance split = split_per_commodity(original);
  AlwaysOpen alg;
  const SolutionLedger split_ledger = run_online(alg, split);
  const SolutionLedger orig_ledger =
      run_online(alg, original, ConnectionChargePolicy::kPerCommodity);
  // Linear costs: opening decomposes exactly, connections are zero.
  EXPECT_NEAR(split_ledger.total_cost(), orig_ledger.total_cost(), 1e-9);
}

TEST(ShuffleRequests, PermutesAndKeepsCertificate) {
  Rng rng(5);
  ClusteredConfig cfg;
  cfg.num_clusters = 3;
  cfg.requests_per_cluster = 8;
  cfg.num_commodities = 8;
  cfg.commodities_per_cluster = 3;
  auto cost = std::make_shared<PolynomialCostModel>(8, 1.0);
  const Instance original = make_clustered_line(cfg, cost, rng);
  Rng shuffle_rng(9);
  const Instance shuffled = shuffle_requests(original, shuffle_rng);
  ASSERT_EQ(shuffled.num_requests(), original.num_requests());
  ASSERT_TRUE(shuffled.opt_certificate().has_value());
  EXPECT_DOUBLE_EQ(shuffled.opt_certificate()->upper_bound,
                   original.opt_certificate()->upper_bound);
  // Same multiset of requests.
  auto key = [](const Request& r) {
    return std::make_pair(r.location, r.commodities.to_vector());
  };
  std::vector<std::pair<PointId, std::vector<CommodityId>>> a, b;
  for (const Request& r : original.requests()) a.push_back(key(r));
  for (const Request& r : shuffled.requests()) b.push_back(key(r));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

Instance scale_test_base() {
  Rng rng(11);
  UniformLineConfig cfg;
  cfg.num_points = 8;
  cfg.num_requests = 30;
  cfg.num_commodities = 5;
  cfg.max_demand = 3;
  auto cost = std::make_shared<PolynomialCostModel>(5, 1.0, 1.3);
  return make_uniform_line(cfg, cost, rng);
}

class PdScaleInvariance : public ::testing::TestWithParam<double> {};

TEST_P(PdScaleInvariance, PdCostIsOneHomogeneousForAnyLambda) {
  // Every constraint of Algorithm 1 is 1-homogeneous in (distances,
  // costs), so scaling the instance by any λ scales PD's cost exactly.
  const double lambda = GetParam();
  const Instance base = scale_test_base();
  const Instance scaled = scale_instance(base, lambda);
  PdOmflp pd_base, pd_scaled;
  EXPECT_NEAR(run_online(pd_scaled, scaled).total_cost(),
              lambda * run_online(pd_base, base).total_cost(),
              1e-6 * lambda);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PdScaleInvariance,
                         ::testing::Values(0.25, 1.0, 3.0, 117.0));

class RandScaleInvariance : public ::testing::TestWithParam<double> {};

TEST_P(RandScaleInvariance, RandCostIsOneHomogeneousForPowersOfTwo) {
  // RAND's power-of-two cost classes commute with scaling only when λ is
  // itself a power of two (round_down_pow2(2^k·x) = 2^k·round_down_pow2(x));
  // then the class structure, every coin probability and hence the exact
  // decision sequence are preserved. For other λ the rounding genuinely
  // changes the algorithm — no invariance is claimed or expected.
  const double lambda = GetParam();
  const Instance base = scale_test_base();
  const Instance scaled = scale_instance(base, lambda);
  RandOmflp rand_base{RandOptions{.seed = 4}};
  RandOmflp rand_scaled{RandOptions{.seed = 4}};
  EXPECT_NEAR(run_online(rand_scaled, scaled).total_cost(),
              lambda * run_online(rand_base, base).total_cost(),
              1e-6 * lambda);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, RandScaleInvariance,
                         ::testing::Values(0.25, 1.0, 8.0, 128.0));

TEST(ScaleInstance, CertificateScales) {
  Rng rng(2);
  Theorem2Config cfg;
  cfg.num_commodities = 25;
  const Instance base = make_theorem2_instance(cfg, rng);
  const Instance scaled = scale_instance(base, 7.0);
  ASSERT_TRUE(scaled.opt_certificate().has_value());
  EXPECT_DOUBLE_EQ(scaled.opt_certificate()->upper_bound, 7.0);
  EXPECT_TRUE(scaled.opt_certificate()->exact);
}

// ----------------------------------------- decomposition equivalence -----

class Decomposition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Decomposition, PdWithoutPredictionEqualsPerCommodityFotakis) {
  // With constraints (2)/(4) disabled, PD's commodities never interact:
  // each evolves exactly as an independent single-commodity Fotakis run.
  // The two implementations must therefore produce the same cost and the
  // same facility multiset.
  Rng rng(GetParam() * 101 + 7);
  UniformLineConfig cfg;
  cfg.num_points = 9;
  cfg.num_requests = 40;
  cfg.num_commodities = 6;
  cfg.max_demand = 4;
  auto cost = std::make_shared<PolynomialCostModel>(6, 1.0, 2.2);
  const Instance inst = make_uniform_line(cfg, cost, rng);

  PdOmflp no_pred{PdOptions{.prediction = PdOptions::Prediction::kOff}};
  auto per_commodity = PerCommodityAdapter::fotakis();
  const SolutionLedger lp = run_online(no_pred, inst);
  const SolutionLedger lf = run_online(*per_commodity, inst);

  EXPECT_NEAR(lp.total_cost(), lf.total_cost(), 1e-7);
  EXPECT_EQ(lp.num_facilities(), lf.num_facilities());
  auto facility_multiset = [](const SolutionLedger& ledger) {
    std::vector<std::pair<PointId, std::vector<CommodityId>>> out;
    for (const auto& f : ledger.facilities())
      out.emplace_back(f.location, f.config.to_vector());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(facility_multiset(lp), facility_multiset(lf));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Decomposition,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace omflp
