// Unit and property tests for the metric substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "metric/distance_oracle.hpp"
#include "metric/euclidean_metric.hpp"
#include "metric/graph_metric.hpp"
#include "metric/line_metric.hpp"
#include "metric/matrix_metric.hpp"
#include "metric/validation.hpp"
#include "support/rng.hpp"

namespace omflp {
namespace {

TEST(LineMetric, Distances) {
  LineMetric line({0.0, 3.0, -2.0});
  EXPECT_DOUBLE_EQ(line.distance(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(line.distance(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(line.distance(2, 2), 0.0);
  EXPECT_THROW((void)line.distance(0, 3), std::invalid_argument);
}

TEST(LineMetric, UniformGrid) {
  auto grid = LineMetric::uniform_grid(5, 8.0);
  EXPECT_EQ(grid->num_points(), 5u);
  EXPECT_DOUBLE_EQ(grid->position(0), 0.0);
  EXPECT_DOUBLE_EQ(grid->position(4), 8.0);
  EXPECT_DOUBLE_EQ(grid->distance(0, 4), 8.0);
  EXPECT_DOUBLE_EQ(grid->distance(1, 2), 2.0);
}

TEST(LineMetric, RejectsNonFinite) {
  EXPECT_THROW(LineMetric({0.0, std::nan("")}), std::invalid_argument);
  EXPECT_THROW(LineMetric({}), std::invalid_argument);
}

TEST(SinglePointMetric, Degenerate) {
  SinglePointMetric m;
  EXPECT_EQ(m.num_points(), 1u);
  EXPECT_DOUBLE_EQ(m.distance(0, 0), 0.0);
  EXPECT_THROW((void)m.distance(0, 1), std::invalid_argument);
}

TEST(EuclideanMetric, PlaneDistances) {
  EuclideanMetric m(2, {0.0, 0.0, 3.0, 4.0, -3.0, -4.0});
  EXPECT_EQ(m.num_points(), 3u);
  EXPECT_DOUBLE_EQ(m.distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.distance(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(m.coordinate(1, 1), 4.0);
}

TEST(EuclideanMetric, ValidatesShape) {
  EXPECT_THROW(EuclideanMetric(2, {1.0, 2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(EuclideanMetric(0, {1.0}), std::invalid_argument);
}

TEST(MatrixMetric, AcceptsValidRejectsInvalid) {
  MatrixMetric ok({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_DOUBLE_EQ(ok.distance(0, 1), 1.0);
  // Asymmetric.
  EXPECT_THROW(MatrixMetric({{0.0, 1.0}, {2.0, 0.0}}),
               std::invalid_argument);
  // Nonzero diagonal.
  EXPECT_THROW(MatrixMetric({{1.0, 1.0}, {1.0, 0.0}}),
               std::invalid_argument);
  // Negative entry.
  EXPECT_THROW(MatrixMetric({{0.0, -1.0}, {-1.0, 0.0}}),
               std::invalid_argument);
  // Not square.
  EXPECT_THROW(MatrixMetric({{0.0, 1.0}}), std::invalid_argument);
}

TEST(GraphMetric, PathGraphShortestPaths) {
  // 0 -1- 1 -2- 2, plus a shortcut 0-2 of weight 5 (longer than the path).
  GraphMetric g(3, {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 5.0}});
  EXPECT_DOUBLE_EQ(g.distance(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(g.distance(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.distance(1, 1), 0.0);
}

TEST(GraphMetric, ShortcutWins) {
  GraphMetric g(3, {{0, 1, 10.0}, {1, 2, 10.0}, {0, 2, 1.0}});
  EXPECT_DOUBLE_EQ(g.distance(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.distance(0, 1), 10.0);  // 0-2-1 = 11 > 10
}

TEST(GraphMetric, DisconnectedThrows) {
  EXPECT_THROW(GraphMetric(3, {{0, 1, 1.0}}), std::invalid_argument);
}

TEST(GraphMetric, NegativeWeightThrows) {
  EXPECT_THROW(GraphMetric(2, {{0, 1, -1.0}}), std::invalid_argument);
}

TEST(MetricValidation, AcceptsRealMetrics) {
  auto grid = LineMetric::uniform_grid(20, 10.0);
  EXPECT_FALSE(validate_metric_exhaustive(*grid).has_value());

  Rng rng(5);
  std::vector<double> coords;
  for (int i = 0; i < 30; ++i) coords.push_back(rng.uniform(-5.0, 5.0));
  EuclideanMetric eu(3, coords);
  EXPECT_FALSE(validate_metric_exhaustive(eu).has_value());

  GraphMetric g(5, {{0, 1, 1.0},
                    {1, 2, 2.0},
                    {2, 3, 1.5},
                    {3, 4, 0.5},
                    {4, 0, 2.5}});
  EXPECT_FALSE(validate_metric_exhaustive(g).has_value());
}

TEST(MetricValidation, CatchesTriangleViolation) {
  // Raw edge-weight "distances" that violate the triangle inequality:
  // d(0,2)=10 > d(0,1)+d(1,2)=2.
  struct Broken final : MetricSpace {
    std::size_t num_points() const noexcept override { return 3; }
    double distance(PointId a, PointId b) const override {
      if (a == b) return 0.0;
      if ((a == 0 && b == 2) || (a == 2 && b == 0)) return 10.0;
      return 1.0;
    }
    std::string description() const override { return "broken"; }
  } broken;
  const auto violation = validate_metric_exhaustive(broken);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->what.find("triangle"), std::string::npos);

  Rng rng(1);
  EXPECT_TRUE(validate_metric_sampled(broken, 2000, rng).has_value());
}

TEST(MetricValidation, CatchesAsymmetry) {
  struct Asym final : MetricSpace {
    std::size_t num_points() const noexcept override { return 2; }
    double distance(PointId a, PointId b) const override {
      if (a == b) return 0.0;
      return a < b ? 1.0 : 2.0;
    }
    std::string description() const override { return "asym"; }
  } asym;
  const auto violation = validate_metric_exhaustive(asym);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->what.find("asymmetric"), std::string::npos);
}

TEST(DistanceOracle, CachedMatchesDirect) {
  auto grid = LineMetric::uniform_grid(32, 100.0);
  DistanceOracle cached(grid);
  EXPECT_TRUE(cached.cached());
  DistanceOracle direct(grid, /*cache_limit=*/4);
  EXPECT_FALSE(direct.cached());
  for (PointId a = 0; a < 32; ++a)
    for (PointId b = 0; b < 32; ++b)
      EXPECT_DOUBLE_EQ(cached(a, b), direct(a, b));
}

namespace {

/// One representative of each shipped metric family, seeded so distances
/// exercise non-trivial double values.
std::vector<MetricPtr> representative_metrics() {
  Rng rng(7);
  std::vector<MetricPtr> metrics;

  std::vector<double> positions;
  for (int i = 0; i < 12; ++i) positions.push_back(rng.uniform(-50.0, 50.0));
  metrics.push_back(std::make_shared<LineMetric>(positions));

  std::vector<double> coords;
  for (int i = 0; i < 10 * 3; ++i) coords.push_back(rng.uniform(0.0, 10.0));
  metrics.push_back(std::make_shared<EuclideanMetric>(3, coords));

  std::vector<GraphEdge> edges;
  for (PointId v = 1; v < 9; ++v)
    edges.push_back({static_cast<PointId>(rng.uniform_index(v)), v,
                     rng.uniform(0.5, 4.0)});
  edges.push_back({0, 8, 11.0});
  metrics.push_back(std::make_shared<GraphMetric>(9, edges));

  std::vector<std::vector<double>> matrix(6, std::vector<double>(6, 0.0));
  for (PointId a = 0; a < 6; ++a)
    for (PointId b = a + 1; b < 6; ++b)
      matrix[a][b] = matrix[b][a] = 1.0 + rng.uniform(0.0, 1.0);
  metrics.push_back(std::make_shared<MatrixMetric>(matrix));

  return metrics;
}

}  // namespace

// The fallback path (cache_limit = 0) must be *bit*-identical to the
// cached path on every metric family: both evaluate the same
// MetricSpace::distance, the cache merely memoizes it. EXPECT_EQ on
// doubles (not NEAR) is the point of this test.
TEST(DistanceOracle, FallbackBitIdenticalToCachedOnAllMetricTypes) {
  for (const MetricPtr& metric : representative_metrics()) {
    DistanceOracle cached(metric);
    DistanceOracle fallback(metric, /*cache_limit=*/0);
    ASSERT_TRUE(cached.cached()) << metric->description();
    ASSERT_FALSE(fallback.cached()) << metric->description();
    const std::size_t n = metric->num_points();
    for (PointId a = 0; a < n; ++a)
      for (PointId b = 0; b < n; ++b)
        EXPECT_EQ(cached(a, b), fallback(a, b))
            << metric->description() << " at (" << a << ", " << b << ")";
  }
}

// The distance_lookups counter must tick on both paths — the whole point
// of the telemetry is that cached and fallback runs report the same
// *work* even though their wall times differ.
TEST(DistanceOracle, LookupCounterCountsBothPaths) {
  auto grid = LineMetric::uniform_grid(8, 10.0);
  DistanceOracle cached(grid);
  DistanceOracle fallback(grid, /*cache_limit=*/0);

  PerfCounters counters;
  {
    PerfScope scope(counters);
    for (PointId a = 0; a < 8; ++a)
      for (PointId b = 0; b < 8; ++b) (void)cached(a, b);
  }
  EXPECT_EQ(counters.distance_lookups, 64u);

  counters.reset();
  {
    PerfScope scope(counters);
    for (PointId a = 0; a < 8; ++a)
      for (PointId b = 0; b < 8; ++b) (void)fallback(a, b);
  }
  EXPECT_EQ(counters.distance_lookups, 64u);

  // Without an installed sink nothing is counted.
  counters.reset();
  (void)cached(0, 1);
  (void)fallback(0, 1);
  EXPECT_EQ(counters.distance_lookups, 0u);
}

TEST(MetricSpaceBase, NearestPoint) {
  LineMetric line({0.0, 10.0, 1.0, 50.0});
  EXPECT_EQ(line.nearest_point(0), 2u);
  EXPECT_EQ(line.nearest_point(3), 1u);
}

TEST(Descriptions, AreInformative) {
  EXPECT_NE(LineMetric({0.0}).description().find("line"),
            std::string::npos);
  EXPECT_NE(GraphMetric(2, {{0, 1, 1.0}}).description().find("graph"),
            std::string::npos);
  EXPECT_NE(EuclideanMetric(2, {0.0, 0.0}).description().find("euclidean"),
            std::string::npos);
  const std::vector<std::vector<double>> one_by_one{{0.0}};
  EXPECT_NE(MatrixMetric(one_by_one).description().find("matrix"),
            std::string::npos);
}

}  // namespace
}  // namespace omflp
