// Metamorphic test harness: random instances checked against invariance
// relations between runs (tests/metamorphic_common.hpp generates the
// instances):
//
//   * uniform scaling — the OMFLP objective is 1-homogeneous, so scaling
//     every distance and opening cost by a power-of-two λ must scale
//     every algorithm's cost by exactly λ, bitwise (power-of-two factors
//     only touch floating-point exponents, so every comparison inside
//     the algorithms is preserved verbatim);
//   * commodity-permutation equivariance — relabeling commodities (and
//     moving the per-commodity linear weights with them) yields an
//     isomorphic instance, so deterministic algorithms must pay the
//     same total;
//   * request-prefix monotonicity — running on a longer prefix of the
//     same sequence is, for an online algorithm, an extension of the
//     same run: opening cost is non-decreasing in the prefix length
//     (facilities never close), with the algorithm's coin stream pinned
//     by the seed;
//   * rollback-then-replay — a request that arrives at an already-open
//     facility's location (demanding a subset of its config) is served
//     for free; after it departs, PD/Fotakis bid rollback must leave the
//     run bitwise identical to the timeline where it never arrived.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "core/online_algorithm.hpp"
#include "core/stream_runner.hpp"
#include "instance/event_stream.hpp"
#include "instance/transforms.hpp"
#include "metamorphic_common.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/registry_util.hpp"
#include "solution/verifier.hpp"

namespace omflp {
namespace {

using metamorphic::GeneratedInstance;
using metamorphic::GeneratorOptions;
using metamorphic::permute_commodities;
using metamorphic::random_instance;

double roster_cost(const std::string& algorithm, std::uint64_t seed,
                   const Instance& instance) {
  auto algo = default_algorithm_registry().make(
      algorithm, derive_algorithm_seed(seed));
  const SolutionLedger ledger = run_online(*algo, instance);
  const auto violation = verify_solution(instance, ledger);
  EXPECT_FALSE(violation.has_value())
      << algorithm << ": " << (violation ? violation->what : "");
  return ledger.total_cost();
}

TEST(Metamorphic, UniformScalingScalesEveryAlgorithmCostExactly) {
  const AlgorithmRegistry& registry = default_algorithm_registry();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const GeneratedInstance gen = random_instance(seed);
    for (const std::string& name : registry.names()) {
      const double base = roster_cost(name, seed, gen.instance);
      for (const double lambda : {0.25, 4.0}) {
        const Instance scaled = scale_instance(gen.instance, lambda);
        const double scaled_cost = roster_cost(name, seed, scaled);
        // Bitwise, not NEAR: λ is a power of two, so the scaled run's
        // decisions and its total are exact multiples.
        EXPECT_EQ(scaled_cost, lambda * base)
            << name << " seed " << seed << " lambda " << lambda;
      }
    }
  }
}

TEST(Metamorphic, CommodityPermutationEquivariance) {
  GeneratorOptions options;
  options.linear_cost_only = true;
  const AlgorithmRegistry& registry = default_algorithm_registry();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const GeneratedInstance gen = random_instance(seed, options);
    const CommodityId s = gen.instance.num_commodities();
    std::vector<CommodityId> perm(s);
    std::iota(perm.begin(), perm.end(), CommodityId{0});
    Rng perm_rng(seed * 7919 + 13);
    perm_rng.shuffle(std::span<CommodityId>(perm));

    const Instance permuted =
        permute_commodities(gen.instance, gen.linear_weights, perm);
    for (const std::string& name : registry.names()) {
      if (registry.spec(name).randomized)
        continue;  // coin draws bind to commodity order; only the
                   // deterministic roster is label-equivariant run-to-run
      const double base = roster_cost(name, seed, gen.instance);
      const double relabeled = roster_cost(name, seed, permuted);
      EXPECT_NEAR(relabeled, base, 1e-9 * std::max(1.0, std::abs(base)))
          << name << " seed " << seed;
    }
  }
}

TEST(Metamorphic, OpeningCostIsMonotoneInTheRequestPrefix) {
  const AlgorithmRegistry& registry = default_algorithm_registry();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const GeneratedInstance gen = random_instance(seed);
    const std::vector<Request>& requests = gen.instance.requests();
    const std::size_t n = requests.size();
    for (const std::string& name : registry.names()) {
      double previous_opening = 0.0;
      for (std::size_t k = 0; k <= n; k += std::max<std::size_t>(1, n / 6)) {
        const Instance prefix(
            gen.instance.metric_ptr(), gen.instance.cost_ptr(),
            std::vector<Request>(requests.begin(), requests.begin() + k),
            "prefix");
        auto algo = default_algorithm_registry().make(
            name, derive_algorithm_seed(seed));
        const SolutionLedger ledger = run_online(*algo, prefix);
        // An online run on a longer prefix extends the shorter run
        // verbatim (same decisions, same coins), so opening cost can
        // only grow — facilities never close.
        EXPECT_GE(ledger.opening_cost(), previous_opening)
            << name << " seed " << seed << " prefix " << k;
        previous_opening = ledger.opening_cost();
      }
    }
  }
}

TEST(Metamorphic, RollbackThenReplayEqualsNeverArrived) {
  // The invariant is conditional: facility openings are irrevocable, so
  // a departed request's run can only replay as never-arrived when
  // serving it opened nothing. A rider at an open facility's location
  // usually connects for free at dual zero — but a zero-delta *opening*
  // event (the prefix left some bid pool exactly tight) may legitimately
  // win instead, so those trials are skipped and counted.
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const GeneratedInstance gen = random_instance(seed);
    const std::vector<Request>& requests = gen.instance.requests();
    const std::size_t split = std::max<std::size_t>(1, requests.size() / 2);

    for (const std::string& name : {std::string("pd"),
                                    std::string("fotakis")}) {
      // Discover a facility the algorithm opens on the prefix; a request
      // at its exact location demanding part of its config is served at
      // distance zero — no bids move, nothing opens — so after rollback
      // the suffix must replay as if it never arrived.
      const Instance prefix_instance(
          gen.instance.metric_ptr(), gen.instance.cost_ptr(),
          std::vector<Request>(requests.begin(), requests.begin() + split),
          "prefix");
      const SolutionLedger prefix_ledger = run_online(
          *default_algorithm_registry().make(name,
                                             derive_algorithm_seed(seed)),
          prefix_instance);
      ASSERT_GT(prefix_ledger.num_facilities(), 0u);
      const OpenFacilityRecord& facility = prefix_ledger.facilities()[0];
      ASSERT_FALSE(facility.config.empty());

      Request free_rider;
      free_rider.location = facility.location;
      free_rider.commodities = CommoditySet::singleton(
          gen.instance.num_commodities(),
          facility.config.to_vector().front());

      std::vector<StreamEvent> with_rider;
      std::vector<StreamEvent> without_rider;
      for (std::size_t i = 0; i < split; ++i) {
        with_rider.push_back(StreamEvent::arrival(requests[i]));
        without_rider.push_back(StreamEvent::arrival(requests[i]));
      }
      with_rider.push_back(StreamEvent::arrival(free_rider));
      with_rider.push_back(
          StreamEvent::departure(static_cast<RequestId>(split)));
      for (std::size_t i = split; i < requests.size(); ++i) {
        with_rider.push_back(StreamEvent::arrival(requests[i]));
        without_rider.push_back(StreamEvent::arrival(requests[i]));
      }
      const EventStream stream_with(gen.instance.metric_ptr(),
                                    gen.instance.cost_ptr(),
                                    std::move(with_rider), "with-rider");
      const EventStream stream_without(
          gen.instance.metric_ptr(), gen.instance.cost_ptr(),
          std::move(without_rider), "without-rider");

      StreamRunOptions options;
      options.verify = true;
      options.compact = false;  // keep the rider's record inspectable
      auto algo_with = default_algorithm_registry().make(
          name, derive_algorithm_seed(seed));
      const StreamRunResult with_result =
          run_stream(*algo_with, stream_with, options);
      auto algo_without = default_algorithm_registry().make(
          name, derive_algorithm_seed(seed));
      const StreamRunResult without_result =
          run_stream(*algo_without, stream_without, options);

      EXPECT_FALSE(with_result.violation.has_value())
          << name << ": " << with_result.violation->what;
      EXPECT_FALSE(without_result.violation.has_value());

      const RequestId rider_id = static_cast<RequestId>(split);
      bool rider_opened = false;
      for (const OpenFacilityRecord& f :
           with_result.ledger.facilities())
        if (f.opened_during == rider_id) rider_opened = true;
      if (rider_opened) continue;  // irrevocable opening; see above
      ++compared;

      // A qualifying rider was served entirely at distance zero.
      EXPECT_EQ(
          with_result.ledger.request_record(rider_id).connection_cost,
          0.0)
          << name << " seed " << seed;

      const SolutionLedger& a = with_result.ledger;
      const SolutionLedger& b = without_result.ledger;
      EXPECT_EQ(a.total_cost(), b.total_cost()) << name << " seed " << seed;
      EXPECT_EQ(a.opening_cost(), b.opening_cost())
          << name << " seed " << seed;
      EXPECT_EQ(a.active_cost(), b.active_cost())
          << name << " seed " << seed;
      ASSERT_EQ(a.num_facilities(), b.num_facilities())
          << name << " seed " << seed;
      for (std::size_t f = 0; f < a.num_facilities(); ++f) {
        EXPECT_EQ(a.facilities()[f].location, b.facilities()[f].location);
        EXPECT_EQ(a.facilities()[f].open_cost,
                  b.facilities()[f].open_cost);
        EXPECT_TRUE(a.facilities()[f].config == b.facilities()[f].config);
      }
    }
  }
  // The skip path must stay the exception, not the rule — the harness
  // has to actually exercise the rollback comparison.
  EXPECT_GE(compared, 6u);
}

// Capacity relations: attaching capacities that can never bind (all
// infinite, or a finite uniform cap no facility can reach) must leave
// every algorithm's run bitwise unchanged — admission control lives in
// the ledger, so the only difference is a branch that never fires.
TEST(Metamorphic, NonBindingCapacitiesReproduceUncapacitatedRunBitwise) {
  const AlgorithmRegistry& registry = default_algorithm_registry();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const GeneratedInstance gen = random_instance(seed);
    const std::size_t points = gen.instance.metric().num_points();
    // A request occupies at most one facility, so num_requests is an
    // unreachable per-point cap: finite, yet never binding.
    const std::uint64_t loose_cap = gen.instance.num_requests();
    for (const std::string& name : registry.names()) {
      auto base_algo = default_algorithm_registry().make(
          name, derive_algorithm_seed(seed));
      const SolutionLedger base = run_online(*base_algo, gen.instance);

      for (const std::uint64_t cap : {kUncapacitated, loose_cap}) {
        Instance capped = gen.instance;
        capped.set_capacities(
            std::make_shared<const std::vector<std::uint64_t>>(points,
                                                               cap));
        auto algo = default_algorithm_registry().make(
            name, derive_algorithm_seed(seed));
        const SolutionLedger run = run_online(*algo, capped);

        EXPECT_EQ(run.num_shed_requests(), 0u) << name << " seed " << seed;
        EXPECT_EQ(run.num_spilled_assignments(), 0u)
            << name << " seed " << seed;
        EXPECT_EQ(run.total_cost(), base.total_cost())
            << name << " seed " << seed << " cap " << cap;
        EXPECT_EQ(run.opening_cost(), base.opening_cost())
            << name << " seed " << seed << " cap " << cap;
        EXPECT_EQ(run.active_cost(), base.active_cost())
            << name << " seed " << seed << " cap " << cap;
        ASSERT_EQ(run.num_facilities(), base.num_facilities())
            << name << " seed " << seed << " cap " << cap;
        for (std::size_t f = 0; f < run.num_facilities(); ++f) {
          EXPECT_EQ(run.facilities()[f].location,
                    base.facilities()[f].location);
          EXPECT_EQ(run.facilities()[f].open_cost,
                    base.facilities()[f].open_cost);
          EXPECT_TRUE(run.facilities()[f].config ==
                      base.facilities()[f].config);
        }
        ASSERT_EQ(run.num_requests(), base.num_requests());
        for (std::size_t r = 0; r < run.num_requests(); ++r) {
          const RequestRecord& got =
              run.request_record(static_cast<RequestId>(r));
          const RequestRecord& want =
              base.request_record(static_cast<RequestId>(r));
          EXPECT_EQ(got.connection_cost, want.connection_cost)
              << name << " seed " << seed << " request " << r;
          EXPECT_TRUE(got.rejected.empty());
        }
      }
    }
  }
}

// Starving a single facility location under the reassign policy can only
// push requests to farther (feasible) facilities or shed them outright —
// the served work gets strictly harder, so the total cost of what the
// run *does* pay never drops below the uncapacitated baseline.
TEST(Metamorphic, LoweringOneCapacityNeverDecreasesCostUnderReassign) {
  std::size_t tightened = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const GeneratedInstance gen = random_instance(seed);
    const std::size_t points = gen.instance.metric().num_points();
    auto base_algo = default_algorithm_registry().make(
        "greedy", derive_algorithm_seed(seed));
    const SolutionLedger base = run_online(*base_algo, gen.instance);
    ASSERT_GT(base.num_facilities(), 0u);

    // Starve the busiest location: the one serving the most requests.
    std::vector<std::size_t> load(points, 0);
    for (std::size_t r = 0; r < base.num_requests(); ++r) {
      const RequestRecord& record =
          base.request_record(static_cast<RequestId>(r));
      for (const FacilityId f : record.connected)
        ++load[base.facilities()[f].location];
    }
    const PointId victim = static_cast<PointId>(std::distance(
        load.begin(), std::max_element(load.begin(), load.end())));
    if (load[victim] <= 1) continue;  // cap of 1 would not bind

    auto caps = std::make_shared<std::vector<std::uint64_t>>(
        points, kUncapacitated);
    (*caps)[victim] = 1;
    Instance capped = gen.instance;
    capped.set_capacities(std::move(caps));

    auto algo = default_algorithm_registry().make(
        "greedy", derive_algorithm_seed(seed));
    const SolutionLedger run =
        run_online(*algo, capped, ConnectionChargePolicy::kPerFacility,
                   OverflowPolicy::kReassign);
    const auto violation = verify_solution(capped, run);
    EXPECT_FALSE(violation.has_value())
        << "seed " << seed << ": " << (violation ? violation->what : "");
    EXPECT_GE(run.total_cost(), base.total_cost()) << "seed " << seed;
    ++tightened;
  }
  // The cap has to actually bind on most seeds for this to test anything.
  EXPECT_GE(tightened, 4u);
}

}  // namespace
}  // namespace omflp
