// Offline solver tests: the assignment DP, the exact single-point
// set-cover solvers (size-only vs general agreement), the exhaustive tiny
// solver, local search quality, and the OPT estimation front-end.
#include <gtest/gtest.h>

#include <cmath>

#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "metric/line_metric.hpp"
#include "offline/assignment.hpp"
#include "offline/exact_small.hpp"
#include "offline/greedy_star.hpp"
#include "offline/local_search.hpp"
#include "offline/opt_estimate.hpp"
#include "offline/single_point.hpp"

namespace omflp {
namespace {

TEST(AssignmentDp, PicksSharedFacilityOverTwoSingles) {
  // Facilities: {0,1} at distance 3; {0} and {1} at distance 2 each.
  // Shared path: 3 < 2 + 2.
  auto metric =
      std::make_shared<LineMetric>(std::vector<double>{0.0, 3.0, -2.0, 2.0});
  std::vector<PlacedFacility> facilities = {
      {1, CommoditySet(2, {0, 1})},
      {2, CommoditySet(2, {0})},
      {3, CommoditySet(2, {1})},
  };
  const Request r{0, CommoditySet::full_set(2)};
  EXPECT_DOUBLE_EQ(optimal_assignment_cost(*metric, facilities, r), 3.0);
}

TEST(AssignmentDp, CombinesWhenSharedIsFar) {
  auto metric =
      std::make_shared<LineMetric>(std::vector<double>{0.0, 9.0, -2.0, 2.0});
  std::vector<PlacedFacility> facilities = {
      {1, CommoditySet(2, {0, 1})},
      {2, CommoditySet(2, {0})},
      {3, CommoditySet(2, {1})},
  };
  const Request r{0, CommoditySet::full_set(2)};
  EXPECT_DOUBLE_EQ(optimal_assignment_cost(*metric, facilities, r), 4.0);
}

TEST(AssignmentDp, InfeasibleIsInfinite) {
  auto metric = std::make_shared<SinglePointMetric>();
  std::vector<PlacedFacility> facilities = {{0, CommoditySet(2, {0})}};
  const Request r{0, CommoditySet::full_set(2)};
  EXPECT_TRUE(std::isinf(optimal_assignment_cost(*metric, facilities, r)));
}

// -------------------------------------------------------- single point ---

TEST(SinglePoint, SizeOnlySqrtPrefersOneBigFacility) {
  // g(k) = sqrt(k): covering 4 commodities with one facility costs 2,
  // any split costs more (sqrt is strictly subadditive).
  PolynomialCostModel cost(8, 1.0);
  EXPECT_DOUBLE_EQ(
      single_point_cover_cost(cost, 0, CommoditySet(8, {0, 2, 4, 6})), 2.0);
}

TEST(SinglePoint, LinearCostIndifferentToSplit) {
  PolynomialCostModel cost(8, 2.0);
  EXPECT_DOUBLE_EQ(
      single_point_cover_cost(cost, 0, CommoditySet(8, {0, 1, 2})), 3.0);
}

TEST(SinglePoint, CeilRatioMatchesTheorem2) {
  CeilRatioCostModel cost(64);  // g(k) = ceil(k/8)
  EXPECT_DOUBLE_EQ(
      single_point_cover_cost(cost, 0, CommoditySet(64, {0, 1, 2, 3})), 1.0);
  CommoditySet twelve(64);
  for (CommodityId e = 0; e < 12; ++e) twelve.add(e);
  // 12 commodities: one facility costs ceil(12/8) = 2; two facilities of
  // ≤ 8 commodities cost 1 + 1 = 2 as well.
  EXPECT_DOUBLE_EQ(single_point_cover_cost(cost, 0, twelve), 2.0);
}

TEST(SinglePoint, GeneralDpAgreesWithSizeOnlyDp) {
  // Wrap a size-only function in a general (non-size-only) model and
  // check both code paths agree.
  for (double x : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    PolynomialCostModel size_only(6, x);
    // A LinearCostModel with equal weights is mathematically size-only
    // but reports cost_by_size only through the general path... use a
    // custom wrapper instead:
    struct GeneralWrapper final : FacilityCostModel {
      explicit GeneralWrapper(const PolynomialCostModel& m) : inner(m) {}
      const PolynomialCostModel& inner;
      CommodityId num_commodities() const noexcept override {
        return inner.num_commodities();
      }
      double open_cost(PointId m, const CommoditySet& c) const override {
        return inner.open_cost(m, c);
      }
      std::string description() const override { return "wrapped"; }
    } general(size_only);

    const CommoditySet target(6, {0, 1, 3, 5});
    EXPECT_NEAR(single_point_cover_cost(size_only, 0, target),
                single_point_cover_cost(general, 0, target), 1e-9)
        << "x=" << x;
  }
}

TEST(SinglePoint, GeneralDpHandlesAsymmetricWeights) {
  // Linear weights {10, 0.1, 0.1}: best cover of all three is any
  // partition (linear) = 10.2.
  LinearCostModel cost({10.0, 0.1, 0.1});
  EXPECT_NEAR(
      single_point_cover_cost(cost, 0, CommoditySet::full_set(3)), 10.2,
      1e-9);
}

TEST(SinglePoint, InstanceSolverRejectsMultiplePoints) {
  auto metric = std::make_shared<LineMetric>(std::vector<double>{0.0, 1.0});
  auto cost = std::make_shared<PolynomialCostModel>(2, 1.0);
  Instance inst(metric, cost,
                {Request{0, CommoditySet(2, {0})},
                 Request{1, CommoditySet(2, {1})}});
  EXPECT_THROW((void)solve_single_point_instance(inst),
               std::invalid_argument);
}

// ---------------------------------------------------------- exact tiny ---

Instance tiny_two_cluster_instance() {
  // Points 0 and 1 far apart; each sees requests for its own commodity
  // pair; sqrt costs make one facility per point optimal.
  auto metric =
      std::make_shared<LineMetric>(std::vector<double>{0.0, 100.0});
  auto cost = std::make_shared<PolynomialCostModel>(4, 1.0);
  std::vector<Request> reqs = {
      Request{0, CommoditySet(4, {0, 1})}, Request{0, CommoditySet(4, {0})},
      Request{1, CommoditySet(4, {2, 3})}, Request{1, CommoditySet(4, {3})},
  };
  return Instance(metric, cost, std::move(reqs), "tiny-two-cluster");
}

TEST(ExactSmall, SolvesTwoClusterInstance) {
  const OfflineSolution sol = solve_exact_small(tiny_two_cluster_instance());
  EXPECT_TRUE(sol.exact);
  // One sqrt(2)-facility per point, zero connection.
  EXPECT_NEAR(sol.cost, 2.0 * std::sqrt(2.0), 1e-9);
  EXPECT_EQ(sol.facilities.size(), 2u);
  EXPECT_DOUBLE_EQ(sol.connection_cost, 0.0);
}

TEST(ExactSmall, MatchesSinglePointSolver) {
  Rng rng(5);
  SinglePointMixedConfig cfg;
  cfg.num_requests = 10;
  cfg.num_commodities = 5;
  cfg.max_demand = 4;
  auto cost = std::make_shared<PolynomialCostModel>(5, 1.0);
  Instance inst = make_single_point_mixed(cfg, cost, rng);
  ExactSolverLimits limits;
  limits.max_points = 1;
  limits.max_union = 5;
  limits.max_requests = 10;
  const OfflineSolution sol = solve_exact_small(inst, limits);
  EXPECT_NEAR(sol.cost, solve_single_point_instance(inst), 1e-9);
}

TEST(ExactSmall, EnforcesLimits) {
  Rng rng(1);
  UniformLineConfig cfg;
  cfg.num_points = 40;
  cfg.num_requests = 10;
  cfg.num_commodities = 4;
  auto cost = std::make_shared<PolynomialCostModel>(4, 1.0);
  const Instance inst = make_uniform_line(cfg, cost, rng);
  EXPECT_THROW((void)solve_exact_small(inst), std::invalid_argument);
}

// --------------------------------------------------------- local search --

TEST(LocalSearch, FindsTheTwoClusterOptimum) {
  const Instance inst = tiny_two_cluster_instance();
  const OfflineSolution ls = solve_local_search(inst);
  const OfflineSolution exact = solve_exact_small(inst);
  EXPECT_NEAR(ls.cost, exact.cost, 1e-9);
}

class LocalSearchVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchVsExact, NeverBeatsExactAndStaysClose) {
  Rng rng(GetParam());
  // Tiny random instances within the exact solver's limits.
  auto metric = std::make_shared<LineMetric>(std::vector<double>{
      rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
      rng.uniform(0.0, 10.0)});
  auto cost = std::make_shared<PolynomialCostModel>(4, 1.0, 1.5);
  std::vector<Request> reqs;
  for (int i = 0; i < 8; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(3));
    r.commodities = sample_demand_set(
        4, static_cast<CommodityId>(1 + rng.uniform_index(3)), 0.0, rng);
    reqs.push_back(std::move(r));
  }
  Instance inst(metric, cost, std::move(reqs), "tiny-random");

  const OfflineSolution exact = solve_exact_small(inst);
  const OfflineSolution ls = solve_local_search(inst);
  EXPECT_GE(ls.cost, exact.cost - 1e-9);
  // Local search with add/drop is a good heuristic on these sizes; allow
  // 30% slack to stay robust.
  EXPECT_LE(ls.cost, 1.3 * exact.cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchVsExact,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(LocalSearch, BeatsCertificateOrMatchesOnClusters) {
  Rng rng(3);
  ClusteredConfig cfg;
  cfg.num_clusters = 3;
  cfg.requests_per_cluster = 6;
  cfg.num_commodities = 8;
  cfg.commodities_per_cluster = 3;
  auto cost = std::make_shared<PolynomialCostModel>(8, 1.0);
  const Instance inst = make_clustered_line(cfg, cost, rng);
  const OfflineSolution ls = solve_local_search(inst);
  ASSERT_TRUE(inst.opt_certificate().has_value());
  // The certificate is a feasible solution, so a sane local search should
  // do at least roughly as well (small tolerance for heuristic gaps).
  EXPECT_LE(ls.cost, 1.2 * inst.opt_certificate()->upper_bound + 1e-9);
}

// ---------------------------------------------------------- greedy star --

TEST(GreedyStar, SolvesTheTwoClusterInstanceOptimally) {
  const Instance inst = tiny_two_cluster_instance();
  const OfflineSolution greedy = solve_greedy_star(inst);
  const OfflineSolution exact = solve_exact_small(inst);
  EXPECT_GE(greedy.cost, exact.cost - 1e-9);
  EXPECT_NEAR(greedy.cost, exact.cost, 1e-9);
  EXPECT_EQ(greedy.method, "greedy-star");
}

class GreedyStarVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyStarVsExact, FeasibleAndNeverBelowExact) {
  Rng rng(GetParam() * 37 + 11);
  auto metric = std::make_shared<LineMetric>(std::vector<double>{
      rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
      rng.uniform(0.0, 10.0)});
  auto cost = std::make_shared<PolynomialCostModel>(4, 1.0, 1.5);
  std::vector<Request> reqs;
  for (int i = 0; i < 8; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(3));
    r.commodities = sample_demand_set(
        4, static_cast<CommodityId>(1 + rng.uniform_index(3)), 0.0, rng);
    reqs.push_back(std::move(r));
  }
  Instance inst(metric, cost, std::move(reqs), "tiny-random");
  const OfflineSolution exact = solve_exact_small(inst);
  const OfflineSolution greedy = solve_greedy_star(inst);
  EXPECT_GE(greedy.cost, exact.cost - 1e-9);
  // Greedy set-cover style: the guarantee is logarithmic, not constant;
  // a 3x envelope on these tiny instances is the meaningful sanity band
  // (observed worst case across seeds: ~2.3x).
  EXPECT_LE(greedy.cost, 3.0 * exact.cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyStarVsExact,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GreedyStar, HandlesLargerWorkloads) {
  Rng rng(9);
  UniformLineConfig cfg;
  cfg.num_points = 16;
  cfg.num_requests = 80;
  cfg.num_commodities = 8;
  cfg.max_demand = 4;
  auto cost = std::make_shared<PolynomialCostModel>(8, 1.0, 2.0);
  const Instance inst = make_uniform_line(cfg, cost, rng);
  const OfflineSolution greedy = solve_greedy_star(inst);
  EXPECT_TRUE(std::isfinite(greedy.cost));
  EXPECT_GT(greedy.cost, 0.0);
  // Sanity: not worse than the no-sharing trivial solution (a facility
  // with the request's demand at every distinct request location).
  const OfflineSolution ls = solve_local_search(inst);
  EXPECT_LE(greedy.cost, 3.0 * ls.cost);
}

// --------------------------------------------------------- opt estimate --

TEST(OptEstimate, UsesExactCertificate) {
  Rng rng(2);
  Theorem2Config cfg;
  cfg.num_commodities = 36;
  const Instance inst = make_theorem2_instance(cfg, rng);
  const OptEstimate est = estimate_opt(inst);
  EXPECT_TRUE(est.exact);
  EXPECT_DOUBLE_EQ(est.cost, 1.0);
  EXPECT_NE(est.method.find("certificate"), std::string::npos);
}

TEST(OptEstimate, SinglePointPathForMixedWorkload) {
  Rng rng(3);
  SinglePointMixedConfig cfg;
  cfg.num_requests = 30;
  cfg.num_commodities = 10;
  auto cost = std::make_shared<PolynomialCostModel>(10, 1.0);
  const Instance inst = make_single_point_mixed(cfg, cost, rng);
  const OptEstimate est = estimate_opt(inst);
  EXPECT_TRUE(est.exact);
  EXPECT_NE(est.method.find("single-point"), std::string::npos);
}

TEST(OptEstimate, FallsBackToLocalSearch) {
  Rng rng(4);
  UniformLineConfig cfg;
  cfg.num_points = 12;
  cfg.num_requests = 30;
  cfg.num_commodities = 6;
  cfg.max_demand = 3;
  auto cost = std::make_shared<PolynomialCostModel>(6, 1.0);
  const Instance inst = make_uniform_line(cfg, cost, rng);
  const OptEstimate est = estimate_opt(inst);
  EXPECT_FALSE(est.exact);
  EXPECT_TRUE(est.method == "local-search" || est.method == "greedy-star")
      << est.method;
  EXPECT_GT(est.cost, 0.0);
}

TEST(OptEstimate, ThrowsWhenNothingApplies) {
  Rng rng(5);
  UniformLineConfig cfg;
  cfg.num_points = 12;
  cfg.num_requests = 30;
  cfg.num_commodities = 6;
  auto cost = std::make_shared<PolynomialCostModel>(6, 1.0);
  const Instance inst = make_uniform_line(cfg, cost, rng);
  OptEstimateOptions options;
  options.allow_local_search = false;
  EXPECT_THROW((void)estimate_opt(inst, options), std::invalid_argument);
}

}  // namespace
}  // namespace omflp
