// Tests for the perf telemetry subsystem: PerfCounters semantics, the
// counter hooks through the algorithm roster, BenchSuite runs, the
// BENCH_*.json write/read round-trip, compare_reports thresholds and
// suite-drift tolerance, and the lock-free LatencyHistogram backing the
// serving engine's percentiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/online_algorithm.hpp"
#include "perf/bench_compare.hpp"
#include "perf/bench_suite.hpp"
#include "perf/latency_histogram.hpp"
#include "perf/perf_counters.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/sweep.hpp"
#include "solution/verifier.hpp"

namespace omflp {
namespace {

Instance small_instance() {
  return default_scenario_registry().make(
      "uniform-line", /*seed=*/3,
      {{"points", 8}, {"requests", 16}, {"commodities", 4}});
}

// ------------------------------------------------------------- counters ---

TEST(PerfCounters, NoSinkMeansNothingCounted) {
  ASSERT_EQ(perf::thread_sink(), nullptr);
  auto algorithm = default_algorithm_registry().make("pd");
  (void)run_online(*algorithm, small_instance());
  // Nothing observable: the only claim testable here is that running
  // without a scope neither crashes nor leaves a sink behind.
  EXPECT_EQ(perf::thread_sink(), nullptr);
}

TEST(PerfCounters, ScopeInstallsAndRestores) {
  PerfCounters outer_counters;
  {
    PerfScope outer(outer_counters);
    EXPECT_EQ(perf::thread_sink(), &outer_counters);
    {
      PerfCounters inner_counters;
      PerfScope inner(inner_counters);
      EXPECT_EQ(perf::thread_sink(), &inner_counters);
      OMFLP_PERF_COUNT(coin_flips);
      EXPECT_EQ(inner_counters.coin_flips, 1u);
      EXPECT_EQ(outer_counters.coin_flips, 0u);
    }
    EXPECT_EQ(perf::thread_sink(), &outer_counters);
    OMFLP_PERF_ADD(coin_flips, 2);
    EXPECT_EQ(outer_counters.coin_flips, 2u);
  }
  EXPECT_EQ(perf::thread_sink(), nullptr);
}

TEST(PerfCounters, AggregationAndReset) {
  PerfCounters a;
  a.distance_lookups = 3;
  a.coin_flips = 1;
  PerfCounters b;
  b.distance_lookups = 4;
  b.verifier_checks = 2;
  a += b;
  EXPECT_EQ(a.distance_lookups, 7u);
  EXPECT_EQ(a.coin_flips, 1u);
  EXPECT_EQ(a.verifier_checks, 2u);
  EXPECT_FALSE(a.all_zero());
  a.reset();
  EXPECT_TRUE(a.all_zero());
}

TEST(PerfCounters, PdRunCountsItsWorkUnits) {
  const Instance instance = small_instance();
  auto pd = default_algorithm_registry().make("pd");
  PerfCounters counters;
  {
    PerfScope scope(counters);
    (void)run_online(*pd, instance);
  }
  EXPECT_GT(counters.distance_lookups, 0u);
  EXPECT_GT(counters.bids_evaluated, 0u);
  EXPECT_GT(counters.bids_updated, 0u);  // incremental mode maintains rows
  EXPECT_GT(counters.facilities_opened, 0u);
  EXPECT_EQ(counters.requests_served, instance.num_requests());
  EXPECT_EQ(counters.coin_flips, 0u);  // deterministic algorithm
}

TEST(PerfCounters, RandRunFlipsCoinsButEvaluatesNoBids) {
  const Instance instance = small_instance();
  auto rand = default_algorithm_registry().make("rand", /*seed=*/5);
  PerfCounters counters;
  {
    PerfScope scope(counters);
    (void)run_online(*rand, instance);
  }
  EXPECT_GT(counters.coin_flips, 0u);
  EXPECT_GT(counters.distance_lookups, 0u);
  // The §4 efficiency contrast, as a counter identity: RAND maintains no
  // bid structures at all.
  EXPECT_EQ(counters.bids_evaluated, 0u);
  EXPECT_EQ(counters.bids_updated, 0u);
}

TEST(PerfCounters, CountsAreDeterministicAcrossRuns) {
  const Instance instance = small_instance();
  const AlgorithmRegistry& registry = default_algorithm_registry();
  for (const std::string& name : registry.names()) {
    PerfCounters first, second;
    {
      auto algorithm = registry.make(name, 9);
      PerfScope scope(first);
      (void)run_online(*algorithm, instance);
    }
    {
      auto algorithm = registry.make(name, 9);
      PerfScope scope(second);
      (void)run_online(*algorithm, instance);
    }
    // Field-by-field equality via the visitor on both structs.
    std::vector<std::uint64_t> lhs, rhs;
    PerfCounters::for_each_field(
        first, [&](const char*, std::uint64_t v) { lhs.push_back(v); });
    PerfCounters::for_each_field(
        second, [&](const char*, std::uint64_t v) { rhs.push_back(v); });
    EXPECT_EQ(lhs, rhs) << name;
  }
}

TEST(PerfCounters, VerifierChecksCountRecords) {
  const Instance instance = small_instance();
  auto pd = default_algorithm_registry().make("pd");
  const SolutionLedger ledger = run_online(*pd, instance);
  PerfCounters counters;
  {
    PerfScope scope(counters);
    ASSERT_FALSE(verify_solution(instance, ledger).has_value());
  }
  EXPECT_EQ(counters.verifier_checks,
            ledger.num_facilities() + instance.num_requests());
}

// ----------------------------------------------------------- bench suite ---

TEST(BenchSuite, RejectsBadCases) {
  BenchSuite suite("t");
  EXPECT_THROW(suite.add(BenchCase{"", 1, [] {}}), std::invalid_argument);
  EXPECT_THROW(suite.add(BenchCase{"x", 1, nullptr}),
               std::invalid_argument);
  suite.add(BenchCase{"x", 1, [] {}});
  EXPECT_THROW(suite.add(BenchCase{"x", 1, [] {}}), std::invalid_argument);
  EXPECT_THROW((void)suite.run(BenchOptions{.warmup = 0, .trials = 0}),
               std::invalid_argument);
}

TEST(BenchSuite, RunProducesSaneReport) {
  BenchSuite suite("tiny");
  int calls = 0;
  suite.add(BenchCase{"counting", 10, [&calls] {
                        PerfCounters* sink = perf::thread_sink();
                        if (sink) sink->coin_flips += 4;
                        ++calls;
                      }});
  BenchOptions options;
  options.warmup = 1;
  options.trials = 3;
  const BenchReport report = suite.run(options);
  // warmup + timed trials + one counter pass.
  EXPECT_EQ(calls, 5);
  ASSERT_EQ(report.cases.size(), 1u);
  const BenchCaseResult& c = report.cases[0];
  EXPECT_EQ(c.name, "counting");
  EXPECT_EQ(c.trials, 3u);
  EXPECT_GT(c.ns_per_op, 0.0);
  EXPECT_LE(c.ns_per_op_min, c.ns_per_op);
  EXPECT_LE(c.ns_per_op, c.ns_per_op_max);
  EXPECT_GT(c.requests_per_sec, 0.0);
  EXPECT_EQ(c.counters.coin_flips, 4u);  // exactly one instrumented pass
  EXPECT_EQ(report.schema_version, kBenchSchemaVersion);
  EXPECT_FALSE(report.git_sha.empty());
  EXPECT_NE(report.find("counting"), nullptr);
  EXPECT_EQ(report.find("absent"), nullptr);
}

TEST(BenchSuite, DefaultSuiteCoversTheFullRoster) {
  const BenchSuite suite = default_bench_suite();
  const std::vector<std::string> cases = suite.case_names();
  for (const std::string& algorithm :
       default_algorithm_registry().names()) {
    const std::string expected = "algo/" + algorithm + "/uniform-line";
    EXPECT_NE(std::find(cases.begin(), cases.end(), expected), cases.end())
        << "missing case " << expected;
  }
  // The overhead pair and the oracle micro cases ride along.
  EXPECT_NE(suite.case_names().end(),
            std::find(cases.begin(), cases.end(), "counters/off"));
  EXPECT_NE(suite.case_names().end(),
            std::find(cases.begin(), cases.end(), "counters/on"));
  EXPECT_NE(suite.case_names().end(),
            std::find(cases.begin(), cases.end(), "oracle/cached"));
  EXPECT_NE(suite.case_names().end(),
            std::find(cases.begin(), cases.end(), "oracle/fallback"));
  // The hot-loop kernel micro cases (see src/kernel/) ride along too.
  for (const char* kernel_case :
       {"kernel/accumulate-shift", "kernel/min-tightness",
        "kernel/argmin-masked"}) {
    EXPECT_NE(std::find(cases.begin(), cases.end(), kernel_case),
              cases.end())
        << "missing case " << kernel_case;
  }
}

// ------------------------------------------------------- json round trip ---

BenchReport tiny_report() {
  BenchSuite suite("roundtrip \"quoted\"");
  suite.add(BenchCase{"case/one", 7, [] {
                        PerfCounters* sink = perf::thread_sink();
                        if (sink) {
                          sink->distance_lookups += 11;
                          sink->verifier_checks += 2;
                        }
                      }});
  suite.add(BenchCase{"case/two", 3, [] {}});
  BenchOptions options;
  options.warmup = 0;
  options.trials = 2;
  return suite.run(options);
}

TEST(BenchJson, WriteReadRoundTrip) {
  const BenchReport written = tiny_report();
  std::ostringstream os;
  written.write_json(os);

  std::istringstream is(os.str());
  const BenchReport read = read_bench_report(is);

  EXPECT_EQ(read.schema_version, written.schema_version);
  EXPECT_EQ(read.suite, written.suite);
  EXPECT_EQ(read.git_sha, written.git_sha);
  EXPECT_EQ(read.build_type, written.build_type);
  EXPECT_EQ(read.compiler, written.compiler);
  EXPECT_EQ(read.build_flags, written.build_flags);
  EXPECT_EQ(read.trials, written.trials);
  EXPECT_EQ(read.warmup, written.warmup);
  ASSERT_EQ(read.cases.size(), written.cases.size());
  for (std::size_t i = 0; i < read.cases.size(); ++i) {
    EXPECT_EQ(read.cases[i].name, written.cases[i].name);
    EXPECT_EQ(read.cases[i].requests_per_op,
              written.cases[i].requests_per_op);
    // 17 significant digits in the writer: doubles round-trip exactly.
    EXPECT_EQ(read.cases[i].ns_per_op, written.cases[i].ns_per_op);
    EXPECT_EQ(read.cases[i].requests_per_sec,
              written.cases[i].requests_per_sec);
    std::vector<std::uint64_t> lhs, rhs;
    PerfCounters::for_each_field(
        read.cases[i].counters,
        [&](const char*, std::uint64_t v) { lhs.push_back(v); });
    PerfCounters::for_each_field(
        written.cases[i].counters,
        [&](const char*, std::uint64_t v) { rhs.push_back(v); });
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(BenchJson, RejectsMalformedAndWrongSchema) {
  {
    std::istringstream is("{\"schema_version\": 999}");
    EXPECT_THROW((void)read_bench_report(is), std::runtime_error);
  }
  {
    std::istringstream is("{not json");
    EXPECT_THROW((void)read_bench_report(is), std::runtime_error);
  }
  {
    std::istringstream is("{\"schema_version\": 1}");  // missing fields
    EXPECT_THROW((void)read_bench_report(is), std::runtime_error);
  }
}

// --------------------------------------------------------------- compare ---

BenchReport synthetic_report(double ns_one, double ns_two) {
  BenchReport report;
  report.suite = "synthetic";
  report.git_sha = "deadbeef";
  report.build_type = "Release";
  report.compiler = "test";
  report.build_flags = "";
  report.trials = 1;
  BenchCaseResult one;
  one.name = "one";
  one.ns_per_op = ns_one;
  one.counters.distance_lookups = 100;
  report.cases.push_back(one);
  BenchCaseResult two;
  two.name = "two";
  two.ns_per_op = ns_two;
  report.cases.push_back(two);
  return report;
}

TEST(Compare, FlagsRegressionsBeyondThreshold) {
  const BenchReport old_report = synthetic_report(1000.0, 1000.0);
  const BenchReport new_report = synthetic_report(1200.0, 1050.0);
  const CompareReport comparison = compare_reports(
      old_report, new_report, CompareOptions{.regression_threshold = 1.10});
  ASSERT_EQ(comparison.deltas.size(), 2u);
  EXPECT_EQ(comparison.deltas[0].status, CaseDelta::Status::kRegressed);
  EXPECT_DOUBLE_EQ(comparison.deltas[0].time_ratio, 1.2);
  EXPECT_EQ(comparison.deltas[1].status, CaseDelta::Status::kOk);
  EXPECT_TRUE(comparison.any_regression());
  EXPECT_EQ(comparison.regressions, 1u);
}

TEST(Compare, FlagsImprovementsAndReportsSuiteDrift) {
  BenchReport old_report = synthetic_report(1000.0, 1000.0);
  BenchReport new_report = synthetic_report(500.0, 990.0);
  new_report.cases[1].name = "renamed";
  const CompareReport comparison =
      compare_reports(old_report, new_report);
  ASSERT_EQ(comparison.deltas.size(), 3u);
  EXPECT_EQ(comparison.deltas[0].status, CaseDelta::Status::kImproved);
  EXPECT_DOUBLE_EQ(comparison.deltas[0].lookup_ratio, 1.0);
  EXPECT_EQ(comparison.deltas[1].status, CaseDelta::Status::kOnlyOld);
  EXPECT_EQ(comparison.deltas[2].status, CaseDelta::Status::kOnlyNew);
  // Suite drift (a renamed case is one missing + one new) is reported,
  // not treated as a slowdown: new-only and missing-only cases must
  // compare cleanly when a PR adds or retires bench cases.
  EXPECT_FALSE(comparison.any_regression());
  EXPECT_EQ(comparison.regressions, 0u);
  EXPECT_EQ(comparison.missing_cases, 1u);
  EXPECT_EQ(comparison.new_cases, 1u);
  EXPECT_EQ(comparison.improvements, 1u);

  std::ostringstream table;
  comparison.write_table(table);
  EXPECT_NE(table.str().find("suite drift: 1 new case(s)"),
            std::string::npos);
  EXPECT_NE(table.str().find("1 baseline case(s) not measured"),
            std::string::npos);
}

TEST(Compare, FailOnMissingRestoresTheStrictGate) {
  BenchReport old_report = synthetic_report(1000.0, 1000.0);
  BenchReport new_report = synthetic_report(1000.0, 1000.0);
  new_report.cases.pop_back();  // baseline case "two" vanishes
  const CompareReport tolerant = compare_reports(old_report, new_report);
  EXPECT_FALSE(tolerant.any_regression());
  EXPECT_EQ(tolerant.missing_cases, 1u);

  const CompareReport strict = compare_reports(
      old_report, new_report, CompareOptions{.fail_on_missing = true});
  EXPECT_TRUE(strict.any_regression());
  EXPECT_EQ(strict.regressions, 1u);
  EXPECT_EQ(strict.missing_cases, 1u);
}

TEST(Compare, NewOnlyCasesAreNeverRegressions) {
  BenchReport old_report = synthetic_report(1000.0, 1000.0);
  BenchReport new_report = synthetic_report(1000.0, 1000.0);
  BenchCaseResult serve;
  serve.name = "serve/mixed-pd";
  serve.ns_per_op = 123.0;
  new_report.cases.push_back(serve);
  const CompareReport comparison = compare_reports(
      old_report, new_report, CompareOptions{.fail_on_missing = true});
  EXPECT_FALSE(comparison.any_regression());
  EXPECT_EQ(comparison.new_cases, 1u);
  ASSERT_EQ(comparison.deltas.size(), 3u);
  EXPECT_EQ(comparison.deltas[2].status, CaseDelta::Status::kOnlyNew);
}

TEST(Compare, RejectsThresholdBelowOne) {
  const BenchReport report = synthetic_report(1.0, 1.0);
  EXPECT_THROW(
      (void)compare_reports(report, report,
                            CompareOptions{.regression_threshold = 0.9}),
      std::invalid_argument);
}

// ------------------------------------------------------ latency histogram ---

TEST(LatencyHistogram, BucketIndexIsMonotoneWithBoundedRelativeError) {
  int previous = -1;
  for (std::uint64_t value = 0; value < 4096; ++value) {
    const int bucket = LatencyHistogram::bucket_index(value);
    EXPECT_GE(bucket, previous) << value;
    previous = bucket;
    if (value >= 8) {
      const double representative = LatencyHistogram::bucket_value(bucket);
      EXPECT_NEAR(representative, static_cast<double>(value),
                  0.125 * static_cast<double>(value))
          << value;
    }
  }
  // Huge values stay in range instead of indexing past the last bucket.
  EXPECT_LT(LatencyHistogram::bucket_index(~std::uint64_t{0}),
            LatencyHistogram::kNumBuckets);
}

TEST(LatencyHistogram, QuantilesTrackAKnownDistribution) {
  LatencyHistogram histogram;
  for (int i = 0; i < 90; ++i) histogram.record_ns(1000.0);
  for (int i = 0; i < 10; ++i) histogram.record_ns(1e6);
  const LatencySnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.p50_ns, 1000.0, 0.13 * 1000.0);
  EXPECT_NEAR(snap.p95_ns, 1e6, 0.13 * 1e6);
  EXPECT_NEAR(snap.p99_ns, 1e6, 0.13 * 1e6);
  EXPECT_DOUBLE_EQ(snap.max_ns, 1e6);
  EXPECT_NEAR(snap.mean_ns(), (90 * 1000.0 + 10 * 1e6) / 100.0, 1.0);
  EXPECT_LE(snap.p50_ns, snap.p95_ns);
  EXPECT_LE(snap.p95_ns, snap.p99_ns);
}

TEST(LatencyHistogram, EmptySnapshotIsAllZero) {
  LatencyHistogram histogram;
  const LatencySnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.p50_ns, 0.0);
  EXPECT_EQ(snap.max_ns, 0.0);
  EXPECT_EQ(snap.mean_ns(), 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordingLosesNothing) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  {
    std::vector<std::jthread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&histogram, t] {
        for (int i = 0; i < kPerThread; ++i)
          histogram.record_ns(static_cast<double>(100 + t));
      });
  }
  const LatencySnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogram, RecordClampsNonFiniteAndOutOfRangeValues) {
  // double -> uint64_t casts are UB for NaN, negative and >= 2^63 inputs
  // (timer glitches, wall-clock steps); record_ns must clamp them all.
  LatencyHistogram histogram;
  histogram.record_ns(std::nan(""));
  histogram.record_ns(-42.0);
  histogram.record_ns(-std::numeric_limits<double>::infinity());
  histogram.record_ns(std::numeric_limits<double>::infinity());
  histogram.record_ns(1e30);
  const LatencySnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 5u);
  // NaN / negatives saturate to 0, oversized values to 2^63 - 1.
  constexpr double kTop =
      static_cast<double>((std::uint64_t{1} << 63) - 1);
  EXPECT_DOUBLE_EQ(snap.max_ns, kTop);
  EXPECT_EQ(snap.p50_ns, 0.0);
}

TEST(LatencyHistogram, QuantileTargetsAreExactIntegers) {
  // p99.9 of exactly 1000 samples must pick rank ceil(0.999*1000) = 999,
  // not rank 1000: with 999 fast samples and one slow outlier the p999
  // still reports the fast value. The old float-ceil hack (+0.9999999)
  // overshot to rank 1000 here and returned the outlier.
  LatencyHistogram histogram;
  for (int i = 0; i < 999; ++i) histogram.record_ns(1000.0);
  histogram.record_ns(1e6);
  const LatencySnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.count, 1000u);
  EXPECT_NEAR(snap.p999_ns, 1000.0, 0.13 * 1000.0);
  EXPECT_DOUBLE_EQ(snap.max_ns, 1e6);

  // And the rank-1 floor: p50 of two samples is the smaller one
  // (ceil(0.5 * 2) = 1).
  LatencyHistogram two;
  two.record_ns(100.0);
  two.record_ns(1e6);
  const LatencySnapshot pair = two.snapshot();
  EXPECT_NEAR(pair.p50_ns, 100.0, 0.13 * 100.0);
}

TEST(LatencyHistogram, DeltaSnapshotsFlagTheCumulativeMax) {
  LatencyHistogram histogram;
  histogram.record_ns(5000.0);
  const LatencySnapshot cumulative = histogram.snapshot();
  EXPECT_FALSE(cumulative.max_is_cumulative);
  EXPECT_NE(cumulative.to_json().find("\"max_ns\":"), std::string::npos);

  LatencyBaseline baseline;
  const LatencySnapshot delta = histogram.snapshot_delta(baseline);
  EXPECT_TRUE(delta.max_is_cumulative);
  const std::string json = delta.to_json();
  EXPECT_NE(json.find("\"max_ns_cum\":"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"max_ns\":"), std::string::npos) << json;

  // A second interval with no new samples: counts are per-interval (0)
  // but the max keeps reporting the lifetime extremum.
  const LatencySnapshot idle = histogram.snapshot_delta(baseline);
  EXPECT_EQ(idle.count, 0u);
  EXPECT_DOUBLE_EQ(idle.max_ns, 5000.0);
}

// ---------------------------------------------------------- sweep timing ---

TEST(SweepTiming, CellsCarryWallTimeAndThroughput) {
  SweepOptions options;
  options.scenarios = {"theorem2"};
  options.algorithms = {"pd", "greedy"};
  options.seeds = 3;
  options.threads = 1;
  const SweepResult result = run_sweep(options);
  for (const SweepCell& cell : result.cells()) {
    EXPECT_EQ(cell.wall_ms.count(), 3u);
    EXPECT_EQ(cell.requests_per_sec.count(), 3u);
    EXPECT_GE(cell.wall_ms.min(), 0.0);
    EXPECT_GT(cell.requests_per_sec.min(), 0.0);
  }
  std::ostringstream csv;
  result.write_csv(csv);
  EXPECT_NE(csv.str().find("wall_ms_mean"), std::string::npos);
  EXPECT_NE(csv.str().find("requests_per_sec_mean"), std::string::npos);
  std::ostringstream json;
  result.write_json(json);
  EXPECT_NE(json.str().find("\"wall_ms_mean\""), std::string::npos);
  EXPECT_NE(json.str().find("\"requests_per_sec_mean\""),
            std::string::npos);
}

}  // namespace
}  // namespace omflp
