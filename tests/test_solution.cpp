// Tests for the solution ledger's accounting and rule enforcement, and for
// the independent verifier (including that it catches violations the
// ledger itself cannot see).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cost/cost_models.hpp"
#include "instance/instance.hpp"
#include "metric/line_metric.hpp"
#include "solution/solution.hpp"
#include "solution/verifier.hpp"

namespace omflp {
namespace {

struct Fixture {
  MetricPtr metric = LineMetric::uniform_grid(4, 30.0);  // 0,10,20,30
  CostModelPtr cost = std::make_shared<PolynomialCostModel>(4, 1.0);

  Request request(PointId loc, std::initializer_list<CommodityId> es) {
    return Request{loc, CommoditySet(4, es)};
  }
};

TEST(SolutionLedger, HappyPathAccounting) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost);

  ledger.begin_request(fx.request(0, {0, 1}));
  const FacilityId f0 = ledger.open_facility(1, CommoditySet(4, {0, 1}));
  ledger.assign(0, f0);
  ledger.assign(1, f0);
  ledger.finish_request();

  // Opening: sqrt(2); connection: one shared path of length 10.
  EXPECT_NEAR(ledger.opening_cost(), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(ledger.connection_cost(), 10.0);
  EXPECT_EQ(ledger.num_facilities(), 1u);
  EXPECT_EQ(ledger.request_records()[0].connected.size(), 1u);

  // Second request reuses the facility plus a new singleton.
  ledger.begin_request(fx.request(3, {0, 2}));
  const FacilityId f1 = ledger.open_facility(3, CommoditySet(4, {2}));
  ledger.assign(0, f0);
  ledger.assign(2, f1);
  ledger.finish_request();

  EXPECT_NEAR(ledger.opening_cost(), std::sqrt(2.0) + 1.0, 1e-12);
  // Request 2 connects to f0 (distance 20) and f1 (distance 0).
  EXPECT_DOUBLE_EQ(ledger.connection_cost(), 30.0);
  EXPECT_EQ(ledger.num_small_facilities(), 1u);
  EXPECT_EQ(ledger.num_large_facilities(), 0u);
}

TEST(SolutionLedger, SharedPathChargedOncePerFacility) {
  Fixture fx;
  SolutionLedger per_facility(fx.metric, fx.cost,
                              ConnectionChargePolicy::kPerFacility);
  per_facility.begin_request(fx.request(0, {0, 1, 2}));
  const FacilityId f =
      per_facility.open_facility(2, CommoditySet(4, {0, 1, 2}));
  per_facility.assign(0, f);
  per_facility.assign(1, f);
  per_facility.assign(2, f);
  per_facility.finish_request();
  EXPECT_DOUBLE_EQ(per_facility.connection_cost(), 20.0);

  // The §1.1 alternative model charges the path per served commodity.
  SolutionLedger per_commodity(fx.metric, fx.cost,
                               ConnectionChargePolicy::kPerCommodity);
  per_commodity.begin_request(fx.request(0, {0, 1, 2}));
  const FacilityId g =
      per_commodity.open_facility(2, CommoditySet(4, {0, 1, 2}));
  per_commodity.assign(0, g);
  per_commodity.assign(1, g);
  per_commodity.assign(2, g);
  per_commodity.finish_request();
  EXPECT_DOUBLE_EQ(per_commodity.connection_cost(), 60.0);
}

TEST(SolutionLedger, EnforcesProtocol) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost);
  // No facility opening outside a request.
  EXPECT_THROW(ledger.open_facility(0, CommoditySet(4, {0})),
               std::invalid_argument);
  ledger.begin_request(fx.request(0, {0}));
  // No double begin.
  EXPECT_THROW(ledger.begin_request(fx.request(0, {0})),
               std::invalid_argument);
  const FacilityId f = ledger.open_facility(0, CommoditySet(4, {0}));
  // Assigning an undemanded commodity.
  EXPECT_THROW(ledger.assign(1, f), std::invalid_argument);
  // Assigning to a facility that does not offer the commodity.
  const FacilityId g = ledger.open_facility(0, CommoditySet(4, {2}));
  EXPECT_THROW(ledger.assign(0, g), std::invalid_argument);
  ledger.assign(0, f);
  // Double assignment of the same commodity.
  EXPECT_THROW(ledger.assign(0, f), std::invalid_argument);
  ledger.finish_request();
  // Finish without a request in flight.
  EXPECT_THROW(ledger.finish_request(), std::invalid_argument);
}

TEST(SolutionLedger, IncompleteCoverageRejected) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(fx.request(0, {0, 1}));
  const FacilityId f = ledger.open_facility(0, CommoditySet(4, {0}));
  ledger.assign(0, f);
  EXPECT_THROW(ledger.finish_request(), std::invalid_argument);
}

TEST(SolutionLedger, EmptyConfigRejected) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(fx.request(0, {0}));
  EXPECT_THROW(ledger.open_facility(0, CommoditySet(4)),
               std::invalid_argument);
}

TEST(SolutionLedger, LargeFacilityCounted) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(fx.request(0, {0}));
  const FacilityId f = ledger.open_facility(0, CommoditySet::full_set(4));
  ledger.assign(0, f);
  ledger.finish_request();
  EXPECT_EQ(ledger.num_large_facilities(), 1u);
  EXPECT_EQ(ledger.num_small_facilities(), 0u);
}

// ------------------------------------------------------------ verifier ---

Instance tiny_instance(const Fixture& fx) {
  return Instance(fx.metric, fx.cost,
                  {Request{0, CommoditySet(4, {0, 1})},
                   Request{3, CommoditySet(4, {1})}},
                  "tiny");
}

TEST(Verifier, AcceptsValidRun) {
  Fixture fx;
  const Instance inst = tiny_instance(fx);
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(inst.request(0));
  const FacilityId f = ledger.open_facility(0, CommoditySet(4, {0, 1}));
  ledger.assign(0, f);
  ledger.assign(1, f);
  ledger.finish_request();
  ledger.begin_request(inst.request(1));
  ledger.assign(1, f);
  ledger.finish_request();
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
}

TEST(Verifier, RejectsWrongRequestCount) {
  Fixture fx;
  const Instance inst = tiny_instance(fx);
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(inst.request(0));
  const FacilityId f = ledger.open_facility(0, CommoditySet(4, {0, 1}));
  ledger.assign(0, f);
  ledger.assign(1, f);
  ledger.finish_request();
  const auto violation = verify_solution(inst, ledger);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->what.find("requests"), std::string::npos);
}

TEST(Verifier, RejectsSequenceMismatch) {
  Fixture fx;
  const Instance inst = tiny_instance(fx);
  SolutionLedger ledger(fx.metric, fx.cost);
  // Serve different requests than the instance's.
  ledger.begin_request(Request{1, CommoditySet(4, {0})});
  FacilityId f = ledger.open_facility(1, CommoditySet(4, {0}));
  ledger.assign(0, f);
  ledger.finish_request();
  ledger.begin_request(Request{1, CommoditySet(4, {0})});
  ledger.assign(0, f);
  ledger.finish_request();
  const auto violation = verify_solution(inst, ledger);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->what.find("differs"), std::string::npos);
}

TEST(Verifier, RejectsInFlightRequest) {
  Fixture fx;
  const Instance inst = tiny_instance(fx);
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(inst.request(0));
  EXPECT_TRUE(verify_solution(inst, ledger).has_value());
}

// ----------------------------------------------- capacity / admission ---

CapacityMap uniform_caps(std::size_t points, std::uint64_t cap) {
  return std::make_shared<const std::vector<std::uint64_t>>(points, cap);
}

TEST(CapacitatedLedger, ReassignSpillsToNextNearestFeasible) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost,
                        ConnectionChargePolicy::kPerFacility,
                        uniform_caps(4, 1), OverflowPolicy::kReassign);
  ASSERT_TRUE(ledger.capacitated());

  // Request 0 fills the facility at point 1.
  ledger.begin_request(fx.request(1, {0}));
  const FacilityId f0 = ledger.open_facility(1, CommoditySet(4, {0}));
  ledger.assign(0, f0);
  ledger.finish_request();
  EXPECT_EQ(ledger.occupancy(f0), 1u);
  EXPECT_EQ(ledger.facility_capacity(f0), 1u);

  // Request 1 also wants f0; the open facility at point 2 offering the
  // same commodity is the next-nearest feasible target.
  ledger.begin_request(fx.request(1, {0}));
  const FacilityId f1 = ledger.open_facility(2, CommoditySet(4, {0}));
  ledger.assign(0, f0);
  ledger.finish_request();

  EXPECT_EQ(ledger.num_spilled_assignments(), 1u);
  EXPECT_EQ(ledger.num_shed_requests(), 0u);
  EXPECT_EQ(ledger.occupancy(f0), 1u);
  EXPECT_EQ(ledger.occupancy(f1), 1u);
  // Connection: request 0 paid 0 (at f0); request 1 paid d(1,2) = 10.
  EXPECT_DOUBLE_EQ(ledger.connection_cost(), 10.0);
  const RequestRecord& spilled = ledger.request_record(1);
  ASSERT_EQ(spilled.served.size(), 1u);
  EXPECT_EQ(spilled.served[0].facility, f1);
  EXPECT_TRUE(spilled.rejected.empty());
}

TEST(CapacitatedLedger, ReassignOpensSingletonWhenNothingFeasible) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost,
                        ConnectionChargePolicy::kPerFacility,
                        uniform_caps(4, 1), OverflowPolicy::kReassign);
  ledger.begin_request(fx.request(1, {0}));
  const FacilityId f0 = ledger.open_facility(1, CommoditySet(4, {0}));
  ledger.assign(0, f0);
  ledger.finish_request();

  // No other facility exists: the ledger opens a fresh singleton at the
  // request's own location (point 3) and serves there.
  ledger.begin_request(fx.request(3, {0}));
  ledger.assign(0, f0);
  ledger.finish_request();

  EXPECT_EQ(ledger.num_facilities(), 2u);
  EXPECT_EQ(ledger.num_spilled_assignments(), 1u);
  const RequestRecord& rec = ledger.request_record(1);
  ASSERT_EQ(rec.served.size(), 1u);
  EXPECT_EQ(ledger.facility(rec.served[0].facility).location, PointId{3});
  // Served at its own location: no connection cost for request 1.
  EXPECT_DOUBLE_EQ(ledger.connection_cost(), 0.0);
}

TEST(CapacitatedLedger, RejectPolicyShedsAtFullFacility) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost,
                        ConnectionChargePolicy::kPerFacility,
                        uniform_caps(4, 1), OverflowPolicy::kReject);
  ledger.begin_request(fx.request(1, {0}));
  const FacilityId f0 = ledger.open_facility(1, CommoditySet(4, {0}));
  ledger.assign(0, f0);
  ledger.finish_request();

  ledger.begin_request(fx.request(2, {0, 1}));
  const FacilityId f1 = ledger.open_facility(2, CommoditySet(4, {1}));
  ledger.assign(0, f0);  // full -> rejected, not served
  ledger.assign(1, f1);
  ledger.finish_request();

  EXPECT_EQ(ledger.num_shed_requests(), 1u);
  EXPECT_EQ(ledger.num_rejected_commodities(), 1u);
  EXPECT_EQ(ledger.num_spilled_assignments(), 0u);
  const RequestRecord& rec = ledger.request_record(1);
  ASSERT_EQ(rec.rejected.size(), 1u);
  EXPECT_EQ(rec.rejected[0], CommodityId{0});
  ASSERT_EQ(rec.served.size(), 1u);
  // The rejected commodity pays no connection cost; only commodity 1 at
  // its own point does (distance 0).
  EXPECT_DOUBLE_EQ(ledger.connection_cost(), 0.0);
  EXPECT_EQ(ledger.occupancy(f0), 1u);
}

TEST(CapacitatedLedger, RetirementReleasesOccupancy) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost,
                        ConnectionChargePolicy::kPerFacility,
                        uniform_caps(4, 1), OverflowPolicy::kReject);
  ledger.begin_request(fx.request(1, {0}));
  const FacilityId f0 = ledger.open_facility(1, CommoditySet(4, {0}));
  ledger.assign(0, f0);
  ledger.finish_request();
  EXPECT_EQ(ledger.occupancy(f0), 1u);

  ledger.retire_request(0, 1);
  EXPECT_EQ(ledger.occupancy(f0), 0u);

  // The freed slot admits the next request without shedding.
  ledger.begin_request(fx.request(1, {0}));
  ledger.assign(0, f0);
  ledger.finish_request();
  EXPECT_EQ(ledger.occupancy(f0), 1u);
  EXPECT_EQ(ledger.num_shed_requests(), 0u);
}

TEST(CapacitatedLedger, SameRequestReusesItsSlot) {
  // A request already connected to a full facility may route more of its
  // own commodities there — occupancy counts distinct requests, not
  // assignments.
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost,
                        ConnectionChargePolicy::kPerFacility,
                        uniform_caps(4, 1), OverflowPolicy::kReject);
  ledger.begin_request(fx.request(1, {0, 1}));
  const FacilityId f0 = ledger.open_facility(1, CommoditySet(4, {0, 1}));
  ledger.assign(0, f0);
  ledger.assign(1, f0);
  ledger.finish_request();
  EXPECT_EQ(ledger.occupancy(f0), 1u);
  EXPECT_EQ(ledger.num_rejected_commodities(), 0u);
}

TEST(CapacitatedLedger, ZeroCapacityLocationShedsEvenUnderReassign) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost,
                        ConnectionChargePolicy::kPerFacility,
                        uniform_caps(4, 0), OverflowPolicy::kReassign);
  ledger.begin_request(fx.request(1, {0}));
  const FacilityId f0 = ledger.open_facility(1, CommoditySet(4, {0}));
  ledger.assign(0, f0);
  ledger.finish_request();

  EXPECT_EQ(ledger.num_shed_requests(), 1u);
  EXPECT_EQ(ledger.num_rejected_commodities(), 1u);
  EXPECT_EQ(ledger.occupancy(f0), 0u);
  EXPECT_TRUE(ledger.request_record(0).served.empty());
}

TEST(CapacitatedLedger, InfiniteCapacityBehavesUncapacitated) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost,
                        ConnectionChargePolicy::kPerFacility,
                        uniform_caps(4, kUncapacitated),
                        OverflowPolicy::kReject);
  // Every entry infinite -> the map does not count as capacitated.
  EXPECT_FALSE(ledger.capacitated());
  ledger.begin_request(fx.request(0, {0}));
  const FacilityId f = ledger.open_facility(0, CommoditySet(4, {0}));
  for (int i = 0; i < 3; ++i) {
    if (i > 0) ledger.begin_request(fx.request(0, {0}));
    ledger.assign(0, f);
    ledger.finish_request();
  }
  EXPECT_EQ(ledger.num_shed_requests(), 0u);
  EXPECT_EQ(ledger.occupancy(f), 3u);
}

TEST(CapacitatedVerifier, FlagsHandTamperedOverCapacityLedger) {
  // The ledger is built uncapacitated (so it happily over-subscribes);
  // the instance carries tight capacities. The static verifier must
  // re-derive occupancy and reject — this is the "hand-tampered ledger"
  // path the ledger's own bookkeeping cannot see.
  Fixture fx;
  Instance inst(fx.metric, fx.cost,
                {Request{1, CommoditySet(4, {0})},
                 Request{1, CommoditySet(4, {0})}},
                "tampered");
  inst.set_capacities(uniform_caps(4, 1));

  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(inst.request(0));
  const FacilityId f = ledger.open_facility(1, CommoditySet(4, {0}));
  ledger.assign(0, f);
  ledger.finish_request();
  ledger.begin_request(inst.request(1));
  ledger.assign(0, f);
  ledger.finish_request();

  const auto violation = verify_solution(inst, ledger);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->what.find("capacity"), std::string::npos);
}

TEST(CapacitatedVerifier, RejectsShedOnUncapacitatedInstance) {
  Fixture fx;
  const Instance inst = Instance(fx.metric, fx.cost,
                                 {Request{1, CommoditySet(4, {0})},
                                  Request{1, CommoditySet(4, {0})}},
                                 "uncapped");
  SolutionLedger ledger(fx.metric, fx.cost,
                        ConnectionChargePolicy::kPerFacility,
                        uniform_caps(4, 1), OverflowPolicy::kReject);
  ledger.begin_request(inst.request(0));
  const FacilityId f = ledger.open_facility(1, CommoditySet(4, {0}));
  ledger.assign(0, f);
  ledger.finish_request();
  ledger.begin_request(inst.request(1));
  ledger.assign(0, f);  // rejected by the capacitated ledger
  ledger.finish_request();

  // Verified against the *uncapacitated* instance, the rejection itself
  // is the violation.
  const auto violation = verify_solution(inst, ledger);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->what.find("uncapacitated"), std::string::npos);
}

TEST(CapacitatedVerifier, AcceptsCapacityFeasibleRun) {
  Fixture fx;
  Instance inst(fx.metric, fx.cost,
                {Request{1, CommoditySet(4, {0})},
                 Request{1, CommoditySet(4, {0})}},
                "feasible");
  const CapacityMap caps = uniform_caps(4, 1);
  inst.set_capacities(caps);

  SolutionLedger ledger(fx.metric, fx.cost,
                        ConnectionChargePolicy::kPerFacility, caps,
                        OverflowPolicy::kReject);
  ledger.begin_request(inst.request(0));
  const FacilityId f = ledger.open_facility(1, CommoditySet(4, {0}));
  ledger.assign(0, f);
  ledger.finish_request();
  ledger.begin_request(inst.request(1));
  ledger.assign(0, f);  // shed
  ledger.finish_request();

  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
}

}  // namespace
}  // namespace omflp
