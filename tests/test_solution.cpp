// Tests for the solution ledger's accounting and rule enforcement, and for
// the independent verifier (including that it catches violations the
// ledger itself cannot see).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cost/cost_models.hpp"
#include "instance/instance.hpp"
#include "metric/line_metric.hpp"
#include "solution/solution.hpp"
#include "solution/verifier.hpp"

namespace omflp {
namespace {

struct Fixture {
  MetricPtr metric = LineMetric::uniform_grid(4, 30.0);  // 0,10,20,30
  CostModelPtr cost = std::make_shared<PolynomialCostModel>(4, 1.0);

  Request request(PointId loc, std::initializer_list<CommodityId> es) {
    return Request{loc, CommoditySet(4, es)};
  }
};

TEST(SolutionLedger, HappyPathAccounting) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost);

  ledger.begin_request(fx.request(0, {0, 1}));
  const FacilityId f0 = ledger.open_facility(1, CommoditySet(4, {0, 1}));
  ledger.assign(0, f0);
  ledger.assign(1, f0);
  ledger.finish_request();

  // Opening: sqrt(2); connection: one shared path of length 10.
  EXPECT_NEAR(ledger.opening_cost(), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(ledger.connection_cost(), 10.0);
  EXPECT_EQ(ledger.num_facilities(), 1u);
  EXPECT_EQ(ledger.request_records()[0].connected.size(), 1u);

  // Second request reuses the facility plus a new singleton.
  ledger.begin_request(fx.request(3, {0, 2}));
  const FacilityId f1 = ledger.open_facility(3, CommoditySet(4, {2}));
  ledger.assign(0, f0);
  ledger.assign(2, f1);
  ledger.finish_request();

  EXPECT_NEAR(ledger.opening_cost(), std::sqrt(2.0) + 1.0, 1e-12);
  // Request 2 connects to f0 (distance 20) and f1 (distance 0).
  EXPECT_DOUBLE_EQ(ledger.connection_cost(), 30.0);
  EXPECT_EQ(ledger.num_small_facilities(), 1u);
  EXPECT_EQ(ledger.num_large_facilities(), 0u);
}

TEST(SolutionLedger, SharedPathChargedOncePerFacility) {
  Fixture fx;
  SolutionLedger per_facility(fx.metric, fx.cost,
                              ConnectionChargePolicy::kPerFacility);
  per_facility.begin_request(fx.request(0, {0, 1, 2}));
  const FacilityId f =
      per_facility.open_facility(2, CommoditySet(4, {0, 1, 2}));
  per_facility.assign(0, f);
  per_facility.assign(1, f);
  per_facility.assign(2, f);
  per_facility.finish_request();
  EXPECT_DOUBLE_EQ(per_facility.connection_cost(), 20.0);

  // The §1.1 alternative model charges the path per served commodity.
  SolutionLedger per_commodity(fx.metric, fx.cost,
                               ConnectionChargePolicy::kPerCommodity);
  per_commodity.begin_request(fx.request(0, {0, 1, 2}));
  const FacilityId g =
      per_commodity.open_facility(2, CommoditySet(4, {0, 1, 2}));
  per_commodity.assign(0, g);
  per_commodity.assign(1, g);
  per_commodity.assign(2, g);
  per_commodity.finish_request();
  EXPECT_DOUBLE_EQ(per_commodity.connection_cost(), 60.0);
}

TEST(SolutionLedger, EnforcesProtocol) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost);
  // No facility opening outside a request.
  EXPECT_THROW(ledger.open_facility(0, CommoditySet(4, {0})),
               std::invalid_argument);
  ledger.begin_request(fx.request(0, {0}));
  // No double begin.
  EXPECT_THROW(ledger.begin_request(fx.request(0, {0})),
               std::invalid_argument);
  const FacilityId f = ledger.open_facility(0, CommoditySet(4, {0}));
  // Assigning an undemanded commodity.
  EXPECT_THROW(ledger.assign(1, f), std::invalid_argument);
  // Assigning to a facility that does not offer the commodity.
  const FacilityId g = ledger.open_facility(0, CommoditySet(4, {2}));
  EXPECT_THROW(ledger.assign(0, g), std::invalid_argument);
  ledger.assign(0, f);
  // Double assignment of the same commodity.
  EXPECT_THROW(ledger.assign(0, f), std::invalid_argument);
  ledger.finish_request();
  // Finish without a request in flight.
  EXPECT_THROW(ledger.finish_request(), std::invalid_argument);
}

TEST(SolutionLedger, IncompleteCoverageRejected) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(fx.request(0, {0, 1}));
  const FacilityId f = ledger.open_facility(0, CommoditySet(4, {0}));
  ledger.assign(0, f);
  EXPECT_THROW(ledger.finish_request(), std::invalid_argument);
}

TEST(SolutionLedger, EmptyConfigRejected) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(fx.request(0, {0}));
  EXPECT_THROW(ledger.open_facility(0, CommoditySet(4)),
               std::invalid_argument);
}

TEST(SolutionLedger, LargeFacilityCounted) {
  Fixture fx;
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(fx.request(0, {0}));
  const FacilityId f = ledger.open_facility(0, CommoditySet::full_set(4));
  ledger.assign(0, f);
  ledger.finish_request();
  EXPECT_EQ(ledger.num_large_facilities(), 1u);
  EXPECT_EQ(ledger.num_small_facilities(), 0u);
}

// ------------------------------------------------------------ verifier ---

Instance tiny_instance(const Fixture& fx) {
  return Instance(fx.metric, fx.cost,
                  {Request{0, CommoditySet(4, {0, 1})},
                   Request{3, CommoditySet(4, {1})}},
                  "tiny");
}

TEST(Verifier, AcceptsValidRun) {
  Fixture fx;
  const Instance inst = tiny_instance(fx);
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(inst.request(0));
  const FacilityId f = ledger.open_facility(0, CommoditySet(4, {0, 1}));
  ledger.assign(0, f);
  ledger.assign(1, f);
  ledger.finish_request();
  ledger.begin_request(inst.request(1));
  ledger.assign(1, f);
  ledger.finish_request();
  EXPECT_FALSE(verify_solution(inst, ledger).has_value());
}

TEST(Verifier, RejectsWrongRequestCount) {
  Fixture fx;
  const Instance inst = tiny_instance(fx);
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(inst.request(0));
  const FacilityId f = ledger.open_facility(0, CommoditySet(4, {0, 1}));
  ledger.assign(0, f);
  ledger.assign(1, f);
  ledger.finish_request();
  const auto violation = verify_solution(inst, ledger);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->what.find("requests"), std::string::npos);
}

TEST(Verifier, RejectsSequenceMismatch) {
  Fixture fx;
  const Instance inst = tiny_instance(fx);
  SolutionLedger ledger(fx.metric, fx.cost);
  // Serve different requests than the instance's.
  ledger.begin_request(Request{1, CommoditySet(4, {0})});
  FacilityId f = ledger.open_facility(1, CommoditySet(4, {0}));
  ledger.assign(0, f);
  ledger.finish_request();
  ledger.begin_request(Request{1, CommoditySet(4, {0})});
  ledger.assign(0, f);
  ledger.finish_request();
  const auto violation = verify_solution(inst, ledger);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->what.find("differs"), std::string::npos);
}

TEST(Verifier, RejectsInFlightRequest) {
  Fixture fx;
  const Instance inst = tiny_instance(fx);
  SolutionLedger ledger(fx.metric, fx.cost);
  ledger.begin_request(inst.request(0));
  EXPECT_TRUE(verify_solution(inst, ledger).has_value());
}

}  // namespace
}  // namespace omflp
