// Analysis module tests: the Figure 2 bound curves (anchor values the
// paper states explicitly), the c-ordered covering greedy against the
// Lemma 12 guarantee, and the experiment runner.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/c_ordered_covering.hpp"
#include "analysis/experiment.hpp"
#include "support/harmonic.hpp"

namespace omflp {
namespace {

// ---------------------------------------------------------- Figure 2 -----

TEST(Figure2, AnchorsFromThePaper) {
  const double s = 10000.0;  // the paper plots |S| = 10^4
  // x = 0: upper √S^0 = 1; lower min{√S^1, √S^0} = 1.
  EXPECT_DOUBLE_EQ(theorem18_upper_factor(0.0, s), 1.0);
  EXPECT_DOUBLE_EQ(theorem18_lower_factor(0.0, s), 1.0);
  // x = 2: (2x−x²)/2 = 0 → 1; lower min{√S^0, √S^1} = 1.
  EXPECT_DOUBLE_EQ(theorem18_upper_factor(2.0, s), 1.0);
  EXPECT_DOUBLE_EQ(theorem18_lower_factor(2.0, s), 1.0);
  // x = 1: both peak at ⁴√S = 10.
  EXPECT_NEAR(theorem18_upper_factor(1.0, s), 10.0, 1e-9);
  EXPECT_NEAR(theorem18_lower_factor(1.0, s), 10.0, 1e-9);
}

TEST(Figure2, UpperDominatesLowerEverywhere) {
  const double s = 10000.0;
  for (double x = 0.0; x <= 2.0001; x += 0.01) {
    const double clamped = std::min(x, 2.0);
    EXPECT_GE(theorem18_upper_factor(clamped, s) + 1e-12,
              theorem18_lower_factor(clamped, s))
        << "x=" << clamped;
  }
}

TEST(Figure2, PeakAtXEqualsOne) {
  const double s = 10000.0;
  const double peak = theorem18_upper_factor(1.0, s);
  for (double x : {0.0, 0.3, 0.7, 1.3, 1.7, 2.0})
    EXPECT_LT(theorem18_upper_factor(x, s), peak + 1e-12);
}

TEST(Figure2, SeriesShapeAndEndpoints) {
  const auto rows = figure2_series(10000.0, 0.05);
  ASSERT_GE(rows.size(), 40u);
  EXPECT_DOUBLE_EQ(rows.front().x, 0.0);
  EXPECT_DOUBLE_EQ(rows.back().x, 2.0);
  EXPECT_DOUBLE_EQ(rows.front().upper, 1.0);
  EXPECT_DOUBLE_EQ(rows.back().upper, 1.0);
}

TEST(Bounds, Theorem4AndTheorem2Values) {
  // 15·√16·H_2 = 15·4·1.5 = 90.
  EXPECT_NEAR(theorem4_bound(16, 2), 90.0, 1e-9);
  // √256/16 = 1.
  EXPECT_DOUBLE_EQ(theorem2_bound(256), 1.0);
}

// ------------------------------------------------- c-ordered covering ----

TEST(COrderedCovering, ValidatesStructure) {
  // Valid: B_0 = {}, B_1 = {}, B_2 = {0}, B_3 = {0, 1}.
  COrderedInstance ok({{}, {}, {0}, {0, 1}}, 1.0);
  EXPECT_EQ(ok.num_elements(), 4u);
  EXPECT_EQ(ok.b_size(3), 2u);
  EXPECT_EQ(ok.a_members(3), (std::vector<std::size_t>{2}));

  // Nesting violation: B_2 = {0} but B_3 = {1}.
  EXPECT_THROW(COrderedInstance({{}, {}, {0}, {1}}, 1.0),
               std::invalid_argument);
  // Out-of-range member.
  EXPECT_THROW(COrderedInstance({{}, {5}}, 1.0), std::invalid_argument);
  // Non-positive weight.
  EXPECT_THROW(COrderedInstance({{}}, 0.0), std::invalid_argument);
}

TEST(COrderedCovering, CoverIsCompleteOnHandInstance) {
  COrderedInstance inst({{}, {}, {0}, {0}, {0, 2}}, 2.0);
  const auto result = inst.cover();
  std::vector<char> covered(inst.num_elements(), 0);
  for (const auto& set : result.sets)
    for (std::size_t e : set) {
      EXPECT_LT(e, inst.num_elements());
      covered[e] = 1;
    }
  for (char c : covered) EXPECT_TRUE(c);
  EXPECT_LE(result.total_weight,
            2.0 * inst.weight_c() * harmonic(inst.num_elements()) + 1e-9);
}

TEST(COrderedCovering, AllEmptyBsCoversWithOneSet) {
  // With every B_i empty, {n−1} ∪ A_{n−1} covers everything at weight c.
  COrderedInstance inst({{}, {}, {}, {}, {}}, 3.0);
  const auto result = inst.cover();
  EXPECT_DOUBLE_EQ(result.total_weight, 3.0);
  ASSERT_EQ(result.sets.size(), 1u);
  EXPECT_EQ(result.sets[0].size(), 5u);
}

TEST(COrderedCovering, FullBsUseSingletons) {
  // B_i = {0..i−1}: every element copes nobody, so elements must be
  // covered by singletons of weight c/(|B_i|+1) = c/(i+1): total = c·H_n.
  COrderedInstance inst({{}, {0}, {0, 1}, {0, 1, 2}}, 1.0);
  const auto result = inst.cover();
  EXPECT_NEAR(result.total_weight, harmonic(4), 1e-9);
  EXPECT_EQ(result.sets.size(), 4u);
}

class COrderedProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(COrderedProperty, Lemma12WeightBoundHolds) {
  const auto [n, growth] = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 1000 + n);
    const double c = 1.0 + rng.uniform(0.0, 5.0);
    const COrderedInstance inst =
        COrderedInstance::random_instance(n, c, growth, rng);
    const auto result = inst.cover();

    // Complete cover...
    std::vector<char> covered(n, 0);
    for (const auto& set : result.sets)
      for (std::size_t e : set) covered[e] = 1;
    for (std::size_t e = 0; e < n; ++e)
      ASSERT_TRUE(covered[e]) << "element " << e << " uncovered";

    // ...within the Lemma 12 budget.
    EXPECT_LE(result.total_weight, 2.0 * c * harmonic(n) + 1e-9)
        << "n=" << n << " growth=" << growth << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, COrderedProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 17, 64, 200),
                       ::testing::Values(0.0, 0.2, 0.5, 0.9, 1.0)));

// ------------------------------------------------------------- runner ----

TEST(ExperimentRunner, CollectsAllTrials) {
  const Summary s =
      run_trials(64, [](std::size_t i) { return static_cast<double>(i); });
  EXPECT_EQ(s.count(), 64u);
  EXPECT_DOUBLE_EQ(s.mean(), 31.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 63.0);
}

TEST(ExperimentRunner, PropagatesTrialErrors) {
  EXPECT_THROW(run_trials(8,
                          [](std::size_t i) -> double {
                            if (i == 3) throw std::runtime_error("trial");
                            return 0.0;
                          }),
               std::runtime_error);
}

}  // namespace
}  // namespace omflp
