#include "instance/stream_io.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "instance/io_detail.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"

namespace omflp {

namespace {

constexpr const char* kHeader = "OMFLP-STREAM v1";

/// Parsed "events <n> arrivals <k>" counts plus the sections before it.
struct StreamHeader {
  std::string name;
  CommodityId commodities = 0;
  MetricPtr metric;
  CostModelPtr cost;
  CapacityMap capacities;
  std::uint64_t num_events = 0;
  std::uint64_t num_arrivals = 0;
};

StreamHeader read_header(iodetail::LineReader& reader) {
  StreamHeader header;
  if (reader.next("header") != kHeader)
    reader.fail("bad header, expected 'OMFLP-STREAM v1'");

  std::string name_line = reader.next("name");
  if (name_line.rfind("name ", 0) != 0) reader.fail("expected 'name ...'");
  header.name = name_line.substr(5);

  // Counts are parsed strictly (istream extraction into an unsigned
  // would wrap "events -5" to 2^64−5 and then die on a bogus reserve).
  auto take_count = [&](std::istringstream& line, const char* what) {
    std::string token;
    if (!(line >> token)) reader.fail(std::string("missing ") + what);
    const auto value = parse_u64_strict(token);
    if (!value)
      reader.fail(std::string("bad ") + what + " '" + token + "'");
    return *value;
  };

  std::istringstream commodities_line(reader.next("commodities"));
  std::string word;
  if (!(commodities_line >> word) || word != "commodities")
    reader.fail("expected 'commodities <|S|>'");
  const std::uint64_t s = take_count(commodities_line, "commodity count");
  if (s == 0 || s > std::numeric_limits<CommodityId>::max())
    reader.fail("commodity count out of range");
  header.commodities = static_cast<CommodityId>(s);

  header.metric = iodetail::read_metric_matrix(reader);
  header.cost = iodetail::read_cost_model(reader, header.commodities);

  // Optional capacity section between the cost model and the event
  // block; branch on the already-read line (no pushback).
  std::string section = reader.next("events");
  header.capacities = iodetail::maybe_read_capacities(
      reader, section, header.metric->num_points());

  std::istringstream events_line(section);
  if (!(events_line >> word) || word != "events")
    reader.fail("expected 'events <n> arrivals <k>'");
  header.num_events = take_count(events_line, "event count");
  std::string arrivals_word;
  if (!(events_line >> arrivals_word) || arrivals_word != "arrivals")
    reader.fail("expected 'events <n> arrivals <k>'");
  header.num_arrivals = take_count(events_line, "arrival count");
  if (header.num_arrivals > header.num_events)
    reader.fail("arrival count exceeds event count");
  return header;
}

/// One event line in the format above. Strict, in the spirit of
/// support/parse.hpp: every numeric field must be a clean token (so
/// "d 3.5" is rejected rather than truncated to 3), duplicate commodity
/// ids fail instead of silently collapsing the demand set, and trailing
/// garbage after the last expected field is an error — a hand-edited or
/// corrupted trace must be rejected, not misread into another workload.
StreamEvent read_event(iodetail::LineReader& reader, CommodityId s,
                       std::size_t num_points) {
  std::istringstream row(reader.next("event"));
  std::string tag;
  if (!(row >> tag)) reader.fail("empty event line");

  auto take_u64 = [&](const char* what) {
    std::string token;
    if (!(row >> token)) reader.fail(std::string("missing ") + what);
    const auto value = parse_u64_strict(token);
    if (!value)
      reader.fail(std::string("bad ") + what + " '" + token + "'");
    return *value;
  };
  auto reject_trailing = [&] {
    std::string extra;
    if (row >> extra)
      reader.fail("trailing garbage '" + extra + "' on event line");
  };

  if (tag == "d") {
    const std::uint64_t target = take_u64("departure target");
    reject_trailing();
    return StreamEvent::departure(static_cast<RequestId>(target));
  }
  if (tag != "a") reader.fail("unknown event tag '" + tag + "'");
  const std::uint64_t location = take_u64("arrival location");
  if (location >= num_points)
    reader.fail("arrival location outside the metric space");
  const std::uint64_t k = take_u64("demand-set size");
  if (k == 0 || k > s) reader.fail("bad demand-set size");
  Request r;
  r.location = static_cast<PointId>(location);
  r.commodities = CommoditySet(s);
  for (std::uint64_t j = 0; j < k; ++j) {
    const std::uint64_t e = take_u64("commodity id");
    if (e >= s) reader.fail("bad commodity id in arrival");
    if (r.commodities.contains(static_cast<CommodityId>(e)))
      reader.fail("duplicate commodity id in arrival");
    r.commodities.add(static_cast<CommodityId>(e));
  }
  std::uint64_t lease = 0;
  std::string lease_tag;
  if (row >> lease_tag) {
    if (lease_tag != "L")
      reader.fail("trailing garbage '" + lease_tag + "' on event line");
    lease = take_u64("lease");
    if (lease == 0) reader.fail("lease must be positive");
    reject_trailing();
  }
  return StreamEvent::arrival(std::move(r), lease);
}

}  // namespace

void write_event_stream(std::ostream& os, const EventStream& stream) {
  os << kHeader << '\n';
  os << "name " << stream.name() << '\n';
  const CommodityId s = stream.num_commodities();
  os << "commodities " << s << '\n';
  os.precision(17);
  iodetail::write_metric_matrix(os, stream.metric());
  iodetail::write_cost_model(os, stream.cost(), s, "write_event_stream");
  iodetail::write_capacities(os, stream.capacities());

  os << "events " << stream.num_events() << " arrivals "
     << stream.num_arrivals() << '\n';
  for (const StreamEvent& e : stream.events()) {
    if (e.kind == StreamEvent::Kind::kDeparture) {
      os << "d " << e.target << '\n';
      continue;
    }
    os << "a " << e.request.location << ' ' << e.request.commodities.count();
    e.request.commodities.for_each(
        [&](CommodityId commodity) { os << ' ' << commodity; });
    if (e.lease > 0) os << " L " << e.lease;
    os << '\n';
  }
}

std::string event_stream_to_string(const EventStream& stream) {
  std::ostringstream os;
  write_event_stream(os, stream);
  return os.str();
}

EventStream read_event_stream(std::istream& is) {
  iodetail::LineReader reader(is, "read_event_stream");
  StreamHeader header = read_header(reader);
  std::vector<StreamEvent> events;
  // Capped reserve: a syntactically-valid but absurd declared count must
  // fail at "unexpected end of input", not in the allocator.
  events.reserve(capped_reserve(header.num_events, std::size_t{1} << 20));
  const std::size_t points = header.metric->num_points();
  for (std::uint64_t i = 0; i < header.num_events; ++i)
    events.push_back(read_event(reader, header.commodities, points));
  if (reader.try_next())
    reader.fail("trailing content after the declared events");
  EventStream stream(std::move(header.metric), std::move(header.cost),
                     std::move(events), std::move(header.name));
  stream.set_capacities(std::move(header.capacities));
  if (stream.num_arrivals() != header.num_arrivals)
    reader.fail("arrival count does not match the header");
  return stream;
}

EventStream event_stream_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_event_stream(is);
}

// ------------------------------------------------------- batched reader ---

struct StreamTraceReader::Impl {
  iodetail::LineReader reader;
  StreamHeader header;
  std::size_t num_points = 0;
  std::uint64_t remaining = 0;
  std::uint64_t arrivals_seen = 0;

  explicit Impl(std::istream& is) : reader(is, "read_event_stream") {
    header = read_header(reader);
    num_points = header.metric->num_points();
    remaining = header.num_events;
  }
};

StreamTraceReader::StreamTraceReader(std::istream& is)
    : impl_(std::make_unique<Impl>(is)) {}

StreamTraceReader::~StreamTraceReader() = default;

MetricPtr StreamTraceReader::metric() const { return impl_->header.metric; }
CostModelPtr StreamTraceReader::cost() const { return impl_->header.cost; }
CapacityMap StreamTraceReader::capacities() const {
  return impl_->header.capacities;
}
const std::string& StreamTraceReader::name() const {
  return impl_->header.name;
}
std::uint64_t StreamTraceReader::num_events() const noexcept {
  return impl_->header.num_events;
}
std::uint64_t StreamTraceReader::num_arrivals() const noexcept {
  return impl_->header.num_arrivals;
}

std::size_t StreamTraceReader::next_batch(std::vector<StreamEvent>& out,
                                          std::size_t max_events) {
  std::size_t produced = 0;
  while (produced < max_events && impl_->remaining > 0) {
    out.push_back(read_event(impl_->reader, impl_->header.commodities,
                             impl_->num_points));
    if (out.back().kind == StreamEvent::Kind::kArrival)
      ++impl_->arrivals_seen;
    --impl_->remaining;
    ++produced;
  }
  if (impl_->remaining == 0 && produced > 0) {
    if (impl_->arrivals_seen != impl_->header.num_arrivals)
      impl_->reader.fail("arrival count does not match the header");
    // The declared count must cover the whole file: a truncated 'events'
    // header would otherwise silently replay a prefix of the workload.
    if (impl_->reader.try_next())
      impl_->reader.fail("trailing content after the declared events");
  }
  return produced;
}

}  // namespace omflp
