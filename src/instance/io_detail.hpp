// Shared internals of the trace formats (instance/io.hpp and
// instance/stream_io.hpp): the comment-skipping line reader and the
// metric / cost-model section (de)serializers both formats embed.
//
// Everything here is an implementation detail of the two public IO
// modules; include it only from their .cpps (and tests that pin the
// section formats down).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "cost/cost_model.hpp"
#include "instance/capacity.hpp"
#include "metric/metric_space.hpp"

namespace omflp::iodetail {

/// Reads the next non-comment, non-blank line; tracks line numbers for
/// error messages prefixed with the owning parser's name.
class LineReader {
 public:
  LineReader(std::istream& is, std::string error_prefix)
      : is_(is), prefix_(std::move(error_prefix)) {}

  /// Next content line; throws std::invalid_argument naming `what` at
  /// end of input.
  std::string next(const char* what);

  /// Next content line, or nullopt at end of input (for optional
  /// trailing sections).
  std::optional<std::string> try_next();

  [[noreturn]] void fail(const std::string& msg) const;

  std::size_t line_number() const noexcept { return line_number_; }

 private:
  std::istream& is_;
  std::string prefix_;
  std::size_t line_number_ = 0;
};

/// "metric matrix <|M|>" plus |M| rows of 17-significant-digit
/// distances. Any MetricSpace serializes through its (exactly symmetric)
/// distance matrix.
void write_metric_matrix(std::ostream& os, const MetricSpace& metric);

/// Reads the section write_metric_matrix emits; returns a MatrixMetric.
MetricPtr read_metric_matrix(LineReader& reader);

/// "cost sizeonly <g(0)> ... <g(|S|)>" or "cost linear <w_0> ...".
/// Throws std::invalid_argument — prefixed with `error_prefix`, the
/// calling writer's name — for models that are neither size-only nor
/// linear (the general f^σ_m has 2^|S| values per point).
void write_cost_model(std::ostream& os, const FacilityCostModel& cost,
                      CommodityId num_commodities,
                      const char* error_prefix);

/// Reads the section write_cost_model emits.
CostModelPtr read_cost_model(LineReader& reader,
                             CommodityId num_commodities);

/// Optional capacity section shared by both formats: "capacities <k>"
/// plus k rows "<point> <cap>" (strictly ascending points, finite caps
/// only). Written only when the map constrains at least one point, so
/// uncapacitated files are byte-identical to the pre-capacity formats.
void write_capacities(std::ostream& os, const CapacityMap& capacities);

/// If `line` is a "capacities <k>" header, consumes the section's rows
/// from `reader`, replaces `line` with the following content line (the
/// caller's next expected section) and returns the parsed map over
/// `num_points` points. Any other `line` is left untouched and nullptr
/// is returned. The LineReader has no pushback, so optional sections are
/// parsed by branching on the already-read line.
CapacityMap maybe_read_capacities(LineReader& reader, std::string& line,
                                  std::size_t num_points);

}  // namespace omflp::iodetail
