// OMFLP-TRACELOG v1 — the serialized form of a decision trace
// (src/obs/trace_sink.hpp), one JSON object per line:
//
//   {"format":"OMFLP-TRACELOG","version":1}
//   {"seq":0,"kind":"dual_raise","request":0,"commodity":1,...}
//   {"seq":1,"kind":"facility_open","request":0,"facility":0,...}
//   ...
//   {"end":true,"events":2}
//
// Every event line starts with its sequence number and the reader
// enforces seq == line index, so a dropped, duplicated or reordered line
// is detected immediately; the trailing end line pins the total count, so
// truncation is detected too. Each kind serializes a fixed field list in
// a fixed order with %.17g doubles, which makes read → rewrite reproduce
// the input byte for byte — tracelogs double as golden-trace differential
// artifacts (the CI trace-smoke job diffs OMFLP_THREADS=1 vs 4 outputs).
//
// The reader is strict in the spirit of support/parse.hpp: unknown kinds,
// out-of-order fields, non-finite numbers, seq gaps, a missing end line
// and trailing content are all rejected with std::invalid_argument; it
// holds one event in memory at a time (contributor lists are capped at
// kMaxTraceContributors), so absurd or hostile inputs cannot drive
// allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace_sink.hpp"

namespace omflp {

/// Serialize one event as its canonical single-line JSON (no newline).
std::string tracelog_event_to_json(const TraceEvent& event,
                                   std::uint64_t seq);

/// A TraceSink that streams events straight to `os` in OMFLP-TRACELOG v1.
/// The header is written on construction; call finish() (or let the
/// destructor do it) to append the end line. The ostream must outlive the
/// writer.
class TraceLogWriter final : public TraceSink {
 public:
  explicit TraceLogWriter(std::ostream& os);
  ~TraceLogWriter() override;

  TraceLogWriter(const TraceLogWriter&) = delete;
  TraceLogWriter& operator=(const TraceLogWriter&) = delete;

  void on_event(const TraceEvent& event) override;

  /// Write the end line and flush. Idempotent; further on_event calls
  /// throw std::logic_error.
  void finish();

  std::uint64_t events_written() const noexcept { return seq_; }

 private:
  std::ostream& os_;
  std::uint64_t seq_ = 0;
  bool finished_ = false;
};

/// Reader behavior on a damaged log (crash mid-write, torn tail).
enum class TraceLogReadMode {
  /// Reject everything: seq gaps, malformed lines, a missing end line
  /// and trailing content all throw. The default, and the only mode
  /// golden-trace diffing may use.
  kStrict,
  /// Crash recovery: yield the longest valid seq-contiguous prefix and
  /// stop at the first damaged line (or at an unterminated tail), never
  /// throwing past the header. truncated() reports whether anything was
  /// dropped. The header must still be valid — a file that is not a
  /// tracelog at all has no prefix to recover.
  kRecoverPrefix,
};

/// Bounded-memory streaming reader for OMFLP-TRACELOG v1. The header is
/// parsed on construction; next() yields events one at a time and returns
/// false only after validating the end line and the absence of trailing
/// content (strict mode) or at the first sign of damage (recover mode).
class TraceLogReader {
 public:
  explicit TraceLogReader(std::istream& is,
                          TraceLogReadMode mode = TraceLogReadMode::kStrict);
  ~TraceLogReader();

  TraceLogReader(const TraceLogReader&) = delete;
  TraceLogReader& operator=(const TraceLogReader&) = delete;

  /// Parse the next event into `out`. Returns false at the (validated)
  /// end of the log; throws std::invalid_argument on any malformation
  /// (strict mode only).
  bool next(TraceEvent& out);

  std::uint64_t events_read() const noexcept;

  /// True when recover mode stopped before a valid end line — the log
  /// was torn or corrupted and events_read() is the surviving prefix.
  /// Always false in strict mode (damage throws instead).
  bool truncated() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Materializing convenience wrappers (tests, `omflp explain`).
std::vector<TraceEvent> read_tracelog(
    std::istream& is, TraceLogReadMode mode = TraceLogReadMode::kStrict);
std::vector<TraceEvent> tracelog_from_string(const std::string& text);
void write_tracelog(std::ostream& os, const std::vector<TraceEvent>& events);
std::string tracelog_to_string(const std::vector<TraceEvent>& events);

}  // namespace omflp
