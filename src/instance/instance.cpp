#include "instance/instance.hpp"

#include "support/assert.hpp"

namespace omflp {

Instance::Instance(MetricPtr metric, CostModelPtr cost,
                   std::vector<Request> requests, std::string name)
    : metric_(std::move(metric)), cost_(std::move(cost)),
      requests_(std::move(requests)), name_(std::move(name)) {
  OMFLP_REQUIRE(metric_ != nullptr, "Instance: null metric");
  OMFLP_REQUIRE(cost_ != nullptr, "Instance: null cost model");
  validate();
}

const Request& Instance::request(RequestId i) const {
  OMFLP_REQUIRE(i < requests_.size(), "Instance::request: index range");
  return requests_[i];
}

void Instance::set_capacities(CapacityMap capacities) {
  if (capacities) {
    OMFLP_REQUIRE(capacities->size() <= metric_->num_points(),
                  "Instance: capacity map larger than the metric space");
  }
  capacities_ = std::move(capacities);
}

CommoditySet Instance::demanded_union() const {
  CommoditySet u(num_commodities());
  for (const Request& r : requests_) u |= r.commodities;
  return u;
}

void Instance::validate() const {
  const std::size_t points = metric_->num_points();
  const CommodityId s = num_commodities();
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const Request& r = requests_[i];
    OMFLP_REQUIRE(r.location < points,
                  "Instance: request location outside the metric space");
    OMFLP_REQUIRE(r.commodities.universe_size() == s,
                  "Instance: request commodity universe mismatch");
    OMFLP_REQUIRE(!r.commodities.empty(),
                  "Instance: request with empty demand set");
  }
}

}  // namespace omflp
