#include "instance/io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "instance/io_detail.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"

namespace omflp {

namespace {

constexpr const char* kHeader = "OMFLP-INSTANCE v1";

}  // namespace

void write_instance(std::ostream& os, const Instance& instance) {
  os << kHeader << '\n';
  os << "name " << instance.name() << '\n';
  const CommodityId s = instance.num_commodities();
  os << "commodities " << s << '\n';

  os.precision(17);
  iodetail::write_metric_matrix(os, instance.metric());
  iodetail::write_cost_model(os, instance.cost(), s, "write_instance");

  iodetail::write_capacities(os, instance.capacities());

  os << "requests " << instance.num_requests() << '\n';
  for (const Request& r : instance.requests()) {
    os << r.location << ' ' << r.commodities.count();
    r.commodities.for_each([&](CommodityId e) { os << ' ' << e; });
    os << '\n';
  }

  if (const auto& cert = instance.opt_certificate()) {
    os << "opt " << cert->upper_bound << ' ' << (cert->exact ? 1 : 0) << ' '
       << cert->note << '\n';
  }
}

std::string instance_to_string(const Instance& instance) {
  std::ostringstream os;
  write_instance(os, instance);
  return os.str();
}

Instance read_instance(std::istream& is) {
  iodetail::LineReader reader(is, "read_instance");

  if (reader.next("header") != kHeader)
    reader.fail("bad header, expected 'OMFLP-INSTANCE v1'");

  std::string name_line = reader.next("name");
  if (name_line.rfind("name ", 0) != 0) reader.fail("expected 'name ...'");
  std::string name = name_line.substr(5);

  std::istringstream commodities_line(reader.next("commodities"));
  std::string word;
  CommodityId s = 0;
  if (!(commodities_line >> word >> s) || word != "commodities" || s == 0)
    reader.fail("expected 'commodities <|S|>'");

  MetricPtr metric = iodetail::read_metric_matrix(reader);
  CostModelPtr cost = iodetail::read_cost_model(reader, s);

  // Optional capacity section sits between the cost model and the
  // request block; branch on the already-read line (no pushback).
  std::string section = reader.next("requests");
  CapacityMap capacities =
      iodetail::maybe_read_capacities(reader, section, metric->num_points());

  std::istringstream requests_line(section);
  std::size_t n = 0;
  if (!(requests_line >> word >> n) || word != "requests")
    reader.fail("expected 'requests <n>'");
  std::vector<Request> requests;
  // Capped reserve: an absurd declared count (fuzzed/corrupt traces)
  // must fail at "bad request line", not in the allocator.
  requests.reserve(capped_reserve(n, std::size_t{1} << 20));
  for (std::size_t i = 0; i < n; ++i) {
    std::istringstream row(reader.next("request"));
    PointId location = 0;
    CommodityId k = 0;
    if (!(row >> location >> k) || k == 0) reader.fail("bad request line");
    Request r;
    r.location = location;
    r.commodities = CommoditySet(s);
    for (CommodityId j = 0; j < k; ++j) {
      CommodityId e = 0;
      if (!(row >> e) || e >= s) reader.fail("bad commodity id in request");
      r.commodities.add(e);
    }
    requests.push_back(std::move(r));
  }

  Instance instance(std::move(metric), std::move(cost), std::move(requests),
                    std::move(name));
  instance.set_capacities(std::move(capacities));

  // Optional trailing opt certificate.
  if (const auto line = reader.try_next()) {
    std::istringstream opt_line(*line);
    double bound = 0.0;
    int exact = 0;
    if (!(opt_line >> word >> bound >> exact) || word != "opt")
      throw std::invalid_argument(
          "read_instance: trailing content is not an 'opt' line: " + *line);
    std::string note;
    std::getline(opt_line, note);
    if (!note.empty() && note.front() == ' ') note.erase(0, 1);
    instance.set_opt_certificate(
        OptCertificate{bound, exact != 0, std::move(note)});
  }
  return instance;
}

Instance instance_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_instance(is);
}

}  // namespace omflp
