#include "instance/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "cost/cost_models.hpp"
#include "metric/matrix_metric.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

constexpr const char* kHeader = "OMFLP-INSTANCE v1";

/// Reads the next non-comment, non-blank line; tracks line numbers for
/// error messages.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  std::string next(const char* what) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_number_;
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      if (line[first] == '#') continue;
      return line;
    }
    throw std::invalid_argument(std::string("read_instance: unexpected end "
                                            "of input while reading ") +
                                what);
  }

  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "read_instance: " << msg << " (line " << line_number_ << ")";
    throw std::invalid_argument(os.str());
  }

 private:
  std::istream& is_;
  std::size_t line_number_ = 0;
};

}  // namespace

void write_instance(std::ostream& os, const Instance& instance) {
  os << kHeader << '\n';
  os << "name " << instance.name() << '\n';
  const CommodityId s = instance.num_commodities();
  os << "commodities " << s << '\n';

  const MetricSpace& metric = instance.metric();
  const std::size_t points = metric.num_points();
  os << "metric matrix " << points << '\n';
  os.precision(17);
  // Every shipped MetricSpace is exactly symmetric (GraphMetric
  // symmetrizes its per-source Dijkstra results at construction); the
  // MatrixMetric constructor on the reading side validates this, so an
  // asymmetric future metric fails loudly at read time.
  for (PointId a = 0; a < points; ++a) {
    for (PointId b = 0; b < points; ++b) {
      if (b) os << ' ';
      os << metric.distance(a, b);
    }
    os << '\n';
  }

  if (const auto* size_only =
          dynamic_cast<const SizeOnlyCostModel*>(&instance.cost())) {
    os << "cost sizeonly";
    for (CommodityId k = 0; k <= s; ++k)
      os << ' ' << size_only->cost_of_size(k);
    os << '\n';
  } else if (const auto* poly = dynamic_cast<const PolynomialCostModel*>(
                 &instance.cost())) {
    os << "cost sizeonly";
    for (CommodityId k = 0; k <= s; ++k) os << ' ' << poly->cost_of_size(k);
    os << '\n';
  } else if (const auto* ceil_ratio =
                 dynamic_cast<const CeilRatioCostModel*>(&instance.cost())) {
    os << "cost sizeonly";
    for (CommodityId k = 0; k <= s; ++k)
      os << ' ' << ceil_ratio->cost_of_size(k);
    os << '\n';
  } else if (const auto* linear =
                 dynamic_cast<const LinearCostModel*>(&instance.cost())) {
    os << "cost linear";
    for (CommodityId e = 0; e < s; ++e)
      os << ' '
         << linear->open_cost(0, CommoditySet::singleton(s, e));
    os << '\n';
  } else {
    throw std::invalid_argument(
        "write_instance: only size-only and linear cost models are "
        "serializable; got " +
        instance.cost().description());
  }

  os << "requests " << instance.num_requests() << '\n';
  for (const Request& r : instance.requests()) {
    os << r.location << ' ' << r.commodities.count();
    r.commodities.for_each([&](CommodityId e) { os << ' ' << e; });
    os << '\n';
  }

  if (const auto& cert = instance.opt_certificate()) {
    os << "opt " << cert->upper_bound << ' ' << (cert->exact ? 1 : 0) << ' '
       << cert->note << '\n';
  }
}

std::string instance_to_string(const Instance& instance) {
  std::ostringstream os;
  write_instance(os, instance);
  return os.str();
}

Instance read_instance(std::istream& is) {
  LineReader reader(is);

  if (reader.next("header") != kHeader)
    reader.fail("bad header, expected 'OMFLP-INSTANCE v1'");

  std::string name_line = reader.next("name");
  if (name_line.rfind("name ", 0) != 0) reader.fail("expected 'name ...'");
  std::string name = name_line.substr(5);

  std::istringstream commodities_line(reader.next("commodities"));
  std::string word;
  CommodityId s = 0;
  if (!(commodities_line >> word >> s) || word != "commodities" || s == 0)
    reader.fail("expected 'commodities <|S|>'");

  std::istringstream metric_line(reader.next("metric"));
  std::string metric_kind;
  std::size_t points = 0;
  if (!(metric_line >> word >> metric_kind >> points) || word != "metric" ||
      metric_kind != "matrix" || points == 0)
    reader.fail("expected 'metric matrix <|M|>'");
  std::vector<std::vector<double>> matrix(points,
                                          std::vector<double>(points));
  for (std::size_t a = 0; a < points; ++a) {
    std::istringstream row(reader.next("metric row"));
    for (std::size_t b = 0; b < points; ++b)
      if (!(row >> matrix[a][b])) reader.fail("short metric row");
  }
  auto metric = std::make_shared<MatrixMetric>(std::move(matrix));

  std::istringstream cost_line(reader.next("cost"));
  std::string cost_kind;
  if (!(cost_line >> word >> cost_kind) || word != "cost")
    reader.fail("expected 'cost <kind> ...'");
  CostModelPtr cost;
  if (cost_kind == "sizeonly") {
    std::vector<double> table(s + 1);
    for (CommodityId k = 0; k <= s; ++k)
      if (!(cost_line >> table[k])) reader.fail("short sizeonly cost table");
    cost = std::make_shared<SizeOnlyCostModel>(
        s, [table](CommodityId k) { return table[k]; }, "sizeonly(loaded)");
  } else if (cost_kind == "linear") {
    std::vector<double> weights(s);
    for (CommodityId e = 0; e < s; ++e)
      if (!(cost_line >> weights[e])) reader.fail("short linear weights");
    cost = std::make_shared<LinearCostModel>(std::move(weights));
  } else {
    reader.fail("unknown cost kind '" + cost_kind + "'");
  }

  std::istringstream requests_line(reader.next("requests"));
  std::size_t n = 0;
  if (!(requests_line >> word >> n) || word != "requests")
    reader.fail("expected 'requests <n>'");
  std::vector<Request> requests;
  requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::istringstream row(reader.next("request"));
    PointId location = 0;
    CommodityId k = 0;
    if (!(row >> location >> k) || k == 0) reader.fail("bad request line");
    Request r;
    r.location = location;
    r.commodities = CommoditySet(s);
    for (CommodityId j = 0; j < k; ++j) {
      CommodityId e = 0;
      if (!(row >> e) || e >= s) reader.fail("bad commodity id in request");
      r.commodities.add(e);
    }
    requests.push_back(std::move(r));
  }

  Instance instance(std::move(metric), std::move(cost), std::move(requests),
                    std::move(name));

  // Optional trailing opt certificate.
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream opt_line(line);
    double bound = 0.0;
    int exact = 0;
    if (!(opt_line >> word >> bound >> exact) || word != "opt")
      throw std::invalid_argument(
          "read_instance: trailing content is not an 'opt' line: " + line);
    std::string note;
    std::getline(opt_line, note);
    if (!note.empty() && note.front() == ' ') note.erase(0, 1);
    instance.set_opt_certificate(
        OptCertificate{bound, exact != 0, std::move(note)});
    break;
  }
  return instance;
}

Instance instance_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_instance(is);
}

}  // namespace omflp
