// Plain-text (de)serialization of dynamic event streams, built on the
// same section format as instance/io.hpp so stream traces can be saved,
// shared and replayed byte-identically.
//
// Format (line-oriented, '#' comments allowed between sections):
//   OMFLP-STREAM v1
//   name <free text>
//   commodities <|S|>
//   metric matrix <|M|>
//   <|M| rows of |M| distances>
//   cost sizeonly <g(0)> ... <g(|S|)>              (or)
//   cost linear <w_0> ... <w_{|S|-1}>
//   capacities <k>                                 (optional section)
//   <k rows of '<point> <cap>', ascending points>
//   events <n> arrivals <k>
//   a <location> <j> <e_1> ... <e_j>               arrival, pinned
//   a <location> <j> <e_1> ... <e_j> L <lease>     arrival with a lease
//   d <arrival_id>                                 departure
//
// Two readers: read_event_stream materializes the whole stream (tests,
// small traces); StreamTraceReader is the bounded-memory EventSource the
// `omflp stream` CLI uses — it parses the header eagerly and then yields
// events in caller-sized batches, so a million-event trace is processed
// holding one batch at a time.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "instance/event_stream.hpp"

namespace omflp {

void write_event_stream(std::ostream& os, const EventStream& stream);
std::string event_stream_to_string(const EventStream& stream);

/// Parses the format above in full; throws std::invalid_argument with a
/// line number on malformed input.
EventStream read_event_stream(std::istream& is);
EventStream event_stream_from_string(const std::string& text);

/// Streaming reader: the header (name, metric, cost, counts) is parsed at
/// construction; events are parsed on demand by next_batch. The istream
/// must outlive the reader.
class StreamTraceReader final : public EventSource {
 public:
  explicit StreamTraceReader(std::istream& is);
  ~StreamTraceReader() override;

  MetricPtr metric() const override;
  CostModelPtr cost() const override;
  CapacityMap capacities() const override;
  const std::string& name() const override;
  std::size_t next_batch(std::vector<StreamEvent>& out,
                         std::size_t max_events) override;

  /// Event / arrival counts declared by the trace header.
  std::uint64_t num_events() const noexcept;
  std::uint64_t num_arrivals() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace omflp
