// Per-facility capacity for the capacitated serving path.
//
// Capacities are keyed by the *point* of the metric space a facility is
// opened at: a facility inherits the capacity of its location, and
// occupancy counts the distinct active requests connected to it. The
// default everywhere is kUncapacitated (infinite), and every layer is
// written so that a null / all-infinite capacity map takes exactly the
// uncapacitated code path — bitwise identical ledgers, traces and
// counters.
//
// The map is shared immutably (instances, streams, sessions and
// verifiers may all hold the same vector), hence shared_ptr<const>.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/types.hpp"

namespace omflp {

/// Sentinel: no capacity limit at this point.
inline constexpr std::uint64_t kUncapacitated = ~std::uint64_t{0};

/// Capacity per point of the metric space, indexed by PointId. A null
/// map, or a point beyond the vector's size, means uncapacitated.
using CapacityMap = std::shared_ptr<const std::vector<std::uint64_t>>;

/// Capacity at `point` under `map` (kUncapacitated when absent).
inline std::uint64_t capacity_at(const CapacityMap& map,
                                 PointId point) noexcept {
  if (!map || point >= map->size()) return kUncapacitated;
  return (*map)[point];
}

/// True when the map constrains at least one point.
inline bool is_capacitated(const CapacityMap& map) noexcept {
  if (!map) return false;
  for (std::uint64_t c : *map)
    if (c != kUncapacitated) return true;
  return false;
}

/// What to do when an assignment would push a facility past capacity.
enum class OverflowPolicy {
  /// Reassign the commodity to the nearest feasible facility that
  /// offers it (opening a fresh singleton facility at the request's
  /// location as a last resort); reject only if nothing is feasible.
  kReassign,
  /// Reject the commodity outright: it joins the request's
  /// rejected_requests ledger lane and pays no connection cost.
  kReject,
};

inline const char* overflow_policy_tag(OverflowPolicy policy) noexcept {
  switch (policy) {
    case OverflowPolicy::kReassign:
      return "reassign";
    case OverflowPolicy::kReject:
      return "reject";
  }
  return "unknown";
}

}  // namespace omflp
