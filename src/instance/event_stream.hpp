// Dynamic request streams: arrivals, departures and lease expiry.
//
// The paper's model is insert-only; production traffic is not. Following
// *Online Facility Location with Deletions* (Cygan, Czumaj, Jiang,
// Krauthgamer) and *Online Multi-Facility Location* (Markarian et al.),
// an EventStream generalizes the request sequence to a timeline of
// events, revealed one at a time:
//
//   * an **arrival** is a paper Request (location + demand set),
//     optionally carrying a **lease** L > 0: the request automatically
//     departs L events after it arrived (time-window / TTL traffic);
//   * a **departure** retroactively removes an earlier arrival,
//     identified by its arrival id (position among arrivals — the same
//     numbering as SolutionLedger request ids).
//
// Timeline semantics (shared by the validator, the offline stream
// verifier and the stream runner — all three implement it independently,
// in this repo's verifier tradition):
//   * events are processed in order; event t's lease expiries (arrivals
//     with arrival_index + lease <= t, ascending arrival id) fire
//     *before* event t itself is processed;
//   * an explicit departure must target an arrival that is still active
//     at that moment (neither departed nor expired); a departure may
//     retire a leased arrival early, in which case the later lease
//     expiry is skipped;
//   * leases that would expire past the end of the stream never fire —
//     those requests survive.
//
// The requests active after the final event are the **surviving set**;
// competitive ratios of dynamic runs are measured as
// ledger.active_cost() / OPT(surviving set) (see solution/verifier.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "instance/instance.hpp"

namespace omflp {

struct StreamEvent {
  enum class Kind : std::uint8_t { kArrival, kDeparture };

  Kind kind = Kind::kArrival;
  /// Arrival payload; ignored for departures.
  Request request;
  /// Arrival: auto-depart this many events after arrival (0 = pinned, the
  /// request never expires on its own).
  std::uint64_t lease = 0;
  /// Departure: the arrival id (index among arrivals) to retire.
  RequestId target = 0;

  static StreamEvent arrival(Request request, std::uint64_t lease = 0) {
    StreamEvent e;
    e.kind = Kind::kArrival;
    e.request = std::move(request);
    e.lease = lease;
    return e;
  }
  static StreamEvent departure(RequestId target) {
    StreamEvent e;
    e.kind = Kind::kDeparture;
    e.target = target;
    return e;
  }
};

/// Expiry deadline of a lease granted at event index `t`, saturating at
/// the uint64 maximum: a lease so large that t + lease would wrap must
/// behave as "past every possible stream end" (the request survives),
/// not wrap around to fire before its own arrival. Every timeline
/// implementation (validator, runner, offline verifier) must use this.
inline std::uint64_t lease_deadline(std::uint64_t t,
                                    std::uint64_t lease) noexcept {
  const std::uint64_t max = ~std::uint64_t{0};
  return lease > max - t ? max : t + lease;
}

class EventStream {
 public:
  EventStream(MetricPtr metric, CostModelPtr cost,
              std::vector<StreamEvent> events,
              std::string name = "stream");

  const MetricSpace& metric() const noexcept { return *metric_; }
  const FacilityCostModel& cost() const noexcept { return *cost_; }
  MetricPtr metric_ptr() const noexcept { return metric_; }
  CostModelPtr cost_ptr() const noexcept { return cost_; }
  CommodityId num_commodities() const noexcept {
    return cost_->num_commodities();
  }

  const std::vector<StreamEvent>& events() const noexcept { return events_; }
  std::size_t num_events() const noexcept { return events_.size(); }
  /// Arrivals among the events (counted at construction).
  std::size_t num_arrivals() const noexcept { return num_arrivals_; }
  const std::string& name() const noexcept { return name_; }

  /// Throws std::invalid_argument on the first malformed event: a
  /// location outside M, a demand set that is empty or over the wrong
  /// universe, or a departure whose target is unknown or no longer
  /// active under the timeline semantics above.
  void validate() const;

  /// Arrival ids still active after the last event, ascending.
  std::vector<RequestId> surviving_arrivals() const;

  /// The surviving set as a static Instance (same metric and cost model,
  /// requests in arrival order) — the input OPT is estimated on when
  /// measuring dynamic competitive ratios. Carries the stream's
  /// capacities.
  Instance surviving_instance() const;

  /// Per-point facility capacities (null = uncapacitated everywhere).
  void set_capacities(CapacityMap capacities);
  const CapacityMap& capacities() const noexcept { return capacities_; }

 private:
  MetricPtr metric_;
  CostModelPtr cost_;
  std::vector<StreamEvent> events_;
  std::size_t num_arrivals_ = 0;
  std::string name_;
  CapacityMap capacities_;
};

/// Batched event supply for the stream runner: materialized streams and
/// disk-backed trace readers (instance/stream_io.hpp) behind one
/// interface, so million-event traces are processed without ever holding
/// the whole timeline in memory.
class EventSource {
 public:
  virtual ~EventSource() = default;

  virtual MetricPtr metric() const = 0;
  virtual CostModelPtr cost() const = 0;
  virtual const std::string& name() const = 0;

  /// Per-point facility capacities carried by the stream, if any. The
  /// default is null (uncapacitated) so existing sources are unchanged.
  virtual CapacityMap capacities() const { return nullptr; }

  /// Appends up to `max_events` further events to `out` (which the
  /// caller clears); returns the number appended — 0 means the stream is
  /// exhausted.
  virtual std::size_t next_batch(std::vector<StreamEvent>& out,
                                 std::size_t max_events) = 0;

  /// Fast-forward past the next `n` events without delivering them —
  /// checkpoint restore positions a fresh source at the stream clock the
  /// snapshot was taken at, then replays the tail through next_batch().
  /// Throws std::invalid_argument when the source holds fewer than `n`
  /// further events (the checkpoint belongs to a longer stream). The
  /// default pulls and discards; sources with random access override.
  virtual void skip_events(std::uint64_t n);
};

/// EventSource over an in-memory EventStream (borrowed; the stream must
/// outlive the source).
class MaterializedEventSource final : public EventSource {
 public:
  explicit MaterializedEventSource(const EventStream& stream)
      : stream_(&stream) {}

  MetricPtr metric() const override { return stream_->metric_ptr(); }
  CostModelPtr cost() const override { return stream_->cost_ptr(); }
  const std::string& name() const override { return stream_->name(); }
  CapacityMap capacities() const override { return stream_->capacities(); }
  std::size_t next_batch(std::vector<StreamEvent>& out,
                         std::size_t max_events) override;
  void skip_events(std::uint64_t n) override;

 private:
  const EventStream* stream_;
  std::size_t cursor_ = 0;
};

}  // namespace omflp
