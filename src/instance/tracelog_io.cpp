#include "instance/tracelog_io.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "instance/io_detail.hpp"
#include "support/parse.hpp"

namespace omflp {

namespace {

constexpr const char* kHeader =
    "{\"format\":\"OMFLP-TRACELOG\",\"version\":1}";

void append_double(std::string& out, const char* field, double value) {
  if (!std::isfinite(value))
    throw std::invalid_argument(
        std::string("tracelog_event_to_json: non-finite ") + field);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(
                            static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Strict scanner over one tracelog line. Every expectation is literal —
/// the canonical form is the only accepted form, which is what makes
/// read → rewrite byte-identical and tampering detectable.
struct LineScanner {
  const std::string& line;
  const iodetail::LineReader& reader;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    reader.fail(msg + " at column " + std::to_string(pos));
  }

  bool try_consume(const char* literal) {
    const std::size_t n = std::strlen(literal);
    if (line.compare(pos, n, literal) != 0) return false;
    pos += n;
    return true;
  }

  void expect(const char* literal) {
    if (!try_consume(literal))
      fail(std::string("expected '") + literal + "'");
  }

  std::uint64_t take_u64(const char* what) {
    std::size_t end = pos;
    while (end < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[end])))
      ++end;
    const auto value =
        parse_u64_strict(std::string_view(line).substr(pos, end - pos));
    if (!value) fail(std::string("bad ") + what);
    pos = end;
    return *value;
  }

  double take_double(const char* what) {
    std::size_t end = pos;
    while (end < line.size() &&
           std::strchr("+-.0123456789eE", line[end]) != nullptr)
      ++end;
    const auto value =
        parse_double_strict(std::string_view(line).substr(pos, end - pos));
    if (!value) fail(std::string("bad ") + what);
    pos = end;
    return *value;
  }

  /// Body of a JSON string after the opening quote; consumes the closing
  /// quote. Only the writer's escapes are accepted (lowercase \u00xx for
  /// control bytes), keeping the canonical form unique.
  std::string take_string(const char* what) {
    std::string out;
    while (pos < line.size()) {
      const char c = line[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail(std::string("raw control byte in ") + what);
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= line.size()) break;
      const char esc = line[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > line.size())
            fail(std::string("truncated \\u escape in ") + what);
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = line[pos++];
            value <<= 4;
            if (h >= '0' && h <= '9')
              value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              value |= static_cast<unsigned>(h - 'a' + 10);
            else
              fail(std::string("bad \\u escape in ") + what);
          }
          // The writer only \u-escapes control bytes; anything else has
          // a shorter canonical form and is rejected.
          if (value >= 0x20)
            fail(std::string("non-canonical \\u escape in ") + what);
          out += static_cast<char>(value);
          break;
        }
        default:
          fail(std::string("bad escape in ") + what);
      }
    }
    fail(std::string("unterminated string in ") + what);
  }

  void end_of_line() const {
    if (pos != line.size()) fail("trailing content on line");
  }
};

TraceEventKind parse_kind(LineScanner& scan) {
  const std::size_t close = scan.line.find('"', scan.pos);
  if (close == std::string::npos) scan.fail("unterminated kind");
  const std::string_view name =
      std::string_view(scan.line).substr(scan.pos, close - scan.pos);
  for (int k = 0; k <= 8; ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    if (name == trace_event_kind_name(kind)) {
      scan.pos = close + 1;
      return kind;
    }
  }
  scan.fail("unknown event kind '" + std::string(name) + "'");
}

TraceEvent parse_event_line(const std::string& line,
                            std::uint64_t expected_seq,
                            const iodetail::LineReader& reader) {
  LineScanner scan{line, reader};
  scan.expect("{\"seq\":");
  const std::uint64_t seq = scan.take_u64("seq");
  if (seq != expected_seq)
    reader.fail("sequence gap: expected seq " +
                std::to_string(expected_seq) + ", got " +
                std::to_string(seq));
  scan.expect(",\"kind\":\"");

  TraceEvent event;
  event.kind = parse_kind(scan);

  const auto u64_field = [&](const char* name) {
    scan.expect(",\"");
    scan.expect(name);
    scan.expect("\":");
    return scan.take_u64(name);
  };
  const auto num_field = [&](const char* name) {
    scan.expect(",\"");
    scan.expect(name);
    scan.expect("\":");
    return scan.take_double(name);
  };
  const auto id_field = [&](const char* name) -> std::uint32_t {
    const std::uint64_t value = u64_field(name);
    if (value > std::numeric_limits<std::uint32_t>::max())
      scan.fail(std::string(name) + " out of range");
    return static_cast<std::uint32_t>(value);
  };

  switch (event.kind) {
    case TraceEventKind::kFacilityOpen: {
      event.request = static_cast<RequestId>(u64_field("request"));
      event.commodity = id_field("commodity");
      event.facility = static_cast<FacilityId>(u64_field("facility"));
      event.point = static_cast<PointId>(id_field("point"));
      event.config_size = u64_field("config_size");
      const std::uint64_t constraint = u64_field("constraint");
      if (constraint > 4) scan.fail("constraint out of range");
      event.constraint = static_cast<std::uint8_t>(constraint);
      event.cost = num_field("cost");
      event.bid_mass = num_field("bid_mass");
      event.tightness = num_field("tightness");
      scan.expect(",\"contributors\":[");
      bool first = true;
      while (!scan.try_consume("]")) {
        if (!first) scan.expect(",");
        first = false;
        if (event.contributors.size() >= kMaxTraceContributors)
          scan.fail("too many contributors");
        TraceContributor c;
        scan.expect("{\"request\":");
        c.request = static_cast<RequestId>(scan.take_u64("request"));
        scan.expect(",\"amount\":");
        c.amount = scan.take_double("amount");
        scan.expect("}");
        event.contributors.push_back(c);
      }
      event.residual = num_field("residual");
      break;
    }
    case TraceEventKind::kRequestAssign:
      event.request = static_cast<RequestId>(u64_field("request"));
      event.commodity = id_field("commodity");
      event.facility = static_cast<FacilityId>(u64_field("facility"));
      event.point = static_cast<PointId>(id_field("point"));
      event.cost = num_field("cost");
      break;
    case TraceEventKind::kBidRollback:
      event.request = static_cast<RequestId>(u64_field("request"));
      event.bid_mass = num_field("bid_mass");
      event.cost = num_field("cost");
      break;
    case TraceEventKind::kDepart:
    case TraceEventKind::kLeaseExpire:
      event.request = static_cast<RequestId>(u64_field("request"));
      event.stream_event = u64_field("stream_event");
      break;
    case TraceEventKind::kDualRaise:
      event.request = static_cast<RequestId>(u64_field("request"));
      event.commodity = id_field("commodity");
      event.config_size = u64_field("config_size");
      event.cost = num_field("cost");
      break;
    case TraceEventKind::kVerifierFlag:
      event.request = static_cast<RequestId>(u64_field("request"));
      scan.expect(",\"note\":\"");
      event.note = scan.take_string("note");
      break;
    case TraceEventKind::kRequestReject:
      event.request = static_cast<RequestId>(u64_field("request"));
      event.commodity = id_field("commodity");
      break;
    case TraceEventKind::kRequestSpill:
      event.request = static_cast<RequestId>(u64_field("request"));
      event.commodity = id_field("commodity");
      event.facility = static_cast<FacilityId>(u64_field("facility"));
      event.point = static_cast<PointId>(id_field("point"));
      event.cost = num_field("cost");
      break;
  }
  scan.expect("}");
  scan.end_of_line();
  return event;
}

}  // namespace

std::string tracelog_event_to_json(const TraceEvent& event,
                                   std::uint64_t seq) {
  std::string out = "{\"seq\":";
  out += std::to_string(seq);
  out += ",\"kind\":\"";
  out += trace_event_kind_name(event.kind);
  out += '"';

  const auto u64 = [&](const char* name, std::uint64_t value) {
    out += ",\"";
    out += name;
    out += "\":";
    out += std::to_string(value);
  };
  const auto num = [&](const char* name, double value) {
    out += ",\"";
    out += name;
    out += "\":";
    append_double(out, name, value);
  };

  switch (event.kind) {
    case TraceEventKind::kFacilityOpen: {
      u64("request", event.request);
      u64("commodity", event.commodity);
      u64("facility", event.facility);
      u64("point", event.point);
      u64("config_size", event.config_size);
      u64("constraint", event.constraint);
      num("cost", event.cost);
      num("bid_mass", event.bid_mass);
      num("tightness", event.tightness);
      if (event.contributors.size() > kMaxTraceContributors)
        throw std::invalid_argument(
            "tracelog_event_to_json: contributor list exceeds the cap");
      out += ",\"contributors\":[";
      for (std::size_t i = 0; i < event.contributors.size(); ++i) {
        if (i) out += ',';
        out += "{\"request\":";
        out += std::to_string(event.contributors[i].request);
        out += ",\"amount\":";
        append_double(out, "amount", event.contributors[i].amount);
        out += '}';
      }
      out += ']';
      num("residual", event.residual);
      break;
    }
    case TraceEventKind::kRequestAssign:
      u64("request", event.request);
      u64("commodity", event.commodity);
      u64("facility", event.facility);
      u64("point", event.point);
      num("cost", event.cost);
      break;
    case TraceEventKind::kBidRollback:
      u64("request", event.request);
      num("bid_mass", event.bid_mass);
      num("cost", event.cost);
      break;
    case TraceEventKind::kDepart:
    case TraceEventKind::kLeaseExpire:
      u64("request", event.request);
      u64("stream_event", event.stream_event);
      break;
    case TraceEventKind::kDualRaise:
      u64("request", event.request);
      u64("commodity", event.commodity);
      u64("config_size", event.config_size);
      num("cost", event.cost);
      break;
    case TraceEventKind::kVerifierFlag:
      u64("request", event.request);
      out += ",\"note\":\"";
      append_escaped(out, event.note);
      out += '"';
      break;
    case TraceEventKind::kRequestReject:
      u64("request", event.request);
      u64("commodity", event.commodity);
      break;
    case TraceEventKind::kRequestSpill:
      u64("request", event.request);
      u64("commodity", event.commodity);
      u64("facility", event.facility);
      u64("point", event.point);
      num("cost", event.cost);
      break;
  }
  out += '}';
  return out;
}

// --------------------------------------------------------------- writer ---

TraceLogWriter::TraceLogWriter(std::ostream& os) : os_(os) {
  os_ << kHeader << '\n';
}

TraceLogWriter::~TraceLogWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an unfinished log is detectable by the
    // reader (missing end line) anyway.
  }
}

void TraceLogWriter::on_event(const TraceEvent& event) {
  if (finished_)
    throw std::logic_error("TraceLogWriter: on_event after finish");
  os_ << tracelog_event_to_json(event, seq_) << '\n';
  ++seq_;
}

void TraceLogWriter::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "{\"end\":true,\"events\":" << seq_ << "}\n";
  os_.flush();
}

// --------------------------------------------------------------- reader ---

struct TraceLogReader::Impl {
  iodetail::LineReader reader;
  TraceLogReadMode mode;
  std::uint64_t seq = 0;
  bool done = false;
  bool truncated = false;

  Impl(std::istream& is, TraceLogReadMode read_mode)
      : reader(is, "read_tracelog"), mode(read_mode) {
    if (reader.next("header") != kHeader)
      reader.fail(
          "bad header, expected "
          "{\"format\":\"OMFLP-TRACELOG\",\"version\":1}");
  }

  bool next_strict(TraceEvent& out) {
    const std::optional<std::string> maybe_line = reader.try_next();
    if (!maybe_line) {
      if (mode == TraceLogReadMode::kStrict)
        reader.fail("missing event or end line");
      // Torn tail: the file ends without an end line; the prefix read so
      // far is the recovery result.
      truncated = true;
      done = true;
      return false;
    }
    const std::string& line = *maybe_line;
    if (line.rfind("{\"end\":", 0) == 0) {
      LineScanner scan{line, reader};
      scan.expect("{\"end\":true,\"events\":");
      const std::uint64_t declared = scan.take_u64("event count");
      scan.expect("}");
      scan.end_of_line();
      if (declared != seq)
        reader.fail("end line declares " + std::to_string(declared) +
                    " events but " + std::to_string(seq) +
                    " were present");
      if (reader.try_next())
        reader.fail("trailing content after the end line");
      done = true;
      return false;
    }
    out = parse_event_line(line, seq, reader);
    ++seq;
    return true;
  }
};

TraceLogReader::TraceLogReader(std::istream& is, TraceLogReadMode mode)
    : impl_(std::make_unique<Impl>(is, mode)) {}

TraceLogReader::~TraceLogReader() = default;

std::uint64_t TraceLogReader::events_read() const noexcept {
  return impl_->seq;
}

bool TraceLogReader::truncated() const noexcept { return impl_->truncated; }

bool TraceLogReader::next(TraceEvent& out) {
  if (impl_->done) return false;
  if (impl_->mode == TraceLogReadMode::kStrict)
    return impl_->next_strict(out);
  try {
    return impl_->next_strict(out);
  } catch (const std::invalid_argument&) {
    // First damaged line (malformation, seq gap, bad end line): the
    // events already yielded form the longest valid prefix.
    impl_->truncated = true;
    impl_->done = true;
    return false;
  }
}

// --------------------------------------------------- convenience layer ---

std::vector<TraceEvent> read_tracelog(std::istream& is,
                                      TraceLogReadMode mode) {
  TraceLogReader reader(is, mode);
  std::vector<TraceEvent> events;
  TraceEvent event;
  while (reader.next(event)) events.push_back(std::move(event));
  return events;
}

std::vector<TraceEvent> tracelog_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_tracelog(is);
}

void write_tracelog(std::ostream& os,
                    const std::vector<TraceEvent>& events) {
  TraceLogWriter writer(os);
  for (const TraceEvent& event : events) writer.on_event(event);
  writer.finish();
}

std::string tracelog_to_string(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  write_tracelog(os, events);
  return os.str();
}

}  // namespace omflp
