// Problem instances: a metric space, a construction cost model, and the
// online request sequence.
//
// A Request is the paper's r: a location in M plus a demanded commodity
// set s_r ⊆ S. An Instance bundles everything an online algorithm is given
// up front (the metric space, the cost oracle, |S|) with the sequence that
// is revealed one request at a time. Optionally carries an OPT certificate
// from the generator (an offline solution cost known by construction).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "instance/capacity.hpp"
#include "metric/metric_space.hpp"
#include "support/commodity_set.hpp"

namespace omflp {

struct Request {
  PointId location = 0;
  CommoditySet commodities;
};

/// Offline-optimum information attached by generators that know it.
struct OptCertificate {
  /// Cost of a feasible offline solution (an upper bound on OPT; exact
  /// when `exact` is true).
  double upper_bound = 0.0;
  bool exact = false;
  std::string note;
};

class Instance {
 public:
  Instance(MetricPtr metric, CostModelPtr cost, std::vector<Request> requests,
           std::string name = "instance");

  const MetricSpace& metric() const noexcept { return *metric_; }
  const FacilityCostModel& cost() const noexcept { return *cost_; }
  MetricPtr metric_ptr() const noexcept { return metric_; }
  CostModelPtr cost_ptr() const noexcept { return cost_; }

  CommodityId num_commodities() const noexcept {
    return cost_->num_commodities();
  }
  std::size_t num_requests() const noexcept { return requests_.size(); }
  const std::vector<Request>& requests() const noexcept { return requests_; }
  const Request& request(RequestId i) const;

  const std::string& name() const noexcept { return name_; }

  void set_opt_certificate(OptCertificate cert) { opt_ = std::move(cert); }
  const std::optional<OptCertificate>& opt_certificate() const noexcept {
    return opt_;
  }

  /// Per-point facility capacities (null = uncapacitated everywhere).
  /// Throws if the map names points outside the metric space.
  void set_capacities(CapacityMap capacities);
  const CapacityMap& capacities() const noexcept { return capacities_; }

  /// Union of all demanded commodity sets (the commodities OPT must cover
  /// at least once somewhere).
  CommoditySet demanded_union() const;

  /// Throws std::invalid_argument if any request is malformed (location
  /// outside M, wrong universe, empty demand set).
  void validate() const;

 private:
  MetricPtr metric_;
  CostModelPtr cost_;
  std::vector<Request> requests_;
  std::string name_;
  std::optional<OptCertificate> opt_;
  CapacityMap capacities_;
};

}  // namespace omflp
