// OMFLP-CKPT v1 — the versioned, checksummed checkpoint container every
// fault-tolerance artifact uses (src/recover/): StreamSession snapshots,
// the per-generation manifest, and any state a roster algorithm
// serializes through its serialize_state/restore_state hooks.
//
// The format is line-oriented text:
//
//   OMFLP-CKPT 1
//   <key> <token> <token> ...
//   ...
//   checksum <16 hex digits>
//
// Tokens are single-space separated. Unsigned integers are decimal;
// doubles are the 16-hex-digit IEEE-754 bit pattern (bitwise exact round
// trip, including negative zero, infinities and NaN payloads — %.17g
// would round-trip values but support/parse.hpp rejects inf/nan, and
// recovery must reproduce state *bitwise*); arbitrary byte strings are
// "x" + lowercase hex; commodity sets are universe + word count + the
// raw bitset words. The trailing checksum line carries the FNV-1a 64
// hash of every preceding byte (newlines included), so truncation and
// bit flips are both detected: a torn file is missing its checksum line,
// a corrupted one fails the hash.
//
// The reader is strict in the stream_io/tracelog_io tradition: wrong
// keys, malformed tokens, trailing tokens, a missing or mismatched
// checksum, and trailing content all raise std::invalid_argument with
// the line number. It is bounded-memory against hostile counts: callers
// reserve via capped_reserve() and grow per *line actually present*, so
// a tampered "count 10^18" costs its text length, never an allocation.
//
// Canonical form: serialize → restore → serialize is byte-identical
// (tests/test_recover.cpp pins this down per roster algorithm).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "support/commodity_set.hpp"
#include "support/parse.hpp"  // capped_reserve — every reader's bounded
                              // first reservation for declared counts

namespace omflp {

/// Streaming OMFLP-CKPT v1 writer. The header is written on
/// construction; line(key) starts a record, the typed appenders add
/// tokens, finish() seals the file with the checksum line.
class CkptWriter {
 public:
  explicit CkptWriter(std::ostream& os);
  ~CkptWriter();

  CkptWriter(const CkptWriter&) = delete;
  CkptWriter& operator=(const CkptWriter&) = delete;

  /// Flush the pending line and start a new one keyed `key`.
  CkptWriter& line(std::string_view key);
  CkptWriter& u(std::uint64_t value);
  CkptWriter& b(bool value) { return u(value ? 1 : 0); }
  /// IEEE-754 bit pattern, 16 hex digits.
  CkptWriter& d(double value);
  /// A whitespace-free token (algorithm names, enum tags). Throws
  /// std::invalid_argument on embedded whitespace or an empty token.
  CkptWriter& tok(std::string_view token);
  /// Arbitrary bytes as "x" + lowercase hex.
  CkptWriter& bytes(std::string_view raw);
  CkptWriter& set(const CommoditySet& s);

  /// Flush and write the checksum line. Idempotent; required before the
  /// stream is used (the destructor does NOT finish — an abandoned
  /// writer leaves a detectably torn file, which is the point for
  /// torn-write fault injection).
  void finish();

 private:
  void flush_line();
  void emit(std::string_view text);

  std::ostream& os_;
  std::string line_;
  bool line_open_ = false;
  std::uint64_t fnv_;
  bool finished_ = false;
};

/// Strict bounded-memory OMFLP-CKPT v1 reader. The header is validated
/// on construction; expect(key) loads the next line and the typed
/// accessors consume its tokens; finish() validates the checksum line
/// and end of input.
class CkptReader {
 public:
  explicit CkptReader(std::istream& is);

  CkptReader(const CkptReader&) = delete;
  CkptReader& operator=(const CkptReader&) = delete;

  /// Load the next line; its key must equal `key`. The previous line
  /// must have been fully consumed.
  void expect(std::string_view key);
  std::uint64_t u();
  bool b();
  double d();
  std::string tok();
  std::string bytes();
  CommoditySet set();

  /// Validate the checksum line and the absence of trailing content.
  void finish();

  [[noreturn]] void fail(const std::string& msg) const;
  std::size_t line_number() const noexcept { return line_number_; }

 private:
  std::string next_token(const char* what);
  bool next_raw_line();

  std::istream& is_;
  std::string line_;
  std::size_t pos_ = 0;
  std::size_t line_number_ = 0;
  std::uint64_t fnv_;
  bool finished_ = false;
};

class Rng;

/// Rng state as one "rng" line: the four xoshiro words plus the
/// Marsaglia normal cache. Shared by every randomized algorithm's
/// serialize_state/restore_state (RAND-OMFLP, Meyerson, stream
/// generators), so the restored draw sequence continues bitwise.
void serialize_rng(CkptWriter& writer, const Rng& rng);
void restore_rng(CkptReader& reader, Rng& rng);

/// Structural validation pass used before trusting a checkpoint file:
/// header present, checksum line present and matching, nothing after
/// it. Returns false (never throws) on any malformation, IO failure or
/// truncation — the independent check recovery uses to reject torn or
/// corrupted snapshots and fall back to the previous generation.
bool checkpoint_payload_valid(std::istream& is);

}  // namespace omflp
