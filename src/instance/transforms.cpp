#include "instance/transforms.hpp"

#include <numeric>
#include <sstream>

#include "support/assert.hpp"

namespace omflp {

Instance split_per_commodity(const Instance& instance) {
  std::vector<Request> split;
  split.reserve(instance.num_requests());
  for (const Request& r : instance.requests()) {
    r.commodities.for_each([&](CommodityId e) {
      split.push_back(Request{
          r.location,
          CommoditySet::singleton(instance.num_commodities(), e)});
    });
  }
  Instance out(instance.metric_ptr(), instance.cost_ptr(), std::move(split),
               instance.name() + "[split]");
  // The split instance relaxes nothing for the offline optimum: any
  // feasible solution of the original serves the split sequence at the
  // same opening cost and per-commodity connection cost, so an original
  // certificate evaluated per-commodity stays an upper bound only if it
  // was priced that way — do not carry it over.
  return out;
}

Instance shuffle_requests(const Instance& instance, Rng& rng) {
  std::vector<std::size_t> order(instance.num_requests());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(std::span(order));
  std::vector<Request> shuffled;
  shuffled.reserve(order.size());
  for (std::size_t i : order) shuffled.push_back(instance.request(i));
  Instance out(instance.metric_ptr(), instance.cost_ptr(),
               std::move(shuffled), instance.name() + "[shuffled]");
  if (instance.opt_certificate()) {
    // OPT is order-independent; the certificate survives.
    out.set_opt_certificate(*instance.opt_certificate());
  }
  return out;
}

ScaledMetric::ScaledMetric(MetricPtr base, double factor)
    : base_(std::move(base)), factor_(factor) {
  OMFLP_REQUIRE(base_ != nullptr, "ScaledMetric: null base");
  OMFLP_REQUIRE(factor_ > 0.0, "ScaledMetric: factor must be positive");
}

std::string ScaledMetric::description() const {
  std::ostringstream os;
  os << "scaled(" << base_->description() << ", x" << factor_ << ")";
  return os.str();
}

ScaledCostModel::ScaledCostModel(CostModelPtr base, double factor)
    : base_(std::move(base)), factor_(factor) {
  OMFLP_REQUIRE(base_ != nullptr, "ScaledCostModel: null base");
  OMFLP_REQUIRE(factor_ > 0.0, "ScaledCostModel: factor must be positive");
}

std::string ScaledCostModel::description() const {
  std::ostringstream os;
  os << "scaled(" << base_->description() << ", x" << factor_ << ")";
  return os.str();
}

Instance scale_instance(const Instance& instance, double lambda) {
  OMFLP_REQUIRE(lambda > 0.0, "scale_instance: lambda must be positive");
  auto metric = std::make_shared<ScaledMetric>(instance.metric_ptr(), lambda);
  auto cost = std::make_shared<ScaledCostModel>(instance.cost_ptr(), lambda);
  std::vector<Request> requests = instance.requests();
  std::ostringstream name;
  name << instance.name() << "[x" << lambda << "]";
  Instance out(std::move(metric), std::move(cost), std::move(requests),
               name.str());
  if (instance.opt_certificate()) {
    OptCertificate cert = *instance.opt_certificate();
    cert.upper_bound *= lambda;
    out.set_opt_certificate(std::move(cert));
  }
  return out;
}

}  // namespace omflp
