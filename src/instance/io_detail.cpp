#include "instance/io_detail.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cost/cost_models.hpp"
#include "metric/matrix_metric.hpp"
#include "support/commodity_set.hpp"
#include "support/parse.hpp"

namespace omflp::iodetail {

std::string LineReader::next(const char* what) {
  if (auto line = try_next()) return std::move(*line);
  throw std::invalid_argument(prefix_ +
                              ": unexpected end of input while reading " +
                              what);
}

std::optional<std::string> LineReader::try_next() {
  std::string line;
  while (std::getline(is_, line)) {
    ++line_number_;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return line;
  }
  return std::nullopt;
}

void LineReader::fail(const std::string& msg) const {
  std::ostringstream os;
  os << prefix_ << ": " << msg << " (line " << line_number_ << ")";
  throw std::invalid_argument(os.str());
}

void write_metric_matrix(std::ostream& os, const MetricSpace& metric) {
  const std::size_t points = metric.num_points();
  os << "metric matrix " << points << '\n';
  // Every shipped MetricSpace is exactly symmetric (GraphMetric
  // symmetrizes its per-source Dijkstra results at construction); the
  // MatrixMetric constructor on the reading side validates this, so an
  // asymmetric future metric fails loudly at read time.
  for (PointId a = 0; a < points; ++a) {
    for (PointId b = 0; b < points; ++b) {
      if (b) os << ' ';
      os << metric.distance(a, b);
    }
    os << '\n';
  }
}

MetricPtr read_metric_matrix(LineReader& reader) {
  std::istringstream metric_line(reader.next("metric"));
  std::string word, metric_kind;
  std::size_t points = 0;
  if (!(metric_line >> word >> metric_kind >> points) || word != "metric" ||
      metric_kind != "matrix" || points == 0)
    reader.fail("expected 'metric matrix <|M|>'");
  // Grow row by row with a capped reserve instead of allocating
  // points x points up front: a syntactically-valid but absurd declared
  // |M| (fuzzed or corrupt traces) must fail at "short metric row" /
  // "unexpected end of input", not in the allocator — memory use stays
  // proportional to the bytes actually present in the input.
  constexpr std::size_t kReserveCap = std::size_t{1} << 12;
  std::vector<std::vector<double>> matrix;
  matrix.reserve(capped_reserve(points, kReserveCap));
  for (std::size_t a = 0; a < points; ++a) {
    std::istringstream row(reader.next("metric row"));
    std::vector<double> values;
    values.reserve(capped_reserve(points, kReserveCap));
    for (std::size_t b = 0; b < points; ++b) {
      double value = 0.0;
      if (!(row >> value)) reader.fail("short metric row");
      values.push_back(value);
    }
    matrix.push_back(std::move(values));
  }
  return std::make_shared<MatrixMetric>(std::move(matrix));
}

void write_cost_model(std::ostream& os, const FacilityCostModel& cost,
                      CommodityId s, const char* error_prefix) {
  if (const auto* size_only =
          dynamic_cast<const SizeOnlyCostModel*>(&cost)) {
    os << "cost sizeonly";
    for (CommodityId k = 0; k <= s; ++k)
      os << ' ' << size_only->cost_of_size(k);
    os << '\n';
  } else if (const auto* poly =
                 dynamic_cast<const PolynomialCostModel*>(&cost)) {
    os << "cost sizeonly";
    for (CommodityId k = 0; k <= s; ++k) os << ' ' << poly->cost_of_size(k);
    os << '\n';
  } else if (const auto* ceil_ratio =
                 dynamic_cast<const CeilRatioCostModel*>(&cost)) {
    os << "cost sizeonly";
    for (CommodityId k = 0; k <= s; ++k)
      os << ' ' << ceil_ratio->cost_of_size(k);
    os << '\n';
  } else if (const auto* linear =
                 dynamic_cast<const LinearCostModel*>(&cost)) {
    os << "cost linear";
    for (CommodityId e = 0; e < s; ++e)
      os << ' ' << linear->open_cost(0, CommoditySet::singleton(s, e));
    os << '\n';
  } else {
    throw std::invalid_argument(
        std::string(error_prefix) +
        ": only size-only and linear cost models are serializable; got " +
        cost.description());
  }
}

CostModelPtr read_cost_model(LineReader& reader, CommodityId s) {
  std::istringstream cost_line(reader.next("cost"));
  std::string word, cost_kind;
  if (!(cost_line >> word >> cost_kind) || word != "cost")
    reader.fail("expected 'cost <kind> ...'");
  // Size-safe loops: with a corrupt |S| near the CommodityId maximum,
  // `s + 1` used to wrap to 0 — an empty table the `k <= s` loop then
  // wrote past (heap overflow), found by tests/test_fuzz_parsers.cpp.
  // Tables now grow with a capped reserve, so a huge declared |S| fails
  // at "short ... table" instead of allocating gigabytes up front.
  constexpr std::size_t kReserveCap = std::size_t{1} << 12;
  const std::size_t universe = static_cast<std::size_t>(s);
  if (cost_kind == "sizeonly") {
    std::vector<double> table;
    table.reserve(capped_reserve(universe + 1, kReserveCap));
    for (std::size_t k = 0; k <= universe; ++k) {
      double value = 0.0;
      if (!(cost_line >> value)) reader.fail("short sizeonly cost table");
      table.push_back(value);
    }
    return std::make_shared<SizeOnlyCostModel>(
        s, [table](CommodityId k) { return table[k]; }, "sizeonly(loaded)");
  }
  if (cost_kind == "linear") {
    std::vector<double> weights;
    weights.reserve(capped_reserve(universe, kReserveCap));
    for (std::size_t e = 0; e < universe; ++e) {
      double weight = 0.0;
      if (!(cost_line >> weight)) reader.fail("short linear weights");
      weights.push_back(weight);
    }
    return std::make_shared<LinearCostModel>(std::move(weights));
  }
  reader.fail("unknown cost kind '" + cost_kind + "'");
}

void write_capacities(std::ostream& os, const CapacityMap& capacities) {
  if (!is_capacitated(capacities)) return;
  const std::vector<std::uint64_t>& caps = *capacities;
  std::size_t finite = 0;
  for (std::uint64_t c : caps)
    if (c != kUncapacitated) ++finite;
  os << "capacities " << finite << '\n';
  for (std::size_t p = 0; p < caps.size(); ++p)
    if (caps[p] != kUncapacitated) os << p << ' ' << caps[p] << '\n';
}

CapacityMap maybe_read_capacities(LineReader& reader, std::string& line,
                                  std::size_t num_points) {
  std::istringstream header(line);
  std::string word, count_text;
  if (!(header >> word) || word != "capacities") return nullptr;
  std::string trailing;
  if (!(header >> count_text) || (header >> trailing))
    reader.fail("expected 'capacities <k>'");
  const auto k = parse_u64_strict(count_text);
  if (!k || *k > num_points) reader.fail("bad capacity count");
  // num_points is bounded by metric rows actually present in the input,
  // so sizing the map by it is not an untrusted-count allocation.
  auto caps = std::make_shared<std::vector<std::uint64_t>>(
      num_points, kUncapacitated);
  bool first = true;
  PointId previous = 0;
  for (std::uint64_t i = 0; i < *k; ++i) {
    std::istringstream row(reader.next("capacity row"));
    std::string point_text, cap_text;
    if (!(row >> point_text >> cap_text) || (row >> trailing))
      reader.fail("bad capacity row, expected '<point> <cap>'");
    const auto point = parse_u64_strict(point_text);
    const auto cap = parse_u64_strict(cap_text);
    if (!point || !cap || *point >= num_points)
      reader.fail("bad capacity row, expected '<point> <cap>'");
    if (*cap == kUncapacitated)
      reader.fail("capacity row for an uncapacitated point");
    const PointId p = static_cast<PointId>(*point);
    if (!first && p <= previous)
      reader.fail("capacity rows must have strictly ascending points");
    first = false;
    previous = p;
    (*caps)[p] = *cap;
  }
  line = reader.next("section after capacities");
  return caps;
}

}  // namespace omflp::iodetail
