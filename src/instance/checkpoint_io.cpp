#include "instance/checkpoint_io.hpp"

#include <bit>
#include <cctype>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "support/parse.hpp"
#include "support/rng.hpp"

namespace omflp {

namespace {

constexpr const char* kHeader = "OMFLP-CKPT 1";
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_fold(std::uint64_t h, std::string_view text) {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_fold_newline(std::uint64_t h) {
  h ^= static_cast<unsigned char>('\n');
  h *= kFnvPrime;
  return h;
}

char hex_digit(unsigned v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

void append_hex16(std::string& out, std::uint64_t bits) {
  for (int shift = 60; shift >= 0; shift -= 4)
    out += hex_digit(static_cast<unsigned>((bits >> shift) & 0xf));
}

/// -1 on a non-hex character.
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

bool parse_hex64(std::string_view text, std::uint64_t& out) {
  if (text.size() != 16) return false;
  std::uint64_t bits = 0;
  for (const char c : text) {
    const int v = hex_value(c);
    if (v < 0) return false;
    bits = (bits << 4) | static_cast<std::uint64_t>(v);
  }
  out = bits;
  return true;
}

}  // namespace

// --------------------------------------------------------------- writer ---

CkptWriter::CkptWriter(std::ostream& os) : os_(os), fnv_(kFnvOffset) {
  emit(kHeader);
  os_ << kHeader << '\n';
  fnv_ = fnv_fold_newline(fnv_);
}

CkptWriter::~CkptWriter() = default;

void CkptWriter::emit(std::string_view text) {
  fnv_ = fnv_fold(fnv_, text);
}

void CkptWriter::flush_line() {
  if (!line_open_) return;
  emit(line_);
  fnv_ = fnv_fold_newline(fnv_);
  os_ << line_ << '\n';
  line_.clear();
  line_open_ = false;
}

CkptWriter& CkptWriter::line(std::string_view key) {
  if (finished_)
    throw std::logic_error("CkptWriter: line() after finish()");
  if (key.empty())
    throw std::invalid_argument("CkptWriter: empty key");
  for (const char c : key)
    if (std::isspace(static_cast<unsigned char>(c)))
      throw std::invalid_argument("CkptWriter: whitespace in key '" +
                                  std::string(key) + "'");
  flush_line();
  line_.assign(key);
  line_open_ = true;
  return *this;
}

CkptWriter& CkptWriter::tok(std::string_view token) {
  if (finished_)
    throw std::logic_error("CkptWriter: tok() after finish()");
  if (token.empty())
    throw std::invalid_argument("CkptWriter: empty token");
  for (const char c : token)
    if (std::isspace(static_cast<unsigned char>(c)) || c == '\n')
      throw std::invalid_argument("CkptWriter: whitespace in token '" +
                                  std::string(token) + "'");
  if (!line_open_)
    throw std::logic_error("CkptWriter: token before line()");
  line_ += ' ';
  line_ += token;
  return *this;
}

CkptWriter& CkptWriter::u(std::uint64_t value) {
  if (!line_open_)
    throw std::logic_error("CkptWriter: token before line()");
  line_ += ' ';
  line_ += std::to_string(value);
  return *this;
}

CkptWriter& CkptWriter::d(double value) {
  if (!line_open_)
    throw std::logic_error("CkptWriter: token before line()");
  line_ += ' ';
  append_hex16(line_, std::bit_cast<std::uint64_t>(value));
  return *this;
}

CkptWriter& CkptWriter::bytes(std::string_view raw) {
  if (!line_open_)
    throw std::logic_error("CkptWriter: token before line()");
  line_ += ' ';
  line_ += 'x';
  for (const char c : raw) {
    const auto byte = static_cast<unsigned char>(c);
    line_ += hex_digit(byte >> 4);
    line_ += hex_digit(byte & 0xf);
  }
  return *this;
}

CkptWriter& CkptWriter::set(const CommoditySet& s) {
  u(s.universe_size());
  const std::size_t words =
      (static_cast<std::size_t>(s.universe_size()) + 63) / 64;
  u(words);
  // Reconstructed word-by-word through the public interface; for_each
  // visits set bits in increasing order, which is exactly word order.
  std::vector<std::uint64_t> packed(words, 0);
  s.for_each([&](CommodityId e) {
    packed[e >> 6] |= (1ULL << (e & 63));
  });
  for (const std::uint64_t w : packed) {
    line_ += ' ';
    append_hex16(line_, w);
  }
  return *this;
}

void CkptWriter::finish() {
  if (finished_) return;
  flush_line();
  std::string check = "checksum ";
  append_hex16(check, fnv_);
  os_ << check << '\n';
  os_.flush();
  finished_ = true;
}

// --------------------------------------------------------------- reader ---

CkptReader::CkptReader(std::istream& is) : is_(is), fnv_(kFnvOffset) {
  if (!next_raw_line()) fail("missing header");
  if (line_ != kHeader)
    fail(std::string("bad header, expected '") + kHeader + "'");
  fnv_ = fnv_fold(fnv_, line_);
  fnv_ = fnv_fold_newline(fnv_);
  pos_ = line_.size();  // header fully consumed
}

void CkptReader::fail(const std::string& msg) const {
  throw std::invalid_argument("read_checkpoint: line " +
                              std::to_string(line_number_) + ": " + msg);
}

bool CkptReader::next_raw_line() {
  if (!std::getline(is_, line_)) return false;
  ++line_number_;
  pos_ = 0;
  return true;
}

std::string CkptReader::next_token(const char* what) {
  if (pos_ >= line_.size())
    fail(std::string("missing ") + what);
  if (line_[pos_] != ' ')
    fail(std::string("malformed separator before ") + what);
  ++pos_;
  std::size_t end = pos_;
  while (end < line_.size() && line_[end] != ' ') ++end;
  if (end == pos_) fail(std::string("empty ") + what);
  std::string token = line_.substr(pos_, end - pos_);
  pos_ = end;
  return token;
}

void CkptReader::expect(std::string_view key) {
  if (finished_) throw std::logic_error("CkptReader: expect after finish");
  if (pos_ != line_.size())
    fail("trailing tokens on line (next key: " + std::string(key) + ")");
  if (!next_raw_line())
    fail("unexpected end of input, expected '" + std::string(key) + "'");
  fnv_ = fnv_fold(fnv_, line_);
  fnv_ = fnv_fold_newline(fnv_);
  std::size_t end = 0;
  while (end < line_.size() && line_[end] != ' ') ++end;
  const std::string_view got(line_.data(), end);
  if (got != key)
    fail("expected '" + std::string(key) + "', got '" + std::string(got) +
         "'");
  pos_ = end;
}

std::uint64_t CkptReader::u() {
  const std::string token = next_token("unsigned integer");
  const auto value = parse_u64_strict(token);
  if (!value) fail("bad unsigned integer '" + token + "'");
  return *value;
}

bool CkptReader::b() {
  const std::uint64_t value = u();
  if (value > 1) fail("bad boolean");
  return value == 1;
}

double CkptReader::d() {
  const std::string token = next_token("double");
  std::uint64_t bits = 0;
  if (!parse_hex64(token, bits))
    fail("bad double bit pattern '" + token + "'");
  return std::bit_cast<double>(bits);
}

std::string CkptReader::tok() { return next_token("token"); }

std::string CkptReader::bytes() {
  const std::string token = next_token("byte string");
  if (token.empty() || token[0] != 'x' || token.size() % 2 != 1)
    fail("bad byte string '" + token + "'");
  std::string out;
  // omflp-lint: allow(raw-reserve) sized by bytes actually present in the token
  out.reserve((token.size() - 1) / 2);
  for (std::size_t i = 1; i + 1 < token.size(); i += 2) {
    const int hi = hex_value(token[i]);
    const int lo = hex_value(token[i + 1]);
    if (hi < 0 || lo < 0) fail("bad byte string '" + token + "'");
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

CommoditySet CkptReader::set() {
  const std::uint64_t universe = u();
  if (universe > 0xffffffffULL) fail("commodity universe out of range");
  const std::uint64_t declared_words = u();
  const std::size_t expected_words =
      (static_cast<std::size_t>(universe) + 63) / 64;
  if (declared_words != expected_words)
    fail("commodity set word count mismatch");
  CommoditySet s(static_cast<CommodityId>(universe));
  for (std::size_t wi = 0; wi < expected_words; ++wi) {
    const std::string token = next_token("commodity word");
    std::uint64_t word = 0;
    if (!parse_hex64(token, word))
      fail("bad commodity word '" + token + "'");
    const std::size_t base = wi * 64;
    while (word) {
      const int bit = __builtin_ctzll(word);
      const std::size_t e = base + static_cast<std::size_t>(bit);
      if (e >= universe) fail("commodity word has bits past the universe");
      s.add(static_cast<CommodityId>(e));
      word &= word - 1;
    }
  }
  return s;
}

void CkptReader::finish() {
  if (finished_) return;
  if (pos_ != line_.size()) fail("trailing tokens before checksum line");
  if (!next_raw_line()) fail("missing checksum line (truncated file)");
  std::size_t end = 0;
  while (end < line_.size() && line_[end] != ' ') ++end;
  if (std::string_view(line_.data(), end) != "checksum")
    fail("expected checksum line, got '" + line_.substr(0, end) + "'");
  pos_ = end;
  const std::string token = next_token("checksum");
  std::uint64_t declared = 0;
  if (!parse_hex64(token, declared)) fail("bad checksum '" + token + "'");
  if (pos_ != line_.size()) fail("trailing tokens on checksum line");
  if (declared != fnv_)
    fail("checksum mismatch: file is corrupt");
  if (std::getline(is_, line_)) {
    ++line_number_;
    fail("trailing content after the checksum line");
  }
  finished_ = true;
}

// ------------------------------------------------------------------ rng ---

void serialize_rng(CkptWriter& writer, const Rng& rng) {
  const Rng::State state = rng.state();
  writer.line("rng");
  for (const std::uint64_t w : state.gen) writer.u(w);
  writer.d(state.cached_normal).b(state.has_cached_normal);
}

void restore_rng(CkptReader& reader, Rng& rng) {
  reader.expect("rng");
  Rng::State state;
  for (std::uint64_t& w : state.gen) w = reader.u();
  state.cached_normal = reader.d();
  state.has_cached_normal = reader.b();
  rng.set_state(state);
}

// ----------------------------------------------------------- validation ---

bool checkpoint_payload_valid(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) return false;
  std::uint64_t fnv = fnv_fold(kFnvOffset, line);
  fnv = fnv_fold_newline(fnv);
  while (std::getline(is, line)) {
    if (line.rfind("checksum ", 0) == 0) {
      std::uint64_t declared = 0;
      if (!parse_hex64(std::string_view(line).substr(9), declared))
        return false;
      if (declared != fnv) return false;
      // Nothing may follow the checksum line.
      return !std::getline(is, line);
    }
    fnv = fnv_fold(fnv, line);
    fnv = fnv_fold_newline(fnv);
  }
  return false;  // truncated: no checksum line
}

}  // namespace omflp
