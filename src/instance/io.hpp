// Plain-text (de)serialization of instances, so workloads can be saved,
// shared and replayed byte-identically.
//
// Format (line-oriented, '#' comments allowed between sections):
//   OMFLP-INSTANCE v1
//   name <free text>
//   commodities <|S|>
//   metric matrix <|M|>
//   <|M| rows of |M| distances>
//   cost sizeonly <g(0)> <g(1)> ... <g(|S|)>      (or)
//   cost linear <w_0> ... <w_{|S|-1}>
//   capacities <k>                                (optional section)
//   <point> <cap>                                 (k lines, ascending)
//   requests <n>
//   <location> <k> <e_1> ... <e_k>                (n lines)
//   opt <upper_bound> <exact:0|1> <note...>       (optional)
//
// Any MetricSpace serializes (as its distance matrix). Cost models must be
// size-only or linear — the general f^σ_m has 2^|S| values per point and
// is not meaningfully serializable; write_instance throws for other
// models.
#pragma once

#include <iosfwd>
#include <string>

#include "instance/instance.hpp"

namespace omflp {

void write_instance(std::ostream& os, const Instance& instance);
std::string instance_to_string(const Instance& instance);

/// Parses the format above; throws std::invalid_argument with a line
/// number on malformed input.
Instance read_instance(std::istream& is);
Instance instance_from_string(const std::string& text);

}  // namespace omflp
