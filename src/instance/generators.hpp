// Workload generators.
//
// Every generator is a deterministic function of its config and the Rng
// passed in, returning a self-contained Instance. Where the construction
// makes the offline optimum known (clusters, zooming sequences) the
// instance carries an OptCertificate so competitive ratios can be measured
// without an offline solver.
#pragma once

#include <cstddef>

#include "cost/cost_model.hpp"
#include "instance/instance.hpp"
#include "support/rng.hpp"

namespace omflp {

/// Sample a non-empty demand set: `size` commodities drawn without
/// replacement, each draw Zipf(popularity_exponent)-weighted over S
/// (exponent 0 = uniform).
CommoditySet sample_demand_set(CommodityId num_commodities,
                               CommodityId size,
                               double popularity_exponent, Rng& rng);

// ---------------------------------------------------------------------------
// Uniform line: requests at uniform positions of a line grid, demand sets
// of random size in [min_demand, max_demand] with Zipf popularity.
// ---------------------------------------------------------------------------
struct UniformLineConfig {
  std::size_t num_points = 64;        // |M|, evenly spaced on [0, length]
  double length = 100.0;
  std::size_t num_requests = 256;     // n
  CommodityId num_commodities = 16;   // |S|
  CommodityId min_demand = 1;
  CommodityId max_demand = 4;
  double popularity_exponent = 0.8;   // Zipf exponent for commodity choice
};

Instance make_uniform_line(const UniformLineConfig& config, CostModelPtr cost,
                           Rng& rng);

// ---------------------------------------------------------------------------
// Clustered workload: k well-separated clusters; cluster c has a home
// commodity set σ_c and requests near its center demanding subsets of σ_c.
// OPT certificate: one facility per cluster center in configuration σ_c
// plus exact connection distances (feasible by construction; near-optimal
// when separation >> radius).
// ---------------------------------------------------------------------------
struct ClusteredConfig {
  std::size_t num_clusters = 8;
  std::size_t requests_per_cluster = 32;
  double cluster_radius = 1.0;
  double separation = 1000.0;         // distance between adjacent centers
  CommodityId num_commodities = 16;
  CommodityId commodities_per_cluster = 4;
  /// Each request demands a uniformly random non-empty subset of σ_c when
  /// true; the full σ_c when false.
  bool subset_demands = true;
  /// Interleave requests across clusters (round-robin order) rather than
  /// cluster-by-cluster; stresses algorithms more.
  bool interleave = true;
};

Instance make_clustered_line(const ClusteredConfig& config, CostModelPtr cost,
                             Rng& rng);

// ---------------------------------------------------------------------------
// Zooming sequence: requests approach a target point at geometrically
// decreasing distances (the classic hard input shape for online facility
// location; drives the Θ(log n) factor of the deterministic algorithm).
// All requests demand the same commodity set. OPT certificate: a single
// facility at the target.
// ---------------------------------------------------------------------------
struct ZoomingConfig {
  std::size_t num_requests = 256;
  double initial_distance = 64.0;
  double decay = 0.5;                 // distance multiplier per request
  CommodityId num_commodities = 8;
  CommodityId demand_size = 4;        // each request demands commodities
                                      // {0, ..., demand_size-1}
};

Instance make_zooming_line(const ZoomingConfig& config, CostModelPtr cost,
                           Rng& rng);

// ---------------------------------------------------------------------------
// Service network (the paper's §1 motivation): a random connected graph;
// requests at Zipf-popular nodes demand Zipf-popular service bundles.
// ---------------------------------------------------------------------------
struct ServiceNetworkConfig {
  std::size_t num_nodes = 64;
  double extra_edge_fraction = 0.5;   // extra random edges beyond the tree,
                                      // as a fraction of num_nodes
  double max_edge_weight = 10.0;
  std::size_t num_requests = 256;
  CommodityId num_commodities = 16;
  CommodityId min_demand = 1;
  CommodityId max_demand = 5;
  double node_popularity_exponent = 0.7;
  double commodity_popularity_exponent = 0.9;
};

Instance make_service_network(const ServiceNetworkConfig& config,
                              CostModelPtr cost, Rng& rng);

// ---------------------------------------------------------------------------
// Single point, mixed demands: everything at one point, random demand
// sets. Connection cost is zero, so the whole game is configuration
// choice — a pure stress test for the set-cover side of the algorithms.
// ---------------------------------------------------------------------------
struct SinglePointMixedConfig {
  std::size_t num_requests = 64;
  CommodityId num_commodities = 12;
  CommodityId min_demand = 1;
  CommodityId max_demand = 6;
};

Instance make_single_point_mixed(const SinglePointMixedConfig& config,
                                 CostModelPtr cost, Rng& rng);

}  // namespace omflp
