#include "instance/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "metric/graph_metric.hpp"
#include "metric/line_metric.hpp"
#include "support/assert.hpp"

namespace omflp {

CommoditySet sample_demand_set(CommodityId num_commodities, CommodityId size,
                               double popularity_exponent, Rng& rng) {
  OMFLP_REQUIRE(size >= 1 && size <= num_commodities,
                "sample_demand_set: size out of range");
  CommoditySet out(num_commodities);
  if (popularity_exponent == 0.0) {
    for (std::size_t idx :
         rng.sample_without_replacement(num_commodities, size))
      out.add(static_cast<CommodityId>(idx));
    return out;
  }
  ZipfSampler zipf(num_commodities, popularity_exponent);
  // Rejection over Zipf draws; falls back to filling uniformly if the
  // distribution is so skewed that distinct draws become rare.
  std::size_t attempts = 0;
  while (out.count() < size && attempts < 64 * static_cast<std::size_t>(size)) {
    out.add(static_cast<CommodityId>(zipf(rng)));
    ++attempts;
  }
  while (out.count() < size) {
    out.add(static_cast<CommodityId>(rng.uniform_index(num_commodities)));
  }
  return out;
}

namespace {

CommodityId sample_demand_size(CommodityId lo, CommodityId hi, Rng& rng) {
  OMFLP_REQUIRE(lo >= 1 && lo <= hi, "demand size range invalid");
  return static_cast<CommodityId>(
      rng.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(hi)));
}

}  // namespace

Instance make_uniform_line(const UniformLineConfig& config, CostModelPtr cost,
                           Rng& rng) {
  OMFLP_REQUIRE(cost != nullptr, "make_uniform_line: null cost model");
  OMFLP_REQUIRE(cost->num_commodities() == config.num_commodities,
                "make_uniform_line: cost model |S| mismatch");
  auto metric = LineMetric::uniform_grid(config.num_points, config.length);
  std::vector<Request> requests;
  requests.reserve(config.num_requests);
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    Request r;
    r.location = static_cast<PointId>(rng.uniform_index(config.num_points));
    r.commodities = sample_demand_set(
        config.num_commodities,
        sample_demand_size(config.min_demand, config.max_demand, rng),
        config.popularity_exponent, rng);
    requests.push_back(std::move(r));
  }
  std::ostringstream name;
  name << "uniform-line(n=" << config.num_requests
       << ",|S|=" << config.num_commodities << ",|M|=" << config.num_points
       << ")";
  return Instance(std::move(metric), std::move(cost), std::move(requests),
                  name.str());
}

Instance make_clustered_line(const ClusteredConfig& config, CostModelPtr cost,
                             Rng& rng) {
  OMFLP_REQUIRE(cost != nullptr, "make_clustered_line: null cost model");
  OMFLP_REQUIRE(cost->num_commodities() == config.num_commodities,
                "make_clustered_line: cost model |S| mismatch");
  OMFLP_REQUIRE(config.num_clusters > 0 && config.requests_per_cluster > 0,
                "make_clustered_line: empty workload");
  OMFLP_REQUIRE(
      config.commodities_per_cluster >= 1 &&
          config.commodities_per_cluster <= config.num_commodities,
      "make_clustered_line: commodities_per_cluster out of range");

  const std::size_t k = config.num_clusters;
  const std::size_t per = config.requests_per_cluster;

  // Point layout: index c in [0,k) is the center of cluster c; the request
  // points follow, `per` per cluster.
  std::vector<double> positions;
  positions.reserve(k + k * per);
  for (std::size_t c = 0; c < k; ++c)
    positions.push_back(static_cast<double>(c) * config.separation);

  std::vector<CommoditySet> cluster_sets;
  cluster_sets.reserve(k);
  for (std::size_t c = 0; c < k; ++c)
    cluster_sets.push_back(sample_demand_set(
        config.num_commodities, config.commodities_per_cluster, 0.0, rng));

  struct Pending {
    std::size_t cluster;
    PointId point;
    CommoditySet demand;
  };
  std::vector<Pending> pending;
  pending.reserve(k * per);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per; ++i) {
      const double offset =
          rng.uniform(-config.cluster_radius, config.cluster_radius);
      positions.push_back(static_cast<double>(c) * config.separation + offset);
      const PointId point = static_cast<PointId>(positions.size() - 1);
      CommoditySet demand = cluster_sets[c];
      if (config.subset_demands) {
        CommoditySet subset(config.num_commodities);
        demand.for_each([&](CommodityId e) {
          if (rng.bernoulli(0.5)) subset.add(e);
        });
        if (subset.empty()) {
          // Guarantee non-empty: keep one uniformly random member.
          const auto members = demand.to_vector();
          subset.add(members[rng.uniform_index(members.size())]);
        }
        demand = subset;
      }
      pending.push_back(Pending{c, point, std::move(demand)});
    }
  }

  // Arrival order: interleaved round-robin across clusters or sequential.
  std::vector<Request> requests;
  requests.reserve(pending.size());
  if (config.interleave) {
    for (std::size_t i = 0; i < per; ++i)
      for (std::size_t c = 0; c < k; ++c) {
        const Pending& p = pending[c * per + i];
        requests.push_back(Request{p.point, p.demand});
      }
  } else {
    for (const Pending& p : pending)
      requests.push_back(Request{p.point, p.demand});
  }

  auto metric = std::make_shared<LineMetric>(std::move(positions));

  // OPT certificate: open σ_c at each center, connect every cluster
  // request to its center. Feasible by construction.
  double cert_cost = 0.0;
  for (std::size_t c = 0; c < k; ++c)
    cert_cost += cost->open_cost(static_cast<PointId>(c), cluster_sets[c]);
  for (const Pending& p : pending)
    cert_cost +=
        metric->distance(p.point, static_cast<PointId>(p.cluster));

  std::ostringstream name;
  name << "clustered-line(k=" << k << ",n=" << k * per
       << ",|S|=" << config.num_commodities << ")";
  Instance inst(std::move(metric), std::move(cost), std::move(requests),
                name.str());
  inst.set_opt_certificate(OptCertificate{
      cert_cost, /*exact=*/false,
      "one facility per cluster center with the cluster's commodity set"});
  return inst;
}

Instance make_zooming_line(const ZoomingConfig& config, CostModelPtr cost,
                           Rng& /*rng*/) {
  OMFLP_REQUIRE(cost != nullptr, "make_zooming_line: null cost model");
  OMFLP_REQUIRE(cost->num_commodities() == config.num_commodities,
                "make_zooming_line: cost model |S| mismatch");
  OMFLP_REQUIRE(config.num_requests > 0, "make_zooming_line: no requests");
  OMFLP_REQUIRE(config.decay > 0.0 && config.decay < 1.0,
                "make_zooming_line: decay must lie in (0, 1)");
  OMFLP_REQUIRE(config.demand_size >= 1 &&
                    config.demand_size <= config.num_commodities,
                "make_zooming_line: demand size out of range");

  // Point 0 is the target; request i sits at distance d0 * decay^i,
  // alternating sides so the sequence does not collapse onto a ray.
  std::vector<double> positions;
  positions.reserve(config.num_requests + 1);
  positions.push_back(0.0);
  double d = config.initial_distance;
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    positions.push_back(i % 2 == 0 ? d : -d);
    d *= config.decay;
  }

  CommoditySet demand(config.num_commodities);
  for (CommodityId e = 0; e < config.demand_size; ++e) demand.add(e);

  std::vector<Request> requests;
  requests.reserve(config.num_requests);
  for (std::size_t i = 0; i < config.num_requests; ++i)
    requests.push_back(Request{static_cast<PointId>(i + 1), demand});

  auto metric = std::make_shared<LineMetric>(positions);

  double cert_cost = cost->open_cost(0, demand);
  for (std::size_t i = 1; i < positions.size(); ++i)
    cert_cost += std::abs(positions[i]);

  std::ostringstream name;
  name << "zooming-line(n=" << config.num_requests
       << ",|S|=" << config.num_commodities << ")";
  Instance inst(std::move(metric), std::move(cost), std::move(requests),
                name.str());
  inst.set_opt_certificate(OptCertificate{
      cert_cost, /*exact=*/false, "single facility at the zoom target"});
  return inst;
}

Instance make_service_network(const ServiceNetworkConfig& config,
                              CostModelPtr cost, Rng& rng) {
  OMFLP_REQUIRE(cost != nullptr, "make_service_network: null cost model");
  OMFLP_REQUIRE(cost->num_commodities() == config.num_commodities,
                "make_service_network: cost model |S| mismatch");
  OMFLP_REQUIRE(config.num_nodes >= 2, "make_service_network: tiny graph");

  // Random connected graph: a uniform random attachment tree plus extra
  // uniformly random edges.
  std::vector<GraphEdge> edges;
  for (PointId v = 1; v < config.num_nodes; ++v) {
    const PointId u = static_cast<PointId>(rng.uniform_index(v));
    edges.push_back(GraphEdge{u, v, rng.uniform(1.0, config.max_edge_weight)});
  }
  const std::size_t extra = static_cast<std::size_t>(
      config.extra_edge_fraction * static_cast<double>(config.num_nodes));
  for (std::size_t i = 0; i < extra; ++i) {
    const PointId u =
        static_cast<PointId>(rng.uniform_index(config.num_nodes));
    const PointId v =
        static_cast<PointId>(rng.uniform_index(config.num_nodes));
    if (u == v) continue;
    edges.push_back(GraphEdge{u, v, rng.uniform(1.0, config.max_edge_weight)});
  }
  auto metric = std::make_shared<GraphMetric>(config.num_nodes, edges);

  ZipfSampler node_pop(config.num_nodes, config.node_popularity_exponent);
  std::vector<Request> requests;
  requests.reserve(config.num_requests);
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    Request r;
    r.location = static_cast<PointId>(node_pop(rng));
    r.commodities = sample_demand_set(
        config.num_commodities,
        sample_demand_size(config.min_demand, config.max_demand, rng),
        config.commodity_popularity_exponent, rng);
    requests.push_back(std::move(r));
  }

  std::ostringstream name;
  name << "service-network(nodes=" << config.num_nodes
       << ",n=" << config.num_requests << ",|S|=" << config.num_commodities
       << ")";
  return Instance(std::move(metric), std::move(cost), std::move(requests),
                  name.str());
}

Instance make_single_point_mixed(const SinglePointMixedConfig& config,
                                 CostModelPtr cost, Rng& rng) {
  OMFLP_REQUIRE(cost != nullptr, "make_single_point_mixed: null cost model");
  OMFLP_REQUIRE(cost->num_commodities() == config.num_commodities,
                "make_single_point_mixed: cost model |S| mismatch");
  auto metric = std::make_shared<SinglePointMetric>();
  std::vector<Request> requests;
  requests.reserve(config.num_requests);
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    Request r;
    r.location = 0;
    r.commodities = sample_demand_set(
        config.num_commodities,
        sample_demand_size(config.min_demand, config.max_demand, rng), 0.0,
        rng);
    requests.push_back(std::move(r));
  }
  std::ostringstream name;
  name << "single-point-mixed(n=" << config.num_requests
       << ",|S|=" << config.num_commodities << ")";
  return Instance(std::move(metric), std::move(cost), std::move(requests),
                  name.str());
}

}  // namespace omflp
