// Instance transforms.
//
//   split_per_commodity — the paper's §1.1 reduction for the alternative
//     connection-cost model: replace every request r by |s_r| singleton
//     requests at the same location. Charging one path per facility on
//     the split instance is exactly charging one path per *commodity* on
//     the original, so the alternative model is simulated inside the
//     main one (at the cost of a sequence up to |S| times longer — the
//     paper's factor-2 remark).
//
//   shuffle_requests — uniformly permute the arrival order. Online ratios
//     are order-sensitive; [Lang 2018] (cited in §1.2) shows Meyerson's
//     algorithm improves when the adversary loses control of the order,
//     and this transform lets benches measure that effect.
//
//   scale_instance — multiply all distances and opening costs by λ > 0.
//     The OMFLP objective is 1-homogeneous, so every algorithm in this
//     library must scale its cost by exactly λ; the property tests use
//     this as an invariance check.
#pragma once

#include "instance/instance.hpp"
#include "support/rng.hpp"

namespace omflp {

Instance split_per_commodity(const Instance& instance);

Instance shuffle_requests(const Instance& instance, Rng& rng);

Instance scale_instance(const Instance& instance, double lambda);

/// Metric wrapper multiplying all distances by a positive factor.
class ScaledMetric final : public MetricSpace {
 public:
  ScaledMetric(MetricPtr base, double factor);

  std::size_t num_points() const noexcept override {
    return base_->num_points();
  }
  double distance(PointId a, PointId b) const override {
    return factor_ * base_->distance(a, b);
  }
  std::string description() const override;

 private:
  MetricPtr base_;
  double factor_;
};

/// Cost wrapper multiplying all opening costs by a positive factor.
class ScaledCostModel final : public FacilityCostModel {
 public:
  ScaledCostModel(CostModelPtr base, double factor);

  CommodityId num_commodities() const noexcept override {
    return base_->num_commodities();
  }
  double open_cost(PointId m, const CommoditySet& config) const override {
    return factor_ * base_->open_cost(m, config);
  }
  std::optional<double> cost_by_size(PointId m,
                                     CommodityId k) const override {
    const auto base = base_->cost_by_size(m, k);
    if (!base) return std::nullopt;
    return factor_ * *base;
  }
  bool location_invariant() const noexcept override {
    return base_->location_invariant();
  }
  std::string description() const override;

 private:
  CostModelPtr base_;
  double factor_;
};

}  // namespace omflp
