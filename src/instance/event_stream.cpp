#include "instance/event_stream.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "support/assert.hpp"

namespace omflp {

namespace {

/// Min-heap entry for pending lease expiries: (deadline event index,
/// arrival id), ordered ascending on both so simultaneous expiries fire
/// in arrival order.
using Expiry = std::pair<std::uint64_t, RequestId>;
using ExpiryHeap =
    std::priority_queue<Expiry, std::vector<Expiry>, std::greater<Expiry>>;

}  // namespace

EventStream::EventStream(MetricPtr metric, CostModelPtr cost,
                         std::vector<StreamEvent> events, std::string name)
    : metric_(std::move(metric)),
      cost_(std::move(cost)),
      events_(std::move(events)),
      name_(std::move(name)) {
  OMFLP_REQUIRE(metric_ != nullptr, "EventStream: null metric");
  OMFLP_REQUIRE(cost_ != nullptr, "EventStream: null cost model");
  for (const StreamEvent& e : events_)
    if (e.kind == StreamEvent::Kind::kArrival) ++num_arrivals_;
}

void EventStream::validate() const {
  const CommodityId s = cost_->num_commodities();
  const std::size_t points = metric_->num_points();
  std::vector<bool> active;  // by arrival id
  active.reserve(num_arrivals_);
  ExpiryHeap expiries;

  auto fail = [](std::size_t t, const std::string& what) {
    std::ostringstream os;
    os << "EventStream: event " << t << ": " << what;
    throw std::invalid_argument(os.str());
  };

  for (std::size_t t = 0; t < events_.size(); ++t) {
    while (!expiries.empty() && expiries.top().first <= t) {
      const RequestId id = expiries.top().second;
      expiries.pop();
      active[id] = false;  // no-op if an explicit departure beat the lease
    }
    const StreamEvent& e = events_[t];
    if (e.kind == StreamEvent::Kind::kArrival) {
      if (e.request.location >= points)
        fail(t, "arrival location outside the metric space");
      if (e.request.commodities.universe_size() != s)
        fail(t, "arrival demand set over the wrong universe");
      if (e.request.commodities.empty()) fail(t, "empty demand set");
      const RequestId id = active.size();
      active.push_back(true);
      if (e.lease > 0) expiries.emplace(lease_deadline(t, e.lease), id);
    } else {
      if (e.target >= active.size())
        fail(t, "departure of an arrival that has not happened");
      if (!active[e.target])
        fail(t, "departure of an arrival that is no longer active");
      active[e.target] = false;
    }
  }
}

std::vector<RequestId> EventStream::surviving_arrivals() const {
  std::vector<bool> active;
  active.reserve(num_arrivals_);
  ExpiryHeap expiries;
  for (std::size_t t = 0; t < events_.size(); ++t) {
    while (!expiries.empty() && expiries.top().first <= t) {
      active[expiries.top().second] = false;
      expiries.pop();
    }
    const StreamEvent& e = events_[t];
    if (e.kind == StreamEvent::Kind::kArrival) {
      const RequestId id = active.size();
      active.push_back(true);
      if (e.lease > 0) expiries.emplace(lease_deadline(t, e.lease), id);
    } else {
      OMFLP_REQUIRE(e.target < active.size() && active[e.target],
                    "EventStream: invalid departure (run validate())");
      active[e.target] = false;
    }
  }
  // Leases with deadlines past the end never fire: whatever is still
  // marked active survives.
  std::vector<RequestId> out;
  for (RequestId id = 0; id < active.size(); ++id)
    if (active[id]) out.push_back(id);
  return out;
}

Instance EventStream::surviving_instance() const {
  const std::vector<RequestId> survivors = surviving_arrivals();
  std::vector<bool> keep(num_arrivals_, false);
  for (const RequestId id : survivors) keep[id] = true;
  std::vector<Request> requests;
  requests.reserve(survivors.size());
  RequestId arrival = 0;
  for (const StreamEvent& e : events_) {
    if (e.kind != StreamEvent::Kind::kArrival) continue;
    if (keep[arrival]) requests.push_back(e.request);
    ++arrival;
  }
  Instance instance(metric_, cost_, std::move(requests),
                    name_ + "-surviving");
  instance.set_capacities(capacities_);
  return instance;
}

void EventStream::set_capacities(CapacityMap capacities) {
  if (capacities) {
    OMFLP_REQUIRE(capacities->size() <= metric_->num_points(),
                  "EventStream: capacity map larger than the metric space");
  }
  capacities_ = std::move(capacities);
}

std::size_t MaterializedEventSource::next_batch(
    std::vector<StreamEvent>& out, std::size_t max_events) {
  const std::vector<StreamEvent>& events = stream_->events();
  const std::size_t n = std::min(max_events, events.size() - cursor_);
  out.insert(out.end(), events.begin() + static_cast<std::ptrdiff_t>(cursor_),
             events.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
  cursor_ += n;
  return n;
}

void EventSource::skip_events(std::uint64_t n) {
  std::vector<StreamEvent> discard;
  while (n > 0) {
    discard.clear();
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, 8192));
    const std::size_t got = next_batch(discard, chunk);
    if (got == 0)
      throw std::invalid_argument(
          "EventSource::skip_events: stream shorter than the checkpoint "
          "clock");
    n -= got;
  }
}

void MaterializedEventSource::skip_events(std::uint64_t n) {
  const std::vector<StreamEvent>& events = stream_->events();
  if (n > events.size() - cursor_)
    throw std::invalid_argument(
        "MaterializedEventSource::skip_events: stream shorter than the "
        "checkpoint clock");
  cursor_ += static_cast<std::size_t>(n);
}

}  // namespace omflp
