// The lower-bound input distributions from Section 2.
//
// Theorem 2: on a single point with cost g(|σ|) = ⌈|σ|/√|S|⌉, request the
// members of a uniformly random S' ⊂ S, |S'| = ⌊√|S|⌋, one commodity at a
// time. OPT opens one facility with configuration S' and pays exactly
// scale·⌈|S'|/√|S|⌉ = scale (exact certificate: every non-empty facility
// costs at least scale, and one suffices). Any online algorithm pays
// Ω(√|S|)·OPT in expectation.
//
// Theorem 18's adaptive variant uses the same sequence with the class-C
// cost g_x instead; OPT then pays g_x(|S'|) = |S'|^{x/2}.
#pragma once

#include "cost/cost_models.hpp"
#include "instance/instance.hpp"
#include "support/rng.hpp"

namespace omflp {

struct Theorem2Config {
  CommodityId num_commodities = 64;  // |S|; the request count is ⌊√|S|⌋
  double cost_scale = 1.0;
};

/// The Theorem 2 distribution with cost ⌈|σ|/√|S|⌉.
Instance make_theorem2_instance(const Theorem2Config& config, Rng& rng);

struct Theorem18Config {
  CommodityId num_commodities = 64;
  double exponent_x = 1.0;  // class-C exponent; ratio bound depends on it
  double cost_scale = 1.0;
};

/// The Theorem 2 sequence under the class-C cost g_x (used by the adaptive
/// lower bound in §3.3.2). OPT certificate: g_x(|S'|), exact for x > 0
/// since singletons cost 1 and covering |S'| commodities costs at least
/// max(g_x(|S'|), 1) by monotonicity... exactness is argued in the .cpp.
Instance make_theorem18_instance(const Theorem18Config& config, Rng& rng);

/// Number of requests the Theorem 2 game issues for a universe of size s.
CommodityId theorem2_sequence_length(CommodityId num_commodities);

}  // namespace omflp
