#include "instance/adversarial.hpp"

#include <cmath>
#include <sstream>

#include "metric/line_metric.hpp"
#include "support/assert.hpp"

namespace omflp {

CommodityId theorem2_sequence_length(CommodityId num_commodities) {
  return static_cast<CommodityId>(
      std::floor(std::sqrt(static_cast<double>(num_commodities))));
}

namespace {

std::vector<Request> theorem2_requests(CommodityId s, Rng& rng) {
  const CommodityId k = theorem2_sequence_length(s);
  OMFLP_REQUIRE(k >= 1, "theorem2: |S| must be at least 1");
  std::vector<Request> requests;
  requests.reserve(k);
  for (std::size_t idx : rng.sample_without_replacement(s, k)) {
    Request r;
    r.location = 0;
    r.commodities =
        CommoditySet::singleton(s, static_cast<CommodityId>(idx));
    requests.push_back(std::move(r));
  }
  return requests;
}

}  // namespace

Instance make_theorem2_instance(const Theorem2Config& config, Rng& rng) {
  const CommodityId s = config.num_commodities;
  auto metric = std::make_shared<SinglePointMetric>();
  auto cost = std::make_shared<CeilRatioCostModel>(s, config.cost_scale);
  auto requests = theorem2_requests(s, rng);

  std::ostringstream name;
  name << "theorem2(|S|=" << s << ")";
  Instance inst(std::move(metric), std::move(cost), std::move(requests),
                name.str());
  // OPT: one facility covering S' costs scale·⌈|S'|/√|S|⌉ = scale (since
  // |S'| = ⌊√|S|⌋ ≤ √|S|). Exact: connection costs are zero on a single
  // point and any facility covering at least one commodity costs ≥ scale.
  inst.set_opt_certificate(OptCertificate{
      config.cost_scale, /*exact=*/true,
      "single facility with configuration S' (Theorem 2 proof)"});
  return inst;
}

Instance make_theorem18_instance(const Theorem18Config& config, Rng& rng) {
  const CommodityId s = config.num_commodities;
  auto metric = std::make_shared<SinglePointMetric>();
  auto cost = std::make_shared<PolynomialCostModel>(s, config.exponent_x,
                                                    config.cost_scale);
  auto requests = theorem2_requests(s, rng);
  const CommodityId k = theorem2_sequence_length(s);
  // OPT pays at most g_x(k) with one facility. This is exact: covering the
  // k requested commodities with facilities of sizes k_1 + ... + k_p >= k
  // costs sum g_x(k_i) >= g_x(sum k_i) >= g_x(k) by subadditivity of
  // t -> t^{x/2} for x <= 2 and monotonicity.
  const double opt = cost->cost_of_size(k);

  std::ostringstream name;
  name << "theorem18(|S|=" << s << ",x=" << config.exponent_x << ")";
  Instance inst(std::move(metric), std::move(cost), std::move(requests),
                name.str());
  inst.set_opt_certificate(OptCertificate{
      opt, /*exact=*/true, "single facility with configuration S'"});
  return inst;
}

}  // namespace omflp
