#include "perf/bench_compare.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "support/parse.hpp"
#include "support/table.hpp"

namespace omflp {

namespace {

// ------------------------------------------------------ minimal JSON ---
//
// A tiny recursive-descent parser covering exactly what BENCH documents
// use (objects, arrays, strings, numbers, booleans, null). No external
// dependency; errors carry the byte offset.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (kind != Kind::kObject || it == object.end())
      throw std::runtime_error("BENCH json: missing field '" + key + "'");
    return it->second;
  }
  const JsonValue* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  double as_number(const std::string& what) const {
    if (kind != Kind::kNumber)
      throw std::runtime_error("BENCH json: '" + what + "' is not a number");
    return number;
  }
  const std::string& as_string(const std::string& what) const {
    if (kind != Kind::kString)
      throw std::runtime_error("BENCH json: '" + what + "' is not a string");
    return string;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("BENCH json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    const char ch = peek();
    JsonValue value;
    switch (ch) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.string = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      value.object.emplace(std::move(key), parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') code += hex - '0';
            else if (hex >= 'a' && hex <= 'f') code += 10 + hex - 'a';
            else if (hex >= 'A' && hex <= 'F') code += 10 + hex - 'A';
            else fail("bad \\u escape");
          }
          // BENCH documents only escape control characters; anything in
          // the Latin-1 range round-trips, the rest is rejected.
          if (code > 0xff) fail("unsupported \\u escape");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_whitespace();
    // Scan the maximal JSON-number-shaped token, then hand it to the
    // strict parser: hex floats, "inf"/"nan" and silent ERANGE overflow
    // (all of which a raw strtod prefix scan would accept) are rejected
    // with a position instead of smuggled into the comparison.
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E'))
      ++end;
    const auto number = parse_double_strict(
        std::string_view(text_).substr(pos_, end - pos_));
    if (!number) fail("expected a value");
    pos_ = end;
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = *number;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::size_t as_size(const JsonValue& value, const std::string& what) {
  const double number = value.as_number(what);
  if (number < 0.0 || number != std::floor(number))
    throw std::runtime_error("BENCH json: '" + what +
                             "' is not a non-negative integer");
  return static_cast<std::size_t>(number);
}

}  // namespace

// -------------------------------------------------------------- reading ---

BenchReport read_bench_report(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  const JsonValue root = JsonParser(text).parse();

  BenchReport report;
  report.schema_version =
      static_cast<int>(root.at("schema_version").as_number("schema_version"));
  if (report.schema_version != kBenchSchemaVersion)
    throw std::runtime_error(
        "BENCH json: schema_version " +
        std::to_string(report.schema_version) + " is not the supported " +
        std::to_string(kBenchSchemaVersion));
  report.suite = root.at("suite").as_string("suite");
  report.git_sha = root.at("git_sha").as_string("git_sha");
  report.build_type = root.at("build_type").as_string("build_type");
  report.compiler = root.at("compiler").as_string("compiler");
  report.build_flags = root.at("build_flags").as_string("build_flags");
  report.trials = as_size(root.at("trials"), "trials");
  report.warmup = as_size(root.at("warmup"), "warmup");

  const JsonValue& cases = root.at("cases");
  if (cases.kind != JsonValue::Kind::kArray)
    throw std::runtime_error("BENCH json: 'cases' is not an array");
  for (const JsonValue& entry : cases.array) {
    BenchCaseResult c;
    c.name = entry.at("name").as_string("name");
    c.requests_per_op = as_size(entry.at("requests_per_op"),
                                "requests_per_op");
    c.trials = as_size(entry.at("trials"), "trials");
    c.ns_per_op = entry.at("ns_per_op").as_number("ns_per_op");
    c.ns_per_op_mean =
        entry.at("ns_per_op_mean").as_number("ns_per_op_mean");
    c.ns_per_op_min = entry.at("ns_per_op_min").as_number("ns_per_op_min");
    c.ns_per_op_max = entry.at("ns_per_op_max").as_number("ns_per_op_max");
    c.requests_per_sec =
        entry.at("requests_per_sec").as_number("requests_per_sec");
    const JsonValue& counters = entry.at("counters");
    PerfCounters::for_each_field(
        c.counters, [&](const char* name, std::uint64_t& value) {
          if (const JsonValue* field = counters.find(name))
            value = static_cast<std::uint64_t>(as_size(*field, name));
        });
    report.cases.push_back(std::move(c));
  }
  return report;
}

BenchReport read_bench_report_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  return read_bench_report(file);
}

// ------------------------------------------------------------ comparing ---

CompareReport compare_reports(const BenchReport& old_report,
                              const BenchReport& new_report,
                              const CompareOptions& options) {
  if (options.regression_threshold < 1.0)
    throw std::invalid_argument(
        "compare_reports: regression threshold must be >= 1.0");

  CompareReport out;
  out.threshold = options.regression_threshold;

  for (const BenchCaseResult& old_case : old_report.cases) {
    CaseDelta delta;
    delta.name = old_case.name;
    delta.old_ns_per_op = old_case.ns_per_op;
    const BenchCaseResult* new_case = new_report.find(old_case.name);
    if (new_case == nullptr) {
      // A baseline case the new report no longer measures: counted and
      // reported on its own row either way; fail_on_missing additionally
      // makes it a regression (so renaming or deleting a slow case
      // cannot silently defeat the gate — deliberate suite changes
      // regenerate the baseline in the same PR).
      delta.status = CaseDelta::Status::kOnlyOld;
      ++out.missing_cases;
      if (options.fail_on_missing) ++out.regressions;
      out.deltas.push_back(std::move(delta));
      continue;
    }
    delta.new_ns_per_op = new_case->ns_per_op;
    delta.time_ratio = old_case.ns_per_op > 0.0
                           ? new_case->ns_per_op / old_case.ns_per_op
                           : 0.0;
    if (old_case.counters.distance_lookups > 0)
      delta.lookup_ratio =
          static_cast<double>(new_case->counters.distance_lookups) /
          static_cast<double>(old_case.counters.distance_lookups);
    if (delta.time_ratio > options.regression_threshold) {
      delta.status = CaseDelta::Status::kRegressed;
      ++out.regressions;
    } else if (delta.time_ratio > 0.0 &&
               delta.time_ratio < 1.0 / options.regression_threshold) {
      delta.status = CaseDelta::Status::kImproved;
      ++out.improvements;
    }
    out.deltas.push_back(std::move(delta));
  }
  for (const BenchCaseResult& new_case : new_report.cases) {
    if (old_report.find(new_case.name) != nullptr) continue;
    CaseDelta delta;
    delta.name = new_case.name;
    delta.new_ns_per_op = new_case.ns_per_op;
    delta.status = CaseDelta::Status::kOnlyNew;
    ++out.new_cases;
    out.deltas.push_back(std::move(delta));
  }
  return out;
}

void CompareReport::write_table(std::ostream& os) const {
  TableWriter table({"case", "old ns/op", "new ns/op", "new/old",
                     "lookups new/old", "status"});
  table.set_precision(6);
  for (const CaseDelta& delta : deltas) {
    const char* status = "ok";
    switch (delta.status) {
      case CaseDelta::Status::kOk: status = "ok"; break;
      case CaseDelta::Status::kImproved: status = "IMPROVED"; break;
      case CaseDelta::Status::kRegressed: status = "REGRESSED"; break;
      case CaseDelta::Status::kOnlyOld: status = "missing in new"; break;
      case CaseDelta::Status::kOnlyNew: status = "new case"; break;
    }
    table.begin_row()
        .add(delta.name)
        .add(delta.old_ns_per_op)
        .add(delta.new_ns_per_op)
        .add(delta.time_ratio)
        .add(delta.lookup_ratio)
        .add(status);
  }
  table.write_markdown(os);
  os << "\n"
     << (regressions > 0
             ? "REGRESSION: " + std::to_string(regressions) +
                   " case(s) slower than "
             : "ok: no case slower than ")
     << threshold << "x the old time (" << improvements
     << " improved beyond the same margin)\n";
  if (new_cases > 0 || missing_cases > 0)
    os << "suite drift: " << new_cases
       << " new case(s) not in the baseline, " << missing_cases
       << " baseline case(s) not measured by the new report — regenerate "
          "the baseline to adopt suite changes\n";
}

}  // namespace omflp
