// Reading BENCH_*.json reports back and diffing two of them.
//
// compare_reports matches cases by name and classifies each pair by the
// new/old ns-per-op ratio against a regression threshold; `omflp compare`
// prints the table and exits nonzero when any case regressed beyond it.
// Counter totals are deterministic (same build, same seeds), so their
// deltas are exact work differences, reported alongside the (noisy) wall
// times.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "perf/bench_suite.hpp"

namespace omflp {

/// Parses a BENCH_*.json document written by BenchReport::write_json.
/// Throws std::runtime_error on malformed JSON, a missing required field,
/// or an unsupported schema_version. Unknown counter names are ignored
/// (forward compatibility within a schema version).
BenchReport read_bench_report(std::istream& is);
BenchReport read_bench_report_file(const std::string& path);

struct CompareOptions {
  /// A case regresses when new ns/op > threshold * old ns/op.
  double regression_threshold = 1.10;
  /// When set, a baseline case missing from the new report counts as a
  /// regression (so renaming or deleting a slow case cannot dodge the
  /// gate). Off by default: suite membership legitimately changes when a
  /// PR adds or retires cases, and such runs must compare cleanly — the
  /// missing/new cases are still reported loudly so a stale baseline is
  /// visible and gets regenerated in the same PR.
  bool fail_on_missing = false;
};

struct CaseDelta {
  enum class Status { kOk, kImproved, kRegressed, kOnlyOld, kOnlyNew };

  std::string name;
  double old_ns_per_op = 0.0;
  double new_ns_per_op = 0.0;
  double time_ratio = 0.0;     // new / old; 0 when either side is missing
  double lookup_ratio = 0.0;   // new / old distance lookups; 0 when n/a
  Status status = Status::kOk;
};

struct CompareReport {
  std::vector<CaseDelta> deltas;  // old-report order, then new-only cases
  /// Cases beyond the threshold; with fail_on_missing, also the baseline
  /// cases missing from the new report.
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  /// Baseline cases absent from the new report / new cases absent from
  /// the baseline (suite membership drift — reported either way, gated
  /// only via CompareOptions::fail_on_missing).
  std::size_t missing_cases = 0;
  std::size_t new_cases = 0;
  double threshold = 0.0;

  bool any_regression() const noexcept { return regressions > 0; }
  /// Per-case markdown table plus a one-line verdict.
  void write_table(std::ostream& os) const;
};

CompareReport compare_reports(const BenchReport& old_report,
                              const BenchReport& new_report,
                              const CompareOptions& options = {});

}  // namespace omflp
