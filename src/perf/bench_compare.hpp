// Reading BENCH_*.json reports back and diffing two of them.
//
// compare_reports matches cases by name and classifies each pair by the
// new/old ns-per-op ratio against a regression threshold; `omflp compare`
// prints the table and exits nonzero when any case regressed beyond it.
// Counter totals are deterministic (same build, same seeds), so their
// deltas are exact work differences, reported alongside the (noisy) wall
// times.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "perf/bench_suite.hpp"

namespace omflp {

/// Parses a BENCH_*.json document written by BenchReport::write_json.
/// Throws std::runtime_error on malformed JSON, a missing required field,
/// or an unsupported schema_version. Unknown counter names are ignored
/// (forward compatibility within a schema version).
BenchReport read_bench_report(std::istream& is);
BenchReport read_bench_report_file(const std::string& path);

struct CompareOptions {
  /// A case regresses when new ns/op > threshold * old ns/op.
  double regression_threshold = 1.10;
};

struct CaseDelta {
  enum class Status { kOk, kImproved, kRegressed, kOnlyOld, kOnlyNew };

  std::string name;
  double old_ns_per_op = 0.0;
  double new_ns_per_op = 0.0;
  double time_ratio = 0.0;     // new / old; 0 when either side is missing
  double lookup_ratio = 0.0;   // new / old distance lookups; 0 when n/a
  Status status = Status::kOk;
};

struct CompareReport {
  std::vector<CaseDelta> deltas;  // old-report order, then new-only cases
  /// Cases beyond the threshold plus baseline cases missing from the new
  /// report (a dropped case must fail the gate, not dodge it).
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  double threshold = 0.0;

  bool any_regression() const noexcept { return regressions > 0; }
  /// Per-case markdown table plus a one-line verdict.
  void write_table(std::ostream& os) const;
};

CompareReport compare_reports(const BenchReport& old_report,
                              const BenchReport& new_report,
                              const CompareOptions& options = {});

}  // namespace omflp
