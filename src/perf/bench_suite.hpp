// BenchSuite — the repo's first-class performance measurement runner.
//
// A BenchCase is a named closure (one "operation", e.g. replaying a
// scenario instance through a roster algorithm) plus how many requests an
// operation processes. A BenchSuite runs every case warmup+timed trials on
// the calling thread, takes the median trial as ns/op (robust against a
// scheduler hiccup inflating the mean), derives requests/s, and collects
// PerfCounters totals from one extra *untimed* instrumented pass — so
// wall times are measured with counting disabled, exactly the
// configuration production code runs in.
//
// The resulting BenchReport serializes to the schema-versioned
// BENCH_<suite>.json format (see README "Performance telemetry"):
// build metadata (git sha, compiler, flags) plus per-case ns/op,
// requests/s, and counter totals. bench_compare.hpp reads these files
// back and diffs them; `omflp bench` / `omflp compare` are thin CLI
// wrappers over this pair.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "perf/latency_histogram.hpp"
#include "perf/perf_counters.hpp"

namespace omflp {

/// BENCH_*.json schema version; bump on any incompatible layout change.
inline constexpr int kBenchSchemaVersion = 1;

/// Monotonic nanosecond timer for bench trials.
class BenchTimer {
 public:
  BenchTimer();
  /// Nanoseconds since construction or the last restart().
  double elapsed_ns() const;
  void restart();

 private:
  std::uint64_t start_ns_ = 0;
};

struct BenchCase {
  std::string name;
  /// Requests processed per op() call; feeds the requests/s column. Use
  /// the natural work unit for micro cases (e.g. lookups per op).
  std::size_t requests_per_op = 1;
  std::function<void()> op;
  /// Optional latency channel: when set, the op writes its most recent
  /// internal latency distribution here (e.g. the engine's per-batch
  /// snapshot) and the suite copies the last trial's value into the case
  /// result, where write_json() emits it as a "latency" object.
  std::shared_ptr<LatencySnapshot> latency = nullptr;
};

struct BenchOptions {
  std::size_t warmup = 2;
  std::size_t trials = 7;
  /// One extra instrumented pass per case for counter totals.
  bool collect_counters = true;
  /// When set, one progress line per finished case.
  std::ostream* progress = nullptr;
};

struct BenchCaseResult {
  std::string name;
  std::size_t requests_per_op = 1;
  std::size_t trials = 0;
  double ns_per_op = 0.0;  // median of the timed trials
  double ns_per_op_mean = 0.0;
  double ns_per_op_min = 0.0;
  double ns_per_op_max = 0.0;
  double requests_per_sec = 0.0;  // requests_per_op / median seconds
  PerfCounters counters;          // totals of one op; all-zero if skipped
  /// Internal latency distribution of the last trial (count == 0 when
  /// the case has no latency channel).
  LatencySnapshot latency;
};

struct BenchReport {
  int schema_version = kBenchSchemaVersion;
  std::string suite;
  std::string git_sha;
  std::string build_type;
  std::string compiler;
  std::string build_flags;
  std::size_t trials = 0;
  std::size_t warmup = 0;
  std::vector<BenchCaseResult> cases;

  /// Null when the name is absent.
  const BenchCaseResult* find(const std::string& name) const;

  /// The BENCH_<suite>.json document (self-contained, schema-versioned).
  void write_json(std::ostream& os) const;
  /// Human-readable per-case summary table (markdown).
  void write_table(std::ostream& os) const;
};

class BenchSuite {
 public:
  explicit BenchSuite(std::string name);

  /// Registers a case; throws std::invalid_argument on an empty or
  /// duplicate name or a missing op.
  void add(BenchCase bench_case);

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return cases_.size(); }
  std::vector<std::string> case_names() const;

  /// Runs every case (in registration order, single-threaded) and
  /// assembles the report with build metadata filled in.
  BenchReport run(const BenchOptions& options = {}) const;

 private:
  std::string name_;
  std::vector<BenchCase> cases_;
};

/// The standard suite backing `omflp bench`: every registered algorithm
/// replaying the uniform-line workload, the PD reference-bid ablation,
/// DistanceOracle cached/fallback micro cases, the dynamic-stream
/// events/s cases (run_stream over churn-uniform workloads, greedy and
/// PD), the serving-engine pairs (serve/mixed-* = ShardedEngine over the
/// 16-tenant "mixed" workload mix at default shards/threads, serve/seq-*
/// = the same tenants as a sequential run_stream loop — the ratio is the
/// engine's aggregate speedup on this machine), the counters on/off
/// overhead pair (the disabled-mode case the telemetry claims are judged
/// against), and the trace on/off pair (the same churn stream with and
/// without a TraceSink installed — the measurement behind the
/// zero-overhead-when-off tracing claim). Workloads are identical at
/// both scales so reports stay comparable; `quick` only shrinks
/// warmup/trials via quick_bench_options().
BenchSuite default_bench_suite();

BenchOptions quick_bench_options();

/// "BENCH_<suite>.json"
std::string default_bench_filename(const std::string& suite);

}  // namespace omflp
