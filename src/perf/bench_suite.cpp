#include "perf/bench_suite.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "baseline/greedy.hpp"
#include "bound/dual_ascent.hpp"
#include "bound/window.hpp"
#include "core/online_algorithm.hpp"
#include "core/pd_omflp.hpp"
#include "core/stream_runner.hpp"
#include "engine/sharded_engine.hpp"
#include "kernel/kernels.hpp"
#include "metric/distance_oracle.hpp"
#include "metric/line_metric.hpp"
#include "obs/trace_sink.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/registry_util.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/stream_registry.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace omflp {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(ch) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(ch));
      out += buffer;
      continue;
    }
    out.push_back(ch);
  }
  return out;
}

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

// Build metadata injected by CMake onto this translation unit only (so a
// new git sha does not rebuild the whole library).
#if !defined(OMFLP_GIT_SHA)
#define OMFLP_GIT_SHA "unknown"
#endif
#if !defined(OMFLP_BUILD_TYPE)
#define OMFLP_BUILD_TYPE "unknown"
#endif
#if !defined(OMFLP_BUILD_FLAGS)
#define OMFLP_BUILD_FLAGS "unknown"
#endif

}  // namespace

// ---------------------------------------------------------------- timer ---

BenchTimer::BenchTimer() : start_ns_(now_ns()) {}

void BenchTimer::restart() { start_ns_ = now_ns(); }

double BenchTimer::elapsed_ns() const {
  return static_cast<double>(now_ns() - start_ns_);
}

// --------------------------------------------------------------- report ---

const BenchCaseResult* BenchReport::find(const std::string& name) const {
  for (const BenchCaseResult& c : cases)
    if (c.name == name) return &c;
  return nullptr;
}

void BenchReport::write_json(std::ostream& os) const {
  const std::streamsize saved_precision = os.precision(17);
  os << "{\n"
     << "  \"schema_version\": " << schema_version << ",\n"
     << "  \"suite\": \"" << json_escape(suite) << "\",\n"
     << "  \"git_sha\": \"" << json_escape(git_sha) << "\",\n"
     << "  \"build_type\": \"" << json_escape(build_type) << "\",\n"
     << "  \"compiler\": \"" << json_escape(compiler) << "\",\n"
     << "  \"build_flags\": \"" << json_escape(build_flags) << "\",\n"
     << "  \"trials\": " << trials << ",\n"
     << "  \"warmup\": " << warmup << ",\n"
     << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const BenchCaseResult& c = cases[i];
    os << "    {\"name\": \"" << json_escape(c.name) << "\",\n"
       << "     \"requests_per_op\": " << c.requests_per_op << ",\n"
       << "     \"trials\": " << c.trials << ",\n"
       << "     \"ns_per_op\": " << c.ns_per_op << ",\n"
       << "     \"ns_per_op_mean\": " << c.ns_per_op_mean << ",\n"
       << "     \"ns_per_op_min\": " << c.ns_per_op_min << ",\n"
       << "     \"ns_per_op_max\": " << c.ns_per_op_max << ",\n"
       << "     \"requests_per_sec\": " << c.requests_per_sec << ",\n";
    if (c.latency.count > 0)
      os << "     \"latency\": " << c.latency.to_json() << ",\n";
    os << "     \"counters\": {";
    bool first = true;
    PerfCounters::for_each_field(c.counters,
                                 [&](const char* name, std::uint64_t value) {
                                   os << (first ? "" : ", ") << "\"" << name
                                      << "\": " << value;
                                   first = false;
                                 });
    os << "}}" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.precision(saved_precision);
}

void BenchReport::write_table(std::ostream& os) const {
  TableWriter table({"case", "ns/op (median)", "requests/s", "dist lookups",
                     "bids eval", "facilities probed", "coin flips"});
  table.set_precision(6);
  for (const BenchCaseResult& c : cases) {
    table.begin_row()
        .add(c.name)
        .add(c.ns_per_op)
        .add(c.requests_per_sec)
        .add(static_cast<long long>(c.counters.distance_lookups))
        .add(static_cast<long long>(c.counters.bids_evaluated))
        .add(static_cast<long long>(c.counters.facilities_probed))
        .add(static_cast<long long>(c.counters.coin_flips));
  }
  table.write_markdown(os);
}

// ---------------------------------------------------------------- suite ---

BenchSuite::BenchSuite(std::string name) : name_(std::move(name)) {
  if (name_.empty())
    throw std::invalid_argument("BenchSuite: empty suite name");
}

void BenchSuite::add(BenchCase bench_case) {
  if (bench_case.name.empty())
    throw std::invalid_argument("BenchSuite: empty case name");
  if (!bench_case.op)
    throw std::invalid_argument("BenchSuite: case '" + bench_case.name +
                                "' has no op");
  for (const BenchCase& existing : cases_)
    if (existing.name == bench_case.name)
      throw std::invalid_argument("BenchSuite: duplicate case '" +
                                  bench_case.name + "'");
  cases_.push_back(std::move(bench_case));
}

std::vector<std::string> BenchSuite::case_names() const {
  std::vector<std::string> out;
  out.reserve(cases_.size());
  for (const BenchCase& c : cases_) out.push_back(c.name);
  return out;
}

BenchReport BenchSuite::run(const BenchOptions& options) const {
  if (options.trials == 0)
    throw std::invalid_argument("BenchSuite: trials must be positive");

  BenchReport report;
  report.suite = name_;
  report.git_sha = OMFLP_GIT_SHA;
  report.build_type = OMFLP_BUILD_TYPE;
  report.compiler = compiler_string();
  report.build_flags = OMFLP_BUILD_FLAGS;
  report.trials = options.trials;
  report.warmup = options.warmup;

  for (const BenchCase& c : cases_) {
    for (std::size_t w = 0; w < options.warmup; ++w) c.op();

    std::vector<double> samples;
    samples.reserve(options.trials);
    for (std::size_t t = 0; t < options.trials; ++t) {
      BenchTimer timer;
      c.op();
      samples.push_back(timer.elapsed_ns());
    }
    std::sort(samples.begin(), samples.end());

    BenchCaseResult result;
    result.name = c.name;
    result.requests_per_op = c.requests_per_op;
    result.trials = options.trials;
    const std::size_t mid = samples.size() / 2;
    result.ns_per_op = samples.size() % 2 == 1
                           ? samples[mid]
                           : 0.5 * (samples[mid - 1] + samples[mid]);
    double sum = 0.0;
    for (const double s : samples) sum += s;
    result.ns_per_op_mean = sum / static_cast<double>(samples.size());
    result.ns_per_op_min = samples.front();
    result.ns_per_op_max = samples.back();
    result.requests_per_sec =
        static_cast<double>(c.requests_per_op) * 1e9 /
        std::max(result.ns_per_op, 1.0);

    if (options.collect_counters) {
      PerfScope scope(result.counters);
      c.op();
    }
    if (c.latency) result.latency = *c.latency;
    report.cases.push_back(std::move(result));

    if (options.progress)
      *options.progress << "  " << c.name << "  "
                        << report.cases.back().ns_per_op / 1e6
                        << " ms/op\n";
  }
  return report;
}

// -------------------------------------------------------- default suite ---

namespace {

/// One op = replay `instance` through `algorithm` (reset + full serve
/// sequence; the ledger is discarded).
BenchCase algorithm_case(std::string name,
                         std::shared_ptr<OnlineAlgorithm> algorithm,
                         std::shared_ptr<const Instance> instance) {
  BenchCase c;
  c.name = std::move(name);
  c.requests_per_op = instance->num_requests();
  c.op = [algorithm = std::move(algorithm),
          instance = std::move(instance)] {
    const SolutionLedger ledger = run_online(*algorithm, *instance);
    // The total depends on every decision; reading it keeps the whole run
    // observable.
    volatile double sink = ledger.total_cost();
    (void)sink;
  };
  return c;
}

}  // namespace

BenchSuite default_bench_suite() {
  BenchSuite suite("default");

  // The shared workload: the uniform-line scenario at its modest default
  // size. One instance, every roster algorithm — so per-case counter
  // totals are directly comparable work measurements.
  const auto instance = std::make_shared<const Instance>(
      default_scenario_registry().make("uniform-line", /*seed=*/1));
  const AlgorithmRegistry& registry = default_algorithm_registry();
  for (const std::string& name : registry.names()) {
    suite.add(algorithm_case(
        "algo/" + name + "/uniform-line",
        registry.make(name, derive_algorithm_seed(1)), instance));
  }

  // PD with from-scratch bid recomputation — the measured counterpart of
  // the header's kReference/kIncremental equivalence claim.
  suite.add(algorithm_case(
      "pd-reference/uniform-line",
      std::make_shared<PdOmflp>(
          PdOptions{.bid_mode = PdOptions::BidMode::kReference}),
      instance));

  // DistanceOracle micro cases: all-pairs lookups through the cached
  // matrix vs the virtual-call fallback (cache_limit = 0).
  {
    const auto metric = LineMetric::uniform_grid(256, 100.0);
    const auto cached = std::make_shared<DistanceOracle>(metric);
    const auto fallback =
        std::make_shared<DistanceOracle>(metric, /*cache_limit=*/0);
    const std::size_t n = metric->num_points();
    const auto sweep = [n](std::shared_ptr<DistanceOracle> oracle) {
      return [oracle = std::move(oracle), n] {
        double sum = 0.0;
        for (PointId a = 0; a < n; ++a)
          for (PointId b = 0; b < n; ++b) sum += (*oracle)(a, b);
        volatile double sink = sum;
        (void)sink;
      };
    };
    suite.add(BenchCase{"oracle/cached", n * n, sweep(cached)});
    suite.add(BenchCase{"oracle/fallback", n * n, sweep(fallback)});
  }

  // Kernel micro cases: the hot-loop kernels of src/kernel/ over one
  // 4096-point row of deterministic pseudo-random data (the row length a
  // large scenario would sweep; well below the parallel threshold so
  // these time the serial bodies). One op = one full-row kernel call —
  // requests_per_op is the row length so the throughput column reads as
  // elements/s.
  {
    const std::size_t n = 4096;
    Rng rng(12345);
    auto dist = std::make_shared<std::vector<double>>(n);
    auto cost = std::make_shared<std::vector<double>>(n);
    auto bids = std::make_shared<std::vector<double>>(n);
    auto keys = std::make_shared<std::vector<std::uint32_t>>(n);
    for (std::size_t m = 0; m < n; ++m) {
      (*dist)[m] = rng.uniform(0.0, 100.0);
      (*cost)[m] = rng.uniform(0.0, 50.0);
      (*bids)[m] = rng.uniform(0.0, 25.0);
      (*keys)[m] = static_cast<std::uint32_t>(rng.uniform_index(8));
    }
    suite.add(BenchCase{"kernel/accumulate-shift", n, [dist, bids, n] {
                          // Accumulate then undo: both kernels per op,
                          // steady-state row values across trials.
                          kernel::accumulate_clipped_bid(
                              bids->data(), dist->data(), 60.0, n);
                          kernel::shift_clipped_bid(
                              bids->data(), dist->data(), 60.0, 0.0, n);
                          volatile double sink = (*bids)[n / 2];
                          (void)sink;
                        }});
    suite.add(BenchCase{"kernel/min-tightness", n, [dist, cost, bids, n] {
                          const kernel::RowEvent event =
                              kernel::min_tightness_over_row(
                                  dist->data(), cost->data(), bids->data(),
                                  // raised = 0: no point is ever tight,
                                  // so the op times the full-row scan,
                                  // not the early exit.
                                  /*raised=*/0.0, /*divisor=*/3.0, n);
                          volatile double sink = event.delta;
                          (void)sink;
                        }});
    suite.add(BenchCase{"kernel/argmin-masked", n, [dist, keys, n] {
                          volatile std::size_t sink =
                              kernel::argmin_over_row_where(
                                  dist->data(), keys->data(), /*limit=*/3,
                                  n);
                          (void)sink;
                        }});
  }

  // Dynamic-stream cases: one op = a full run_stream pass over a fixed
  // churn workload (arrivals + deletions + active-interval accounting +
  // batch compaction). requests_per_op is the event count, so the
  // throughput column reads directly as events/s — the number the
  // dynamic subsystem is judged on.
  {
    const auto churn = std::make_shared<const EventStream>(
        default_stream_scenario_registry().make("churn-uniform", /*seed=*/1,
                                                {{"events", 8192}}));
    const auto stream_case = [](std::string name,
                                std::shared_ptr<OnlineAlgorithm> algorithm,
                                std::shared_ptr<const EventStream> stream) {
      BenchCase c;
      c.name = std::move(name);
      c.requests_per_op = stream->num_events();
      c.op = [algorithm = std::move(algorithm),
              stream = std::move(stream)] {
        StreamRunOptions options;
        options.batch_size = 2048;  // several compaction cycles per op
        const StreamRunResult result =
            run_stream(*algorithm, *stream, options);
        volatile double sink = result.ledger.active_cost();
        (void)sink;
      };
      return c;
    };
    suite.add(stream_case("stream/churn-greedy",
                          std::make_shared<NearestOrOpen>(), churn));
    const auto churn_small = std::make_shared<const EventStream>(
        default_stream_scenario_registry().make("churn-uniform", /*seed=*/1,
                                                {{"events", 2048}}));
    suite.add(stream_case("stream/churn-pd", std::make_shared<PdOmflp>(),
                          churn_small));

    // The trace-overhead pair: the same PD churn replay with no TraceSink
    // installed (the state every other timed case runs in — measuring the
    // disabled obs::tracing() hook) and with a TraceScope recording every
    // decision into a buffer cleared per op. `omflp compare` across the
    // two measures the cost of live tracing; the tentpole's
    // zero-overhead-when-off claim is trace/off staying on par with
    // stream/churn-pd.
    const auto traced_case = [&](std::string name, bool traced) {
      BenchCase c;
      c.name = std::move(name);
      c.requests_per_op = churn_small->num_events();
      c.op = [algorithm = std::make_shared<PdOmflp>(),
              buffer = std::make_shared<TraceBuffer>(),
              stream = churn_small, traced] {
        StreamRunOptions options;
        options.batch_size = 2048;
        std::optional<TraceScope> scope;
        if (traced) {
          buffer->clear();
          scope.emplace(*buffer);
        }
        const StreamRunResult result =
            run_stream(*algorithm, *stream, options);
        volatile double sink = result.ledger.active_cost();
        (void)sink;
      };
      return c;
    };
    suite.add(traced_case("trace/off", false));
    suite.add(traced_case("trace/on", true));
  }

  // The serving-engine pairs: serve/mixed-* is one full ShardedEngine
  // run over the 16-tenant Zipf-skewed "mixed" workload mix (default
  // shards/threads — the configuration `omflp serve` runs in);
  // serve/seq-* is the identical tenant set driven as a sequential
  // run_stream loop on the calling thread. requests_per_op is the total
  // event count on both sides, so the requests/s ratio of a pair is the
  // engine's aggregate speedup over the sequential K-run loop on this
  // machine (~1x on a single hardware thread — the engine's round loop
  // adds no measurable overhead — and scales with cores). Per-tenant
  // results are bitwise identical across the pair (tests/test_engine.cpp
  // enforces it); verification is off, as in every other timed case.
  {
    const std::size_t kTenants = 16;
    const auto mixed_specs = [](const std::string& algorithm) {
      std::vector<TenantSpec> specs =
          default_workload_mix_registry().tenants("mixed", kTenants,
                                                  /*seed=*/1);
      for (TenantSpec& spec : specs) spec.algorithm = algorithm;
      return specs;
    };
    const auto serve_case = [&](std::string name,
                                const std::string& algorithm) {
      EngineOptions options;
      options.batch_size = 2048;
      options.verify = false;
      auto engine = std::make_shared<const ShardedEngine>(
          mixed_specs(algorithm), options);
      BenchCase c;
      c.name = std::move(name);
      c.requests_per_op =
          static_cast<std::size_t>(engine->total_events());
      // Latency channel: the last trial's per-batch distribution lands
      // in the case result (sequential twins have no batch latency).
      c.latency = std::make_shared<LatencySnapshot>();
      c.op = [engine, latency = c.latency] {
        const EngineResult result = engine->run();
        volatile double sink = result.aggregate_active_cost;
        (void)sink;
        *latency = result.batch_latency;
        // Shard workers count into the engine's per-shard sinks; forward
        // the merged totals so the case's counter column matches the
        // sequential twin.
        if (PerfCounters* outer = perf::thread_sink())
          *outer += result.counters;
      };
      return c;
    };
    // Stream generation ignores the tenant's algorithm, so one
    // materialized set serves both sequential twins.
    auto seq_specs = std::make_shared<const std::vector<TenantSpec>>(
        mixed_specs("pd"));
    auto seq_streams = std::make_shared<std::vector<EventStream>>();
    std::uint64_t seq_total_events = 0;
    for (const TenantSpec& spec : *seq_specs) {
      seq_streams->push_back(default_stream_scenario_registry().make(
          spec.scenario, spec.seed, spec.overrides));
      seq_total_events += seq_streams->back().num_events();
    }
    const auto seq_case = [&](std::string name, std::string algorithm) {
      BenchCase c;
      c.name = std::move(name);
      c.requests_per_op = static_cast<std::size_t>(seq_total_events);
      c.op = [specs = seq_specs, streams = seq_streams,
              algorithm = std::move(algorithm)] {
        StreamRunOptions options;
        options.batch_size = 2048;
        double sum = 0.0;
        for (std::size_t i = 0; i < streams->size(); ++i) {
          auto algo = default_algorithm_registry().make(
              algorithm, derive_algorithm_seed((*specs)[i].seed));
          sum += run_stream(*algo, (*streams)[i], options)
                     .ledger.active_cost();
        }
        volatile double sink = sum;
        (void)sink;
      };
      return c;
    };
    suite.add(serve_case("serve/mixed-greedy", "greedy"));
    suite.add(serve_case("serve/mixed-pd", "pd"));
    suite.add(seq_case("serve/seq-greedy", "greedy"));
    suite.add(seq_case("serve/seq-pd", "pd"));
  }

  // The counter-overhead pair: the same PD replay with counting disabled
  // (no sink — the default state every other case is timed in) and with a
  // sink installed for the whole run. `omflp compare` across the two
  // quantifies the cost of an enabled sink; "counters/off" vs the
  // pre-telemetry binary measures the disabled-mode hook (a thread-local
  // load + predicted branch).
  {
    const auto pd_off = std::make_shared<PdOmflp>();
    const auto pd_on = std::make_shared<PdOmflp>();
    suite.add(algorithm_case("counters/off", pd_off, instance));
    BenchCase on;
    on.name = "counters/on";
    on.requests_per_op = instance->num_requests();
    on.op = [pd_on, instance] {
      PerfCounters counters;
      {
        PerfScope scope(counters);
        const SolutionLedger ledger = run_online(*pd_on, *instance);
        volatile double sink = ledger.total_cost();
        (void)sink;
      }
      // Forward to the suite's collection sink (when one is installed)
      // so the case's counter column matches counters/off.
      if (PerfCounters* outer = perf::thread_sink()) *outer += counters;
    };
    suite.add(std::move(on));
  }

  // Bound-layer cases: one op = a full certified-lower-bound computation.
  // bound/dual-ascent times the bare ascent on the shared uniform-line
  // instance (requests_per_op = n, so throughput reads as requests/s and
  // the duals_raised counter column shows the dual count per op);
  // bound/windowed-churn times the end-to-end stream pipeline — window
  // tracking, per-window ascent AND certificate verification, the
  // configuration `omflp bound --stream` actually runs.
  {
    suite.add(BenchCase{"bound/dual-ascent", instance->num_requests(),
                        [instance] {
                          const DualAscentResult res =
                              dual_ascent_lower_bound(*instance);
                          volatile double sink = res.lower_bound;
                          (void)sink;
                        }});
    const auto churn = std::make_shared<const EventStream>(
        default_stream_scenario_registry().make("churn-uniform", /*seed=*/1,
                                                {{"events", 512}}));
    suite.add(BenchCase{"bound/windowed-churn", churn->num_events(),
                        [churn] {
                          MaterializedEventSource source(*churn);
                          WindowBoundOptions options;
                          options.max_window_arrivals = 128;
                          const StreamBoundResult res =
                              bound_stream_windows(source, options);
                          volatile double sink = res.windowed_lower;
                          (void)sink;
                        }});
  }

  return suite;
}

BenchOptions quick_bench_options() {
  BenchOptions options;
  options.warmup = 1;
  options.trials = 3;
  return options;
}

std::string default_bench_filename(const std::string& suite) {
  return "BENCH_" + suite + ".json";
}

}  // namespace omflp
