// LatencyHistogram — a lock-free log-linear histogram for nanosecond
// latencies, the percentile backend of the sharded serving engine.
//
// Layout (HdrHistogram-style log-linear): values below 2^kSubBits land in
// exact unit buckets; above that, each power-of-two octave is split into
// 2^kSubBits equal sub-buckets, so relative resolution is bounded by
// 1/2^kSubBits (= 12.5% at kSubBits = 3) across the whole range up to
// 2^63 ns. Bucket index and representative value are pure functions of
// the value, so two histograms fed the same samples agree exactly.
//
// Concurrency: record_ns() is a single relaxed fetch_add on one bucket
// (plus a CAS loop for the running maximum) — engine shard workers on
// different threads record without locks or contention beyond cacheline
// sharing of hot buckets. snapshot() is NOT linearizable against
// concurrent writers; the engine snapshots after joining its workers.
// Quantiles are computed from the bucket counts: quantile(q) returns the
// representative (midpoint) value of the bucket holding the ceil(q*n)-th
// smallest sample, so p50/p95/p99 carry the same <= 12.5% relative error
// as the buckets themselves.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace omflp {

/// Point-in-time summary of a LatencyHistogram (plain values, copyable).
struct LatencySnapshot {
  std::uint64_t count = 0;
  double total_ns = 0.0;
  double max_ns = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  /// Set by snapshot_delta(): every other field is per-interval but
  /// max_ns stays the cumulative maximum, so the JSON field is renamed
  /// to "max_ns_cum" to keep --metrics-out readers honest.
  bool max_is_cumulative = false;

  double mean_ns() const noexcept {
    return count > 0 ? total_ns / static_cast<double>(count) : 0.0;
  }

  /// One-line JSON object, fields in fixed order. Doubles are written
  /// with %.17g so a snapshot survives a JSON round trip bit-exactly.
  std::string to_json() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"mean_ns\":%.17g,\"p50_ns\":%.17g,"
                  "\"p95_ns\":%.17g,\"p99_ns\":%.17g,\"p999_ns\":%.17g,"
                  "\"%s\":%.17g}",
                  static_cast<unsigned long long>(count), mean_ns(), p50_ns,
                  p95_ns, p99_ns, p999_ns,
                  max_is_cumulative ? "max_ns_cum" : "max_ns", max_ns);
    return std::string(buf);
  }
};

class LatencyHistogram;

/// Mutable bucket-count checkpoint used by snapshot_delta() to turn a
/// cumulative histogram into interval (steady-state) percentiles. One
/// baseline per observed histogram; ~3.9 KB each.
struct LatencyBaseline {
  std::array<std::uint64_t, (64 - 3) << 3> counts{};
  std::uint64_t total_ns = 0;
};

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;  // 8 sub-buckets per octave, <=12.5%
  static constexpr int kNumBuckets =
      (64 - kSubBits) << kSubBits;  // covers 0 .. 2^63 ns
  static_assert(sizeof(LatencyBaseline::counts) ==
                kNumBuckets * sizeof(std::uint64_t));

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Bucket index of a nanosecond value; monotone in `ns`.
  static int bucket_index(std::uint64_t ns) noexcept {
    if (ns < (std::uint64_t{1} << kSubBits)) return static_cast<int>(ns);
    const int exp = std::bit_width(ns) - 1;  // >= kSubBits
    const int sub = static_cast<int>(
        (ns >> (exp - kSubBits)) - (std::uint64_t{1} << kSubBits));
    return std::min(kNumBuckets - 1,
                    ((exp - kSubBits + 1) << kSubBits) + sub);
  }

  /// Midpoint of the bucket's value range (its representative value).
  static double bucket_value(int index) noexcept {
    if (index < (1 << kSubBits)) return static_cast<double>(index);
    const int exp = (index >> kSubBits) + kSubBits - 1;
    const int sub = index & ((1 << kSubBits) - 1);
    const double width = std::exp2(exp - kSubBits);
    return ((1 << kSubBits) + sub) * width + 0.5 * width;
  }

  void record_ns(double ns) noexcept {
    // Clamp before the cast: double -> uint64_t is UB for NaN, negative
    // or >= 2^63 values (timer glitches, wall-clock steps). NaN and
    // negatives saturate to 0, oversized values to 2^63 - 1 (the top of
    // the bucket range).
    constexpr double kMaxNs = 9223372036854775808.0;  // 2^63
    std::uint64_t value = 0;
    if (ns >= kMaxNs) {
      value = (std::uint64_t{1} << 63) - 1;
    } else if (ns > 0.0) {  // false for NaN and non-positive values
      value = static_cast<std::uint64_t>(ns);
    }
    buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
        1, std::memory_order_relaxed);
    total_ns_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_ns_.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
    }
  }

  /// Counts, total and the standard percentiles. Call after writers are
  /// done (or accept a torn-but-valid in-flight view).
  LatencySnapshot snapshot() const noexcept {
    std::array<std::uint64_t, kNumBuckets> counts;
    LatencySnapshot snap;
    for (int b = 0; b < kNumBuckets; ++b) {
      counts[static_cast<std::size_t>(b)] =
          buckets_[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
      snap.count += counts[static_cast<std::size_t>(b)];
    }
    snap.total_ns =
        static_cast<double>(total_ns_.load(std::memory_order_relaxed));
    snap.max_ns =
        static_cast<double>(max_ns_.load(std::memory_order_relaxed));
    fill_quantiles(counts, snap);
    return snap;
  }

  /// Percentiles of the samples recorded *since the baseline* (the
  /// MetricsSampler's interval view), then advances the baseline to now.
  /// max_ns remains the cumulative maximum — the histogram keeps no
  /// per-interval extremum, and an interval max would understate tail
  /// spikes that straddle sample boundaries anyway. The snapshot is
  /// flagged max_is_cumulative so to_json() names the field
  /// "max_ns_cum" instead of passing it off as an interval value.
  LatencySnapshot snapshot_delta(LatencyBaseline& baseline) const noexcept {
    std::array<std::uint64_t, kNumBuckets> delta;
    LatencySnapshot snap;
    for (int b = 0; b < kNumBuckets; ++b) {
      const auto i = static_cast<std::size_t>(b);
      const std::uint64_t now =
          buckets_[i].load(std::memory_order_relaxed);
      delta[i] = now - baseline.counts[i];
      baseline.counts[i] = now;
      snap.count += delta[i];
    }
    const std::uint64_t total_now =
        total_ns_.load(std::memory_order_relaxed);
    snap.total_ns = static_cast<double>(total_now - baseline.total_ns);
    baseline.total_ns = total_now;
    snap.max_ns =
        static_cast<double>(max_ns_.load(std::memory_order_relaxed));
    snap.max_is_cumulative = true;
    fill_quantiles(delta, snap);
    return snap;
  }

 private:
  static void fill_quantiles(
      const std::array<std::uint64_t, kNumBuckets>& counts,
      LatencySnapshot& snap) noexcept {
    if (snap.count == 0) return;
    // target = ceil(q * count) computed exactly as (num*count + den - 1)
    // / den over integers: the old `+ 0.9999999` float hack overshoots
    // whenever q*count lands within 1e-7 below an integer (e.g. p999 of
    // exactly 1000 samples).
    const auto quantile = [&](std::uint64_t q_num, std::uint64_t q_den) {
      const auto product =
          static_cast<unsigned __int128>(q_num) * snap.count;
      const std::uint64_t target = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>((product + q_den - 1) / q_den));
      std::uint64_t cumulative = 0;
      for (int b = 0; b < kNumBuckets; ++b) {
        cumulative += counts[static_cast<std::size_t>(b)];
        if (cumulative >= target) return bucket_value(b);
      }
      return snap.max_ns;
    };
    snap.p50_ns = quantile(1, 2);
    snap.p95_ns = quantile(19, 20);
    snap.p99_ns = quantile(99, 100);
    snap.p999_ns = quantile(999, 1000);
  }

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace omflp
