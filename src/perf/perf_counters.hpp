// PerfCounters — hot-path work counters for the algorithm layer.
//
// The paper's efficiency claims (§4: RAND "is much more efficient to
// implement" than primal–dual) are statements about per-event work:
// distance lookups, bid evaluations, facility probes, coin flips. This
// sink counts exactly those units so BENCH_*.json files record them next
// to wall times, and so optimization PRs can show *what* got cheaper, not
// just that something did.
//
// Design: counting is off unless a sink is installed on the current
// thread. The hook macro compiles to a thread-local pointer load plus a
// perfectly-predicted branch when no sink is installed — indistinguishable
// from the uninstrumented code in every bench we can measure (the
// "counters/off" vs "counters/on" BenchSuite pair quantifies it). For the
// truly paranoid, defining OMFLP_PERF_DISABLE at compile time turns every
// hook into a literal no-op.
//
// Usage:
//
//   PerfCounters counters;
//   {
//     PerfScope scope(counters);           // installs on this thread
//     run_online(algorithm, instance);     // hooks accumulate
//   }                                      // previous sink restored
//   counters.distance_lookups, ...
//
// Scopes nest (the previous sink is restored on destruction) and are
// strictly per-thread: parallel sweep workers never observe another
// thread's scope.
#pragma once

#include <cstdint>

namespace omflp {

struct PerfCounters {
  std::uint64_t distance_lookups = 0;   // DistanceOracle calls, both paths
  std::uint64_t bids_evaluated = 0;     // per-point bid-sum evaluations
  std::uint64_t bids_updated = 0;       // per-point incremental bid writes
  std::uint64_t facilities_probed = 0;  // facility records scanned
  std::uint64_t coin_flips = 0;         // Bernoulli draws (RAND/Meyerson)
  std::uint64_t verifier_checks = 0;    // verifier records re-derived
  std::uint64_t requests_served = 0;    // serve() calls through run_online
  std::uint64_t facilities_opened = 0;  // ledger facility openings
  std::uint64_t duals_raised = 0;       // bound-layer dual variables raised
  std::uint64_t trace_events_emitted = 0;  // obs-layer trace events sunk
  std::uint64_t requests_shed = 0;      // requests with >=1 rejected item
  std::uint64_t assignments_spilled = 0;  // capacity-redirected assignments

  void reset() noexcept { *this = PerfCounters{}; }

  PerfCounters& operator+=(const PerfCounters& o) noexcept {
    distance_lookups += o.distance_lookups;
    bids_evaluated += o.bids_evaluated;
    bids_updated += o.bids_updated;
    facilities_probed += o.facilities_probed;
    coin_flips += o.coin_flips;
    verifier_checks += o.verifier_checks;
    requests_served += o.requests_served;
    facilities_opened += o.facilities_opened;
    duals_raised += o.duals_raised;
    trace_events_emitted += o.trace_events_emitted;
    requests_shed += o.requests_shed;
    assignments_spilled += o.assignments_spilled;
    return *this;
  }

  bool all_zero() const noexcept {
    return distance_lookups == 0 && bids_evaluated == 0 &&
           bids_updated == 0 && facilities_probed == 0 && coin_flips == 0 &&
           verifier_checks == 0 && requests_served == 0 &&
           facilities_opened == 0 && duals_raised == 0 &&
           trace_events_emitted == 0 && requests_shed == 0 &&
           assignments_spilled == 0;
  }

  /// Visit every (name, value) pair in a fixed order — the single source
  /// of truth for JSON emission and parsing. fn(const char*, uint64_t&).
  template <typename Self, typename Fn>
  static void for_each_field(Self& self, Fn&& fn) {
    fn("distance_lookups", self.distance_lookups);
    fn("bids_evaluated", self.bids_evaluated);
    fn("bids_updated", self.bids_updated);
    fn("facilities_probed", self.facilities_probed);
    fn("coin_flips", self.coin_flips);
    fn("verifier_checks", self.verifier_checks);
    fn("requests_served", self.requests_served);
    fn("facilities_opened", self.facilities_opened);
    fn("duals_raised", self.duals_raised);
    fn("trace_events_emitted", self.trace_events_emitted);
    fn("requests_shed", self.requests_shed);
    fn("assignments_spilled", self.assignments_spilled);
  }
};

namespace perf {

/// The thread's active sink; null = counting disabled (the default).
inline thread_local PerfCounters* tl_sink = nullptr;

inline PerfCounters* thread_sink() noexcept { return tl_sink; }

}  // namespace perf

/// RAII installer: makes `sink` the current thread's active counter sink
/// and restores the previous one (usually none) on destruction.
class PerfScope {
 public:
  explicit PerfScope(PerfCounters& sink) noexcept
      : previous_(perf::tl_sink) {
    perf::tl_sink = &sink;
  }
  ~PerfScope() { perf::tl_sink = previous_; }

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  PerfCounters* previous_;
};

}  // namespace omflp

/// Hot-path hook: bump `field` of the thread's sink by `amount`, or do
/// nothing when no sink is installed / OMFLP_PERF_DISABLE is defined.
/// Prefer one bulk OMFLP_PERF_ADD over per-iteration OMFLP_PERF_COUNT in
/// tight loops.
#if defined(OMFLP_PERF_DISABLE)
#define OMFLP_PERF_ADD(field, amount) ((void)0)
#else
#define OMFLP_PERF_ADD(field, amount)                                  \
  do {                                                                 \
    if (::omflp::PerfCounters* omflp_perf_sink_ =                      \
            ::omflp::perf::thread_sink())                              \
      omflp_perf_sink_->field +=                                       \
          static_cast<std::uint64_t>(amount);                          \
  } while (0)
#endif
#define OMFLP_PERF_COUNT(field) OMFLP_PERF_ADD(field, 1)
