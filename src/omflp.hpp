// Umbrella header for the OMFLP library — everything a downstream user
// needs to build instances, run the paper's algorithms and measure
// competitive ratios.
//
// Library layout:
//   support/   primitives: commodity sets, RNG, stats, tables, parallelism
//   metric/    finite metric spaces (line, Euclidean, graph, matrix, ...)
//   cost/      construction cost models f^σ_m + Condition-1 machinery
//   instance/  requests, instances, generators, (de)serialization
//   solution/  the irrevocable solution ledger + independent verifier
//   core/      PD-OMFLP (Algorithm 1) and RAND-OMFLP (Algorithm 2)
//   baseline/  Fotakis / Meyerson OFL, per-commodity product, greedy
//   offline/   exact & local-search OPT solvers
//   analysis/  bound curves, c-ordered covering, dual feasibility, ratios
//   scenario/  named workload/algorithm registries + the sweep driver
#pragma once

#include "analysis/bounds.hpp"
#include "analysis/c_ordered_covering.hpp"
#include "analysis/competitive.hpp"
#include "analysis/dual_feasibility.hpp"
#include "analysis/experiment.hpp"
#include "baseline/fotakis_ofl.hpp"
#include "baseline/greedy.hpp"
#include "baseline/meyerson_ofl.hpp"
#include "baseline/per_commodity.hpp"
#include "core/online_algorithm.hpp"
#include "core/pd_omflp.hpp"
#include "core/rand_omflp.hpp"
#include "cost/checks.hpp"
#include "cost/cost_classes.hpp"
#include "cost/cost_model.hpp"
#include "cost/cost_models.hpp"
#include "cost/heavy.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "instance/instance.hpp"
#include "instance/io.hpp"
#include "instance/transforms.hpp"
#include "metric/distance_oracle.hpp"
#include "metric/euclidean_metric.hpp"
#include "metric/graph_metric.hpp"
#include "metric/line_metric.hpp"
#include "metric/matrix_metric.hpp"
#include "metric/metric_space.hpp"
#include "metric/validation.hpp"
#include "offline/assignment.hpp"
#include "offline/exact_small.hpp"
#include "offline/greedy_star.hpp"
#include "offline/local_search.hpp"
#include "offline/opt_estimate.hpp"
#include "offline/single_point.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/registry_util.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/sweep.hpp"
#include "solution/solution.hpp"
#include "solution/verifier.hpp"
#include "support/commodity_set.hpp"
#include "support/harmonic.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
