// Independent verification of a finished online run.
//
// The ledger already enforces its invariants incrementally; the verifier
// re-derives everything from the raw records with separate code so that a
// bookkeeping bug in the ledger (or an algorithm bypassing it in a novel
// way) cannot hide. Every algorithm test runs the verifier on its output.
//
// Dynamic streams get two verifiers with the same philosophy:
//   * verify_stream — offline, for materialized (uncompacted) runs:
//     re-derives the retirement timeline from the EventStream (explicit
//     departures and lease expiries) and checks every record's active
//     interval and the active/gross cost split against it;
//   * StreamVerifier — incremental, fed by the stream runner as events
//     are processed, so records can be compacted away afterwards without
//     losing verification coverage. Memory is O(active set).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "instance/capacity.hpp"
#include "instance/event_stream.hpp"
#include "instance/instance.hpp"
#include "solution/solution.hpp"

namespace omflp {

class CkptReader;
class CkptWriter;

struct VerificationError {
  std::string what;
};

/// Checks, against the instance:
///  * the ledger processed exactly the instance's request sequence, in
///    order;
///  * every request's demand set is exactly covered by its assignments,
///    each assignment points at a facility that offers the commodity and
///    was open by the end of that request's processing (irrevocability /
///    causality: facility.opened_during <= request index);
///  * recomputed opening and connection costs match the ledger's totals
///    (within `tolerance` for floating-point accumulation);
///  * facility open costs match the cost model;
///  * capacity feasibility when the instance is capacitated: served +
///    rejected partition each demand set, re-derived facility occupancy
///    never exceeds the location's capacity, and uncapacitated instances
///    admit no rejections at all.
std::optional<VerificationError> verify_solution(const Instance& instance,
                                                 const SolutionLedger& ledger,
                                                 double tolerance = 1e-6);

/// Offline verification of a dynamic run against its EventStream.
/// Checks, beyond the static per-record properties (coverage, causality,
/// facility pricing, connection costs):
///  * the ledger served exactly the stream's arrivals, in order;
///  * every record's retirement matches the independently re-derived
///    timeline — explicit departures and lease expiries at the exact
///    event indices, survivors still active;
///  * the active/gross accounting: connection_cost() sums all records,
///    active_connection_cost() sums the surviving ones;
///  * capacity feasibility when the stream is capacitated: re-derived
///    occupancy (distinct active requests per facility) stays within the
///    location's capacity at every point of the timeline.
/// Requires an uncompacted ledger (first_record_id() == 0); compacted
/// stream runs are verified incrementally by StreamVerifier instead.
std::optional<VerificationError> verify_stream(const EventStream& stream,
                                               const SolutionLedger& ledger,
                                               double tolerance = 1e-6);

/// Incremental verifier for (possibly compacted) stream runs. The stream
/// runner calls on_arrival after each served arrival and on_retire after
/// each retirement, both *before* any compaction, so every record is
/// checked exactly once while still resident; finish() closes the books
/// against the ledger totals. The first failure sticks and short-circuits
/// later checks. Holds O(active requests) state.
class StreamVerifier {
 public:
  /// `capacities` enables the capacity-feasibility check: the verifier
  /// re-derives each facility's occupancy from the records it sees and
  /// flags any arrival that pushes a facility past its location's
  /// capacity (and any rejection when no capacities are given). Null
  /// keeps the uncapacitated behavior.
  StreamVerifier(MetricPtr metric, CostModelPtr cost,
                 double tolerance = 1e-6, CapacityMap capacities = nullptr);

  /// Arrival `id` (== ledger request id) was just served with `request`.
  void on_arrival(RequestId id, const Request& request,
                  const SolutionLedger& ledger);
  /// Arrival `id` was just retired at stream-event index `event_index`.
  void on_retire(RequestId id, std::uint64_t event_index,
                 const SolutionLedger& ledger);
  /// Final totals check; returns the first error found, or nullopt.
  std::optional<VerificationError> finish(const SolutionLedger& ledger);

  const std::optional<VerificationError>& error() const noexcept {
    return error_;
  }

  /// Checkpoint/restore (instance/checkpoint_io.hpp): the verifier's
  /// running totals and per-active-request recomputed costs, so a
  /// restored run keeps full verification coverage over the events it
  /// replays — including a sticky error recorded before the snapshot.
  /// restore fills a freshly constructed verifier (same metric, cost
  /// model and tolerance).
  void serialize(CkptWriter& writer) const;
  void restore(CkptReader& reader);

 private:
  struct ActiveRequest {
    /// Recomputed connection cost (independent of the ledger's figure).
    double connection = 0.0;
    /// Distinct facilities the request occupies — released from the
    /// occupancy tally on retirement.
    std::vector<FacilityId> connected;
  };

  void fail_check(const std::string& what);

  MetricPtr metric_;
  CostModelPtr cost_;
  double tolerance_;
  CapacityMap capacities_;
  bool capacitated_ = false;

  RequestId next_expected_ = 0;
  std::size_t facilities_seen_ = 0;
  double opening_ = 0.0;
  double gross_connection_ = 0.0;
  double retired_connection_ = 0.0;
  /// Independently re-derived occupancy per facility (parallel to the
  /// first facilities_seen_ facilities).
  std::vector<std::uint64_t> occupancy_;
  /// Recomputed state of each still-active request.
  /// Determinism audit (omflp-lint nondet-iteration): never iterated
  /// unordered — finish() only compares size(), serialize() copies into
  /// a vector and sorts by request id before writing (canonical
  /// checkpoint form). Keep it that way.
  std::unordered_map<RequestId, ActiveRequest> active_costs_;
  std::optional<VerificationError> error_;
};

}  // namespace omflp
