// Independent verification of a finished online run.
//
// The ledger already enforces its invariants incrementally; the verifier
// re-derives everything from the raw records with separate code so that a
// bookkeeping bug in the ledger (or an algorithm bypassing it in a novel
// way) cannot hide. Every algorithm test runs the verifier on its output.
#pragma once

#include <optional>
#include <string>

#include "instance/instance.hpp"
#include "solution/solution.hpp"

namespace omflp {

struct VerificationError {
  std::string what;
};

/// Checks, against the instance:
///  * the ledger processed exactly the instance's request sequence, in
///    order;
///  * every request's demand set is exactly covered by its assignments,
///    each assignment points at a facility that offers the commodity and
///    was open by the end of that request's processing (irrevocability /
///    causality: facility.opened_during <= request index);
///  * recomputed opening and connection costs match the ledger's totals
///    (within `tolerance` for floating-point accumulation);
///  * facility open costs match the cost model.
std::optional<VerificationError> verify_solution(const Instance& instance,
                                                 const SolutionLedger& ledger,
                                                 double tolerance = 1e-6);

}  // namespace omflp
