// SolutionLedger — the authoritative record of an online run.
//
// Online algorithms do not compute costs themselves; they report decisions
// (open facility, assign commodity of the current request to facility) to
// the ledger, which prices them against the instance's cost model and
// metric. The ledger enforces the model's rules:
//   * decisions are irrevocable — facilities never close, assignments
//     never change (the paper's model; algorithms keep any tentative state,
//     like PD-OMFLP's temporarily-open facilities, internal);
//   * a request must be fully covered when its processing finishes;
//   * connection cost is d(m, r) summed once per *distinct* facility the
//     request connects to (the paper's shared-path model). The §1.1
//     alternative (charge per commodity) is available as a policy and used
//     in tests/ablations.
#pragma once

#include <vector>

#include "instance/instance.hpp"

namespace omflp {

enum class ConnectionChargePolicy {
  kPerFacility,   // paper default: one shared path per connected facility
  kPerCommodity,  // §1.1 alternative: every served commodity pays the path
};

struct OpenFacilityRecord {
  FacilityId id = kInvalidFacility;
  PointId location = 0;
  CommoditySet config;
  double open_cost = 0.0;
  /// Index of the request being processed when the facility opened.
  RequestId opened_during = 0;
};

struct ServedCommodity {
  CommodityId commodity = kInvalidCommodity;
  FacilityId facility = kInvalidFacility;
};

struct RequestRecord {
  Request request;
  std::vector<ServedCommodity> served;   // one entry per demanded commodity
  std::vector<FacilityId> connected;     // distinct facilities, sorted
  double connection_cost = 0.0;
};

class SolutionLedger {
 public:
  SolutionLedger(MetricPtr metric, CostModelPtr cost,
                 ConnectionChargePolicy policy =
                     ConnectionChargePolicy::kPerFacility);

  /// Start processing the next request. Only one request may be in flight.
  RequestId begin_request(const Request& request);

  /// Irrevocably open a facility; returns its id. Must be called between
  /// begin_request and finish_request (openings are always triggered by
  /// some request in the online model).
  FacilityId open_facility(PointId location, const CommoditySet& config);

  /// Record that commodity e of the in-flight request is served by
  /// facility f. f must be open and must offer e. Each demanded commodity
  /// must be assigned exactly once.
  void assign(CommodityId e, FacilityId f);

  /// Validates coverage of the in-flight request and accrues its
  /// connection cost.
  void finish_request();

  // ---- introspection ------------------------------------------------------
  std::size_t num_requests() const noexcept { return requests_.size(); }
  std::size_t num_facilities() const noexcept { return facilities_.size(); }
  const std::vector<OpenFacilityRecord>& facilities() const noexcept {
    return facilities_;
  }
  const std::vector<RequestRecord>& request_records() const noexcept {
    return requests_;
  }
  const OpenFacilityRecord& facility(FacilityId f) const;

  double opening_cost() const noexcept { return opening_cost_; }
  double connection_cost() const noexcept { return connection_cost_; }
  double total_cost() const noexcept {
    return opening_cost_ + connection_cost_;
  }

  /// Facilities with |config| == 1 / == |S| (the paper's small/large).
  std::size_t num_small_facilities() const noexcept { return num_small_; }
  std::size_t num_large_facilities() const noexcept { return num_large_; }

  ConnectionChargePolicy policy() const noexcept { return policy_; }
  const MetricSpace& metric() const noexcept { return *metric_; }
  const FacilityCostModel& cost_model() const noexcept { return *cost_; }

  bool request_in_flight() const noexcept { return in_flight_; }

 private:
  MetricPtr metric_;
  CostModelPtr cost_;
  ConnectionChargePolicy policy_;

  std::vector<OpenFacilityRecord> facilities_;
  std::vector<RequestRecord> requests_;
  bool in_flight_ = false;

  double opening_cost_ = 0.0;
  double connection_cost_ = 0.0;
  std::size_t num_small_ = 0;
  std::size_t num_large_ = 0;
};

}  // namespace omflp
