// SolutionLedger — the authoritative record of an online run.
//
// Online algorithms do not compute costs themselves; they report decisions
// (open facility, assign commodity of the current request to facility) to
// the ledger, which prices them against the instance's cost model and
// metric. The ledger enforces the model's rules:
//   * decisions are irrevocable — facilities never close, assignments
//     never change (the paper's model; algorithms keep any tentative state,
//     like PD-OMFLP's temporarily-open facilities, internal);
//   * a request must be fully covered when its processing finishes;
//   * connection cost is d(m, r) summed once per *distinct* facility the
//     request connects to (the paper's shared-path model). The §1.1
//     alternative (charge per commodity) is available as a policy and used
//     in tests/ablations.
//
// Dynamic streams (instance/event_stream.hpp) extend the record with an
// *active interval*: retire_request() marks an earlier request as
// departed and retroactively removes its connection cost from the active
// tally (facility openings are sunk — decisions stay irrevocable, only
// the accounting of who is still being served changes). active_cost() is
// what competitive ratios against the offline optimum on the *surviving*
// request set are measured on; total_cost() remains the gross cost of
// everything the algorithm ever did. For bounded-memory stream
// processing, compact_retired_prefix() drops the longest all-retired
// prefix of the records; first_record_id() reports how far compaction has
// advanced (always 0 for static runs).
#pragma once

#include <cstdint>
#include <vector>

#include "instance/capacity.hpp"
#include "instance/instance.hpp"

namespace omflp {

class CkptReader;
class CkptWriter;

enum class ConnectionChargePolicy {
  kPerFacility,   // paper default: one shared path per connected facility
  kPerCommodity,  // §1.1 alternative: every served commodity pays the path
};

struct OpenFacilityRecord {
  FacilityId id = kInvalidFacility;
  PointId location = 0;
  CommoditySet config;
  double open_cost = 0.0;
  /// Index of the request being processed when the facility opened.
  RequestId opened_during = 0;
};

struct ServedCommodity {
  CommodityId commodity = kInvalidCommodity;
  FacilityId facility = kInvalidFacility;
};

/// retired_at value of a request that never departed.
inline constexpr std::uint64_t kNeverRetired = ~std::uint64_t{0};

struct RequestRecord {
  Request request;
  std::vector<ServedCommodity> served;   // one entry per served commodity
  /// Demanded commodities shed by admission control (capacitated runs
  /// under OverflowPolicy::kReject, or kReassign with nothing feasible).
  /// served + rejected partition the demand set; rejected commodities
  /// pay no connection cost. Always empty on uncapacitated runs.
  std::vector<CommodityId> rejected;
  std::vector<FacilityId> connected;     // distinct facilities, sorted
  double connection_cost = 0.0;
  /// Stream-event index at which the request departed (kNeverRetired
  /// while active; static runs never retire).
  std::uint64_t retired_at = kNeverRetired;

  bool active() const noexcept { return retired_at == kNeverRetired; }
};

class SolutionLedger {
 public:
  /// `capacities` limits how many distinct active requests each facility
  /// may serve (per-point capacity; null = uncapacitated, the default —
  /// all existing call sites and code paths are bitwise unchanged).
  /// `overflow` picks what assign() does when the target facility is
  /// full: reassign to the nearest feasible facility or reject the
  /// commodity into the rejected ledger lane.
  SolutionLedger(MetricPtr metric, CostModelPtr cost,
                 ConnectionChargePolicy policy =
                     ConnectionChargePolicy::kPerFacility,
                 CapacityMap capacities = nullptr,
                 OverflowPolicy overflow = OverflowPolicy::kReassign);

  /// Start processing the next request. Only one request may be in flight.
  RequestId begin_request(const Request& request);

  /// Irrevocably open a facility; returns its id. Must be called between
  /// begin_request and finish_request (openings are always triggered by
  /// some request in the online model).
  FacilityId open_facility(PointId location, const CommoditySet& config);

  /// Record that commodity e of the in-flight request is served by
  /// facility f. f must be open and must offer e. Each demanded commodity
  /// must be assigned exactly once.
  ///
  /// Capacitated runs apply admission control here: if f is full (its
  /// occupancy — distinct active requests connected — has reached its
  /// capacity) and this request is not already connected to it, the
  /// commodity is spilled to the nearest feasible open facility offering
  /// it (ties to the lowest id; a fresh singleton facility at the
  /// request's location as a last resort) under kReassign, or rejected
  /// under kReject. Spills emit kRequestSpill, rejections kRequestReject.
  void assign(CommodityId e, FacilityId f);

  /// Validates coverage of the in-flight request (served + rejected must
  /// partition the demand set) and accrues its connection cost.
  void finish_request();

  // ---- dynamic streams ----------------------------------------------------

  /// Retroactively removes request `id` from the active set: its record is
  /// marked departed at stream-event index `event_index` and its
  /// connection cost leaves the active tally (opening costs are sunk).
  /// Requires no request in flight, a known, still-resident, still-active
  /// id. Gross totals (connection_cost, total_cost) are unchanged.
  void retire_request(RequestId id, std::uint64_t event_index);

  /// Bounded-memory hook for the stream runner: drops the longest
  /// all-retired prefix of the request records and returns how many were
  /// dropped. Aggregate costs and counts are preserved; records of
  /// still-active (and later) requests stay resident and keep their ids —
  /// request `id` lives at request_records()[id - first_record_id()].
  /// Requires no request in flight.
  std::size_t compact_retired_prefix();

  /// Id of request_records()[0]; 0 unless compact_retired_prefix() ran.
  RequestId first_record_id() const noexcept { return first_record_id_; }

  /// Record of request `id`; requires first_record_id() <= id <
  /// num_requests() (i.e. the record has not been compacted away).
  const RequestRecord& request_record(RequestId id) const;

  /// Connection cost of the still-active requests only.
  double active_connection_cost() const noexcept {
    return active_connection_cost_;
  }
  /// Opening cost plus active connection cost — the quantity compared
  /// against OPT on the surviving request set.
  double active_cost() const noexcept {
    return opening_cost_ + active_connection_cost_;
  }
  std::size_t num_active_requests() const noexcept { return num_active_; }
  std::size_t num_retired_requests() const noexcept {
    return num_requests() - num_active_ - (in_flight_ ? 1 : 0);
  }

  // ---- introspection ------------------------------------------------------

  /// Total requests ever begun, including compacted ones.
  std::size_t num_requests() const noexcept {
    return first_record_id_ + requests_.size();
  }
  std::size_t num_facilities() const noexcept { return facilities_.size(); }
  const std::vector<OpenFacilityRecord>& facilities() const noexcept {
    return facilities_;
  }
  /// The resident records: request first_record_id() onward.
  const std::vector<RequestRecord>& request_records() const noexcept {
    return requests_;
  }
  const OpenFacilityRecord& facility(FacilityId f) const;

  double opening_cost() const noexcept { return opening_cost_; }
  double connection_cost() const noexcept { return connection_cost_; }
  double total_cost() const noexcept {
    return opening_cost_ + connection_cost_;
  }

  /// Facilities with |config| == 1 / == |S| (the paper's small/large).
  std::size_t num_small_facilities() const noexcept { return num_small_; }
  std::size_t num_large_facilities() const noexcept { return num_large_; }

  ConnectionChargePolicy policy() const noexcept { return policy_; }
  const MetricSpace& metric() const noexcept { return *metric_; }
  const FacilityCostModel& cost_model() const noexcept { return *cost_; }

  bool request_in_flight() const noexcept { return in_flight_; }

  // ---- capacity / admission control ---------------------------------------

  const CapacityMap& capacities() const noexcept { return capacities_; }
  OverflowPolicy overflow_policy() const noexcept { return overflow_; }
  bool capacitated() const noexcept { return capacitated_; }
  /// Capacity of facility f (the capacity of its location point).
  std::uint64_t facility_capacity(FacilityId f) const;
  /// Distinct active requests currently connected to facility f.
  std::uint64_t occupancy(FacilityId f) const;
  /// Requests finished with at least one rejected commodity.
  std::size_t num_shed_requests() const noexcept { return num_shed_; }
  /// Total commodities rejected across all requests.
  std::size_t num_rejected_commodities() const noexcept {
    return num_rejected_;
  }
  /// Assignments redirected away from a full facility under kReassign.
  std::size_t num_spilled_assignments() const noexcept {
    return num_spilled_;
  }

  // ---- checkpoint/restore (instance/checkpoint_io.hpp) --------------------

  /// Writes every resident record and accumulator in canonical form.
  /// Requires no request in flight (checkpoints happen between batches).
  void serialize(CkptWriter& writer) const;
  /// Fills a freshly constructed ledger (same metric, cost model and
  /// policy as at serialization) from the reader. Costs, counters and
  /// record bytes come from the file verbatim — nothing is re-priced, so
  /// a restored ledger is bitwise identical to the serialized one.
  void restore(CkptReader& reader);

 private:
  /// Serve e at f for the in-flight record: occupancy bump when f is
  /// newly connected, served entry, trace event (`spilled` picks the
  /// kind and is only true on capacitated redirects).
  void serve_at(CommodityId e, FacilityId f, bool spilled);
  void reject_commodity(CommodityId e);

  MetricPtr metric_;
  CostModelPtr cost_;
  ConnectionChargePolicy policy_;
  CapacityMap capacities_;
  OverflowPolicy overflow_;
  bool capacitated_ = false;

  std::vector<OpenFacilityRecord> facilities_;
  /// Distinct active requests connected to each facility; parallel to
  /// facilities_. Maintained unconditionally (cheap), enforced only when
  /// capacitated_.
  std::vector<std::uint64_t> occupancy_;
  std::vector<RequestRecord> requests_;
  RequestId first_record_id_ = 0;  // ids below this were compacted away
  bool in_flight_ = false;

  double opening_cost_ = 0.0;
  double connection_cost_ = 0.0;
  double active_connection_cost_ = 0.0;
  std::size_t num_active_ = 0;
  std::size_t num_small_ = 0;
  std::size_t num_large_ = 0;
  std::size_t num_shed_ = 0;
  std::size_t num_rejected_ = 0;
  std::size_t num_spilled_ = 0;
};

}  // namespace omflp
