#include "solution/solution.hpp"

#include <algorithm>

#include "instance/checkpoint_io.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

SolutionLedger::SolutionLedger(MetricPtr metric, CostModelPtr cost,
                               ConnectionChargePolicy policy)
    : metric_(std::move(metric)), cost_(std::move(cost)), policy_(policy) {
  OMFLP_REQUIRE(metric_ != nullptr, "SolutionLedger: null metric");
  OMFLP_REQUIRE(cost_ != nullptr, "SolutionLedger: null cost model");
}

RequestId SolutionLedger::begin_request(const Request& request) {
  OMFLP_REQUIRE(!in_flight_,
                "SolutionLedger: previous request not finished");
  OMFLP_REQUIRE(request.location < metric_->num_points(),
                "SolutionLedger: request location outside metric");
  OMFLP_REQUIRE(request.commodities.universe_size() ==
                    cost_->num_commodities(),
                "SolutionLedger: request universe mismatch");
  OMFLP_REQUIRE(!request.commodities.empty(),
                "SolutionLedger: empty demand set");
  RequestRecord record;
  record.request = request;
  requests_.push_back(std::move(record));
  in_flight_ = true;
  return num_requests() - 1;
}

FacilityId SolutionLedger::open_facility(PointId location,
                                         const CommoditySet& config) {
  OMFLP_REQUIRE(in_flight_,
                "SolutionLedger: facilities open only while serving a "
                "request (online model)");
  OMFLP_REQUIRE(location < metric_->num_points(),
                "SolutionLedger: facility location outside metric");
  OMFLP_REQUIRE(config.universe_size() == cost_->num_commodities(),
                "SolutionLedger: facility config universe mismatch");
  OMFLP_REQUIRE(!config.empty(), "SolutionLedger: empty facility config");

  OpenFacilityRecord record;
  record.id = facilities_.size();
  record.location = location;
  record.config = config;
  record.open_cost = cost_->open_cost(location, config);
  record.opened_during = num_requests() - 1;
  opening_cost_ += record.open_cost;
  if (config.count() == 1) ++num_small_;
  if (config.is_full()) ++num_large_;
  facilities_.push_back(std::move(record));
  OMFLP_PERF_COUNT(facilities_opened);
  return facilities_.back().id;
}

void SolutionLedger::assign(CommodityId e, FacilityId f) {
  OMFLP_REQUIRE(in_flight_, "SolutionLedger: no request in flight");
  OMFLP_REQUIRE(f < facilities_.size(), "SolutionLedger: unknown facility");
  RequestRecord& record = requests_.back();
  OMFLP_REQUIRE(record.request.commodities.contains(e),
                "SolutionLedger: assigning a commodity the request does not "
                "demand");
  OMFLP_REQUIRE(facilities_[f].config.contains(e),
                "SolutionLedger: facility does not offer the commodity");
  for (const ServedCommodity& sc : record.served)
    OMFLP_REQUIRE(sc.commodity != e,
                  "SolutionLedger: commodity assigned twice");
  record.served.push_back(ServedCommodity{e, f});
  if (obs::tracing()) {
    TraceEvent event;
    event.kind = TraceEventKind::kRequestAssign;
    event.request = num_requests() - 1;
    event.commodity = e;
    event.facility = f;
    event.point = facilities_[f].location;
    event.cost = metric_->distance(record.request.location,
                                   facilities_[f].location);
    obs::emit(event);
  }
}

void SolutionLedger::finish_request() {
  OMFLP_REQUIRE(in_flight_, "SolutionLedger: no request in flight");
  RequestRecord& record = requests_.back();
  OMFLP_REQUIRE(record.served.size() == record.request.commodities.count(),
                "SolutionLedger: request not fully covered at finish");

  record.connected.reserve(record.served.size());
  for (const ServedCommodity& sc : record.served)
    record.connected.push_back(sc.facility);
  std::sort(record.connected.begin(), record.connected.end());
  record.connected.erase(
      std::unique(record.connected.begin(), record.connected.end()),
      record.connected.end());

  double cost = 0.0;
  if (policy_ == ConnectionChargePolicy::kPerFacility) {
    for (FacilityId f : record.connected)
      cost += metric_->distance(record.request.location,
                                facilities_[f].location);
  } else {
    for (const ServedCommodity& sc : record.served)
      cost += metric_->distance(record.request.location,
                                facilities_[sc.facility].location);
  }
  record.connection_cost = cost;
  connection_cost_ += cost;
  active_connection_cost_ += cost;
  ++num_active_;
  in_flight_ = false;
}

void SolutionLedger::retire_request(RequestId id,
                                    std::uint64_t event_index) {
  OMFLP_REQUIRE(!in_flight_,
                "SolutionLedger: retirements happen between requests");
  OMFLP_REQUIRE(id >= first_record_id_ && id < num_requests(),
                "SolutionLedger: retiring an unknown or compacted request");
  OMFLP_REQUIRE(event_index != kNeverRetired,
                "SolutionLedger: reserved retirement event index");
  RequestRecord& record = requests_[id - first_record_id_];
  OMFLP_REQUIRE(record.active(),
                "SolutionLedger: request retired twice");
  record.retired_at = event_index;
  active_connection_cost_ -= record.connection_cost;
  --num_active_;
}

std::size_t SolutionLedger::compact_retired_prefix() {
  OMFLP_REQUIRE(!in_flight_,
                "SolutionLedger: compaction happens between requests");
  std::size_t drop = 0;
  while (drop < requests_.size() && !requests_[drop].active()) ++drop;
  if (drop == 0) return 0;
  requests_.erase(requests_.begin(),
                  requests_.begin() + static_cast<std::ptrdiff_t>(drop));
  first_record_id_ += drop;
  return drop;
}

const RequestRecord& SolutionLedger::request_record(RequestId id) const {
  OMFLP_REQUIRE(id >= first_record_id_ && id < num_requests(),
                "SolutionLedger: unknown or compacted request record");
  return requests_[id - first_record_id_];
}

const OpenFacilityRecord& SolutionLedger::facility(FacilityId f) const {
  OMFLP_REQUIRE(f < facilities_.size(), "SolutionLedger: unknown facility");
  return facilities_[f];
}

void SolutionLedger::serialize(CkptWriter& writer) const {
  OMFLP_REQUIRE(!in_flight_,
                "SolutionLedger::serialize: request in flight");
  writer.line("ledger").u(first_record_id_).u(requests_.size()).u(
      facilities_.size());
  writer.line("ledger-costs")
      .d(opening_cost_)
      .d(connection_cost_)
      .d(active_connection_cost_)
      .u(num_active_)
      .u(num_small_)
      .u(num_large_);
  for (const OpenFacilityRecord& f : facilities_) {
    writer.line("facility")
        .u(f.id)
        .u(f.location)
        .set(f.config)
        .d(f.open_cost)
        .u(f.opened_during);
  }
  for (const RequestRecord& r : requests_) {
    writer.line("request")
        .u(r.request.location)
        .set(r.request.commodities)
        .u(r.retired_at)
        .d(r.connection_cost);
    writer.line("served").u(r.served.size());
    for (const ServedCommodity& s : r.served)
      writer.u(s.commodity).u(s.facility);
    writer.line("connected").u(r.connected.size());
    for (const FacilityId f : r.connected) writer.u(f);
  }
}

void SolutionLedger::restore(CkptReader& reader) {
  OMFLP_REQUIRE(facilities_.empty() && requests_.empty() && !in_flight_,
                "SolutionLedger::restore: ledger not fresh");
  reader.expect("ledger");
  first_record_id_ = reader.u();
  const std::uint64_t num_resident = reader.u();
  const std::uint64_t num_facilities = reader.u();
  reader.expect("ledger-costs");
  opening_cost_ = reader.d();
  connection_cost_ = reader.d();
  active_connection_cost_ = reader.d();
  num_active_ = reader.u();
  num_small_ = reader.u();
  num_large_ = reader.u();
  facilities_.reserve(capped_reserve(num_facilities));
  for (std::uint64_t i = 0; i < num_facilities; ++i) {
    reader.expect("facility");
    OpenFacilityRecord f;
    f.id = static_cast<FacilityId>(reader.u());
    if (f.id != i) reader.fail("facility ids out of order");
    f.location = static_cast<PointId>(reader.u());
    if (f.location >= metric_->num_points())
      reader.fail("facility location outside the metric");
    f.config = reader.set();
    if (f.config.universe_size() != cost_->num_commodities())
      reader.fail("facility config universe mismatch");
    f.open_cost = reader.d();
    f.opened_during = reader.u();
    facilities_.push_back(std::move(f));
  }
  requests_.reserve(capped_reserve(num_resident));
  for (std::uint64_t i = 0; i < num_resident; ++i) {
    reader.expect("request");
    RequestRecord r;
    r.request.location = static_cast<PointId>(reader.u());
    if (r.request.location >= metric_->num_points())
      reader.fail("request location outside the metric");
    r.request.commodities = reader.set();
    if (r.request.commodities.universe_size() != cost_->num_commodities())
      reader.fail("request demand universe mismatch");
    r.retired_at = reader.u();
    r.connection_cost = reader.d();
    reader.expect("served");
    const std::uint64_t num_served = reader.u();
    r.served.reserve(capped_reserve(num_served));
    for (std::uint64_t k = 0; k < num_served; ++k) {
      ServedCommodity s;
      s.commodity = static_cast<CommodityId>(reader.u());
      s.facility = static_cast<FacilityId>(reader.u());
      if (s.facility >= facilities_.size())
        reader.fail("served entry references an unknown facility");
      r.served.push_back(s);
    }
    reader.expect("connected");
    const std::uint64_t num_connected = reader.u();
    r.connected.reserve(capped_reserve(num_connected));
    for (std::uint64_t k = 0; k < num_connected; ++k) {
      const auto f = static_cast<FacilityId>(reader.u());
      if (f >= facilities_.size())
        reader.fail("connected entry references an unknown facility");
      r.connected.push_back(f);
    }
    requests_.push_back(std::move(r));
  }
}

}  // namespace omflp
