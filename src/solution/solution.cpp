#include "solution/solution.hpp"

#include <algorithm>

#include "instance/checkpoint_io.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

SolutionLedger::SolutionLedger(MetricPtr metric, CostModelPtr cost,
                               ConnectionChargePolicy policy,
                               CapacityMap capacities,
                               OverflowPolicy overflow)
    : metric_(std::move(metric)),
      cost_(std::move(cost)),
      policy_(policy),
      capacities_(std::move(capacities)),
      overflow_(overflow),
      capacitated_(is_capacitated(capacities_)) {
  OMFLP_REQUIRE(metric_ != nullptr, "SolutionLedger: null metric");
  OMFLP_REQUIRE(cost_ != nullptr, "SolutionLedger: null cost model");
  if (capacities_) {
    OMFLP_REQUIRE(capacities_->size() <= metric_->num_points(),
                  "SolutionLedger: capacity map larger than the metric");
  }
}

RequestId SolutionLedger::begin_request(const Request& request) {
  OMFLP_REQUIRE(!in_flight_,
                "SolutionLedger: previous request not finished");
  OMFLP_REQUIRE(request.location < metric_->num_points(),
                "SolutionLedger: request location outside metric");
  OMFLP_REQUIRE(request.commodities.universe_size() ==
                    cost_->num_commodities(),
                "SolutionLedger: request universe mismatch");
  OMFLP_REQUIRE(!request.commodities.empty(),
                "SolutionLedger: empty demand set");
  RequestRecord record;
  record.request = request;
  requests_.push_back(std::move(record));
  in_flight_ = true;
  return num_requests() - 1;
}

FacilityId SolutionLedger::open_facility(PointId location,
                                         const CommoditySet& config) {
  OMFLP_REQUIRE(in_flight_,
                "SolutionLedger: facilities open only while serving a "
                "request (online model)");
  OMFLP_REQUIRE(location < metric_->num_points(),
                "SolutionLedger: facility location outside metric");
  OMFLP_REQUIRE(config.universe_size() == cost_->num_commodities(),
                "SolutionLedger: facility config universe mismatch");
  OMFLP_REQUIRE(!config.empty(), "SolutionLedger: empty facility config");

  OpenFacilityRecord record;
  record.id = facilities_.size();
  record.location = location;
  record.config = config;
  record.open_cost = cost_->open_cost(location, config);
  record.opened_during = num_requests() - 1;
  opening_cost_ += record.open_cost;
  if (config.count() == 1) ++num_small_;
  if (config.is_full()) ++num_large_;
  facilities_.push_back(std::move(record));
  occupancy_.push_back(0);
  OMFLP_PERF_COUNT(facilities_opened);
  return facilities_.back().id;
}

void SolutionLedger::assign(CommodityId e, FacilityId f) {
  OMFLP_REQUIRE(in_flight_, "SolutionLedger: no request in flight");
  OMFLP_REQUIRE(f < facilities_.size(), "SolutionLedger: unknown facility");
  RequestRecord& record = requests_.back();
  OMFLP_REQUIRE(record.request.commodities.contains(e),
                "SolutionLedger: assigning a commodity the request does not "
                "demand");
  OMFLP_REQUIRE(facilities_[f].config.contains(e),
                "SolutionLedger: facility does not offer the commodity");
  bool already_connected = false;
  for (const ServedCommodity& sc : record.served) {
    OMFLP_REQUIRE(sc.commodity != e,
                  "SolutionLedger: commodity assigned twice");
    if (sc.facility == f) already_connected = true;
  }
  for (const CommodityId r : record.rejected)
    OMFLP_REQUIRE(r != e, "SolutionLedger: commodity already rejected");

  // Uncapacitated, already occupying f, or room left: the plain path —
  // bitwise identical to the pre-capacity ledger when capacities_ does
  // not constrain anything.
  if (!capacitated_ || already_connected ||
      occupancy_[f] < capacity_at(capacities_, facilities_[f].location)) {
    serve_at(e, f, /*spilled=*/false);
    return;
  }

  // f is full and this request does not already occupy it: admission
  // control decides.
  if (overflow_ == OverflowPolicy::kReject) {
    reject_commodity(e);
    return;
  }

  // kReassign: nearest feasible open facility offering e. Feasible =
  // this request already occupies it (no new occupancy needed) or it is
  // under capacity. The ascending scan with a strict < keeps ties on
  // the lowest facility id — deterministic across shards and threads.
  FacilityId best = kInvalidFacility;
  double best_distance = kInfiniteDistance;
  for (FacilityId g = 0; g < facilities_.size(); ++g) {
    if (g == f || !facilities_[g].config.contains(e)) continue;
    bool occupies = false;
    for (const ServedCommodity& sc : record.served) {
      if (sc.facility == g) {
        occupies = true;
        break;
      }
    }
    if (!occupies &&
        occupancy_[g] >= capacity_at(capacities_, facilities_[g].location))
      continue;
    const double distance =
        metric_->distance(record.request.location, facilities_[g].location);
    if (distance < best_distance) {
      best_distance = distance;
      best = g;
    }
  }
  if (best != kInvalidFacility) {
    ++num_spilled_;
    OMFLP_PERF_COUNT(assignments_spilled);
    serve_at(e, best, /*spilled=*/true);
    return;
  }
  // Last resort: a fresh singleton facility at the request's location —
  // a new facility has its own capacity budget and occupancy 0, so it
  // is feasible whenever the location's capacity is at least 1.
  if (capacity_at(capacities_, record.request.location) >= 1) {
    const FacilityId fresh = open_facility(
        record.request.location,
        CommoditySet::singleton(cost_->num_commodities(), e));
    ++num_spilled_;
    OMFLP_PERF_COUNT(assignments_spilled);
    serve_at(e, fresh, /*spilled=*/true);
    return;
  }
  reject_commodity(e);
}

void SolutionLedger::serve_at(CommodityId e, FacilityId f, bool spilled) {
  RequestRecord& record = requests_.back();
  bool already_connected = false;
  for (const ServedCommodity& sc : record.served) {
    if (sc.facility == f) {
      already_connected = true;
      break;
    }
  }
  if (!already_connected) ++occupancy_[f];
  record.served.push_back(ServedCommodity{e, f});
  if (obs::tracing()) {
    TraceEvent event;
    event.kind = spilled ? TraceEventKind::kRequestSpill
                         : TraceEventKind::kRequestAssign;
    event.request = num_requests() - 1;
    event.commodity = e;
    event.facility = f;
    event.point = facilities_[f].location;
    event.cost = metric_->distance(record.request.location,
                                   facilities_[f].location);
    obs::emit(event);
  }
}

void SolutionLedger::reject_commodity(CommodityId e) {
  RequestRecord& record = requests_.back();
  record.rejected.push_back(e);
  ++num_rejected_;
  if (obs::tracing()) {
    TraceEvent event;
    event.kind = TraceEventKind::kRequestReject;
    event.request = num_requests() - 1;
    event.commodity = e;
    obs::emit(event);
  }
}

void SolutionLedger::finish_request() {
  OMFLP_REQUIRE(in_flight_, "SolutionLedger: no request in flight");
  RequestRecord& record = requests_.back();
  // served + rejected partition the demand set (assign() enforces both
  // disjointness and membership; rejections only happen under admission
  // control, so uncapacitated runs keep the old exact-coverage check).
  OMFLP_REQUIRE(record.served.size() + record.rejected.size() ==
                    record.request.commodities.count(),
                "SolutionLedger: request not fully covered at finish");
  if (!record.rejected.empty()) {
    std::sort(record.rejected.begin(), record.rejected.end());
    ++num_shed_;
    OMFLP_PERF_COUNT(requests_shed);
  }

  record.connected.reserve(record.served.size());
  for (const ServedCommodity& sc : record.served)
    record.connected.push_back(sc.facility);
  std::sort(record.connected.begin(), record.connected.end());
  record.connected.erase(
      std::unique(record.connected.begin(), record.connected.end()),
      record.connected.end());

  double cost = 0.0;
  if (policy_ == ConnectionChargePolicy::kPerFacility) {
    for (FacilityId f : record.connected)
      cost += metric_->distance(record.request.location,
                                facilities_[f].location);
  } else {
    for (const ServedCommodity& sc : record.served)
      cost += metric_->distance(record.request.location,
                                facilities_[sc.facility].location);
  }
  record.connection_cost = cost;
  connection_cost_ += cost;
  active_connection_cost_ += cost;
  ++num_active_;
  in_flight_ = false;
}

void SolutionLedger::retire_request(RequestId id,
                                    std::uint64_t event_index) {
  OMFLP_REQUIRE(!in_flight_,
                "SolutionLedger: retirements happen between requests");
  OMFLP_REQUIRE(id >= first_record_id_ && id < num_requests(),
                "SolutionLedger: retiring an unknown or compacted request");
  OMFLP_REQUIRE(event_index != kNeverRetired,
                "SolutionLedger: reserved retirement event index");
  RequestRecord& record = requests_[id - first_record_id_];
  OMFLP_REQUIRE(record.active(),
                "SolutionLedger: request retired twice");
  record.retired_at = event_index;
  active_connection_cost_ -= record.connection_cost;
  --num_active_;
  // Release the request's occupancy (departures and lease expiries both
  // land here): capacity headroom returns to every facility it occupied.
  for (const FacilityId f : record.connected) {
    OMFLP_REQUIRE(occupancy_[f] > 0, "SolutionLedger: occupancy underflow");
    --occupancy_[f];
  }
}

std::size_t SolutionLedger::compact_retired_prefix() {
  OMFLP_REQUIRE(!in_flight_,
                "SolutionLedger: compaction happens between requests");
  std::size_t drop = 0;
  while (drop < requests_.size() && !requests_[drop].active()) ++drop;
  if (drop == 0) return 0;
  requests_.erase(requests_.begin(),
                  requests_.begin() + static_cast<std::ptrdiff_t>(drop));
  first_record_id_ += drop;
  return drop;
}

const RequestRecord& SolutionLedger::request_record(RequestId id) const {
  OMFLP_REQUIRE(id >= first_record_id_ && id < num_requests(),
                "SolutionLedger: unknown or compacted request record");
  return requests_[id - first_record_id_];
}

const OpenFacilityRecord& SolutionLedger::facility(FacilityId f) const {
  OMFLP_REQUIRE(f < facilities_.size(), "SolutionLedger: unknown facility");
  return facilities_[f];
}

std::uint64_t SolutionLedger::facility_capacity(FacilityId f) const {
  OMFLP_REQUIRE(f < facilities_.size(), "SolutionLedger: unknown facility");
  return capacity_at(capacities_, facilities_[f].location);
}

std::uint64_t SolutionLedger::occupancy(FacilityId f) const {
  OMFLP_REQUIRE(f < occupancy_.size(), "SolutionLedger: unknown facility");
  return occupancy_[f];
}

void SolutionLedger::serialize(CkptWriter& writer) const {
  OMFLP_REQUIRE(!in_flight_,
                "SolutionLedger::serialize: request in flight");
  writer.line("ledger").u(first_record_id_).u(requests_.size()).u(
      facilities_.size());
  writer.line("ledger-costs")
      .d(opening_cost_)
      .d(connection_cost_)
      .d(active_connection_cost_)
      .u(num_active_)
      .u(num_small_)
      .u(num_large_);
  writer.line("ledger-adm").u(num_shed_).u(num_rejected_).u(num_spilled_);
  for (const OpenFacilityRecord& f : facilities_) {
    writer.line("facility")
        .u(f.id)
        .u(f.location)
        .set(f.config)
        .d(f.open_cost)
        .u(f.opened_during);
  }
  for (const RequestRecord& r : requests_) {
    writer.line("request")
        .u(r.request.location)
        .set(r.request.commodities)
        .u(r.retired_at)
        .d(r.connection_cost);
    writer.line("served").u(r.served.size());
    for (const ServedCommodity& s : r.served)
      writer.u(s.commodity).u(s.facility);
    writer.line("rejected").u(r.rejected.size());
    for (const CommodityId e : r.rejected) writer.u(e);
    writer.line("connected").u(r.connected.size());
    for (const FacilityId f : r.connected) writer.u(f);
  }
}

void SolutionLedger::restore(CkptReader& reader) {
  OMFLP_REQUIRE(facilities_.empty() && requests_.empty() && !in_flight_,
                "SolutionLedger::restore: ledger not fresh");
  reader.expect("ledger");
  first_record_id_ = reader.u();
  const std::uint64_t num_resident = reader.u();
  const std::uint64_t num_facilities = reader.u();
  reader.expect("ledger-costs");
  opening_cost_ = reader.d();
  connection_cost_ = reader.d();
  active_connection_cost_ = reader.d();
  num_active_ = reader.u();
  num_small_ = reader.u();
  num_large_ = reader.u();
  reader.expect("ledger-adm");
  num_shed_ = reader.u();
  num_rejected_ = reader.u();
  num_spilled_ = reader.u();
  facilities_.reserve(capped_reserve(num_facilities));
  for (std::uint64_t i = 0; i < num_facilities; ++i) {
    reader.expect("facility");
    OpenFacilityRecord f;
    f.id = static_cast<FacilityId>(reader.u());
    if (f.id != i) reader.fail("facility ids out of order");
    f.location = static_cast<PointId>(reader.u());
    if (f.location >= metric_->num_points())
      reader.fail("facility location outside the metric");
    f.config = reader.set();
    if (f.config.universe_size() != cost_->num_commodities())
      reader.fail("facility config universe mismatch");
    f.open_cost = reader.d();
    f.opened_during = reader.u();
    facilities_.push_back(std::move(f));
  }
  requests_.reserve(capped_reserve(num_resident));
  for (std::uint64_t i = 0; i < num_resident; ++i) {
    reader.expect("request");
    RequestRecord r;
    r.request.location = static_cast<PointId>(reader.u());
    if (r.request.location >= metric_->num_points())
      reader.fail("request location outside the metric");
    r.request.commodities = reader.set();
    if (r.request.commodities.universe_size() != cost_->num_commodities())
      reader.fail("request demand universe mismatch");
    r.retired_at = reader.u();
    r.connection_cost = reader.d();
    reader.expect("served");
    const std::uint64_t num_served = reader.u();
    r.served.reserve(capped_reserve(num_served));
    for (std::uint64_t k = 0; k < num_served; ++k) {
      ServedCommodity s;
      s.commodity = static_cast<CommodityId>(reader.u());
      s.facility = static_cast<FacilityId>(reader.u());
      if (s.facility >= facilities_.size())
        reader.fail("served entry references an unknown facility");
      r.served.push_back(s);
    }
    reader.expect("rejected");
    const std::uint64_t num_rejected = reader.u();
    r.rejected.reserve(capped_reserve(num_rejected));
    for (std::uint64_t k = 0; k < num_rejected; ++k) {
      const auto e = static_cast<CommodityId>(reader.u());
      if (!r.request.commodities.contains(e))
        reader.fail("rejected entry is not a demanded commodity");
      r.rejected.push_back(e);
    }
    reader.expect("connected");
    const std::uint64_t num_connected = reader.u();
    r.connected.reserve(capped_reserve(num_connected));
    for (std::uint64_t k = 0; k < num_connected; ++k) {
      const auto f = static_cast<FacilityId>(reader.u());
      if (f >= facilities_.size())
        reader.fail("connected entry references an unknown facility");
      r.connected.push_back(f);
    }
    requests_.push_back(std::move(r));
  }
  // Occupancy is derived state: every active record is resident
  // (compaction only drops all-retired prefixes), so the per-facility
  // occupancy counts are recomputed rather than serialized.
  occupancy_.assign(facilities_.size(), 0);
  for (const RequestRecord& r : requests_) {
    if (!r.active()) continue;
    for (const FacilityId f : r.connected) ++occupancy_[f];
  }
}

}  // namespace omflp
