#include "solution/verifier.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <vector>

#include "instance/checkpoint_io.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"

namespace omflp {

namespace {

std::optional<VerificationError> fail(const std::string& msg) {
  return VerificationError{msg};
}

/// The per-facility re-derivation shared by every verifier: pricing and
/// well-formedness against the cost model.
std::optional<std::string> check_facility(const MetricSpace& metric,
                                          const FacilityCostModel& cost,
                                          const OpenFacilityRecord& f,
                                          double tolerance) {
  OMFLP_PERF_COUNT(verifier_checks);
  if (f.location >= metric.num_points())
    return "facility outside the metric space";
  if (f.config.universe_size() != cost.num_commodities())
    return "facility config universe mismatch";
  if (f.config.empty()) return "facility with empty configuration";
  const double expect = cost.open_cost(f.location, f.config);
  if (std::abs(expect - f.open_cost) > tolerance) {
    std::ostringstream os;
    os << "facility " << f.id << " open cost " << f.open_cost
       << " != model cost " << expect;
    return os.str();
  }
  return std::nullopt;
}

/// The per-request re-derivation shared by every verifier: coverage,
/// causality, connected-list consistency and the recomputed connection
/// cost (returned through `connection` on success).
std::optional<std::string> check_record(const MetricSpace& metric,
                                        const FacilityCostModel& cost,
                                        const SolutionLedger& ledger,
                                        RequestId id,
                                        const Request& expected,
                                        const RequestRecord& rec,
                                        double tolerance,
                                        double& connection) {
  OMFLP_PERF_COUNT(verifier_checks);
  std::ostringstream os;
  if (!(rec.request.location == expected.location &&
        rec.request.commodities == expected.commodities)) {
    os << "request " << id << " in ledger differs from the input";
    return os.str();
  }

  CommoditySet covered(cost.num_commodities());
  for (const ServedCommodity& sc : rec.served) {
    if (sc.facility >= ledger.num_facilities())
      return "assignment to unknown facility";
    const OpenFacilityRecord& f = ledger.facility(sc.facility);
    if (!f.config.contains(sc.commodity))
      return "assigned facility does not offer the commodity";
    if (f.opened_during > id)
      return "causality violation: facility opened after the request it "
             "serves";
    if (covered.contains(sc.commodity))
      return "commodity covered twice in one request";
    covered.add(sc.commodity);
  }
  // Admission control may have rejected commodities; served + rejected
  // must still partition the demand set exactly (sorted, no overlap).
  for (std::size_t k = 0; k < rec.rejected.size(); ++k) {
    const CommodityId e = rec.rejected[k];
    if (!expected.commodities.contains(e))
      return "rejected commodity the request does not demand";
    if (covered.contains(e))
      return "commodity both served and rejected";
    if (k > 0 && rec.rejected[k - 1] >= e)
      return "rejected list not sorted and distinct";
    covered.add(e);
  }
  if (!(covered == expected.commodities)) {
    os << "request " << id << " not exactly covered: got "
       << covered.to_string() << ", demanded "
       << expected.commodities.to_string();
    return os.str();
  }

  double expect_conn = 0.0;
  if (ledger.policy() == ConnectionChargePolicy::kPerFacility) {
    // rec.connected must be the sorted distinct facility list.
    std::vector<FacilityId> distinct;
    for (const ServedCommodity& sc : rec.served)
      distinct.push_back(sc.facility);
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (distinct != rec.connected)
      return "connected-facility list inconsistent with assignments";
    for (FacilityId f : distinct)
      expect_conn +=
          metric.distance(expected.location, ledger.facility(f).location);
  } else {
    for (const ServedCommodity& sc : rec.served)
      expect_conn += metric.distance(expected.location,
                                     ledger.facility(sc.facility).location);
  }
  if (std::abs(expect_conn - rec.connection_cost) >
      tolerance * (1.0 + expect_conn)) {
    os << "request " << id << " connection cost " << rec.connection_cost
       << " != recomputed " << expect_conn;
    return os.str();
  }
  connection = expect_conn;
  return std::nullopt;
}

}  // namespace

std::optional<VerificationError> verify_solution(const Instance& instance,
                                                 const SolutionLedger& ledger,
                                                 double tolerance) {
  if (ledger.request_in_flight())
    return fail("ledger left a request in flight");
  if (ledger.num_requests() != instance.num_requests()) {
    std::ostringstream os;
    os << "ledger served " << ledger.num_requests() << " requests, instance has "
       << instance.num_requests();
    return fail(os.str());
  }

  const MetricSpace& metric = instance.metric();
  const FacilityCostModel& cost = instance.cost();

  // Facilities: recompute opening costs. One verifier_check per facility
  // and per request record re-derived below.
  double opening = 0.0;
  for (const OpenFacilityRecord& f : ledger.facilities()) {
    OMFLP_PERF_COUNT(verifier_checks);
    if (f.location >= metric.num_points())
      return fail("facility outside the metric space");
    if (f.config.universe_size() != cost.num_commodities())
      return fail("facility config universe mismatch");
    if (f.config.empty()) return fail("facility with empty configuration");
    const double expect = cost.open_cost(f.location, f.config);
    if (std::abs(expect - f.open_cost) > tolerance) {
      std::ostringstream os;
      os << "facility " << f.id << " open cost " << f.open_cost
         << " != model cost " << expect;
      return fail(os.str());
    }
    opening += expect;
  }
  if (std::abs(opening - ledger.opening_cost()) > tolerance * (1.0 + opening))
    return fail("total opening cost mismatch");

  // Requests: coverage, causality, connection cost.
  double connection = 0.0;
  for (RequestId i = 0; i < instance.num_requests(); ++i) {
    OMFLP_PERF_COUNT(verifier_checks);
    const Request& expected = instance.request(i);
    const RequestRecord& rec = ledger.request_records()[i];
    if (!(rec.request.location == expected.location &&
          rec.request.commodities == expected.commodities)) {
      std::ostringstream os;
      os << "request " << i << " in ledger differs from the instance";
      return fail(os.str());
    }

    CommoditySet covered(cost.num_commodities());
    for (const ServedCommodity& sc : rec.served) {
      if (sc.facility >= ledger.num_facilities())
        return fail("assignment to unknown facility");
      const OpenFacilityRecord& f = ledger.facility(sc.facility);
      if (!f.config.contains(sc.commodity))
        return fail("assigned facility does not offer the commodity");
      if (f.opened_during > i)
        return fail("causality violation: facility opened after the request "
                    "it serves");
      if (covered.contains(sc.commodity))
        return fail("commodity covered twice in one request");
      covered.add(sc.commodity);
    }
    for (std::size_t k = 0; k < rec.rejected.size(); ++k) {
      const CommodityId e = rec.rejected[k];
      if (!is_capacitated(instance.capacities()))
        return fail("rejected commodity on an uncapacitated instance");
      if (!expected.commodities.contains(e))
        return fail("rejected commodity the request does not demand");
      if (covered.contains(e))
        return fail("commodity both served and rejected");
      if (k > 0 && rec.rejected[k - 1] >= e)
        return fail("rejected list not sorted and distinct");
      covered.add(e);
    }
    if (!(covered == expected.commodities)) {
      std::ostringstream os;
      os << "request " << i << " not exactly covered: got "
         << covered.to_string() << ", demanded "
         << expected.commodities.to_string();
      return fail(os.str());
    }

    double expect_conn = 0.0;
    if (ledger.policy() == ConnectionChargePolicy::kPerFacility) {
      // rec.connected must be the sorted distinct facility list.
      std::vector<FacilityId> distinct;
      for (const ServedCommodity& sc : rec.served)
        distinct.push_back(sc.facility);
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      if (distinct != rec.connected)
        return fail("connected-facility list inconsistent with assignments");
      for (FacilityId f : distinct)
        expect_conn += metric.distance(expected.location,
                                       ledger.facility(f).location);
    } else {
      for (const ServedCommodity& sc : rec.served)
        expect_conn += metric.distance(expected.location,
                                       ledger.facility(sc.facility).location);
    }
    if (std::abs(expect_conn - rec.connection_cost) >
        tolerance * (1.0 + expect_conn)) {
      std::ostringstream os;
      os << "request " << i << " connection cost " << rec.connection_cost
         << " != recomputed " << expect_conn;
      return fail(os.str());
    }
    connection += expect_conn;
  }
  if (std::abs(connection - ledger.connection_cost()) >
      tolerance * (1.0 + connection))
    return fail("total connection cost mismatch");

  // Capacity feasibility: a static run never retires anyone, so each
  // facility's occupancy is simply the number of distinct requests that
  // connect to it — re-derived from the served lists, not the ledger's
  // own occupancy bookkeeping.
  if (is_capacitated(instance.capacities())) {
    const CapacityMap& caps = instance.capacities();
    std::vector<std::uint64_t> occupancy(ledger.num_facilities(), 0);
    for (const RequestRecord& rec : ledger.request_records()) {
      std::vector<FacilityId> distinct;
      for (const ServedCommodity& sc : rec.served)
        distinct.push_back(sc.facility);
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      for (const FacilityId f : distinct) ++occupancy[f];
    }
    for (const OpenFacilityRecord& f : ledger.facilities()) {
      if (occupancy[f.id] > capacity_at(caps, f.location)) {
        std::ostringstream os;
        os << "facility " << f.id << " occupancy " << occupancy[f.id]
           << " exceeds capacity " << capacity_at(caps, f.location);
        return fail(os.str());
      }
    }
  }

  return std::nullopt;
}

// -------------------------------------------------------- dynamic runs ---

std::optional<VerificationError> verify_stream(const EventStream& stream,
                                               const SolutionLedger& ledger,
                                               double tolerance) {
  if (ledger.request_in_flight())
    return fail("ledger left a request in flight");
  if (ledger.first_record_id() != 0)
    return fail("compacted ledger cannot be verified offline; use "
                "StreamVerifier during the run");

  // Independently re-derive the retirement timeline: explicit departures
  // and lease expiries, with expiries firing before the event at their
  // deadline and explicit departures winning over a later expiry.
  using Expiry = std::pair<std::uint64_t, RequestId>;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<Expiry>>
      expiries;
  std::vector<std::uint64_t> retired_at;  // by arrival id
  std::vector<const Request*> arrivals;
  const std::vector<StreamEvent>& events = stream.events();
  for (std::size_t t = 0; t < events.size(); ++t) {
    while (!expiries.empty() && expiries.top().first <= t) {
      const auto [deadline, id] = expiries.top();
      expiries.pop();
      if (retired_at[id] == kNeverRetired) retired_at[id] = deadline;
    }
    const StreamEvent& e = events[t];
    if (e.kind == StreamEvent::Kind::kArrival) {
      const RequestId id = arrivals.size();
      arrivals.push_back(&e.request);
      retired_at.push_back(kNeverRetired);
      if (e.lease > 0) expiries.emplace(lease_deadline(t, e.lease), id);
    } else {
      if (e.target >= arrivals.size() ||
          retired_at[e.target] != kNeverRetired)
        return fail("stream contains an invalid departure (event " +
                    std::to_string(t) + ")");
      retired_at[e.target] = t;
    }
  }

  if (ledger.num_requests() != arrivals.size()) {
    std::ostringstream os;
    os << "ledger served " << ledger.num_requests()
       << " requests, stream has " << arrivals.size() << " arrivals";
    return fail(os.str());
  }

  const MetricSpace& metric = stream.metric();
  const FacilityCostModel& cost = stream.cost();

  double opening = 0.0;
  for (const OpenFacilityRecord& f : ledger.facilities()) {
    if (auto error = check_facility(metric, cost, f, tolerance))
      return fail(*error);
    opening += cost.open_cost(f.location, f.config);
  }
  if (std::abs(opening - ledger.opening_cost()) > tolerance * (1.0 + opening))
    return fail("total opening cost mismatch");

  double gross = 0.0;
  double active = 0.0;
  std::size_t active_count = 0;
  for (RequestId id = 0; id < arrivals.size(); ++id) {
    const RequestRecord& rec = ledger.request_records()[id];
    if (rec.retired_at != retired_at[id]) {
      std::ostringstream os;
      os << "request " << id << " active interval mismatch: ledger retired "
         << "at " << rec.retired_at << ", timeline says " << retired_at[id]
         << " (" << kNeverRetired << " = never)";
      return fail(os.str());
    }
    double connection = 0.0;
    if (auto error = check_record(metric, cost, ledger, id, *arrivals[id],
                                  rec, tolerance, connection))
      return fail(*error);
    if (!rec.rejected.empty() && !is_capacitated(stream.capacities()))
      return fail("rejected commodity on an uncapacitated stream");
    gross += connection;
    if (rec.active()) {
      active += connection;
      ++active_count;
    }
  }
  if (std::abs(gross - ledger.connection_cost()) > tolerance * (1.0 + gross))
    return fail("total connection cost mismatch");
  if (std::abs(active - ledger.active_connection_cost()) >
      tolerance * (1.0 + active))
    return fail("active connection cost mismatch");
  if (active_count != ledger.num_active_requests())
    return fail("active request count mismatch");

  // Capacity feasibility over the whole timeline: replay arrivals and
  // retirements in event order and check that no facility's occupancy
  // (distinct active requests connected to it) ever exceeds its
  // location's capacity. Occupancy is re-derived from the served lists
  // validated above, independent of the ledger's own counts.
  if (is_capacitated(stream.capacities())) {
    const CapacityMap& caps = stream.capacities();
    std::vector<std::uint64_t> occupancy(ledger.num_facilities(), 0);
    const auto connected_of = [&](RequestId id) {
      std::vector<FacilityId> distinct;
      for (const ServedCommodity& sc : ledger.request_records()[id].served)
        distinct.push_back(sc.facility);
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      return distinct;
    };
    const auto release = [&](RequestId id) {
      for (const FacilityId f : connected_of(id)) --occupancy[f];
    };
    std::priority_queue<Expiry, std::vector<Expiry>, std::greater<Expiry>>
        pending;
    std::vector<bool> live;
    RequestId next_arrival = 0;
    for (std::size_t t = 0; t < events.size(); ++t) {
      while (!pending.empty() && pending.top().first <= t) {
        const RequestId id = pending.top().second;
        pending.pop();
        if (live[id]) {
          live[id] = false;
          release(id);
        }
      }
      const StreamEvent& e = events[t];
      if (e.kind == StreamEvent::Kind::kArrival) {
        const RequestId id = next_arrival++;
        live.push_back(true);
        for (const FacilityId f : connected_of(id)) {
          if (++occupancy[f] >
              capacity_at(caps, ledger.facility(f).location)) {
            std::ostringstream os;
            os << "facility " << f << " over capacity at event " << t;
            return fail(os.str());
          }
        }
        if (e.lease > 0) pending.emplace(lease_deadline(t, e.lease), id);
      } else {
        live[e.target] = false;
        release(e.target);
      }
    }
  }
  return std::nullopt;
}

StreamVerifier::StreamVerifier(MetricPtr metric, CostModelPtr cost,
                               double tolerance, CapacityMap capacities)
    : metric_(std::move(metric)),
      cost_(std::move(cost)),
      tolerance_(tolerance),
      capacities_(std::move(capacities)),
      capacitated_(is_capacitated(capacities_)) {
  OMFLP_PERF_COUNT(verifier_checks);
}

void StreamVerifier::fail_check(const std::string& what) {
  if (error_) return;
  error_ = VerificationError{what};
  if (obs::tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kVerifierFlag;
    // The most recently admitted arrival, if any — the request being
    // processed when the invariant broke.
    ev.request = next_expected_ > 0 ? next_expected_ - 1 : kInvalidRequest;
    ev.note = what;
    obs::emit(ev);
  }
}

void StreamVerifier::on_arrival(RequestId id, const Request& request,
                                const SolutionLedger& ledger) {
  if (error_) return;
  if (id != next_expected_) {
    fail_check("arrivals out of order");
    return;
  }
  ++next_expected_;

  // New facilities opened while serving this arrival.
  while (facilities_seen_ < ledger.num_facilities()) {
    const OpenFacilityRecord& f = ledger.facility(facilities_seen_);
    if (auto error = check_facility(*metric_, *cost_, f, tolerance_)) {
      fail_check(*error);
      return;
    }
    opening_ += cost_->open_cost(f.location, f.config);
    occupancy_.push_back(0);
    ++facilities_seen_;
  }

  const RequestRecord& rec = ledger.request_record(id);
  if (!rec.active()) {
    fail_check("freshly served request is not active");
    return;
  }
  double connection = 0.0;
  if (auto error = check_record(*metric_, *cost_, ledger, id, request, rec,
                                tolerance_, connection)) {
    fail_check(*error);
    return;
  }
  if (!rec.rejected.empty() && !capacitated_) {
    fail_check("rejected commodity without capacities");
    return;
  }
  // Occupancy re-derived from the served list (independent of the
  // ledger's own counters); a capacitated verifier flags any facility
  // this arrival pushes past its location's capacity.
  ActiveRequest entry;
  entry.connection = connection;
  for (const ServedCommodity& sc : rec.served)
    entry.connected.push_back(sc.facility);
  std::sort(entry.connected.begin(), entry.connected.end());
  entry.connected.erase(
      std::unique(entry.connected.begin(), entry.connected.end()),
      entry.connected.end());
  for (const FacilityId f : entry.connected) {
    ++occupancy_[f];
    if (capacitated_ &&
        occupancy_[f] >
            capacity_at(capacities_, ledger.facility(f).location)) {
      std::ostringstream os;
      os << "facility " << f << " over capacity serving request " << id;
      fail_check(os.str());
      return;
    }
  }
  gross_connection_ += connection;
  active_costs_.emplace(id, std::move(entry));
}

void StreamVerifier::on_retire(RequestId id, std::uint64_t event_index,
                               const SolutionLedger& ledger) {
  if (error_) return;
  const auto it = active_costs_.find(id);
  if (it == active_costs_.end()) {
    fail_check("retirement of an unknown or already-retired request");
    return;
  }
  const RequestRecord& rec = ledger.request_record(id);
  if (rec.retired_at != event_index) {
    std::ostringstream os;
    os << "request " << id << " retired_at " << rec.retired_at
       << " != runner event " << event_index;
    fail_check(os.str());
    return;
  }
  retired_connection_ += it->second.connection;
  for (const FacilityId f : it->second.connected) {
    if (f < occupancy_.size() && occupancy_[f] > 0) --occupancy_[f];
  }
  active_costs_.erase(it);
}

std::optional<VerificationError> StreamVerifier::finish(
    const SolutionLedger& ledger) {
  if (error_) return error_;
  if (ledger.request_in_flight())
    return fail("ledger left a request in flight");
  if (next_expected_ != ledger.num_requests())
    fail_check("ledger request count differs from arrivals seen");
  else if (facilities_seen_ != ledger.num_facilities())
    fail_check("facilities opened outside any arrival");
  else if (std::abs(opening_ - ledger.opening_cost()) >
           tolerance_ * (1.0 + opening_))
    fail_check("total opening cost mismatch");
  else if (std::abs(gross_connection_ - ledger.connection_cost()) >
           tolerance_ * (1.0 + gross_connection_))
    fail_check("total connection cost mismatch");
  else if (std::abs((gross_connection_ - retired_connection_) -
                    ledger.active_connection_cost()) >
           tolerance_ * (1.0 + gross_connection_))
    fail_check("active connection cost mismatch");
  else if (active_costs_.size() != ledger.num_active_requests())
    fail_check("active request count mismatch");
  return error_;
}

void StreamVerifier::serialize(CkptWriter& writer) const {
  writer.line("verifier")
      .u(next_expected_)
      .u(facilities_seen_)
      .d(opening_)
      .d(gross_connection_)
      .d(retired_connection_);
  // Canonical form: the unordered map serialized sorted by request id.
  std::vector<std::pair<RequestId, const ActiveRequest*>> active;
  active.reserve(active_costs_.size());
  for (const auto& [id, entry] : active_costs_) active.emplace_back(id, &entry);
  std::sort(active.begin(), active.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  writer.line("verifier-active").u(active.size());
  for (const auto& [id, entry] : active) {
    writer.u(id).d(entry->connection).u(entry->connected.size());
    for (const FacilityId f : entry->connected) writer.u(f);
  }
  writer.line("verifier-error").b(error_.has_value());
  if (error_) writer.bytes(error_->what);
}

void StreamVerifier::restore(CkptReader& reader) {
  reader.expect("verifier");
  next_expected_ = static_cast<RequestId>(reader.u());
  facilities_seen_ = reader.u();
  opening_ = reader.d();
  gross_connection_ = reader.d();
  retired_connection_ = reader.d();
  reader.expect("verifier-active");
  const std::uint64_t num_active = reader.u();
  active_costs_.reserve(capped_reserve(num_active));
  occupancy_.assign(facilities_seen_, 0);
  for (std::uint64_t i = 0; i < num_active; ++i) {
    const auto id = static_cast<RequestId>(reader.u());
    ActiveRequest entry;
    entry.connection = reader.d();
    const std::uint64_t num_connected = reader.u();
    entry.connected.reserve(capped_reserve(num_connected));
    for (std::uint64_t k = 0; k < num_connected; ++k) {
      const auto f = static_cast<FacilityId>(reader.u());
      if (f >= facilities_seen_)
        reader.fail("verifier active entry references an unknown facility");
      entry.connected.push_back(f);
      ++occupancy_[f];
    }
    if (!active_costs_.emplace(id, std::move(entry)).second)
      reader.fail("duplicate verifier active-request id");
  }
  reader.expect("verifier-error");
  if (reader.b()) error_ = VerificationError{reader.bytes()};
}

}  // namespace omflp
