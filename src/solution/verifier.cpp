#include "solution/verifier.hpp"

#include <cmath>
#include <sstream>

#include "perf/perf_counters.hpp"

namespace omflp {

namespace {

std::optional<VerificationError> fail(const std::string& msg) {
  return VerificationError{msg};
}

}  // namespace

std::optional<VerificationError> verify_solution(const Instance& instance,
                                                 const SolutionLedger& ledger,
                                                 double tolerance) {
  if (ledger.request_in_flight())
    return fail("ledger left a request in flight");
  if (ledger.num_requests() != instance.num_requests()) {
    std::ostringstream os;
    os << "ledger served " << ledger.num_requests() << " requests, instance has "
       << instance.num_requests();
    return fail(os.str());
  }

  const MetricSpace& metric = instance.metric();
  const FacilityCostModel& cost = instance.cost();

  // Facilities: recompute opening costs. One verifier_check per facility
  // and per request record re-derived below.
  double opening = 0.0;
  for (const OpenFacilityRecord& f : ledger.facilities()) {
    OMFLP_PERF_COUNT(verifier_checks);
    if (f.location >= metric.num_points())
      return fail("facility outside the metric space");
    if (f.config.universe_size() != cost.num_commodities())
      return fail("facility config universe mismatch");
    if (f.config.empty()) return fail("facility with empty configuration");
    const double expect = cost.open_cost(f.location, f.config);
    if (std::abs(expect - f.open_cost) > tolerance) {
      std::ostringstream os;
      os << "facility " << f.id << " open cost " << f.open_cost
         << " != model cost " << expect;
      return fail(os.str());
    }
    opening += expect;
  }
  if (std::abs(opening - ledger.opening_cost()) > tolerance * (1.0 + opening))
    return fail("total opening cost mismatch");

  // Requests: coverage, causality, connection cost.
  double connection = 0.0;
  for (RequestId i = 0; i < instance.num_requests(); ++i) {
    OMFLP_PERF_COUNT(verifier_checks);
    const Request& expected = instance.request(i);
    const RequestRecord& rec = ledger.request_records()[i];
    if (!(rec.request.location == expected.location &&
          rec.request.commodities == expected.commodities)) {
      std::ostringstream os;
      os << "request " << i << " in ledger differs from the instance";
      return fail(os.str());
    }

    CommoditySet covered(cost.num_commodities());
    for (const ServedCommodity& sc : rec.served) {
      if (sc.facility >= ledger.num_facilities())
        return fail("assignment to unknown facility");
      const OpenFacilityRecord& f = ledger.facility(sc.facility);
      if (!f.config.contains(sc.commodity))
        return fail("assigned facility does not offer the commodity");
      if (f.opened_during > i)
        return fail("causality violation: facility opened after the request "
                    "it serves");
      if (covered.contains(sc.commodity))
        return fail("commodity covered twice in one request");
      covered.add(sc.commodity);
    }
    if (!(covered == expected.commodities)) {
      std::ostringstream os;
      os << "request " << i << " not exactly covered: got "
         << covered.to_string() << ", demanded "
         << expected.commodities.to_string();
      return fail(os.str());
    }

    double expect_conn = 0.0;
    if (ledger.policy() == ConnectionChargePolicy::kPerFacility) {
      // rec.connected must be the sorted distinct facility list.
      std::vector<FacilityId> distinct;
      for (const ServedCommodity& sc : rec.served)
        distinct.push_back(sc.facility);
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      if (distinct != rec.connected)
        return fail("connected-facility list inconsistent with assignments");
      for (FacilityId f : distinct)
        expect_conn += metric.distance(expected.location,
                                       ledger.facility(f).location);
    } else {
      for (const ServedCommodity& sc : rec.served)
        expect_conn += metric.distance(expected.location,
                                       ledger.facility(sc.facility).location);
    }
    if (std::abs(expect_conn - rec.connection_cost) >
        tolerance * (1.0 + expect_conn)) {
      std::ostringstream os;
      os << "request " << i << " connection cost " << rec.connection_cost
         << " != recomputed " << expect_conn;
      return fail(os.str());
    }
    connection += expect_conn;
  }
  if (std::abs(connection - ledger.connection_cost()) >
      tolerance * (1.0 + connection))
    return fail("total connection cost mismatch");

  return std::nullopt;
}

}  // namespace omflp
