#include "offline/exact_small.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace omflp {

OfflineSolution solve_exact_small(const Instance& instance,
                                  const ExactSolverLimits& limits) {
  const std::size_t points = instance.metric().num_points();
  const CommoditySet demanded = instance.demanded_union();
  OMFLP_REQUIRE(points <= limits.max_points,
                "solve_exact_small: too many points");
  OMFLP_REQUIRE(demanded.count() <= limits.max_union,
                "solve_exact_small: demanded union too large");
  OMFLP_REQUIRE(instance.num_requests() <= limits.max_requests,
                "solve_exact_small: too many requests");

  const FacilityCostModel& cost = instance.cost();
  const CommodityId s = cost.num_commodities();
  const std::vector<CommodityId> members = demanded.to_vector();
  const std::size_t u = members.size();

  // Per-point configuration menu: none, every non-empty subset of U, and
  // (if distinct from U) the full S.
  std::vector<CommoditySet> menu;
  menu.emplace_back(s);  // "closed" sentinel: empty config
  for (std::size_t mask = 1; mask < (std::size_t{1} << u); ++mask) {
    CommoditySet sigma(s);
    for (std::size_t b = 0; b < u; ++b)
      if ((mask >> b) & 1U) sigma.add(members[b]);
    menu.push_back(std::move(sigma));
  }
  if (!CommoditySet::full_set(s).is_subset_of(demanded))
    menu.push_back(CommoditySet::full_set(s));

  OfflineSolution best;
  best.cost = std::numeric_limits<double>::infinity();

  // Depth-first cartesian product over per-point choices with opening-cost
  // pruning against the incumbent.
  std::vector<std::size_t> choice(points, 0);
  std::vector<PlacedFacility> open;

  auto evaluate_leaf = [&](double opening) {
    const double connect =
        total_assignment_cost(instance, std::span(open));
    if (!std::isfinite(connect)) return;
    const double total = opening + connect;
    if (total < best.cost) {
      best.cost = total;
      best.opening_cost = opening;
      best.connection_cost = connect;
      best.facilities = open;
    }
  };

  auto recurse = [&](auto&& self, std::size_t point,
                     double opening) -> void {
    if (opening >= best.cost) return;
    if (point == points) {
      evaluate_leaf(opening);
      return;
    }
    for (std::size_t c = 0; c < menu.size(); ++c) {
      if (menu[c].empty()) {
        self(self, point + 1, opening);
        continue;
      }
      const double f =
          cost.open_cost(static_cast<PointId>(point), menu[c]);
      if (opening + f >= best.cost) continue;
      open.push_back(PlacedFacility{static_cast<PointId>(point), menu[c]});
      self(self, point + 1, opening + f);
      open.pop_back();
    }
  };
  recurse(recurse, 0, 0.0);

  OMFLP_CHECK(std::isfinite(best.cost),
              "solve_exact_small: no feasible solution found (should be "
              "impossible: opening U everywhere is feasible)");
  best.exact = true;
  best.method = "exhaustive(one-config-per-point)";
  return best;
}

}  // namespace omflp
