#include "offline/assignment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace omflp {

std::vector<double> assignment_dp(const MetricSpace& metric,
                                  std::span<const PlacedFacility> facilities,
                                  const Request& request) {
  const std::vector<CommodityId> members = request.commodities.to_vector();
  const std::size_t k = members.size();
  OMFLP_REQUIRE(k <= 20, "assignment_dp: demand set too large");
  const std::size_t full = (std::size_t{1} << k) - 1;

  // Local coverage mask and distance of each usable facility.
  std::vector<std::pair<std::size_t, double>> usable;
  usable.reserve(facilities.size());
  for (const PlacedFacility& f : facilities) {
    std::size_t cov = 0;
    for (std::size_t b = 0; b < k; ++b)
      if (f.config.contains(members[b])) cov |= (std::size_t{1} << b);
    if (cov != 0)
      usable.emplace_back(cov, metric.distance(request.location, f.point));
  }

  std::vector<double> dp(full + 1, std::numeric_limits<double>::infinity());
  dp[0] = 0.0;
  for (std::size_t mask = 1; mask <= full; ++mask) {
    for (const auto& [cov, d] : usable) {
      if ((cov & mask) == 0) continue;
      const double candidate = dp[mask & ~cov] + d;
      if (candidate < dp[mask]) dp[mask] = candidate;
    }
  }
  return dp;
}

double optimal_assignment_cost(const MetricSpace& metric,
                               std::span<const PlacedFacility> facilities,
                               const Request& request) {
  return assignment_dp(metric, facilities, request).back();
}

double total_assignment_cost(const Instance& instance,
                             std::span<const PlacedFacility> facilities) {
  double total = 0.0;
  for (const Request& r : instance.requests()) {
    const double c = optimal_assignment_cost(instance.metric(), facilities, r);
    if (!std::isfinite(c)) return kInfiniteDistance;
    total += c;
  }
  return total;
}

}  // namespace omflp
