// OPT estimation front-end used by the competitive-ratio harness.
//
// Picks the strongest offline bound available for an instance:
//   1. exact generator certificate (adversarial instances know OPT);
//   2. exact single-point solver (Theorem 2 setting);
//   3. exhaustive exact solver when the instance fits its limits;
//   4. otherwise min(local search, inexact certificate) — an upper bound
//      on OPT, making measured ratios conservative *under*-estimates,
//      which is the safe direction when validating upper-bound theorems.
#pragma once

#include <string>

#include "instance/instance.hpp"
#include "offline/exact_small.hpp"
#include "offline/local_search.hpp"

namespace omflp {

struct OptEstimate {
  double cost = 0.0;
  bool exact = false;
  std::string method;
};

struct OptEstimateOptions {
  ExactSolverLimits exact_limits;
  LocalSearchOptions local_search;
  /// Skip the (possibly slow) heuristic solvers and rely on certificates /
  /// exact solvers only; throws if neither applies.
  bool allow_local_search = true;
  /// Also run the greedy-star solver and keep the better bound.
  bool use_greedy_star = true;
};

OptEstimate estimate_opt(const Instance& instance,
                         const OptEstimateOptions& options = {});

}  // namespace omflp
