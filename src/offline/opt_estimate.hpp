// OPT estimation front-end used by the competitive-ratio harness.
//
// Picks the strongest offline bound available for an instance:
//   1. exact generator certificate (adversarial instances know OPT);
//   2. exact single-point solver (Theorem 2 setting);
//   3. exhaustive exact solver when the instance fits its limits;
//   4. otherwise min(local search, inexact certificate) — an upper bound
//      on OPT, making measured ratios conservative *under*-estimates,
//      which is the safe direction when validating upper-bound theorems.
//
// Independently of the upper estimate, the bound layer (src/bound/)
// supplies a *certified lower bound*: when an exact value is known the
// lower equals it; otherwise the dual-ascent bounder runs and its
// certificate is verified before the value is trusted. cost/lower then
// brackets any measured ratio from the safe (over-estimating) side. On
// exactly-solved instances the dual bound is additionally cross-checked
// against OPT — a certificate exceeding the exact optimum is a soundness
// bug and throws.
#pragma once

#include <string>

#include "instance/instance.hpp"
#include "offline/exact_small.hpp"
#include "offline/local_search.hpp"

namespace omflp {

struct OptEstimate {
  /// Upper estimate of OPT (exact value when `exact`).
  double cost = 0.0;
  bool exact = false;
  std::string method;
  /// Certified lower bound on OPT: `cost` itself when exact, else a
  /// verified dual-ascent / chunked bound, else 0 (trivially valid) when
  /// the bounder does not support the instance's cost structure.
  double lower = 0.0;
  /// True unless the bounder was unsupported AND no exact value exists
  /// (the 0 fallback is valid but vacuous).
  bool lower_certified = false;
  std::string lower_method = "none";
};

struct OptEstimateOptions {
  ExactSolverLimits exact_limits;
  LocalSearchOptions local_search;
  /// Skip the (possibly slow) heuristic solvers and rely on certificates /
  /// exact solvers only; throws if neither applies.
  bool allow_local_search = true;
  /// Also run the greedy-star solver and keep the better bound.
  bool use_greedy_star = true;
  /// Attach a certified lower bound (see OptEstimate::lower). Off by
  /// default: the dual ascent costs more than the heuristics it brackets,
  /// so only ratio-reporting paths opt in.
  bool compute_lower = false;
  /// Requests per chunk when the instance is too large to bound whole.
  std::size_t lower_chunk_arrivals = 4096;
};

OptEstimate estimate_opt(const Instance& instance,
                         const OptEstimateOptions& options = {});

}  // namespace omflp
