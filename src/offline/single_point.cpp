#include "offline/single_point.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "support/assert.hpp"

namespace omflp {

namespace {

double cover_size_only(const FacilityCostModel& cost, PointId m,
                       CommodityId target_size) {
  const CommodityId s = cost.num_commodities();
  // best[t]: cheapest way to cover t (interchangeable) commodities.
  std::vector<double> best(target_size + 1,
                           std::numeric_limits<double>::infinity());
  best[0] = 0.0;
  std::vector<double> g(s + 1);
  for (CommodityId k = 1; k <= s; ++k) {
    const auto v = cost.cost_by_size(m, k);
    OMFLP_CHECK(v.has_value(), "cover_size_only: model lost size-only-ness");
    g[k] = *v;
  }
  for (CommodityId t = 1; t <= target_size; ++t)
    for (CommodityId k = 1; k <= s; ++k) {
      const CommodityId rest = k >= t ? 0 : t - k;
      best[t] = std::min(best[t], g[k] + best[rest]);
    }
  return best[target_size];
}

double cover_general(const FacilityCostModel& cost, PointId m,
                     const CommoditySet& target) {
  const std::vector<CommodityId> members = target.to_vector();
  const std::size_t k = members.size();
  OMFLP_REQUIRE(k <= 20,
                "single_point_cover_cost: general costs need |target| <= 20");
  const std::size_t full = (std::size_t{1} << k) - 1;

  // Price every subset of the target (2^k cost-model calls).
  std::vector<double> f(full + 1, 0.0);
  for (std::size_t mask = 1; mask <= full; ++mask) {
    CommoditySet sigma(cost.num_commodities());
    for (std::size_t b = 0; b < k; ++b)
      if ((mask >> b) & 1U) sigma.add(members[b]);
    f[mask] = cost.open_cost(m, sigma);
  }

  std::vector<double> dp(full + 1,
                         std::numeric_limits<double>::infinity());
  dp[0] = 0.0;
  for (std::size_t mask = 1; mask <= full; ++mask) {
    // Iterate submasks; covering more than needed never helps for
    // monotone costs, so exact submasks suffice.
    for (std::size_t sub = mask; sub != 0; sub = (sub - 1) & mask)
      dp[mask] = std::min(dp[mask], f[sub] + dp[mask & ~sub]);
  }
  return dp[full];
}

}  // namespace

double single_point_cover_cost(const FacilityCostModel& cost, PointId m,
                               const CommoditySet& target) {
  OMFLP_REQUIRE(target.universe_size() == cost.num_commodities(),
                "single_point_cover_cost: universe mismatch");
  if (target.empty()) return 0.0;
  if (cost.cost_by_size(m, 1).has_value())
    return cover_size_only(cost, m, target.count());
  return cover_general(cost, m, target);
}

double solve_single_point_instance(const Instance& instance) {
  OMFLP_REQUIRE(instance.num_requests() > 0,
                "solve_single_point_instance: empty instance");
  const PointId loc = instance.request(0).location;
  for (const Request& r : instance.requests())
    OMFLP_REQUIRE(r.location == loc,
                  "solve_single_point_instance: requests at multiple points");
  return single_point_cover_cost(instance.cost(), loc,
                                 instance.demanded_union());
}

}  // namespace omflp
