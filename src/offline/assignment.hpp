// Exact per-request assignment against a fixed facility set.
//
// Given open facilities, the cheapest way to serve one request is a
// weighted set-cover over its demand set: facility (m, σ) covers
// σ ∩ s_r at price d(m, r), charged once per facility (the paper's
// shared-path connection model). Demand sets are small (|s_r| ≤ ~16), so
// an exact DP over the 2^{|s_r|} submasks is cheap; every offline solver
// uses it, which makes offline costs exact *given* the facility set.
#pragma once

#include <span>
#include <vector>

#include "instance/instance.hpp"

namespace omflp {

struct PlacedFacility {
  PointId point = 0;
  CommoditySet config;
};

/// dp[mask] = cheapest cost to cover the submask `mask` of the request's
/// demand set (bit b of mask = b-th smallest commodity in s_r).
/// Returns the full DP table; dp.back() is the request's optimal
/// connection cost (infinity if the facilities cannot cover s_r).
/// Requires |s_r| <= 20.
std::vector<double> assignment_dp(const MetricSpace& metric,
                                  std::span<const PlacedFacility> facilities,
                                  const Request& request);

/// Convenience: just the optimal connection cost for the request.
double optimal_assignment_cost(const MetricSpace& metric,
                               std::span<const PlacedFacility> facilities,
                               const Request& request);

/// Total connection cost over all requests of the instance (infinity if
/// any request cannot be covered).
double total_assignment_cost(const Instance& instance,
                             std::span<const PlacedFacility> facilities);

}  // namespace omflp
