#include "offline/greedy_star.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "support/assert.hpp"

namespace omflp {

namespace {

struct Candidate {
  PointId point = 0;
  CommoditySet config;
  double open_cost = 0.0;
};

std::vector<Candidate> build_candidates(const Instance& instance,
                                        const GreedyStarOptions& options) {
  std::vector<PointId> points;
  const std::size_t m = instance.metric().num_points();
  if (m <= options.all_points_limit) {
    points.resize(m);
    for (PointId p = 0; p < m; ++p) points[p] = p;
  } else {
    std::unordered_set<PointId> seen;
    for (const Request& r : instance.requests())
      if (seen.insert(r.location).second) points.push_back(r.location);
    std::sort(points.begin(), points.end());
  }

  const CommodityId s = instance.num_commodities();
  const CommoditySet demanded = instance.demanded_union();
  // Determinism audit (omflp-lint nondet-iteration): both unordered
  // containers in this function are dedup sets only — their contents are
  // copied into vectors and sorted before any order-dependent use.
  std::unordered_set<CommoditySet, CommoditySetHash> configs;
  demanded.for_each([&](CommodityId e) {
    configs.insert(CommoditySet::singleton(s, e));
  });
  for (const Request& r : instance.requests()) configs.insert(r.commodities);
  configs.insert(demanded);
  configs.insert(CommoditySet::full_set(s));
  std::vector<CommoditySet> config_list(configs.begin(), configs.end());
  std::sort(config_list.begin(), config_list.end(),
            [](const CommoditySet& a, const CommoditySet& b) {
              if (a.count() != b.count()) return a.count() < b.count();
              return a.to_vector() < b.to_vector();
            });

  std::vector<Candidate> candidates;
  candidates.reserve(points.size() * config_list.size());
  for (PointId p : points)
    for (const CommoditySet& config : config_list)
      candidates.push_back(
          Candidate{p, config, instance.cost().open_cost(p, config)});
  return candidates;
}

}  // namespace

OfflineSolution solve_greedy_star(const Instance& instance,
                                  const GreedyStarOptions& options) {
  OMFLP_REQUIRE(instance.num_requests() > 0,
                "solve_greedy_star: empty instance");
  const std::vector<Candidate> candidates =
      build_candidates(instance, options);

  // Uncovered (request, commodity) pairs, tracked per request.
  std::vector<CommoditySet> uncovered;
  uncovered.reserve(instance.num_requests());
  std::size_t open_pairs = 0;
  for (const Request& r : instance.requests()) {
    uncovered.push_back(r.commodities);
    open_pairs += r.commodities.count();
  }

  std::vector<PlacedFacility> opened;
  while (open_pairs > 0) {
    double best_ratio = std::numeric_limits<double>::infinity();
    const Candidate* best_candidate = nullptr;
    std::size_t best_prefix = 0;

    struct Gain {
      double unit_cost;   // d(m, r) / covered
      double distance;
      std::size_t covered;
      std::size_t request;
    };
    auto gains_for = [&](const Candidate& c) {
      // Requests gaining coverage from this candidate, cheapest first by
      // distance per newly covered commodity.
      std::vector<Gain> gains;
      for (std::size_t i = 0; i < uncovered.size(); ++i) {
        const CommoditySet newly = uncovered[i] & c.config;
        if (newly.empty()) continue;
        const double d = instance.metric().distance(
            instance.request(i).location, c.point);
        const std::size_t covered = newly.count();
        gains.push_back(
            Gain{d / static_cast<double>(covered), d, covered, i});
      }
      std::sort(gains.begin(), gains.end(),
                [](const Gain& a, const Gain& b) {
                  if (a.unit_cost != b.unit_cost)
                    return a.unit_cost < b.unit_cost;
                  return a.request < b.request;
                });
      return gains;
    };

    for (const Candidate& c : candidates) {
      const std::vector<Gain> gains = gains_for(c);
      if (gains.empty()) continue;
      double cost_acc = c.open_cost;
      std::size_t covered_acc = 0;
      for (std::size_t prefix = 0; prefix < gains.size(); ++prefix) {
        cost_acc += gains[prefix].distance;
        covered_acc += gains[prefix].covered;
        const double ratio = cost_acc / static_cast<double>(covered_acc);
        if (ratio < best_ratio) {
          best_ratio = ratio;
          best_candidate = &c;
          best_prefix = prefix + 1;
        }
      }
    }
    OMFLP_CHECK(best_candidate != nullptr,
                "solve_greedy_star: no candidate covers remaining pairs "
                "(full-S candidates make this impossible)");

    // Open the chosen facility (merging with an existing one at the same
    // point — subadditivity makes the union no more expensive) and cover
    // exactly the chosen prefix's pairs. Requests beyond the prefix stay
    // open: covering them here would strand them on a distant facility
    // that was never priced for them.
    bool merged = false;
    for (PlacedFacility& f : opened) {
      if (f.point == best_candidate->point) {
        f.config |= best_candidate->config;
        merged = true;
        break;
      }
    }
    if (!merged)
      opened.push_back(
          PlacedFacility{best_candidate->point, best_candidate->config});
    const std::vector<Gain> chosen = gains_for(*best_candidate);
    OMFLP_CHECK(best_prefix <= chosen.size(),
                "solve_greedy_star: stale prefix");
    for (std::size_t p = 0; p < best_prefix; ++p) {
      const std::size_t i = chosen[p].request;
      const CommoditySet newly = uncovered[i] & best_candidate->config;
      open_pairs -= newly.count();
      uncovered[i] -= newly;
    }
  }

  OfflineSolution solution;
  solution.facilities = std::move(opened);
  solution.opening_cost = 0.0;
  for (const PlacedFacility& f : solution.facilities)
    solution.opening_cost +=
        instance.cost().open_cost(f.point, f.config);
  solution.connection_cost =
      total_assignment_cost(instance, std::span(solution.facilities));
  OMFLP_CHECK(std::isfinite(solution.connection_cost),
              "solve_greedy_star: produced an infeasible facility set");
  solution.cost = solution.opening_cost + solution.connection_cost;
  solution.exact = false;
  solution.method = "greedy-star";
  return solution;
}

}  // namespace omflp
