// Local-search offline solver — the workhorse OPT upper bound for
// benchmark-scale instances (computing true OPT is NP-hard via weighted
// set cover, Ravi–Sinha 2004).
//
// Solution representation: a set of placed facilities; assignments are
// always *exactly* optimal for the current facility set (set-cover DP per
// request, offline/assignment.hpp), so the search only has to explore
// facility sets.
//
// Candidate pool: (point, configuration) pairs with configurations drawn
// from the structures an optimum plausibly uses — singletons of the
// demanded union, the distinct request demand sets, the demanded union
// itself, and the full S; points are all points of small spaces or the
// distinct request locations of large ones.
//
// Moves, best-improvement per round until a fixpoint or the round limit:
//   * add a candidate facility (delta-evaluated in O(2^{|s_r|}) per
//     request using the cached per-request DP tables);
//   * drop an open facility;
//   * merge all facilities at one point into their union (free
//     improvement under subadditivity).
// The result is an upper bound on OPT; tests check it against the exact
// solver on tiny instances and generators' certificates.
#pragma once

#include "instance/instance.hpp"
#include "offline/exact_small.hpp"

namespace omflp {

struct LocalSearchOptions {
  std::size_t max_rounds = 50;
  /// Point pool switches from "all points" to "request locations" above
  /// this |M|.
  std::size_t all_points_limit = 96;
};

OfflineSolution solve_local_search(const Instance& instance,
                                   const LocalSearchOptions& options = {});

}  // namespace omflp
