// Exact offline optimum on a single point.
//
// When every request sits at the same point (the Theorem 2 setting),
// connection costs vanish and OPT reduces to a weighted set-cover over the
// union U of demanded commodities with weights f^σ at that point:
//
//   OPT = min over facility multisets {σ_1, ..., σ_p} with ∪ σ_i ⊇ U of
//         Σ f^{σ_i}.
//
// Two exact algorithms:
//   * size-only costs (cost_by_size defined): covering t commodities costs
//     best[t] = min_k g(k) + best[t − k] — O(t·|S|) DP (configurations can
//     always be relabelled onto uncovered commodities when only |σ|
//     matters);
//   * general costs: DP over subsets of U, cost[mask] = min over non-empty
//     submasks σ of f(σ) + cost[mask \ σ] — O(3^|U|), |U| ≤ 20 enforced.
//     Exact for monotone cost models (f^a ≤ f^b for a ⊆ b): dropping the
//     commodities outside U from any facility never raises its cost.
#pragma once

#include "cost/cost_model.hpp"
#include "instance/instance.hpp"

namespace omflp {

/// Minimum total opening cost of covering `target` with facilities at
/// point m. Exact; see the header comment for the domain restrictions.
double single_point_cover_cost(const FacilityCostModel& cost, PointId m,
                               const CommoditySet& target);

/// Exact OPT for an instance whose requests are all at one point.
/// Throws if the instance has requests at more than one location.
double solve_single_point_instance(const Instance& instance);

}  // namespace omflp
