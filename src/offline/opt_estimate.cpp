#include "offline/opt_estimate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "bound/dual_ascent.hpp"
#include "bound/window.hpp"
#include "offline/greedy_star.hpp"
#include "offline/single_point.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

bool all_requests_at_one_point(const Instance& instance) {
  if (instance.num_requests() == 0) return false;
  const PointId loc = instance.request(0).location;
  for (const Request& r : instance.requests())
    if (r.location != loc) return false;
  return true;
}

bool fits_exact_limits(const Instance& instance,
                       const ExactSolverLimits& limits) {
  return instance.metric().num_points() <= limits.max_points &&
         instance.demanded_union().count() <= limits.max_union &&
         instance.num_requests() <= limits.max_requests;
}

// Attaches the certified lower bound (OptEstimate::lower). On exact
// estimates the lower bound IS the exact value — and the dual-ascent
// certificate, when the bounder supports the instance, is cross-checked
// against it: weak duality guarantees LB ≤ OPT, so a violation is a
// soundness bug in the bounder or the exact solver and throws rather
// than silently reporting an invalid bracket.
void attach_lower(const Instance& instance, const OptEstimateOptions& options,
                  OptEstimate& est) {
  if (est.exact) {
    est.lower = est.cost;
    est.lower_certified = true;
    est.lower_method = est.method;
    if (!options.compute_lower) return;
    try {
      const DualAscentResult res = dual_ascent_lower_bound(instance);
      if (const auto violation = verify_certificate(instance, res.certificate))
        throw std::logic_error(
            "estimate_opt: dual certificate failed verification: " +
            *violation);
      const double tol = 1e-9 * std::max(1.0, std::abs(est.cost));
      if (res.lower_bound > est.cost + tol) {
        std::ostringstream os;
        os << "estimate_opt: dual lower bound " << res.lower_bound
           << " exceeds exact OPT " << est.cost
           << " — weak duality violated (bounder or exact solver bug)";
        throw std::logic_error(os.str());
      }
    } catch (const BoundUnsupportedError&) {
      // Cost structure outside the bounder's scope; the exact value still
      // certifies itself.
    }
    return;
  }
  if (!options.compute_lower) return;
  WindowBoundOptions wopt;
  wopt.max_window_arrivals = options.lower_chunk_arrivals;
  try {
    const ChunkedBound chunked = bound_instance_chunked(instance, wopt);
    est.lower = chunked.lower;
    est.lower_certified = true;
    est.lower_method =
        chunked.chunks == 1 ? "dual-ascent"
                            : "dual-ascent/chunked(" +
                                  std::to_string(chunked.chunks) + ")";
  } catch (const BoundUnsupportedError&) {
    est.lower = 0.0;
    est.lower_certified = false;
    est.lower_method = "unsupported";
  }
  if (est.lower > est.cost) {
    std::ostringstream os;
    os << "estimate_opt: certified lower bound " << est.lower
       << " exceeds the upper estimate " << est.cost << " (" << est.method
       << ") — the upper-bound solver produced an infeasible cost";
    throw std::logic_error(os.str());
  }
}

}  // namespace

OptEstimate estimate_opt(const Instance& instance,
                         const OptEstimateOptions& options) {
  OMFLP_REQUIRE(instance.num_requests() > 0, "estimate_opt: empty instance");

  OptEstimate est;
  const auto& cert = instance.opt_certificate();
  if (cert && cert->exact) {
    est = OptEstimate{cert->upper_bound, true, "certificate(exact)"};
    attach_lower(instance, options, est);
    return est;
  }

  if (all_requests_at_one_point(instance)) {
    const CommoditySet demanded = instance.demanded_union();
    const bool size_only =
        instance.cost().cost_by_size(instance.request(0).location, 1)
            .has_value();
    if (size_only || demanded.count() <= 20) {
      est = OptEstimate{solve_single_point_instance(instance), true,
                        "single-point-dp"};
      attach_lower(instance, options, est);
      return est;
    }
  }

  if (fits_exact_limits(instance, options.exact_limits)) {
    const OfflineSolution sol =
        solve_exact_small(instance, options.exact_limits);
    est = OptEstimate{sol.cost, sol.exact, sol.method};
    attach_lower(instance, options, est);
    return est;
  }

  OMFLP_REQUIRE(options.allow_local_search || cert.has_value(),
                "estimate_opt: no applicable bound (local search disabled "
                "and no certificate)");

  OptEstimate best;
  best.cost = kInfiniteDistance;
  if (options.allow_local_search) {
    const OfflineSolution sol =
        solve_local_search(instance, options.local_search);
    best = OptEstimate{sol.cost, sol.exact, sol.method};
    if (options.use_greedy_star) {
      const OfflineSolution greedy = solve_greedy_star(instance);
      if (greedy.cost < best.cost)
        best = OptEstimate{greedy.cost, greedy.exact, greedy.method};
    }
  }
  if (cert && cert->upper_bound < best.cost)
    best = OptEstimate{cert->upper_bound, false, "certificate(upper-bound)"};
  attach_lower(instance, options, best);
  return best;
}

}  // namespace omflp
