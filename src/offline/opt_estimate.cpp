#include "offline/opt_estimate.hpp"

#include <algorithm>

#include "offline/greedy_star.hpp"
#include "offline/single_point.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

bool all_requests_at_one_point(const Instance& instance) {
  if (instance.num_requests() == 0) return false;
  const PointId loc = instance.request(0).location;
  for (const Request& r : instance.requests())
    if (r.location != loc) return false;
  return true;
}

bool fits_exact_limits(const Instance& instance,
                       const ExactSolverLimits& limits) {
  return instance.metric().num_points() <= limits.max_points &&
         instance.demanded_union().count() <= limits.max_union &&
         instance.num_requests() <= limits.max_requests;
}

}  // namespace

OptEstimate estimate_opt(const Instance& instance,
                         const OptEstimateOptions& options) {
  OMFLP_REQUIRE(instance.num_requests() > 0, "estimate_opt: empty instance");

  const auto& cert = instance.opt_certificate();
  if (cert && cert->exact)
    return OptEstimate{cert->upper_bound, true, "certificate(exact)"};

  if (all_requests_at_one_point(instance)) {
    const CommoditySet demanded = instance.demanded_union();
    const bool size_only =
        instance.cost().cost_by_size(instance.request(0).location, 1)
            .has_value();
    if (size_only || demanded.count() <= 20) {
      return OptEstimate{solve_single_point_instance(instance), true,
                         "single-point-dp"};
    }
  }

  if (fits_exact_limits(instance, options.exact_limits)) {
    const OfflineSolution sol =
        solve_exact_small(instance, options.exact_limits);
    return OptEstimate{sol.cost, true, sol.method};
  }

  OMFLP_REQUIRE(options.allow_local_search || cert.has_value(),
                "estimate_opt: no applicable bound (local search disabled "
                "and no certificate)");

  OptEstimate best;
  best.cost = kInfiniteDistance;
  if (options.allow_local_search) {
    const OfflineSolution sol =
        solve_local_search(instance, options.local_search);
    best = OptEstimate{sol.cost, false, sol.method};
    if (options.use_greedy_star) {
      const OfflineSolution greedy = solve_greedy_star(instance);
      if (greedy.cost < best.cost)
        best = OptEstimate{greedy.cost, false, greedy.method};
    }
  }
  if (cert && cert->upper_bound < best.cost)
    best = OptEstimate{cert->upper_bound, false, "certificate(upper-bound)"};
  return best;
}

}  // namespace omflp
