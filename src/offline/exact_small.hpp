// Exhaustive exact offline solver for tiny instances.
//
// Key structural fact (subadditive costs, the paper's §1.1 WLOG): an
// optimal solution never opens two facilities at the same point — merging
// them into their union costs no more to open (subadditivity) and no more
// to connect (a request connected to both paid the distance twice). So
// OPT is described by *one configuration per point* (possibly none), and
// the solver enumerates the cartesian product of per-point configuration
// choices, pricing assignments exactly with the set-cover DP.
//
// Candidate configurations per point: every non-empty subset of the
// demanded union U, plus the full S (which covers non-monotone costs
// where offering more is cheaper). Exact for subadditive cost models —
// which is every model in this library, and WLOG for the problem itself.
//
// Complexity: (2^|U| + 2)^|M| assignment evaluations in the worst case;
// the limits keep that around a few million.
#pragma once

#include <string>
#include <vector>

#include "instance/instance.hpp"
#include "offline/assignment.hpp"

namespace omflp {

struct OfflineSolution {
  double cost = 0.0;
  double opening_cost = 0.0;
  double connection_cost = 0.0;
  std::vector<PlacedFacility> facilities;
  bool exact = false;
  std::string method;
};

struct ExactSolverLimits {
  std::size_t max_points = 4;
  CommodityId max_union = 5;    // |U|
  std::size_t max_requests = 24;
};

/// Throws if the instance exceeds the limits.
OfflineSolution solve_exact_small(const Instance& instance,
                                  const ExactSolverLimits& limits = {});

}  // namespace omflp
