#include "offline/local_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_set>

#include "support/assert.hpp"

namespace omflp {

namespace {

struct Pools {
  std::vector<PointId> points;
  std::vector<CommoditySet> configs;
};

Pools build_pools(const Instance& instance,
                  const LocalSearchOptions& options) {
  Pools pools;
  const std::size_t m = instance.metric().num_points();
  if (m <= options.all_points_limit) {
    pools.points.resize(m);
    for (PointId p = 0; p < m; ++p) pools.points[p] = p;
  } else {
    std::unordered_set<PointId> seen;
    for (const Request& r : instance.requests())
      if (seen.insert(r.location).second)
        pools.points.push_back(r.location);
    std::sort(pools.points.begin(), pools.points.end());
  }

  const CommodityId s = instance.num_commodities();
  const CommoditySet demanded = instance.demanded_union();
  std::unordered_set<CommoditySet, CommoditySetHash> configs;
  demanded.for_each([&](CommodityId e) {
    configs.insert(CommoditySet::singleton(s, e));
  });
  for (const Request& r : instance.requests())
    configs.insert(r.commodities);
  configs.insert(demanded);
  configs.insert(CommoditySet::full_set(s));
  pools.configs.assign(configs.begin(), configs.end());
  // Deterministic order (unordered_set iteration order is unspecified).
  std::sort(pools.configs.begin(), pools.configs.end(),
            [](const CommoditySet& a, const CommoditySet& b) {
              if (a.count() != b.count()) return a.count() < b.count();
              return a.to_vector() < b.to_vector();
            });
  return pools;
}

class SearchState {
 public:
  explicit SearchState(const Instance& instance) : instance_(instance) {}

  void set_facilities(std::vector<PlacedFacility> facilities) {
    facilities_ = std::move(facilities);
    rebuild();
  }

  const std::vector<PlacedFacility>& facilities() const {
    return facilities_;
  }
  double opening_cost() const { return opening_; }
  double connection_cost() const { return connection_; }
  double total_cost() const { return opening_ + connection_; }

  /// Cost delta of adding facility f (negative = improvement), computed
  /// from the cached DP tables in O(n·2^k) without rebuilding.
  double add_delta(const PlacedFacility& f) const {
    double delta = instance_.cost().open_cost(f.point, f.config);
    for (std::size_t i = 0; i < instance_.num_requests(); ++i) {
      const Request& r = instance_.request(i);
      const std::vector<double>& dp = dp_tables_[i];
      const std::vector<CommodityId>& members = members_[i];
      std::size_t cov = 0;
      for (std::size_t b = 0; b < members.size(); ++b)
        if (f.config.contains(members[b])) cov |= (std::size_t{1} << b);
      if (cov == 0) continue;
      const double d = instance_.metric().distance(r.location, f.point);
      const std::size_t full = dp.size() - 1;
      // Optimal cover using the new facility at most once.
      const double with_f = dp[full & ~cov] + d;
      if (with_f < dp[full]) delta += with_f - dp[full];
    }
    return delta;
  }

  /// Cost delta of dropping facility index fi (infinity if infeasible).
  double drop_delta(std::size_t fi) const {
    std::vector<PlacedFacility> reduced = facilities_;
    reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(fi));
    const double connect =
        total_assignment_cost(instance_, std::span(reduced));
    if (!std::isfinite(connect)) return kInfiniteDistance;
    const double opening =
        opening_ - instance_.cost().open_cost(facilities_[fi].point,
                                              facilities_[fi].config);
    return opening + connect - total_cost();
  }

 private:
  void rebuild() {
    opening_ = 0.0;
    for (const PlacedFacility& f : facilities_)
      opening_ += instance_.cost().open_cost(f.point, f.config);
    connection_ = 0.0;
    dp_tables_.clear();
    members_.clear();
    dp_tables_.reserve(instance_.num_requests());
    members_.reserve(instance_.num_requests());
    for (const Request& r : instance_.requests()) {
      dp_tables_.push_back(
          assignment_dp(instance_.metric(), std::span(facilities_), r));
      members_.push_back(r.commodities.to_vector());
      connection_ += dp_tables_.back().back();
    }
  }

  const Instance& instance_;
  std::vector<PlacedFacility> facilities_;
  std::vector<std::vector<double>> dp_tables_;
  std::vector<std::vector<CommodityId>> members_;
  double opening_ = 0.0;
  double connection_ = 0.0;
};

std::vector<PlacedFacility> initial_solution(const Instance& instance) {
  // One facility per distinct request location holding the union of
  // demands seen there — feasible and a natural starting point. A
  // std::map keeps the accumulation pass itself in sorted point order
  // (the facility list seeds the deterministic search).
  std::map<PointId, CommoditySet> unions;
  for (const Request& r : instance.requests()) {
    auto [it, inserted] = unions.emplace(r.location, r.commodities);
    if (!inserted) it->second |= r.commodities;
  }
  std::vector<PlacedFacility> facilities;
  facilities.reserve(unions.size());
  for (const auto& [point, config] : unions)
    facilities.push_back(PlacedFacility{point, config});
  return facilities;
}

}  // namespace

OfflineSolution solve_local_search(const Instance& instance,
                                   const LocalSearchOptions& options) {
  OMFLP_REQUIRE(instance.num_requests() > 0,
                "solve_local_search: empty instance");
  const Pools pools = build_pools(instance, options);
  SearchState state(instance);
  state.set_facilities(initial_solution(instance));

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    double best_delta = -1e-9;  // strict improvement only
    enum class Kind { kNone, kAdd, kDrop } kind = Kind::kNone;
    PlacedFacility best_add;
    std::size_t best_drop = 0;

    for (PointId p : pools.points) {
      for (const CommoditySet& config : pools.configs) {
        const PlacedFacility candidate{p, config};
        const double delta = state.add_delta(candidate);
        if (delta < best_delta) {
          best_delta = delta;
          kind = Kind::kAdd;
          best_add = candidate;
        }
      }
    }
    for (std::size_t fi = 0; fi < state.facilities().size(); ++fi) {
      const double delta = state.drop_delta(fi);
      if (delta < best_delta) {
        best_delta = delta;
        kind = Kind::kDrop;
        best_drop = fi;
      }
    }

    if (kind == Kind::kNone) break;
    std::vector<PlacedFacility> next = state.facilities();
    if (kind == Kind::kAdd) {
      next.push_back(best_add);
      // Merge with an existing facility at the same point (subadditivity
      // makes the union at most as expensive; assignments only improve).
      for (std::size_t i = 0; i + 1 < next.size(); ++i) {
        if (next[i].point == best_add.point) {
          next[i].config |= best_add.config;
          next.pop_back();
          break;
        }
      }
    } else {
      next.erase(next.begin() + static_cast<std::ptrdiff_t>(best_drop));
    }
    state.set_facilities(std::move(next));
  }

  OfflineSolution solution;
  solution.cost = state.total_cost();
  solution.opening_cost = state.opening_cost();
  solution.connection_cost = state.connection_cost();
  solution.facilities = state.facilities();
  solution.exact = false;
  solution.method = "local-search";
  return solution;
}

}  // namespace omflp
