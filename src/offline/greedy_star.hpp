// Greedy star solver — the offline MFLP approximation in the spirit of
// Ravi–Sinha (SODA 2004), who obtained an O(log |S|) approximation via
// greedy set-cover over "stars".
//
// A star is a facility (m, σ) together with a set of requests it serves;
// its cost is f^σ_m plus the connection distances, its value the number
// of (request, commodity) pairs it newly covers. The greedy repeatedly
// opens the star with the best cost-per-covered-pair ratio until every
// pair is covered, then recomputes the final assignment exactly (the
// greedy's serving sets are only used for selection).
//
// Restriction (documented deviation): Ravi–Sinha search over all σ ⊆ S
// via a subroutine; we restrict candidate configurations to the
// structures an optimum plausibly uses — singletons of the demanded
// union, the distinct request demand sets, the union itself and the full
// S — the same pool as the local-search solver. The result is an OPT
// upper bound used for cross-checking local search and for benches; the
// exact solvers remain the ground truth on tiny instances.
#pragma once

#include "instance/instance.hpp"
#include "offline/exact_small.hpp"

namespace omflp {

struct GreedyStarOptions {
  /// Point pool switches from "all points" to "request locations" above
  /// this |M| (same convention as local search).
  std::size_t all_points_limit = 96;
};

OfflineSolution solve_greedy_star(const Instance& instance,
                                  const GreedyStarOptions& options = {});

}  // namespace omflp
