// StreamScenarioRegistry — named, parameterized dynamic-workload
// factories, the EventStream counterpart of ScenarioRegistry.
//
// A stream scenario turns (parameters, seed) into a self-contained
// EventStream — arrivals, explicit departures and leases — so dynamic
// runs are exactly as reproducible as static ones. The registries share
// the ScenarioParams machinery (declaration, defaults, strict override
// resolution).
//
// default_stream_scenario_registry() ships four built-in families — the
// deletion-model workloads of Cygan–Czumaj–Jiang–Krauthgamer / Markarian
// et al. plus a planar hotspot workload:
//   * churn-uniform    — uniform-line arrivals with a churn-heavy
//                        departure process (each event deletes a random
//                        active request with probability `churn`);
//   * adversarial-churn — insert-then-delete phases echoing the Figure 1
//                        / Theorem 2 game: each phase replays the
//                        adversarial sequence, then deletes everything
//                        but its last request, so the surviving set (and
//                        OPT on it) stays tiny while the algorithm keeps
//                        paying;
//   * lease-poisson    — pure lease-expiry traffic: every event is an
//                        arrival with a memoryless (exponential) lease,
//                        the stream analogue of Poisson call durations;
//   * hotspot-grid     — arrivals on a 2-D Euclidean grid clustered
//                        around Zipf-weighted hotspots, with both churn
//                        deletions and optional exponential leases (the
//                        planar "city traffic" shape).
//
// The bottom half of this header is the **workload-mix** layer consumed
// by the sharded serving engine (engine/sharded_engine.hpp): a TenantSpec
// names one tenant's (stream scenario, overrides, seed, algorithm), a
// WorkloadMixSpec is a named recipe of weighted tenant profiles with a
// Zipf hotness exponent, and WorkloadMixRegistry::tenants() expands a mix
// into K concrete tenant specs — heterogeneous scenarios, metrics and
// churn profiles, with per-tenant volume skewed so the first few tenants
// (and therefore the first few shards under round-robin placement) carry
// most of the traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "instance/event_stream.hpp"
#include "scenario/scenario_registry.hpp"

namespace omflp {

struct StreamScenarioSpec {
  std::string name;
  std::string description;
  std::vector<ScenarioParam> params;
  std::function<EventStream(const ScenarioParams&, std::uint64_t seed)>
      make;
};

class StreamScenarioRegistry {
 public:
  /// Registers a scenario; throws std::invalid_argument on an empty or
  /// duplicate name or a missing factory.
  void add(StreamScenarioSpec spec);

  bool contains(const std::string& name) const;
  /// Throws std::invalid_argument listing the known names when absent.
  const StreamScenarioSpec& spec(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return specs_.size(); }

  /// Instantiate: merge `overrides` into the declared defaults (throwing
  /// on an undeclared override) and invoke the factory. Deterministic in
  /// (name, overrides, seed); the returned stream is validated.
  EventStream make(const std::string& name, std::uint64_t seed,
                   const std::map<std::string, double>& overrides = {}) const;

 private:
  std::map<std::string, StreamScenarioSpec> specs_;
};

/// The registry with every built-in dynamic workload registered (shared,
/// initialized on first use, safe for concurrent readers).
const StreamScenarioRegistry& default_stream_scenario_registry();

// ---------------------------------------------------------------- mixes ---

/// One tenant of a multi-tenant serving run: which stream scenario it
/// plays, with which overrides and seed, and which algorithm serves it.
/// The engine treats each tenant as a fully independent session.
struct TenantSpec {
  std::string name;      // unique display name, e.g. "t03-lease-poisson"
  std::string scenario;  // StreamScenarioRegistry name
  std::map<std::string, double> overrides;
  std::uint64_t seed = 1;
  std::string algorithm = "pd";  // AlgorithmRegistry name
};

/// One weighted entry of a workload mix. `size_param` is the scenario
/// override that scales the tenant's volume (usually "events"; "phases"
/// for adversarial-churn), set to `base_size` for the hottest tenant and
/// Zipf-decayed for colder ones (never below `min_size`).
struct TenantProfile {
  std::string scenario;
  std::map<std::string, double> overrides;
  double weight = 1.0;
  std::string size_param = "events";
  double base_size = 4096;
  double min_size = 64;
};

struct WorkloadMixSpec {
  std::string name;
  std::string description;
  std::vector<TenantProfile> profiles;
  /// Zipf exponent of per-tenant volume: tenant i carries a
  /// (i+1)^-hotness share of the hottest tenant's size. 0 = uniform.
  double hotness = 1.1;
};

/// Named recipes for heterogeneous multi-tenant workloads, the
/// `omflp serve --mix` catalog.
class WorkloadMixRegistry {
 public:
  /// Registers a mix; throws std::invalid_argument on an empty or
  /// duplicate name, an empty or non-positive-weight profile list, or an
  /// unknown scenario name in a profile.
  void add(WorkloadMixSpec spec);

  bool contains(const std::string& name) const;
  /// Throws std::invalid_argument listing the known names when absent.
  const WorkloadMixSpec& spec(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return specs_.size(); }

  /// Expand a mix into `count` concrete tenants: profile drawn by weight,
  /// volume Zipf-decayed by tenant rank (then scaled by `size_scale` —
  /// tests and CI smoke runs shrink workloads with it), per-tenant seeds
  /// derived from `seed`. Deterministic in (name, count, seed,
  /// size_scale). Every tenant's algorithm is the default "pd"; callers
  /// reassign it wholesale (the serve CLI's --algorithm).
  std::vector<TenantSpec> tenants(const std::string& name, std::size_t count,
                                  std::uint64_t seed,
                                  double size_scale = 1.0) const;

 private:
  std::map<std::string, WorkloadMixSpec> specs_;
};

/// The registry with every built-in workload mix registered (shared,
/// initialized on first use, safe for concurrent readers).
const WorkloadMixRegistry& default_workload_mix_registry();

}  // namespace omflp
