// StreamScenarioRegistry — named, parameterized dynamic-workload
// factories, the EventStream counterpart of ScenarioRegistry.
//
// A stream scenario turns (parameters, seed) into a self-contained
// EventStream — arrivals, explicit departures and leases — so dynamic
// runs are exactly as reproducible as static ones. The registries share
// the ScenarioParams machinery (declaration, defaults, strict override
// resolution).
//
// default_stream_scenario_registry() ships three built-in families, the
// deletion-model workloads of Cygan–Czumaj–Jiang–Krauthgamer / Markarian
// et al.:
//   * churn-uniform    — uniform-line arrivals with a churn-heavy
//                        departure process (each event deletes a random
//                        active request with probability `churn`);
//   * adversarial-churn — insert-then-delete phases echoing the Figure 1
//                        / Theorem 2 game: each phase replays the
//                        adversarial sequence, then deletes everything
//                        but its last request, so the surviving set (and
//                        OPT on it) stays tiny while the algorithm keeps
//                        paying;
//   * lease-poisson    — pure lease-expiry traffic: every event is an
//                        arrival with a memoryless (exponential) lease,
//                        the stream analogue of Poisson call durations.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "instance/event_stream.hpp"
#include "scenario/scenario_registry.hpp"

namespace omflp {

struct StreamScenarioSpec {
  std::string name;
  std::string description;
  std::vector<ScenarioParam> params;
  std::function<EventStream(const ScenarioParams&, std::uint64_t seed)>
      make;
};

class StreamScenarioRegistry {
 public:
  /// Registers a scenario; throws std::invalid_argument on an empty or
  /// duplicate name or a missing factory.
  void add(StreamScenarioSpec spec);

  bool contains(const std::string& name) const;
  /// Throws std::invalid_argument listing the known names when absent.
  const StreamScenarioSpec& spec(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return specs_.size(); }

  /// Instantiate: merge `overrides` into the declared defaults (throwing
  /// on an undeclared override) and invoke the factory. Deterministic in
  /// (name, overrides, seed); the returned stream is validated.
  EventStream make(const std::string& name, std::uint64_t seed,
                   const std::map<std::string, double>& overrides = {}) const;

 private:
  std::map<std::string, StreamScenarioSpec> specs_;
};

/// The registry with every built-in dynamic workload registered (shared,
/// initialized on first use, safe for concurrent readers).
const StreamScenarioRegistry& default_stream_scenario_registry();

}  // namespace omflp
