#include "scenario/stream_registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "cost/cost_models.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "metric/line_metric.hpp"
#include "scenario/registry_util.hpp"
#include "support/rng.hpp"

namespace omflp {

void StreamScenarioRegistry::add(StreamScenarioSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument(
        "StreamScenarioRegistry: empty scenario name");
  if (!spec.make)
    throw std::invalid_argument("StreamScenarioRegistry: scenario '" +
                                spec.name + "' has no factory");
  if (!specs_.emplace(spec.name, std::move(spec)).second)
    throw std::invalid_argument(
        "StreamScenarioRegistry: duplicate scenario '" + spec.name + "'");
}

bool StreamScenarioRegistry::contains(const std::string& name) const {
  return specs_.count(name) != 0;
}

const StreamScenarioSpec& StreamScenarioRegistry::spec(
    const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end())
    throw std::invalid_argument("unknown stream scenario '" + name +
                                "'; known stream scenarios: " +
                                join_names(names()));
  return it->second;
}

std::vector<std::string> StreamScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, _] : specs_) out.push_back(name);
  return out;  // std::map iterates sorted
}

EventStream StreamScenarioRegistry::make(
    const std::string& name, std::uint64_t seed,
    const std::map<std::string, double>& overrides) const {
  const StreamScenarioSpec& s = spec(name);
  EventStream stream = s.make(
      resolve_scenario_params(s.name, s.params, overrides, /*strict=*/true),
      seed);
  stream.validate();
  return stream;
}

// ----------------------------------------------------------- built-ins ---

namespace {

std::vector<ScenarioParam> cost_params(double scale) {
  return {{"cost_exponent", 1.0, "class-C exponent x in [0,2]"},
          {"cost_scale", scale, "overall opening-cost scale"}};
}

CostModelPtr poly_cost(const ScenarioParams& p, CommodityId commodities) {
  return std::make_shared<PolynomialCostModel>(
      commodities, p.at("cost_exponent"), p.at("cost_scale"));
}

void append(std::vector<ScenarioParam>& params,
            std::vector<ScenarioParam> extra) {
  for (ScenarioParam& param : extra) params.push_back(std::move(param));
}

/// Uniform-line arrival shared by the churn and lease families.
Request sample_line_request(const ScenarioParams& p, std::size_t points,
                            CommodityId commodities, Rng& rng) {
  const CommodityId min_demand = p.commodity_at("min_demand");
  const CommodityId max_demand =
      std::min<CommodityId>(p.commodity_at("max_demand"), commodities);
  Request r;
  r.location = static_cast<PointId>(rng.uniform_index(points));
  const CommodityId size = static_cast<CommodityId>(
      rng.uniform_int(min_demand, std::max(min_demand, max_demand)));
  r.commodities = sample_demand_set(commodities, size,
                                    p.at("popularity_exponent"), rng);
  return r;
}

void register_streams(StreamScenarioRegistry& registry) {
  {
    std::vector<ScenarioParam> params = {
        {"points", 64, "|M|, evenly spaced on the line"},
        {"length", 100, "line length"},
        {"events", 4096, "total events (arrivals + departures)"},
        {"commodities", 12, "|S|"},
        {"min_demand", 1, "smallest demand-set size"},
        {"max_demand", 4, "largest demand-set size"},
        {"popularity_exponent", 0.8, "Zipf exponent for commodity choice"},
        {"churn", 0.45,
         "per-event probability of deleting a random active request"},
        {"warmup", 32, "active requests before churn kicks in"}};
    append(params, cost_params(2.0));
    registry.add(
        {.name = "churn-uniform",
         .description = "uniform-line arrivals under churn-heavy random "
                        "deletions (the Cygan et al. deletion model)",
         .params = std::move(params),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           const std::size_t points = p.size_t_at("points");
           const CommodityId commodities = p.commodity_at("commodities");
           const std::size_t num_events = p.size_t_at("events");
           const std::size_t warmup = p.size_t_at("warmup");
           const double churn = p.at("churn");

           std::vector<StreamEvent> events;
           events.reserve(num_events);
           std::vector<RequestId> active;  // ids eligible for deletion
           RequestId next_id = 0;
           for (std::size_t t = 0; t < num_events; ++t) {
             if (active.size() > warmup && rng.bernoulli(churn)) {
               const std::size_t pick = rng.uniform_index(active.size());
               events.push_back(StreamEvent::departure(active[pick]));
               active[pick] = active.back();
               active.pop_back();
             } else {
               events.push_back(StreamEvent::arrival(
                   sample_line_request(p, points, commodities, rng)));
               active.push_back(next_id++);
             }
           }
           return EventStream(
               LineMetric::uniform_grid(points, p.at("length")),
               poly_cost(p, commodities), std::move(events),
               "churn-uniform");
         }});
  }
  registry.add(
      {.name = "adversarial-churn",
       .description =
           "insert-then-delete phases of the Theorem 2 / Figure 1 game: "
           "each phase replays the adversarial sequence and then deletes "
           "all but its last request, keeping OPT(surviving) tiny",
       .params = {{"commodities", 64,
                   "|S|; each phase plays floor(sqrt(|S|)) rounds"},
                  {"phases", 8, "insert-then-delete phases"},
                  {"cost_scale", 1.0, "overall opening-cost scale"}},
       .make = [](const ScenarioParams& p, std::uint64_t seed) {
         Rng rng(seed);
         Theorem2Config cfg;
         cfg.num_commodities = p.commodity_at("commodities");
         cfg.cost_scale = p.at("cost_scale");
         const std::size_t phases = p.size_t_at("phases");

         MetricPtr metric;
         CostModelPtr cost;
         std::vector<StreamEvent> events;
         RequestId next_id = 0;
         for (std::size_t phase = 0; phase < phases; ++phase) {
           // A fresh draw of the Theorem 2 distribution per phase; the
           // single-point metric and ceil-ratio cost model are identical
           // across phases, so the first instance supplies them.
           const Instance instance = make_theorem2_instance(cfg, rng);
           if (phase == 0) {
             metric = instance.metric_ptr();
             cost = instance.cost_ptr();
           }
           const RequestId first = next_id;
           for (const Request& r : instance.requests()) {
             events.push_back(StreamEvent::arrival(r));
             ++next_id;
           }
           for (RequestId id = first; id + 1 < next_id; ++id)
             events.push_back(StreamEvent::departure(id));
         }
         return EventStream(std::move(metric), std::move(cost),
                            std::move(events), "adversarial-churn");
       }});
  {
    std::vector<ScenarioParam> params = {
        {"points", 64, "|M|, evenly spaced on the line"},
        {"length", 100, "line length"},
        {"events", 4096, "total events (all arrivals)"},
        {"commodities", 12, "|S|"},
        {"min_demand", 1, "smallest demand-set size"},
        {"max_demand", 3, "largest demand-set size"},
        {"popularity_exponent", 0.8, "Zipf exponent for commodity choice"},
        {"mean_lease", 96, "mean lease length in events (exponential)"}};
    append(params, cost_params(2.0));
    registry.add(
        {.name = "lease-poisson",
         .description = "pure lease-expiry traffic: every arrival carries "
                        "a memoryless exponential lease (Poisson-style "
                        "session durations)",
         .params = std::move(params),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           const std::size_t points = p.size_t_at("points");
           const CommodityId commodities = p.commodity_at("commodities");
           const std::size_t num_events = p.size_t_at("events");
           const double mean_lease = p.at("mean_lease");
           if (!(mean_lease > 0.0))
             throw std::invalid_argument(
                 "lease-poisson: mean_lease must be positive");

           std::vector<StreamEvent> events;
           events.reserve(num_events);
           for (std::size_t t = 0; t < num_events; ++t) {
             const std::uint64_t lease =
                 1 + static_cast<std::uint64_t>(
                         rng.exponential(1.0 / mean_lease));
             events.push_back(StreamEvent::arrival(
                 sample_line_request(p, points, commodities, rng), lease));
           }
           return EventStream(
               LineMetric::uniform_grid(points, p.at("length")),
               poly_cost(p, commodities), std::move(events),
               "lease-poisson");
         }});
  }
}

}  // namespace

const StreamScenarioRegistry& default_stream_scenario_registry() {
  static const StreamScenarioRegistry registry = [] {
    StreamScenarioRegistry r;
    register_streams(r);
    return r;
  }();
  return registry;
}

}  // namespace omflp
