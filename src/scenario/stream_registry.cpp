#include "scenario/stream_registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "cost/cost_models.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "metric/euclidean_metric.hpp"
#include "metric/line_metric.hpp"
#include "scenario/registry_util.hpp"
#include "support/rng.hpp"

namespace omflp {

void StreamScenarioRegistry::add(StreamScenarioSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument(
        "StreamScenarioRegistry: empty scenario name");
  if (!spec.make)
    throw std::invalid_argument("StreamScenarioRegistry: scenario '" +
                                spec.name + "' has no factory");
  if (!specs_.emplace(spec.name, std::move(spec)).second)
    throw std::invalid_argument(
        "StreamScenarioRegistry: duplicate scenario '" + spec.name + "'");
}

bool StreamScenarioRegistry::contains(const std::string& name) const {
  return specs_.count(name) != 0;
}

const StreamScenarioSpec& StreamScenarioRegistry::spec(
    const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end())
    throw std::invalid_argument("unknown stream scenario '" + name +
                                "'; known stream scenarios: " +
                                join_names(names()));
  return it->second;
}

std::vector<std::string> StreamScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, _] : specs_) out.push_back(name);
  return out;  // std::map iterates sorted
}

EventStream StreamScenarioRegistry::make(
    const std::string& name, std::uint64_t seed,
    const std::map<std::string, double>& overrides) const {
  const StreamScenarioSpec& s = spec(name);
  EventStream stream = s.make(
      resolve_scenario_params(s.name, s.params, overrides, /*strict=*/true),
      seed);
  stream.validate();
  return stream;
}

// ----------------------------------------------------------- built-ins ---

namespace {

std::vector<ScenarioParam> cost_params(double scale) {
  return {{"cost_exponent", 1.0, "class-C exponent x in [0,2]"},
          {"cost_scale", scale, "overall opening-cost scale"}};
}

CostModelPtr poly_cost(const ScenarioParams& p, CommodityId commodities) {
  return std::make_shared<PolynomialCostModel>(
      commodities, p.at("cost_exponent"), p.at("cost_scale"));
}

void append(std::vector<ScenarioParam>& params,
            std::vector<ScenarioParam> extra) {
  for (ScenarioParam& param : extra) params.push_back(std::move(param));
}

/// Demand-set draw shared by every family declaring the min_demand /
/// max_demand / popularity_exponent trio.
CommoditySet sample_demand(const ScenarioParams& p, CommodityId commodities,
                           Rng& rng) {
  const CommodityId min_demand = p.commodity_at("min_demand");
  const CommodityId max_demand =
      std::min<CommodityId>(p.commodity_at("max_demand"), commodities);
  const CommodityId size = static_cast<CommodityId>(
      rng.uniform_int(min_demand, std::max(min_demand, max_demand)));
  return sample_demand_set(commodities, size, p.at("popularity_exponent"),
                           rng);
}

/// Uniform-line arrival shared by the churn and lease families.
Request sample_line_request(const ScenarioParams& p, std::size_t points,
                            CommodityId commodities, Rng& rng) {
  Request r;
  r.location = static_cast<PointId>(rng.uniform_index(points));
  r.commodities = sample_demand(p, commodities, rng);
  return r;
}

/// Shared generator for the hotspot-grid family. `capacity` == 0 leaves
/// the stream uncapacitated; nonzero attaches a uniform per-point
/// capacity map *after* all RNG draws, so the capped variant replays the
/// exact event sequence of the uncapped one for the same seed.
EventStream make_hotspot_grid(const ScenarioParams& p, std::uint64_t seed,
                              std::uint64_t capacity, const char* name) {
  Rng rng(seed);
  const std::size_t side = p.size_t_at("side");
  if (side < 2)
    throw std::invalid_argument(std::string(name) +
                                ": side must be at least 2");
  const double extent = p.at("extent");
  const CommodityId commodities = p.commodity_at("commodities");
  const std::size_t num_events = p.size_t_at("events");
  const std::size_t hotspots = p.size_t_at("hotspots");
  if (hotspots == 0)
    throw std::invalid_argument(std::string(name) +
                                ": at least one hotspot is required");
  const double hot_exponent = p.at("hot_exponent");
  const double spread = p.at("spread");
  const double churn = p.at("churn");
  const double mean_lease = p.at("mean_lease");
  const std::size_t warmup = p.size_t_at("warmup");

  const double step = extent / static_cast<double>(side - 1);
  std::vector<double> coords;
  coords.reserve(side * side * 2);
  for (std::size_t r = 0; r < side; ++r)
    for (std::size_t c = 0; c < side; ++c) {
      coords.push_back(static_cast<double>(c) * step);
      coords.push_back(static_cast<double>(r) * step);
    }
  auto metric = std::make_shared<EuclideanMetric>(2, std::move(coords));

  std::vector<std::pair<std::size_t, std::size_t>> centers;
  centers.reserve(hotspots);
  for (std::size_t h = 0; h < hotspots; ++h)
    centers.emplace_back(rng.uniform_index(side), rng.uniform_index(side));

  const auto clamp_cell = [&](double cell) {
    const auto rounded = static_cast<long long>(std::llround(cell));
    return static_cast<std::size_t>(std::clamp<long long>(
        rounded, 0, static_cast<long long>(side) - 1));
  };

  std::vector<StreamEvent> events;
  events.reserve(num_events);
  // (id, lease deadline) — deletions may only target arrivals still
  // alive under the timeline semantics, so entries whose lease fires at
  // or before this event are purged first.
  std::vector<std::pair<RequestId, std::uint64_t>> active;
  RequestId next_id = 0;
  for (std::size_t t = 0; t < num_events; ++t) {
    active.erase(std::remove_if(active.begin(), active.end(),
                                [t](const auto& entry) {
                                  return entry.second <= t;
                                }),
                 active.end());
    if (active.size() > warmup && rng.bernoulli(churn)) {
      const std::size_t pick = rng.uniform_index(active.size());
      events.push_back(StreamEvent::departure(active[pick].first));
      active[pick] = active.back();
      active.pop_back();
      continue;
    }
    const auto [center_r, center_c] =
        centers[rng.zipf(hotspots, hot_exponent)];
    const std::size_t row =
        clamp_cell(static_cast<double>(center_r) + rng.normal() * spread);
    const std::size_t col =
        clamp_cell(static_cast<double>(center_c) + rng.normal() * spread);
    Request r;
    r.location = static_cast<PointId>(row * side + col);
    r.commodities = sample_demand(p, commodities, rng);
    const std::uint64_t lease =
        mean_lease > 0.0
            ? 1 + static_cast<std::uint64_t>(
                      rng.exponential(1.0 / mean_lease))
            : 0;
    events.push_back(StreamEvent::arrival(std::move(r), lease));
    active.emplace_back(next_id++, lease > 0 ? lease_deadline(t, lease)
                                             : ~std::uint64_t{0});
  }
  EventStream stream(std::move(metric), poly_cost(p, commodities),
                     std::move(events), name);
  if (capacity > 0)
    stream.set_capacities(std::make_shared<const std::vector<std::uint64_t>>(
        side * side, capacity));
  return stream;
}

void register_streams(StreamScenarioRegistry& registry) {
  {
    std::vector<ScenarioParam> params = {
        {"points", 64, "|M|, evenly spaced on the line"},
        {"length", 100, "line length"},
        {"events", 4096, "total events (arrivals + departures)"},
        {"commodities", 12, "|S|"},
        {"min_demand", 1, "smallest demand-set size"},
        {"max_demand", 4, "largest demand-set size"},
        {"popularity_exponent", 0.8, "Zipf exponent for commodity choice"},
        {"churn", 0.45,
         "per-event probability of deleting a random active request"},
        {"warmup", 32, "active requests before churn kicks in"}};
    append(params, cost_params(2.0));
    registry.add(
        {.name = "churn-uniform",
         .description = "uniform-line arrivals under churn-heavy random "
                        "deletions (the Cygan et al. deletion model)",
         .params = std::move(params),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           const std::size_t points = p.size_t_at("points");
           const CommodityId commodities = p.commodity_at("commodities");
           const std::size_t num_events = p.size_t_at("events");
           const std::size_t warmup = p.size_t_at("warmup");
           const double churn = p.at("churn");

           std::vector<StreamEvent> events;
           events.reserve(num_events);
           std::vector<RequestId> active;  // ids eligible for deletion
           RequestId next_id = 0;
           for (std::size_t t = 0; t < num_events; ++t) {
             if (active.size() > warmup && rng.bernoulli(churn)) {
               const std::size_t pick = rng.uniform_index(active.size());
               events.push_back(StreamEvent::departure(active[pick]));
               active[pick] = active.back();
               active.pop_back();
             } else {
               events.push_back(StreamEvent::arrival(
                   sample_line_request(p, points, commodities, rng)));
               active.push_back(next_id++);
             }
           }
           return EventStream(
               LineMetric::uniform_grid(points, p.at("length")),
               poly_cost(p, commodities), std::move(events),
               "churn-uniform");
         }});
  }
  registry.add(
      {.name = "adversarial-churn",
       .description =
           "insert-then-delete phases of the Theorem 2 / Figure 1 game: "
           "each phase replays the adversarial sequence and then deletes "
           "all but its last request, keeping OPT(surviving) tiny",
       .params = {{"commodities", 64,
                   "|S|; each phase plays floor(sqrt(|S|)) rounds"},
                  {"phases", 8, "insert-then-delete phases"},
                  {"cost_scale", 1.0, "overall opening-cost scale"}},
       .make = [](const ScenarioParams& p, std::uint64_t seed) {
         Rng rng(seed);
         Theorem2Config cfg;
         cfg.num_commodities = p.commodity_at("commodities");
         cfg.cost_scale = p.at("cost_scale");
         const std::size_t phases = p.size_t_at("phases");

         MetricPtr metric;
         CostModelPtr cost;
         std::vector<StreamEvent> events;
         RequestId next_id = 0;
         for (std::size_t phase = 0; phase < phases; ++phase) {
           // A fresh draw of the Theorem 2 distribution per phase; the
           // single-point metric and ceil-ratio cost model are identical
           // across phases, so the first instance supplies them.
           const Instance instance = make_theorem2_instance(cfg, rng);
           if (phase == 0) {
             metric = instance.metric_ptr();
             cost = instance.cost_ptr();
           }
           const RequestId first = next_id;
           for (const Request& r : instance.requests()) {
             events.push_back(StreamEvent::arrival(r));
             ++next_id;
           }
           for (RequestId id = first; id + 1 < next_id; ++id)
             events.push_back(StreamEvent::departure(id));
         }
         return EventStream(std::move(metric), std::move(cost),
                            std::move(events), "adversarial-churn");
       }});
  {
    std::vector<ScenarioParam> params = {
        {"points", 64, "|M|, evenly spaced on the line"},
        {"length", 100, "line length"},
        {"events", 4096, "total events (all arrivals)"},
        {"commodities", 12, "|S|"},
        {"min_demand", 1, "smallest demand-set size"},
        {"max_demand", 3, "largest demand-set size"},
        {"popularity_exponent", 0.8, "Zipf exponent for commodity choice"},
        {"mean_lease", 96, "mean lease length in events (exponential)"}};
    append(params, cost_params(2.0));
    registry.add(
        {.name = "lease-poisson",
         .description = "pure lease-expiry traffic: every arrival carries "
                        "a memoryless exponential lease (Poisson-style "
                        "session durations)",
         .params = std::move(params),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           const std::size_t points = p.size_t_at("points");
           const CommodityId commodities = p.commodity_at("commodities");
           const std::size_t num_events = p.size_t_at("events");
           const double mean_lease = p.at("mean_lease");
           if (!(mean_lease > 0.0))
             throw std::invalid_argument(
                 "lease-poisson: mean_lease must be positive");

           std::vector<StreamEvent> events;
           events.reserve(num_events);
           for (std::size_t t = 0; t < num_events; ++t) {
             const std::uint64_t lease =
                 1 + static_cast<std::uint64_t>(
                         rng.exponential(1.0 / mean_lease));
             events.push_back(StreamEvent::arrival(
                 sample_line_request(p, points, commodities, rng), lease));
           }
           return EventStream(
               LineMetric::uniform_grid(points, p.at("length")),
               poly_cost(p, commodities), std::move(events),
               "lease-poisson");
         }});
  }
  {
    const auto hotspot_params = [] {
      std::vector<ScenarioParam> params = {
          {"side", 12, "grid side; |M| = side^2 points in the plane"},
          {"extent", 100, "grid extent per axis"},
          {"events", 4096, "total events (arrivals + departures)"},
          {"commodities", 12, "|S|"},
          {"min_demand", 1, "smallest demand-set size"},
          {"max_demand", 4, "largest demand-set size"},
          {"popularity_exponent", 0.8,
           "Zipf exponent for commodity choice"},
          {"hotspots", 4, "number of Zipf-weighted traffic hotspots"},
          {"hot_exponent", 1.0, "Zipf exponent over hotspot popularity"},
          {"spread", 1.5, "gaussian spread around a hotspot, in cells"},
          {"churn", 0.25,
           "per-event probability of deleting a random active request"},
          {"mean_lease", 0,
           "mean exponential lease in events (0 = pinned arrivals)"},
          {"warmup", 32, "active requests before churn kicks in"}};
      append(params, cost_params(2.0));
      return params;
    };
    registry.add(
        {.name = "hotspot-grid",
         .description = "2-D Euclidean grid arrivals clustered around "
                        "Zipf-weighted hotspots, with churn deletions and "
                        "optional exponential leases (planar city traffic)",
         .params = hotspot_params(),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           return make_hotspot_grid(p, seed, /*capacity=*/0,
                                    "hotspot-grid");
         }});
    // The capacity-stressed sibling: the identical event sequence per
    // (seed, shared params) — the capacity only annotates the stream, it
    // never perturbs a single RNG draw — so capped-vs-uncapped diffs
    // isolate admission control.
    std::vector<ScenarioParam> capped = hotspot_params();
    capped.push_back({"capacity", 6,
                      "per-point facility capacity (distinct active "
                      "requests per facility)"});
    registry.add(
        {.name = "hotspot-grid-capped",
         .description = "hotspot-grid with a uniform per-point facility "
                        "capacity tight enough that hotspot traffic "
                        "overflows (admission-control stress)",
         .params = std::move(capped),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           const std::size_t capacity = p.size_t_at("capacity");
           if (capacity == 0)
             throw std::invalid_argument(
                 "hotspot-grid-capped: capacity must be at least 1");
           return make_hotspot_grid(p, seed, capacity,
                                    "hotspot-grid-capped");
         }});
  }
}

}  // namespace

const StreamScenarioRegistry& default_stream_scenario_registry() {
  static const StreamScenarioRegistry registry = [] {
    StreamScenarioRegistry r;
    register_streams(r);
    return r;
  }();
  return registry;
}

// ---------------------------------------------------------------- mixes ---

void WorkloadMixRegistry::add(WorkloadMixSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument("WorkloadMixRegistry: empty mix name");
  if (spec.profiles.empty())
    throw std::invalid_argument("WorkloadMixRegistry: mix '" + spec.name +
                                "' has no tenant profiles");
  const StreamScenarioRegistry& streams = default_stream_scenario_registry();
  for (const TenantProfile& profile : spec.profiles) {
    if (!streams.contains(profile.scenario))
      throw std::invalid_argument("WorkloadMixRegistry: mix '" + spec.name +
                                  "' references unknown stream scenario '" +
                                  profile.scenario + "'");
    if (!(profile.weight > 0.0))
      throw std::invalid_argument("WorkloadMixRegistry: mix '" + spec.name +
                                  "' has a non-positive profile weight");
    // Fail typo'd parameter names at registration, with the mix named in
    // the message — not later, deep inside engine construction, where
    // resolve_scenario_params would name neither mix nor profile.
    const StreamScenarioSpec& scenario = streams.spec(profile.scenario);
    const auto declared = [&](const std::string& name) {
      for (const ScenarioParam& param : scenario.params)
        if (param.name == name) return true;
      return false;
    };
    if (!declared(profile.size_param))
      throw std::invalid_argument(
          "WorkloadMixRegistry: mix '" + spec.name + "': scenario '" +
          profile.scenario + "' does not declare size_param '" +
          profile.size_param + "'");
    for (const auto& [key, _] : profile.overrides)
      if (!declared(key))
        throw std::invalid_argument(
            "WorkloadMixRegistry: mix '" + spec.name + "': scenario '" +
            profile.scenario + "' does not declare override '" + key +
            "'");
  }
  if (!specs_.emplace(spec.name, std::move(spec)).second)
    throw std::invalid_argument("WorkloadMixRegistry: duplicate mix '" +
                                spec.name + "'");
}

bool WorkloadMixRegistry::contains(const std::string& name) const {
  return specs_.count(name) != 0;
}

const WorkloadMixSpec& WorkloadMixRegistry::spec(
    const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end())
    throw std::invalid_argument("unknown workload mix '" + name +
                                "'; known mixes: " + join_names(names()));
  return it->second;
}

std::vector<std::string> WorkloadMixRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, _] : specs_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::vector<TenantSpec> WorkloadMixRegistry::tenants(
    const std::string& name, std::size_t count, std::uint64_t seed,
    double size_scale) const {
  const WorkloadMixSpec& mix = spec(name);
  if (count == 0)
    throw std::invalid_argument("workload mix '" + name +
                                "': tenant count must be positive");
  if (!(size_scale > 0.0))
    throw std::invalid_argument("workload mix '" + name +
                                "': size_scale must be positive");

  std::vector<double> cumulative;
  cumulative.reserve(mix.profiles.size());
  double total_weight = 0.0;
  for (const TenantProfile& profile : mix.profiles) {
    total_weight += profile.weight;
    cumulative.push_back(total_weight);
  }

  Rng rng(seed);
  std::vector<TenantSpec> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double draw = rng.uniform(0.0, total_weight);
    std::size_t pick = 0;
    while (pick + 1 < cumulative.size() && draw >= cumulative[pick]) ++pick;
    const TenantProfile& profile = mix.profiles[pick];

    // Zipf-skewed tenant hotness: tenant 0 is the hottest; under the
    // engine's round-robin shard placement the low shards therefore
    // carry most of the traffic.
    const double share =
        std::pow(static_cast<double>(i + 1), -mix.hotness);
    const double size =
        std::max(profile.min_size,
                 std::floor(profile.base_size * share * size_scale));

    TenantSpec tenant;
    char label[32];
    std::snprintf(label, sizeof(label), "t%03zu-", i);
    tenant.name = label + profile.scenario;
    tenant.scenario = profile.scenario;
    tenant.overrides = profile.overrides;
    tenant.overrides[profile.size_param] = size;
    tenant.seed = rng.next_u64();
    out.push_back(std::move(tenant));
  }
  return out;
}

namespace {

void register_mixes(WorkloadMixRegistry& registry) {
  registry.add(
      {.name = "churn-heavy",
       .description = "deletion-dominated traffic: high-churn line and "
                      "grid tenants with near-uniform tenant volumes",
       .profiles = {{.scenario = "churn-uniform",
                     .overrides = {{"churn", 0.6}, {"warmup", 16}},
                     .weight = 2.0,
                     .base_size = 4096},
                    {.scenario = "hotspot-grid",
                     .overrides = {{"churn", 0.5}, {"warmup", 16}},
                     .weight = 1.0,
                     .base_size = 4096}},
       .hotness = 0.5});
  registry.add(
      {.name = "lease-heavy",
       .description = "session-style traffic: every tenant is "
                      "lease-poisson, alternating short and long mean "
                      "session lengths",
       .profiles = {{.scenario = "lease-poisson",
                     .overrides = {{"mean_lease", 32}},
                     .weight = 1.0,
                     .base_size = 4096},
                    {.scenario = "lease-poisson",
                     .overrides = {{"mean_lease", 256}},
                     .weight = 1.0,
                     .base_size = 4096}},
       .hotness = 0.9});
  registry.add(
      {.name = "mixed",
       .description = "heterogeneous tenants across all four stream "
                      "families: line churn, planar hotspots, poisson "
                      "leases and adversarial insert-delete phases",
       .profiles = {{.scenario = "churn-uniform",
                     .overrides = {{"points", 96},
                                   {"commodities", 16},
                                   {"churn", 0.45}},
                     .weight = 3.0,
                     .base_size = 4096},
                    {.scenario = "hotspot-grid",
                     .overrides = {{"side", 10},
                                   {"commodities", 12},
                                   {"churn", 0.3},
                                   {"mean_lease", 128}},
                     .weight = 2.0,
                     .base_size = 4096},
                    {.scenario = "lease-poisson",
                     .overrides = {{"commodities", 8}, {"mean_lease", 64}},
                     .weight = 2.0,
                     .base_size = 4096},
                    {.scenario = "adversarial-churn",
                     .overrides = {{"commodities", 36}},
                     .weight = 1.0,
                     .size_param = "phases",
                     .base_size = 6,
                     .min_size = 1}},
       .hotness = 1.1});
}

}  // namespace

const WorkloadMixRegistry& default_workload_mix_registry() {
  static const WorkloadMixRegistry registry = [] {
    WorkloadMixRegistry r;
    register_mixes(r);
    return r;
  }();
  return registry;
}

}  // namespace omflp
