// ScenarioRegistry — named, parameterized workload factories.
//
// A scenario is a declarative description of a workload: a name, a set of
// numeric parameters with defaults, and a factory that turns (parameters,
// seed) into a self-contained Instance. Scenarios are deterministic
// functions of their parameters and the seed, so every run is exactly
// reproducible and sweeps parallelize trivially.
//
// Registering a new scenario takes a handful of lines:
//
//   registry.add({
//       .name = "my-workload",
//       .description = "requests on a ring, say",
//       .params = {{"requests", 64, "number of requests"}},
//       .make = [](const ScenarioParams& p, std::uint64_t seed) {
//         Rng rng(seed);
//         return make_my_workload(p.size_t_at("requests"), rng);
//       }});
//
// default_scenario_registry() ships every built-in workload: the uniform /
// clustered / zooming / service-network / single-point generators, the
// shared-demand and heavy-tail stress workloads, and the paper's
// adversarial lower-bound sequences (Theorem 2 = Figure 1's game,
// Theorem 18) plus the Figure 3 connection-choice scenario.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "instance/instance.hpp"

namespace omflp {

/// One declared scenario parameter: name, default value, documentation.
/// All parameters are doubles; integral and boolean parameters are
/// declared with integral defaults and read back via size_t_at / bool_at.
struct ScenarioParam {
  std::string name;
  double value = 0.0;
  std::string description;
};

/// The resolved parameter bag handed to a scenario factory: every declared
/// parameter is present (default or override). Lookup of an undeclared
/// name throws — that is a bug in the factory, not user input.
class ScenarioParams {
 public:
  explicit ScenarioParams(std::map<std::string, double> values = {})
      : values_(std::move(values)) {}

  double at(const std::string& name) const;
  /// Non-negative integral value; throws on fractional / negative values
  /// and on magnitudes beyond 2^53 (not exactly representable — the cast
  /// would be undefined or lossy).
  std::size_t size_t_at(const std::string& name) const;
  /// Like size_t_at, additionally bounded to the CommodityId range.
  CommodityId commodity_at(const std::string& name) const;
  bool bool_at(const std::string& name) const { return at(name) != 0.0; }

  bool contains(const std::string& name) const {
    return values_.count(name) != 0;
  }
  const std::map<std::string, double>& values() const noexcept {
    return values_;
  }

 private:
  std::map<std::string, double> values_;
};

/// Merge `overrides` into the declared defaults. Strict mode throws on an
/// override the scenario does not declare; lenient mode drops it (the
/// right semantics when one override set is applied across a sweep of
/// heterogeneous scenarios). Shared by the instance and stream scenario
/// registries (scenario/stream_registry.hpp).
ScenarioParams resolve_scenario_params(
    const std::string& scenario_name,
    const std::vector<ScenarioParam>& declared,
    const std::map<std::string, double>& overrides, bool strict);

struct ScenarioSpec {
  std::string name;
  std::string description;
  std::vector<ScenarioParam> params;
  std::function<Instance(const ScenarioParams&, std::uint64_t seed)> make;
};

class ScenarioRegistry {
 public:
  /// Registers a scenario; throws std::invalid_argument on an empty or
  /// duplicate name or a missing factory.
  void add(ScenarioSpec spec);

  bool contains(const std::string& name) const;
  /// Throws std::invalid_argument listing the known names when absent.
  const ScenarioSpec& spec(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return specs_.size(); }

  /// Instantiate a scenario: merge `overrides` into the declared defaults
  /// (throwing on an override the scenario does not declare) and invoke
  /// the factory. The result is a deterministic function of
  /// (name, overrides, seed).
  Instance make(const std::string& name, std::uint64_t seed,
                const std::map<std::string, double>& overrides = {}) const;

  /// Like make(), but silently ignores override keys the scenario does not
  /// declare — the right semantics when one override set is applied across
  /// a sweep of heterogeneous scenarios.
  Instance make_lenient(const std::string& name, std::uint64_t seed,
                        const std::map<std::string, double>& overrides) const;

 private:
  std::map<std::string, ScenarioSpec> specs_;
};

/// The registry with every built-in scenario registered (shared,
/// initialized on first use, safe for concurrent readers).
const ScenarioRegistry& default_scenario_registry();

}  // namespace omflp
