#include "scenario/algorithm_registry.hpp"

#include <stdexcept>

#include "baseline/greedy.hpp"
#include "baseline/per_commodity.hpp"
#include "core/pd_omflp.hpp"
#include "core/rand_omflp.hpp"
#include "scenario/registry_util.hpp"

namespace omflp {

void AlgorithmRegistry::add(AlgorithmSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument("AlgorithmRegistry: empty algorithm name");
  if (!spec.make)
    throw std::invalid_argument("AlgorithmRegistry: algorithm '" +
                                spec.name + "' has no factory");
  if (!specs_.emplace(spec.name, std::move(spec)).second)
    throw std::invalid_argument("AlgorithmRegistry: duplicate algorithm '" +
                                spec.name + "'");
}

bool AlgorithmRegistry::contains(const std::string& name) const {
  return specs_.count(name) != 0;
}

const AlgorithmSpec& AlgorithmRegistry::spec(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end())
    throw std::invalid_argument("unknown algorithm '" + name +
                                "'; known algorithms: " +
                                join_names(names()));
  return it->second;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, _] : specs_) out.push_back(name);
  return out;
}

std::unique_ptr<OnlineAlgorithm> AlgorithmRegistry::make(
    const std::string& name, std::uint64_t seed) const {
  return spec(name).make(seed);
}

const AlgorithmRegistry& default_algorithm_registry() {
  static const AlgorithmRegistry registry = [] {
    AlgorithmRegistry r;
    r.add({.name = "pd",
           .description = "PD-OMFLP, the paper's deterministic primal-dual "
                          "Algorithm 1 (Theorem 4)",
           .make = [](std::uint64_t) { return std::make_unique<PdOmflp>(); }});
    r.add({.name = "pd-nopred",
           .description = "PD-OMFLP with prediction disabled (the §2 "
                          "Omega(|S|) ablation)",
           .make = [](std::uint64_t) {
             return std::make_unique<PdOmflp>(
                 PdOptions{.prediction = PdOptions::Prediction::kOff});
           }});
    r.add({.name = "pd-seenunion",
           .description = "PD-OMFLP opening large facilities with the union "
                          "of commodities seen so far (§5 variant)",
           .make = [](std::uint64_t) {
             return std::make_unique<PdOmflp>(PdOptions{
                 .large_config = PdOptions::LargeConfig::kSeenUnion});
           }});
    r.add({.name = "rand",
           .description = "RAND-OMFLP, the paper's randomized Algorithm 2 "
                          "(Theorem 19)",
           .randomized = true,
           .make = [](std::uint64_t seed) {
             return std::make_unique<RandOmflp>(RandOptions{.seed = seed});
           }});
    r.add({.name = "fotakis",
           .description = "per-commodity product of Fotakis' deterministic "
                          "OFL (the §1.3 O(|S| log n) baseline)",
           .make = [](std::uint64_t) {
             return std::unique_ptr<OnlineAlgorithm>(
                 PerCommodityAdapter::fotakis());
           }});
    r.add({.name = "meyerson",
           .description = "per-commodity product of Meyerson's randomized "
                          "OFL",
           .randomized = true,
           .make = [](std::uint64_t seed) {
             return std::unique_ptr<OnlineAlgorithm>(
                 PerCommodityAdapter::meyerson(seed));
           }});
    r.add({.name = "greedy",
           .description = "NearestOrOpen: connect if cheaper than opening, "
                          "no amortization",
           .make = [](std::uint64_t) {
             return std::make_unique<NearestOrOpen>();
           }});
    r.add({.name = "rentbuy",
           .description = "RentOrBuy: NearestOrOpen with a ski-rental "
                          "account per commodity",
           .make = [](std::uint64_t) {
             return std::make_unique<RentOrBuy>();
           }});
    r.add({.name = "alwaysopen",
           .description = "open a facility with exactly the demand set at "
                          "every request (strawman)",
           .make = [](std::uint64_t) {
             return std::make_unique<AlwaysOpen>();
           }});
    return r;
  }();
  return registry;
}

}  // namespace omflp
