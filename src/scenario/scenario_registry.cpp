#include "scenario/scenario_registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "cost/cost_models.hpp"
#include "cost/heavy.hpp"
#include "instance/adversarial.hpp"
#include "instance/generators.hpp"
#include "metric/line_metric.hpp"
#include "scenario/registry_util.hpp"
#include "support/rng.hpp"

namespace omflp {

// ------------------------------------------------------- ScenarioParams ---

double ScenarioParams::at(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end())
    throw std::invalid_argument("ScenarioParams: factory read undeclared "
                                "parameter '" +
                                name + "'");
  return it->second;
}

std::size_t ScenarioParams::size_t_at(const std::string& name) const {
  const double value = at(name);
  // 2^53: beyond this doubles skip integers and the cast is lossy (and
  // for values >= 2^64 outright undefined).
  constexpr double kMaxExact = 9007199254740992.0;
  if (value < 0.0 || value > kMaxExact || value != std::floor(value))
    throw std::invalid_argument("ScenarioParams: parameter '" + name +
                                "' must be a non-negative integer <= 2^53, "
                                "got " +
                                std::to_string(value));
  return static_cast<std::size_t>(value);
}

CommodityId ScenarioParams::commodity_at(const std::string& name) const {
  const std::size_t value = size_t_at(name);
  if (value > std::numeric_limits<CommodityId>::max())
    throw std::invalid_argument("ScenarioParams: parameter '" + name +
                                "' exceeds the commodity-id range, got " +
                                std::to_string(value));
  return static_cast<CommodityId>(value);
}

// ----------------------------------------------------- ScenarioRegistry ---

void ScenarioRegistry::add(ScenarioSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument("ScenarioRegistry: empty scenario name");
  if (!spec.make)
    throw std::invalid_argument("ScenarioRegistry: scenario '" + spec.name +
                                "' has no factory");
  if (!specs_.emplace(spec.name, std::move(spec)).second)
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" +
                                spec.name + "'");
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return specs_.count(name) != 0;
}

const ScenarioSpec& ScenarioRegistry::spec(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end())
    throw std::invalid_argument("unknown scenario '" + name +
                                "'; known scenarios: " + join_names(names()));
  return it->second;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, _] : specs_) out.push_back(name);
  return out;  // std::map iterates sorted
}

ScenarioParams resolve_scenario_params(
    const std::string& scenario_name,
    const std::vector<ScenarioParam>& declared,
    const std::map<std::string, double>& overrides, bool strict) {
  std::map<std::string, double> values;
  for (const ScenarioParam& param : declared)
    values[param.name] = param.value;
  for (const auto& [key, value] : overrides) {
    const auto it = values.find(key);
    if (it == values.end()) {
      if (!strict) continue;
      std::vector<std::string> names;
      for (const ScenarioParam& param : declared)
        names.push_back(param.name);
      throw std::invalid_argument("scenario '" + scenario_name +
                                  "' has no parameter '" + key +
                                  "'; declared parameters: " +
                                  join_names(names));
    }
    it->second = value;
  }
  return ScenarioParams(std::move(values));
}

Instance ScenarioRegistry::make(
    const std::string& name, std::uint64_t seed,
    const std::map<std::string, double>& overrides) const {
  const ScenarioSpec& s = spec(name);
  return s.make(
      resolve_scenario_params(s.name, s.params, overrides, /*strict=*/true),
      seed);
}

Instance ScenarioRegistry::make_lenient(
    const std::string& name, std::uint64_t seed,
    const std::map<std::string, double>& overrides) const {
  const ScenarioSpec& s = spec(name);
  return s.make(
      resolve_scenario_params(s.name, s.params, overrides, /*strict=*/false),
      seed);
}

// ----------------------------------------------------------- built-ins ---

namespace {

/// Every location-ambivalent scenario prices facilities with the paper's
/// class C: g_x(k) = scale·k^{x/2}. The two knobs are declared on each
/// scenario so sweeps can move along the cost-class axis.
std::vector<ScenarioParam> cost_params(double scale) {
  return {{"cost_exponent", 1.0, "class-C exponent x in [0,2]"},
          {"cost_scale", scale, "overall opening-cost scale"}};
}

CostModelPtr poly_cost(const ScenarioParams& p, CommodityId commodities) {
  return std::make_shared<PolynomialCostModel>(
      commodities, p.at("cost_exponent"), p.at("cost_scale"));
}

void append(std::vector<ScenarioParam>& params,
            std::vector<ScenarioParam> extra) {
  for (ScenarioParam& param : extra) params.push_back(std::move(param));
}

// Figure 3's engineered cost model: singletons near-free at the small
// sites, bundles near-free only at the large site, everything else
// prohibitive (see bench_fig3_connection_choice.cpp for the full story).
constexpr double kFig3Tiny = 1e-4;
constexpr double kFig3Huge = 1e6;

class Fig3Cost final : public FacilityCostModel {
 public:
  CommodityId num_commodities() const noexcept override { return 3; }
  double open_cost(PointId m, const CommoditySet& config) const override {
    const CommodityId size = check_config(config);
    if (size == 0) return 0.0;
    if (m >= 1 && m <= 4 && size == 1) return kFig3Tiny;
    if (m == 4) return kFig3Tiny * size;
    return kFig3Huge * size;
  }
  std::string description() const override { return "figure3-scenario"; }
};

void register_generators(ScenarioRegistry& registry) {
  {
    std::vector<ScenarioParam> params = {
        {"points", 32, "|M|, evenly spaced on the line"},
        {"length", 100, "line length"},
        {"requests", 96, "number of requests n"},
        {"commodities", 12, "|S|"},
        {"min_demand", 1, "smallest demand-set size"},
        {"max_demand", 4, "largest demand-set size"},
        {"popularity_exponent", 0.8, "Zipf exponent for commodity choice"}};
    append(params, cost_params(2.0));
    registry.add(
        {.name = "uniform-line",
         .description = "requests at uniform line positions, Zipf-popular "
                        "demand sets",
         .params = std::move(params),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           UniformLineConfig cfg;
           cfg.num_points = p.size_t_at("points");
           cfg.length = p.at("length");
           cfg.num_requests = p.size_t_at("requests");
           cfg.num_commodities =
               p.commodity_at("commodities");
           cfg.min_demand = p.commodity_at("min_demand");
           cfg.max_demand = p.commodity_at("max_demand");
           cfg.popularity_exponent = p.at("popularity_exponent");
           return make_uniform_line(cfg, poly_cost(p, cfg.num_commodities),
                                    rng);
         }});
  }
  {
    std::vector<ScenarioParam> params = {
        {"clusters", 6, "number of well-separated clusters"},
        {"requests_per_cluster", 16, "requests per cluster"},
        {"radius", 1, "cluster radius"},
        {"separation", 500, "distance between adjacent centers"},
        {"commodities", 12, "|S|"},
        {"commodities_per_cluster", 4, "home-set size per cluster"},
        {"subset_demands", 1, "1: random subsets of the home set, 0: full"},
        {"interleave", 1, "1: round-robin across clusters"}};
    append(params, cost_params(2.0));
    registry.add(
        {.name = "clustered",
         .description = "well-separated clusters with per-cluster home "
                        "commodity sets (known near-OPT)",
         .params = std::move(params),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           ClusteredConfig cfg;
           cfg.num_clusters = p.size_t_at("clusters");
           cfg.requests_per_cluster = p.size_t_at("requests_per_cluster");
           cfg.cluster_radius = p.at("radius");
           cfg.separation = p.at("separation");
           cfg.num_commodities =
               p.commodity_at("commodities");
           cfg.commodities_per_cluster = p.commodity_at("commodities_per_cluster");
           cfg.subset_demands = p.bool_at("subset_demands");
           cfg.interleave = p.bool_at("interleave");
           return make_clustered_line(cfg, poly_cost(p, cfg.num_commodities),
                                      rng);
         }});
  }
  {
    std::vector<ScenarioParam> params = {
        {"requests", 128, "number of requests"},
        {"initial_distance", 64, "distance of the first request"},
        {"decay", 0.5, "distance multiplier per request"},
        {"commodities", 8, "|S|"},
        {"demand_size", 4, "every request demands {0..demand_size-1}"}};
    append(params, cost_params(1.0));
    registry.add(
        {.name = "zooming",
         .description = "geometrically approaching requests — the classic "
                        "hard input driving the log n factor",
         .params = std::move(params),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           ZoomingConfig cfg;
           cfg.num_requests = p.size_t_at("requests");
           cfg.initial_distance = p.at("initial_distance");
           cfg.decay = p.at("decay");
           cfg.num_commodities =
               p.commodity_at("commodities");
           cfg.demand_size =
               p.commodity_at("demand_size");
           return make_zooming_line(cfg, poly_cost(p, cfg.num_commodities),
                                    rng);
         }});
  }
  {
    std::vector<ScenarioParam> params = {
        {"nodes", 32, "graph nodes"},
        {"extra_edge_fraction", 0.5, "extra random edges / nodes"},
        {"max_edge_weight", 10, "maximum edge weight"},
        {"requests", 96, "number of requests"},
        {"commodities", 12, "|S|"},
        {"min_demand", 1, "smallest demand-set size"},
        {"max_demand", 5, "largest demand-set size"},
        {"node_popularity_exponent", 0.7, "Zipf exponent over nodes"},
        {"commodity_popularity_exponent", 0.9, "Zipf exponent over S"}};
    append(params, cost_params(2.0));
    registry.add(
        {.name = "service-network",
         .description = "random connected service graph, Zipf-popular nodes "
                        "and service bundles (the paper's §1 motivation)",
         .params = std::move(params),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           ServiceNetworkConfig cfg;
           cfg.num_nodes = p.size_t_at("nodes");
           cfg.extra_edge_fraction = p.at("extra_edge_fraction");
           cfg.max_edge_weight = p.at("max_edge_weight");
           cfg.num_requests = p.size_t_at("requests");
           cfg.num_commodities =
               p.commodity_at("commodities");
           cfg.min_demand = p.commodity_at("min_demand");
           cfg.max_demand = p.commodity_at("max_demand");
           cfg.node_popularity_exponent = p.at("node_popularity_exponent");
           cfg.commodity_popularity_exponent =
               p.at("commodity_popularity_exponent");
           return make_service_network(cfg, poly_cost(p, cfg.num_commodities),
                                       rng);
         }});
  }
  {
    std::vector<ScenarioParam> params = {
        {"requests", 48, "number of requests"},
        {"commodities", 12, "|S|"},
        {"min_demand", 1, "smallest demand-set size"},
        {"max_demand", 6, "largest demand-set size"}};
    append(params, cost_params(1.0));
    registry.add(
        {.name = "single-point-mixed",
         .description = "everything on one point, random demand sets — a "
                        "pure configuration-choice stress test",
         .params = std::move(params),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           SinglePointMixedConfig cfg;
           cfg.num_requests = p.size_t_at("requests");
           cfg.num_commodities =
               p.commodity_at("commodities");
           cfg.min_demand = p.commodity_at("min_demand");
           cfg.max_demand = p.commodity_at("max_demand");
           return make_single_point_mixed(
               cfg, poly_cost(p, cfg.num_commodities), rng);
         }});
  }
  {
    std::vector<ScenarioParam> params = {
        {"requests", 32, "number of requests"},
        {"commodities", 16, "|S|; demands overlap in at least |S|/2"}};
    append(params, cost_params(1.0));
    registry.add(
        {.name = "shared-demand",
         .description = "single point, large overlapping bundles — the "
                        "workload where bundling matters most (Theorem 4 "
                        "bench)",
         .params = std::move(params),
         .make = [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           SinglePointMixedConfig cfg;
           cfg.num_requests = p.size_t_at("requests");
           cfg.num_commodities =
               p.commodity_at("commodities");
           cfg.min_demand =
               std::max<CommodityId>(1, cfg.num_commodities / 2);
           cfg.max_demand = cfg.num_commodities;
           return make_single_point_mixed(
               cfg, poly_cost(p, cfg.num_commodities), rng);
         }});
  }
  registry.add(
      {.name = "heavy-tail",
       .description = "shared bundle plus one heavy commodity priced "
                      "additively on top of a sqrt base (§5 closing "
                      "remarks; known exact OPT)",
       .params = {{"non_heavy", 12, "number of regular commodities"},
                  {"heavy_weight", 50, "additive cost of the heavy one"},
                  {"requests", 24, "number of requests"}},
       .make = [](const ScenarioParams& p, std::uint64_t seed) {
         (void)seed;  // fully deterministic workload
         const CommodityId non_heavy =
             p.commodity_at("non_heavy");
         const CommodityId s = non_heavy + 1;
         std::vector<double> weights(s, 0.0);
         weights[non_heavy] = p.at("heavy_weight");
         auto cost = std::make_shared<HeavyTailCostModel>(
             s,
             [](CommodityId k) {
               return 2.0 * std::sqrt(static_cast<double>(k));
             },
             CommoditySet::singleton(s, non_heavy), std::move(weights));
         CommoditySet bundle(s);
         for (CommodityId e = 0; e < non_heavy; ++e) bundle.add(e);
         std::vector<Request> requests(p.size_t_at("requests"),
                                       Request{0, bundle});
         Instance instance(std::make_shared<SinglePointMetric>(),
                           std::move(cost), std::move(requests),
                           "heavy-tail");
         instance.set_opt_certificate(OptCertificate{
             2.0 * std::sqrt(static_cast<double>(non_heavy)),
             /*exact=*/true, "one non-heavy bundle facility"});
         return instance;
       }});
}

void register_adversarial(ScenarioRegistry& registry) {
  registry.add(
      {.name = "theorem2",
       .description = "the Theorem 2 / Figure 1 single-point game: request "
                      "sqrt(|S|) random commodities one at a time under "
                      "cost ceil(|sigma|/sqrt(|S|)); OPT = scale exactly",
       .params = {{"commodities", 64, "|S|; the game plays floor(sqrt(|S|)) "
                                      "rounds"},
                  {"cost_scale", 1.0, "overall opening-cost scale"}},
       .make = [](const ScenarioParams& p, std::uint64_t seed) {
         Rng rng(seed);
         Theorem2Config cfg;
         cfg.num_commodities =
             p.commodity_at("commodities");
         cfg.cost_scale = p.at("cost_scale");
         return make_theorem2_instance(cfg, rng);
       }});
  registry.add(
      {.name = "theorem18",
       .description = "the Theorem 2 sequence under the class-C cost g_x "
                      "(the §3.3.2 adaptive lower bound)",
       .params = {{"commodities", 64, "|S|"},
                  {"cost_exponent", 1.0, "class-C exponent x in [0,2]"},
                  {"cost_scale", 1.0, "overall opening-cost scale"}},
       .make = [](const ScenarioParams& p, std::uint64_t seed) {
         Rng rng(seed);
         Theorem18Config cfg;
         cfg.num_commodities =
             p.commodity_at("commodities");
         cfg.exponent_x = p.at("cost_exponent");
         cfg.cost_scale = p.at("cost_scale");
         return make_theorem18_instance(cfg, rng);
       }});
  registry.add(
      {.name = "figure3",
       .description = "the Figure 3 probe: priming opens three small "
                      "facilities at d_small and one large at d_large, then "
                      "a request demands all three commodities",
       .params = {{"d_small", 1.0, "distance to each small-facility site"},
                  {"d_large", 2.0, "distance to the large-facility site"}},
       .make = [](const ScenarioParams& p, std::uint64_t seed) {
         (void)seed;  // the figure is a fixed, deterministic construction
         const double d_small = p.at("d_small");
         const double d_large = p.at("d_large");
         std::vector<double> positions = {0.0, d_small, -d_small, d_small,
                                          d_large};
         std::vector<Request> requests;
         for (CommodityId e = 0; e < 3; ++e)
           requests.push_back(Request{static_cast<PointId>(1 + e),
                                      CommoditySet::singleton(3, e)});
         requests.push_back(Request{4, CommoditySet::full_set(3)});
         requests.push_back(Request{0, CommoditySet::full_set(3)});
         return Instance(std::make_shared<LineMetric>(positions),
                         std::make_shared<Fig3Cost>(), std::move(requests),
                         "figure3");
       }});
}

}  // namespace

const ScenarioRegistry& default_scenario_registry() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    register_generators(r);
    register_adversarial(r);
    return r;
  }();
  return registry;
}

}  // namespace omflp
