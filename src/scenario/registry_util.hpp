// Small helpers shared by the scenario and algorithm registries.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace omflp {

/// "a, b, c" — for unknown-name error messages listing the known names.
inline std::string join_names(const std::vector<std::string>& names) {
  std::ostringstream os;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ", ";
    os << names[i];
  }
  return os.str();
}

/// Decorrelate an algorithm's coin stream from the workload seed.
///
/// Scenario factories construct `Rng(seed)` directly, and RandOmflp does
/// the same with its option seed — handing both the identical value would
/// replay the generator's exact draw sequence inside the algorithm,
/// correlating coins with the input. Deriving the coin seed through one
/// SplitMix64 step (distinct increment) keeps runs deterministic in the
/// user-facing seed while separating the two streams.
inline std::uint64_t derive_algorithm_seed(
    std::uint64_t workload_seed) noexcept {
  std::uint64_t z = (workload_seed + 0x632be59bd9b4e019ULL) *
                    0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace omflp
