// AlgorithmRegistry — named OnlineAlgorithm factories.
//
// Maps a stable string name to a factory `seed -> unique_ptr<algorithm>`.
// Deterministic algorithms ignore the seed; randomized ones derive their
// coin flips from it, so a (name, seed) pair always reproduces the same
// run. default_algorithm_registry() ships the full roster: the paper's
// PD-OMFLP (plus its no-prediction and seen-union ablations), RAND-OMFLP,
// the per-commodity Fotakis / Meyerson baselines, and the greedy
// strawmen — the single source of truth the benches, examples, the omflp
// CLI and the sweep driver all share.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/online_algorithm.hpp"

namespace omflp {

struct AlgorithmSpec {
  std::string name;
  std::string description;
  /// True when two runs with different seeds may differ.
  bool randomized = false;
  std::function<std::unique_ptr<OnlineAlgorithm>(std::uint64_t seed)> make;
};

class AlgorithmRegistry {
 public:
  /// Registers an algorithm; throws std::invalid_argument on an empty or
  /// duplicate name or a missing factory.
  void add(AlgorithmSpec spec);

  bool contains(const std::string& name) const;
  /// Throws std::invalid_argument listing the known names when absent.
  const AlgorithmSpec& spec(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return specs_.size(); }

  std::unique_ptr<OnlineAlgorithm> make(const std::string& name,
                                        std::uint64_t seed = 1) const;

 private:
  std::map<std::string, AlgorithmSpec> specs_;
};

/// The registry with the standard roster registered (shared, initialized
/// on first use, safe for concurrent readers).
const AlgorithmRegistry& default_algorithm_registry();

}  // namespace omflp
