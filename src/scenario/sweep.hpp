// SweepDriver — mass-run the (scenario × algorithm × seed) cross-product.
//
// The driver fans the per-(scenario, seed) work out over
// support/parallel.hpp: each unit generates the instance, estimates OPT
// once, then measures every algorithm of the roster against that shared
// estimate (so an S-algorithm sweep costs one OPT estimation per
// instance, not S). Results land in preallocated slots indexed by
// (scenario, seed), making the outcome — and the order samples enter each
// per-cell Summary — identical for every thread count. A sweep is a
// deterministic function of its options.
//
// Emission: write_csv produces one row per (scenario, algorithm) cell;
// write_json the same cells as a JSON array, both with mean / CI /
// min-max ratio statistics, cost decompositions, and per-cell timing
// (wall_ms / requests_per_sec of the online runs). Cost statistics are a
// deterministic function of the options; the timing columns are wall
// clock and naturally vary run to run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "offline/opt_estimate.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/scenario_registry.hpp"
#include "support/stats.hpp"

namespace omflp {

struct SweepOptions {
  /// Scenario / algorithm names to cross; empty means "all registered".
  std::vector<std::string> scenarios;
  std::vector<std::string> algorithms;
  /// Seeds 'seed_base .. seed_base + seeds - 1' run per cell.
  std::size_t seeds = 8;
  std::uint64_t seed_base = 1;
  /// Parameter overrides applied to every scenario that declares the key
  /// (undeclared keys are skipped — sweeps cross heterogeneous scenarios).
  std::map<std::string, double> overrides;
  /// Worker threads for the fan-out; 0 = default_thread_count().
  std::size_t threads = 0;
  OptEstimateOptions opt;
};

/// Aggregated statistics of one (scenario, algorithm) cell.
struct SweepCell {
  std::string scenario;
  std::string algorithm;
  Summary ratio;             // algorithm cost / OPT estimate
  Summary total_cost;
  Summary opening_cost;
  Summary connection_cost;
  Summary facilities;        // facilities opened
  Summary wall_ms;           // online run wall time per trial (ms)
  Summary requests_per_sec;  // throughput per trial
  std::size_t opt_exact = 0;  // trials whose OPT estimate was exact
  /// Certified columns (populated when opt.compute_lower; all-zero
  /// Summaries otherwise). `lower` is the certified lower bound on OPT,
  /// `certified_ratio` = cost / lower (an over-estimate of the true
  /// ratio — the safe side), and `gap` = (upper − lower) / upper, the
  /// relative width of the [lower, upper] OPT bracket (0 = exact).
  Summary lower;
  Summary certified_ratio;
  Summary gap;
  std::size_t lower_certified = 0;  // trials with a certified lower bound
};

class SweepResult {
 public:
  SweepResult(std::vector<std::string> scenarios,
              std::vector<std::string> algorithms, std::size_t seeds,
              std::vector<SweepCell> cells);

  /// Cells in scenario-major, algorithm-minor order.
  const std::vector<SweepCell>& cells() const noexcept { return cells_; }
  const SweepCell& cell(const std::string& scenario,
                        const std::string& algorithm) const;

  const std::vector<std::string>& scenarios() const noexcept {
    return scenarios_;
  }
  const std::vector<std::string>& algorithms() const noexcept {
    return algorithms_;
  }
  std::size_t seeds() const noexcept { return seeds_; }

  /// One CSV row per (scenario, algorithm) cell.
  void write_csv(std::ostream& os) const;
  /// The same cells as a JSON array of objects.
  void write_json(std::ostream& os) const;

 private:
  std::vector<std::string> scenarios_;
  std::vector<std::string> algorithms_;
  std::size_t seeds_ = 0;
  std::vector<SweepCell> cells_;
};

/// Run the full cross-product. Throws on an unknown scenario/algorithm
/// name before any work starts; exceptions from workers (e.g. a verifier
/// failure) propagate to the caller.
SweepResult run_sweep(const SweepOptions& options,
                      const ScenarioRegistry& scenarios =
                          default_scenario_registry(),
                      const AlgorithmRegistry& algorithms =
                          default_algorithm_registry());

}  // namespace omflp
