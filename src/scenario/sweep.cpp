#include "scenario/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "analysis/competitive.hpp"
#include "scenario/registry_util.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace omflp {

SweepResult::SweepResult(std::vector<std::string> scenarios,
                         std::vector<std::string> algorithms,
                         std::size_t seeds, std::vector<SweepCell> cells)
    : scenarios_(std::move(scenarios)),
      algorithms_(std::move(algorithms)),
      seeds_(seeds),
      cells_(std::move(cells)) {}

const SweepCell& SweepResult::cell(const std::string& scenario,
                                   const std::string& algorithm) const {
  for (const SweepCell& c : cells_)
    if (c.scenario == scenario && c.algorithm == algorithm) return c;
  throw std::invalid_argument("SweepResult: no cell (" + scenario + ", " +
                              algorithm + ")");
}

void SweepResult::write_csv(std::ostream& os) const {
  TableWriter table({"scenario", "algorithm", "seeds", "ratio_mean",
                     "ratio_ci95", "ratio_min", "ratio_max", "cost_mean",
                     "opening_mean", "connection_mean", "facilities_mean",
                     "wall_ms_mean", "requests_per_sec_mean", "opt_exact",
                     "lower_mean", "certified_ratio_mean",
                     "certified_ratio_max", "gap_mean", "lower_certified"});
  table.set_precision(6);
  for (const SweepCell& c : cells_) {
    table.begin_row()
        .add(c.scenario)
        .add(c.algorithm)
        .add(c.ratio.count())
        .add(c.ratio.mean())
        .add(c.ratio.ci95_halfwidth())
        .add(c.ratio.min())
        .add(c.ratio.max())
        .add(c.total_cost.mean())
        .add(c.opening_cost.mean())
        .add(c.connection_cost.mean())
        .add(c.facilities.mean())
        .add(c.wall_ms.mean())
        .add(c.requests_per_sec.mean())
        .add(c.opt_exact)
        .add(c.lower.count() ? c.lower.mean() : 0.0)
        .add(c.certified_ratio.count() ? c.certified_ratio.mean() : 0.0)
        .add(c.certified_ratio.count() ? c.certified_ratio.max() : 0.0)
        .add(c.gap.count() ? c.gap.mean() : 0.0)
        .add(c.lower_certified);
  }
  table.write_csv(os);
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(ch) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(ch));
      out += buffer;
      continue;
    }
    out.push_back(ch);
  }
  return out;
}

}  // namespace

void SweepResult::write_json(std::ostream& os) const {
  os.precision(17);
  os << "[\n";
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const SweepCell& c = cells_[i];
    os << "  {\"scenario\": \"" << json_escape(c.scenario)
       << "\", \"algorithm\": \"" << json_escape(c.algorithm)
       << "\", \"seeds\": " << c.ratio.count()
       << ", \"ratio_mean\": " << c.ratio.mean()
       << ", \"ratio_ci95\": " << c.ratio.ci95_halfwidth()
       << ", \"ratio_min\": " << c.ratio.min()
       << ", \"ratio_max\": " << c.ratio.max()
       << ", \"cost_mean\": " << c.total_cost.mean()
       << ", \"opening_mean\": " << c.opening_cost.mean()
       << ", \"connection_mean\": " << c.connection_cost.mean()
       << ", \"facilities_mean\": " << c.facilities.mean()
       << ", \"wall_ms_mean\": " << c.wall_ms.mean()
       << ", \"wall_ms_max\": " << c.wall_ms.max()
       << ", \"requests_per_sec_mean\": " << c.requests_per_sec.mean()
       << ", \"opt_exact\": " << c.opt_exact
       << ", \"lower_mean\": " << (c.lower.count() ? c.lower.mean() : 0.0)
       << ", \"certified_ratio_mean\": "
       << (c.certified_ratio.count() ? c.certified_ratio.mean() : 0.0)
       << ", \"certified_ratio_max\": "
       << (c.certified_ratio.count() ? c.certified_ratio.max() : 0.0)
       << ", \"gap_mean\": " << (c.gap.count() ? c.gap.mean() : 0.0)
       << ", \"lower_certified\": " << c.lower_certified << "}"
       << (i + 1 < cells_.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

namespace {

/// One (scenario, seed, algorithm) measurement, collected by the workers.
struct TrialRow {
  double ratio = 0.0;
  double total = 0.0;
  double opening = 0.0;
  double connection = 0.0;
  double facilities = 0.0;
  double wall_ms = 0.0;
  double requests_per_sec = 0.0;
  bool opt_exact = false;
  double lower = 0.0;
  double certified_ratio = 0.0;
  double gap = 0.0;
  bool lower_certified = false;
};

}  // namespace

SweepResult run_sweep(const SweepOptions& options,
                      const ScenarioRegistry& scenarios,
                      const AlgorithmRegistry& algorithms) {
  std::vector<std::string> scenario_names =
      options.scenarios.empty() ? scenarios.names() : options.scenarios;
  std::vector<std::string> algorithm_names =
      options.algorithms.empty() ? algorithms.names() : options.algorithms;
  if (options.seeds == 0)
    throw std::invalid_argument("run_sweep: seeds must be positive");
  // Resolve every name up front so a typo fails before any work runs.
  for (const std::string& name : scenario_names) (void)scenarios.spec(name);
  for (const std::string& name : algorithm_names) (void)algorithms.spec(name);
  // Overrides apply leniently per scenario (heterogeneous sweeps), but a
  // key declared by *no* selected scenario is always a typo — fail fast
  // instead of silently sweeping at the defaults.
  for (const auto& [key, _] : options.overrides) {
    bool declared = false;
    for (const std::string& name : scenario_names) {
      for (const ScenarioParam& param : scenarios.spec(name).params)
        if (param.name == key) {
          declared = true;
          break;
        }
      if (declared) break;
    }
    if (!declared)
      throw std::invalid_argument(
          "run_sweep: override '" + key +
          "' is not declared by any selected scenario");
  }

  const std::size_t num_scenarios = scenario_names.size();
  const std::size_t num_algorithms = algorithm_names.size();
  const std::size_t num_seeds = options.seeds;

  // results[(scenario, seed)][algorithm]: each parallel unit owns one
  // disjoint slot, so collection needs no synchronization and the outcome
  // is independent of scheduling.
  std::vector<std::vector<TrialRow>> results(
      num_scenarios * num_seeds, std::vector<TrialRow>(num_algorithms));

  parallel_for(
      num_scenarios * num_seeds,
      [&](std::size_t unit) {
        const std::size_t scenario_index = unit / num_seeds;
        const std::size_t seed_index = unit % num_seeds;
        const std::uint64_t seed = options.seed_base + seed_index;
        const Instance instance = scenarios.make_lenient(
            scenario_names[scenario_index], seed, options.overrides);
        const OptEstimate opt = estimate_opt(instance, options.opt);
        for (std::size_t a = 0; a < num_algorithms; ++a) {
          auto algorithm = algorithms.make(algorithm_names[a],
                                           derive_algorithm_seed(seed));
          const RatioResult measured =
              measure_ratio(*algorithm, instance, opt);
          TrialRow& row = results[unit][a];
          row.ratio = measured.ratio;
          row.total = measured.algorithm_cost;
          row.opening = measured.opening_cost;
          row.connection = measured.connection_cost;
          row.facilities =
              static_cast<double>(measured.facilities_opened);
          row.wall_ms = measured.run_ns / 1e6;
          // run_ns is clock-quantized; clamp so trivial runs do not
          // divide by zero.
          row.requests_per_sec =
              static_cast<double>(instance.num_requests()) * 1e9 /
              std::max(measured.run_ns, 1.0);
          row.opt_exact = measured.opt_exact;
          row.lower_certified = measured.opt_lower_certified;
          if (measured.opt_lower_certified) {
            row.lower = measured.opt_lower;
            row.certified_ratio = measured.certified_ratio;
            row.gap = measured.opt_cost > 0.0
                          ? (measured.opt_cost - measured.opt_lower) /
                                measured.opt_cost
                          : 0.0;
          }
        }
      },
      options.threads);

  // Reduce in (scenario, algorithm, seed) order — deterministic summaries.
  std::vector<SweepCell> cells;
  cells.reserve(num_scenarios * num_algorithms);
  for (std::size_t s = 0; s < num_scenarios; ++s) {
    for (std::size_t a = 0; a < num_algorithms; ++a) {
      SweepCell cell;
      cell.scenario = scenario_names[s];
      cell.algorithm = algorithm_names[a];
      for (std::size_t k = 0; k < num_seeds; ++k) {
        const TrialRow& row = results[s * num_seeds + k][a];
        cell.ratio.add(row.ratio);
        cell.total_cost.add(row.total);
        cell.opening_cost.add(row.opening);
        cell.connection_cost.add(row.connection);
        cell.facilities.add(row.facilities);
        cell.wall_ms.add(row.wall_ms);
        cell.requests_per_sec.add(row.requests_per_sec);
        if (row.opt_exact) ++cell.opt_exact;
        if (row.lower_certified) {
          ++cell.lower_certified;
          cell.lower.add(row.lower);
          cell.certified_ratio.add(row.certified_ratio);
          cell.gap.add(row.gap);
        }
      }
      cells.push_back(std::move(cell));
    }
  }
  return SweepResult(std::move(scenario_names), std::move(algorithm_names),
                     num_seeds, std::move(cells));
}

}  // namespace omflp
