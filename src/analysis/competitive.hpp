// Competitive-ratio measurement: run an online algorithm against an
// instance, verify the produced solution, estimate OPT, report the ratio.
#pragma once

#include <string>

#include "core/online_algorithm.hpp"
#include "offline/opt_estimate.hpp"

namespace omflp {

struct RatioResult {
  std::string algorithm;
  double algorithm_cost = 0.0;
  double opening_cost = 0.0;
  double connection_cost = 0.0;
  std::size_t facilities_opened = 0;
  double opt_cost = 0.0;
  bool opt_exact = false;
  std::string opt_method;
  double ratio = 0.0;  // algorithm_cost / opt_cost
  /// Certified lower bound on OPT carried over from the estimate (0 and
  /// uncertified when the bound layer does not support the instance).
  double opt_lower = 0.0;
  bool opt_lower_certified = false;
  std::string opt_lower_method = "none";
  /// algorithm_cost / opt_lower — an *over*-estimate of the true ratio
  /// (the safe side for validating the paper's upper-bound theorems).
  /// Together with `ratio` it brackets the truth:
  /// ratio ≤ true ratio ≤ certified_ratio. 0 when uncertified or the
  /// lower bound is 0.
  double certified_ratio = 0.0;
  /// Wall time of the online run itself (reset + every serve), excluding
  /// verification and OPT estimation. Feeds the sweep timing columns.
  double run_ns = 0.0;
};

/// Runs, verifies (throws std::logic_error on a verifier failure — a
/// measurement against an invalid solution is meaningless), estimates OPT
/// and returns the ratio.
RatioResult measure_ratio(OnlineAlgorithm& algorithm,
                          const Instance& instance,
                          const OptEstimateOptions& opt_options = {});

/// Variant reusing a precomputed OPT estimate (e.g. when several
/// algorithms run on the same instance).
RatioResult measure_ratio(OnlineAlgorithm& algorithm,
                          const Instance& instance, const OptEstimate& opt);

}  // namespace omflp
