#include "analysis/experiment.hpp"

#include <iostream>
#include <mutex>
#include <vector>

#include "support/parallel.hpp"

namespace omflp {

Summary run_trials(std::size_t trials,
                   const std::function<double(std::size_t)>& trial_fn) {
  std::vector<double> samples(trials, 0.0);
  parallel_for(trials,
               [&](std::size_t i) { samples[i] = trial_fn(i); });
  Summary summary;
  for (double s : samples) summary.add(s);
  return summary;
}

bool bench_full_scale() {
  const char* env = std::getenv("OMFLP_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

void print_bench_header(const std::string& title,
                        const std::string& paper_reference,
                        const std::string& expectation) {
  std::cout << "\n## " << title << "\n\n";
  std::cout << "Paper reference: " << paper_reference << "\n";
  std::cout << "Expected shape:  " << expectation << "\n";
  std::cout << "Scale:           "
            << (bench_full_scale() ? "full (OMFLP_BENCH_FULL=1)" : "fast")
            << "\n\n";
}

}  // namespace omflp
