// Parallel experiment runner for the bench binaries.
//
// Every bench is a sweep over parameter points, each measured over several
// seeded trials. Trials are deterministic functions of the trial index
// (generators and randomized algorithms derive substreams from it), so
// runs are reproducible regardless of the thread count.
#pragma once

#include <cstdlib>
#include <functional>
#include <string>

#include "support/stats.hpp"

namespace omflp {

/// Run `trials` independent trials of `trial_fn(trial_index) -> sample`
/// in parallel and collect the samples. Exceptions propagate.
Summary run_trials(std::size_t trials,
                   const std::function<double(std::size_t)>& trial_fn);

/// Benchmark scale selector: benches run a fast sweep by default and a
/// larger one when OMFLP_BENCH_FULL=1 is set, so the whole suite stays
/// usable in CI while still supporting paper-scale runs.
bool bench_full_scale();

/// Convenience: picks between the fast and full value.
template <typename T>
T bench_pick(T fast, T full) {
  return bench_full_scale() ? full : fast;
}

/// Standard header benches print before their tables.
void print_bench_header(const std::string& title,
                        const std::string& paper_reference,
                        const std::string& expectation);

}  // namespace omflp
