// c-ordered covering — the combinatorial engine of the paper's dual-
// feasibility proof (Definition 9, Lemmas 10–12, Section 3.2.2).
//
// An instance over elements 0..n−1 specifies for every element i a
// partition of {0..i−1} into A_i ∪ B_i with the *nesting* property
// B_i ⊆ B_j for i < j, and offers two kinds of covering sets:
//    {i}        at weight c / (|B_i| + 1)
//    {i} ∪ A_i  at weight c.
// Lemma 12: all of {0..n−1} can be covered at weight ≤ 2·c·H_n.
//
// The cover() method implements the constructive proof: per Lemma 10 it
// covers the last *block* (maximal suffix with equal B) by the cheaper of
// (a) the single set {n−1} ∪ A_{n−1} (weight c, covers n − |B| elements)
// or (b) one singleton per block member (weight c/(|B|+1) each), then
// removes the covered elements per Lemma 11 and repeats. The paper's
// analysis applies this with c = f^σ_m + λ to bound Σ_r (a_r − d(m,r))+.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace omflp {

class COrderedInstance {
 public:
  /// b_sizes[i] = |B_i| (the nested structure is determined up to
  /// relabeling by the sizes; sizes must satisfy 0 ≤ b_i ≤ i and be
  /// non-decreasing, and membership nesting additionally requires that
  /// each B_i extends B_{i−1} — we store explicit member lists).
  /// members[i] must be a subset of {0..i−1} with members[i] ⊇ members[i−1].
  COrderedInstance(std::vector<std::vector<std::size_t>> b_members, double c);

  std::size_t num_elements() const noexcept { return b_.size(); }
  double weight_c() const noexcept { return c_; }
  const std::vector<std::size_t>& b_members(std::size_t i) const;
  std::size_t b_size(std::size_t i) const { return b_members(i).size(); }

  /// A_i = {0..i−1} \ B_i.
  std::vector<std::size_t> a_members(std::size_t i) const;

  /// Throws std::invalid_argument when the nesting/partition properties
  /// fail (used negatively in tests).
  void validate() const;

  struct CoverResult {
    double total_weight = 0.0;
    /// Chosen sets, each a list of covered elements (for audit).
    std::vector<std::vector<std::size_t>> sets;
  };

  /// The Lemma 10/11 greedy; the result covers every element and its
  /// weight is ≤ 2·c·H_n (asserted in tests — this *is* Lemma 12).
  CoverResult cover() const;

  /// Random valid instance: nested B-chains drawn with growth probability
  /// `growth` at each element.
  static COrderedInstance random_instance(std::size_t n, double c,
                                          double growth, Rng& rng);

 private:
  std::vector<std::vector<std::size_t>> b_;  // sorted member lists
  double c_;
};

}  // namespace omflp
