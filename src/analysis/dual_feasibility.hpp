// Empirical verification of the paper's dual-feasibility lemmas.
//
// Corollary 17: the duals a_re produced by PD-OMFLP, scaled by
// γ = 1/(5·√|S|·H_n), form a feasible solution of the dual LP, i.e. for
// every point m and every configuration σ ⊆ S:
//
//     Σ_r ( Σ_{e ∈ s_r ∩ σ} γ·a_re  −  d(m, r) )₊  ≤  f^σ_m.
//
// (Lemma 14 proves it for |σ| ≤ √|S|, Lemma 16 for |σ| > √|S|; the sum of
// positive parts over all requests equals the max over subsets R' ⊆ R, so
// checking the full sum checks every R'.) Together with weak duality this
// is the entire Theorem 4; the checker below turns it into a property
// test: any violation on any instance would falsify the analysis (or,
// more likely, catch a bug in our PD implementation).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/pd_omflp.hpp"
#include "instance/instance.hpp"
#include "support/rng.hpp"

namespace omflp {

struct DualViolation {
  PointId point = 0;
  CommoditySet config;
  double lhs = 0.0;
  double rhs = 0.0;
  std::string what;
};

/// Check the scaled-dual constraint for one (m, σ).
std::optional<DualViolation> check_dual_constraint(
    const Instance& instance, const std::vector<PdDualRecord>& duals,
    double gamma, PointId m, const CommoditySet& config,
    double tolerance = 1e-7);

/// Exhaustive over all points and all non-empty σ (requires |S| ≤ 16).
std::optional<DualViolation> check_dual_feasibility_exhaustive(
    const Instance& instance, const std::vector<PdDualRecord>& duals,
    double gamma, double tolerance = 1e-7);

/// All singletons, the full S, plus `samples` random configurations per
/// point — the scalable variant for larger |S|.
std::optional<DualViolation> check_dual_feasibility_sampled(
    const Instance& instance, const std::vector<PdDualRecord>& duals,
    double gamma, std::size_t samples, Rng& rng, double tolerance = 1e-7);

}  // namespace omflp
