// The paper's bound curves as code (Theorems 2, 4, 18, 19; Figure 2).
//
// Figure 2 plots, for |S| = 10^4 and x ∈ [0, 2], the |S|-dependent factor
// of the deterministic upper bound,  √|S|^{(2x−x²)/2},  against the lower
// bound,  min{ √|S|^{(2−x)/2}, √|S|^{x/2} }.  The two agree at
// x ∈ {0, 1, 2} and both peak at ⁴√|S| for x = 1.
#pragma once

#include <cstddef>
#include <vector>

namespace omflp {

/// √|S|^{(2x−x²)/2} — the |S|-factor of PD-OMFLP's competitive ratio for
/// the class-C cost g_x (Theorem 18, upper bound; Figure 2's blue curve).
double theorem18_upper_factor(double x, double num_commodities);

/// min{√|S|^{(2−x)/2}, √|S|^{x/2}} — the corresponding lower bound
/// (Theorem 18; Figure 2's orange curve).
double theorem18_lower_factor(double x, double num_commodities);

/// √|S|·H_n with the analysis' constant 15 (Theorem 4's explicit bound:
/// Cost(PD-OMFLP) ≤ 15·√|S|·H_n·OPT).
double theorem4_bound(std::size_t num_commodities, std::size_t n);

/// √|S| / 16 — Theorem 2's lower bound on the expected competitive ratio
/// of any randomized algorithm on the adversarial single-point
/// distribution (the proof's explicit constant).
double theorem2_bound(std::size_t num_commodities);

/// One row of the Figure 2 data series.
struct Fig2Row {
  double x = 0.0;
  double upper = 0.0;
  double lower = 0.0;
};

/// The full Figure 2 series: x = 0, step, 2·step, ..., 2.
std::vector<Fig2Row> figure2_series(double num_commodities, double step);

}  // namespace omflp
