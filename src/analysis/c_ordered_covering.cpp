#include "analysis/c_ordered_covering.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace omflp {

COrderedInstance::COrderedInstance(
    std::vector<std::vector<std::size_t>> b_members, double c)
    : b_(std::move(b_members)), c_(c) {
  OMFLP_REQUIRE(c_ > 0.0, "COrderedInstance: weight c must be positive");
  for (auto& b : b_) std::sort(b.begin(), b.end());
  validate();
}

const std::vector<std::size_t>& COrderedInstance::b_members(
    std::size_t i) const {
  OMFLP_REQUIRE(i < b_.size(), "COrderedInstance: element out of range");
  return b_[i];
}

std::vector<std::size_t> COrderedInstance::a_members(std::size_t i) const {
  const std::vector<std::size_t>& b = b_members(i);
  std::vector<std::size_t> a;
  a.reserve(i - b.size());
  std::size_t bi = 0;
  for (std::size_t j = 0; j < i; ++j) {
    if (bi < b.size() && b[bi] == j) {
      ++bi;
    } else {
      a.push_back(j);
    }
  }
  return a;
}

void COrderedInstance::validate() const {
  for (std::size_t i = 0; i < b_.size(); ++i) {
    const auto& b = b_[i];
    for (std::size_t j = 0; j + 1 < b.size(); ++j)
      OMFLP_REQUIRE(b[j] < b[j + 1],
                    "COrderedInstance: B_i must have distinct members");
    for (std::size_t member : b)
      OMFLP_REQUIRE(member < i,
                    "COrderedInstance: B_i must be a subset of {0..i-1}");
    if (i > 0)
      OMFLP_REQUIRE(std::includes(b.begin(), b.end(), b_[i - 1].begin(),
                                  b_[i - 1].end()),
                    "COrderedInstance: nesting B_{i-1} ⊆ B_i violated");
  }
}

COrderedInstance::CoverResult COrderedInstance::cover() const {
  const std::size_t n = b_.size();
  CoverResult result;
  if (n == 0) return result;

  std::vector<std::size_t> live(n);
  for (std::size_t i = 0; i < n; ++i) live[i] = i;

  std::vector<char> in_b(n, 0);  // scratch membership bitmap

  while (!live.empty()) {
    const std::size_t last = live.back();
    const std::size_t b = b_[last].size();

    // The last block: the maximal live suffix with |B_i| = |B_last|
    // (nesting makes equal sizes mean equal sets).
    std::size_t block_begin = live.size();
    while (block_begin > 0 && b_[live[block_begin - 1]].size() == b)
      --block_begin;
    const std::size_t block_len = live.size() - block_begin;

    // Option 1 covers every live element coped by `last` plus `last`
    // itself; since removed elements never appear in remaining B-sets,
    // that is live.size() − |B_last| elements at weight c.
    const std::size_t covered1 = live.size() - b;
    const double per1 = c_ / static_cast<double>(covered1);
    // Option 2 covers the block via singletons at weight c/(|B|+1) each.
    const double per2 = c_ / static_cast<double>(b + 1);

    if (per1 <= per2) {
      for (std::size_t member : b_[last]) in_b[member] = 1;
      std::vector<std::size_t> covered;
      std::vector<std::size_t> remaining;
      covered.reserve(covered1);
      remaining.reserve(b);
      for (std::size_t e : live) {
        if (e != last && in_b[e])
          remaining.push_back(e);
        else
          covered.push_back(e);
      }
      for (std::size_t member : b_[last]) in_b[member] = 0;
      OMFLP_CHECK(covered.size() == covered1,
                  "c-ordered cover: removed elements leaked into a B-set");
      result.total_weight += c_;
      result.sets.push_back(std::move(covered));
      live = std::move(remaining);
    } else {
      for (std::size_t i = block_begin; i < live.size(); ++i) {
        result.total_weight += per2;
        result.sets.push_back({live[i]});
      }
      live.resize(live.size() - block_len);
    }
  }
  return result;
}

COrderedInstance COrderedInstance::random_instance(std::size_t n, double c,
                                                   double growth, Rng& rng) {
  OMFLP_REQUIRE(growth >= 0.0 && growth <= 1.0,
                "random_instance: growth probability in [0,1]");
  std::vector<std::vector<std::size_t>> members(n);
  std::vector<std::size_t> current;  // the growing nested B (sorted)
  std::vector<char> in_b(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && rng.bernoulli(growth)) {
      // Add one uniformly random non-member < i to the chain.
      std::vector<std::size_t> candidates;
      for (std::size_t j = 0; j < i; ++j)
        if (!in_b[j]) candidates.push_back(j);
      if (!candidates.empty()) {
        const std::size_t pick =
            candidates[rng.uniform_index(candidates.size())];
        in_b[pick] = 1;
        current.insert(
            std::lower_bound(current.begin(), current.end(), pick), pick);
      }
    }
    members[i] = current;
  }
  return COrderedInstance(std::move(members), c);
}

}  // namespace omflp
