#include "analysis/competitive.hpp"

#include <stdexcept>

#include "perf/bench_suite.hpp"
#include "solution/verifier.hpp"
#include "support/assert.hpp"

namespace omflp {

RatioResult measure_ratio(OnlineAlgorithm& algorithm,
                          const Instance& instance, const OptEstimate& opt) {
  BenchTimer timer;
  const SolutionLedger ledger = run_online(algorithm, instance);
  const double run_ns = timer.elapsed_ns();
  if (const auto violation = verify_solution(instance, ledger))
    throw std::logic_error("measure_ratio: " + algorithm.name() +
                           " produced an invalid solution: " +
                           violation->what);
  OMFLP_REQUIRE(opt.cost > 0.0,
                "measure_ratio: OPT must be positive for a ratio");
  RatioResult result;
  result.algorithm = algorithm.name();
  result.algorithm_cost = ledger.total_cost();
  result.opening_cost = ledger.opening_cost();
  result.connection_cost = ledger.connection_cost();
  result.facilities_opened = ledger.num_facilities();
  result.opt_cost = opt.cost;
  result.opt_exact = opt.exact;
  result.opt_method = opt.method;
  result.ratio = ledger.total_cost() / opt.cost;
  result.opt_lower = opt.lower;
  result.opt_lower_certified = opt.lower_certified;
  result.opt_lower_method = opt.lower_method;
  if (opt.lower_certified && opt.lower > 0.0)
    result.certified_ratio = ledger.total_cost() / opt.lower;
  result.run_ns = run_ns;
  return result;
}

RatioResult measure_ratio(OnlineAlgorithm& algorithm,
                          const Instance& instance,
                          const OptEstimateOptions& opt_options) {
  return measure_ratio(algorithm, instance,
                       estimate_opt(instance, opt_options));
}

}  // namespace omflp
