#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/harmonic.hpp"

namespace omflp {

double theorem18_upper_factor(double x, double num_commodities) {
  OMFLP_REQUIRE(x >= 0.0 && x <= 2.0, "theorem18_upper_factor: x in [0,2]");
  OMFLP_REQUIRE(num_commodities >= 1.0,
                "theorem18_upper_factor: |S| must be >= 1");
  const double sqrt_s = std::sqrt(num_commodities);
  return std::pow(sqrt_s, (2.0 * x - x * x) / 2.0);
}

double theorem18_lower_factor(double x, double num_commodities) {
  OMFLP_REQUIRE(x >= 0.0 && x <= 2.0, "theorem18_lower_factor: x in [0,2]");
  OMFLP_REQUIRE(num_commodities >= 1.0,
                "theorem18_lower_factor: |S| must be >= 1");
  const double sqrt_s = std::sqrt(num_commodities);
  return std::min(std::pow(sqrt_s, (2.0 - x) / 2.0),
                  std::pow(sqrt_s, x / 2.0));
}

double theorem4_bound(std::size_t num_commodities, std::size_t n) {
  return 15.0 * std::sqrt(static_cast<double>(num_commodities)) *
         harmonic(n);
}

double theorem2_bound(std::size_t num_commodities) {
  return std::sqrt(static_cast<double>(num_commodities)) / 16.0;
}

std::vector<Fig2Row> figure2_series(double num_commodities, double step) {
  OMFLP_REQUIRE(step > 0.0 && step <= 2.0, "figure2_series: bad step");
  std::vector<Fig2Row> rows;
  for (double x = 0.0; x <= 2.0 + 1e-12; x += step) {
    const double clamped = std::min(x, 2.0);
    rows.push_back(Fig2Row{clamped,
                           theorem18_upper_factor(clamped, num_commodities),
                           theorem18_lower_factor(clamped, num_commodities)});
    if (clamped == 2.0) break;
  }
  return rows;
}

}  // namespace omflp
