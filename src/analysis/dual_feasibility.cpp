#include "analysis/dual_feasibility.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace omflp {

std::optional<DualViolation> check_dual_constraint(
    const Instance& instance, const std::vector<PdDualRecord>& duals,
    double gamma, PointId m, const CommoditySet& config, double tolerance) {
  OMFLP_REQUIRE(config.universe_size() == instance.num_commodities(),
                "check_dual_constraint: config universe mismatch");
  OMFLP_REQUIRE(!config.empty(), "check_dual_constraint: empty config");

  const MetricSpace& metric = instance.metric();
  double lhs = 0.0;
  for (const PdDualRecord& rec : duals) {
    double scaled = 0.0;
    for (std::size_t slot = 0; slot < rec.commodities.size(); ++slot)
      if (config.contains(rec.commodities[slot]))
        scaled += gamma * rec.duals[slot];
    const double term = scaled - metric.distance(m, rec.location);
    if (term > 0.0) lhs += term;
  }
  const double rhs = instance.cost().open_cost(m, config);
  if (lhs > rhs + tolerance * (1.0 + rhs)) {
    std::ostringstream os;
    os << "dual constraint violated at m=" << m << ", sigma="
       << config.to_string() << ": lhs=" << lhs << " > f=" << rhs;
    return DualViolation{m, config, lhs, rhs, os.str()};
  }
  return std::nullopt;
}

std::optional<DualViolation> check_dual_feasibility_exhaustive(
    const Instance& instance, const std::vector<PdDualRecord>& duals,
    double gamma, double tolerance) {
  const CommodityId s = instance.num_commodities();
  OMFLP_REQUIRE(s <= 16, "check_dual_feasibility_exhaustive: |S| too large");
  const std::size_t points = instance.metric().num_points();
  for (PointId m = 0; m < points; ++m) {
    for (std::uint64_t mask = 1; mask < (1ULL << s); ++mask) {
      CommoditySet config(s);
      for (CommodityId e = 0; e < s; ++e)
        if ((mask >> e) & 1ULL) config.add(e);
      if (auto v = check_dual_constraint(instance, duals, gamma, m, config,
                                         tolerance))
        return v;
    }
  }
  return std::nullopt;
}

std::optional<DualViolation> check_dual_feasibility_sampled(
    const Instance& instance, const std::vector<PdDualRecord>& duals,
    double gamma, std::size_t samples, Rng& rng, double tolerance) {
  const CommodityId s = instance.num_commodities();
  const std::size_t points = instance.metric().num_points();
  for (PointId m = 0; m < points; ++m) {
    for (CommodityId e = 0; e < s; ++e)
      if (auto v = check_dual_constraint(instance, duals, gamma, m,
                                         CommoditySet::singleton(s, e),
                                         tolerance))
        return v;
    if (auto v = check_dual_constraint(instance, duals, gamma, m,
                                       CommoditySet::full_set(s), tolerance))
      return v;
  }
  for (std::size_t i = 0; i < samples; ++i) {
    const PointId m = static_cast<PointId>(rng.uniform_index(points));
    CommoditySet config(s);
    const double density = rng.uniform(0.05, 0.95);
    for (CommodityId e = 0; e < s; ++e)
      if (rng.bernoulli(density)) config.add(e);
    if (config.empty())
      config.add(static_cast<CommodityId>(rng.uniform_index(s)));
    if (auto v = check_dual_constraint(instance, duals, gamma, m, config,
                                       tolerance))
      return v;
  }
  return std::nullopt;
}

}  // namespace omflp
