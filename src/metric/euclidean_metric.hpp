// EuclideanMetric — points in R^dim with the L2 distance.
//
// Used by the clustered workloads (service placement in the plane) and the
// examples; any dimension is supported, coordinates are stored row-major.
#pragma once

#include <vector>

#include "metric/metric_space.hpp"

namespace omflp {

class EuclideanMetric final : public MetricSpace {
 public:
  /// coords.size() must be a multiple of dim; point p occupies
  /// coords[p*dim .. p*dim+dim).
  EuclideanMetric(std::size_t dim, std::vector<double> coords);

  std::size_t num_points() const noexcept override { return num_points_; }
  double distance(PointId a, PointId b) const override;
  std::string description() const override;

  std::size_t dimension() const noexcept { return dim_; }
  /// Coordinate `axis` of point p.
  double coordinate(PointId p, std::size_t axis) const;

 private:
  std::size_t dim_;
  std::size_t num_points_;
  std::vector<double> coords_;
};

}  // namespace omflp
