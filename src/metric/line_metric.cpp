#include "metric/line_metric.hpp"

#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace omflp {

LineMetric::LineMetric(std::vector<double> positions)
    : positions_(std::move(positions)) {
  OMFLP_REQUIRE(!positions_.empty(), "LineMetric: need at least one point");
  for (double x : positions_)
    OMFLP_REQUIRE(std::isfinite(x), "LineMetric: non-finite coordinate");
}

double LineMetric::distance(PointId a, PointId b) const {
  OMFLP_REQUIRE(a < positions_.size() && b < positions_.size(),
                "LineMetric::distance: point out of range");
  return std::abs(positions_[a] - positions_[b]);
}

std::string LineMetric::description() const {
  std::ostringstream os;
  os << "line(" << positions_.size() << " points)";
  return os.str();
}

double LineMetric::position(PointId p) const {
  OMFLP_REQUIRE(p < positions_.size(),
                "LineMetric::position: point out of range");
  return positions_[p];
}

std::shared_ptr<LineMetric> LineMetric::uniform_grid(std::size_t n,
                                                     double length) {
  OMFLP_REQUIRE(n > 0, "uniform_grid: need at least one point");
  OMFLP_REQUIRE(length >= 0.0, "uniform_grid: negative length");
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i)
    xs[i] = n == 1 ? 0.0
                   : length * static_cast<double>(i) /
                         static_cast<double>(n - 1);
  return std::make_shared<LineMetric>(std::move(xs));
}

double SinglePointMetric::distance(PointId a, PointId b) const {
  OMFLP_REQUIRE(a == 0 && b == 0,
                "SinglePointMetric::distance: point out of range");
  return 0.0;
}

}  // namespace omflp
