#include "metric/metric_space.hpp"

#include "support/assert.hpp"

namespace omflp {

PointId MetricSpace::nearest_point(PointId from) const {
  OMFLP_REQUIRE(from < num_points(), "nearest_point: point out of range");
  PointId best = from;
  double best_d = kInfiniteDistance;
  for (PointId p = 0; p < num_points(); ++p) {
    if (p == from) continue;
    const double d = distance(from, p);
    if (d < best_d) {
      best_d = d;
      best = p;
    }
  }
  return best;
}

}  // namespace omflp
