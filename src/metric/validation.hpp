// Metric-axiom validation.
//
// Concrete MetricSpace implementations are trusted in hot paths; tests and
// instance loaders use these checkers to validate the axioms exhaustively
// (small spaces) or by random sampling (large spaces).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "metric/metric_space.hpp"
#include "support/rng.hpp"

namespace omflp {

struct MetricViolation {
  std::string what;  // human-readable description of the failed axiom
};

/// Exhaustive check of symmetry, non-negativity, zero diagonal and the
/// triangle inequality. O(n^3); intended for n up to a few hundred.
std::optional<MetricViolation> validate_metric_exhaustive(
    const MetricSpace& metric, double tolerance = 1e-9);

/// Randomized check: `samples` random triples are tested. Misses
/// violations only with probability (1 - violation density)^samples.
std::optional<MetricViolation> validate_metric_sampled(
    const MetricSpace& metric, std::size_t samples, Rng& rng,
    double tolerance = 1e-9);

}  // namespace omflp
