#include "metric/validation.hpp"

#include <cmath>
#include <sstream>

namespace omflp {

namespace {

std::optional<MetricViolation> check_pair(const MetricSpace& m, PointId a,
                                          PointId b, double tol) {
  const double dab = m.distance(a, b);
  if (!std::isfinite(dab) || dab < 0.0) {
    std::ostringstream os;
    os << "d(" << a << "," << b << ") = " << dab << " is negative/non-finite";
    return MetricViolation{os.str()};
  }
  const double dba = m.distance(b, a);
  if (std::abs(dab - dba) > tol) {
    std::ostringstream os;
    os << "asymmetric: d(" << a << "," << b << ")=" << dab << " vs d(" << b
       << "," << a << ")=" << dba;
    return MetricViolation{os.str()};
  }
  return std::nullopt;
}

std::optional<MetricViolation> check_triangle(const MetricSpace& m, PointId a,
                                              PointId b, PointId c,
                                              double tol) {
  const double ab = m.distance(a, b);
  const double bc = m.distance(b, c);
  const double ac = m.distance(a, c);
  if (ac > ab + bc + tol) {
    std::ostringstream os;
    os << "triangle inequality violated: d(" << a << "," << c << ")=" << ac
       << " > d(" << a << "," << b << ")+d(" << b << "," << c
       << ")=" << (ab + bc);
    return MetricViolation{os.str()};
  }
  return std::nullopt;
}

}  // namespace

std::optional<MetricViolation> validate_metric_exhaustive(
    const MetricSpace& metric, double tolerance) {
  const std::size_t n = metric.num_points();
  for (PointId a = 0; a < n; ++a) {
    if (metric.distance(a, a) != 0.0)
      return MetricViolation{"nonzero diagonal at point " +
                             std::to_string(a)};
    for (PointId b = 0; b < n; ++b)
      if (auto v = check_pair(metric, a, b, tolerance)) return v;
  }
  for (PointId a = 0; a < n; ++a)
    for (PointId b = 0; b < n; ++b)
      for (PointId c = 0; c < n; ++c)
        if (auto v = check_triangle(metric, a, b, c, tolerance)) return v;
  return std::nullopt;
}

std::optional<MetricViolation> validate_metric_sampled(
    const MetricSpace& metric, std::size_t samples, Rng& rng,
    double tolerance) {
  const std::size_t n = metric.num_points();
  for (std::size_t s = 0; s < samples; ++s) {
    const PointId a = static_cast<PointId>(rng.uniform_index(n));
    const PointId b = static_cast<PointId>(rng.uniform_index(n));
    const PointId c = static_cast<PointId>(rng.uniform_index(n));
    if (auto v = check_pair(metric, a, b, tolerance)) return v;
    if (auto v = check_triangle(metric, a, b, c, tolerance)) return v;
  }
  return std::nullopt;
}

}  // namespace omflp
