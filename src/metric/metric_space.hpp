// MetricSpace — the finite metric (M, d) all problem instances live in.
//
// The paper's model places both requests and candidate facilities at points
// of a finite metric space M; algorithms scan M when deciding where to open
// facilities. Implementations must satisfy the metric axioms (identity,
// symmetry, triangle inequality); metric/validation.hpp checks them.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "support/types.hpp"

namespace omflp {

class MetricSpace {
 public:
  virtual ~MetricSpace() = default;

  /// Number of points |M|; valid PointIds are [0, num_points).
  virtual std::size_t num_points() const noexcept = 0;

  /// d(a, b). Must be symmetric, non-negative, zero iff a == b (pseudo-
  /// metrics with distinct co-located points are allowed and documented by
  /// the concrete class), and satisfy the triangle inequality.
  virtual double distance(PointId a, PointId b) const = 0;

  /// Human-readable description used in logs and benchmark tables.
  virtual std::string description() const = 0;

  /// Nearest point of the space to `from` among [0, num_points) other than
  /// exclusions; linear scan base implementation, subclasses may override.
  PointId nearest_point(PointId from) const;
};

using MetricPtr = std::shared_ptr<const MetricSpace>;

}  // namespace omflp
