// MatrixMetric — an explicit distance matrix.
//
// The escape hatch for arbitrary finite metrics (hand-built test fixtures,
// metrics loaded from files, the APSP closure of GraphMetric). The
// constructor verifies symmetry and zero diagonal; full triangle-inequality
// verification is O(n^3) and lives in metric/validation.hpp so callers can
// opt in.
#pragma once

#include <vector>

#include "metric/metric_space.hpp"

namespace omflp {

class MatrixMetric final : public MetricSpace {
 public:
  /// Row-major n×n matrix. Throws if not square, not symmetric, diagonal
  /// not zero, or any entry negative/non-finite.
  explicit MatrixMetric(std::vector<std::vector<double>> matrix);

  std::size_t num_points() const noexcept override { return n_; }
  double distance(PointId a, PointId b) const override;
  std::string description() const override;

 private:
  std::size_t n_;
  std::vector<double> flat_;
};

}  // namespace omflp
