// GraphMetric — shortest-path metric of a weighted undirected graph.
//
// This is the substrate for the paper's motivating scenario (§1): services
// placed on nodes of a network infrastructure, clients connecting along
// network paths. Distances are the all-pairs shortest paths, computed once
// at construction by running Dijkstra from every node (binary heap,
// O(n·(m log m))), and served from a dense matrix afterwards.
#pragma once

#include <vector>

#include "metric/metric_space.hpp"

namespace omflp {

struct GraphEdge {
  PointId u = 0;
  PointId v = 0;
  double weight = 0.0;
};

class GraphMetric final : public MetricSpace {
 public:
  /// Builds the APSP closure. Throws if the graph is disconnected (a
  /// disconnected "metric" has infinite distances, which the model does
  /// not allow), if any weight is negative/non-finite, or any endpoint is
  /// out of range.
  GraphMetric(std::size_t num_nodes, const std::vector<GraphEdge>& edges);

  std::size_t num_points() const noexcept override { return n_; }
  double distance(PointId a, PointId b) const override;
  std::string description() const override;

  std::size_t num_edges() const noexcept { return num_edges_; }

 private:
  std::size_t n_;
  std::size_t num_edges_;
  std::vector<double> dist_;  // row-major n×n
};

}  // namespace omflp
