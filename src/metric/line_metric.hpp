// LineMetric — points on the real line, d(a,b) = |x_a − x_b|.
//
// The paper's lower bounds (Corollary 3, Fotakis' Θ(log n/log log n)) hold
// already on line metrics, so most adversarial workloads live here. A
// SinglePointMetric degenerate case (Theorem 2 needs only one point) is
// provided as well.
#pragma once

#include <vector>

#include "metric/metric_space.hpp"

namespace omflp {

class LineMetric final : public MetricSpace {
 public:
  /// Points at the given coordinates (any order, duplicates allowed —
  /// duplicates make this a pseudometric, which the algorithms tolerate).
  explicit LineMetric(std::vector<double> positions);

  std::size_t num_points() const noexcept override {
    return positions_.size();
  }
  double distance(PointId a, PointId b) const override;
  std::string description() const override;

  double position(PointId p) const;
  const std::vector<double>& positions() const noexcept { return positions_; }

  /// Convenience: n evenly spaced points on [0, length].
  static std::shared_ptr<LineMetric> uniform_grid(std::size_t n,
                                                  double length);

 private:
  std::vector<double> positions_;
};

/// The one-point metric space of Theorem 2: every distance is zero.
class SinglePointMetric final : public MetricSpace {
 public:
  SinglePointMetric() = default;
  std::size_t num_points() const noexcept override { return 1; }
  double distance(PointId a, PointId b) const override;
  std::string description() const override { return "single-point"; }
};

}  // namespace omflp
