#include "metric/graph_metric.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <utility>

#include "support/assert.hpp"

namespace omflp {

GraphMetric::GraphMetric(std::size_t num_nodes,
                         const std::vector<GraphEdge>& edges)
    : n_(num_nodes), num_edges_(edges.size()) {
  OMFLP_REQUIRE(n_ > 0, "GraphMetric: need at least one node");
  std::vector<std::vector<std::pair<PointId, double>>> adj(n_);
  for (const GraphEdge& e : edges) {
    OMFLP_REQUIRE(e.u < n_ && e.v < n_, "GraphMetric: edge endpoint range");
    OMFLP_REQUIRE(std::isfinite(e.weight) && e.weight >= 0.0,
                  "GraphMetric: weights must be finite and non-negative");
    adj[e.u].emplace_back(e.v, e.weight);
    adj[e.v].emplace_back(e.u, e.weight);
  }

  dist_.assign(n_ * n_, kInfiniteDistance);
  using HeapItem = std::pair<double, PointId>;  // (distance, node)
  for (PointId src = 0; src < n_; ++src) {
    double* row = dist_.data() + static_cast<std::size_t>(src) * n_;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    row[src] = 0.0;
    heap.emplace(0.0, src);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > row[u]) continue;  // stale entry
      for (const auto& [v, w] : adj[u]) {
        const double nd = d + w;
        if (nd < row[v]) {
          row[v] = nd;
          heap.emplace(nd, v);
        }
      }
    }
    for (PointId v = 0; v < n_; ++v)
      OMFLP_REQUIRE(std::isfinite(row[v]),
                    "GraphMetric: graph must be connected");
  }

  // Per-source Dijkstra can disagree between d(a,b) and d(b,a) in the
  // last ulp (different addition order along the path); force exact
  // symmetry so live queries and (de)serialized matrices agree.
  for (PointId a = 0; a < n_; ++a)
    for (PointId b = a + 1; b < n_; ++b) {
      const double d = std::min(dist_[static_cast<std::size_t>(a) * n_ + b],
                                dist_[static_cast<std::size_t>(b) * n_ + a]);
      dist_[static_cast<std::size_t>(a) * n_ + b] = d;
      dist_[static_cast<std::size_t>(b) * n_ + a] = d;
    }
}

double GraphMetric::distance(PointId a, PointId b) const {
  OMFLP_REQUIRE(a < n_ && b < n_, "GraphMetric::distance: out of range");
  return dist_[static_cast<std::size_t>(a) * n_ + b];
}

std::string GraphMetric::description() const {
  std::ostringstream os;
  os << "graph(" << n_ << " nodes, " << num_edges_ << " edges)";
  return os.str();
}

}  // namespace omflp
