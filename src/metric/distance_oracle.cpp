#include "metric/distance_oracle.hpp"

#include "support/assert.hpp"

namespace omflp {

DistanceOracle::DistanceOracle(MetricPtr metric, std::size_t cache_limit)
    : metric_(std::move(metric)) {
  OMFLP_REQUIRE(metric_ != nullptr, "DistanceOracle: null metric");
  n_ = metric_->num_points();
  if (n_ <= cache_limit) {
    matrix_.resize(n_ * n_);
    for (PointId a = 0; a < n_; ++a)
      for (PointId b = 0; b < n_; ++b)
        matrix_[static_cast<std::size_t>(a) * n_ + b] =
            metric_->distance(a, b);
  }
}

const double* DistanceOracle::fallback_row(PointId p) const {
  if (fallback_point_ != p) {
    fallback_row_.resize(n_);
    for (PointId b = 0; b < n_; ++b)
      fallback_row_[b] = metric_->distance(p, b);
    fallback_point_ = p;
  }
  return fallback_row_.data();
}

}  // namespace omflp
