// DistanceOracle — memoized distance lookups for algorithm hot loops.
//
// PD-OMFLP evaluates d(m, r) for every point m of the space at every event;
// going through the MetricSpace virtual call each time dominates runtime
// for matrix-free metrics (Euclidean). The oracle precomputes the dense
// |M|×|M| matrix when it fits under a size limit and falls back to direct
// calls beyond it.
#pragma once

#include <vector>

#include "metric/metric_space.hpp"
#include "perf/perf_counters.hpp"

namespace omflp {

class DistanceOracle {
 public:
  /// cache_limit: maximum |M| for which the dense matrix is materialized
  /// (default 4096 points = 128 MiB of doubles).
  explicit DistanceOracle(MetricPtr metric, std::size_t cache_limit = 4096);

  std::size_t num_points() const noexcept { return n_; }

  double operator()(PointId a, PointId b) const {
    OMFLP_PERF_COUNT(distance_lookups);
    if (!matrix_.empty()) return matrix_[static_cast<std::size_t>(a) * n_ + b];
    return metric_->distance(a, b);
  }

  /// Contiguous distance row d(p, ·) for branch-free kernel loops (by
  /// metric symmetry also usable as d(·, p)). On the cached path this is
  /// a pointer into the dense matrix, valid for the oracle's lifetime; on
  /// the fallback path the row is materialized into a single reusable
  /// buffer, so the pointer is only valid until the next row() call for a
  /// different point (and the oracle is not usable from several threads
  /// at once — one oracle per algorithm instance, as everywhere in this
  /// repo). Repeated row(p) calls for the same p reuse the buffer.
  ///
  /// Deliberately counter-free: hot loops tick
  /// OMFLP_PERF_ADD(distance_lookups, n) once per row sweep, keeping
  /// BENCH counter totals identical to the historical per-element
  /// operator() ticks (see src/kernel/kernels.hpp).
  const double* row(PointId p) const {
    if (!matrix_.empty()) return matrix_.data() + static_cast<std::size_t>(p) * n_;
    return fallback_row(p);
  }

  bool cached() const noexcept { return !matrix_.empty(); }
  const MetricSpace& metric() const noexcept { return *metric_; }

 private:
  const double* fallback_row(PointId p) const;

  MetricPtr metric_;
  std::size_t n_;
  std::vector<double> matrix_;
  /// Single-slot materialized-row cache for the uncached path.
  mutable std::vector<double> fallback_row_;
  mutable PointId fallback_point_ = kInvalidPoint;
};

}  // namespace omflp
