// DistanceOracle — memoized distance lookups for algorithm hot loops.
//
// PD-OMFLP evaluates d(m, r) for every point m of the space at every event;
// going through the MetricSpace virtual call each time dominates runtime
// for matrix-free metrics (Euclidean). The oracle precomputes the dense
// |M|×|M| matrix when it fits under a size limit and falls back to direct
// calls beyond it.
#pragma once

#include <vector>

#include "metric/metric_space.hpp"
#include "perf/perf_counters.hpp"

namespace omflp {

class DistanceOracle {
 public:
  /// cache_limit: maximum |M| for which the dense matrix is materialized
  /// (default 4096 points = 128 MiB of doubles).
  explicit DistanceOracle(MetricPtr metric, std::size_t cache_limit = 4096);

  std::size_t num_points() const noexcept { return n_; }

  double operator()(PointId a, PointId b) const {
    OMFLP_PERF_COUNT(distance_lookups);
    if (!matrix_.empty()) return matrix_[static_cast<std::size_t>(a) * n_ + b];
    return metric_->distance(a, b);
  }

  bool cached() const noexcept { return !matrix_.empty(); }
  const MetricSpace& metric() const noexcept { return *metric_; }

 private:
  MetricPtr metric_;
  std::size_t n_;
  std::vector<double> matrix_;
};

}  // namespace omflp
