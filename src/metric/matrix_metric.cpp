#include "metric/matrix_metric.hpp"

#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace omflp {

MatrixMetric::MatrixMetric(std::vector<std::vector<double>> matrix)
    : n_(matrix.size()) {
  OMFLP_REQUIRE(n_ > 0, "MatrixMetric: empty matrix");
  flat_.resize(n_ * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    OMFLP_REQUIRE(matrix[i].size() == n_, "MatrixMetric: matrix not square");
    for (std::size_t j = 0; j < n_; ++j) {
      const double d = matrix[i][j];
      OMFLP_REQUIRE(std::isfinite(d) && d >= 0.0,
                    "MatrixMetric: entries must be finite and non-negative");
      flat_[i * n_ + j] = d;
    }
    OMFLP_REQUIRE(matrix[i][i] == 0.0, "MatrixMetric: diagonal must be zero");
  }
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i + 1; j < n_; ++j)
      OMFLP_REQUIRE(flat_[i * n_ + j] == flat_[j * n_ + i],
                    "MatrixMetric: matrix not symmetric");
}

double MatrixMetric::distance(PointId a, PointId b) const {
  OMFLP_REQUIRE(a < n_ && b < n_, "MatrixMetric::distance: out of range");
  return flat_[static_cast<std::size_t>(a) * n_ + b];
}

std::string MatrixMetric::description() const {
  std::ostringstream os;
  os << "matrix(" << n_ << " points)";
  return os.str();
}

}  // namespace omflp
