#include "metric/euclidean_metric.hpp"

#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace omflp {

EuclideanMetric::EuclideanMetric(std::size_t dim, std::vector<double> coords)
    : dim_(dim), num_points_(dim > 0 ? coords.size() / dim : 0),
      coords_(std::move(coords)) {
  OMFLP_REQUIRE(dim_ > 0, "EuclideanMetric: dimension must be positive");
  OMFLP_REQUIRE(!coords_.empty() && coords_.size() % dim_ == 0,
                "EuclideanMetric: coords size not a multiple of dim");
  for (double x : coords_)
    OMFLP_REQUIRE(std::isfinite(x), "EuclideanMetric: non-finite coordinate");
}

double EuclideanMetric::distance(PointId a, PointId b) const {
  OMFLP_REQUIRE(a < num_points_ && b < num_points_,
                "EuclideanMetric::distance: point out of range");
  double acc = 0.0;
  const double* pa = coords_.data() + static_cast<std::size_t>(a) * dim_;
  const double* pb = coords_.data() + static_cast<std::size_t>(b) * dim_;
  for (std::size_t k = 0; k < dim_; ++k) {
    const double delta = pa[k] - pb[k];
    acc += delta * delta;
  }
  return std::sqrt(acc);
}

std::string EuclideanMetric::description() const {
  std::ostringstream os;
  os << "euclidean(dim=" << dim_ << ", " << num_points_ << " points)";
  return os.str();
}

double EuclideanMetric::coordinate(PointId p, std::size_t axis) const {
  OMFLP_REQUIRE(p < num_points_, "coordinate: point out of range");
  OMFLP_REQUIRE(axis < dim_, "coordinate: axis out of range");
  return coords_[static_cast<std::size_t>(p) * dim_ + axis];
}

}  // namespace omflp
