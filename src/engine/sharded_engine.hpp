// ShardedEngine — the multi-tenant serving layer: K independent tenant
// stream sessions partitioned across worker shards.
//
// Every tenant is a fully self-contained session — its own EventStream
// (generated from the tenant's (scenario, overrides, seed) through
// StreamScenarioRegistry), its own algorithm instance (from
// AlgorithmRegistry, coin seed derived from the tenant seed), its own
// SolutionLedger and incremental StreamVerifier. Tenants never share
// mutable state, so the engine parallelizes across them freely.
//
// Scheduling model: tenants are placed on shards round-robin (tenant i →
// shard i mod K_shards; with Zipf-skewed mixes the low shards carry most
// of the traffic, which is the point of the workload). The engine then
// advances a **global clock** in rounds: each round runs one
// parallel_for over the shards, and every shard steps each of its live
// tenants by exactly one batch (StreamSession::step_batch). The round
// barrier is the global clock — after round R every live tenant has
// processed exactly R batches, which keeps cross-tenant progress aligned
// the way a production scheduler's fairness quantum would.
//
// Determinism contract: each tenant's ledger, costs and counters are a
// pure function of its (scenario, overrides, seed, algorithm) — bitwise
// identical to a sequential run_stream of the same tenant, and
// independent of shard count, OMFLP_THREADS, batch interleaving and the
// verifier flag (tests/test_engine.cpp enforces all of this
// differentially). Aggregates are summed in tenant order on the calling
// thread, so they are bitwise deterministic too. Only wall times and the
// latency histogram vary run to run.
//
// Work counters: when (and only when) the calling thread has a
// PerfCounters sink installed at run() entry — the bench suite's
// instrumented pass — each shard accumulates counters through a
// shard-local sink (installed per round, so the thread-local hook always
// points at the right shard), merged in shard order into
// EngineResult::counters: deterministic totals even though scheduling is
// not. Without an outer sink the engine runs with counting disabled,
// like every other timed path, so the serve/seq bench pairs are measured
// under identical hook states.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stream_runner.hpp"
#include "perf/latency_histogram.hpp"
#include "perf/perf_counters.hpp"
#include "scenario/stream_registry.hpp"

namespace omflp {

class FaultPlan;
class MetricsSampler;
class TraceSink;

struct EngineOptions {
  /// Worker shards; 0 = min(tenants, threads). Clamped to the tenant
  /// count (an empty shard serves nobody).
  std::size_t shards = 0;
  /// Worker threads driving the shards; 0 = default_thread_count()
  /// (hardware concurrency / OMFLP_THREADS).
  std::size_t threads = 0;
  /// Events per tenant per round (and compaction cadence).
  std::size_t batch_size = 2048;
  /// Shadow every tenant with an incremental StreamVerifier.
  bool verify = true;
  /// Compact retired ledger prefixes after each batch.
  bool compact = true;
  ConnectionChargePolicy policy = ConnectionChargePolicy::kPerFacility;
  /// Uniform per-point facility capacity applied to every tenant; 0 =
  /// off, keeping whatever capacities each tenant's scenario attached to
  /// its stream (if any). Nonzero builds a per-tenant map assigning this
  /// capacity to every point of the tenant's metric, overriding the
  /// scenario's.
  std::uint64_t capacity = 0;
  /// What a capacitated tenant's ledger does at a full facility.
  OverflowPolicy overflow = OverflowPolicy::kReassign;
  /// Live telemetry (borrowed, may be null): ticked on the calling
  /// thread after every round with cumulative per-shard stats. When
  /// installed the engine keeps per-shard latency histograms, gauge
  /// sums and work counters; when null none of that state exists.
  MetricsSampler* sampler = nullptr;
  /// Decision-trace output (borrowed, may be null). Each tenant records
  /// into a private TraceBuffer while being stepped; after every round
  /// the buffers are drained into this sink in tenant order on the
  /// calling thread — so the trace is bitwise independent of both the
  /// shard count and OMFLP_THREADS.
  TraceSink* trace_sink = nullptr;
  /// Checkpoint directory (recover/checkpoint_store.hpp). When set,
  /// run() first restores every tenant from the newest valid generation
  /// found there (resuming the round clock from the manifest) and, with
  /// checkpoint_every > 0, publishes a new generation every that many
  /// rounds. Empty = fault tolerance off.
  std::string checkpoint_dir;
  /// Rounds between checkpoint generations (0 = restore-only: never
  /// publish). Smaller values shorten the replay tail after a crash at
  /// the price of more serialization and IO per round.
  std::uint64_t checkpoint_every = 0;
  /// Deterministic fault injection (borrowed, may be null). Consulted
  /// after each round's checkpoint publication; a scheduled crash
  /// corrupts the newest generation per the plan's torn/bitflip flags
  /// and throws EngineCrash. The plan is stateful across run() attempts
  /// so the driver's restart loop sees each crash once.
  FaultPlan* fault_plan = nullptr;
  /// Explicit tenant→shard placement (tenant i on shard placement[i]);
  /// empty = round-robin i mod shards. Because per-tenant results are
  /// bitwise independent of placement, restoring a checkpoint set under
  /// a different placement *is* tenant migration — the cross-check is
  /// that results match the never-migrated run exactly.
  std::vector<std::size_t> placement;
};

struct TenantResult {
  std::string name;
  std::string scenario;
  std::string algorithm;
  std::size_t shard = 0;
  StreamRunResult run;
};

struct EngineResult {
  std::vector<TenantResult> tenants;  // in spec order
  std::size_t shards = 0;
  std::size_t threads = 0;
  /// Global-clock rounds driven (== max over tenants of ceil(events /
  /// batch) + 1 exhaustion probe).
  std::uint64_t rounds = 0;
  std::uint64_t total_events = 0;
  /// Wall time of the round loop (sessions built before, finished after).
  double wall_ns = 0.0;
  /// Sum over tenants, in tenant order (bitwise deterministic).
  double aggregate_gross_cost = 0.0;
  double aggregate_active_cost = 0.0;
  /// Admission-control aggregates, summed in tenant order like the
  /// costs: requests shed (>= 1 rejected commodity) and assignments
  /// spilled to a non-nearest facility by capacity. Zero on
  /// uncapacitated runs. Per-tenant figures live on each
  /// TenantResult's ledger (num_shed_requests / num_spilled_assignments).
  std::uint64_t aggregate_shed_requests = 0;
  std::uint64_t aggregate_spilled_assignments = 0;
  /// Per-shard work counters merged in shard order; all-zero unless the
  /// calling thread had a PerfCounters sink installed at run() entry or
  /// a MetricsSampler was attached (the sampler needs the deltas).
  PerfCounters counters;
  /// Distribution of per-tenant step_batch() wall times across the run —
  /// the per-batch serving latency (p50/p95/p99). Zero-event exhaustion
  /// probes are excluded.
  LatencySnapshot batch_latency;
  /// Round the run resumed from (0 = fresh start, no checkpoint found).
  std::uint64_t restored_from_round = 0;
  /// Checkpoint generations published by this run() call.
  std::uint64_t checkpoints_published = 0;
  /// Trace events emitted to the sink over the whole logical run,
  /// including rounds replayed before a restore point (the manifest's
  /// trace_seq carries the count across restarts).
  std::uint64_t trace_seq = 0;

  double events_per_sec() const noexcept {
    return wall_ns > 0.0
               ? static_cast<double>(total_events) * 1e9 / wall_ns
               : 0.0;
  }
  /// First tenant (in spec order) whose verifier reported a violation;
  /// nullptr when every tenant is clean (or verification was off).
  const TenantResult* first_violation() const noexcept;
};

class ShardedEngine {
 public:
  /// Materializes and validates every tenant's stream up front (throws
  /// std::invalid_argument on an unknown scenario/algorithm or a
  /// malformed workload), so run() measures serving, not generation.
  explicit ShardedEngine(std::vector<TenantSpec> tenants,
                         EngineOptions options = {});

  const std::vector<TenantSpec>& tenants() const noexcept { return specs_; }
  /// Total events across all tenant streams (the denominator of the
  /// aggregate events/s).
  std::uint64_t total_events() const noexcept { return total_events_; }

  /// Serve every tenant to completion. Reusable: each call builds fresh
  /// algorithm instances and sessions over the cached streams.
  EngineResult run() const;

 private:
  std::vector<TenantSpec> specs_;
  std::vector<EventStream> streams_;  // parallel to specs_
  EngineOptions options_;
  std::uint64_t total_events_ = 0;
};

}  // namespace omflp
