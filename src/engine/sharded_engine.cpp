#include "engine/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "instance/checkpoint_io.hpp"
#include "obs/metrics_sampler.hpp"
#include "obs/trace_sink.hpp"
#include "recover/checkpoint_store.hpp"
#include "recover/fault_plan.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/registry_util.hpp"
#include "support/parallel.hpp"

namespace omflp {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const TenantResult* EngineResult::first_violation() const noexcept {
  for (const TenantResult& tenant : tenants)
    if (tenant.run.violation) return &tenant;
  return nullptr;
}

ShardedEngine::ShardedEngine(std::vector<TenantSpec> tenants,
                             EngineOptions options)
    : specs_(std::move(tenants)), options_(options) {
  if (specs_.empty())
    throw std::invalid_argument("ShardedEngine: at least one tenant is "
                                "required");
  if (options_.batch_size == 0)
    throw std::invalid_argument("ShardedEngine: batch_size must be "
                                "positive");
  const StreamScenarioRegistry& scenarios =
      default_stream_scenario_registry();
  const AlgorithmRegistry& algorithms = default_algorithm_registry();
  streams_.reserve(specs_.size());
  for (const TenantSpec& spec : specs_) {
    // Resolve the algorithm eagerly so a typo fails at construction, not
    // mid-run on one shard.
    if (!algorithms.contains(spec.algorithm))
      throw std::invalid_argument(
          "ShardedEngine: tenant '" + spec.name +
          "' uses unknown algorithm '" + spec.algorithm + "'");
    streams_.push_back(
        scenarios.make(spec.scenario, spec.seed, spec.overrides));
    total_events_ += streams_.back().num_events();
  }
}

EngineResult ShardedEngine::run() const {
  const std::size_t num_tenants = specs_.size();
  const std::size_t threads =
      options_.threads > 0 ? options_.threads : default_thread_count();
  const std::size_t shards = std::min(
      num_tenants,
      options_.shards > 0 ? options_.shards : std::max<std::size_t>(
                                                  1, threads));

  StreamRunOptions run_options;
  run_options.policy = options_.policy;
  run_options.batch_size = options_.batch_size;
  run_options.compact = options_.compact;
  run_options.verify = options_.verify;
  run_options.overflow = options_.overflow;

  // Per-tenant state, heap-pinned so the session's borrowed references
  // stay valid. Sessions reset their algorithms at construction; the
  // restoring variant then overlays a checkpoint snapshot and
  // fast-forwards the source.
  struct TenantState {
    MaterializedEventSource source;
    std::unique_ptr<OnlineAlgorithm> algorithm;
    std::ifstream ckpt_in;            // open only while restoring
    std::optional<CkptReader> reader;
    StreamSession session;

    TenantState(const EventStream& stream,
                std::unique_ptr<OnlineAlgorithm> algo,
                const StreamRunOptions& options)
        : source(stream),
          algorithm(std::move(algo)),
          session(*algorithm, source, options) {}

    TenantState(const EventStream& stream,
                std::unique_ptr<OnlineAlgorithm> algo,
                const StreamRunOptions& options,
                const std::string& ckpt_path)
        : source(stream),
          algorithm(std::move(algo)),
          ckpt_in(ckpt_path, std::ios::binary),
          reader(std::in_place, ckpt_in),
          session(*algorithm, source, options, *reader) {
      reader->finish();
      reader.reset();
      ckpt_in.close();
    }
  };

  // Recovery: with a checkpoint directory configured, resume from the
  // newest generation whose manifest and every tenant file validate —
  // torn or corrupted generations fall back to the previous one.
  std::optional<CheckpointStore> store;
  std::optional<CheckpointManifest> restored;
  if (!options_.checkpoint_dir.empty()) {
    store.emplace(options_.checkpoint_dir);
    restored = store->latest_valid();
    if (restored) {
      if (restored->tenants.size() != num_tenants)
        throw std::invalid_argument(
            "ShardedEngine: checkpoint set has " +
            std::to_string(restored->tenants.size()) + " tenants, run has " +
            std::to_string(num_tenants));
      for (std::size_t i = 0; i < num_tenants; ++i)
        if (restored->tenants[i] != specs_[i].name)
          throw std::invalid_argument(
              "ShardedEngine: checkpoint tenant '" + restored->tenants[i] +
              "' does not match spec tenant '" + specs_[i].name + "'");
    }
  }

  const AlgorithmRegistry& algorithms = default_algorithm_registry();
  std::vector<std::unique_ptr<TenantState>> states;
  states.reserve(num_tenants);
  for (std::size_t i = 0; i < num_tenants; ++i) {
    auto algorithm = algorithms.make(specs_[i].algorithm,
                                     derive_algorithm_seed(specs_[i].seed));
    // A uniform engine-level capacity is sized to each tenant's own
    // metric (tenants need not share one) and overrides the scenario's.
    StreamRunOptions tenant_options = run_options;
    if (options_.capacity > 0)
      tenant_options.capacities =
          std::make_shared<const std::vector<std::uint64_t>>(
              streams_[i].metric().num_points(), options_.capacity);
    states.push_back(
        restored ? std::make_unique<TenantState>(
                       streams_[i], std::move(algorithm), tenant_options,
                       store->tenant_path(i, restored->generation))
                 : std::make_unique<TenantState>(
                       streams_[i], std::move(algorithm), tenant_options));
  }

  // Shard placement: round-robin by default (with Zipf-skewed mixes
  // shard 0 gets the hottest tenant, so load is deliberately unbalanced
  // across shards), or the caller's explicit placement — the migration
  // path: restore a checkpoint set under a different placement.
  std::vector<std::size_t> placement(num_tenants);
  if (!options_.placement.empty()) {
    if (options_.placement.size() != num_tenants)
      throw std::invalid_argument(
          "ShardedEngine: placement names " +
          std::to_string(options_.placement.size()) + " tenants, run has " +
          std::to_string(num_tenants));
    for (const std::size_t s : options_.placement)
      if (s >= shards)
        throw std::invalid_argument(
            "ShardedEngine: placement shard " + std::to_string(s) +
            " out of range (shards=" + std::to_string(shards) + ")");
    placement = options_.placement;
  } else {
    for (std::size_t i = 0; i < num_tenants; ++i) placement[i] = i % shards;
  }
  std::vector<std::vector<std::size_t>> shard_tenants(shards);
  for (std::size_t i = 0; i < num_tenants; ++i)
    shard_tenants[placement[i]].push_back(i);

  EngineResult result;
  result.shards = shards;
  result.threads = threads;
  std::uint64_t trace_seq = 0;
  if (restored) {
    result.rounds = restored->round;
    result.restored_from_round = restored->round;
    trace_seq = restored->trace_seq;
  }

  LatencyHistogram histogram;
  std::vector<PerfCounters> shard_counters(shards);
  // Work counters are collected only when the caller is already
  // counting (a sink installed on the calling thread — the bench
  // suite's instrumented pass) or a metrics sampler wants the deltas.
  // Plain serving runs with counting disabled, exactly like every other
  // timed path, so the serve/seq bench pair is measured under identical
  // hook states.
  const bool collect_counters =
      perf::thread_sink() != nullptr || options_.sampler != nullptr;

  // Sampler-only state: per-shard histograms (the global `histogram`
  // stays the source of the final batch_latency) and non-empty batch
  // counts. Workers write only their own shard's slots; the calling
  // thread reads between rounds.
  std::vector<std::unique_ptr<LatencyHistogram>> shard_histograms;
  std::vector<std::uint64_t> shard_batches;
  if (options_.sampler != nullptr) {
    shard_histograms.resize(shards);
    for (auto& h : shard_histograms)
      h = std::make_unique<LatencyHistogram>();
    shard_batches.assign(shards, 0);
  }

  // Tracing: each tenant records into its own buffer while stepped (the
  // TraceScope travels with the tenant, not the shard), drained into the
  // caller's sink in tenant order after every round.
  std::vector<TraceBuffer> trace_buffers(
      options_.trace_sink != nullptr ? num_tenants : 0);

  // The global clock: one parallel_for over the shards per round, each
  // shard stepping every live tenant by one batch. The loop ends when a
  // full round finds no live tenant (each session needs one final
  // zero-batch probe to observe exhaustion, so rounds is at most
  // max ceil(events/batch) + 1).
  const std::uint64_t wall_start_ns = now_ns();
  // A restored session may already be exhausted (checkpoint taken on the
  // final cadence round), so count live tenants rather than assuming all.
  std::size_t live = 0;
  for (const auto& state : states)
    if (!state->session.exhausted()) ++live;
  while (live > 0) {
    ++result.rounds;
    parallel_for(
        shards,
        [&](std::size_t s) {
          std::optional<PerfScope> scope;
          if (collect_counters) scope.emplace(shard_counters[s]);
          for (const std::size_t tenant : shard_tenants[s]) {
            StreamSession& session = states[tenant]->session;
            if (session.exhausted()) continue;
            std::optional<TraceScope> trace_scope;
            if (options_.trace_sink != nullptr)
              trace_scope.emplace(trace_buffers[tenant]);
            const std::uint64_t batch_start_ns = now_ns();
            const std::size_t processed = session.step_batch();
            // Zero-event exhaustion probes are not serving work; letting
            // them into the histogram would drag p50 toward no-op time.
            if (processed > 0) {
              const double batch_ns =
                  static_cast<double>(now_ns() - batch_start_ns);
              histogram.record_ns(batch_ns);
              if (options_.sampler != nullptr) {
                shard_histograms[s]->record_ns(batch_ns);
                ++shard_batches[s];
              }
            }
          }
        },
        threads);
    live = 0;
    for (const auto& state : states)
      if (!state->session.exhausted()) ++live;

    // Drain per-tenant trace buffers in tenant order — the output order
    // depends only on the tenant list and the round structure, never on
    // shard placement or thread scheduling.
    if (options_.trace_sink != nullptr) {
      for (std::size_t i = 0; i < num_tenants; ++i) {
        for (const TraceEvent& event : trace_buffers[i].events()) {
          options_.trace_sink->on_event(event);
          ++trace_seq;
        }
        trace_buffers[i].clear();
      }
    }

    if (options_.sampler != nullptr) {
      std::vector<ShardRoundStats> stats(shards);
      for (std::size_t s = 0; s < shards; ++s) {
        ShardRoundStats& stat = stats[s];
        for (const std::size_t tenant : shard_tenants[s]) {
          const StreamSession& session = states[tenant]->session;
          stat.events += session.events_processed();
          const SolutionLedger& ledger = session.ledger();
          stat.facilities_open += ledger.num_facilities();
          stat.active_requests += ledger.num_active_requests();
          stat.resident_records += ledger.request_records().size();
        }
        stat.batches = shard_batches[s];
        stat.counters = shard_counters[s];
        stat.latency = shard_histograms[s].get();
      }
      options_.sampler->on_round(result.rounds, stats,
                                 /*final_round=*/live == 0);
    }

    // Periodic checkpoint generation: serialize every tenant on the
    // calling thread (sessions are between batches, so no request is in
    // flight), publish tenant files first and the manifest last. The
    // generation number is the round, so restarts keep it increasing.
    if (store && options_.checkpoint_every > 0 &&
        result.rounds % options_.checkpoint_every == 0) {
      CheckpointManifest manifest;
      manifest.generation = result.rounds;
      manifest.round = result.rounds;
      manifest.trace_seq = trace_seq;
      std::vector<std::string> payloads;
      payloads.reserve(num_tenants);
      for (std::size_t i = 0; i < num_tenants; ++i) {
        manifest.tenants.push_back(specs_[i].name);
        std::ostringstream os;
        CkptWriter writer(os);
        states[i]->session.checkpoint(writer);
        writer.finish();
        payloads.push_back(os.str());
      }
      store->publish(manifest, payloads);
      ++result.checkpoints_published;
    }

    // Injected faults fire after publication, so the damage lands on the
    // snapshot recovery would otherwise pick first.
    if (options_.fault_plan != nullptr &&
        options_.fault_plan->should_crash(result.rounds)) {
      if (store) options_.fault_plan->corrupt_latest(*store);
      throw EngineCrash(result.rounds);
    }
  }
  result.wall_ns = static_cast<double>(now_ns() - wall_start_ns);
  result.trace_seq = trace_seq;

  for (std::size_t s = 0; s < shards; ++s)
    result.counters += shard_counters[s];
  result.batch_latency = histogram.snapshot();

  result.tenants.reserve(num_tenants);
  for (std::size_t i = 0; i < num_tenants; ++i) {
    TenantResult tenant{specs_[i].name, specs_[i].scenario,
                        specs_[i].algorithm, placement[i],
                        states[i]->session.finish()};
    result.total_events += tenant.run.events;
    result.aggregate_gross_cost += tenant.run.ledger.total_cost();
    result.aggregate_active_cost += tenant.run.ledger.active_cost();
    result.aggregate_shed_requests += tenant.run.ledger.num_shed_requests();
    result.aggregate_spilled_assignments +=
        tenant.run.ledger.num_spilled_assignments();
    result.tenants.push_back(std::move(tenant));
  }
  return result;
}

}  // namespace omflp
