// explain_trace — replay a decision trace and render the causal chain
// behind its facility openings.
//
// The question a trace exists to answer: *why is this facility open?*
// For a chosen facility the explainer finds its facility_open event and
// reports which constraint went tight, at what dual value, which
// requests contributed how much bid mass (with each contributor's share
// of the total), how many connections the facility went on to serve,
// and — for dynamic streams — whether later departures rolled back the
// bid mass that paid for it, i.e. whether the opening was undone in the
// dual sense even though the facility stays open (openings are
// irrevocable; only the accounting is withdrawn).
//
// Per-request mode collects every event a request appears in (as the
// served request or as a contributor), and the default mode summarizes
// the whole trace. Used by `omflp explain`; pure function of the event
// list, so tests can drive it on hand-computed instances.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/trace_sink.hpp"

namespace omflp {

struct ExplainOptions {
  /// Explain the opening of this facility (real-ledger id).
  std::optional<FacilityId> facility;
  /// Show every event involving this request.
  std::optional<RequestId> request;
};

/// Render the explanation as human-readable text. Throws
/// std::invalid_argument when the requested facility never opened in the
/// trace.
std::string explain_trace(const std::vector<TraceEvent>& events,
                          const ExplainOptions& options = {});

}  // namespace omflp
