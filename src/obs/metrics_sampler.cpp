#include "obs/metrics_sampler.hpp"

#include <chrono>
#include <ostream>
#include <stdexcept>

namespace omflp {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr const char* kCsvHeader =
    "round,shard,events_delta,events_total,batches_delta,events_per_sec,"
    "latency_count,p50_ns,p95_ns,p99_ns,p999_ns,max_ns_cum,facilities_open,"
    "active_requests,resident_records,requests_served_delta,"
    "facilities_opened_delta\n";

}  // namespace

MetricsSampler::MetricsSampler(std::ostream& out, Format format,
                               std::uint64_t sample_every)
    : out_(out), format_(format), sample_every_(sample_every) {
  if (sample_every_ == 0)
    throw std::invalid_argument("MetricsSampler: sample_every must be "
                                "positive");
}

void MetricsSampler::on_round(std::uint64_t round,
                              const std::vector<ShardRoundStats>& shards,
                              bool final_round) {
  if (!final_round && round % sample_every_ != 0) return;
  if (baselines_.empty()) baselines_.resize(shards.size());
  if (baselines_.size() != shards.size())
    throw std::invalid_argument("MetricsSampler: shard count changed "
                                "mid-run");

  const std::uint64_t tick_ns = now_ns();
  // The first record has no previous tick; rate over the whole run so
  // far would need the engine's start time, so treat interval 0 as
  // "rate unavailable" (0) rather than inventing one.
  const double interval_s =
      last_tick_ns_ > 0
          ? static_cast<double>(tick_ns - last_tick_ns_) * 1e-9
          : 0.0;
  last_tick_ns_ = tick_ns;

  if (format_ == Format::kCsv && !header_written_) {
    out_ << kCsvHeader;
    header_written_ = true;
  }

  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardRoundStats& shard = shards[s];
    ShardBaseline& base = baselines_[s];

    const std::uint64_t events_delta = shard.events - base.events;
    const std::uint64_t batches_delta = shard.batches - base.batches;
    const std::uint64_t served_delta =
        shard.counters.requests_served - base.requests_served;
    const std::uint64_t opened_delta =
        shard.counters.facilities_opened - base.facilities_opened;
    base.events = shard.events;
    base.batches = shard.batches;
    base.requests_served = shard.counters.requests_served;
    base.facilities_opened = shard.counters.facilities_opened;

    LatencySnapshot latency;
    if (shard.latency != nullptr)
      latency = shard.latency->snapshot_delta(base.latency);

    const double events_per_sec =
        interval_s > 0.0 ? static_cast<double>(events_delta) / interval_s
                         : 0.0;

    if (format_ == Format::kCsv) {
      out_ << round << ',' << s << ',' << events_delta << ','
           << shard.events << ',' << batches_delta << ',' << events_per_sec
           << ',' << latency.count << ',' << latency.p50_ns << ','
           << latency.p95_ns << ',' << latency.p99_ns << ','
           << latency.p999_ns << ',' << latency.max_ns << ','
           << shard.facilities_open << ',' << shard.active_requests << ','
           << shard.resident_records << ',' << served_delta << ','
           << opened_delta << '\n';
    } else {
      out_ << "{\"round\":" << round << ",\"shard\":" << s
           << ",\"events_delta\":" << events_delta
           << ",\"events_total\":" << shard.events
           << ",\"batches_delta\":" << batches_delta
           << ",\"events_per_sec\":" << events_per_sec
           << ",\"latency\":" << latency.to_json()
           << ",\"facilities_open\":" << shard.facilities_open
           << ",\"active_requests\":" << shard.active_requests
           << ",\"resident_records\":" << shard.resident_records
           << ",\"requests_served_delta\":" << served_delta
           << ",\"facilities_opened_delta\":" << opened_delta << "}\n";
    }
  }
  out_.flush();
}

}  // namespace omflp
