// TraceSink — structured decision tracing for the algorithm and ledger
// layers.
//
// The paper's competitive analysis (Theorems 2/4) is about *when* the
// primal-dual algorithm opens a facility: which requests contributed bid
// mass, which constraint went tight, and whether a later deletion rolled
// the decision back. Aggregate counters (src/perf/) cannot answer those
// questions; this sink receives one typed event per decision so a
// surprising ratio can be traced to the openings that caused it.
//
// Contract — identical to PerfScope (src/perf/perf_counters.hpp):
// tracing is off unless a sink is installed on the current thread. The
// emit helper compiles to a thread-local pointer load plus a
// perfectly-predicted branch when no sink is installed (the
// "trace/off" vs "trace/on" BenchSuite pair quantifies the cost);
// OMFLP_TRACE_DISABLE turns every hook into a literal no-op. Scopes nest
// and are strictly per-thread.
//
// Determinism: events are emitted only on the thread stepping a session
// (kernel parallel_for workers never emit), so a single-stream trace is
// byte-identical across OMFLP_THREADS. The ShardedEngine gives each
// tenant its own TraceBuffer and merges in tenant order — stronger than
// per-shard merging, and independent of both --shards and --threads.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "perf/perf_counters.hpp"
#include "support/types.hpp"

namespace omflp {

enum class TraceEventKind : std::uint8_t {
  kFacilityOpen = 0,   // a constraint went tight and a facility opened
  kRequestAssign = 1,  // ledger connected a request to a facility
  kBidRollback = 2,    // a departure withdrew accumulated bid mass
  kDepart = 3,         // explicit deletion retired a request
  kLeaseExpire = 4,    // lease deadline retired a request
  kDualRaise = 5,      // dual variable(s) raised (archive / bound layer)
  kVerifierFlag = 6,   // incremental verifier rejected an invariant
  kRequestReject = 7,  // admission control shed a demanded commodity
  kRequestSpill = 8,   // assignment redirected away from a full facility
};

inline const char* trace_event_kind_name(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kFacilityOpen: return "facility_open";
    case TraceEventKind::kRequestAssign: return "request_assign";
    case TraceEventKind::kBidRollback: return "bid_rollback";
    case TraceEventKind::kDepart: return "depart";
    case TraceEventKind::kLeaseExpire: return "lease_expire";
    case TraceEventKind::kDualRaise: return "dual_raise";
    case TraceEventKind::kVerifierFlag: return "verifier_flag";
    case TraceEventKind::kRequestReject: return "request_reject";
    case TraceEventKind::kRequestSpill: return "request_spill";
  }
  return "unknown";
}

/// One request's share of the bid mass behind a facility opening.
struct TraceContributor {
  RequestId request = kInvalidRequest;
  double amount = 0.0;
};

/// A single structured decision event. Flat by design: every kind uses a
/// subset of the fields (the tracelog writer serializes a fixed per-kind
/// field list — see src/instance/tracelog_io.hpp for the schema).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kFacilityOpen;
  /// The request being served/retired when the event fired (the ordinal
  /// the ledger assigned at arrival). kInvalidRequest when n/a.
  RequestId request = kInvalidRequest;
  /// Paper constraint that went tight for facility_open: 1 = connect to
  /// an open nearby facility, 2 = reach a large facility, 3 = jointly
  /// buy a small facility, 4 = jointly buy a large facility. 0 = n/a.
  std::uint8_t constraint = 0;
  CommodityId commodity = kInvalidCommodity;
  FacilityId facility = kInvalidFacility;
  PointId point = kInvalidPoint;
  std::uint64_t config_size = 0;  // |configuration| (1 for small opens)
  std::uint64_t stream_event = 0; // stream clock at emission (retire paths)
  double cost = 0.0;              // opening cost / connect dist / dual mass
  double bid_mass = 0.0;          // accumulated bid sum at decision time
  double tightness = 0.0;         // slack-to-tight value (or coin prob)
  /// Top contributors by withheld bid, largest first, capped at
  /// kMaxTraceContributors; any tail is folded into `residual`.
  std::vector<TraceContributor> contributors;
  double residual = 0.0;
  std::string note;               // verifier_flag message; empty otherwise
};

inline constexpr std::size_t kMaxTraceContributors = 16;

/// Canonicalize a contributor list onto `event`: sort by amount
/// descending (request id ascending on ties — a total, input-order-free
/// order, so traces stay deterministic), keep the top
/// kMaxTraceContributors and fold the tail into event.residual.
inline void set_trace_contributors(TraceEvent& event,
                                   std::vector<TraceContributor> all) {
  std::sort(all.begin(), all.end(),
            [](const TraceContributor& a, const TraceContributor& b) {
              if (a.amount != b.amount) return a.amount > b.amount;
              return a.request < b.request;
            });
  event.residual = 0.0;
  if (all.size() > kMaxTraceContributors) {
    for (std::size_t i = kMaxTraceContributors; i < all.size(); ++i)
      event.residual += all[i].amount;
    all.resize(kMaxTraceContributors);
  }
  event.contributors = std::move(all);
}

/// Receives events from the hooks; implementations must tolerate being
/// called once per decision on the session-stepping thread only.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// The simplest sink: append every event to a vector (tests, the engine's
/// per-tenant buffers, and `omflp explain`'s in-memory replay).
class TraceBuffer final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override {
    events_.push_back(event);
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::vector<TraceEvent>& events() noexcept { return events_; }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

namespace obs {

/// The thread's active sink; null = tracing disabled (the default).
inline thread_local TraceSink* tl_trace_sink = nullptr;

inline TraceSink* trace_sink() noexcept {
#if defined(OMFLP_TRACE_DISABLE)
  return nullptr;
#else
  return tl_trace_sink;
#endif
}

/// Hot-path guard: true only when someone is listening. Hooks that build
/// a non-trivial TraceEvent (contributor scans) must check this first so
/// the untraced path stays a load-and-branch.
inline bool tracing() noexcept { return trace_sink() != nullptr; }

/// Deliver `event` to the installed sink, if any, and tick the
/// trace_events_emitted perf counter.
inline void emit(const TraceEvent& event) {
  if (TraceSink* sink = trace_sink()) {
    sink->on_event(event);
    OMFLP_PERF_COUNT(trace_events_emitted);
  }
}

}  // namespace obs

/// RAII mute: uninstalls any trace sink for the current scope. Used by
/// PerCommodityAdapter, whose sub-algorithms run against private
/// sub-ledgers — their facility/request ids would pollute a trace that
/// speaks real-ledger ids, so the adapter re-emits with translated ids.
class TraceSuppressScope {
 public:
  TraceSuppressScope() noexcept : previous_(obs::tl_trace_sink) {
    obs::tl_trace_sink = nullptr;
  }
  ~TraceSuppressScope() { obs::tl_trace_sink = previous_; }

  TraceSuppressScope(const TraceSuppressScope&) = delete;
  TraceSuppressScope& operator=(const TraceSuppressScope&) = delete;

 private:
  TraceSink* previous_;
};

/// RAII installer mirroring PerfScope: makes `sink` the current thread's
/// trace sink and restores the previous one on destruction.
class TraceScope {
 public:
  explicit TraceScope(TraceSink& sink) noexcept
      : previous_(obs::tl_trace_sink) {
    obs::tl_trace_sink = &sink;
  }
  ~TraceScope() { obs::tl_trace_sink = previous_; }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceSink* previous_;
};

}  // namespace omflp
