#include "obs/explain.hpp"

#include <array>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace omflp {

namespace {

const char* constraint_name(std::uint8_t constraint) {
  switch (constraint) {
    case 1: return "(1) connect to a nearby open facility";
    case 2: return "(2) reach a large facility";
    case 3: return "(3) joint investment in a small facility";
    case 4: return "(4) joint investment in a large facility";
    default: return "(coin flip / threshold; no dual constraint)";
  }
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return std::string(buf);
}

/// One line per event, used by the per-request view.
void render_event(std::ostringstream& os, const TraceEvent& ev,
                  std::size_t index) {
  os << "  [" << index << "] " << trace_event_kind_name(ev.kind);
  switch (ev.kind) {
    case TraceEventKind::kFacilityOpen:
      os << "  facility " << ev.facility << " at point " << ev.point
         << " (|config|=" << ev.config_size << ", cost " << fmt(ev.cost)
         << ", constraint " << int{ev.constraint} << ")";
      break;
    case TraceEventKind::kRequestAssign:
      os << "  request " << ev.request << " -> facility " << ev.facility
         << " (commodity " << ev.commodity << ", dist " << fmt(ev.cost)
         << ")";
      break;
    case TraceEventKind::kBidRollback:
      os << "  request " << ev.request << " withdrew bid mass "
         << fmt(ev.bid_mass) << " (dual " << fmt(ev.cost) << ")";
      break;
    case TraceEventKind::kDepart:
    case TraceEventKind::kLeaseExpire:
      os << "  request " << ev.request << " at stream event "
         << ev.stream_event;
      break;
    case TraceEventKind::kDualRaise:
      os << "  request " << ev.request << " commodity " << ev.commodity
         << " raised " << fmt(ev.cost);
      break;
    case TraceEventKind::kVerifierFlag:
      os << "  request " << ev.request << ": " << ev.note;
      break;
  }
  os << "\n";
}

std::string explain_facility(const std::vector<TraceEvent>& events,
                             FacilityId facility) {
  // The opening event and its position in the trace.
  std::size_t open_index = events.size();
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events[i].kind == TraceEventKind::kFacilityOpen &&
        events[i].facility == facility) {
      open_index = i;
      break;
    }
  if (open_index == events.size())
    throw std::invalid_argument("explain: facility " +
                                std::to_string(facility) +
                                " never opened in this trace");
  const TraceEvent& open = events[open_index];

  std::ostringstream os;
  os << "facility " << facility << " opened at point " << open.point
     << " while serving request " << open.request << "\n"
     << "  configuration size " << open.config_size << ", opening cost "
     << fmt(open.cost) << "\n"
     << "  tight constraint: " << constraint_name(open.constraint) << "\n";
  if (open.tightness > 0.0)
    os << "  tightness/coin value at the decision: " << fmt(open.tightness)
       << "\n";

  // The bid side: who paid. Percentages are of the recorded contributor
  // total (archived bids + the serving request's own term), not of
  // bid_mass, which counts only the archived rows.
  double contributed = open.residual;
  for (const TraceContributor& c : open.contributors)
    contributed += c.amount;
  if (!open.contributors.empty() || open.bid_mass > 0.0) {
    os << "  archived bid mass at decision time: " << fmt(open.bid_mass)
       << "; recorded contributions: " << fmt(contributed) << "\n";
    for (const TraceContributor& c : open.contributors) {
      os << "    request " << c.request << " contributed " << fmt(c.amount);
      if (contributed > 0.0)
        os << " (" << fmt(100.0 * c.amount / contributed) << "%)";
      os << "\n";
    }
    if (open.residual > 0.0)
      os << "    (+ " << fmt(open.residual) << " from contributors beyond "
         << "the top " << kMaxTraceContributors << ")\n";
  } else {
    os << "  no archived bid mass (threshold or coin-flip opening)\n";
  }

  // The service side: connections through this facility, and what later
  // departures withdrew from the bid mass that paid for it.
  std::size_t assignments = 0;
  double rolled_back = 0.0;
  std::size_t contributors_rolled = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (ev.kind == TraceEventKind::kRequestAssign &&
        ev.facility == facility)
      ++assignments;
    if (i > open_index && ev.kind == TraceEventKind::kBidRollback) {
      for (const TraceContributor& c : open.contributors)
        if (c.request == ev.request) {
          rolled_back += c.amount;
          ++contributors_rolled;
          break;
        }
    }
  }
  os << "  served " << assignments << " connection"
     << (assignments == 1 ? "" : "s") << " in the trace\n";
  if (contributors_rolled > 0) {
    os << "  rollback: " << contributors_rolled << " of "
       << open.contributors.size() << " recorded contributors later "
       << "departed, withdrawing " << fmt(rolled_back) << " of "
       << fmt(contributed) << " contributed mass";
    if (contributed > 0.0 && rolled_back >= contributed - 1e-12)
      os << " — the joint investment was fully undone (the facility "
            "stays open; only the dual accounting is withdrawn)";
    os << "\n";
  } else {
    os << "  rollback: none of the recorded contributors departed later\n";
  }
  return os.str();
}

std::string explain_request(const std::vector<TraceEvent>& events,
                            RequestId request) {
  std::ostringstream os;
  os << "events involving request " << request << ":\n";
  std::size_t hits = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    bool involved = ev.request == request;
    if (!involved)
      for (const TraceContributor& c : ev.contributors)
        if (c.request == request) {
          involved = true;
          break;
        }
    if (!involved) continue;
    ++hits;
    if (ev.request != request &&
        ev.kind == TraceEventKind::kFacilityOpen) {
      // Involved as a contributor only.
      double amount = 0.0;
      for (const TraceContributor& c : ev.contributors)
        if (c.request == request) amount = c.amount;
      os << "  [" << i << "] contributed " << fmt(amount)
         << " bid mass to facility " << ev.facility << " (opened by "
         << "request " << ev.request << ")\n";
      continue;
    }
    render_event(os, ev, i);
  }
  if (hits == 0) os << "  (none)\n";
  return os.str();
}

std::string explain_summary(const std::vector<TraceEvent>& events) {
  std::array<std::size_t, 7> by_kind{};
  double opening_cost = 0.0;
  double rolled_back_mass = 0.0;
  for (const TraceEvent& ev : events) {
    ++by_kind[static_cast<std::size_t>(ev.kind)];
    if (ev.kind == TraceEventKind::kFacilityOpen) opening_cost += ev.cost;
    if (ev.kind == TraceEventKind::kBidRollback)
      rolled_back_mass += ev.bid_mass;
  }
  std::ostringstream os;
  os << "trace: " << events.size() << " events\n";
  for (int k = 0; k <= 6; ++k)
    if (by_kind[static_cast<std::size_t>(k)] > 0)
      os << "  " << trace_event_kind_name(static_cast<TraceEventKind>(k))
         << ": " << by_kind[static_cast<std::size_t>(k)] << "\n";
  if (by_kind[0] > 0)
    os << "total opening cost across openings: " << fmt(opening_cost)
       << "\n";
  if (by_kind[2] > 0)
    os << "total bid mass withdrawn by rollbacks: "
       << fmt(rolled_back_mass) << "\n";
  os << "use --facility N for the causal chain behind one opening, "
        "--request N for one request's events\n";
  return os.str();
}

}  // namespace

std::string explain_trace(const std::vector<TraceEvent>& events,
                          const ExplainOptions& options) {
  if (options.facility) return explain_facility(events, *options.facility);
  if (options.request) return explain_request(events, *options.request);
  return explain_summary(events);
}

}  // namespace omflp
