// MetricsSampler — live serving telemetry for the sharded engine.
//
// `omflp serve` used to report latency percentiles only in the final
// report, after every tenant had drained — useless for watching a run.
// The sampler fixes that: the engine hands it cumulative per-shard state
// after every global-clock round, and every `sample_every` rounds it
// emits one time-series record per shard (CSV or JSONL) with interval
// deltas: events/s since the last sample, latency percentiles of only
// the batches in the interval (LatencyHistogram::snapshot_delta against
// a per-shard LatencyBaseline), work-counter deltas, and the live
// gauges (facilities open, active requests, resident ledger records).
//
// The sampler runs on the engine's calling thread between rounds — it
// never contends with shard workers — and costs nothing when absent:
// the engine keeps per-shard histograms and gauge sums only when a
// sampler is installed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "perf/latency_histogram.hpp"
#include "perf/perf_counters.hpp"

namespace omflp {

/// Cumulative per-shard state handed to the sampler after each round;
/// the sampler turns it into interval deltas against its baselines.
struct ShardRoundStats {
  std::uint64_t events = 0;   // events processed so far (cumulative)
  std::uint64_t batches = 0;  // non-empty batches stepped so far
  /// Live gauges, summed over the shard's tenants at round end.
  std::size_t facilities_open = 0;
  std::size_t active_requests = 0;
  std::size_t resident_records = 0;
  /// Cumulative work counters (all-zero when counter collection is off).
  PerfCounters counters;
  /// The shard's cumulative batch-latency histogram.
  const LatencyHistogram* latency = nullptr;
};

class MetricsSampler {
 public:
  enum class Format { kCsv, kJsonl };

  /// `out` is borrowed and must outlive the sampler. A CSV header (or
  /// nothing, for JSONL) is written on the first record.
  MetricsSampler(std::ostream& out, Format format,
                 std::uint64_t sample_every = 1);

  std::uint64_t sample_every() const noexcept { return sample_every_; }

  /// Engine hook, called on the calling thread after every round.
  /// Emits one record per shard when `round` is a multiple of
  /// sample_every or `final_round` is set (so short runs still produce
  /// at least one sample). Rounds must be presented in increasing order
  /// with a stable shard count.
  void on_round(std::uint64_t round,
                const std::vector<ShardRoundStats>& shards,
                bool final_round = false);

 private:
  struct ShardBaseline {
    std::uint64_t events = 0;
    std::uint64_t batches = 0;
    std::uint64_t requests_served = 0;
    std::uint64_t facilities_opened = 0;
    LatencyBaseline latency;
  };

  std::ostream& out_;
  Format format_;
  std::uint64_t sample_every_;
  std::uint64_t last_tick_ns_ = 0;  // 0 = before the first record
  bool header_written_ = false;
  std::vector<ShardBaseline> baselines_;
};

}  // namespace omflp
