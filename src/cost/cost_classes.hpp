// CostClassIndex — Meyerson-style power-of-two cost classes (§4.1).
//
// For a fixed configuration σ, RAND-OMFLP rounds each opening cost f^σ_m
// down to the nearest power of two and groups points by rounded cost:
// "class i" has cost C^σ_i, with C^σ_i < C^σ_{i+1} (so 2·C^σ_i ≤ C^σ_{i+1}).
// The algorithm needs d(C^σ_i, r) — the distance from r to the nearest
// point of class i. We define class distances over *prefixes* (all points
// of class ≤ i): this makes d monotone non-increasing in i, which is what
// the telescoping sums in Lemma 20/21 require, and can only give the
// algorithm cheaper choices than the literal per-class reading.
//
// Zero-cost points (possible with degenerate models) form their own class
// with rounded cost 0 in front of all power-of-two classes.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cost/cost_model.hpp"
#include "metric/distance_oracle.hpp"
#include "metric/metric_space.hpp"

namespace omflp {

class CostClassIndex {
 public:
  /// `oracle` (optional) must wrap the same metric; when provided, the
  /// prefix_nearest point sweep runs over the oracle's contiguous
  /// distance rows (kernel::argmin_over_row_where) instead of per-point
  /// virtual metric calls. Algorithms share one oracle across all their
  /// class indexes so the dense matrix is materialized once.
  CostClassIndex(MetricPtr metric, CostModelPtr cost, CommoditySet config,
                 std::shared_ptr<const DistanceOracle> oracle = nullptr);

  std::size_t num_classes() const noexcept { return class_costs_.size(); }

  /// Rounded-down cost C_i of class i (0-based, increasing).
  double class_cost(std::size_t i) const;

  /// The class of point m.
  std::size_t class_of_point(PointId m) const;

  /// True opening cost f^σ_m at point m (cached).
  double true_cost(PointId m) const;

  /// Distance from r to the nearest point of class ≤ i, and that point.
  /// O(|M|) scan.
  std::pair<double, PointId> prefix_nearest(std::size_t i, PointId r) const;

  /// min_i { C_i + d(prefix_i, r) } — the cheapest "open new facility with
  /// configuration σ and connect r to it" option, with its class and point.
  struct BestOpenOption {
    double cost = 0.0;       // C_i + distance
    std::size_t cls = 0;     // the minimizing class i
    PointId point = 0;       // nearest prefix-i point realizing it
    double distance = 0.0;   // d(prefix_i, r)
  };
  BestOpenOption best_open_option(PointId r) const;

  const CommoditySet& config() const noexcept { return config_; }

 private:
  MetricPtr metric_;
  CostModelPtr cost_;
  CommoditySet config_;
  std::shared_ptr<const DistanceOracle> oracle_;  // may be null
  std::vector<double> class_costs_;        // ascending rounded costs
  std::vector<std::size_t> point_class_;   // point -> class index
  /// point -> class as u32, the mask row for the branch-free argmin.
  std::vector<std::uint32_t> point_class32_;
  std::vector<double> point_true_cost_;    // point -> f^σ_m
};

/// Round x down to the nearest power of two (x > 0); exact for all
/// finite doubles. round_down_pow2(0) == 0 by convention.
double round_down_pow2(double x);

}  // namespace omflp
