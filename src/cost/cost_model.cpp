#include "cost/cost_model.hpp"

#include "support/assert.hpp"

namespace omflp {

double FacilityCostModel::singleton_cost(PointId m, CommodityId e) const {
  return open_cost(m, CommoditySet::singleton(num_commodities(), e));
}

double FacilityCostModel::full_cost(PointId m) const {
  return open_cost(m, CommoditySet::full_set(num_commodities()));
}

CommodityId FacilityCostModel::check_config(const CommoditySet& config) const {
  OMFLP_REQUIRE(config.universe_size() == num_commodities(),
                "FacilityCostModel: configuration universe mismatch");
  return config.count();
}

}  // namespace omflp
