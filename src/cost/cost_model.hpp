// FacilityCostModel — the construction cost function f^σ_m of the paper.
//
// A facility opened at point m with configuration σ ⊆ S costs
// open_cost(m, σ). The paper's analysis assumes
//   * subadditivity:  f^{a∪b}_m ≤ f^a_m + f^b_m   (always WLOG, §1.1), and
//   * Condition 1:    f^σ_m / |σ| ≥ f^S_m / |S|   (per-commodity cost is
//     minimal for the full configuration).
// Models declare whether they satisfy these structurally; cost/checks.hpp
// verifies the claims empirically on concrete universes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/commodity_set.hpp"
#include "support/types.hpp"

namespace omflp {

class FacilityCostModel {
 public:
  virtual ~FacilityCostModel() = default;

  /// |S|: configurations passed to open_cost must use this universe size.
  virtual CommodityId num_commodities() const noexcept = 0;

  /// f^σ_m — cost of opening a facility with configuration σ at point m.
  /// Must be non-negative; empty σ must cost 0. Throws on universe
  /// mismatch.
  virtual double open_cost(PointId m, const CommoditySet& config) const = 0;

  /// True if open_cost is independent of the point m (uniform costs). Lets
  /// algorithms collapse per-point bookkeeping (e.g. RAND-OMFLP's cost
  /// classes degenerate to a single class).
  virtual bool location_invariant() const noexcept { return false; }

  /// If the cost depends only on |σ| at point m, returns g(k); otherwise
  /// std::nullopt. Offline solvers use this for exact O(k²) set-cover
  /// dynamic programs instead of the O(3^|S|) general subset DP.
  virtual std::optional<double> cost_by_size(PointId m, CommodityId k) const {
    (void)m;
    (void)k;
    return std::nullopt;
  }

  /// If the cost is additive at point m — f^σ_m = Σ_{e∈σ} w_e(m) exactly —
  /// returns the per-commodity weights (size |S|); otherwise std::nullopt.
  /// The dual-ascent lower bounder (src/bound/) uses these as exact
  /// per-commodity facility budgets; the certificate checker spot-checks
  /// the claim against open_cost before relying on it.
  virtual std::optional<std::vector<double>> additive_weights(
      PointId m) const {
    (void)m;
    return std::nullopt;
  }

  virtual std::string description() const = 0;

  /// Cost of a small facility {e} at m; convenience used pervasively by
  /// the algorithms (Algorithm 1's Constraint (3)).
  double singleton_cost(PointId m, CommodityId e) const;

  /// Cost of a large facility (all of S) at m (Constraint (4)).
  double full_cost(PointId m) const;

 protected:
  /// Helper for implementations: validates σ's universe and non-emptiness
  /// conventions. Returns |σ|.
  CommodityId check_config(const CommoditySet& config) const;
};

using CostModelPtr = std::shared_ptr<const FacilityCostModel>;

}  // namespace omflp
