#include "cost/cost_models.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace omflp {

SizeOnlyCostModel::SizeOnlyCostModel(CommodityId num_commodities, SizeCostFn g,
                                     std::string name)
    : s_(num_commodities), name_(std::move(name)) {
  OMFLP_REQUIRE(s_ > 0, "SizeOnlyCostModel: |S| must be positive");
  OMFLP_REQUIRE(g != nullptr, "SizeOnlyCostModel: null cost function");
  by_size_.resize(s_ + 1);
  for (CommodityId k = 0; k <= s_; ++k) {
    by_size_[k] = g(k);
    OMFLP_REQUIRE(std::isfinite(by_size_[k]) && by_size_[k] >= 0.0,
                  "SizeOnlyCostModel: g must be finite and non-negative");
  }
  OMFLP_REQUIRE(by_size_[0] == 0.0, "SizeOnlyCostModel: g(0) must be 0");
}

double SizeOnlyCostModel::open_cost(PointId /*m*/,
                                    const CommoditySet& config) const {
  return by_size_[check_config(config)];
}

double SizeOnlyCostModel::cost_of_size(CommodityId k) const {
  OMFLP_REQUIRE(k <= s_, "cost_of_size: size exceeds |S|");
  return by_size_[k];
}

PolynomialCostModel::PolynomialCostModel(CommodityId num_commodities,
                                         double exponent_x, double scale)
    : s_(num_commodities), x_(exponent_x), scale_(scale) {
  OMFLP_REQUIRE(s_ > 0, "PolynomialCostModel: |S| must be positive");
  OMFLP_REQUIRE(x_ >= 0.0 && x_ <= 2.0,
                "PolynomialCostModel: x must lie in [0, 2] (class C)");
  OMFLP_REQUIRE(scale_ > 0.0, "PolynomialCostModel: scale must be positive");
}

double PolynomialCostModel::open_cost(PointId /*m*/,
                                      const CommoditySet& config) const {
  return cost_of_size(check_config(config));
}

double PolynomialCostModel::cost_of_size(CommodityId k) const {
  OMFLP_REQUIRE(k <= s_, "cost_of_size: size exceeds |S|");
  if (k == 0) return 0.0;
  return scale_ * std::pow(static_cast<double>(k), x_ / 2.0);
}

std::string PolynomialCostModel::description() const {
  std::ostringstream os;
  os << "g_x(|sigma|)=" << scale_ << "*|sigma|^" << (x_ / 2.0);
  return os.str();
}

CeilRatioCostModel::CeilRatioCostModel(CommodityId num_commodities,
                                       double scale)
    : s_(num_commodities),
      sqrt_s_(std::sqrt(static_cast<double>(num_commodities))),
      scale_(scale) {
  OMFLP_REQUIRE(s_ > 0, "CeilRatioCostModel: |S| must be positive");
  OMFLP_REQUIRE(scale_ > 0.0, "CeilRatioCostModel: scale must be positive");
}

double CeilRatioCostModel::open_cost(PointId /*m*/,
                                     const CommoditySet& config) const {
  return cost_of_size(check_config(config));
}

double CeilRatioCostModel::cost_of_size(CommodityId k) const {
  OMFLP_REQUIRE(k <= s_, "cost_of_size: size exceeds |S|");
  if (k == 0) return 0.0;
  return scale_ * std::ceil(static_cast<double>(k) / sqrt_s_);
}

std::string CeilRatioCostModel::description() const {
  std::ostringstream os;
  os << "ceil(|sigma|/sqrt(" << s_ << "))*" << scale_;
  return os.str();
}

LinearCostModel::LinearCostModel(CommodityId num_commodities, double weight)
    : weights_(num_commodities, weight) {
  OMFLP_REQUIRE(num_commodities > 0, "LinearCostModel: |S| must be positive");
  OMFLP_REQUIRE(std::isfinite(weight) && weight >= 0.0,
                "LinearCostModel: weight must be finite and non-negative");
}

LinearCostModel::LinearCostModel(std::vector<double> weights)
    : weights_(std::move(weights)) {
  OMFLP_REQUIRE(!weights_.empty(), "LinearCostModel: |S| must be positive");
  for (double w : weights_)
    OMFLP_REQUIRE(std::isfinite(w) && w >= 0.0,
                  "LinearCostModel: weights must be finite and non-negative");
}

double LinearCostModel::open_cost(PointId /*m*/,
                                  const CommoditySet& config) const {
  check_config(config);
  double acc = 0.0;
  config.for_each([&](CommodityId e) { acc += weights_[e]; });
  return acc;
}

std::string LinearCostModel::description() const {
  std::ostringstream os;
  os << "linear(|S|=" << weights_.size() << ")";
  return os.str();
}

PointScaledCostModel::PointScaledCostModel(CostModelPtr base,
                                           std::vector<double> multipliers)
    : base_(std::move(base)), multipliers_(std::move(multipliers)) {
  OMFLP_REQUIRE(base_ != nullptr, "PointScaledCostModel: null base model");
  OMFLP_REQUIRE(!multipliers_.empty(),
                "PointScaledCostModel: need at least one point");
  for (double f : multipliers_)
    OMFLP_REQUIRE(std::isfinite(f) && f > 0.0,
                  "PointScaledCostModel: multipliers must be positive");
}

double PointScaledCostModel::open_cost(PointId m,
                                       const CommoditySet& config) const {
  OMFLP_REQUIRE(m < multipliers_.size(),
                "PointScaledCostModel: point out of range");
  return multipliers_[m] * base_->open_cost(m, config);
}

std::optional<double> PointScaledCostModel::cost_by_size(PointId m,
                                                         CommodityId k) const {
  OMFLP_REQUIRE(m < multipliers_.size(),
                "PointScaledCostModel: point out of range");
  const auto base = base_->cost_by_size(m, k);
  if (!base) return std::nullopt;
  return multipliers_[m] * *base;
}

std::optional<std::vector<double>> PointScaledCostModel::additive_weights(
    PointId m) const {
  OMFLP_REQUIRE(m < multipliers_.size(),
                "PointScaledCostModel: point out of range");
  auto base = base_->additive_weights(m);
  if (!base) return std::nullopt;
  for (double& w : *base) w *= multipliers_[m];
  return base;
}

bool PointScaledCostModel::location_invariant() const noexcept {
  if (!base_->location_invariant()) return false;
  return std::all_of(multipliers_.begin(), multipliers_.end(),
                     [&](double f) { return f == multipliers_.front(); });
}

std::string PointScaledCostModel::description() const {
  std::ostringstream os;
  os << "point-scaled(" << base_->description() << ", "
     << multipliers_.size() << " points)";
  return os.str();
}

}  // namespace omflp
