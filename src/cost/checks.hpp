// Empirical verification of the paper's cost-function assumptions.
//
// Subadditivity (f^{a∪b}_m ≤ f^a_m + f^b_m for a ∪ b = σ) is WLOG per
// §1.1; Condition 1 (f^σ_m/|σ| ≥ f^S_m/|S|) is the paper's substantive
// assumption. Exhaustive checks enumerate all configurations (2^|S|, use
// for |S| ≤ ~16); sampled checks draw random (σ, a, b, m) tuples.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "cost/cost_model.hpp"
#include "support/rng.hpp"

namespace omflp {

struct CostViolation {
  std::string what;
};

/// Exhaustive Condition-1 check over all non-empty σ and all points in
/// [0, num_points). Requires |S| ≤ 20 (2^|S| enumeration).
std::optional<CostViolation> check_condition1_exhaustive(
    const FacilityCostModel& cost, std::size_t num_points,
    double tolerance = 1e-9);

/// Sampled Condition-1 check (random σ, random point).
std::optional<CostViolation> check_condition1_sampled(
    const FacilityCostModel& cost, std::size_t num_points,
    std::size_t samples, Rng& rng, double tolerance = 1e-9);

/// Exhaustive subadditivity check: for every σ and every 2-partition
/// (a, σ\a), f^σ ≤ f^a + f^{σ\a}. Enumerates 3^|S| triples; |S| ≤ 12.
std::optional<CostViolation> check_subadditivity_exhaustive(
    const FacilityCostModel& cost, std::size_t num_points,
    double tolerance = 1e-9);

/// Sampled subadditivity check with random covers a ∪ b = σ (a, b may
/// overlap, the paper's definition allows it).
std::optional<CostViolation> check_subadditivity_sampled(
    const FacilityCostModel& cost, std::size_t num_points,
    std::size_t samples, Rng& rng, double tolerance = 1e-9);

}  // namespace omflp
