#include "cost/checks.hpp"

#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace omflp {

namespace {

CommoditySet set_from_mask(CommodityId universe, std::uint64_t mask) {
  CommoditySet s(universe);
  for (CommodityId e = 0; e < universe; ++e)
    if ((mask >> e) & 1ULL) s.add(e);
  return s;
}

CommoditySet random_nonempty_subset(CommodityId universe, Rng& rng) {
  CommoditySet s(universe);
  // Geometric density so both small and large configurations appear.
  const double p = rng.uniform(0.05, 0.95);
  for (CommodityId e = 0; e < universe; ++e)
    if (rng.bernoulli(p)) s.add(e);
  if (s.empty()) s.add(static_cast<CommodityId>(rng.uniform_index(universe)));
  return s;
}

std::optional<CostViolation> condition1_at(const FacilityCostModel& cost,
                                           PointId m,
                                           const CommoditySet& sigma,
                                           double tol) {
  const CommodityId s = cost.num_commodities();
  const double f_sigma = cost.open_cost(m, sigma);
  const double f_full = cost.open_cost(m, CommoditySet::full_set(s));
  const double lhs = f_sigma / static_cast<double>(sigma.count());
  const double rhs = f_full / static_cast<double>(s);
  if (lhs + tol < rhs) {
    std::ostringstream os;
    os << "Condition 1 violated at m=" << m << ", sigma="
       << sigma.to_string() << ": f/|sigma|=" << lhs << " < f^S/|S|=" << rhs;
    return CostViolation{os.str()};
  }
  return std::nullopt;
}

std::optional<CostViolation> subadd_at(const FacilityCostModel& cost,
                                       PointId m, const CommoditySet& a,
                                       const CommoditySet& b, double tol) {
  const CommoditySet u = a | b;
  if (u.empty()) return std::nullopt;
  const double fu = cost.open_cost(m, u);
  const double fa = cost.open_cost(m, a);
  const double fb = cost.open_cost(m, b);
  if (fu > fa + fb + tol) {
    std::ostringstream os;
    os << "subadditivity violated at m=" << m << ": f(" << u.to_string()
       << ")=" << fu << " > f(" << a.to_string() << ")+f(" << b.to_string()
       << ")=" << (fa + fb);
    return CostViolation{os.str()};
  }
  return std::nullopt;
}

}  // namespace

std::optional<CostViolation> check_condition1_exhaustive(
    const FacilityCostModel& cost, std::size_t num_points, double tolerance) {
  const CommodityId s = cost.num_commodities();
  OMFLP_REQUIRE(s <= 20, "check_condition1_exhaustive: |S| too large");
  OMFLP_REQUIRE(num_points > 0, "check_condition1_exhaustive: no points");
  const std::size_t points =
      cost.location_invariant() ? std::size_t{1} : num_points;
  for (PointId m = 0; m < points; ++m)
    for (std::uint64_t mask = 1; mask < (1ULL << s); ++mask)
      if (auto v =
              condition1_at(cost, m, set_from_mask(s, mask), tolerance))
        return v;
  return std::nullopt;
}

std::optional<CostViolation> check_condition1_sampled(
    const FacilityCostModel& cost, std::size_t num_points,
    std::size_t samples, Rng& rng, double tolerance) {
  OMFLP_REQUIRE(num_points > 0, "check_condition1_sampled: no points");
  const CommodityId s = cost.num_commodities();
  for (std::size_t i = 0; i < samples; ++i) {
    const PointId m = static_cast<PointId>(rng.uniform_index(num_points));
    if (auto v = condition1_at(cost, m, random_nonempty_subset(s, rng),
                               tolerance))
      return v;
  }
  return std::nullopt;
}

std::optional<CostViolation> check_subadditivity_exhaustive(
    const FacilityCostModel& cost, std::size_t num_points, double tolerance) {
  const CommodityId s = cost.num_commodities();
  OMFLP_REQUIRE(s <= 12, "check_subadditivity_exhaustive: |S| too large");
  OMFLP_REQUIRE(num_points > 0, "check_subadditivity_exhaustive: no points");
  const std::size_t points =
      cost.location_invariant() ? std::size_t{1} : num_points;
  for (PointId m = 0; m < points; ++m) {
    for (std::uint64_t mask = 1; mask < (1ULL << s); ++mask) {
      const CommoditySet sigma = set_from_mask(s, mask);
      // Enumerate submasks a of sigma; b = sigma \ a is the complement,
      // giving every exact 2-partition (the paper allows overlaps, but a
      // violation with overlap implies one without).
      for (std::uint64_t a = mask; a != 0; a = (a - 1) & mask) {
        const CommoditySet sa = set_from_mask(s, a);
        const CommoditySet sb = sigma - sa;
        if (auto v = subadd_at(cost, m, sa, sb, tolerance)) return v;
      }
    }
  }
  return std::nullopt;
}

std::optional<CostViolation> check_subadditivity_sampled(
    const FacilityCostModel& cost, std::size_t num_points,
    std::size_t samples, Rng& rng, double tolerance) {
  OMFLP_REQUIRE(num_points > 0, "check_subadditivity_sampled: no points");
  const CommodityId s = cost.num_commodities();
  for (std::size_t i = 0; i < samples; ++i) {
    const PointId m = static_cast<PointId>(rng.uniform_index(num_points));
    const CommoditySet a = random_nonempty_subset(s, rng);
    const CommoditySet b = random_nonempty_subset(s, rng);
    if (auto v = subadd_at(cost, m, a, b, tolerance)) return v;
  }
  return std::nullopt;
}

}  // namespace omflp
