#include "cost/cost_classes.hpp"

#include <algorithm>
#include <cmath>

#include "kernel/kernels.hpp"
#include "support/assert.hpp"

namespace omflp {

double round_down_pow2(double x) {
  OMFLP_REQUIRE(std::isfinite(x) && x >= 0.0,
                "round_down_pow2: x must be finite and non-negative");
  if (x == 0.0) return 0.0;
  int exp = 0;
  // frexp: x = mantissa * 2^exp with mantissa in [0.5, 1); the power of two
  // below x is 2^(exp-1), except when x is itself a power of two.
  const double mantissa = std::frexp(x, &exp);
  if (mantissa == 0.5) return x;  // exact power of two
  return std::ldexp(1.0, exp - 1);
}

CostClassIndex::CostClassIndex(MetricPtr metric, CostModelPtr cost,
                               CommoditySet config,
                               std::shared_ptr<const DistanceOracle> oracle)
    : metric_(std::move(metric)), cost_(std::move(cost)),
      config_(std::move(config)), oracle_(std::move(oracle)) {
  OMFLP_REQUIRE(metric_ != nullptr, "CostClassIndex: null metric");
  OMFLP_REQUIRE(cost_ != nullptr, "CostClassIndex: null cost model");
  OMFLP_REQUIRE(!config_.empty(), "CostClassIndex: empty configuration");
  OMFLP_REQUIRE(oracle_ == nullptr ||
                    oracle_->num_points() == metric_->num_points(),
                "CostClassIndex: oracle/metric size mismatch");

  const std::size_t n = metric_->num_points();
  point_true_cost_.resize(n);
  std::vector<double> rounded(n);
  for (PointId m = 0; m < n; ++m) {
    point_true_cost_[m] = cost_->open_cost(m, config_);
    rounded[m] = round_down_pow2(point_true_cost_[m]);
  }

  class_costs_ = rounded;
  std::sort(class_costs_.begin(), class_costs_.end());
  class_costs_.erase(std::unique(class_costs_.begin(), class_costs_.end()),
                     class_costs_.end());

  point_class_.resize(n);
  point_class32_.resize(n);
  for (PointId m = 0; m < n; ++m) {
    const auto it = std::lower_bound(class_costs_.begin(), class_costs_.end(),
                                     rounded[m]);
    point_class_[m] = static_cast<std::size_t>(it - class_costs_.begin());
    point_class32_[m] = static_cast<std::uint32_t>(point_class_[m]);
  }
}

double CostClassIndex::class_cost(std::size_t i) const {
  OMFLP_REQUIRE(i < class_costs_.size(), "class_cost: class out of range");
  return class_costs_[i];
}

std::size_t CostClassIndex::class_of_point(PointId m) const {
  OMFLP_REQUIRE(m < point_class_.size(), "class_of_point: out of range");
  return point_class_[m];
}

double CostClassIndex::true_cost(PointId m) const {
  OMFLP_REQUIRE(m < point_true_cost_.size(), "true_cost: out of range");
  return point_true_cost_[m];
}

std::pair<double, PointId> CostClassIndex::prefix_nearest(std::size_t i,
                                                          PointId r) const {
  OMFLP_REQUIRE(i < class_costs_.size(), "prefix_nearest: class range");
  const std::size_t n = metric_->num_points();
  OMFLP_REQUIRE(r < n, "prefix_nearest: point range");
  if (oracle_ != nullptr) {
    // Branch-free masked argmin over the contiguous distance row — or
    // the unmasked argmin for the last class, whose prefix is all of M.
    // The first-index tie-break matches the scalar scan below; repeated
    // calls for the same r (best_open_option sweeps all classes) reuse
    // the oracle's materialized row on the uncached path.
    const double* row = oracle_->row(r);
    const std::size_t m =
        i + 1 == class_costs_.size()
            ? kernel::argmin_over_row(row, n)
            : kernel::argmin_over_row_where(
                  row, point_class32_.data(),
                  static_cast<std::uint32_t>(i), n);
    OMFLP_CHECK(m != n,
                "prefix_nearest: no point in prefix (class 0 must be "
                "non-empty by construction)");
    return {row[m], static_cast<PointId>(m)};
  }
  double best = kInfiniteDistance;
  PointId best_point = kInvalidPoint;
  for (PointId m = 0; m < n; ++m) {
    if (point_class_[m] > i) continue;
    const double d = metric_->distance(r, m);
    if (d < best) {
      best = d;
      best_point = m;
    }
  }
  OMFLP_CHECK(best_point != kInvalidPoint,
              "prefix_nearest: no point in prefix (class 0 must be "
              "non-empty by construction)");
  return {best, best_point};
}

CostClassIndex::BestOpenOption CostClassIndex::best_open_option(
    PointId r) const {
  BestOpenOption best;
  best.cost = kInfiniteDistance;
  for (std::size_t i = 0; i < class_costs_.size(); ++i) {
    const auto [d, m] = prefix_nearest(i, r);
    const double total = class_costs_[i] + d;
    if (total < best.cost) {
      best.cost = total;
      best.cls = i;
      best.point = m;
      best.distance = d;
    }
  }
  return best;
}

}  // namespace omflp
