#include "cost/heavy.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "support/assert.hpp"

namespace omflp {

HeavyTailCostModel::HeavyTailCostModel(
    CommodityId num_commodities, std::function<double(CommodityId)> base_g,
    CommoditySet heavy, std::vector<double> heavy_weights)
    : s_(num_commodities), heavy_(std::move(heavy)),
      weights_(std::move(heavy_weights)) {
  OMFLP_REQUIRE(s_ > 0, "HeavyTailCostModel: |S| must be positive");
  OMFLP_REQUIRE(base_g != nullptr, "HeavyTailCostModel: null base cost");
  OMFLP_REQUIRE(heavy_.universe_size() == s_,
                "HeavyTailCostModel: heavy set universe mismatch");
  OMFLP_REQUIRE(weights_.size() == s_,
                "HeavyTailCostModel: need one weight slot per commodity");
  base_by_size_.resize(s_ + 1);
  for (CommodityId k = 0; k <= s_; ++k) {
    base_by_size_[k] = base_g(k);
    OMFLP_REQUIRE(std::isfinite(base_by_size_[k]) && base_by_size_[k] >= 0.0,
                  "HeavyTailCostModel: base costs must be non-negative");
  }
  OMFLP_REQUIRE(base_by_size_[0] == 0.0, "HeavyTailCostModel: g(0) != 0");
  heavy_.for_each([&](CommodityId e) {
    OMFLP_REQUIRE(std::isfinite(weights_[e]) && weights_[e] >= 0.0,
                  "HeavyTailCostModel: heavy weights must be non-negative");
  });
}

double HeavyTailCostModel::open_cost(PointId /*m*/,
                                     const CommoditySet& config) const {
  check_config(config);
  const CommoditySet heavy_part = config & heavy_;
  double cost = base_by_size_[(config - heavy_).count()];
  heavy_part.for_each([&](CommodityId e) { cost += weights_[e]; });
  return cost;
}

std::string HeavyTailCostModel::description() const {
  std::ostringstream os;
  os << "heavy-tail(|S|=" << s_ << ", |H|=" << heavy_.count() << ")";
  return os.str();
}

CommoditySet detect_heavy_commodities(const FacilityCostModel& cost,
                                      std::size_t num_points,
                                      double factor) {
  OMFLP_REQUIRE(num_points > 0, "detect_heavy_commodities: no points");
  OMFLP_REQUIRE(factor >= 1.0,
                "detect_heavy_commodities: factor below 1 would flag "
                "commodities of perfectly uniform cost");
  const CommodityId s = cost.num_commodities();
  CommoditySet heavy(s);
  const std::size_t points =
      cost.location_invariant() ? std::size_t{1} : num_points;
  std::vector<double> singles(s);
  for (PointId m = 0; m < points; ++m) {
    for (CommodityId e = 0; e < s; ++e)
      singles[e] = cost.singleton_cost(m, e);
    std::vector<double> sorted = singles;
    std::nth_element(sorted.begin(), sorted.begin() + s / 2, sorted.end());
    const double median = sorted[s / 2];
    if (median <= 0.0) continue;
    for (CommodityId e = 0; e < s; ++e)
      if (singles[e] > factor * median) heavy.add(e);
  }
  return heavy;
}

}  // namespace omflp
