// Heavy commodities — the §5 closing-remarks scenario.
//
// Condition 1 "indirectly implies that the costs for single commodities
// are not too different: i.e., there is no commodity that results in a
// high increase in the construction cost when added to an existing
// configuration". The paper suggests that a small number of such *heavy*
// commodities can be handled by excluding them from prediction: run the
// algorithms with large facilities carrying all *non-heavy* commodities.
//
// This header supplies both halves of that programme:
//   * HeavyTailCostModel — a subadditive cost with designated heavy
//     commodities priced additively on top of a size-only base:
//         f^σ_m = g(|σ \ H|) + Σ_{e ∈ σ∩H} w_e.
//     With large weights it violates Condition 1 (by design — it is the
//     regime the paper's analysis excludes).
//   * detect_heavy_commodities — flags commodities whose singleton cost
//     exceeds `factor` times the *median* singleton cost at some point.
//     (§5's wording: heavy commodities are the ones whose costs are "too
//     different" from the others'. Comparing against the full-set average
//     would misfire: under a strongly subadditive base every singleton
//     legitimately costs up to ~√|S| times the per-commodity average —
//     that is Condition 1's slack, not heaviness.) The result plugs into
//     PdOptions::excluded_from_prediction.
#pragma once

#include <vector>

#include "cost/cost_model.hpp"

namespace omflp {

class HeavyTailCostModel final : public FacilityCostModel {
 public:
  /// base_g: subadditive size cost for the non-heavy part (g(0) == 0).
  /// heavy_weights: per-commodity additive cost for members of `heavy`;
  /// weights of non-heavy commodities are ignored.
  HeavyTailCostModel(CommodityId num_commodities,
                     std::function<double(CommodityId)> base_g,
                     CommoditySet heavy, std::vector<double> heavy_weights);

  CommodityId num_commodities() const noexcept override { return s_; }
  double open_cost(PointId m, const CommoditySet& config) const override;
  bool location_invariant() const noexcept override { return true; }
  std::string description() const override;

  const CommoditySet& heavy_set() const noexcept { return heavy_; }

 private:
  CommodityId s_;
  std::vector<double> base_by_size_;
  CommoditySet heavy_;
  std::vector<double> weights_;
};

/// Commodities e with  f^{{e}}_m > factor · median_e' f^{{e'}}_m  at some
/// point m. Factor must be ≥ 1; values of ~2-4 flag genuinely
/// disproportionate commodities. Scans all points; O(|M|·|S| log |S|).
CommoditySet detect_heavy_commodities(const FacilityCostModel& cost,
                                      std::size_t num_points,
                                      double factor);

}  // namespace omflp
