// Concrete construction-cost models.
//
//   SizeOnlyCostModel    — f^σ_m = g(|σ|) for an arbitrary user function g
//                          (the paper's "cost depends only on the number of
//                          offered commodities" setting).
//   PolynomialCostModel  — the paper's class C (§3.3):
//                          g_x(|σ|) = scale·|σ|^{x/2}, x ∈ [0, 2].
//                          x = 2 is linear, x = 0 constant, x = 1 sqrt.
//   CeilRatioCostModel   — Theorem 2's adversarial cost
//                          g(|σ|) = ⌈|σ| / √|S|⌉.
//   LinearCostModel      — f^σ_m = Σ_{e∈σ} w_e (per-commodity weights;
//                          [Shmoys et al. 2004]'s restricted setting).
//   PointScaledCostModel — wraps a base model with per-point multipliers,
//                          giving non-uniform (location-dependent) costs.
//                          Multipliers preserve subadditivity and
//                          Condition 1 because both are per-point.
#pragma once

#include <functional>
#include <vector>

#include "cost/cost_model.hpp"

namespace omflp {

class SizeOnlyCostModel final : public FacilityCostModel {
 public:
  using SizeCostFn = std::function<double(CommodityId)>;

  /// g must be defined on [0, |S|] with g(0) == 0 and non-negative values.
  SizeOnlyCostModel(CommodityId num_commodities, SizeCostFn g,
                    std::string name = "size-only");

  CommodityId num_commodities() const noexcept override { return s_; }
  double open_cost(PointId m, const CommoditySet& config) const override;
  bool location_invariant() const noexcept override { return true; }
  std::optional<double> cost_by_size(PointId m, CommodityId k) const override {
    (void)m;
    return cost_of_size(k);
  }
  std::string description() const override { return name_; }

  /// Direct size-indexed access, bypassing set construction.
  double cost_of_size(CommodityId k) const;

 private:
  CommodityId s_;
  std::vector<double> by_size_;  // precomputed g(0..|S|)
  std::string name_;
};

/// The paper's cost class C = { g_x(k) = k^{x/2} : x ∈ [0,2] } (§3.3),
/// with an overall scale factor. g_x(0) = 0 by convention.
class PolynomialCostModel final : public FacilityCostModel {
 public:
  PolynomialCostModel(CommodityId num_commodities, double exponent_x,
                      double scale = 1.0);

  CommodityId num_commodities() const noexcept override { return s_; }
  double open_cost(PointId m, const CommoditySet& config) const override;
  bool location_invariant() const noexcept override { return true; }
  std::optional<double> cost_by_size(PointId m, CommodityId k) const override {
    (void)m;
    return cost_of_size(k);
  }
  std::string description() const override;

  double exponent_x() const noexcept { return x_; }
  double scale() const noexcept { return scale_; }
  double cost_of_size(CommodityId k) const;

 private:
  CommodityId s_;
  double x_;
  double scale_;
};

/// Theorem 2's g(|σ|) = ⌈|σ| / √|S|⌉ (so a single commodity costs 1 and
/// the full universe costs √|S|·... precisely ⌈√|S|⌉).
class CeilRatioCostModel final : public FacilityCostModel {
 public:
  explicit CeilRatioCostModel(CommodityId num_commodities, double scale = 1.0);

  CommodityId num_commodities() const noexcept override { return s_; }
  double open_cost(PointId m, const CommoditySet& config) const override;
  bool location_invariant() const noexcept override { return true; }
  std::optional<double> cost_by_size(PointId m, CommodityId k) const override {
    (void)m;
    return cost_of_size(k);
  }
  std::string description() const override;

  double cost_of_size(CommodityId k) const;

 private:
  CommodityId s_;
  double sqrt_s_;
  double scale_;
};

/// f^σ_m = Σ_{e∈σ} w_e. Linear costs make commodity bundling worthless
/// (f^{a∪b} = f^a + f^b for disjoint a,b) — the regime where per-commodity
/// decomposition is optimal and prediction useless (x = 2 in class C).
class LinearCostModel final : public FacilityCostModel {
 public:
  /// Uniform weight w for every commodity.
  LinearCostModel(CommodityId num_commodities, double weight);
  /// Individual per-commodity weights.
  explicit LinearCostModel(std::vector<double> weights);

  CommodityId num_commodities() const noexcept override {
    return static_cast<CommodityId>(weights_.size());
  }
  double open_cost(PointId m, const CommoditySet& config) const override;
  bool location_invariant() const noexcept override { return true; }
  std::optional<std::vector<double>> additive_weights(
      PointId m) const override {
    (void)m;
    return weights_;
  }
  std::string description() const override;

 private:
  std::vector<double> weights_;
};

/// f^σ_m = multiplier[m] · base(σ). Models the paper's non-uniform setting
/// (opening costs differ between locations). Both subadditivity and
/// Condition 1 are preserved from the base model since the multiplier is
/// constant per point.
class PointScaledCostModel final : public FacilityCostModel {
 public:
  PointScaledCostModel(CostModelPtr base, std::vector<double> multipliers);

  CommodityId num_commodities() const noexcept override {
    return base_->num_commodities();
  }
  double open_cost(PointId m, const CommoditySet& config) const override;
  std::optional<double> cost_by_size(PointId m, CommodityId k) const override;
  std::optional<std::vector<double>> additive_weights(
      PointId m) const override;
  bool location_invariant() const noexcept override;
  std::string description() const override;

  std::size_t num_points() const noexcept { return multipliers_.size(); }

 private:
  CostModelPtr base_;
  std::vector<double> multipliers_;
};

}  // namespace omflp
