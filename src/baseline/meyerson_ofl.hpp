// MeyersonOfl — Meyerson's randomized algorithm for classic
// (single-commodity) Online Facility Location [Meyerson, FOCS 2001],
// O(log n/log log n)-competitive in expectation, with power-of-two cost
// classes for non-uniform opening costs.
//
// This is RAND-OMFLP restricted to |S| = 1 (the small and large sides
// coincide), implemented independently for cross-checking, and the
// building block of the per-commodity randomized baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/online_algorithm.hpp"
#include "cost/cost_classes.hpp"
#include "metric/distance_oracle.hpp"
#include "support/rng.hpp"

namespace omflp {

class MeyersonOfl final : public OnlineAlgorithm {
 public:
  explicit MeyersonOfl(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  std::string name() const override { return "Meyerson-OFL"; }

  /// Requires |S| == 1; wrap in PerCommodityAdapter otherwise.
  void reset(const ProblemContext& context) override;
  void serve(const Request& request, SolutionLedger& ledger) override;
  // Deletion policy: frozen (inherited no-op depart) — Meyerson's
  // algorithm is memoryless beyond its opened facilities.

  /// Checkpoint: the opened facilities plus the full RNG state, so the
  /// restored coin-flip sequence continues bitwise (the class index is
  /// rebuilt deterministically by reset()).
  void serialize_state(CkptWriter& writer) const override;
  void restore_state(CkptReader& reader) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
  CostModelPtr cost_;
  /// Shared with classes_ so both sweep the same distance rows.
  std::shared_ptr<DistanceOracle> dist_;
  std::unique_ptr<CostClassIndex> classes_;

  struct OpenRecord {
    PointId point = 0;
    FacilityId id = kInvalidFacility;
  };
  std::vector<OpenRecord> facilities_;
};

}  // namespace omflp
