#include "baseline/fotakis_ofl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "instance/checkpoint_io.hpp"
#include "kernel/kernels.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

void FotakisOfl::reset(const ProblemContext& context) {
  OMFLP_REQUIRE(context.metric != nullptr && context.cost != nullptr,
                "FotakisOfl::reset: incomplete context");
  OMFLP_REQUIRE(context.num_commodities() == 1,
                "FotakisOfl: single-commodity algorithm; wrap in "
                "PerCommodityAdapter for |S| > 1");
  cost_ = context.cost;
  dist_ = std::make_unique<DistanceOracle>(context.metric);
  num_points_ = dist_->num_points();
  facilities_.clear();
  past_.clear();
  bids_.assign(num_points_, 0.0);
  const CommoditySet single = CommoditySet::full_set(1);
  cost_row_.resize(num_points_);
  for (PointId m = 0; m < num_points_; ++m)
    cost_row_[m] = cost_->open_cost(m, single);
  total_dual_ = 0.0;
  duals_.clear();
}

void FotakisOfl::serve(const Request& request, SolutionLedger& ledger) {
  OMFLP_CHECK(cost_ != nullptr, "FotakisOfl: serve() before reset()");
  const PointId loc = request.location;

  // Nearest open facility (constraint (1) threshold).
  OMFLP_PERF_ADD(facilities_probed, facilities_.size());
  double d1 = kInfiniteDistance;
  FacilityId f1 = kInvalidFacility;
  if (!facilities_.empty()) {
    OMFLP_PERF_ADD(distance_lookups, facilities_.size());
    const double* dist_loc = dist_->row(loc);
    for (const OpenRecord& f : facilities_) {
      const double d = dist_loc[f.point];
      if (d < d1) {
        d1 = d;
        f1 = f.id;
      }
    }
  }

  // First tightness event while raising a_r from 0:
  //   (1) a_r = d(F, r);
  //   (3) (a_r − d(m,r))+ + bids_[m] = f_m  ⇒  a_r = d(m,r) + f_m − bids_[m].
  double best_delta = d1;
  int best_kind = 1;
  PointId best_point = kInvalidPoint;
  const CommoditySet single = CommoditySet::full_set(1);
  OMFLP_PERF_ADD(bids_evaluated, num_points_);
  OMFLP_PERF_ADD(distance_lookups, num_points_);
  const kernel::RowEvent event = kernel::min_tightness_over_row(
      dist_->row(loc), cost_row_.data(), bids_.data(), /*raised=*/0.0,
      /*divisor=*/1.0, num_points_);
  if (event.delta < best_delta) {
    best_delta = event.delta;
    best_kind = 3;
    best_point = static_cast<PointId>(event.index);
  }
  OMFLP_CHECK(std::isfinite(best_delta),
              "FotakisOfl: no constraint can become tight");

  const double a = best_delta;
  FacilityId serving = f1;
  if (best_kind == 3) {
    serving = ledger.open_facility(best_point, single);
    facilities_.push_back(OpenRecord{best_point, serving});
    if (obs::tracing()) {
      // Captured before the reinvestment loop below mutates bids_ and the
      // maintained facility distances.
      TraceEvent ev;
      ev.kind = TraceEventKind::kFacilityOpen;
      ev.request = ledger.num_requests() - 1;
      ev.constraint = 3;
      ev.commodity = 0;
      ev.facility = serving;
      ev.point = best_point;
      ev.config_size = 1;
      ev.cost = ledger.facility(serving).open_cost;
      ev.bid_mass = bids_[best_point];
      ev.tightness = a;
      std::vector<TraceContributor> contribs;
      const double* dist_m = dist_->row(best_point);
      for (std::size_t j = 0; j < past_.size(); ++j) {
        const PastRequest& pr = past_[j];
        const double v = std::min(pr.dual, pr.facility_dist);
        if (v <= 0.0) continue;
        const double amount = v - dist_m[pr.location];
        if (amount > 0.0)
          contribs.push_back(TraceContributor{j, amount});
      }
      const double own = a - dist_m[loc];
      if (own > 0.0)
        contribs.push_back(
            TraceContributor{ledger.num_requests() - 1, own});
      set_trace_contributors(ev, std::move(contribs));
      obs::emit(ev);
    }
    // The new facility may lower past requests' d(F, j); shrink their
    // outstanding bids accordingly (Lemma 6's reinvestment rule).
    for (PastRequest& pr : past_) {
      const double d_new = (*dist_)(best_point, pr.location);
      if (d_new >= pr.facility_dist) continue;
      const double v_old = std::min(pr.dual, pr.facility_dist);
      const double v_new = std::min(pr.dual, d_new);
      if (v_new < v_old && v_old > 0.0) {
        OMFLP_PERF_ADD(bids_updated, num_points_);
        OMFLP_PERF_ADD(distance_lookups, num_points_);
        kernel::shift_clipped_bid(bids_.data(), dist_->row(pr.location),
                                  v_old, v_new, num_points_);
      }
      pr.facility_dist = d_new;
    }
  }
  ledger.assign(0, serving);

  // Archive: post this request's bid contributions.
  PastRequest pr;
  pr.location = loc;
  pr.dual = a;
  pr.facility_dist = kInfiniteDistance;
  if (!facilities_.empty()) {
    OMFLP_PERF_ADD(distance_lookups, facilities_.size());
    const double* dist_loc = dist_->row(loc);
    for (const OpenRecord& f : facilities_)
      pr.facility_dist = std::min(pr.facility_dist, dist_loc[f.point]);
  }
  const double v = std::min(pr.dual, pr.facility_dist);
  if (v > 0.0) {
    OMFLP_PERF_ADD(bids_updated, num_points_);
    OMFLP_PERF_ADD(distance_lookups, num_points_);
    kernel::accumulate_clipped_bid(bids_.data(), dist_->row(loc), v,
                                   num_points_);
  }
  past_.push_back(pr);

  total_dual_ += a;
  duals_.push_back(a);

  if (obs::tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kDualRaise;
    ev.request = ledger.num_requests() - 1;
    ev.commodity = 0;
    ev.config_size = 1;
    ev.cost = a;
    obs::emit(ev);
  }
}

void FotakisOfl::depart(RequestId id, const Request& request,
                        SolutionLedger& ledger) {
  (void)request;
  (void)ledger;
  OMFLP_CHECK(cost_ != nullptr, "FotakisOfl: depart() before reset()");
  OMFLP_REQUIRE(id < past_.size(), "FotakisOfl: depart of unknown request");
  PastRequest& pr = past_[id];
  OMFLP_REQUIRE(!pr.departed, "FotakisOfl: request departed twice");
  pr.departed = true;
  const double v = std::min(pr.dual, pr.facility_dist);
  if (v > 0.0) {
    OMFLP_PERF_ADD(bids_updated, num_points_);
    OMFLP_PERF_ADD(distance_lookups, num_points_);
    kernel::shift_clipped_bid(bids_.data(), dist_->row(pr.location), v,
                              0.0, num_points_);
  }
  total_dual_ -= pr.dual;
  if (obs::tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kBidRollback;
    ev.request = id;
    ev.bid_mass = v > 0.0 ? v : 0.0;
    ev.cost = pr.dual;
    obs::emit(ev);
  }
  pr.dual = 0.0;  // reinvestment shifts for this request become no-ops
}

void FotakisOfl::serialize_state(CkptWriter& writer) const {
  writer.line("facilities").u(facilities_.size());
  for (const OpenRecord& f : facilities_) writer.u(f.point).u(f.id);
  writer.line("past").u(past_.size());
  for (const PastRequest& pr : past_) {
    writer.line("past-request")
        .u(pr.location)
        .d(pr.dual)
        .d(pr.facility_dist)
        .b(pr.departed);
  }
  writer.line("bids").u(bids_.size());
  for (const double v : bids_) writer.d(v);
  writer.line("duals").d(total_dual_).u(duals_.size());
  for (const double v : duals_) writer.d(v);
}

void FotakisOfl::restore_state(CkptReader& reader) {
  reader.expect("facilities");
  const std::uint64_t num_facilities = reader.u();
  facilities_.reserve(capped_reserve(num_facilities));
  for (std::uint64_t i = 0; i < num_facilities; ++i) {
    OpenRecord f;
    f.point = static_cast<PointId>(reader.u());
    f.id = static_cast<FacilityId>(reader.u());
    facilities_.push_back(f);
  }
  reader.expect("past");
  const std::uint64_t num_past = reader.u();
  past_.reserve(capped_reserve(num_past));
  for (std::uint64_t i = 0; i < num_past; ++i) {
    reader.expect("past-request");
    PastRequest pr;
    pr.location = static_cast<PointId>(reader.u());
    pr.dual = reader.d();
    pr.facility_dist = reader.d();
    pr.departed = reader.b();
    past_.push_back(pr);
  }
  reader.expect("bids");
  if (reader.u() != bids_.size())
    reader.fail("bid row length differs from the metric");
  for (double& v : bids_) v = reader.d();
  reader.expect("duals");
  total_dual_ = reader.d();
  const std::uint64_t num_duals = reader.u();
  duals_.reserve(capped_reserve(num_duals));
  for (std::uint64_t i = 0; i < num_duals; ++i) duals_.push_back(reader.d());
}

}  // namespace omflp
