// PerCommodityAdapter — the trivial OMFLP baseline of §1.3: solve an
// independent Online Facility Location instance per commodity.
//
// The adapter runs one single-commodity sub-algorithm per commodity e on
// the same metric, with the cost restricted to f^{{e}}_m, and mirrors
// every sub-decision into the real ledger (facilities open with singleton
// configuration {e}). With Fotakis' algorithm inside this is the
// O(|S|·log n)-competitive algorithm the paper uses as the departure
// point; on workloads where requests demand many commodities it pays a
// Θ(|S|) factor because it can neither bundle construction nor share
// connections — exactly the gap Theorem 2 formalizes and the benches
// measure.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/online_algorithm.hpp"

namespace omflp {

/// Cost model adapter exposing commodity e of a base model as a
/// single-commodity universe: open_cost(m, {0}) = base.open_cost(m, {e}).
class RestrictedCostModel final : public FacilityCostModel {
 public:
  RestrictedCostModel(CostModelPtr base, CommodityId commodity);

  CommodityId num_commodities() const noexcept override { return 1; }
  double open_cost(PointId m, const CommoditySet& config) const override;
  bool location_invariant() const noexcept override {
    return base_->location_invariant();
  }
  std::string description() const override;

 private:
  CostModelPtr base_;
  CommodityId commodity_;
};

class PerCommodityAdapter final : public OnlineAlgorithm {
 public:
  /// Factory producing the single-commodity sub-algorithm for commodity e
  /// (e is provided so randomized sub-algorithms can derive distinct
  /// seeds).
  using Factory =
      std::function<std::unique_ptr<OnlineAlgorithm>(CommodityId e)>;

  PerCommodityAdapter(Factory factory, std::string label);

  /// Convenience constructors for the two standard baselines.
  static std::unique_ptr<PerCommodityAdapter> fotakis();
  static std::unique_ptr<PerCommodityAdapter> meyerson(std::uint64_t seed);

  std::string name() const override { return label_; }
  void reset(const ProblemContext& context) override;
  void serve(const Request& request, SolutionLedger& ledger) override;
  /// Deletion policy: forward the departure to every per-commodity
  /// sub-algorithm the request touched (translated to the sub-instance's
  /// own request numbering), so a rollback-capable sub-algorithm like
  /// Fotakis' withdraws the departed bids per commodity.
  void depart(RequestId id, const Request& request,
              SolutionLedger& ledger) override;

  /// Checkpoint: recurses into every initialized sub-instance — the
  /// sub-algorithm's own state (via its serialize_state), the sub-ledger
  /// and the id-translation tables — so a restored adapter continues
  /// every per-commodity run bitwise. Sub-instances are re-initialized
  /// through the factory on restore (same derived seeds).
  void serialize_state(CkptWriter& writer) const override;
  void restore_state(CkptReader& reader) override;

 private:
  Factory factory_;
  std::string label_;
  ProblemContext context_;

  struct SubInstance {
    std::unique_ptr<OnlineAlgorithm> algorithm;
    std::unique_ptr<SolutionLedger> ledger;  // the sub-algorithm's view
    std::vector<FacilityId> facility_map;    // sub facility id -> real id
    std::vector<RequestId> real_request;     // sub request id -> real id
    bool initialized = false;
  };
  std::vector<SubInstance> subs_;
  /// sub_ids_[real request id]: (commodity, sub request id) per demanded
  /// commodity — the translation table depart() needs.
  std::vector<std::vector<std::pair<CommodityId, RequestId>>> sub_ids_;

  SubInstance& sub_for(CommodityId e);
};

}  // namespace omflp
